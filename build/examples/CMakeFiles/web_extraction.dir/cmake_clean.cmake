file(REMOVE_RECURSE
  "CMakeFiles/web_extraction.dir/web_extraction.cc.o"
  "CMakeFiles/web_extraction.dir/web_extraction.cc.o.d"
  "web_extraction"
  "web_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
