# Empty dependencies file for web_extraction.
# This may be replaced when dependencies are built.
