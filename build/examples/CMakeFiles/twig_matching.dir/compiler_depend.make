# Empty compiler generated dependencies file for twig_matching.
# This may be replaced when dependencies are built.
