file(REMOVE_RECURSE
  "CMakeFiles/twig_matching.dir/twig_matching.cc.o"
  "CMakeFiles/twig_matching.dir/twig_matching.cc.o.d"
  "twig_matching"
  "twig_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twig_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
