# Empty dependencies file for stream_filter.
# This may be replaced when dependencies are built.
