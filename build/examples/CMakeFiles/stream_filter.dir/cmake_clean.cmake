file(REMOVE_RECURSE
  "CMakeFiles/stream_filter.dir/stream_filter.cc.o"
  "CMakeFiles/stream_filter.dir/stream_filter.cc.o.d"
  "stream_filter"
  "stream_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
