
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cq/arc_consistency.cc" "src/CMakeFiles/treeq.dir/cq/arc_consistency.cc.o" "gcc" "src/CMakeFiles/treeq.dir/cq/arc_consistency.cc.o.d"
  "/root/repo/src/cq/ast.cc" "src/CMakeFiles/treeq.dir/cq/ast.cc.o" "gcc" "src/CMakeFiles/treeq.dir/cq/ast.cc.o.d"
  "/root/repo/src/cq/dichotomy.cc" "src/CMakeFiles/treeq.dir/cq/dichotomy.cc.o" "gcc" "src/CMakeFiles/treeq.dir/cq/dichotomy.cc.o.d"
  "/root/repo/src/cq/enumerate.cc" "src/CMakeFiles/treeq.dir/cq/enumerate.cc.o" "gcc" "src/CMakeFiles/treeq.dir/cq/enumerate.cc.o.d"
  "/root/repo/src/cq/naive.cc" "src/CMakeFiles/treeq.dir/cq/naive.cc.o" "gcc" "src/CMakeFiles/treeq.dir/cq/naive.cc.o.d"
  "/root/repo/src/cq/parser.cc" "src/CMakeFiles/treeq.dir/cq/parser.cc.o" "gcc" "src/CMakeFiles/treeq.dir/cq/parser.cc.o.d"
  "/root/repo/src/cq/rewrite.cc" "src/CMakeFiles/treeq.dir/cq/rewrite.cc.o" "gcc" "src/CMakeFiles/treeq.dir/cq/rewrite.cc.o.d"
  "/root/repo/src/cq/treewidth_eval.cc" "src/CMakeFiles/treeq.dir/cq/treewidth_eval.cc.o" "gcc" "src/CMakeFiles/treeq.dir/cq/treewidth_eval.cc.o.d"
  "/root/repo/src/cq/twig_join.cc" "src/CMakeFiles/treeq.dir/cq/twig_join.cc.o" "gcc" "src/CMakeFiles/treeq.dir/cq/twig_join.cc.o.d"
  "/root/repo/src/cq/x_property.cc" "src/CMakeFiles/treeq.dir/cq/x_property.cc.o" "gcc" "src/CMakeFiles/treeq.dir/cq/x_property.cc.o.d"
  "/root/repo/src/cq/yannakakis.cc" "src/CMakeFiles/treeq.dir/cq/yannakakis.cc.o" "gcc" "src/CMakeFiles/treeq.dir/cq/yannakakis.cc.o.d"
  "/root/repo/src/datalog/ast.cc" "src/CMakeFiles/treeq.dir/datalog/ast.cc.o" "gcc" "src/CMakeFiles/treeq.dir/datalog/ast.cc.o.d"
  "/root/repo/src/datalog/evaluator.cc" "src/CMakeFiles/treeq.dir/datalog/evaluator.cc.o" "gcc" "src/CMakeFiles/treeq.dir/datalog/evaluator.cc.o.d"
  "/root/repo/src/datalog/grounder.cc" "src/CMakeFiles/treeq.dir/datalog/grounder.cc.o" "gcc" "src/CMakeFiles/treeq.dir/datalog/grounder.cc.o.d"
  "/root/repo/src/datalog/horn.cc" "src/CMakeFiles/treeq.dir/datalog/horn.cc.o" "gcc" "src/CMakeFiles/treeq.dir/datalog/horn.cc.o.d"
  "/root/repo/src/datalog/parser.cc" "src/CMakeFiles/treeq.dir/datalog/parser.cc.o" "gcc" "src/CMakeFiles/treeq.dir/datalog/parser.cc.o.d"
  "/root/repo/src/datalog/stratified.cc" "src/CMakeFiles/treeq.dir/datalog/stratified.cc.o" "gcc" "src/CMakeFiles/treeq.dir/datalog/stratified.cc.o.d"
  "/root/repo/src/datalog/tmnf.cc" "src/CMakeFiles/treeq.dir/datalog/tmnf.cc.o" "gcc" "src/CMakeFiles/treeq.dir/datalog/tmnf.cc.o.d"
  "/root/repo/src/fo/ast.cc" "src/CMakeFiles/treeq.dir/fo/ast.cc.o" "gcc" "src/CMakeFiles/treeq.dir/fo/ast.cc.o.d"
  "/root/repo/src/fo/corollary52.cc" "src/CMakeFiles/treeq.dir/fo/corollary52.cc.o" "gcc" "src/CMakeFiles/treeq.dir/fo/corollary52.cc.o.d"
  "/root/repo/src/fo/evaluator.cc" "src/CMakeFiles/treeq.dir/fo/evaluator.cc.o" "gcc" "src/CMakeFiles/treeq.dir/fo/evaluator.cc.o.d"
  "/root/repo/src/fo/parser.cc" "src/CMakeFiles/treeq.dir/fo/parser.cc.o" "gcc" "src/CMakeFiles/treeq.dir/fo/parser.cc.o.d"
  "/root/repo/src/storage/dewey.cc" "src/CMakeFiles/treeq.dir/storage/dewey.cc.o" "gcc" "src/CMakeFiles/treeq.dir/storage/dewey.cc.o.d"
  "/root/repo/src/storage/structural_join.cc" "src/CMakeFiles/treeq.dir/storage/structural_join.cc.o" "gcc" "src/CMakeFiles/treeq.dir/storage/structural_join.cc.o.d"
  "/root/repo/src/storage/xasr.cc" "src/CMakeFiles/treeq.dir/storage/xasr.cc.o" "gcc" "src/CMakeFiles/treeq.dir/storage/xasr.cc.o.d"
  "/root/repo/src/stream/sax.cc" "src/CMakeFiles/treeq.dir/stream/sax.cc.o" "gcc" "src/CMakeFiles/treeq.dir/stream/sax.cc.o.d"
  "/root/repo/src/stream/stream_eval.cc" "src/CMakeFiles/treeq.dir/stream/stream_eval.cc.o" "gcc" "src/CMakeFiles/treeq.dir/stream/stream_eval.cc.o.d"
  "/root/repo/src/tree/axes.cc" "src/CMakeFiles/treeq.dir/tree/axes.cc.o" "gcc" "src/CMakeFiles/treeq.dir/tree/axes.cc.o.d"
  "/root/repo/src/tree/generator.cc" "src/CMakeFiles/treeq.dir/tree/generator.cc.o" "gcc" "src/CMakeFiles/treeq.dir/tree/generator.cc.o.d"
  "/root/repo/src/tree/orders.cc" "src/CMakeFiles/treeq.dir/tree/orders.cc.o" "gcc" "src/CMakeFiles/treeq.dir/tree/orders.cc.o.d"
  "/root/repo/src/tree/tree.cc" "src/CMakeFiles/treeq.dir/tree/tree.cc.o" "gcc" "src/CMakeFiles/treeq.dir/tree/tree.cc.o.d"
  "/root/repo/src/tree/treewidth.cc" "src/CMakeFiles/treeq.dir/tree/treewidth.cc.o" "gcc" "src/CMakeFiles/treeq.dir/tree/treewidth.cc.o.d"
  "/root/repo/src/tree/xml.cc" "src/CMakeFiles/treeq.dir/tree/xml.cc.o" "gcc" "src/CMakeFiles/treeq.dir/tree/xml.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/treeq.dir/util/random.cc.o" "gcc" "src/CMakeFiles/treeq.dir/util/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/treeq.dir/util/status.cc.o" "gcc" "src/CMakeFiles/treeq.dir/util/status.cc.o.d"
  "/root/repo/src/xpath/ast.cc" "src/CMakeFiles/treeq.dir/xpath/ast.cc.o" "gcc" "src/CMakeFiles/treeq.dir/xpath/ast.cc.o.d"
  "/root/repo/src/xpath/evaluator.cc" "src/CMakeFiles/treeq.dir/xpath/evaluator.cc.o" "gcc" "src/CMakeFiles/treeq.dir/xpath/evaluator.cc.o.d"
  "/root/repo/src/xpath/naive_evaluator.cc" "src/CMakeFiles/treeq.dir/xpath/naive_evaluator.cc.o" "gcc" "src/CMakeFiles/treeq.dir/xpath/naive_evaluator.cc.o.d"
  "/root/repo/src/xpath/parser.cc" "src/CMakeFiles/treeq.dir/xpath/parser.cc.o" "gcc" "src/CMakeFiles/treeq.dir/xpath/parser.cc.o.d"
  "/root/repo/src/xpath/to_datalog.cc" "src/CMakeFiles/treeq.dir/xpath/to_datalog.cc.o" "gcc" "src/CMakeFiles/treeq.dir/xpath/to_datalog.cc.o.d"
  "/root/repo/src/xpath/to_forward.cc" "src/CMakeFiles/treeq.dir/xpath/to_forward.cc.o" "gcc" "src/CMakeFiles/treeq.dir/xpath/to_forward.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
