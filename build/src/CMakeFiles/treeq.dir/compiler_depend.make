# Empty compiler generated dependencies file for treeq.
# This may be replaced when dependencies are built.
