file(REMOVE_RECURSE
  "libtreeq.a"
)
