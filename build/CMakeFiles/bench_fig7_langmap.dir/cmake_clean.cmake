file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_langmap.dir/bench/bench_fig7_langmap.cc.o"
  "CMakeFiles/bench_fig7_langmap.dir/bench/bench_fig7_langmap.cc.o.d"
  "bench/bench_fig7_langmap"
  "bench/bench_fig7_langmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_langmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
