# Empty dependencies file for bench_fig7_langmap.
# This may be replaced when dependencies are built.
