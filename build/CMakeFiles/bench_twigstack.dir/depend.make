# Empty dependencies file for bench_twigstack.
# This may be replaced when dependencies are built.
