file(REMOVE_RECURSE
  "CMakeFiles/bench_twigstack.dir/bench/bench_twigstack.cc.o"
  "CMakeFiles/bench_twigstack.dir/bench/bench_twigstack.cc.o.d"
  "bench/bench_twigstack"
  "bench/bench_twigstack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_twigstack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
