file(REMOVE_RECURSE
  "CMakeFiles/bench_prop42_acyclic.dir/bench/bench_prop42_acyclic.cc.o"
  "CMakeFiles/bench_prop42_acyclic.dir/bench/bench_prop42_acyclic.cc.o.d"
  "bench/bench_prop42_acyclic"
  "bench/bench_prop42_acyclic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prop42_acyclic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
