# Empty dependencies file for bench_prop42_acyclic.
# This may be replaced when dependencies are built.
