file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_xasr.dir/bench/bench_fig2_xasr.cc.o"
  "CMakeFiles/bench_fig2_xasr.dir/bench/bench_fig2_xasr.cc.o.d"
  "bench/bench_fig2_xasr"
  "bench/bench_fig2_xasr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_xasr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
