# Empty dependencies file for bench_fig2_xasr.
# This may be replaced when dependencies are built.
