file(REMOVE_RECURSE
  "CMakeFiles/bench_cor52_posfo.dir/bench/bench_cor52_posfo.cc.o"
  "CMakeFiles/bench_cor52_posfo.dir/bench/bench_cor52_posfo.cc.o.d"
  "bench/bench_cor52_posfo"
  "bench/bench_cor52_posfo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cor52_posfo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
