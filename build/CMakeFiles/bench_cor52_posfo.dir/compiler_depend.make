# Empty compiler generated dependencies file for bench_cor52_posfo.
# This may be replaced when dependencies are built.
