file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_xproperty.dir/bench/bench_fig5_xproperty.cc.o"
  "CMakeFiles/bench_fig5_xproperty.dir/bench/bench_fig5_xproperty.cc.o.d"
  "bench/bench_fig5_xproperty"
  "bench/bench_fig5_xproperty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_xproperty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
