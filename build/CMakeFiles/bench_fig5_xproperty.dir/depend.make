# Empty dependencies file for bench_fig5_xproperty.
# This may be replaced when dependencies are built.
