file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_repr.dir/bench/bench_fig1_repr.cc.o"
  "CMakeFiles/bench_fig1_repr.dir/bench/bench_fig1_repr.cc.o.d"
  "bench/bench_fig1_repr"
  "bench/bench_fig1_repr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_repr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
