# Empty compiler generated dependencies file for bench_fig1_repr.
# This may be replaced when dependencies are built.
