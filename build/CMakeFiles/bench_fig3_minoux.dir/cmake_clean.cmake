file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_minoux.dir/bench/bench_fig3_minoux.cc.o"
  "CMakeFiles/bench_fig3_minoux.dir/bench/bench_fig3_minoux.cc.o.d"
  "bench/bench_fig3_minoux"
  "bench/bench_fig3_minoux.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_minoux.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
