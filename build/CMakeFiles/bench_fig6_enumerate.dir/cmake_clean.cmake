file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_enumerate.dir/bench/bench_fig6_enumerate.cc.o"
  "CMakeFiles/bench_fig6_enumerate.dir/bench/bench_fig6_enumerate.cc.o.d"
  "bench/bench_fig6_enumerate"
  "bench/bench_fig6_enumerate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_enumerate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
