# Empty dependencies file for bench_fig6_enumerate.
# This may be replaced when dependencies are built.
