# Empty compiler generated dependencies file for bench_stream_memory.
# This may be replaced when dependencies are built.
