file(REMOVE_RECURSE
  "CMakeFiles/bench_stream_memory.dir/bench/bench_stream_memory.cc.o"
  "CMakeFiles/bench_stream_memory.dir/bench/bench_stream_memory.cc.o.d"
  "bench/bench_stream_memory"
  "bench/bench_stream_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stream_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
