# Empty dependencies file for bench_thm68_dichotomy.
# This may be replaced when dependencies are built.
