file(REMOVE_RECURSE
  "CMakeFiles/bench_thm68_dichotomy.dir/bench/bench_thm68_dichotomy.cc.o"
  "CMakeFiles/bench_thm68_dichotomy.dir/bench/bench_thm68_dichotomy.cc.o.d"
  "bench/bench_thm68_dichotomy"
  "bench/bench_thm68_dichotomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm68_dichotomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
