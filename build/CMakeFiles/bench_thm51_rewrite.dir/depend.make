# Empty dependencies file for bench_thm51_rewrite.
# This may be replaced when dependencies are built.
