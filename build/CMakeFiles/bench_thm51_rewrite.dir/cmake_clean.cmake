file(REMOVE_RECURSE
  "CMakeFiles/bench_thm51_rewrite.dir/bench/bench_thm51_rewrite.cc.o"
  "CMakeFiles/bench_thm51_rewrite.dir/bench/bench_thm51_rewrite.cc.o.d"
  "bench/bench_thm51_rewrite"
  "bench/bench_thm51_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm51_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
