file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_treewidth.dir/bench/bench_fig4_treewidth.cc.o"
  "CMakeFiles/bench_fig4_treewidth.dir/bench/bench_fig4_treewidth.cc.o.d"
  "bench/bench_fig4_treewidth"
  "bench/bench_fig4_treewidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_treewidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
