# Empty dependencies file for bench_fig4_treewidth.
# This may be replaced when dependencies are built.
