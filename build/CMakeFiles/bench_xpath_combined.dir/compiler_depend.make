# Empty compiler generated dependencies file for bench_xpath_combined.
# This may be replaced when dependencies are built.
