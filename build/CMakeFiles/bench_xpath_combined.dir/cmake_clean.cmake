file(REMOVE_RECURSE
  "CMakeFiles/bench_xpath_combined.dir/bench/bench_xpath_combined.cc.o"
  "CMakeFiles/bench_xpath_combined.dir/bench/bench_xpath_combined.cc.o.d"
  "bench/bench_xpath_combined"
  "bench/bench_xpath_combined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_xpath_combined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
