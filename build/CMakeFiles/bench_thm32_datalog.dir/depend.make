# Empty dependencies file for bench_thm32_datalog.
# This may be replaced when dependencies are built.
