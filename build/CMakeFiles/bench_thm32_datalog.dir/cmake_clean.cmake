file(REMOVE_RECURSE
  "CMakeFiles/bench_thm32_datalog.dir/bench/bench_thm32_datalog.cc.o"
  "CMakeFiles/bench_thm32_datalog.dir/bench/bench_thm32_datalog.cc.o.d"
  "bench/bench_thm32_datalog"
  "bench/bench_thm32_datalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm32_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
