# Empty compiler generated dependencies file for bench_thm65_xbar.
# This may be replaced when dependencies are built.
