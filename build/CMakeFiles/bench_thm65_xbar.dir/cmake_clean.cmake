file(REMOVE_RECURSE
  "CMakeFiles/bench_thm65_xbar.dir/bench/bench_thm65_xbar.cc.o"
  "CMakeFiles/bench_thm65_xbar.dir/bench/bench_thm65_xbar.cc.o.d"
  "bench/bench_thm65_xbar"
  "bench/bench_thm65_xbar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm65_xbar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
