file(REMOVE_RECURSE
  "CMakeFiles/xasr_test.dir/xasr_test.cc.o"
  "CMakeFiles/xasr_test.dir/xasr_test.cc.o.d"
  "xasr_test"
  "xasr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xasr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
