# Empty dependencies file for xasr_test.
# This may be replaced when dependencies are built.
