# Empty dependencies file for treewidth_eval_test.
# This may be replaced when dependencies are built.
