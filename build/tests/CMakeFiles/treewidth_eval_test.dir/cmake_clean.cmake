file(REMOVE_RECURSE
  "CMakeFiles/treewidth_eval_test.dir/treewidth_eval_test.cc.o"
  "CMakeFiles/treewidth_eval_test.dir/treewidth_eval_test.cc.o.d"
  "treewidth_eval_test"
  "treewidth_eval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treewidth_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
