file(REMOVE_RECURSE
  "CMakeFiles/horn_test.dir/horn_test.cc.o"
  "CMakeFiles/horn_test.dir/horn_test.cc.o.d"
  "horn_test"
  "horn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
