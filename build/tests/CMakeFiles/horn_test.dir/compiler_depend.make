# Empty compiler generated dependencies file for horn_test.
# This may be replaced when dependencies are built.
