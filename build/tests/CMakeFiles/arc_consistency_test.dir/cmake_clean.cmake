file(REMOVE_RECURSE
  "CMakeFiles/arc_consistency_test.dir/arc_consistency_test.cc.o"
  "CMakeFiles/arc_consistency_test.dir/arc_consistency_test.cc.o.d"
  "arc_consistency_test"
  "arc_consistency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arc_consistency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
