# Empty compiler generated dependencies file for x_property_test.
# This may be replaced when dependencies are built.
