file(REMOVE_RECURSE
  "CMakeFiles/x_property_test.dir/x_property_test.cc.o"
  "CMakeFiles/x_property_test.dir/x_property_test.cc.o.d"
  "x_property_test"
  "x_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
