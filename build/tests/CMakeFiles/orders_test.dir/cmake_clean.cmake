file(REMOVE_RECURSE
  "CMakeFiles/orders_test.dir/orders_test.cc.o"
  "CMakeFiles/orders_test.dir/orders_test.cc.o.d"
  "orders_test"
  "orders_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orders_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
