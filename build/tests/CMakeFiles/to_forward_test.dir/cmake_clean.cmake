file(REMOVE_RECURSE
  "CMakeFiles/to_forward_test.dir/to_forward_test.cc.o"
  "CMakeFiles/to_forward_test.dir/to_forward_test.cc.o.d"
  "to_forward_test"
  "to_forward_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/to_forward_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
