# Empty dependencies file for to_forward_test.
# This may be replaced when dependencies are built.
