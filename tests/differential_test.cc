#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cq/twig_join.h"
#include "tree/generator.h"
#include "tree/orders.h"
#include "tree/tree.h"
#include "tree/xml.h"
#include "util/random.h"
#include "xpath/ast.h"
#include "xpath/evaluator.h"
#include "xpath/naive_evaluator.h"

/// \file differential_test.cc
/// Cross-engine differential harness: random documents x random queries,
/// evaluated by independent engines that must agree node-for-node.
///
///  - Core XPath: the naive per-context-node interpreter (the semantic
///    equations, trusted as the executable spec) vs the set-at-a-time
///    evaluator (the optimized implementation under test).
///  - Twig patterns: TwigStackJoin vs TwigByStructuralJoins (full tuple
///    sets), and each result column vs the equivalent Core XPath query.
///
/// Document sizes straddle the NodeSet 64-bit word boundaries (63/64/65,
/// 127/128/129) because that is where the packed-bitmap kernels have
/// off-by-one hazards. Every trial is seeded, so a failure reproduces from
/// its seed alone; on mismatch a greedy minimizer shrinks the document and
/// query before printing them.

namespace treeq {
namespace {

const std::vector<std::string> kAlphabet = {"a", "b", "c"};

// ---------------------------------------------------------------------------
// Random documents: chain / star / random shapes at word-boundary sizes.

Tree RandomDocument(Rng* rng, int max_nodes) {
  static const int kSizes[] = {3, 7, 31, 63, 64, 65, 96, 127, 128, 129};
  std::vector<int> sizes;
  for (int s : kSizes) {
    if (s <= max_nodes) sizes.push_back(s);
  }
  int n = sizes[static_cast<size_t>(
      rng->Uniform(0, static_cast<int64_t>(sizes.size()) - 1))];
  switch (rng->Uniform(0, 3)) {
    case 0:
      return Chain(n, "a", "b");
    case 1:
      return Star(n, "a", rng->Bernoulli(0.5) ? "a" : "b");
    default: {
      RandomTreeOptions opt;
      opt.num_nodes = n;
      opt.attach_window = static_cast<int>(rng->Uniform(1, 8));
      opt.alphabet = kAlphabet;
      opt.second_label_prob = 0.2;
      return RandomTree(rng, opt);
    }
  }
}

// ---------------------------------------------------------------------------
// Random Core XPath queries. Depth/length are kept small so the naive
// (exponential) interpreter stays fast enough for hundreds of trials.

std::string RandomLabel(Rng* rng) {
  return kAlphabet[static_cast<size_t>(
      rng->Uniform(0, static_cast<int64_t>(kAlphabet.size()) - 1))];
}

Axis RandomAxis(Rng* rng) {
  static const Axis kAxes[] = {
      Axis::kSelf,           Axis::kChild,
      Axis::kParent,         Axis::kDescendant,
      Axis::kAncestor,       Axis::kDescendantOrSelf,
      Axis::kAncestorOrSelf, Axis::kNextSibling,
      Axis::kPrevSibling,    Axis::kFollowingSibling,
      Axis::kPrecedingSibling, Axis::kFollowing,
      Axis::kPreceding,      Axis::kFirstChild,
  };
  return kAxes[rng->Uniform(0, std::size(kAxes) - 1)];
}

std::unique_ptr<xpath::PathExpr> RandomPath(Rng* rng, int max_steps,
                                            int qualifier_depth);

std::unique_ptr<xpath::Qualifier> RandomQualifier(Rng* rng, int depth) {
  double roll = rng->UniformReal();
  if (depth <= 0 || roll < 0.45) {
    return xpath::Qualifier::MakeLabel(RandomLabel(rng));
  }
  if (roll < 0.70) {
    return xpath::Qualifier::MakePath(RandomPath(rng, 2, depth - 1));
  }
  if (roll < 0.80) {
    return xpath::Qualifier::MakeNot(RandomQualifier(rng, depth - 1));
  }
  if (roll < 0.90) {
    return xpath::Qualifier::MakeAnd(RandomQualifier(rng, depth - 1),
                                     RandomQualifier(rng, depth - 1));
  }
  return xpath::Qualifier::MakeOr(RandomQualifier(rng, depth - 1),
                                  RandomQualifier(rng, depth - 1));
}

std::unique_ptr<xpath::PathExpr> RandomStep(Rng* rng, int qualifier_depth) {
  auto step = xpath::PathExpr::MakeStep(RandomAxis(rng));
  if (rng->Bernoulli(0.7)) {
    step->qualifiers.push_back(RandomQualifier(rng, qualifier_depth));
  }
  return step;
}

std::unique_ptr<xpath::PathExpr> RandomPath(Rng* rng, int max_steps,
                                            int qualifier_depth) {
  int steps = static_cast<int>(rng->Uniform(1, max_steps));
  std::unique_ptr<xpath::PathExpr> path = RandomStep(rng, qualifier_depth);
  for (int i = 1; i < steps; ++i) {
    path = xpath::PathExpr::MakeSeq(std::move(path),
                                    RandomStep(rng, qualifier_depth));
  }
  if (qualifier_depth > 0 && rng->Bernoulli(0.15)) {
    path = xpath::PathExpr::MakeUnion(std::move(path),
                                      RandomPath(rng, 2, qualifier_depth - 1));
  }
  return path;
}

// ---------------------------------------------------------------------------
// The two engines under comparison for Core XPath. `ok` is false when the
// naive interpreter blew its safety budget (never expected at these sizes).

struct XPathComparison {
  bool ok = false;
  bool agree = false;
  NodeSet set_at_a_time;
  NodeSet naive;
};

XPathComparison CompareXPath(const Tree& tree, const TreeOrders& orders,
                             const xpath::PathExpr& path) {
  XPathComparison cmp;
  cmp.set_at_a_time = xpath::EvalQueryFromRoot(tree, orders, path);
  Result<NodeSet> naive = xpath::NaiveEvalPath(tree, orders, path, tree.root(),
                                               /*budget=*/50'000'000);
  if (!naive.ok()) return cmp;
  cmp.ok = true;
  cmp.naive = std::move(naive).value();
  cmp.agree = cmp.set_at_a_time == cmp.naive;
  return cmp;
}

bool Mismatches(const Tree& tree, const xpath::PathExpr& path) {
  TreeOrders orders = ComputeOrders(tree);
  XPathComparison cmp = CompareXPath(tree, orders, path);
  return cmp.ok && !cmp.agree;
}

// ---------------------------------------------------------------------------
// Greedy minimizer. Query shrinks: take a branch of a Seq/Union, drop a
// qualifier, recurse into subexpressions. Tree shrinks: delete one leaf.

void CollectPathShrinks(const xpath::PathExpr& p,
                        std::vector<std::unique_ptr<xpath::PathExpr>>* out) {
  using PE = xpath::PathExpr;
  if (p.kind == PE::Kind::kSeq || p.kind == PE::Kind::kUnion) {
    out->push_back(p.left->Clone());
    out->push_back(p.right->Clone());
    std::vector<std::unique_ptr<PE>> left_shrinks;
    CollectPathShrinks(*p.left, &left_shrinks);
    for (auto& l : left_shrinks) {
      auto clone = p.Clone();
      clone->left = std::move(l);
      out->push_back(std::move(clone));
    }
    std::vector<std::unique_ptr<PE>> right_shrinks;
    CollectPathShrinks(*p.right, &right_shrinks);
    for (auto& r : right_shrinks) {
      auto clone = p.Clone();
      clone->right = std::move(r);
      out->push_back(std::move(clone));
    }
    return;
  }
  for (size_t i = 0; i < p.qualifiers.size(); ++i) {
    auto clone = p.Clone();
    clone->qualifiers.erase(clone->qualifiers.begin() +
                            static_cast<ptrdiff_t>(i));
    out->push_back(std::move(clone));
  }
}

// Rebuilds `tree` without leaf `victim` (victim must be a non-root leaf).
Tree WithoutLeaf(const Tree& tree, NodeId victim) {
  TreeBuilder builder;
  std::vector<std::pair<NodeId, bool>> stack;  // (node, children_done)
  stack.emplace_back(tree.root(), false);
  while (!stack.empty()) {
    auto [n, done] = stack.back();
    stack.pop_back();
    if (done) {
      builder.EndNode();
      continue;
    }
    if (n == victim) continue;
    std::vector<std::string> names;
    for (LabelId l : tree.labels(n)) {
      names.push_back(tree.label_table().Name(l));
    }
    builder.BeginNode(names);
    stack.emplace_back(n, true);
    // Children pushed in reverse so they pop (and rebuild) in order.
    std::vector<NodeId> kids;
    for (NodeId c = tree.first_child(n); c != kNullNode;
         c = tree.next_sibling(c)) {
      kids.push_back(c);
    }
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.emplace_back(*it, false);
    }
  }
  Result<Tree> rebuilt = builder.Finish();
  TREEQ_CHECK(rebuilt.ok());
  return std::move(rebuilt).value();
}

// Shrinks the tree as far as possible while `mismatch(tree)` holds.
template <typename Predicate>
Tree ShrinkTree(Tree tree, const Predicate& mismatch) {
  bool progressed = true;
  while (progressed && tree.num_nodes() > 1) {
    progressed = false;
    for (NodeId n = tree.num_nodes() - 1; n > 0; --n) {
      if (!tree.IsLeaf(n)) continue;
      Tree candidate = WithoutLeaf(tree, n);
      if (mismatch(candidate)) {
        tree = std::move(candidate);
        progressed = true;
        break;
      }
    }
  }
  return tree;
}

// Returns the smallest (tree, query) pair still mismatching; reports it.
void ReportMinimizedXPath(Tree tree, std::unique_ptr<xpath::PathExpr> path,
                          uint64_t seed) {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    std::vector<std::unique_ptr<xpath::PathExpr>> shrinks;
    CollectPathShrinks(*path, &shrinks);
    for (auto& candidate : shrinks) {
      if (Mismatches(tree, *candidate)) {
        path = std::move(candidate);
        progressed = true;
        break;
      }
    }
    Tree smaller = ShrinkTree(
        std::move(tree), [&](const Tree& t) { return Mismatches(t, *path); });
    if (smaller.num_nodes() < tree.num_nodes()) progressed = true;
    tree = std::move(smaller);
  }
  TreeOrders orders = ComputeOrders(tree);
  XPathComparison cmp = CompareXPath(tree, orders, *path);
  std::string naive_nodes, set_nodes;
  cmp.naive.ForEachMember(
      [&](NodeId n) { naive_nodes += std::to_string(n) + " "; });
  cmp.set_at_a_time.ForEachMember(
      [&](NodeId n) { set_nodes += std::to_string(n) + " "; });
  ADD_FAILURE() << "seed " << seed << ": engines disagree on minimized case\n"
                << "  document: " << WriteXml(tree) << "\n"
                << "  query:    " << xpath::ToString(*path) << "\n"
                << "  naive:         { " << naive_nodes << "}\n"
                << "  set-at-a-time: { " << set_nodes << "}";
}

TEST(DifferentialTest, NaiveVsSetAtATime) {
  const int kTrials = 220;
  int compared = 0;
  for (uint64_t seed = 0; seed < kTrials; ++seed) {
    Rng rng(seed);
    Tree tree = RandomDocument(&rng, /*max_nodes=*/65);
    TreeOrders orders = ComputeOrders(tree);
    std::unique_ptr<xpath::PathExpr> path =
        RandomPath(&rng, /*max_steps=*/3, /*qualifier_depth=*/2);
    XPathComparison cmp = CompareXPath(tree, orders, *path);
    ASSERT_TRUE(cmp.ok) << "seed " << seed
                        << ": naive interpreter blew its safety budget on "
                        << xpath::ToString(*path);
    ++compared;
    if (!cmp.agree) {
      ReportMinimizedXPath(std::move(tree), std::move(path), seed);
      return;  // one minimized counterexample is enough output
    }
  }
  EXPECT_EQ(compared, kTrials);
}

// ---------------------------------------------------------------------------
// Twig patterns: the two join algorithms must produce identical tuple sets,
// and each column must equal the corresponding Core XPath query.

cq::TwigPattern RandomTwig(Rng* rng, int max_nodes) {
  cq::TwigPattern pattern;
  int n = static_cast<int>(rng->Uniform(1, max_nodes));
  for (int i = 0; i < n; ++i) {
    cq::TwigPatternNode node;
    node.label = RandomLabel(rng);
    if (i > 0) {
      node.parent = static_cast<int>(rng->Uniform(0, i - 1));
      node.edge = rng->Bernoulli(0.5) ? Axis::kChild : Axis::kDescendant;
    }
    pattern.nodes.push_back(std::move(node));
  }
  return pattern;
}

// Path matching the twig subtree rooted at pattern node `c`, for use as an
// existential qualifier on `c`'s parent match.
std::unique_ptr<xpath::PathExpr> TwigBranchPath(const cq::TwigPattern& pattern,
                                                int c) {
  auto step = xpath::PathExpr::MakeStep(pattern.nodes[c].edge);
  auto q = xpath::Qualifier::MakeLabel(pattern.nodes[c].label);
  for (int g : pattern.Children(c)) {
    q = xpath::Qualifier::MakeAnd(
        std::move(q), xpath::Qualifier::MakePath(TwigBranchPath(pattern, g)));
  }
  step->qualifiers.push_back(std::move(q));
  return step;
}

// The Core XPath query selecting exactly the nodes pattern node `result`
// matches: descend to a twig-root match, then walk the spine down to
// `result`, asserting every off-spine branch as a qualifier.
std::unique_ptr<xpath::PathExpr> TwigColumnXPath(const cq::TwigPattern& pattern,
                                                 int result) {
  std::vector<int> spine;
  for (int v = result; v != -1; v = pattern.nodes[v].parent) {
    spine.push_back(v);
  }
  std::reverse(spine.begin(), spine.end());
  std::unique_ptr<xpath::PathExpr> path;
  for (size_t i = 0; i < spine.size(); ++i) {
    int v = spine[i];
    Axis axis =
        (i == 0) ? Axis::kDescendantOrSelf : pattern.nodes[v].edge;
    auto step = xpath::PathExpr::MakeStep(axis);
    auto q = xpath::Qualifier::MakeLabel(pattern.nodes[v].label);
    int on_spine_child = (i + 1 < spine.size()) ? spine[i + 1] : -1;
    for (int c : pattern.Children(v)) {
      if (c == on_spine_child) continue;
      q = xpath::Qualifier::MakeAnd(
          std::move(q), xpath::Qualifier::MakePath(TwigBranchPath(pattern, c)));
    }
    step->qualifiers.push_back(std::move(q));
    path = (path == nullptr)
               ? std::move(step)
               : xpath::PathExpr::MakeSeq(std::move(path), std::move(step));
  }
  return path;
}

cq::TupleSet Sorted(cq::TupleSet tuples) {
  std::sort(tuples.begin(), tuples.end());
  return tuples;
}

TEST(DifferentialTest, TwigJoinsVsEachOtherAndXPath) {
  const int kTrials = 100;
  for (uint64_t seed = 0; seed < kTrials; ++seed) {
    Rng rng(1000 + seed);
    Tree tree = RandomDocument(&rng, /*max_nodes=*/129);
    TreeOrders orders = ComputeOrders(tree);
    cq::TwigPattern pattern = RandomTwig(&rng, /*max_nodes=*/4);
    ASSERT_TRUE(pattern.Validate().ok()) << pattern.ToString();

    Result<cq::TupleSet> stack = cq::TwigStackJoin(pattern, tree, orders);
    Result<cq::TupleSet> joins =
        cq::TwigByStructuralJoins(pattern, tree, orders);
    ASSERT_TRUE(stack.ok()) << stack.status().ToString();
    ASSERT_TRUE(joins.ok()) << joins.status().ToString();
    cq::TupleSet stack_tuples = Sorted(std::move(stack).value());
    EXPECT_EQ(stack_tuples, Sorted(std::move(joins).value()))
        << "seed " << 1000 + seed << ": TwigStack vs structural joins on "
        << pattern.ToString() << "\n  document: " << WriteXml(tree);

    for (int col = 0; col < static_cast<int>(pattern.nodes.size()); ++col) {
      NodeSet projected(tree.num_nodes());
      for (const std::vector<NodeId>& tuple : stack_tuples) {
        projected.Insert(tuple[static_cast<size_t>(col)]);
      }
      std::unique_ptr<xpath::PathExpr> column_query =
          TwigColumnXPath(pattern, col);
      NodeSet via_xpath = xpath::EvalQueryFromRoot(tree, orders, *column_query);
      if (projected == via_xpath) continue;
      // Minimize the document before reporting (query stays fixed — the
      // twig is already tiny).
      Tree shrunk = ShrinkTree(std::move(tree), [&](const Tree& t) {
        TreeOrders o = ComputeOrders(t);
        Result<cq::TupleSet> ts = cq::TwigStackJoin(pattern, t, o);
        if (!ts.ok()) return false;
        NodeSet p(t.num_nodes());
        for (const std::vector<NodeId>& tuple : ts.value()) {
          p.Insert(tuple[static_cast<size_t>(col)]);
        }
        return !(p == xpath::EvalQueryFromRoot(t, o, *column_query));
      });
      ADD_FAILURE() << "seed " << 1000 + seed << ": twig column " << col
                    << " disagrees with XPath on minimized case\n"
                    << "  pattern:  " << pattern.ToString() << "\n"
                    << "  query:    " << xpath::ToString(*column_query) << "\n"
                    << "  document: " << WriteXml(shrunk);
      return;
    }
  }
}

}  // namespace
}  // namespace treeq
