// Stress tests for the StatsRegistry under many threads: counters (direct
// and shadow-buffered), gauges, histograms, and span trees hammered from N
// threads must produce exact totals once every thread has merged. These are
// the tests the CI ThreadSanitizer job runs.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/span.h"
#include "obs/stats.h"

namespace treeq {
namespace obs {
namespace {

constexpr int kThreads = 8;
constexpr int kItersPerThread = 20'000;

TEST(ObsConcurrencyTest, DirectCounterAddsFromManyThreadsAreExact) {
  StatsRegistry& reg = StatsRegistry::Global();
  reg.Reset();
  Counter* counter = reg.GetCounter("stress.direct");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kItersPerThread; ++i) counter->Increment();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.CounterValue("stress.direct"),
            static_cast<uint64_t>(kThreads) * kItersPerThread);
}

TEST(ObsConcurrencyTest, ShadowCountersMergeToExactTotals) {
  StatsRegistry& reg = StatsRegistry::Global();
  reg.Reset();
  Counter* a = reg.GetCounter("stress.shadow_a");
  Counter* b = reg.GetCounter("stress.shadow_b");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([a, b] {
      ShadowCounters shadow;
      for (int i = 0; i < kItersPerThread; ++i) {
        a->Increment();       // buffered in this thread's shadow
        if (i % 2 == 0) b->Add(3);
      }
      // Destructor flushes the buffered deltas.
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.CounterValue("stress.shadow_a"),
            static_cast<uint64_t>(kThreads) * kItersPerThread);
  EXPECT_EQ(reg.CounterValue("stress.shadow_b"),
            static_cast<uint64_t>(kThreads) * (kItersPerThread / 2) * 3);
}

TEST(ObsConcurrencyTest, ShadowBufferingIsInvisibleUntilFlush) {
  StatsRegistry& reg = StatsRegistry::Global();
  reg.Reset();
  Counter* counter = reg.GetCounter("stress.unflushed");
  {
    ShadowCounters shadow;
    counter->Add(41);
    EXPECT_EQ(reg.CounterValue("stress.unflushed"), 0u)
        << "buffered adds must not touch the shared counter";
    shadow.Flush();
    EXPECT_EQ(reg.CounterValue("stress.unflushed"), 41u);
    counter->Add(1);
  }  // destructor flush
  EXPECT_EQ(reg.CounterValue("stress.unflushed"), 42u);
}

TEST(ObsConcurrencyTest, NestedShadowsRestoreOuter) {
  StatsRegistry& reg = StatsRegistry::Global();
  reg.Reset();
  Counter* counter = reg.GetCounter("stress.nested");
  ShadowCounters outer;
  EXPECT_EQ(ShadowCounters::Current(), &outer);
  {
    ShadowCounters inner;
    EXPECT_EQ(ShadowCounters::Current(), &inner);
    counter->Add(5);
  }  // inner flushes straight to the shared counter, not into outer
  EXPECT_EQ(ShadowCounters::Current(), &outer);
  EXPECT_EQ(reg.CounterValue("stress.nested"), 5u);
  counter->Add(7);
  outer.Flush();
  EXPECT_EQ(reg.CounterValue("stress.nested"), 12u);
}

TEST(ObsConcurrencyTest, MixedShadowAndDirectThreadsAgree) {
  StatsRegistry& reg = StatsRegistry::Global();
  reg.Reset();
  Counter* counter = reg.GetCounter("stress.mixed");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter, t] {
      if (t % 2 == 0) {
        ShadowCounters shadow;
        for (int i = 0; i < kItersPerThread; ++i) counter->Increment();
      } else {
        for (int i = 0; i < kItersPerThread; ++i) counter->Increment();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.CounterValue("stress.mixed"),
            static_cast<uint64_t>(kThreads) * kItersPerThread);
}

TEST(ObsConcurrencyTest, GaugeMaxFromManyThreads) {
  StatsRegistry& reg = StatsRegistry::Global();
  reg.Reset();
  Gauge* gauge = reg.GetGauge("stress.gauge");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([gauge, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        gauge->RecordMax(static_cast<uint64_t>(t) * kItersPerThread + i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.GaugeValue("stress.gauge"),
            static_cast<uint64_t>(kThreads) * kItersPerThread - 1);
}

TEST(ObsConcurrencyTest, HistogramTotalsFromManyThreads) {
  StatsRegistry& reg = StatsRegistry::Global();
  reg.Reset();
  Histogram* histogram = reg.GetHistogram("stress.histogram");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([histogram] {
      for (int i = 0; i < kItersPerThread; ++i) {
        histogram->Record(static_cast<uint64_t>(i % 1024));
      }
    });
  }
  for (auto& th : threads) th.join();
  HistogramSnapshot snap = reg.HistogramValues().at("stress.histogram");
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kItersPerThread);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 1023u);
  uint64_t per_thread_sum = 0;
  for (int i = 0; i < kItersPerThread; ++i) per_thread_sum += i % 1024;
  EXPECT_EQ(snap.sum, static_cast<uint64_t>(kThreads) * per_thread_sum);
}

TEST(ObsConcurrencyTest, SpanTreeFromManyThreadsHasExactCounts) {
  StatsRegistry& reg = StatsRegistry::Global();
  reg.Reset();
  constexpr int kSpansPerThread = 2'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        ScopedSpan outer("stress.span.outer");
        ScopedSpan inner("stress.span.inner");
      }
    });
  }
  for (auto& th : threads) th.join();
  uint64_t outer_count = 0;
  uint64_t inner_count = 0;
  for (const SpanSnapshot& span : reg.SpanTree()) {
    if (span.name != "stress.span.outer") continue;
    outer_count += span.count;
    for (const SpanSnapshot& child : span.children) {
      if (child.name == "stress.span.inner") inner_count += child.count;
    }
  }
  EXPECT_EQ(outer_count, static_cast<uint64_t>(kThreads) * kSpansPerThread);
  EXPECT_EQ(inner_count, static_cast<uint64_t>(kThreads) * kSpansPerThread);
}

TEST(ObsConcurrencyTest, ConcurrentRegistrationAndSnapshots) {
  StatsRegistry& reg = StatsRegistry::Global();
  reg.Reset();
  std::atomic<bool> stop{false};
  // Snapshot readers race with writers registering fresh names.
  std::thread reader([&reg, &stop] {
    while (!stop.load()) {
      (void)reg.CounterValues();
      (void)reg.SpanTree();
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&reg, t] {
      for (int i = 0; i < 500; ++i) {
        std::string name =
            "stress.reg." + std::to_string(t) + "." + std::to_string(i % 50);
        reg.GetCounter(name)->Increment();
      }
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true);
  reader.join();
  uint64_t total = 0;
  for (const auto& [name, value] : reg.CounterValues()) {
    if (name.rfind("stress.reg.", 0) == 0) total += value;
  }
  EXPECT_EQ(total, 4u * 500u);
}

}  // namespace
}  // namespace obs
}  // namespace treeq
