#include "cq/twig_join.h"

#include <gtest/gtest.h>

#include "cq/naive.h"
#include "tree/generator.h"
#include "util/random.h"

namespace treeq {
namespace cq {
namespace {

TwigPattern PathPattern(const std::vector<std::string>& labels, Axis edge) {
  TwigPattern p;
  for (size_t i = 0; i < labels.size(); ++i) {
    TwigPatternNode node;
    node.label = labels[i];
    node.parent = static_cast<int>(i) - 1;
    node.edge = edge;
    p.nodes.push_back(node);
  }
  return p;
}

TEST(TwigPatternTest, ValidationAndShape) {
  TwigPattern p = PathPattern({"a", "b", "c"}, Axis::kDescendant);
  EXPECT_TRUE(p.Validate().ok());
  EXPECT_TRUE(p.IsPath());
  EXPECT_EQ(p.Leaves(), std::vector<int>{2});
  EXPECT_EQ(p.Children(0), std::vector<int>{1});

  TwigPattern bad;
  bad.nodes.push_back({"a", Axis::kDescendant, 0});  // root with parent 0
  EXPECT_FALSE(bad.Validate().ok());

  TwigPattern bad_edge = PathPattern({"a", "b"}, Axis::kFollowing);
  EXPECT_FALSE(bad_edge.Validate().ok());
}

TEST(TwigPatternTest, ToConjunctiveQuery) {
  TwigPattern p = PathPattern({"a", "b"}, Axis::kChild);
  ConjunctiveQuery q = p.ToConjunctiveQuery();
  EXPECT_EQ(q.num_vars(), 2);
  EXPECT_EQ(q.head_vars().size(), 2u);
  EXPECT_EQ(q.axis_atoms()[0].axis, Axis::kChild);
  EXPECT_TRUE(q.IsTreeShaped());
}

TupleSet BruteForce(const TwigPattern& p, const Tree& t,
                    const TreeOrders& o) {
  Result<TupleSet> r = NaiveEvaluateCq(p.ToConjunctiveQuery(), t, o);
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

TEST(TwigStackTest, PathOnChain) {
  Tree t = Chain(6, "a", "b");  // a b a b a b
  TreeOrders o = ComputeOrders(t);
  TwigPattern p = PathPattern({"a", "b"}, Axis::kDescendant);
  Result<TupleSet> r = TwigStackJoin(p, t, o);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), BruteForce(p, t, o));
  EXPECT_EQ(r.value().size(), 3u + 2u + 1u);  // a at 0,2,4 with b below
}

TEST(TwigStackTest, ChildEdgesFiltered) {
  Tree t = Chain(6, "a", "b");
  TreeOrders o = ComputeOrders(t);
  TwigPattern p = PathPattern({"a", "b"}, Axis::kChild);
  Result<TupleSet> r = TwigStackJoin(p, t, o);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), BruteForce(p, t, o));
  EXPECT_EQ(r.value().size(), 3u);  // only immediate pairs
}

TEST(TwigStackTest, BranchingTwigOnCatalog) {
  Rng rng(9);
  CatalogOptions copts;
  copts.num_products = 30;
  Tree t = CatalogDocument(&rng, copts);
  TreeOrders o = ComputeOrders(t);
  // product[.//rating5][.//comment]
  TwigPattern p;
  p.nodes.push_back({"product", Axis::kDescendant, -1});
  p.nodes.push_back({"rating5", Axis::kDescendant, 0});
  p.nodes.push_back({"comment", Axis::kDescendant, 0});
  ASSERT_TRUE(p.Validate().ok());
  TwigStats stats;
  Result<TupleSet> r = TwigStackJoin(p, t, o, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), BruteForce(p, t, o));
  EXPECT_GT(stats.intermediate_results, 0u);
}

class TwigAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(TwigAgreementTest, AllThreeAlgorithmsAgreeOnRandomInputs) {
  Rng rng(GetParam());
  RandomTreeOptions opts;
  opts.num_nodes = 40;
  opts.attach_window = 1 + GetParam() % 8;
  opts.alphabet = {"a", "b", "c"};
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);
  const std::string labels[] = {"a", "b", "c"};

  for (int trial = 0; trial < 12; ++trial) {
    // Random twig with 2-5 nodes.
    TwigPattern p;
    int m = 2 + static_cast<int>(rng.Uniform(0, 3));
    for (int i = 0; i < m; ++i) {
      TwigPatternNode node;
      node.label = labels[rng.Uniform(0, 2)];
      node.parent = i == 0 ? -1 : static_cast<int>(rng.Uniform(0, i - 1));
      node.edge = rng.Bernoulli(0.3) ? Axis::kChild : Axis::kDescendant;
      p.nodes.push_back(node);
    }
    ASSERT_TRUE(p.Validate().ok());
    TupleSet expected = BruteForce(p, t, o);
    Result<TupleSet> twig = TwigStackJoin(p, t, o);
    ASSERT_TRUE(twig.ok()) << p.ToString();
    EXPECT_EQ(twig.value(), expected) << p.ToString();
    Result<TupleSet> binary = TwigByStructuralJoins(p, t, o);
    ASSERT_TRUE(binary.ok()) << p.ToString();
    EXPECT_EQ(binary.value(), expected) << p.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwigAgreementTest, ::testing::Range(0, 10));

TEST(TwigStackTest, NoMatchesForMissingLabel) {
  Tree t = Chain(4, "a");
  TreeOrders o = ComputeOrders(t);
  TwigPattern p = PathPattern({"a", "zzz"}, Axis::kDescendant);
  Result<TupleSet> r = TwigStackJoin(p, t, o);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().empty());
}

TEST(TwigStackTest, SingleNodePattern) {
  Tree t = Chain(5, "a", "b");
  TreeOrders o = ComputeOrders(t);
  TwigPattern p = PathPattern({"b"}, Axis::kDescendant);
  Result<TupleSet> r = TwigStackJoin(p, t, o);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (TupleSet{{1}, {3}}));
}

TEST(TwigStackTest, SkipsUselessElements) {
  // TwigStack's getNext skips b-elements with no a-descendant: the stack
  // push count stays below the stream sizes on a selective pattern.
  TreeBuilder b;
  NodeId root = b.AddChild(kNullNode, "r");
  // 50 'b' leaves with nothing below, and one b with an 'a' child.
  for (int i = 0; i < 50; ++i) b.AddChild(root, "b");
  NodeId hit = b.AddChild(root, "b");
  b.AddChild(hit, "a");
  Tree t = std::move(b.Finish()).value();
  TreeOrders o = ComputeOrders(t);
  TwigPattern p = PathPattern({"b", "a"}, Axis::kDescendant);
  TwigStats stats;
  Result<TupleSet> r = TwigStackJoin(p, t, o, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 1u);
  EXPECT_LT(stats.intermediate_results, 10u);
}

}  // namespace
}  // namespace cq
}  // namespace treeq
