// Differential tests for the logical plan layer (src/plan/): a corpus of
// queries each expressed in two or more languages must (a) canonicalize
// to identical 128-bit hashes, (b) produce bit-identical QueryResults on
// every document, and (c) produce the same answer under every forced
// route (ExecuteOptions::force_route) the plan declares eligible. The
// cache-sharing acceptance criterion — same-semantics queries in
// different dialects share one PlanCache entry and one ResultCache entry
// — is asserted through the caches' own tallies.
//
// Corpus notes: XPath is root-anchored, so `//a` can never match the
// document root; the faithful CQ/datalog phrasing adds an explicit
// ancestor variable (`Child+(w, x)` with w unconstrained) to assert "x
// has some ancestor" ⇔ "x is not the root". FO participates only at
// arity 0 (sentences).

#include "engine/engine.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "plan/cost.h"
#include "tree/generator.h"
#include "util/random.h"

namespace treeq {
namespace engine {
namespace {

DocumentPtr Catalog(int seed = 1, int products = 20) {
  Rng rng(static_cast<uint64_t>(seed));
  CatalogOptions opts;
  opts.num_products = products;
  return MakeDocumentWithOrders(CatalogDocument(&rng, opts));
}

DocumentPtr Random(int seed, int nodes) {
  Rng rng(static_cast<uint64_t>(seed));
  RandomTreeOptions opts;
  opts.num_nodes = nodes;
  return MakeDocumentWithOrders(RandomTree(&rng, opts));
}

struct Dialect {
  Language language;
  const char* text;
};

struct CorpusEntry {
  const char* name;
  std::vector<Dialect> dialects;
};

// Every entry's dialects are semantically identical queries; the first
// dialect is the reference.
const std::vector<CorpusEntry>& Corpus() {
  static const std::vector<CorpusEntry> corpus = {
      {"descendant-chain",
       {{Language::kXPath, "//product//rating5"},
        {Language::kCq,
         "Q(y) :- Child+(w, x), Child+(x, y), Lab_product(x), "
         "Lab_rating5(y)."},
        // Same CQ, renamed variables and shuffled atoms.
        {Language::kCq,
         "Q(b) :- Lab_rating5(b), Child+(a, b), Child+(c, a), "
         "Lab_product(a)."},
        {Language::kDatalog,
         "Q(y) :- Child+(w, x), Child+(x, y), Lab_product(x), "
         "Lab_rating5(y). ?- Q."}}},
      {"child-step",
       {{Language::kXPath, "//product/name"},
        {Language::kCq,
         "Q(n) :- Child+(r, p), Child(p, n), Lab_product(p), Lab_name(n)."},
        {Language::kDatalog,
         "Q(n) :- Child+(r, p), Child(p, n), Lab_product(p), Lab_name(n). "
         "?- Q."}}},
      {"boolean-label",
       {{Language::kFo, "exists x . Lab_name(x)"},
        {Language::kCq, "Q() :- Lab_name(x)."}}},
      {"boolean-desc-pair",
       {{Language::kFo,
         "exists x . exists y . (Child+(x, y) and Lab_product(x) and "
         "Lab_rating5(y))"},
        {Language::kCq,
         "Q() :- Child+(x, y), Lab_product(x), Lab_rating5(y)."}}},
      {"binary-tuples",
       {{Language::kCq,
         "Q(p, r) :- Child+(w, p), Child+(p, r), Lab_product(p), "
         "Lab_review(r)."},
        {Language::kCq,
         "Q(a, b) :- Child+(c, a), Lab_review(b), Child+(a, b), "
         "Lab_product(a)."}}},
      // Every variable labeled: eligible for the twig engines
      // (cq.twigstack, cq.structural_joins) as well as Yannakakis.
      {"labeled-child-pair",
       {{Language::kCq,
         "Q(p, n) :- Child(p, n), Lab_product(p), Lab_name(n)."},
        {Language::kCq,
         "Q(x, y) :- Lab_name(y), Lab_product(x), Child(x, y)."}}},
  };
  return corpus;
}

std::vector<PlanPtr> CompileAll(const CorpusEntry& entry) {
  std::vector<PlanPtr> plans;
  for (const Dialect& d : entry.dialects) {
    Result<PlanPtr> plan = Plan::Compile(d.language, d.text);
    EXPECT_TRUE(plan.ok()) << entry.name << ": " << d.text << ": "
                           << plan.status().ToString();
    if (plan.ok()) plans.push_back(std::move(plan).value());
  }
  return plans;
}

TEST(PlanRouteDifferentialTest, DialectsShareOneCanonicalHash) {
  for (const CorpusEntry& entry : Corpus()) {
    SCOPED_TRACE(entry.name);
    std::vector<PlanPtr> plans = CompileAll(entry);
    ASSERT_EQ(plans.size(), entry.dialects.size());
    for (size_t i = 1; i < plans.size(); ++i) {
      EXPECT_EQ(plans[0]->ir().Render(), plans[i]->ir().Render())
          << entry.dialects[i].text;
      EXPECT_TRUE(plans[0]->canonical_hash() == plans[i]->canonical_hash())
          << entry.dialects[i].text << " hashed "
          << plans[i]->canonical_hash().ToHex() << " vs reference "
          << plans[0]->canonical_hash().ToHex();
    }
  }
}

TEST(PlanRouteDifferentialTest, DialectsProduceBitIdenticalResults) {
  std::vector<DocumentPtr> docs = {Catalog(1), Catalog(7, 3),
                                   Random(11, 200)};
  for (const CorpusEntry& entry : Corpus()) {
    SCOPED_TRACE(entry.name);
    std::vector<PlanPtr> plans = CompileAll(entry);
    ASSERT_EQ(plans.size(), entry.dialects.size());
    for (const DocumentPtr& doc : docs) {
      Result<QueryResult> want = plans[0]->Run(*doc);
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      for (size_t i = 1; i < plans.size(); ++i) {
        Result<QueryResult> got = plans[i]->Run(*doc);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        EXPECT_EQ(got->value, want->value)
            << entry.dialects[i].text << " on " << doc->name();
      }
    }
  }
}

// Every engine the plan declares eligible must answer with the same
// value the router's pick produced — the router can only change cost,
// never the answer.
TEST(PlanRouteDifferentialTest, EveryForcedRouteAgreesWithTheRouter) {
  std::vector<DocumentPtr> docs = {Catalog(1), Random(13, 150)};
  ExecContext unbounded;
  for (const CorpusEntry& entry : Corpus()) {
    SCOPED_TRACE(entry.name);
    for (const Dialect& d : entry.dialects) {
      PlanPtr plan = Plan::Compile(d.language, d.text).value();
      ASSERT_FALSE(plan->EligibleEngines().empty()) << d.text;
      for (const DocumentPtr& doc : docs) {
        Result<QueryResult> routed = plan->Run(*doc);
        ASSERT_TRUE(routed.ok()) << routed.status().ToString();
        for (plan::EngineKind kind : plan->EligibleEngines()) {
          ExecuteOptions options;
          options.force_route = plan::EngineName(kind);
          Result<QueryResult> forced =
              plan->Execute(*doc, unbounded, options);
          ASSERT_TRUE(forced.ok())
              << d.text << " forced to " << options.force_route << ": "
              << forced.status().ToString();
          EXPECT_EQ(forced->value, routed->value)
              << d.text << " forced to " << options.force_route << " on "
              << doc->name();
        }
      }
    }
  }
}

TEST(PlanRouteDifferentialTest, ForceRouteRejectsUnknownAndIneligible) {
  PlanPtr plan = Plan::Compile(Language::kXPath, "//name").value();
  DocumentPtr doc = Catalog(1, 3);
  ExecContext unbounded;
  ExecuteOptions options;
  options.force_route = "no.such.engine";
  Result<QueryResult> unknown = plan->Execute(*doc, unbounded, options);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);
  // A real engine name that this plan never declared eligible.
  options.force_route = "fo.naive";
  Result<QueryResult> ineligible = plan->Execute(*doc, unbounded, options);
  ASSERT_FALSE(ineligible.ok());
  EXPECT_EQ(ineligible.status().code(), StatusCode::kUnsupported);
}

// The acceptance criterion: one canonical hash ⇒ one PlanCache entry.
// The second dialect's compile lands on the resident hash and is aliased
// onto the existing entry instead of occupying a second slot.
TEST(PlanRouteDifferentialTest, DialectsShareOnePlanCacheEntry) {
  const CorpusEntry& entry = Corpus()[0];  // descendant-chain, 4 dialects
  PlanCache cache(8);
  for (const Dialect& d : entry.dialects) {
    ASSERT_TRUE(cache.GetOrCompile(d.language, d.text).ok()) << d.text;
  }
  EXPECT_EQ(cache.size(), 1u) << "all dialects must share one entry";
  EXPECT_EQ(cache.misses(), entry.dialects.size());
  EXPECT_EQ(cache.canonical_hits(), entry.dialects.size() - 1);
  // Re-submitting any dialect's text is now a plain hit.
  uint64_t hits_before = cache.hits();
  for (const Dialect& d : entry.dialects) {
    bool hit = false;
    ASSERT_TRUE(cache.GetOrCompile(d.language, d.text, &hit).ok());
    EXPECT_TRUE(hit) << d.text;
  }
  EXPECT_EQ(cache.hits(), hits_before + entry.dialects.size());
}

// One canonical hash ⇒ one ResultCache entry and one execution: the
// second dialect's submission is served from the cache without running.
TEST(PlanRouteDifferentialTest, DialectsShareOneResultCacheEntry) {
  DocumentPtr doc = Catalog(1);
  cache::ResultCache result_cache;
  Executor exec(Executor::Options{.num_workers = 1,
                                  .result_cache = &result_cache});
  const CorpusEntry& entry = Corpus()[0];
  std::vector<PlanPtr> plans = CompileAll(entry);
  ASSERT_EQ(plans.size(), entry.dialects.size());

  Result<QueryResult> first = exec.Submit({plans[0], doc, {}}).future.get();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(result_cache.inserts(), 1u);
  for (size_t i = 1; i < plans.size(); ++i) {
    Result<QueryResult> cached =
        exec.Submit({plans[i], doc, {}}).future.get();
    ASSERT_TRUE(cached.ok()) << cached.status().ToString();
    EXPECT_EQ(cached->value, first->value) << entry.dialects[i].text;
  }
  EXPECT_EQ(result_cache.hits(), entry.dialects.size() - 1)
      << "every other dialect must be served from the shared entry";
  EXPECT_EQ(result_cache.inserts(), 1u);
  EXPECT_EQ(result_cache.size(), 1u);
}

// Routed runs report a rationale; forced runs say so.
TEST(PlanRouteDifferentialTest, ResultsCarryRouteRationale) {
  DocumentPtr doc = Catalog(1);
  PlanPtr plan = Plan::Compile(Language::kXPath, "//name").value();
  QueryResult routed = plan->Run(*doc).value();
  EXPECT_FALSE(routed.route_rationale.empty());
  EXPECT_NE(routed.route_rationale.find("cost="), std::string::npos);
  ExecContext unbounded;
  ExecuteOptions options;
  options.force_route = "xpath.naive";
  QueryResult forced = plan->Execute(*doc, unbounded, options).value();
  EXPECT_EQ(forced.route_rationale, "forced: xpath.naive");
  EXPECT_EQ(std::string(forced.engine), "xpath.naive");
}

}  // namespace
}  // namespace engine
}  // namespace treeq
