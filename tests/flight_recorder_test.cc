#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.h"
#include "obs/stats.h"

namespace treeq {
namespace obs {
namespace {

QueryProfile MakeProfile(uint64_t id, uint64_t execute_ns) {
  QueryProfile p;
  p.id = id;
  p.language = "xpath";
  p.query = "//a";
  p.document = "doc";
  p.engine = "xpath.set_at_a_time";
  p.execute_ns = execute_ns;
  return p;
}

/// Explicit threshold no profile reaches: slow-ring behaviour is inert and
/// the test never touches the global engine.execute_ns histogram.
FlightRecorder::Options NeverSlow(size_t capacity) {
  FlightRecorder::Options options;
  options.capacity = capacity;
  options.slow_capacity = 4;
  options.slow_threshold_ns = UINT64_MAX;
  return options;
}

// Must run before any test that enables the global recorder (gtest runs
// tests in file order within a binary).
TEST(FlightRecorderTest, GlobalStartsDisabledAndDropsRecords) {
  FlightRecorder& global = FlightRecorder::Global();
  EXPECT_FALSE(global.enabled());
  global.Record(MakeProfile(1, 100));
  EXPECT_EQ(global.recorded(), 0u);
  EXPECT_TRUE(global.Recent().empty());
}

TEST(FlightRecorderTest, RecentKeepsInsertionOrder) {
  FlightRecorder recorder;
  recorder.Enable(NeverSlow(16));
  for (uint64_t i = 0; i < 10; ++i) recorder.Record(MakeProfile(i, i));
  std::vector<QueryProfile> recent = recorder.Recent();
  ASSERT_EQ(recent.size(), 10u);
  for (uint64_t i = 0; i < recent.size(); ++i) {
    EXPECT_EQ(recent[i].id, i);
    EXPECT_EQ(recent[i].seq, i + 1);  // seq 0 means "never recorded"
  }
  EXPECT_EQ(recorder.recorded(), 10u);
}

TEST(FlightRecorderTest, CapacityEvictsOldestProfiles) {
  FlightRecorder recorder;
  recorder.Enable(NeverSlow(16));
  EXPECT_EQ(recorder.capacity(), 16u);
  for (uint64_t i = 0; i < 40; ++i) recorder.Record(MakeProfile(i, i));
  EXPECT_EQ(recorder.recorded(), 40u);
  std::vector<QueryProfile> recent = recorder.Recent();
  ASSERT_EQ(recent.size(), 16u);
  // Exactly the last 16 records survive, oldest first.
  for (uint64_t i = 0; i < recent.size(); ++i) {
    EXPECT_EQ(recent[i].id, 24 + i);
  }
}

TEST(FlightRecorderTest, ExplicitThresholdGatesSlowRing) {
  FlightRecorder recorder;
  FlightRecorder::Options options;
  options.capacity = 64;
  options.slow_capacity = 2;
  options.slow_threshold_ns = 1000;
  recorder.Enable(options);
  EXPECT_EQ(recorder.EffectiveSlowThresholdNs(), 1000u);

  recorder.Record(MakeProfile(1, 999));   // below
  recorder.Record(MakeProfile(2, 1000));  // at threshold: slow
  recorder.Record(MakeProfile(3, 5000));  // slow
  recorder.Record(MakeProfile(4, 7000));  // slow, evicts id 2
  EXPECT_EQ(recorder.slow_recorded(), 3u);
  std::vector<QueryProfile> slow = recorder.Slow();
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_EQ(slow[0].id, 3u);
  EXPECT_EQ(slow[1].id, 4u);
  // The main ring still holds everything.
  EXPECT_EQ(recorder.Recent().size(), 4u);
}

TEST(FlightRecorderTest, AutoThresholdWaitsForSamples) {
  StatsRegistry::Global().Reset();  // empty engine.execute_ns histogram
  FlightRecorder recorder;
  FlightRecorder::Options options;
  options.slow_threshold_ns = 0;  // auto
  recorder.Enable(options);
  recorder.Record(MakeProfile(1, 1u << 30));
  // Too few samples to calibrate: nothing is considered slow yet.
  EXPECT_EQ(recorder.EffectiveSlowThresholdNs(), UINT64_MAX);
  EXPECT_EQ(recorder.slow_recorded(), 0u);
}

TEST(FlightRecorderTest, AutoThresholdTracksExecuteP99) {
  StatsRegistry& reg = StatsRegistry::Global();
  reg.Reset();
  Histogram* h = reg.GetHistogram("engine.execute_ns");
  // 100 fast requests and 5 slow ones: the p99 lands in the slow bucket.
  for (int i = 0; i < 100; ++i) h->Record(1000);
  for (int i = 0; i < 5; ++i) h->Record(1000000);

  FlightRecorder recorder;
  FlightRecorder::Options options;
  options.slow_threshold_ns = 0;  // auto
  recorder.Enable(options);
  // The first Record (recorded count 0) recomputes the threshold.
  recorder.Record(MakeProfile(1, 1000));
  const uint64_t threshold = recorder.EffectiveSlowThresholdNs();
  EXPECT_GT(threshold, 1000u);
  EXPECT_LE(threshold, 1000000u);
  EXPECT_EQ(recorder.slow_recorded(), 0u);  // the fast one was not slow

  recorder.Record(MakeProfile(2, 2000000));  // well past any p99 here
  EXPECT_EQ(recorder.slow_recorded(), 1u);
  std::vector<QueryProfile> slow = recorder.Slow();
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_EQ(slow[0].id, 2u);
}

TEST(FlightRecorderTest, DisableStopsRecordingButKeepsProfiles) {
  FlightRecorder recorder;
  recorder.Enable(NeverSlow(16));
  recorder.Record(MakeProfile(1, 10));
  recorder.Disable();
  recorder.Record(MakeProfile(2, 10));  // dropped
  EXPECT_EQ(recorder.recorded(), 1u);
  ASSERT_EQ(recorder.Recent().size(), 1u);
  EXPECT_EQ(recorder.Recent()[0].id, 1u);
  recorder.Clear();
  EXPECT_TRUE(recorder.Recent().empty());
  EXPECT_EQ(recorder.recorded(), 0u);
}

TEST(FlightRecorderTest, EnableReconfiguresAndClears) {
  FlightRecorder recorder;
  recorder.Enable(NeverSlow(16));
  for (uint64_t i = 0; i < 10; ++i) recorder.Record(MakeProfile(i, i));
  recorder.Enable(NeverSlow(32));  // drops retained profiles
  EXPECT_EQ(recorder.capacity(), 32u);
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_TRUE(recorder.Recent().empty());
  EXPECT_TRUE(recorder.enabled());
}

// Run under TSan in CI: concurrent writers land on different shard locks.
TEST(FlightRecorderTest, ConcurrentWritersLoseNothing) {
  FlightRecorder recorder;
  FlightRecorder::Options options;
  options.capacity = 64;
  options.slow_capacity = 8;
  options.slow_threshold_ns = 1500;
  recorder.Enable(options);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Every other profile is slow (2000 >= 1500).
        recorder.Record(MakeProfile(static_cast<uint64_t>(t * kPerThread + i),
                                    i % 2 == 0 ? 1000 : 2000));
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(recorder.recorded(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(recorder.slow_recorded(),
            static_cast<uint64_t>(kThreads) * kPerThread / 2);
  std::vector<QueryProfile> recent = recorder.Recent();
  EXPECT_EQ(recent.size(), recorder.capacity());
  // Every retained seq is unique and within the recorded range.
  for (size_t i = 1; i < recent.size(); ++i) {
    EXPECT_LT(recent[i - 1].seq, recent[i].seq);
  }
  EXPECT_EQ(recorder.Slow().size(), recorder.slow_capacity());
}

TEST(FlightRecorderTest, DumpJsonCarriesProfileFields) {
  FlightRecorder recorder;
  recorder.Enable(NeverSlow(16));
  QueryProfile p = MakeProfile(7, 1234);
  p.query = "//a[b = \"x\"]";
  p.document = "orders";
  p.explain = "xpath: set-at-a-time evaluator";
  recorder.Record(p);
  std::ostringstream os;
  recorder.DumpJson(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"profiles\": ["), std::string::npos) << json;
  EXPECT_NE(json.find("\"document\": \"orders\""), std::string::npos) << json;
  EXPECT_NE(json.find("\\\"x\\\""), std::string::npos) << json;  // escaped
  EXPECT_NE(json.find("\"execute_ns\": 1234"), std::string::npos) << json;
}

TEST(FlightRecorderTest, DumpTableListsRecentAndSlow) {
  FlightRecorder recorder;
  FlightRecorder::Options options;
  options.slow_threshold_ns = 1000;
  recorder.Enable(options);
  recorder.Record(MakeProfile(1, 10));
  recorder.Record(MakeProfile(2, 99000));
  std::ostringstream os;
  recorder.DumpTable(os);
  const std::string table = os.str();
  EXPECT_NE(table.find("flight recorder: 2 recorded"), std::string::npos)
      << table;
  EXPECT_NE(table.find("slow queries:"), std::string::npos) << table;
  EXPECT_NE(table.find("//a"), std::string::npos) << table;
}

#ifndef TREEQ_OBS_DISABLED

TEST(FlightRecorderTest, MacroRecordsIntoGlobal) {
  FlightRecorder& global = FlightRecorder::Global();
  FlightRecorder::Options options;
  options.slow_threshold_ns = UINT64_MAX;
  global.Enable(options);
  TREEQ_OBS_FLIGHT_RECORD(MakeProfile(42, 17));
  EXPECT_EQ(global.recorded(), 1u);
  ASSERT_EQ(global.Recent().size(), 1u);
  EXPECT_EQ(global.Recent()[0].id, 42u);
  global.Disable();
  global.Clear();
}

#endif  // TREEQ_OBS_DISABLED

}  // namespace
}  // namespace obs
}  // namespace treeq
