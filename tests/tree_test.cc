#include "tree/tree.h"

#include <gtest/gtest.h>

namespace treeq {
namespace {

// The running example of the paper, Figure 1(a): root n1 with children
// n2, n3, n4; n4 has children n5, n6.
Tree Figure1Tree() {
  TreeBuilder b;
  NodeId n1 = b.AddChild(kNullNode, "n1");
  b.AddChild(n1, "n2");
  b.AddChild(n1, "n3");
  NodeId n4 = b.AddChild(n1, "n4");
  b.AddChild(n4, "n5");
  b.AddChild(n4, "n6");
  Result<Tree> t = b.Finish();
  EXPECT_TRUE(t.ok());
  return std::move(t).value();
}

TEST(LabelTableTest, InternAndLookup) {
  LabelTable table;
  LabelId a = table.Intern("a");
  LabelId b = table.Intern("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(table.Intern("a"), a);
  EXPECT_EQ(table.Lookup("a"), a);
  EXPECT_EQ(table.Lookup("zzz"), kNullLabel);
  EXPECT_EQ(table.Name(a), "a");
  EXPECT_EQ(table.size(), 2);
}

TEST(TreeTest, Figure1Navigation) {
  Tree t = Figure1Tree();
  ASSERT_EQ(t.num_nodes(), 6);
  NodeId n1 = 0, n2 = 1, n3 = 2, n4 = 3, n5 = 4, n6 = 5;
  EXPECT_EQ(t.root(), n1);
  EXPECT_EQ(t.parent(n1), kNullNode);
  EXPECT_EQ(t.first_child(n1), n2);
  EXPECT_EQ(t.last_child(n1), n4);
  EXPECT_EQ(t.next_sibling(n2), n3);
  EXPECT_EQ(t.next_sibling(n3), n4);
  EXPECT_EQ(t.next_sibling(n4), kNullNode);
  EXPECT_EQ(t.prev_sibling(n3), n2);
  EXPECT_EQ(t.first_child(n4), n5);
  EXPECT_EQ(t.next_sibling(n5), n6);
  EXPECT_EQ(t.parent(n6), n4);
}

TEST(TreeTest, UnaryPredicates) {
  Tree t = Figure1Tree();
  NodeId n1 = 0, n2 = 1, n4 = 3, n6 = 5;
  EXPECT_TRUE(t.IsRoot(n1));
  EXPECT_FALSE(t.IsRoot(n2));
  EXPECT_TRUE(t.IsLeaf(n2));
  EXPECT_FALSE(t.IsLeaf(n4));
  EXPECT_TRUE(t.IsFirstSibling(n1));  // root is trivially first
  EXPECT_TRUE(t.IsFirstSibling(n2));
  EXPECT_FALSE(t.IsFirstSibling(n4));
  EXPECT_TRUE(t.IsLastSibling(n4));
  EXPECT_TRUE(t.IsLastSibling(n6));
  EXPECT_FALSE(t.IsLastSibling(n2));
}

TEST(TreeTest, LabelsAndMultiLabels) {
  TreeBuilder b;
  NodeId root = b.AddChild(kNullNode, "a");
  b.AddLabel(root, "b");
  b.AddLabel(root, "a");  // duplicate, must not double-insert
  NodeId child = b.AddChild(root, std::vector<std::string>{"x", "y"});
  Result<Tree> tr = b.Finish();
  ASSERT_TRUE(tr.ok());
  const Tree& t = tr.value();
  EXPECT_EQ(t.labels(root).size(), 2u);
  EXPECT_TRUE(t.HasLabel(root, "a"));
  EXPECT_TRUE(t.HasLabel(root, "b"));
  EXPECT_FALSE(t.HasLabel(root, "x"));
  EXPECT_TRUE(t.HasLabel(child, "x"));
  EXPECT_TRUE(t.HasLabel(child, "y"));
  EXPECT_EQ(t.label(root), t.label_table().Lookup("a"));
}

TEST(TreeTest, NodesWithLabel) {
  Tree t = Figure1Tree();
  LabelId n4 = t.label_table().Lookup("n4");
  std::vector<NodeId> nodes = t.NodesWithLabel(n4);
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0], 3);
}

TEST(TreeTest, NumChildrenAndDepth) {
  Tree t = Figure1Tree();
  EXPECT_EQ(t.NumChildren(0), 3);
  EXPECT_EQ(t.NumChildren(3), 2);
  EXPECT_EQ(t.NumChildren(1), 0);
  EXPECT_EQ(t.Depth(), 2);
}

TEST(TreeBuilderTest, DocumentStyle) {
  TreeBuilder b;
  b.BeginNode("root");
  b.BeginNode("a");
  b.EndNode();
  b.BeginNode("b");
  b.BeginNode("c");
  b.EndNode();
  b.EndNode();
  b.EndNode();
  Result<Tree> tr = b.Finish();
  ASSERT_TRUE(tr.ok());
  const Tree& t = tr.value();
  ASSERT_EQ(t.num_nodes(), 4);
  EXPECT_TRUE(t.HasLabel(0, "root"));
  EXPECT_EQ(t.parent(3), 2);  // c under b
  EXPECT_EQ(t.next_sibling(1), 2);
}

TEST(TreeBuilderTest, MixedStyles) {
  TreeBuilder b;
  NodeId root = b.BeginNode("root");
  b.BeginNode("kid");
  b.EndNode();
  b.EndNode();
  NodeId extra = b.AddChild(root, "extra");
  Result<Tree> tr = b.Finish();
  ASSERT_TRUE(tr.ok());
  EXPECT_EQ(tr.value().parent(extra), root);
  EXPECT_EQ(tr.value().next_sibling(1), extra);
}

TEST(TreeBuilderTest, UnclosedNodeFailsFinish) {
  TreeBuilder b;
  b.BeginNode("root");
  Result<Tree> tr = b.Finish();
  EXPECT_FALSE(tr.ok());
  EXPECT_EQ(tr.status().code(), StatusCode::kInvalidArgument);
}

TEST(TreeBuilderTest, EmptyTreeFailsFinish) {
  TreeBuilder b;
  Result<Tree> tr = b.Finish();
  EXPECT_FALSE(tr.ok());
}

TEST(TreeTest, OutlineRendersStructure) {
  Tree t = Figure1Tree();
  std::string outline = ToOutline(t);
  EXPECT_NE(outline.find("n1\n"), std::string::npos);
  EXPECT_NE(outline.find("  n2\n"), std::string::npos);
  EXPECT_NE(outline.find("    n5\n"), std::string::npos);
}

}  // namespace
}  // namespace treeq
