#include <gtest/gtest.h>

#include <string>

#include "datalog/ast.h"
#include "datalog/evaluator.h"
#include "datalog/grounder.h"
#include "datalog/parser.h"
#include "datalog/tmnf.h"
#include "tree/generator.h"
#include "tree/orders.h"
#include "util/random.h"

namespace treeq {
namespace datalog {
namespace {

// Example 3.1: nodes that have an ancestor labeled L.
constexpr const char* kExample31 = R"(
  % P0 marks nodes all of whose... see Example 3.1 of the paper.
  P0(x)  :- Label("L", x).
  P0(x0) :- NextSibling(x0, x), P0(x).
  P(x0)  :- FirstChild(x0, x), P0(x).
  P0(x)  :- P(x).
  ?- P.
)";

TEST(DatalogParserTest, ParsesExample31) {
  Result<Program> p = ParseProgram(kExample31);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p.value().rules().size(), 4u);
  EXPECT_EQ(p.value().query_predicate(), "P");
  EXPECT_EQ(p.value().IntensionalPredicates().size(), 2u);
}

TEST(DatalogParserTest, ToStringRoundTrips) {
  Result<Program> p = ParseProgram(kExample31);
  ASSERT_TRUE(p.ok());
  std::string text = p.value().ToString();
  Result<Program> p2 = ParseProgram(text);
  ASSERT_TRUE(p2.ok()) << p2.status().ToString() << "\n" << text;
  EXPECT_EQ(p2.value().ToString(), text);
}

TEST(DatalogParserTest, LabUnderscoreSyntax) {
  Result<Program> p = ParseProgram("Q(x) :- Lab_foo(x). ?- Q.");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  ASSERT_EQ(p.value().rules()[0].body.size(), 1u);
  EXPECT_EQ(p.value().rules()[0].body[0].label, "foo");
}

TEST(DatalogParserTest, AxisAndBuiltinAtoms) {
  Result<Program> p = ParseProgram(R"(
    Q(x) :- Child+(y, x), Root(y).
    Q(x) :- Leaf(x), LastSibling(x), Dom(x).
    ?- Q.
  )");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  const Rule& r0 = p.value().rules()[0];
  EXPECT_EQ(r0.body[0].axis, Axis::kDescendant);
}

TEST(DatalogParserTest, FactRule) {
  Result<Program> p = ParseProgram("Q(x). ?- Q.");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_TRUE(p.value().rules()[0].body.empty());
}

TEST(DatalogParserTest, Errors) {
  EXPECT_FALSE(ParseProgram("").ok());                      // no rules
  EXPECT_FALSE(ParseProgram("Q(x) :- Lab_a(x).").ok());     // no query
  EXPECT_FALSE(ParseProgram("?- Q.").ok());                 // undefined query
  EXPECT_FALSE(ParseProgram("Q(x) :- R(y). ?- Q.").ok());   // head var free
  EXPECT_FALSE(ParseProgram("Q(x) : Lab_a(x). ?- Q.").ok());
  EXPECT_FALSE(ParseProgram("Q(x) :- Undefined(y), Child(x, y). ?- Q.").ok());
}

TEST(TmnfTest, RecognizesForms) {
  Result<Program> p = ParseProgram(kExample31);
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(IsTmnf(p.value()));

  Result<Program> q =
      ParseProgram("Q(x) :- Child+(y, x), Lab_a(y). ?- Q.");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(IsTmnf(q.value()));  // Child+ is not a TMNF step relation
}

TEST(TmnfTest, TransformPreservesTmnfPrograms) {
  Result<Program> p = ParseProgram(kExample31);
  ASSERT_TRUE(p.ok());
  Result<Program> t = ToTmnf(p.value());
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_TRUE(IsTmnf(t.value()));
}

TEST(TmnfTest, RejectsCyclicRuleBodies) {
  Result<Program> p = ParseProgram(
      "Q(x) :- Child(x, y), Child(y, z), Child+(x, z). ?- Q.");
  ASSERT_TRUE(p.ok());
  Result<Program> t = ToTmnf(p.value());
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kUnsupported);
}

TEST(TmnfTest, RejectsParallelEdges) {
  Result<Program> p =
      ParseProgram("Q(x) :- Child(x, y), Child+(x, y). ?- Q.");
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(ToTmnf(p.value()).ok());
}

TEST(TmnfTest, SelfAtomsUnifyVariables) {
  Result<Program> p =
      ParseProgram("Q(x) :- self(x, y), Lab_a(y). ?- Q.");
  ASSERT_TRUE(p.ok());
  Result<Program> t = ToTmnf(p.value());
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_TRUE(IsTmnf(t.value()));
}

Tree AncestorLTree() {
  // root(a) -> b(L) -> c, d ; root -> e
  TreeBuilder b;
  NodeId root = b.AddChild(kNullNode, "a");
  NodeId l = b.AddChild(root, "L");
  b.AddChild(l, "c");
  b.AddChild(l, "d");
  b.AddChild(root, "e");
  Result<Tree> t = b.Finish();
  EXPECT_TRUE(t.ok());
  return std::move(t).value();
}

TEST(DatalogEvalTest, Example31SelectsNodesWithLDescendant) {
  Tree tree = AncestorLTree();
  Result<Program> p = ParseProgram(kExample31);
  ASSERT_TRUE(p.ok());
  Result<NodeSet> result = EvaluateDatalog(p.value(), tree);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Following the program text (and its grounding in Example 3.3, which
  // derives P at the root above the L node), P marks the nodes with a
  // *descendant* labeled L — here only the root. (The paper's prose says
  // "ancestor", but its own Example 3.3 trace shows the downward-looking
  // semantics used here.)
  EXPECT_EQ(result.value().ToVector(), (std::vector<NodeId>{0}));
}

TEST(DatalogEvalTest, DerivedAxisProgram) {
  Tree tree = AncestorLTree();
  // Same query written directly with Child+.
  Result<Program> p = ParseProgram(
      "Q(x) :- Child+(y, x), Label(\"L\", y). ?- Q.");
  ASSERT_TRUE(p.ok());
  Result<NodeSet> result = EvaluateDatalog(p.value(), tree);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().ToVector(), (std::vector<NodeId>{2, 3}));
}

TEST(DatalogEvalTest, StatsReportSizes) {
  Tree tree = AncestorLTree();
  Result<Program> p = ParseProgram(kExample31);
  ASSERT_TRUE(p.ok());
  EvalStats stats;
  Result<NodeSet> result = EvaluateDatalog(p.value(), tree, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(stats.tmnf_rules, 0);
  EXPECT_GT(stats.ground_clauses, 0);
  EXPECT_GE(stats.ground_literals, stats.ground_clauses);
}

// Property test: the Theorem 3.2 pipeline agrees with the naive fixpoint
// oracle on random trees across a suite of programs exercising every
// derived axis and builtin.
class DatalogAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(DatalogAgreementTest, PipelineMatchesNaiveOracle) {
  Rng rng(GetParam());
  RandomTreeOptions opts;
  opts.num_nodes = 30;
  opts.attach_window = 1 + GetParam() % 6;
  opts.alphabet = {"a", "b", "L"};
  Tree tree = RandomTree(&rng, opts);
  TreeOrders orders = ComputeOrders(tree);

  const char* kPrograms[] = {
      kExample31,
      "Q(x) :- Child+(y, x), Lab_L(y). ?- Q.",
      "Q(x) :- Child(x, y), Lab_a(y). ?- Q.",
      "Q(x) :- parent(x, y), Lab_b(y). ?- Q.",
      "Q(x) :- ancestor(x, y), Root(y), Leaf(x). ?- Q.",
      "Q(x) :- Child*(x, y), Lab_L(y). ?- Q.",
      "Q(x) :- NextSibling(x, y), Lab_a(y). ?- Q.",
      "Q(x) :- NextSibling+(x, y), Lab_L(y). ?- Q.",
      "Q(x) :- NextSibling*(y, x), Lab_b(y). ?- Q.",
      "Q(x) :- preceding-sibling(x, y), Lab_a(y). ?- Q.",
      "Q(x) :- Following(x, y), Lab_L(y). ?- Q.",
      "Q(x) :- preceding(x, y), Lab_a(y). ?- Q.",
      "Q(x) :- FirstChild(y, x), Lab_a(y). ?- Q.",
      "Q(x) :- LastSibling(x), Lab_b(x). ?- Q.",
      "Q(x) :- FirstSibling(x). ?- Q.",
      "Q(x) :- Dom(x), Leaf(x). ?- Q.",
      // A deeper tree-shaped rule: x with an a-child that has an L-descendant,
      // and x itself following some b node.
      "Q(x) :- Child(x, y), Lab_a(y), Child+(y, z), Lab_L(z),"
      " preceding(x, w), Lab_b(w). ?- Q.",
      // Mutual recursion through derived axes.
      "Even(x) :- Root(x).\n"
      "Odd(x)  :- Child(y, x), Even(y).\n"
      "Even(x) :- Child(y, x), Odd(y).\n"
      "?- Even.",
  };

  for (const char* text : kPrograms) {
    Result<Program> p = ParseProgram(text);
    ASSERT_TRUE(p.ok()) << p.status().ToString() << "\n" << text;
    Result<NodeSet> fast = EvaluateDatalog(p.value(), tree);
    ASSERT_TRUE(fast.ok()) << fast.status().ToString() << "\n" << text;
    Result<NodeSet> slow = EvaluateDatalogNaive(p.value(), tree, orders);
    ASSERT_TRUE(slow.ok()) << slow.status().ToString();
    EXPECT_EQ(fast.value().ToVector(), slow.value().ToVector())
        << "program:\n"
        << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DatalogAgreementTest, ::testing::Range(0, 6));

TEST(GrounderTest, RequiresTmnf) {
  Result<Program> p =
      ParseProgram("Q(x) :- Child+(y, x), Lab_a(y). ?- Q.");
  ASSERT_TRUE(p.ok());
  Tree tree = Chain(3);
  EXPECT_FALSE(GroundTmnf(p.value(), tree).ok());
}

TEST(GrounderTest, GroundSizeLinearInProgramAndTree) {
  Result<Program> p = ParseProgram(kExample31);
  ASSERT_TRUE(p.ok());
  Tree small = Chain(10, "a", "L");
  Tree large = Chain(100, "a", "L");
  Result<GroundProgram> gs = GroundTmnf(p.value(), small);
  Result<GroundProgram> gl = GroundTmnf(p.value(), large);
  ASSERT_TRUE(gs.ok());
  ASSERT_TRUE(gl.ok());
  // Clause count scales linearly with the tree (within rounding slack).
  EXPECT_NEAR(static_cast<double>(gl.value().horn.num_clauses()) /
                  gs.value().horn.num_clauses(),
              10.0, 2.0);
}

TEST(ValidateTest, RejectsUnusedVariables) {
  Program p;
  Rule r;
  r.head_pred = "Q";
  r.head_var = 0;
  r.var_names = {"x", "y"};
  r.body = {Atom::MakeLabel("a", 0)};
  p.rules().push_back(r);
  p.set_query_predicate("Q");
  EXPECT_FALSE(p.Validate().ok());
}

}  // namespace
}  // namespace datalog
}  // namespace treeq
