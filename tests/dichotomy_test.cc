#include "cq/dichotomy.h"

#include <gtest/gtest.h>

#include "cq/naive.h"
#include "cq/parser.h"
#include "tree/generator.h"
#include "util/random.h"

namespace treeq {
namespace cq {
namespace {

ConjunctiveQuery MustParse(const std::string& text) {
  Result<ConjunctiveQuery> q = ParseCq(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(q).value();
}

TEST(ClassifyTest, TractableSignatures) {
  EXPECT_EQ(ClassifySignature({Axis::kDescendant, Axis::kDescendantOrSelf}),
            SignatureClass::kTau1);
  EXPECT_EQ(ClassifySignature({Axis::kFollowing}), SignatureClass::kTau2);
  EXPECT_EQ(ClassifySignature({Axis::kChild, Axis::kNextSibling,
                               Axis::kFollowingSibling,
                               Axis::kFollowingSiblingOrSelf}),
            SignatureClass::kTau3);
  EXPECT_EQ(ClassifySignature({Axis::kSelf}), SignatureClass::kTau1);
  EXPECT_EQ(ClassifySignature({}), SignatureClass::kTau1);
}

TEST(ClassifyTest, InverseAxesClassifyLikeBaseAxes) {
  EXPECT_EQ(ClassifySignature({Axis::kAncestor}), SignatureClass::kTau1);
  EXPECT_EQ(ClassifySignature({Axis::kPreceding}), SignatureClass::kTau2);
  EXPECT_EQ(ClassifySignature({Axis::kParent, Axis::kPrevSibling}),
            SignatureClass::kTau3);
}

TEST(ClassifyTest, NpHardCombinations) {
  // The canonical hard mixes from Theorem 6.8's discussion: no single
  // order covers them.
  EXPECT_EQ(ClassifySignature({Axis::kChild, Axis::kDescendant}),
            SignatureClass::kNpHard);
  EXPECT_EQ(ClassifySignature({Axis::kDescendant, Axis::kFollowing}),
            SignatureClass::kNpHard);
  EXPECT_EQ(ClassifySignature({Axis::kDescendant, Axis::kNextSibling}),
            SignatureClass::kNpHard);
  EXPECT_EQ(ClassifySignature({Axis::kFollowing, Axis::kNextSibling}),
            SignatureClass::kNpHard);
  EXPECT_EQ(ClassifySignature({Axis::kChild, Axis::kFollowing}),
            SignatureClass::kNpHard);
}

TEST(ClassifyTest, OrderForClassMapping) {
  EXPECT_EQ(OrderForClass(SignatureClass::kTau1), TreeOrder::kPre);
  EXPECT_EQ(OrderForClass(SignatureClass::kTau2), TreeOrder::kPost);
  EXPECT_EQ(OrderForClass(SignatureClass::kTau3), TreeOrder::kBflr);
  EXPECT_EQ(OrderForClass(SignatureClass::kNpHard), std::nullopt);
}

class DichotomyAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(DichotomyAgreementTest, DispatcherMatchesNaive) {
  Rng rng(GetParam());
  RandomTreeOptions opts;
  opts.num_nodes = 18;
  opts.attach_window = 1 + GetParam() % 5;
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);
  struct Case {
    const char* text;
    bool tractable;
  };
  const Case kCases[] = {
      {"Q() :- Child+(x, y), Child+(y, z), Child+(x, z), Lab_a(y).", true},
      {"Q() :- Following(x, y), Following(y, z), Lab_b(x).", true},
      {"Q() :- Child(x, y), Child(x, z), NextSibling(y, z).", true},
      {"Q() :- ancestor(x, y), Lab_a(y).", true},
      // Hard signatures fall back to search.
      {"Q() :- Child(x, y), Child+(y, z), Lab_c(z).", false},
      {"Q() :- Child+(x, y), Following(x, z), Lab_a(z).", false},
      {"Q() :- Child+(x, y), NextSibling(y, z).", false},
  };
  for (const Case& c : kCases) {
    ConjunctiveQuery q = MustParse(c.text);
    bool used_tractable = false;
    Result<bool> fast = EvaluateBooleanDichotomy(q, t, o, &used_tractable);
    ASSERT_TRUE(fast.ok()) << c.text << ": " << fast.status().ToString();
    EXPECT_EQ(used_tractable, c.tractable) << c.text;
    Result<bool> slow = NaiveSatisfiableCq(q, t, o);
    ASSERT_TRUE(slow.ok());
    EXPECT_EQ(fast.value(), slow.value()) << c.text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DichotomyAgreementTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace cq
}  // namespace treeq
