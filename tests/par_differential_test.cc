// Differential tests for the partition-parallel kernels and the engine's
// parallel execution path (tree/par_axes.h, storage/par_join.h,
// cq/par_twig.h, engine/plan.h + executor.h): every parallel result must be
// bit-identical (NodeSets) or canonical-set-identical (tuple sets) to the
// serial kernel it shadows, at parallelism 0, 2, and 8, under both a true
// multi-thread runner and a pinned serial runner. min_context is forced to
// 1 throughout so even word-boundary-sized documents take the fork path.
//
// Also covered: deadline/budget/cancel fan-out into forked child tasks (a
// cancelled parent must stop its children, not just itself), and the
// ParseQuery options satellite (max_nesting override, paper-axes dialect
// gate) including bit-identical default error messages.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cq/par_twig.h"
#include "cq/twig_join.h"
#include "engine/executor.h"
#include "engine/plan.h"
#include "query/parse.h"
#include "storage/par_join.h"
#include "storage/structural_join.h"
#include "tree/axes.h"
#include "tree/document.h"
#include "tree/generator.h"
#include "tree/node_set.h"
#include "tree/orders.h"
#include "tree/par_axes.h"
#include "tree/partition.h"
#include "util/exec_context.h"
#include "util/random.h"
#include "util/task_runner.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace treeq {
namespace {

const Axis kAllAxes[] = {
    Axis::kSelf,
    Axis::kChild,
    Axis::kParent,
    Axis::kDescendant,
    Axis::kAncestor,
    Axis::kDescendantOrSelf,
    Axis::kAncestorOrSelf,
    Axis::kNextSibling,
    Axis::kPrevSibling,
    Axis::kFollowingSibling,
    Axis::kPrecedingSibling,
    Axis::kFollowingSiblingOrSelf,
    Axis::kPrecedingSiblingOrSelf,
    Axis::kFollowing,
    Axis::kPreceding,
    Axis::kFirstChild,
    Axis::kFirstChildInv,
};

// Same word-boundary universe sizes as axes_kernel_test.cc: the OR-merge
// and the partition masks share the tail-masking hazards.
const int kUniverseSizes[] = {1, 5, 63, 64, 65, 127, 128, 130, 192};

const int kParallelisms[] = {0, 2, 8};

std::set<NodeId> RandomSubset(Rng* rng, int n, double density) {
  std::set<NodeId> s;
  for (NodeId v = 0; v < n; ++v) {
    if (rng->Bernoulli(density)) s.insert(v);
  }
  return s;
}

// The full axes_kernel_test input grid: empty, singletons, full universe,
// three densities. Serial AxisImage is the oracle.
void CheckAllAxesParallel(const Tree& t, Rng* rng, const char* shape) {
  const int n = t.num_nodes();
  const TreeOrders o = ComputeOrders(t);
  const TreePartition partition(t, o);
  std::vector<std::set<NodeId>> inputs;
  inputs.push_back({});
  inputs.push_back({t.root()});
  inputs.push_back({static_cast<NodeId>(n - 1)});
  std::set<NodeId> all;
  for (NodeId v = 0; v < n; ++v) all.insert(v);
  inputs.push_back(all);
  for (double density : {0.05, 0.3, 0.8}) {
    inputs.push_back(RandomSubset(rng, n, density));
  }

  par::SerialRunner serial_runner;
  par::ThreadPerTaskRunner thread_runner;
  par::TaskRunner* runners[] = {&serial_runner, &thread_runner};

  for (Axis axis : kAllAxes) {
    for (const std::set<NodeId>& from_ref : inputs) {
      NodeSet from(n);
      for (NodeId v : from_ref) from.Insert(v);
      NodeSet want(n);
      AxisImage(t, o, axis, from, &want);

      for (int parallelism : kParallelisms) {
        for (par::TaskRunner* runner : runners) {
          par::ParOptions options;
          options.parallelism = parallelism;
          options.runner = parallelism >= 2 ? runner : nullptr;
          options.min_context = 1;  // force forking on tiny inputs
          NodeSet got(n);
          Status s = par::ParAxisImage(t, o, partition, axis, from, &got,
                                       options, ExecContext::Unbounded());
          ASSERT_TRUE(s.ok()) << s.ToString();
          EXPECT_TRUE(got == want)
              << shape << " n=" << n << " axis=" << AxisName(axis)
              << " |from|=" << from_ref.size() << " k=" << parallelism;
          if (parallelism < 2) break;  // runner is ignored when serial
        }
      }
    }
  }
}

TEST(ParAxesDifferentialTest, RandomTrees) {
  Rng rng(1234);
  for (int n : kUniverseSizes) {
    RandomTreeOptions opts;
    opts.num_nodes = n;
    opts.attach_window = 4;  // non-pre-order node ids: remap path
    opts.alphabet = {"a", "b"};
    Tree t = RandomTree(&rng, opts);
    CheckAllAxesParallel(t, &rng, "random");
  }
}

TEST(ParAxesDifferentialTest, DeepPaths) {
  Rng rng(99);
  for (int n : kUniverseSizes) {
    Tree t = Chain(n, "a", "b");
    CheckAllAxesParallel(t, &rng, "chain");
  }
}

TEST(ParAxesDifferentialTest, WideFlat) {
  Rng rng(7);
  for (int n : kUniverseSizes) {
    if (n < 2) continue;
    Tree t = Star(n);
    CheckAllAxesParallel(t, &rng, "star");
  }
}

// ---------------------------------------------------------------------------
// ParStackTreeJoin vs StackTreeJoin: output must be bit-identical including
// row order (the chunked join preserves the serial descendant grouping).

TEST(ParJoinDifferentialTest, MatchesSerialStackTreeJoin) {
  par::ThreadPerTaskRunner runner;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(500 + seed);
    RandomTreeOptions opts;
    opts.num_nodes = static_cast<int>(rng.Uniform(2, 192));
    opts.attach_window = static_cast<int>(rng.Uniform(1, 8));
    opts.alphabet = {"a", "b"};
    Tree t = RandomTree(&rng, opts);
    TreeOrders o = ComputeOrders(t);

    std::vector<NodeId> anc_nodes, desc_nodes;
    for (NodeId v = 0; v < t.num_nodes(); ++v) {
      if (rng.Bernoulli(0.5)) anc_nodes.push_back(v);
      if (rng.Bernoulli(0.5)) desc_nodes.push_back(v);
    }
    std::vector<JoinItem> ancestors = MakeJoinItems(o, anc_nodes);
    std::vector<JoinItem> descendants = MakeJoinItems(o, desc_nodes);

    for (bool parent_child : {false, true}) {
      std::vector<std::pair<NodeId, NodeId>> want =
          StackTreeJoin(ancestors, descendants, parent_child);
      for (int parallelism : kParallelisms) {
        par::ParOptions options;
        options.parallelism = parallelism;
        options.runner = parallelism >= 2 ? &runner : nullptr;
        options.min_context = 1;
        std::vector<std::pair<NodeId, NodeId>> got;
        Status s = par::ParStackTreeJoin(ancestors, descendants, parent_child,
                                         &got, options,
                                         ExecContext::Unbounded());
        ASSERT_TRUE(s.ok()) << s.ToString();
        EXPECT_EQ(got, want) << "seed " << 500 + seed
                             << " parent_child=" << parent_child
                             << " k=" << parallelism;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// 100-seed twig corpus: ParTwigStackJoin vs TwigStackJoin, same document
// and pattern recipe as differential_test.cc.

const std::vector<std::string> kAlphabet = {"a", "b", "c"};

std::string RandomLabel(Rng* rng) {
  return kAlphabet[static_cast<size_t>(
      rng->Uniform(0, static_cast<int64_t>(kAlphabet.size()) - 1))];
}

Tree RandomDocumentTree(Rng* rng, int max_nodes) {
  static const int kSizes[] = {3, 7, 31, 63, 64, 65, 96, 127, 128, 129};
  std::vector<int> sizes;
  for (int s : kSizes) {
    if (s <= max_nodes) sizes.push_back(s);
  }
  int n = sizes[static_cast<size_t>(
      rng->Uniform(0, static_cast<int64_t>(sizes.size()) - 1))];
  switch (rng->Uniform(0, 3)) {
    case 0:
      return Chain(n, "a", "b");
    case 1:
      return Star(n, "a", rng->Bernoulli(0.5) ? "a" : "b");
    default: {
      RandomTreeOptions opt;
      opt.num_nodes = n;
      opt.attach_window = static_cast<int>(rng->Uniform(1, 8));
      opt.alphabet = kAlphabet;
      opt.second_label_prob = 0.2;
      return RandomTree(rng, opt);
    }
  }
}

cq::TwigPattern RandomTwig(Rng* rng, int max_nodes) {
  cq::TwigPattern pattern;
  int n = static_cast<int>(rng->Uniform(1, max_nodes));
  for (int i = 0; i < n; ++i) {
    cq::TwigPatternNode node;
    node.label = RandomLabel(rng);
    if (i > 0) {
      node.parent = static_cast<int>(rng->Uniform(0, i - 1));
      node.edge = rng->Bernoulli(0.5) ? Axis::kChild : Axis::kDescendant;
    }
    pattern.nodes.push_back(std::move(node));
  }
  return pattern;
}

cq::TupleSet Sorted(cq::TupleSet tuples) {
  std::sort(tuples.begin(), tuples.end());
  return tuples;
}

TEST(ParTwigDifferentialTest, HundredSeedCorpus) {
  const int kTrials = 100;
  par::ThreadPerTaskRunner runner;
  for (uint64_t seed = 0; seed < kTrials; ++seed) {
    Rng rng(1000 + seed);
    Document doc(RandomDocumentTree(&rng, /*max_nodes=*/129));
    cq::TwigPattern pattern = RandomTwig(&rng, /*max_nodes=*/4);
    ASSERT_TRUE(pattern.Validate().ok()) << pattern.ToString();

    Result<cq::TupleSet> serial = cq::TwigStackJoin(pattern, doc);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    cq::TupleSet want = Sorted(std::move(serial).value());

    for (int parallelism : kParallelisms) {
      par::ParOptions options;
      options.parallelism = parallelism;
      options.runner = parallelism >= 2 ? &runner : nullptr;
      options.min_context = 1;
      Result<cq::TupleSet> got = cq::ParTwigStackJoin(pattern, doc, options);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(Sorted(std::move(got).value()), want)
          << "seed " << 1000 + seed << " k=" << parallelism << " on "
          << pattern.ToString();
    }
  }
}

// The parallel twig join's canonical output must equal the serial join's
// canonical output exactly (not just as sorted multisets): both end in one
// CanonicalizeTuples pass.
TEST(ParTwigDifferentialTest, CanonicalOrderMatchesSerial) {
  Rng rng(77);
  par::ThreadPerTaskRunner runner;
  Document doc(CatalogDocument(&rng, CatalogOptions{}));
  cq::TwigPattern pattern;
  pattern.nodes.push_back({"catalog", Axis::kDescendant, -1});
  pattern.nodes.push_back({"product", Axis::kDescendant, 0});
  pattern.nodes.push_back({"review", Axis::kDescendant, 1});
  ASSERT_TRUE(pattern.Validate().ok());

  Result<cq::TupleSet> serial = cq::TwigStackJoin(pattern, doc);
  ASSERT_TRUE(serial.ok());
  par::ParOptions options;
  options.parallelism = 8;
  options.runner = &runner;
  options.min_context = 1;
  par::ParStats stats;
  Result<cq::TupleSet> parallel = cq::ParTwigStackJoin(
      pattern, doc, options, ExecContext::Unbounded(), nullptr, &stats);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(parallel.value(), serial.value());
  EXPECT_GT(stats.partitions, 0);
}

// ---------------------------------------------------------------------------
// Whole-query parallel evaluation: EvalQueryFromRootParallel and
// Plan::Execute must return bit-identical NodeSets at every parallelism.

const char* const kQueries[] = {
    "//a",
    "//a//b",
    "/descendant-or-self::*[a]/b",
    "//b[following-sibling::a]/ancestor::a",
    "//a[not(b)]/following::b",
};

TEST(ParEvalDifferentialTest, WholeQueriesBitIdentical) {
  Rng rng(4242);
  RandomTreeOptions opts;
  opts.num_nodes = 400;
  opts.attach_window = 6;
  opts.alphabet = {"a", "b"};
  Document doc(RandomTree(&rng, opts));
  par::ThreadPerTaskRunner runner;

  for (const char* text : kQueries) {
    auto parsed = xpath::ParseXPath(text);
    ASSERT_TRUE(parsed.ok()) << text << ": " << parsed.status().ToString();
    const xpath::PathExpr& path = *parsed.value();
    Result<NodeSet> want =
        xpath::EvalQueryFromRoot(doc, path, ExecContext::Unbounded());
    ASSERT_TRUE(want.ok());

    for (int parallelism : kParallelisms) {
      par::ParOptions options;
      options.parallelism = parallelism;
      options.runner = parallelism >= 2 ? &runner : nullptr;
      options.min_context = 1;
      par::ParStats stats;
      Result<NodeSet> got = xpath::EvalQueryFromRootParallel(
          doc, path, ExecContext::Unbounded(), options, &stats);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_TRUE(got.value() == want.value())
          << text << " k=" << parallelism;
      if (parallelism >= 2) {
        EXPECT_GT(stats.partitions, 0) << text;
      }
    }
  }
}

// Charge-schedule identity at parallelism 0: the parallel entry point with
// a degenerate ParOptions must trip a visit budget at exactly the same
// point as the serial evaluator (same status, same visits_used).
TEST(ParEvalDifferentialTest, SerialPathPreservesChargeSchedule) {
  Rng rng(11);
  RandomTreeOptions opts;
  opts.num_nodes = 200;
  opts.alphabet = {"a", "b"};
  Document doc(RandomTree(&rng, opts));
  auto parsed = xpath::ParseXPath("//a//b");
  ASSERT_TRUE(parsed.ok());

  // Find the exact budget at which the serial run completes.
  ExecContext probe = ExecContext::WithVisitBudget(UINT64_MAX);
  Result<NodeSet> full =
      xpath::EvalQueryFromRoot(doc, *parsed.value(), probe);
  ASSERT_TRUE(full.ok());
  const uint64_t exact = probe.visits_used();

  for (uint64_t budget : {exact, exact - 1, exact / 2}) {
    ExecContext serial_exec = ExecContext::WithVisitBudget(budget);
    Result<NodeSet> serial =
        xpath::EvalQueryFromRoot(doc, *parsed.value(), serial_exec);

    ExecContext par_exec = ExecContext::WithVisitBudget(budget);
    par::ParOptions options;  // parallelism 0: must be the identical path
    Result<NodeSet> parallel = xpath::EvalQueryFromRootParallel(
        doc, *parsed.value(), par_exec, options);

    EXPECT_EQ(serial.ok(), parallel.ok()) << "budget " << budget;
    if (serial.ok() && parallel.ok()) {
      EXPECT_TRUE(serial.value() == parallel.value());
    } else if (!serial.ok() && !parallel.ok()) {
      EXPECT_EQ(serial.status().code(), parallel.status().code());
    }
    EXPECT_EQ(serial_exec.visits_used(), par_exec.visits_used())
        << "budget " << budget;
  }
}

// ---------------------------------------------------------------------------
// Engine level: Submit(QueryRequest) with options.parallelism produces the
// same nodes as the serial plan run, and the result carries partition
// attribution when the parallel path actually ran.

TEST(ParEngineTest, SubmitParallelismMatchesSerial) {
  Rng rng(21);
  RandomTreeOptions opts;
  opts.num_nodes = 3000;
  opts.attach_window = 8;
  opts.alphabet = {"a", "b"};
  DocumentPtr doc = MakeDocumentWithOrders(RandomTree(&rng, opts));

  auto plan = engine::Plan::Compile(Language::kXPath, "//a//b");
  ASSERT_TRUE(plan.ok());
  Result<QueryResult> serial = plan.value()->Run(*doc);
  ASSERT_TRUE(serial.ok());

  engine::Executor executor(engine::Executor::Options{.num_workers = 4});
  for (int parallelism : kParallelisms) {
    QueryRequest request;
    request.plan = plan.value();
    request.document = doc;
    request.options.parallelism = parallelism;
    engine::Submission submission = executor.Submit(std::move(request));
    Result<QueryResult> got = submission.future.get();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_TRUE(got->is_nodes());
    EXPECT_TRUE(got->nodes() == serial->nodes()) << "k=" << parallelism;
    if (parallelism == 0) {
      EXPECT_EQ(got->partitions, 0);
    }
  }
}

// Forcing the classifier floor down via Plan::Execute with the executor's
// own task runner: the parallel path must run (partitions > 0) and still
// agree bit-for-bit.
TEST(ParEngineTest, ExecuteOnExecutorRunnerReportsPartitions) {
  Rng rng(22);
  RandomTreeOptions opts;
  opts.num_nodes = 1500;
  opts.attach_window = 8;
  opts.alphabet = {"a", "b"};
  DocumentPtr doc = MakeDocumentWithOrders(RandomTree(&rng, opts));
  auto plan = engine::Plan::Compile(Language::kXPath, "//a//b");
  ASSERT_TRUE(plan.ok());
  Result<QueryResult> serial = plan.value()->Run(*doc);
  ASSERT_TRUE(serial.ok());

  engine::Executor executor(engine::Executor::Options{.num_workers = 2});
  engine::ExecuteOptions exec_options;
  exec_options.parallelism = 8;
  exec_options.runner = &executor.task_runner();
  exec_options.parallel_min_visits = 1;  // force the parallel route
  exec_options.parallel_min_context = 1;
  Result<QueryResult> got = plan.value()->Execute(
      *doc, ExecContext::Unbounded(), exec_options);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(got->nodes() == serial->nodes());
  EXPECT_GT(got->partitions, 0);
}

// ---------------------------------------------------------------------------
// Deadline / budget / cancel: forked children must stop when the parent
// context trips. These run the parallel path directly with a thread runner,
// so a hang (children ignoring the parent) fails the suite timeout.

TEST(ParCancelTest, VisitBudgetTripsParallelRun) {
  Rng rng(31);
  RandomTreeOptions opts;
  opts.num_nodes = 2000;
  opts.attach_window = 8;
  opts.alphabet = {"a", "b"};
  Document doc(RandomTree(&rng, opts));
  auto parsed = xpath::ParseXPath("//a//b//a");
  ASSERT_TRUE(parsed.ok());
  par::ThreadPerTaskRunner runner;
  par::ParOptions options;
  options.parallelism = 8;
  options.runner = &runner;
  options.min_context = 1;

  ExecContext exec = ExecContext::WithVisitBudget(50);
  Result<NodeSet> got = xpath::EvalQueryFromRootParallel(
      doc, *parsed.value(), exec, options);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kResourceExhausted)
      << got.status().ToString();
}

TEST(ParCancelTest, ParentCancelStopsChildren) {
  Rng rng(32);
  RandomTreeOptions opts;
  opts.num_nodes = 4000;
  opts.attach_window = 8;
  opts.alphabet = {"a", "b"};
  Document doc(RandomTree(&rng, opts));
  auto parsed = xpath::ParseXPath("//a//b//a//b");
  ASSERT_TRUE(parsed.ok());
  par::ThreadPerTaskRunner runner;
  par::ParOptions options;
  options.parallelism = 4;
  options.runner = &runner;
  options.min_context = 1;

  ExecContext exec;
  // A pre-cancelled parent: every child's first charge must observe the
  // cancellation through the parent back-pointer and abort.
  exec.Cancel();
  Result<NodeSet> got = xpath::EvalQueryFromRootParallel(
      doc, *parsed.value(), exec, options);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kCancelled);
}

TEST(ParCancelTest, ExecutorCancelMidRunCompletesCancelled) {
  Rng rng(33);
  RandomTreeOptions opts;
  opts.num_nodes = 6000;
  opts.attach_window = 8;
  opts.alphabet = {"a", "b"};
  DocumentPtr doc = MakeDocumentWithOrders(RandomTree(&rng, opts));
  auto plan = engine::Plan::Compile(
      Language::kXPath, "//a//b//a//b//a");
  ASSERT_TRUE(plan.ok());

  engine::Executor executor(engine::Executor::Options{.num_workers = 2});
  // Repeat until a Cancel lands mid-evaluation (timing-dependent); a
  // pre-started Cancel is also a valid outcome, so each round accepts
  // either Cancelled or a completed result and stops at first Cancelled.
  bool saw_cancelled = false;
  for (int round = 0; round < 20 && !saw_cancelled; ++round) {
    QueryRequest request;
    request.plan = plan.value();
    request.document = doc;
    request.options.parallelism = 4;
    engine::Submission submission = executor.Submit(std::move(request));
    std::this_thread::sleep_for(std::chrono::microseconds(50 * round));
    submission.Cancel();
    Result<QueryResult> got = submission.future.get();  // must not hang
    if (!got.ok()) {
      EXPECT_EQ(got.status().code(), StatusCode::kCancelled)
          << got.status().ToString();
      saw_cancelled = true;
    }
  }
  EXPECT_TRUE(saw_cancelled);
}

// Budget accounting survives the fork-join: the parent's visits_used after
// a parallel run includes the absorbed child spend (it is at least the
// serial run's total, which the k=0 path reproduces exactly).
TEST(ParCancelTest, ParentAbsorbsChildSpend) {
  Rng rng(34);
  RandomTreeOptions opts;
  opts.num_nodes = 1000;
  opts.alphabet = {"a", "b"};
  Document doc(RandomTree(&rng, opts));
  auto parsed = xpath::ParseXPath("//a//b");
  ASSERT_TRUE(parsed.ok());

  ExecContext serial_exec = ExecContext::WithVisitBudget(UINT64_MAX);
  ASSERT_TRUE(xpath::EvalQueryFromRoot(doc, *parsed.value(), serial_exec)
                  .ok());

  par::ThreadPerTaskRunner runner;
  par::ParOptions options;
  options.parallelism = 4;
  options.runner = &runner;
  options.min_context = 1;
  ExecContext par_exec = ExecContext::WithVisitBudget(UINT64_MAX);
  ASSERT_TRUE(xpath::EvalQueryFromRootParallel(doc, *parsed.value(),
                                               par_exec, options)
                  .ok());
  EXPECT_GE(par_exec.visits_used(), serial_exec.visits_used());
}

// ---------------------------------------------------------------------------
// ParseQuery options satellite: max_nesting override and the paper-axes
// dialect gate, with default behavior bit-identical to the historic parser.

TEST(ParseOptionsTest, DefaultOptionsMatchHistoricParser) {
  const char* const kTexts[] = {
      "//a//b",
      "/a[b and not(c)]/following::b",
      "//a[",  // parse error: message must match bit for bit
  };
  for (const char* text : kTexts) {
    auto plain = ParseQuery(Language::kXPath, text);
    auto with_options = ParseQuery(Language::kXPath, text, ParseOptions{});
    ASSERT_EQ(plain.ok(), with_options.ok()) << text;
    if (!plain.ok()) {
      EXPECT_EQ(plain.status().ToString(),
                with_options.status().ToString())
          << text;
    }
  }
}

TEST(ParseOptionsTest, MaxNestingOverrideRejectsDeepExpressions) {
  // 8 nested not(...) qualifiers: fine by default, over a limit of 4.
  std::string text = "//*[";
  for (int i = 0; i < 8; ++i) text += "not(";
  text += "a";
  for (int i = 0; i < 8; ++i) text += ")";
  text += "]";

  ASSERT_TRUE(ParseQuery(Language::kXPath, text).ok());

  ParseOptions options;
  options.max_nesting = 4;
  auto limited = ParseQuery(Language::kXPath, text, options);
  ASSERT_FALSE(limited.ok());
  EXPECT_EQ(limited.status().code(), StatusCode::kParseError);
  EXPECT_NE(limited.status().ToString().find("nesting"), std::string::npos)
      << limited.status().ToString();
  EXPECT_NE(limited.status().ToString().find(" at offset "),
            std::string::npos)
      << limited.status().ToString();
}

TEST(ParseOptionsTest, PaperAxesDialectGate) {
  // A paper-style relational alias: accepted by default, an "unknown axis"
  // ParseError when the dialect flag is off.
  const char* text = "/Child+::a";
  ASSERT_TRUE(ParseQuery(Language::kXPath, text).ok());

  ParseOptions options;
  options.xpath_paper_axes = false;
  auto strict = ParseQuery(Language::kXPath, text, options);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kParseError);
  EXPECT_NE(strict.status().ToString().find("unknown axis"),
            std::string::npos)
      << strict.status().ToString();
  EXPECT_NE(strict.status().ToString().find(" at offset "),
            std::string::npos)
      << strict.status().ToString();

  // Standard names still parse in strict mode.
  EXPECT_TRUE(
      ParseQuery(Language::kXPath, "/child::a/descendant::b", options).ok());
}

}  // namespace
}  // namespace treeq
