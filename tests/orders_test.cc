#include "tree/orders.h"

#include <gtest/gtest.h>

#include <vector>

#include "tree/generator.h"
#include "tree/tree.h"
#include "util/random.h"

namespace treeq {
namespace {

// The tree of Figure 2(a): labels encode the paper's "pre:post:label"
// annotations (1-based there, 0-based here).
Tree Figure2Tree() {
  TreeBuilder b;
  b.BeginNode("a");   // 1:7:a
  b.BeginNode("b");   // 2:3:b
  b.BeginNode("a");   // 3:1:a
  b.EndNode();
  b.BeginNode("c");   // 4:2:c
  b.EndNode();
  b.EndNode();
  b.BeginNode("a");   // 5:6:a
  b.BeginNode("b");   // 6:4:b
  b.EndNode();
  b.BeginNode("d");   // 7:5:d
  b.EndNode();
  b.EndNode();
  b.EndNode();
  Result<Tree> t = b.Finish();
  EXPECT_TRUE(t.ok());
  return std::move(t).value();
}

TEST(OrdersTest, Figure2PrePostMatchesPaper) {
  Tree t = Figure2Tree();
  TreeOrders o = ComputeOrders(t);
  // Builder assigns ids in document order here, so node i has pre rank i.
  std::vector<int> expected_pre = {0, 1, 2, 3, 4, 5, 6};
  // Paper's post values (1-based): 7 3 1 2 6 4 5  ->  0-based:
  std::vector<int> expected_post = {6, 2, 0, 1, 5, 3, 4};
  EXPECT_EQ(o.pre, expected_pre);
  EXPECT_EQ(o.post, expected_post);
}

TEST(OrdersTest, Figure2SizesAndDepths) {
  Tree t = Figure2Tree();
  TreeOrders o = ComputeOrders(t);
  EXPECT_EQ(o.size, (std::vector<int>{7, 3, 1, 1, 3, 1, 1}));
  EXPECT_EQ(o.depth, (std::vector<int>{0, 1, 2, 2, 1, 2, 2}));
}

TEST(OrdersTest, InversePermutationsAreConsistent) {
  Rng rng(7);
  RandomTreeOptions opts;
  opts.num_nodes = 200;
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);
  for (NodeId n = 0; n < t.num_nodes(); ++n) {
    EXPECT_EQ(o.node_at_pre[o.pre[n]], n);
    EXPECT_EQ(o.node_at_post[o.post[n]], n);
    EXPECT_EQ(o.node_at_bflr[o.bflr[n]], n);
  }
}

// Reference ancestor test by chasing parent pointers.
bool RefProperAncestor(const Tree& t, NodeId a, NodeId b) {
  for (NodeId p = t.parent(b); p != kNullNode; p = t.parent(p)) {
    if (p == a) return true;
  }
  return false;
}

// Section 2: Child+(x,y) iff x <pre y and y <post x.
TEST(OrdersTest, PrePostCharacterizeAncestry) {
  Rng rng(11);
  RandomTreeOptions opts;
  opts.num_nodes = 60;
  opts.attach_window = 4;
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);
  for (NodeId x = 0; x < t.num_nodes(); ++x) {
    for (NodeId y = 0; y < t.num_nodes(); ++y) {
      bool by_orders = o.pre[x] < o.pre[y] && o.post[y] < o.post[x];
      EXPECT_EQ(by_orders, RefProperAncestor(t, x, y))
          << "x=" << x << " y=" << y;
      EXPECT_EQ(by_orders, o.IsProperAncestor(x, y));
    }
  }
}

// Section 2: Following(x,y) iff x <pre y and x <post y. Reference via the
// paper's own definition through NextSibling+ of ancestors.
bool RefFollowing(const Tree& t, NodeId x, NodeId y) {
  // Collect ancestors-or-self of both.
  auto chain = [&t](NodeId n) {
    std::vector<NodeId> c;
    for (NodeId p = n; p != kNullNode; p = t.parent(p)) c.push_back(p);
    return c;
  };
  for (NodeId x0 : chain(x)) {
    for (NodeId y0 : chain(y)) {
      // NextSibling+(x0, y0)?
      for (NodeId s = t.next_sibling(x0); s != kNullNode;
           s = t.next_sibling(s)) {
        if (s == y0) return true;
      }
    }
  }
  return false;
}

TEST(OrdersTest, PrePostCharacterizeFollowing) {
  Rng rng(13);
  RandomTreeOptions opts;
  opts.num_nodes = 50;
  opts.attach_window = 5;
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);
  for (NodeId x = 0; x < t.num_nodes(); ++x) {
    for (NodeId y = 0; y < t.num_nodes(); ++y) {
      bool by_orders = o.pre[x] < o.pre[y] && o.post[x] < o.post[y];
      EXPECT_EQ(by_orders, RefFollowing(t, x, y)) << "x=" << x << " y=" << y;
      EXPECT_EQ(by_orders, o.IsFollowing(x, y));
    }
  }
}

// Any two distinct nodes are related by exactly one of: x anc y, y anc x,
// Following(x,y), Following(y,x). (The document-order trichotomy used by the
// Theorem 5.1 rewriting.)
TEST(OrdersTest, DocumentOrderTrichotomy) {
  Rng rng(17);
  RandomTreeOptions opts;
  opts.num_nodes = 80;
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);
  for (NodeId x = 0; x < t.num_nodes(); ++x) {
    for (NodeId y = 0; y < t.num_nodes(); ++y) {
      if (x == y) continue;
      int relations = (o.IsProperAncestor(x, y) ? 1 : 0) +
                      (o.IsProperAncestor(y, x) ? 1 : 0) +
                      (o.IsFollowing(x, y) ? 1 : 0) +
                      (o.IsFollowing(y, x) ? 1 : 0);
      EXPECT_EQ(relations, 1) << "x=" << x << " y=" << y;
    }
  }
}

TEST(OrdersTest, SubtreeEndPreBoundsSubtree) {
  Rng rng(19);
  RandomTreeOptions opts;
  opts.num_nodes = 100;
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);
  for (NodeId n = 0; n < t.num_nodes(); ++n) {
    for (NodeId v = 0; v < t.num_nodes(); ++v) {
      bool in_subtree = (v == n) || o.IsProperAncestor(n, v);
      bool in_range =
          o.pre[v] >= o.pre[n] && o.pre[v] < o.SubtreeEndPre(n);
      EXPECT_EQ(in_subtree, in_range);
    }
  }
}

TEST(OrdersTest, BflrOrderIsByDepthThenDocOrder) {
  Rng rng(23);
  RandomTreeOptions opts;
  opts.num_nodes = 120;
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);
  for (NodeId x = 0; x < t.num_nodes(); ++x) {
    for (NodeId y = 0; y < t.num_nodes(); ++y) {
      if (x == y) continue;
      bool expect_less = o.depth[x] < o.depth[y] ||
                         (o.depth[x] == o.depth[y] && o.pre[x] < o.pre[y]);
      EXPECT_EQ(o.BflrLess(x, y), expect_less);
    }
  }
}

TEST(OrdersTest, ChainOrders) {
  Tree t = Chain(5);
  TreeOrders o = ComputeOrders(t);
  for (NodeId n = 0; n < 5; ++n) {
    EXPECT_EQ(o.pre[n], n);
    EXPECT_EQ(o.post[n], 4 - n);
    EXPECT_EQ(o.bflr[n], n);
    EXPECT_EQ(o.depth[n], n);
    EXPECT_EQ(o.size[n], 5 - n);
  }
}

TEST(OrdersTest, SingleNode) {
  Tree t = Chain(1);
  TreeOrders o = ComputeOrders(t);
  EXPECT_EQ(o.pre[0], 0);
  EXPECT_EQ(o.post[0], 0);
  EXPECT_EQ(o.size[0], 1);
  EXPECT_EQ(o.SubtreeEndPre(0), 1);
}

}  // namespace
}  // namespace treeq
