#include "util/status.h"

#include <gtest/gtest.h>

#include <string>

namespace treeq {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorFactories) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_FALSE(Status::Internal("x").ok());
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  TREEQ_ASSIGN_OR_RETURN(int h, Half(x));
  TREEQ_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);

  Result<int> err = Quarter(6);  // 6/2 = 3, second Half fails
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

Status NeedsEven(int x) {
  TREEQ_RETURN_IF_ERROR(Half(x).status());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(NeedsEven(4).ok());
  EXPECT_FALSE(NeedsEven(3).ok());
}

}  // namespace
}  // namespace treeq
