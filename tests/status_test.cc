#include "util/status.h"

#include <gtest/gtest.h>

#include <string>

namespace treeq {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorFactories) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_FALSE(Status::Internal("x").ok());
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

TEST(ResultTest, ValueOr) {
  Result<int> ok(42);
  EXPECT_EQ(ok.value_or(7), 42);
  Result<int> err(Status::NotFound("gone"));
  EXPECT_EQ(err.value_or(7), 7);
  EXPECT_EQ(Result<std::string>(Status::NotFound("x")).value_or("fallback"),
            "fallback");
}

TEST(ResultTest, DereferenceOperators) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(*r, "hello");
  EXPECT_EQ(r->size(), 5u);
  *r += "!";
  EXPECT_EQ(*std::move(r), "hello!");

  const Result<std::string> cr(std::string("const"));
  EXPECT_EQ(*cr, "const");
  EXPECT_EQ(cr->size(), 5u);
}

TEST(ResultTest, CodeMessageConstructor) {
  Result<int> r(StatusCode::kParseError, "bad digit");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_EQ(r.status().message(), "bad digit");
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> r(Status::NotFound("gone"));
  EXPECT_DEATH(r.value(), "Result::value\\(\\) on error");
}

TEST(ResultDeathTest, DereferenceOnErrorAborts) {
  Result<int> r(Status::Internal("boom"));
  EXPECT_DEATH(*r, "Result::value\\(\\) on error");
  Result<std::string> s(Status::Internal("boom"));
  EXPECT_DEATH(s->size(), "Result::value\\(\\) on error");
}

TEST(ResultDeathTest, OkStatusConstructionAborts) {
  EXPECT_DEATH(Result<int>(Status::OK()), "Result constructed from OK status");
}

TEST(ResultDeathTest, OkCodeMisuseAborts) {
  // The (StatusCode, message) convenience constructor guards against kOk:
  // a value-less Result must carry a real error.
  EXPECT_DEATH(Result<int>(StatusCode::kOk, "not an error"),
               "Result constructed from OK status");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  TREEQ_ASSIGN_OR_RETURN(int h, Half(x));
  TREEQ_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);

  Result<int> err = Quarter(6);  // 6/2 = 3, second Half fails
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

Status NeedsEven(int x) {
  TREEQ_RETURN_IF_ERROR(Half(x).status());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(NeedsEven(4).ok());
  EXPECT_FALSE(NeedsEven(3).ok());
}

}  // namespace
}  // namespace treeq
