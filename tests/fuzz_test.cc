// Robustness tests: the four parsers must return a Status (never crash,
// never hang) on arbitrary byte soup, near-miss inputs, and pathological
// nesting; random *valid* queries round-trip through print/parse.

#include <gtest/gtest.h>

#include <string>

#include "cq/parser.h"
#include "datalog/parser.h"
#include "fo/parser.h"
#include "tree/xml.h"
#include "util/random.h"
#include "xpath/parser.h"

namespace treeq {
namespace {

std::string RandomBytes(Rng* rng, int max_len) {
  // Printable-biased soup with the parsers' special characters overweighted.
  static const char* kSpecial = "()[]{}/\\|&.,:;=\"'<>!*+-@#%_ \t\n";
  std::string out;
  int len = static_cast<int>(rng->Uniform(0, max_len));
  for (int i = 0; i < len; ++i) {
    if (rng->Bernoulli(0.5)) {
      out.push_back(kSpecial[rng->Uniform(0, 29)]);
    } else if (rng->Bernoulli(0.9)) {
      out.push_back(static_cast<char>(rng->Uniform('a', 'z')));
    } else {
      out.push_back(static_cast<char>(rng->Uniform(1, 255)));
    }
  }
  return out;
}

class ParserFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzzTest, RandomInputNeverCrashesAnyParser) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 400; ++trial) {
    std::string input = RandomBytes(&rng, 60);
    // Each call must return (ok or error), not crash.
    (void)xpath::ParseXPath(input);
    (void)cq::ParseCq(input);
    (void)datalog::ParseProgram(input);
    (void)fo::ParseFo(input);
    (void)ParseXml(input);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest, ::testing::Range(0, 5));

TEST(ParserFuzzTest, NearMissInputs) {
  const char* kInputs[] = {
      "a[", "a]", "a[[]]", "a//", "//", "/", "(((((((((a",
      "child::", "::a", "a::b::c", "lab() =", "not(", "a[lab()]",
      "Q(", "Q() :-", "Q(x) :- .", "Q(x) :- Lab_(x).",
      "?- .", "P(x) :- Label(\"unterminated, x).",
      "exists . Lab_a(x)", "exists x Lab_a(x)", "forall x .",
      "x = ", "= x",
      "<", "<a", "<a b=>", "<a></b>", "<!---->", "<a/><a/>",
  };
  for (const char* input : kInputs) {
    (void)xpath::ParseXPath(input);
    (void)cq::ParseCq(input);
    (void)datalog::ParseProgram(input);
    (void)fo::ParseFo(input);
    (void)ParseXml(input);
  }
  SUCCEED();
}

TEST(ParserFuzzTest, DeepNestingDoesNotOverflow) {
  // Qualifier nesting recurses; make sure a few thousand levels survive.
  std::string deep = "a";
  for (int i = 0; i < 2000; ++i) deep = "a[" + deep + "]";
  auto r = xpath::ParseXPath(deep);
  EXPECT_TRUE(r.ok());

  std::string parens(4000, '(');
  (void)xpath::ParseXPath(parens);  // must error out, not crash

  std::string fo_deep;
  for (int i = 0; i < 1000; ++i) fo_deep += "exists v . ";
  fo_deep += "Lab_a(v)";
  EXPECT_TRUE(fo::ParseFo(fo_deep).ok());
}

}  // namespace
}  // namespace treeq
