// Robustness tests: the four parsers must return a Status (never crash,
// never hang) on arbitrary byte soup, near-miss inputs, and pathological
// nesting; random *valid* queries round-trip through print/parse.

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <utility>
#include <vector>

#include "cq/parser.h"
#include "datalog/parser.h"
#include "engine/engine.h"
#include "fault/fault.h"
#include "fo/parser.h"
#include "obs/flight_recorder.h"
#include "query/parse.h"
#include "tree/generator.h"
#include "tree/xml.h"
#include "util/random.h"
#include "xpath/parser.h"

namespace treeq {
namespace {

std::string RandomBytes(Rng* rng, int max_len) {
  // Printable-biased soup with the parsers' special characters overweighted.
  static const char* kSpecial = "()[]{}/\\|&.,:;=\"'<>!*+-@#%_ \t\n";
  std::string out;
  int len = static_cast<int>(rng->Uniform(0, max_len));
  for (int i = 0; i < len; ++i) {
    if (rng->Bernoulli(0.5)) {
      out.push_back(kSpecial[rng->Uniform(0, 29)]);
    } else if (rng->Bernoulli(0.9)) {
      out.push_back(static_cast<char>(rng->Uniform('a', 'z')));
    } else {
      out.push_back(static_cast<char>(rng->Uniform(1, 255)));
    }
  }
  return out;
}

class ParserFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzzTest, RandomInputNeverCrashesAnyParser) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 400; ++trial) {
    std::string input = RandomBytes(&rng, 60);
    // Each call must return (ok or error), not crash.
    (void)xpath::ParseXPath(input);
    (void)cq::ParseCq(input);
    (void)datalog::ParseProgram(input);
    (void)fo::ParseFo(input);
    (void)ParseXml(input);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest, ::testing::Range(0, 5));

TEST(ParserFuzzTest, NearMissInputs) {
  const char* kInputs[] = {
      "a[", "a]", "a[[]]", "a//", "//", "/", "(((((((((a",
      "child::", "::a", "a::b::c", "lab() =", "not(", "a[lab()]",
      "Q(", "Q() :-", "Q(x) :- .", "Q(x) :- Lab_(x).",
      "?- .", "P(x) :- Label(\"unterminated, x).",
      "exists . Lab_a(x)", "exists x Lab_a(x)", "forall x .",
      "x = ", "= x",
      "<", "<a", "<a b=>", "<a></b>", "<!---->", "<a/><a/>",
  };
  for (const char* input : kInputs) {
    (void)xpath::ParseXPath(input);
    (void)cq::ParseCq(input);
    (void)datalog::ParseProgram(input);
    (void)fo::ParseFo(input);
    (void)ParseXml(input);
  }
  SUCCEED();
}

// Asserts the parser error contract: kParseError whose message ends in
// " at offset <N>" with N a byte offset inside (or just past) the input.
void ExpectOffsetError(const Status& status, size_t input_size,
                       const std::string& input_for_message) {
  EXPECT_EQ(status.code(), StatusCode::kParseError) << input_for_message;
  const std::string& msg = status.message();
  size_t marker = msg.rfind(" at offset ");
  ASSERT_NE(marker, std::string::npos)
      << "no offset in error for input: " << input_for_message
      << "\n  message: " << msg;
  std::string digits = msg.substr(marker + 11);
  ASSERT_FALSE(digits.empty()) << msg;
  uint64_t offset = 0;
  for (char c : digits) {
    ASSERT_TRUE(std::isdigit(static_cast<unsigned char>(c)))
        << "non-numeric offset suffix in: " << msg;
    offset = offset * 10 + static_cast<uint64_t>(c - '0');
  }
  EXPECT_LE(offset, input_size)
      << "offset past end of input for: " << input_for_message;
}

TEST(XmlFuzzTest, DepthGuardStopsRunawayNesting) {
  // 200k unclosed opens would previously recurse 200k frames deep; the
  // depth guard must turn that into an offset-carrying ParseError well
  // before the stack is at risk.
  std::string bomb;
  bomb.reserve(600000);
  for (int i = 0; i < 200000; ++i) bomb += "<a>";
  Result<Tree> r = ParseXml(bomb);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("nesting deeper"), std::string::npos);
  ExpectOffsetError(r.status(), bomb.size(), "<a>*200000");

  // The same bomb closed properly is still over the limit: balance does
  // not matter, depth does.
  std::string balanced = bomb;
  for (int i = 0; i < 200000; ++i) balanced += "</a>";
  EXPECT_FALSE(ParseXml(balanced).ok());
}

TEST(XmlFuzzTest, DepthGuardBoundaryIsExact) {
  XmlOptions options;
  options.max_depth = 32;
  auto nested = [](int depth) {
    std::string doc;
    for (int i = 0; i < depth; ++i) doc += "<a>";
    for (int i = 0; i < depth; ++i) doc += "</a>";
    return doc;
  };
  Result<Tree> at_limit = ParseXml(nested(32), options);
  ASSERT_TRUE(at_limit.ok()) << at_limit.status().ToString();
  EXPECT_EQ(at_limit.value().Depth(), 31);  // root at depth 0

  Result<Tree> over = ParseXml(nested(33), options);
  ASSERT_FALSE(over.ok());
  EXPECT_NE(over.status().message().find("nesting deeper than 32"),
            std::string::npos);
  // Siblings do not accumulate depth: wide documents are unaffected.
  std::string wide = "<r>";
  for (int i = 0; i < 5000; ++i) wide += "<a/>";
  wide += "</r>";
  EXPECT_TRUE(ParseXml(wide, options).ok());
}

TEST(XmlFuzzTest, UnbalancedTagSoupNeverCrashes) {
  static const char* kFragments[] = {
      "<a>", "</a>", "<b>", "</b>", "<a/>", "<c x='1'>", "</c>",
      "text", "<!-- c -->", "</unopened>", "<a", ">",
  };
  XmlOptions options;
  options.max_depth = 64;
  for (uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(seed);
    std::string doc;
    int len = static_cast<int>(rng.Uniform(1, 400));
    for (int i = 0; i < len; ++i) {
      doc += kFragments[rng.Uniform(0, std::size(kFragments) - 1)];
    }
    Result<Tree> r = ParseXml(doc, options);  // must return, not crash
    if (!r.ok()) {
      ExpectOffsetError(r.status(), doc.size(), doc.substr(0, 80));
    }
  }
}

TEST(ParseQueryFuzzTest, TruncatedValidQueriesKeepOffsetContract) {
  // Every strict prefix of a valid query either still parses (some
  // prefixes are complete queries) or fails with the documented
  // " at offset <N>" ParseError — the contract Plan::Compile and its
  // callers key error rendering on.
  const std::pair<Language, std::string> kQueries[] = {
      {Language::kXPath, "/catalog/product[reviews/review]/name"},
      {Language::kXPath, "//a[b and not(c or d)]/following-sibling::e"},
      {Language::kCq,
       "Q(p, r) :- Child+(p, r), Lab_product(p), Lab_review(r)."},
      {Language::kDatalog, "Good(x) :- Lab_rating5(x).\n?- Good."},
      {Language::kFo,
       "exists x . exists y . (Child(x, y) and Lab_review(x))"},
  };
  for (const auto& [language, query] : kQueries) {
    ASSERT_TRUE(ParseQuery(language, query).ok()) << query;
    for (size_t len = 0; len < query.size(); ++len) {
      std::string prefix = query.substr(0, len);
      Result<ParsedQuery> r = ParseQuery(language, prefix);
      if (r.ok()) continue;
      ExpectOffsetError(r.status(), prefix.size(),
                        LanguageName(language) + (": " + prefix));
    }
  }
}

TEST(ParserFuzzTest, DeepNestingDoesNotOverflow) {
  // Qualifier nesting recurses, so the parser bounds it: a few hundred
  // levels parse fine, a few thousand get a clean nesting error (with the
  // offset contract) rather than a stack overflow.
  std::string ok_deep = "a";
  for (int i = 0; i < 200; ++i) ok_deep = "a[" + ok_deep + "]";
  EXPECT_TRUE(xpath::ParseXPath(ok_deep).ok());

  std::string too_deep = "a";
  for (int i = 0; i < 2000; ++i) too_deep = "a[" + too_deep + "]";
  auto r = xpath::ParseXPath(too_deep);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("nesting"), std::string::npos)
      << r.status().message();
  ExpectOffsetError(r.status(), too_deep.size(), "a[a[a[...]]]*2000");

  std::string parens(4000, '(');
  auto p = xpath::ParseXPath(parens);  // must error out, not crash
  ASSERT_FALSE(p.ok());
  ExpectOffsetError(p.status(), parens.size(), "(*4000");

  std::string fo_deep;
  for (int i = 0; i < 1000; ++i) fo_deep += "exists v . ";
  fo_deep += "Lab_a(v)";
  EXPECT_TRUE(fo::ParseFo(fo_deep).ok());
}

// ---------------------------------------------------------------------------
// Lowering robustness: adversarial queries through the logical IR
// ---------------------------------------------------------------------------

// Plan::Compile now lowers every parsed query through the IR and
// canonicalizer. Adversarial nesting must either compile (with a
// well-formed canonical hash) or fail with the same " at offset <N>"
// contract as plain parsing — the IR layers add no new crash or error
// shape.
TEST(PlanLoweringFuzzTest, AdversarialNestingKeepsOffsetContract) {
  // Deep qualifier nesting: parses, lowers, and the canonicalizer's
  // bounded rules terminate (the union rewrite caps branches; the hash
  // is always produced).
  std::string ok_deep = "a";
  for (int i = 0; i < 200; ++i) ok_deep = "a[" + ok_deep + "]";
  Result<engine::PlanPtr> deep =
      engine::Plan::Compile(Language::kXPath, "//" + ok_deep);
  ASSERT_TRUE(deep.ok()) << deep.status().ToString();
  EXPECT_EQ(deep.value()->canonical_hash().ToHex().size(), 32u);

  // Past the nesting guard, Compile reports the parser's offset error
  // unchanged — the lowering never sees the query.
  std::string too_deep = "a";
  for (int i = 0; i < 2000; ++i) too_deep = "a[" + too_deep + "]";
  Result<engine::PlanPtr> rejected =
      engine::Plan::Compile(Language::kXPath, too_deep);
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.status().message().find("nesting"), std::string::npos);
  ExpectOffsetError(rejected.status(), too_deep.size(),
                    "compile a[a[...]]*2000");

  // Wide disjunction: qualifier unions fork lowering states; past the
  // branch cap the plan falls back to an opaque IR leaf but still
  // compiles, hashes, and runs.
  std::string wide = "a[b";
  for (int i = 0; i < 64; ++i) wide += " or b" + std::to_string(i);
  wide += "]";
  Result<engine::PlanPtr> fan =
      engine::Plan::Compile(Language::kXPath, "//" + wide);
  ASSERT_TRUE(fan.ok()) << fan.status().ToString();
  EXPECT_EQ(fan.value()->canonical_hash().ToHex().size(), 32u);
  EXPECT_FALSE(fan.value()->EligibleEngines().empty());
}

// Random parser-surviving inputs all the way through Compile: whatever
// parses must lower, canonicalize, and declare at least its native
// engine eligible; whatever fails keeps the offset contract.
TEST(PlanLoweringFuzzTest, RandomInputsLowerOrFailCleanly) {
  const Language kLanguages[] = {Language::kXPath, Language::kCq,
                                 Language::kDatalog, Language::kFo};
  Rng rng(20260808);
  const std::string alphabet =
      "ab[]()/.,:-+*= _QLChildNextSibexistsnotandorLab_?";
  for (int iter = 0; iter < 400; ++iter) {
    std::string input;
    const int len = static_cast<int>(rng.Uniform(1, 40));
    for (int i = 0; i < len; ++i) {
      input += alphabet[static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(alphabet.size()) - 1))];
    }
    for (Language language : kLanguages) {
      Result<engine::PlanPtr> plan = engine::Plan::Compile(language, input);
      if (plan.ok()) {
        EXPECT_EQ(plan.value()->canonical_hash().ToHex().size(), 32u);
        EXPECT_FALSE(plan.value()->EligibleEngines().empty())
            << LanguageName(language) << ": " << input;
      } else if (plan.status().code() == StatusCode::kParseError) {
        ExpectOffsetError(plan.status(), input.size(),
                          LanguageName(language) + (": " + input));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Injection robustness: the engine under adversarial fault plans
// ---------------------------------------------------------------------------

#ifndef TREEQ_OBS_DISABLED
// An injected queue failure — at the submit side (engine.queue.push) or at
// the worker hand-off (engine.queue.pop) — must look like a clean
// Unavailable to the client AND leave a well-formed profile behind: id,
// language, query text, and status all populated, whichever side failed.
TEST(FaultFuzzTest, InjectedQueueFailuresKeepProfileContract) {
  if (!fault::kFaultPointsCompiledIn) {
    GTEST_SKIP() << "fault points compiled out";
  }
  Rng rng(11);
  CatalogOptions copts;
  copts.num_products = 10;
  DocumentPtr doc = MakeDocumentWithOrders(CatalogDocument(&rng, copts));
  engine::PlanPtr plan =
      engine::Plan::Compile(Language::kXPath, "//review[rating5]").value();

  for (const char* point : {"engine.queue.push", "engine.queue.pop"}) {
    SCOPED_TRACE(point);
    obs::FlightRecorder::Global().Enable(obs::FlightRecorder::Options{});
    fault::FaultPlan fplan;
    fplan.seed = 1;
    fault::FaultRule rule;
    rule.point = point;
    fplan.rules.push_back(rule);
    fault::ScopedFaultPlan armed(fplan);

    engine::Executor executor(engine::Executor::Options{});
    QueryRequest request;
    request.plan = plan;
    request.document = doc;
    Result<QueryResult> outcome = executor.Submit(request).future.get();
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.status().code(), StatusCode::kUnavailable);
    executor.Shutdown();

    std::vector<obs::QueryProfile> recent =
        obs::FlightRecorder::Global().Recent();
    ASSERT_FALSE(recent.empty());
    const obs::QueryProfile& profile = recent.back();
    EXPECT_GT(profile.id, 0u);
    EXPECT_EQ(profile.language, "xpath");
    EXPECT_EQ(profile.query, "//review[rating5]");
    EXPECT_NE(profile.query_hash, 0u);
    EXPECT_FALSE(profile.ok);
    EXPECT_EQ(profile.status, "Unavailable");
    obs::FlightRecorder::Global().Disable();
  }
}
#endif  // TREEQ_OBS_DISABLED

// Arming every known point at p=1 against an executor that is already
// shut down must stay a graceful Unavailable — injection may not create a
// crash, a broken promise, or a wedge where the real code would not.
TEST(FaultFuzzTest, PostShutdownInjectionNeverAborts) {
  if (!fault::kFaultPointsCompiledIn) {
    GTEST_SKIP() << "fault points compiled out";
  }
  Rng rng(12);
  CatalogOptions copts;
  copts.num_products = 10;
  DocumentPtr doc = MakeDocumentWithOrders(CatalogDocument(&rng, copts));
  engine::PlanPtr plan =
      engine::Plan::Compile(Language::kXPath, "//review").value();

  fault::FaultPlan fplan;
  fplan.seed = 3;
  for (const std::string& point : fault::KnownPoints()) {
    fault::FaultRule rule;
    rule.point = point;
    fplan.rules.push_back(rule);
  }
  fault::ScopedFaultPlan armed(fplan);

  engine::Executor executor(engine::Executor::Options{});
  executor.Shutdown();
  executor.Shutdown();  // idempotent even while engine.shutdown fires
  for (int i = 0; i < 8; ++i) {
    QueryRequest request;
    request.plan = plan;
    request.document = doc;
    request.options.reject_when_full = (i % 2 == 0);
    Result<QueryResult> outcome = executor.Submit(request).future.get();
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.status().code(), StatusCode::kUnavailable);
  }
}

}  // namespace
}  // namespace treeq
