#include "cq/rewrite.h"

#include <gtest/gtest.h>

#include <map>

#include "cq/naive.h"
#include "cq/parser.h"
#include "tree/generator.h"
#include "util/random.h"

namespace treeq {
namespace cq {
namespace {

ConjunctiveQuery MustParse(const std::string& text) {
  Result<ConjunctiveQuery> q = ParseCq(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(q).value();
}

RewriteAxis kAxes[] = {RewriteAxis::kChild, RewriteAxis::kChildPlus,
                       RewriteAxis::kNextSibling,
                       RewriteAxis::kNextSiblingPlus};

Axis ToTreeAxis(RewriteAxis r) {
  switch (r) {
    case RewriteAxis::kChild:
      return Axis::kChild;
    case RewriteAxis::kChildPlus:
      return Axis::kDescendant;
    case RewriteAxis::kNextSibling:
      return Axis::kNextSibling;
    case RewriteAxis::kNextSiblingPlus:
      return Axis::kFollowingSibling;
  }
  return Axis::kSelf;
}

// Table 1, verified empirically: R(x,z) ∧ S(y,z) ∧ x <pre y is satisfiable
// iff some (x, y, z) witness exists on some tree of a generated family.
TEST(Table1Test, MatrixMatchesExhaustiveSearch) {
  std::vector<Tree> trees;
  for (int seed = 0; seed < 12; ++seed) {
    Rng rng(seed);
    RandomTreeOptions opts;
    opts.num_nodes = 10;
    opts.attach_window = 1 + seed % 5;
    trees.push_back(RandomTree(&rng, opts));
  }
  for (RewriteAxis r : kAxes) {
    for (RewriteAxis s : kAxes) {
      bool witness = false;
      for (const Tree& t : trees) {
        TreeOrders o = ComputeOrders(t);
        for (NodeId x = 0; x < t.num_nodes() && !witness; ++x) {
          for (NodeId y = 0; y < t.num_nodes() && !witness; ++y) {
            if (o.pre[x] >= o.pre[y]) continue;
            for (NodeId z = 0; z < t.num_nodes() && !witness; ++z) {
              witness = AxisHolds(t, o, ToTreeAxis(r), x, z) &&
                        AxisHolds(t, o, ToTreeAxis(s), y, z);
            }
          }
        }
        if (witness) break;
      }
      EXPECT_EQ(Table1Satisfiable(r, s), witness)
          << "R=" << static_cast<int>(r) << " S=" << static_cast<int>(s);
    }
  }
}

TEST(Table1Test, PaperEntries) {
  using RA = RewriteAxis;
  // The exact matrix of Table 1.
  EXPECT_FALSE(Table1Satisfiable(RA::kChild, RA::kChild));
  EXPECT_FALSE(Table1Satisfiable(RA::kChild, RA::kChildPlus));
  EXPECT_TRUE(Table1Satisfiable(RA::kChild, RA::kNextSibling));
  EXPECT_TRUE(Table1Satisfiable(RA::kChild, RA::kNextSiblingPlus));
  EXPECT_TRUE(Table1Satisfiable(RA::kChildPlus, RA::kChild));
  EXPECT_TRUE(Table1Satisfiable(RA::kChildPlus, RA::kChildPlus));
  EXPECT_TRUE(Table1Satisfiable(RA::kChildPlus, RA::kNextSibling));
  EXPECT_TRUE(Table1Satisfiable(RA::kChildPlus, RA::kNextSiblingPlus));
  EXPECT_FALSE(Table1Satisfiable(RA::kNextSibling, RA::kChild));
  EXPECT_FALSE(Table1Satisfiable(RA::kNextSibling, RA::kChildPlus));
  EXPECT_FALSE(Table1Satisfiable(RA::kNextSibling, RA::kNextSibling));
  EXPECT_FALSE(Table1Satisfiable(RA::kNextSibling, RA::kNextSiblingPlus));
  EXPECT_FALSE(Table1Satisfiable(RA::kNextSiblingPlus, RA::kChild));
  EXPECT_FALSE(Table1Satisfiable(RA::kNextSiblingPlus, RA::kChildPlus));
  EXPECT_TRUE(Table1Satisfiable(RA::kNextSiblingPlus, RA::kNextSibling));
  EXPECT_TRUE(
      Table1Satisfiable(RA::kNextSiblingPlus, RA::kNextSiblingPlus));
}

bool IsAcyclicOutput(const ConjunctiveQuery& q) {
  // Each variable has at most one incoming axis atom and the directed
  // graph is a forest (no cycles, since edges always point pre-forward).
  std::map<int, int> indegree;
  for (const AxisAtom& a : q.axis_atoms()) {
    if (a.var0 == a.var1) return false;
    if (++indegree[a.var1] > 1) return false;
  }
  return true;
}

Result<TupleSet> EvalUnion(const std::vector<ConjunctiveQuery>& queries,
                           const Tree& t, const TreeOrders& o) {
  TupleSet all;
  for (const ConjunctiveQuery& q : queries) {
    TREEQ_ASSIGN_OR_RETURN(TupleSet part, NaiveEvaluateCq(q, t, o));
    for (auto& tuple : part) all.push_back(std::move(tuple));
  }
  CanonicalizeTuples(&all);
  return all;
}

const char* kRewriteInputs[] = {
    // Boolean, cyclic.
    "Q() :- Child+(x, z), Child+(y, z), Lab_a(x), Lab_b(y).",
    "Q() :- Child*(x, y), Child*(y, z), Lab_a(x), Lab_c(z).",
    "Q() :- NextSibling+(x, z), NextSibling+(y, z).",
    "Q() :- Child(x, z), NextSibling(y, z), Lab_a(y).",
    "Q() :- Following(x, y), Lab_a(x), Lab_b(y).",
    "Q() :- Child+(x, y), NextSibling*(y, z), Child(z, w).",
    // Unary and binary heads.
    "Q(z) :- Child+(x, z), Child+(y, z), Lab_a(x), Lab_b(y).",
    "Q(x, y) :- Child*(x, y), Lab_b(y).",
    // With Self and inverse axes (preprocessing).
    "Q(x) :- self(x, y), Child(y, z), Lab_a(z).",
    "Q(x) :- parent(x, y), Lab_a(y).",
    // Unsatisfiable everywhere.
    "Q() :- Child(x, y), Child(z, y), NextSibling(x, z).",
};

class RewritePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RewritePropertyTest, UnionIsEquivalentAndAcyclic) {
  Rng rng(GetParam());
  RandomTreeOptions opts;
  opts.num_nodes = 13;
  opts.attach_window = 1 + GetParam() % 5;
  opts.alphabet = {"a", "b", "c"};
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);
  for (const char* text : kRewriteInputs) {
    ConjunctiveQuery input = MustParse(text);
    Result<RewriteOutput> rewritten = RewriteToAcyclicUnion(input);
    ASSERT_TRUE(rewritten.ok()) << text << ": "
                                << rewritten.status().ToString();
    for (const ConjunctiveQuery& q : rewritten.value().queries) {
      EXPECT_TRUE(IsAcyclicOutput(q)) << text << " -> " << q.ToString();
    }
    Result<TupleSet> original = NaiveEvaluateCq(input, t, o);
    ASSERT_TRUE(original.ok());
    Result<TupleSet> union_result =
        EvalUnion(rewritten.value().queries, t, o);
    ASSERT_TRUE(union_result.ok());
    EXPECT_EQ(union_result.value(), original.value()) << text;
  }
}

TEST_P(RewritePropertyTest, LazyVariantIsEquivalentToo) {
  Rng rng(500 + GetParam());
  RandomTreeOptions opts;
  opts.num_nodes = 13;
  opts.attach_window = 1 + GetParam() % 5;
  opts.alphabet = {"a", "b", "c"};
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);
  for (const char* text : kRewriteInputs) {
    ConjunctiveQuery input = MustParse(text);
    Result<RewriteOutput> rewritten = RewriteToAcyclicUnionLazy(input);
    ASSERT_TRUE(rewritten.ok()) << text << ": "
                                << rewritten.status().ToString();
    for (const ConjunctiveQuery& q : rewritten.value().queries) {
      EXPECT_TRUE(IsAcyclicOutput(q)) << text << " -> " << q.ToString();
    }
    Result<TupleSet> original = NaiveEvaluateCq(input, t, o);
    ASSERT_TRUE(original.ok());
    Result<TupleSet> union_result =
        EvalUnion(rewritten.value().queries, t, o);
    ASSERT_TRUE(union_result.ok());
    EXPECT_EQ(union_result.value(), original.value()) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewritePropertyTest, ::testing::Range(0, 8));

TEST(LazyRewriteTest, ExploresFarFewerStatesThanEager) {
  // A star-join with 4 leaves: eager enumerates ordered-Bell(5) = 541 weak
  // orders; the lazy variant only branches where Table 1 forces it.
  ConjunctiveQuery q = MustParse(
      "Q() :- Child+(x, y1), Child+(x, y2), Child+(x, y3), Child+(x, y4), "
      "Lab_a(y1), Lab_b(y2), Lab_a(y3), Lab_b(y4).");
  Result<RewriteOutput> eager = RewriteToAcyclicUnion(q);
  Result<RewriteOutput> lazy = RewriteToAcyclicUnionLazy(q);
  ASSERT_TRUE(eager.ok());
  ASSERT_TRUE(lazy.ok());
  EXPECT_EQ(eager.value().order_types_considered, 541);
  EXPECT_LT(lazy.value().order_types_considered,
            eager.value().order_types_considered);
}

TEST(LazyRewriteTest, StarAtomsSplitOnlyOnDemand) {
  // A pure star chain has no in-degree-2 conflicts: the lazy variant keeps
  // the R* atoms intact and returns a single disjunct.
  ConjunctiveQuery q =
      MustParse("Q(z) :- Child*(x, y), Child*(y, z), Lab_a(x).");
  Result<RewriteOutput> lazy = RewriteToAcyclicUnionLazy(q);
  ASSERT_TRUE(lazy.ok());
  EXPECT_EQ(lazy.value().queries.size(), 1u);
  EXPECT_EQ(lazy.value().order_types_considered, 1);
  // The eager variant pays the full enumeration for the same query.
  EXPECT_EQ(RewriteToAcyclicUnion(q).value().order_types_considered, 13);
}

TEST(RewriteTest, UnsatisfiableInputYieldsEmptyUnion) {
  ConjunctiveQuery q =
      MustParse("Q() :- NextSibling(x, z), NextSibling(y, z), Child(x, y).");
  Result<RewriteOutput> r = RewriteToAcyclicUnion(q);
  ASSERT_TRUE(r.ok());
  // Every order type dies in Table 1 or the cyclicity checks.
  EXPECT_TRUE(r.value().queries.empty());
}

TEST(RewriteTest, OrderTypeCountIsOrderedBell) {
  // 1 var -> 1; 2 vars -> 3; 3 vars -> 13 ordered set partitions.
  ConjunctiveQuery q1 = MustParse("Q() :- Lab_a(x).");
  EXPECT_EQ(RewriteToAcyclicUnion(q1).value().order_types_considered, 1);
  ConjunctiveQuery q2 = MustParse("Q() :- Child(x, y).");
  EXPECT_EQ(RewriteToAcyclicUnion(q2).value().order_types_considered, 3);
  ConjunctiveQuery q3 = MustParse("Q() :- Child(x, y), Child(y, z).");
  EXPECT_EQ(RewriteToAcyclicUnion(q3).value().order_types_considered, 13);
}

TEST(RewriteTest, RejectsUnsupportedAxes) {
  ConjunctiveQuery q = MustParse("Q() :- first-child(x, y).");
  EXPECT_FALSE(RewriteToAcyclicUnion(q).ok());
}

class RewriteCnsTest : public ::testing::TestWithParam<int> {};

TEST_P(RewriteCnsTest, ChildNextSiblingSpecialCaseIsEquivalent) {
  Rng rng(300 + GetParam());
  RandomTreeOptions opts;
  opts.num_nodes = 15;
  opts.alphabet = {"a", "b"};
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);
  const char* kInputs[] = {
      "Q() :- Child(x, z), Child(y, z), Lab_a(x).",   // forces x = y
      "Q() :- Child(x, z), NextSibling(y, z).",
      "Q() :- NextSibling(x, z), NextSibling(y, z), Lab_a(x), Lab_b(y).",
      "Q(z) :- Child(x, y), Child(x, z), NextSibling(y, z).",
      "Q() :- Child(x, y), NextSibling(y, z), Child(x, z).",
      "Q() :- NextSibling(x, y), NextSibling(y, x).",  // unsat cycle
      "Q(x) :- parent(x, y), Lab_a(y).",
  };
  for (const char* text : kInputs) {
    ConjunctiveQuery input = MustParse(text);
    Result<std::optional<ConjunctiveQuery>> rewritten =
        RewriteChildNextSibling(input);
    ASSERT_TRUE(rewritten.ok()) << text << ": "
                                << rewritten.status().ToString();
    Result<TupleSet> original = NaiveEvaluateCq(input, t, o);
    ASSERT_TRUE(original.ok());
    if (!rewritten.value().has_value()) {
      EXPECT_TRUE(original.value().empty()) << text;
      continue;
    }
    EXPECT_TRUE(IsAcyclicOutput(*rewritten.value()))
        << text << " -> " << rewritten.value()->ToString();
    Result<TupleSet> after = NaiveEvaluateCq(*rewritten.value(), t, o);
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(after.value(), original.value()) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewriteCnsTest, ::testing::Range(0, 8));

TEST(RewriteCnsTest, RejectsTransitiveAxes) {
  ConjunctiveQuery q = MustParse("Q() :- Child+(x, y).");
  EXPECT_FALSE(RewriteChildNextSibling(q).ok());
}

}  // namespace
}  // namespace cq
}  // namespace treeq
