#include "datalog/horn.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/random.h"

namespace treeq {
namespace horn {
namespace {

TEST(HornTest, EmptyInstance) {
  HornInstance h;
  EXPECT_EQ(h.num_predicates(), 0);
  EXPECT_TRUE(h.Solve().empty());
}

TEST(HornTest, FactsOnly) {
  HornInstance h;
  PredId p = h.AddPredicates(3);
  h.AddFact(p + 1);
  std::vector<char> truth = h.Solve();
  EXPECT_EQ(truth, (std::vector<char>{0, 1, 0}));
}

// Example 3.3 of the paper after relabeling:
//   r1: 1 <- ; r2: 2 <- ; r3: 3 <- ; r4: 4 <- 1; r5: 5 <- 3,4; r6: 6 <- 2,5
TEST(HornTest, PaperExample33) {
  HornInstance h;
  h.AddPredicates(7);  // ids 0..6; the paper's atoms are 1..6
  h.AddFact(1);
  h.AddFact(2);
  h.AddFact(3);
  h.AddClause(4, {1});
  h.AddClause(5, {3, 4});
  h.AddClause(6, {2, 5});
  std::vector<PredId> order;
  std::vector<char> truth = h.Solve(&order);
  EXPECT_EQ(truth, (std::vector<char>{0, 1, 1, 1, 1, 1, 1}));
  // The paper's trace starts q = [1, 2, 3] and pops 1 first.
  ASSERT_GE(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 3);
  EXPECT_EQ(order.back(), 6);
}

TEST(HornTest, ChainDerivation) {
  HornInstance h;
  const int n = 100;
  h.AddPredicates(n);
  h.AddFact(0);
  for (int i = 1; i < n; ++i) h.AddClause(i, {i - 1});
  std::vector<char> truth = h.Solve();
  for (int i = 0; i < n; ++i) EXPECT_TRUE(truth[i]) << i;
}

TEST(HornTest, UnderivableStaysFalse) {
  HornInstance h;
  h.AddPredicates(4);
  h.AddFact(0);
  h.AddClause(1, {0, 2});  // 2 never derivable
  h.AddClause(3, {1});
  std::vector<char> truth = h.Solve();
  EXPECT_EQ(truth, (std::vector<char>{1, 0, 0, 0}));
}

TEST(HornTest, CyclicRulesDoNotBootstrap) {
  HornInstance h;
  h.AddPredicates(2);
  h.AddClause(0, {1});
  h.AddClause(1, {0});
  std::vector<char> truth = h.Solve();
  EXPECT_EQ(truth, (std::vector<char>{0, 0}));
}

TEST(HornTest, DuplicateBodyLiterals) {
  HornInstance h;
  h.AddPredicates(2);
  h.AddFact(0);
  h.AddClause(1, {0, 0});  // needs 0 "twice"
  std::vector<char> truth = h.Solve();
  EXPECT_TRUE(truth[1]);
}

TEST(HornTest, SizeInLiterals) {
  HornInstance h;
  h.AddPredicates(3);
  h.AddFact(0);
  h.AddClause(1, {0});
  h.AddClause(2, {0, 1});
  EXPECT_EQ(h.SizeInLiterals(), 1 + 2 + 3);
  EXPECT_EQ(h.num_clauses(), 3);
}

// Minimal-model property on random instances: the computed model is a model
// (every clause with a true body has a true head) and is minimal (every true
// predicate has a derivation, checked by recomputation from scratch with the
// truth assignment as the only allowed support).
TEST(HornTest, RandomInstancesComputeMinimalModels) {
  Rng rng(21);
  for (int trial = 0; trial < 50; ++trial) {
    HornInstance h;
    int preds = 2 + static_cast<int>(rng.Uniform(0, 20));
    h.AddPredicates(preds);
    int clauses = static_cast<int>(rng.Uniform(1, 40));
    std::vector<std::pair<PredId, std::vector<PredId>>> spec;
    for (int c = 0; c < clauses; ++c) {
      PredId head = static_cast<PredId>(rng.Uniform(0, preds - 1));
      std::vector<PredId> body;
      int len = static_cast<int>(rng.Uniform(0, 3));
      for (int i = 0; i < len; ++i) {
        body.push_back(static_cast<PredId>(rng.Uniform(0, preds - 1)));
      }
      spec.emplace_back(head, body);
      h.AddClause(head, body);
    }
    std::vector<char> truth = h.Solve();
    // Model check.
    for (const auto& [head, body] : spec) {
      bool body_true = true;
      for (PredId p : body) body_true = body_true && truth[p];
      if (body_true) EXPECT_TRUE(truth[head]);
    }
    // Minimality: iterate naive closure and compare.
    std::vector<char> closure(preds, 0);
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& [head, body] : spec) {
        if (closure[head]) continue;
        bool body_true = true;
        for (PredId p : body) body_true = body_true && closure[p];
        if (body_true) {
          closure[head] = 1;
          changed = true;
        }
      }
    }
    EXPECT_EQ(truth, closure) << "trial " << trial;
  }
}

}  // namespace
}  // namespace horn
}  // namespace treeq
