// Cross-engine integration tests: one realistic document, many queries,
// every applicable engine — they must all agree. This is the repo-level
// guarantee that the paper's translation arrows (Figure 7) commute in code.

#include <gtest/gtest.h>

#include <string>

#include "cq/dichotomy.h"
#include "cq/enumerate.h"
#include "cq/naive.h"
#include "cq/parser.h"
#include "cq/yannakakis.h"
#include "cq/treewidth_eval.h"
#include "cq/twig_join.h"
#include "datalog/evaluator.h"
#include "stream/stream_eval.h"
#include "tree/generator.h"
#include "tree/orders.h"
#include "tree/xml.h"
#include "util/random.h"
#include "xpath/evaluator.h"
#include "xpath/naive_evaluator.h"
#include "xpath/parser.h"
#include "xpath/to_datalog.h"
#include "xpath/to_forward.h"

namespace treeq {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(2006);
    CatalogOptions opts;
    opts.num_products = 40;
    Tree generated = CatalogDocument(&rng, opts);
    // Round-trip through XML text so the parser/serializer sit in the loop.
    std::string xml = WriteXml(generated);
    Result<Tree> reparsed = ParseXml(xml);
    ASSERT_TRUE(reparsed.ok());
    tree_ = std::make_unique<Tree>(std::move(reparsed).value());
    orders_ = std::make_unique<TreeOrders>(ComputeOrders(*tree_));
  }

  std::unique_ptr<Tree> tree_;
  std::unique_ptr<TreeOrders> orders_;
};

TEST_F(IntegrationTest, AllEnginesAgreeOnConjunctiveQueries) {
  const char* kQueries[] = {
      "/catalog/product",
      "//review",
      "//product[reviews/review/comment]",
      "//product/desc/para[emph]",
      "//review[rating5]/comment",
      "//product[desc/para]//rating4",
  };
  for (const char* text : kQueries) {
    auto p = std::move(xpath::ParseXPath(text)).value();

    // Engine 1: linear set-at-a-time.
    NodeSet direct = xpath::EvalQueryFromRoot(*tree_, *orders_, *p);
    // Engine 2: naive recursive semantics.
    Result<NodeSet> naive =
        xpath::NaiveEvalPath(*tree_, *orders_, *p, tree_->root());
    ASSERT_TRUE(naive.ok()) << text;
    EXPECT_EQ(direct.ToVector(), naive.value().ToVector()) << text;
    // Engine 3: datalog pipeline.
    auto program = std::move(xpath::XPathToDatalog(*p)).value();
    auto via_datalog =
        std::move(datalog::EvaluateDatalog(program, *tree_)).value();
    EXPECT_EQ(direct.ToVector(), via_datalog.ToVector()) << text;
    // Engine 4: forward rewrite + linear evaluation.
    auto fwd = std::move(xpath::ToForwardXPath(*p)).value();
    NodeSet via_forward = xpath::EvalQueryFromRoot(*tree_, *orders_, *fwd);
    EXPECT_EQ(direct.ToVector(), via_forward.ToVector()) << text;
    // Engine 5: streaming over SAX events (selection mode if supported,
    // Boolean otherwise).
    auto matcher = std::move(stream::StreamMatcher::Compile(*fwd)).value();
    stream::StreamTree(*tree_, [&matcher](const stream::SaxEvent& e) {
      matcher->OnEvent(e);
    });
    EXPECT_EQ(matcher->Matches(), !direct.empty()) << text;
    if (matcher->selection_supported()) {
      EXPECT_EQ(matcher->SelectedNodes(), direct.ToVector()) << text;
    }
  }
}

TEST_F(IntegrationTest, TwigAndXPathAgree) {
  // product[.//rating5][.//comment] as a twig and as XPath.
  cq::TwigPattern twig;
  twig.nodes.push_back({"product", Axis::kDescendant, -1});
  twig.nodes.push_back({"rating5", Axis::kDescendant, 0});
  twig.nodes.push_back({"comment", Axis::kDescendant, 0});
  auto matches = std::move(cq::TwigStackJoin(twig, *tree_, *orders_)).value();
  NodeSet roots(tree_->num_nodes());
  for (const auto& m : matches) roots.Insert(m[0]);

  auto p = std::move(xpath::ParseXPath(
                         "//product[descendant::rating5][descendant::comment]"))
               .value();
  NodeSet via_xpath = xpath::EvalQueryFromRoot(*tree_, *orders_, *p);
  EXPECT_EQ(roots.ToVector(), via_xpath.ToVector());
}

TEST_F(IntegrationTest, CqEnginesAgreeOnTreeAndCyclicQueries) {
  struct Case {
    const char* text;
    bool tree_shaped;
  };
  const Case kCases[] = {
      {"Q() :- Child+(x, y), Lab_product(x), Lab_rating5(y).", true},
      {"Q() :- Child(x, y), Child(x, z), NextSibling(y, z), Lab_review(x).",
       false},
      {"Q() :- Child+(x, y), Child+(y, z), Child+(x, z), Lab_product(x), "
       "Lab_review(y), Lab_rating3(z).",
       false},
  };
  for (const Case& c : kCases) {
    auto q = std::move(cq::ParseCq(c.text)).value();
    bool expected = std::move(cq::NaiveSatisfiableCq(q, *tree_, *orders_))
                        .value();
    EXPECT_EQ(std::move(cq::EvaluateBooleanTreewidth(q, *tree_, *orders_))
                  .value(),
              expected)
        << c.text;
    EXPECT_EQ(
        std::move(cq::EvaluateBooleanDichotomy(q, *tree_, *orders_)).value(),
        expected)
        << c.text;
    if (c.tree_shaped) {
      EXPECT_EQ(
          std::move(cq::EvaluateBooleanAcyclic(q, *tree_, *orders_)).value(),
          expected)
          << c.text;
    }
  }
}

TEST(DeepTreeTest, EnginesSurviveDeepDocuments) {
  const int kDepth = 4000;
  Tree deep = Chain(kDepth, "a", "b");
  TreeOrders orders = ComputeOrders(deep);

  auto p = std::move(xpath::ParseXPath("//b[not(a)]")).value();
  NodeSet direct = xpath::EvalQueryFromRoot(deep, orders, *p);
  EXPECT_EQ(direct.size(), 1);  // only the deepest b has no a below

  auto fwd_ok = stream::StreamMatcher::MatchTree(*p, deep);
  ASSERT_TRUE(fwd_ok.ok());
  EXPECT_TRUE(fwd_ok.value());

  auto program = std::move(xpath::XPathToDatalog(
                               *std::move(xpath::ParseXPath("//b[a]")).value()))
                     .value();
  auto via_datalog = datalog::EvaluateDatalog(program, deep);
  ASSERT_TRUE(via_datalog.ok());
  EXPECT_EQ(via_datalog.value().size(), kDepth / 2 - 1);

  // XML serialization round trip at depth.
  std::string xml = WriteXml(deep);
  Result<Tree> reparsed = ParseXml(xml);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value().num_nodes(), kDepth);
}

TEST(SingleNodeTest, AllEnginesHandleTheSmallestTree) {
  Tree t = Chain(1, "only");
  TreeOrders o = ComputeOrders(t);

  auto p = std::move(xpath::ParseXPath("/only")).value();
  EXPECT_EQ(xpath::EvalQueryFromRoot(t, o, *p).size(), 1);
  // "//x" abbreviates descendant-or-self::*/child::x, so it cannot select
  // the context root itself; descendant-or-self::x can.
  auto dslash = std::move(xpath::ParseXPath("//only")).value();
  EXPECT_EQ(xpath::EvalQueryFromRoot(t, o, *dslash).size(), 0);
  auto any = std::move(xpath::ParseXPath("descendant-or-self::only")).value();
  EXPECT_EQ(xpath::EvalQueryFromRoot(t, o, *any).size(), 1);
  auto child = std::move(xpath::ParseXPath("only")).value();
  EXPECT_EQ(xpath::EvalQueryFromRoot(t, o, *child).size(), 0);

  auto q = std::move(cq::ParseCq("Q(x) :- Lab_only(x).")).value();
  EXPECT_EQ(std::move(cq::EvaluateAcyclic(q, t, o)).value(),
            (cq::TupleSet{{0}}));

  auto unsat = std::move(cq::ParseCq("Q() :- Child(x, y).")).value();
  EXPECT_FALSE(std::move(cq::EvaluateBooleanTreewidth(unsat, t, o)).value());

  stream::StreamStats stats;
  auto matched = stream::StreamMatcher::MatchTree(*any, t, &stats);
  ASSERT_TRUE(matched.ok());
  EXPECT_TRUE(matched.value());
  EXPECT_EQ(stats.peak_frames, 1u);
}

}  // namespace
}  // namespace treeq
