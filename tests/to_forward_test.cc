#include "xpath/to_forward.h"

#include <gtest/gtest.h>

#include <functional>

#include "tree/generator.h"
#include "tree/orders.h"
#include "util/random.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace treeq {
namespace xpath {
namespace {

std::unique_ptr<PathExpr> MustParse(const std::string& text) {
  Result<std::unique_ptr<PathExpr>> p = ParseXPath(text);
  EXPECT_TRUE(p.ok()) << text << ": " << p.status().ToString();
  return std::move(p).value();
}

TEST(XPathToCqTest, BuildsContextAndResultVars) {
  auto p = MustParse("a/b[c]");
  Result<XPathCq> cq = ConjunctiveXPathToCq(*p);
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  EXPECT_EQ(cq.value().query.head_vars().size(), 2u);
  EXPECT_EQ(cq.value().query.head_vars()[0], cq.value().context_var);
  EXPECT_EQ(cq.value().query.head_vars()[1], cq.value().result_var);
  // ctx, a-node, b-node, c-node.
  EXPECT_EQ(cq.value().query.num_vars(), 4);
  EXPECT_EQ(cq.value().query.axis_atoms().size(), 3u);
  EXPECT_EQ(cq.value().query.label_atoms().size(), 3u);
}

TEST(XPathToCqTest, RejectsNonConjunctive) {
  EXPECT_FALSE(ConjunctiveXPathToCq(*MustParse("a | b")).ok());
  EXPECT_FALSE(ConjunctiveXPathToCq(*MustParse("a[b or c]")).ok());
  EXPECT_FALSE(ConjunctiveXPathToCq(*MustParse("a[not(b)]")).ok());
}

class ToForwardPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ToForwardPropertyTest, ForwardQueryIsEquivalentFromRoot) {
  Rng rng(GetParam());
  RandomTreeOptions opts;
  opts.num_nodes = 25;
  opts.attach_window = 1 + GetParam() % 6;
  opts.alphabet = {"a", "b", "c"};
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);

  const char* kQueries[] = {
      // Pure forward queries should stay equivalent.
      "descendant::a/b",
      "descendant::a[b]/descendant::c",
      // Backward axes to eliminate.
      "descendant::b/parent::a",
      "descendant::c/ancestor::a",
      "descendant::b[parent::a]",
      "descendant::a/preceding-sibling::b",
      "descendant::c/ancestor::*[b]",
      "descendant::b/preceding::a",
      "descendant::a[b]/ancestor::c",
      // Mixed chains.
      "descendant::a/parent::b/descendant::c",
  };
  for (const char* text : kQueries) {
    std::unique_ptr<PathExpr> p = MustParse(text);
    Result<std::unique_ptr<PathExpr>> fwd = ToForwardXPath(*p);
    ASSERT_TRUE(fwd.ok()) << text << ": " << fwd.status().ToString();
    EXPECT_TRUE(IsForward(*fwd.value())) << text;
    NodeSet original = EvalQueryFromRoot(t, o, *p);
    NodeSet rewritten = EvalQueryFromRoot(t, o, *fwd.value());
    EXPECT_EQ(rewritten.ToVector(), original.ToVector())
        << text << "\n -> " << ToString(*fwd.value());
  }
}

// Random conjunctive queries over all axes (forward and backward, with
// nested conjunctive qualifiers): the rewritten forward query must select
// the same nodes from the root.
TEST_P(ToForwardPropertyTest, RandomConjunctiveQueriesRewriteEquivalently) {
  Rng rng(300 + GetParam());
  RandomTreeOptions opts;
  opts.num_nodes = 18;
  opts.attach_window = 1 + GetParam() % 4;
  opts.alphabet = {"a", "b"};
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);

  static const Axis kAxes[] = {
      Axis::kChild,        Axis::kParent,
      Axis::kDescendant,   Axis::kAncestor,
      Axis::kDescendantOrSelf, Axis::kAncestorOrSelf,
      Axis::kNextSibling,  Axis::kPrevSibling,
      Axis::kFollowingSibling, Axis::kPrecedingSibling,
      Axis::kFollowing,    Axis::kPreceding,
      Axis::kSelf,
  };
  // Generates a random conjunctive path of bounded size.
  std::function<std::unique_ptr<PathExpr>(int)> gen =
      [&](int depth) -> std::unique_ptr<PathExpr> {
    auto step = PathExpr::MakeStep(kAxes[rng.Uniform(0, 12)]);
    if (rng.Bernoulli(0.6)) {
      step->qualifiers.push_back(
          Qualifier::MakeLabel(rng.Bernoulli(0.5) ? "a" : "b"));
    }
    if (depth > 0 && rng.Bernoulli(0.4)) {
      step->qualifiers.push_back(Qualifier::MakePath(gen(depth - 1)));
    }
    if (depth > 0 && rng.Bernoulli(0.5)) {
      return PathExpr::MakeSeq(std::move(step), gen(depth - 1));
    }
    return step;
  };

  for (int trial = 0; trial < 15; ++trial) {
    std::unique_ptr<PathExpr> p = gen(2);
    Result<std::unique_ptr<PathExpr>> fwd = ToForwardXPath(*p);
    ASSERT_TRUE(fwd.ok()) << ToString(*p) << ": "
                          << fwd.status().ToString();
    EXPECT_TRUE(IsForward(*fwd.value())) << ToString(*p);
    NodeSet original = EvalQueryFromRoot(t, o, *p);
    NodeSet rewritten = EvalQueryFromRoot(t, o, *fwd.value());
    EXPECT_EQ(rewritten.ToVector(), original.ToVector())
        << ToString(*p) << "\n -> " << ToString(*fwd.value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ToForwardPropertyTest, ::testing::Range(0, 8));

TEST(ToForwardTest, UnsatisfiableAtRootYieldsNeverMatching) {
  // The root has no parent: a query demanding one selects nothing.
  auto p = MustParse("parent::a");
  Result<std::unique_ptr<PathExpr>> fwd = ToForwardXPath(*p);
  ASSERT_TRUE(fwd.ok()) << fwd.status().ToString();
  Tree t = Chain(4, "a");
  TreeOrders o = ComputeOrders(t);
  EXPECT_TRUE(EvalQueryFromRoot(t, o, *fwd.value()).empty());
}

TEST(ToForwardTest, RejectsNonConjunctive) {
  EXPECT_FALSE(ToForwardXPath(*MustParse("a[not(b)]")).ok());
}

}  // namespace
}  // namespace xpath
}  // namespace treeq
