#include <gtest/gtest.h>

#include "cq/ast.h"
#include "cq/naive.h"
#include "cq/parser.h"
#include "tree/generator.h"
#include "tree/orders.h"
#include "util/random.h"

namespace treeq {
namespace cq {
namespace {

ConjunctiveQuery MustParse(const std::string& text) {
  Result<ConjunctiveQuery> q = ParseCq(text);
  EXPECT_TRUE(q.ok()) << text << ": " << q.status().ToString();
  return std::move(q).value();
}

TEST(CqParserTest, ParsesHeadsAndAtoms) {
  ConjunctiveQuery q = MustParse(
      "Q(x, z) :- Child+(x, y), NextSibling(y, z), Lab_a(y), "
      "Label(\"b c\", z).");
  EXPECT_EQ(q.num_vars(), 3);
  EXPECT_EQ(q.head_vars().size(), 2u);
  EXPECT_EQ(q.axis_atoms().size(), 2u);
  EXPECT_EQ(q.axis_atoms()[0].axis, Axis::kDescendant);
  ASSERT_EQ(q.label_atoms().size(), 2u);
  EXPECT_EQ(q.label_atoms()[1].label, "b c");
}

TEST(CqParserTest, BooleanQuery) {
  ConjunctiveQuery q = MustParse("Q() :- Following(x, y), Lab_a(x).");
  EXPECT_TRUE(q.IsBoolean());
  EXPECT_EQ(q.num_vars(), 2);
}

TEST(CqParserTest, Errors) {
  EXPECT_FALSE(ParseCq("").ok());
  EXPECT_FALSE(ParseCq("Q(x)").ok());
  EXPECT_FALSE(ParseCq("Q(x) :- Unknown(x, y).").ok());
  EXPECT_FALSE(ParseCq("Q(x) :- Lab_a(x)").ok());  // missing final dot
  EXPECT_FALSE(ParseCq("Q(x) :- Lab_a(x). extra").ok());
}

TEST(CqParserTest, ToStringRoundTrips) {
  ConjunctiveQuery q =
      MustParse("Q(x) :- Child(x, y), Lab_a(y), following(y, z).");
  ConjunctiveQuery q2 = MustParse(q.ToString());
  EXPECT_EQ(q2.ToString(), q.ToString());
}

TEST(CqAstTest, StructureChecks) {
  ConjunctiveQuery path = MustParse("Q(x) :- Child(x, y), Child(y, z).");
  EXPECT_TRUE(path.IsConnected());
  EXPECT_TRUE(path.IsTreeShaped());

  ConjunctiveQuery cycle = MustParse(
      "Q(x) :- Child(x, y), Child(y, z), Child+(x, z).");
  EXPECT_TRUE(cycle.IsConnected());
  EXPECT_FALSE(cycle.IsTreeShaped());

  ConjunctiveQuery parallel =
      MustParse("Q(x) :- Child(x, y), Child+(x, y).");
  EXPECT_FALSE(parallel.IsTreeShaped());

  ConjunctiveQuery disconnected =
      MustParse("Q(x) :- Lab_a(x), Child(y, z).");
  EXPECT_FALSE(disconnected.IsConnected());
  EXPECT_FALSE(disconnected.IsTreeShaped());
}

TEST(CqAstTest, NormalizeInverseAxes) {
  ConjunctiveQuery q = MustParse("Q(x) :- parent(x, y), ancestor(x, z).");
  q.NormalizeInverseAxes();
  ASSERT_EQ(q.axis_atoms().size(), 2u);
  EXPECT_EQ(q.axis_atoms()[0].axis, Axis::kChild);
  EXPECT_EQ(q.axis_atoms()[0].var0, 1);  // swapped
  EXPECT_EQ(q.axis_atoms()[1].axis, Axis::kDescendant);
}

TEST(CqAstTest, AxesUsedDeduplicates) {
  ConjunctiveQuery q = MustParse(
      "Q() :- Child(a, b), Child(b, c), Child+(a, c).");
  EXPECT_EQ(q.AxesUsed().size(), 2u);
}

TEST(NaiveCqTest, UnaryQueryOnChain) {
  Tree t = Chain(4, "a", "b");  // a b a b
  TreeOrders o = ComputeOrders(t);
  ConjunctiveQuery q = MustParse("Q(x) :- Child(x, y), Lab_b(y).");
  Result<TupleSet> r = NaiveEvaluateCq(q, t, o);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (TupleSet{{0}, {2}}));
}

TEST(NaiveCqTest, BooleanSemantics) {
  Tree t = Chain(3);
  TreeOrders o = ComputeOrders(t);
  ConjunctiveQuery sat = MustParse("Q() :- Child(x, y), Child(y, z).");
  ConjunctiveQuery unsat =
      MustParse("Q() :- Child(x, y), NextSibling(x, y).");
  EXPECT_TRUE(NaiveSatisfiableCq(sat, t, o).value());
  EXPECT_FALSE(NaiveSatisfiableCq(unsat, t, o).value());
  EXPECT_EQ(NaiveEvaluateCq(sat, t, o).value(), (TupleSet{{}}));
  EXPECT_TRUE(NaiveEvaluateCq(unsat, t, o).value().empty());
}

TEST(NaiveCqTest, BinaryProjection) {
  Tree t = Star(4);
  TreeOrders o = ComputeOrders(t);
  ConjunctiveQuery q = MustParse("Q(x, y) :- NextSibling(x, y).");
  Result<TupleSet> r = NaiveEvaluateCq(q, t, o);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (TupleSet{{1, 2}, {2, 3}}));
}

TEST(NaiveCqTest, BudgetAborts) {
  Tree t = Chain(50);
  TreeOrders o = ComputeOrders(t);
  ConjunctiveQuery q = MustParse(
      "Q() :- Child+(a, b), Child+(b, c), Child+(c, d), Child+(d, e).");
  Result<TupleSet> r = NaiveEvaluateCq(q, t, o, /*budget=*/10);
  EXPECT_FALSE(r.ok());
}

TEST(NaiveCqTest, SatisfiableStopsEarly) {
  Tree t = Chain(60);
  TreeOrders o = ComputeOrders(t);
  ConjunctiveQuery q = MustParse("Q() :- Child+(x, y).");
  NaiveCqStats stats;
  ASSERT_TRUE(NaiveSatisfiableCq(q, t, o, UINT64_MAX, &stats).value());
  // Finds (0, 1) nearly immediately rather than enumerating all pairs.
  EXPECT_LT(stats.assignments_tried, 20u);
}

}  // namespace
}  // namespace cq
}  // namespace treeq
