// Tests for the cross-query reuse layer (cache/eval_cache.h,
// cache/result_cache.h) and its engine wiring: versioned axis-image
// memoization, whole-query result caching, in-flight deduplication
// (singleflight), batched submission, and DocumentStore epoch
// invalidation. Execution counts are asserted through the cache objects'
// own atomic tallies and per-request ExecContext spend, so every test
// also runs under TREEQ_OBS_DISABLED builds; the concurrency tests are
// part of the TSan CI job.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cache/eval_cache.h"
#include "cache/result_cache.h"
#include "engine/engine.h"
#include "tree/axes.h"
#include "tree/document.h"
#include "tree/generator.h"
#include "tree/node_set.h"
#include "tree/orders.h"
#include "util/random.h"

namespace treeq {
namespace {

using cache::EvalCache;
using cache::EvalCacheOptions;
using cache::InflightTable;
using cache::ResultCache;
using cache::ResultCacheOptions;
using cache::ResultKey;
using engine::DocumentStore;
using engine::Executor;
using engine::Plan;
using engine::PlanPtr;
using engine::SubmitOptions;

DocumentPtr Catalog(int seed = 1, int products = 40) {
  Rng rng(static_cast<uint64_t>(seed));
  CatalogOptions opts;
  opts.num_products = products;
  return MakeDocumentWithOrders(CatalogDocument(&rng, opts));
}

NodeSet FromIds(int universe, std::initializer_list<NodeId> ids) {
  NodeSet s(universe);
  for (NodeId v : ids) s.Insert(v);
  return s;
}

// Result keys are (doc epoch, canonical plan hash). For tests that key by
// a real query, derive the hash from its compiled plan; tests exercising
// pure cache mechanics use synthetic hashes via SyntheticKey.
ResultKey KeyFor(const PlanPtr& plan, uint64_t doc_epoch) {
  ResultKey key;
  key.doc_epoch = doc_epoch;
  key.query_hash_hi = plan->canonical_hash().hi;
  key.query_hash_lo = plan->canonical_hash().lo;
  return key;
}

ResultKey SyntheticKey(uint64_t doc_epoch, uint64_t lo) {
  ResultKey key;
  key.doc_epoch = doc_epoch;
  key.query_hash_lo = lo;
  return key;
}

// A query slow enough (naive FO, quadratic in document size) to keep a
// one-worker pool busy for milliseconds while the test thread enqueues
// follow-up submissions — the deterministic window the singleflight tests
// rely on (enqueueing is a sub-microsecond queue push).
PlanPtr BlockerPlan() {
  return Plan::Compile(Language::kFo,
                       "forall x . forall y . "
                       "(not Child(x, y) or not Lab_zzz(x))")
      .value();
}

// ---------------------------------------------------------------------------
// EvalCache

TEST(EvalCacheTest, RoundTripIsBitIdenticalAndEpochIsolated) {
  Tree t = Chain(40, "a", "b");
  TreeOrders o = ComputeOrders(t);
  NodeSet from = FromIds(t.num_nodes(), {0, 3, 17});
  NodeSet want(t.num_nodes());
  AxisImage(t, o, Axis::kDescendant, from, &want);

  EvalCache cache;
  NodeSet got(t.num_nodes());
  EXPECT_FALSE(cache.Lookup(7, Axis::kDescendant, from, &got));
  cache.Insert(7, Axis::kDescendant, from, want);
  ASSERT_TRUE(cache.Lookup(7, Axis::kDescendant, from, &got));
  EXPECT_TRUE(got == want);

  // Same input set, other epoch or other axis: distinct keys.
  EXPECT_FALSE(cache.Lookup(8, Axis::kDescendant, from, &got));
  EXPECT_FALSE(cache.Lookup(7, Axis::kAncestor, from, &got));

  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.inserts(), 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_GT(cache.bytes_used(), 0u);
}

TEST(EvalCacheTest, ByteBudgetForcesEviction) {
  const int kUniverse = 512;
  Tree t = Chain(kUniverse, "a", "b");
  EvalCacheOptions options;
  options.num_shards = 1;
  // Room for only a couple of 512-bit results plus overhead.
  options.max_bytes = 400;
  options.max_entry_bytes = 400;
  EvalCache cache(options);

  for (NodeId v = 0; v < 32; ++v) {
    NodeSet from = FromIds(kUniverse, {v});
    NodeSet to = FromIds(kUniverse, {v, static_cast<NodeId>(v + 1)});
    cache.Insert(3, Axis::kChild, from, to);
    EXPECT_LE(cache.bytes_used(), options.max_bytes);
  }
  EXPECT_GT(cache.evictions(), 0u);
  EXPECT_LT(cache.size(), 32u);

  // The survivors still serve exact results.
  NodeSet from = FromIds(kUniverse, {31});
  NodeSet got(kUniverse);
  ASSERT_TRUE(cache.Lookup(3, Axis::kChild, from, &got));
  EXPECT_TRUE(got == FromIds(kUniverse, {31, 32}));
}

TEST(EvalCacheTest, OversizedResultsAreNeverCached) {
  EvalCacheOptions options;
  options.max_entry_bytes = 8;  // smaller than any entry's overhead
  EvalCache cache(options);
  NodeSet from = FromIds(64, {1});
  NodeSet to = FromIds(64, {2});
  cache.Insert(1, Axis::kChild, from, to);
  EXPECT_EQ(cache.inserts(), 0u);
  EXPECT_EQ(cache.size(), 0u);
  NodeSet got(64);
  EXPECT_FALSE(cache.Lookup(1, Axis::kChild, from, &got));
}

TEST(EvalCacheTest, InvalidateDocumentDropsOnlyThatEpoch) {
  EvalCache cache;
  NodeSet from = FromIds(64, {0, 5});
  NodeSet to = FromIds(64, {6});
  cache.Insert(10, Axis::kChild, from, to);
  cache.Insert(11, Axis::kChild, from, to);
  ASSERT_EQ(cache.size(), 2u);

  cache.InvalidateDocument(10);
  EXPECT_EQ(cache.size(), 1u);
  NodeSet got(64);
  EXPECT_FALSE(cache.Lookup(10, Axis::kChild, from, &got));
  EXPECT_TRUE(cache.Lookup(11, Axis::kChild, from, &got));

  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes_used(), 0u);
}

TEST(EvalCacheTest, MemoAdapterServesAxisImageMemoized) {
  Tree t = Chain(100, "a", "b");
  TreeOrders o = ComputeOrders(t);
  NodeSet from = FromIds(t.num_nodes(), {2, 50, 99});
  NodeSet want(t.num_nodes());
  AxisImage(t, o, Axis::kAncestor, from, &want);

  EvalCache cache;
  EvalCache::Memo memo(&cache, /*epoch=*/42);
  NodeSet cold(t.num_nodes());
  EXPECT_FALSE(
      AxisImageMemoized(t, o, Axis::kAncestor, from, &cold, &memo));
  EXPECT_TRUE(cold == want);
  NodeSet warm(t.num_nodes());
  EXPECT_TRUE(AxisImageMemoized(t, o, Axis::kAncestor, from, &warm, &memo));
  EXPECT_TRUE(warm == want);
  // Null memo degenerates to the plain kernel.
  NodeSet plain(t.num_nodes());
  EXPECT_FALSE(
      AxisImageMemoized(t, o, Axis::kAncestor, from, &plain, nullptr));
  EXPECT_TRUE(plain == want);
}

// ---------------------------------------------------------------------------
// ResultCache

TEST(ResultCacheTest, RoundTripsAllThreeValueShapes) {
  DocumentPtr doc = Catalog();
  struct Case {
    Language language;
    const char* text;
  } cases[] = {
      {Language::kXPath, "//review/rating5"},                         // nodes
      {Language::kCq,
       "Q(p, r) :- Child+(p, r), Lab_product(p), Lab_review(r)."},    // tuples
      {Language::kFo, "exists x . Lab_price(x)"},                     // bool
  };

  ResultCache cache;
  for (const Case& c : cases) {
    PlanPtr plan = Plan::Compile(c.language, c.text).value();
    QueryResult want = plan->Run(*doc).value();

    ResultKey key = KeyFor(plan, doc->epoch());
    EXPECT_FALSE(cache.Lookup(key).has_value());
    cache.Insert(key, want);
    std::optional<QueryResult> got = cache.Lookup(key);
    ASSERT_TRUE(got.has_value()) << c.text;
    EXPECT_EQ(got->value, want.value) << c.text;
    EXPECT_STREQ(got->engine, want.engine);
    EXPECT_EQ(got->language, want.language);
  }
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_EQ(cache.misses(), 3u);
}

// The key is the canonical plan hash, so dialect options (and language,
// whitespace, variable naming) matter exactly when they change the
// canonical plan. Different hashes are distinct entries; semantically
// identical queries in different languages share one.
TEST(ResultCacheTest, CanonicalHashIsTheKey) {
  ResultCache cache;
  QueryResult result;
  result.value = true;

  ResultKey a = SyntheticKey(1, 0x1111);
  cache.Insert(a, result);

  ResultKey other_hash = a;
  other_hash.query_hash_lo = 0x2222;
  EXPECT_FALSE(cache.Lookup(other_hash).has_value());
  ResultKey other_hi = a;
  other_hi.query_hash_hi = 7;
  EXPECT_FALSE(cache.Lookup(other_hi).has_value());
  ResultKey other_epoch = a;
  other_epoch.doc_epoch = 2;
  EXPECT_FALSE(cache.Lookup(other_epoch).has_value());
  EXPECT_TRUE(cache.Lookup(a).has_value());

  // The same query phrased in XPath and as a conjunctive query compiles
  // to the same canonical hash, hence the same cache key. (The CQ needs
  // the extra ancestor variable `w` to mirror XPath's root anchoring:
  // `//product` can never match the root, so the faithful CQ asserts the
  // product node has *some* ancestor.)
  PlanPtr xpath =
      Plan::Compile(Language::kXPath, "//product//rating5").value();
  PlanPtr cq =
      Plan::Compile(Language::kCq,
                    "Q(y) :- Child+(w, x), Child+(x, y), Lab_product(x), "
                    "Lab_rating5(y).")
          .value();
  EXPECT_EQ(KeyFor(xpath, 3), KeyFor(cq, 3));
  cache.Insert(KeyFor(xpath, 3), result);
  EXPECT_TRUE(cache.Lookup(KeyFor(cq, 3)).has_value());
}

TEST(ResultCacheTest, EntryCountAndByteBudgetsBound) {
  ResultCacheOptions options;
  options.num_shards = 1;
  options.max_entries = 4;
  ResultCache cache(options);
  QueryResult result;
  result.value = NodeSet(64);
  for (int i = 0; i < 32; ++i) {
    cache.Insert(SyntheticKey(1, static_cast<uint64_t>(i)), result);
  }
  EXPECT_LE(cache.size(), 4u);
  EXPECT_GT(cache.evictions(), 0u);
}

TEST(ResultCacheTest, InvalidateDocumentDropsEpoch) {
  ResultCache cache;
  QueryResult result;
  result.value = false;
  ResultKey old_key = SyntheticKey(5, 0xA);
  ResultKey new_key = old_key;
  new_key.doc_epoch = 6;
  cache.Insert(old_key, result);
  cache.Insert(new_key, result);
  cache.InvalidateDocument(5);
  EXPECT_FALSE(cache.Lookup(old_key).has_value());
  EXPECT_TRUE(cache.Lookup(new_key).has_value());
  EXPECT_EQ(cache.size(), 1u);
}

// ---------------------------------------------------------------------------
// InflightTable

TEST(InflightTableTest, LeaderRegistersFollowersShareOutcome) {
  InflightTable table;
  ResultKey key = SyntheticKey(1, 0xA);

  EXPECT_FALSE(table.Join(key).has_value());  // leader
  auto f1 = table.Join(key);
  auto f2 = table.Join(key);
  ASSERT_TRUE(f1.has_value());
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.leaders(), 1u);
  EXPECT_EQ(table.followers(), 2u);

  QueryResult outcome;
  outcome.value = true;
  table.Complete(key, outcome);
  EXPECT_EQ(table.size(), 0u);
  Result<QueryResult> r1 = f1->get();
  Result<QueryResult> r2 = f2->get();
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->value, outcome.value);
  EXPECT_EQ(r2->value, outcome.value);

  // The key is free again after completion.
  EXPECT_FALSE(table.Join(key).has_value());
  table.Complete(key, Status::Unavailable("rejected"));
}

TEST(InflightTableTest, ErrorsFanOutToFollowers) {
  InflightTable table;
  ResultKey key = SyntheticKey(2, 0xB);
  EXPECT_FALSE(table.Join(key).has_value());
  auto follower = table.Join(key);
  ASSERT_TRUE(follower.has_value());
  table.Complete(key, Status::Unavailable("executor queue is full"));
  Result<QueryResult> r = follower->get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
}

// ---------------------------------------------------------------------------
// Executor wiring

TEST(ExecutorCacheTest, ResultCacheHitSkipsExecution) {
  DocumentPtr doc = Catalog();
  PlanPtr plan = Plan::Compile(Language::kXPath, "//review/rating5").value();
  ResultCache result_cache;
  Executor exec(Executor::Options{.num_workers = 1,
                                  .result_cache = &result_cache});

  engine::Submission cold = exec.Submit({plan, doc, {}});
  Result<QueryResult> first = cold.future.get();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(result_cache.inserts(), 1u);
  EXPECT_EQ(result_cache.hits(), 0u);

  engine::Submission warm = exec.Submit({plan, doc, {}});
  Result<QueryResult> second = warm.future.get();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->value, first->value);
  // Served from cache: the lookup registered a hit and nothing re-executed
  // (an execution would have inserted a second time).
  EXPECT_EQ(result_cache.hits(), 1u);
  EXPECT_EQ(result_cache.inserts(), 1u);
}

TEST(ExecutorCacheTest, EvalCacheReusesAxisImagesAcrossRequests) {
  DocumentPtr doc = Catalog();
  PlanPtr plan =
      Plan::Compile(Language::kXPath, "/catalog/product/name").value();
  EvalCache eval_cache;
  Executor exec(Executor::Options{.num_workers = 1,
                                  .eval_cache = &eval_cache});

  Result<QueryResult> want = plan->Run(*doc);
  ASSERT_TRUE(want.ok());

  Result<QueryResult> cold = exec.Submit({plan, doc, {}}).future.get();
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->value, want->value);
  EXPECT_GT(eval_cache.inserts(), 0u);
  EXPECT_EQ(eval_cache.hits(), 0u);

  Result<QueryResult> hot = exec.Submit({plan, doc, {}}).future.get();
  ASSERT_TRUE(hot.ok());
  EXPECT_EQ(hot->value, want->value);
  EXPECT_GT(eval_cache.hits(), 0u);
}

TEST(ExecutorCacheTest, SingleflightCollapsesConcurrentIdenticalSubmits) {
  DocumentPtr doc = Catalog();
  PlanPtr plan = Plan::Compile(Language::kXPath, "//review/rating5").value();
  // The result cache doubles as the execution tally: every executed
  // eligible request inserts exactly once, so inserts() counts executions.
  ResultCache result_cache;
  Executor exec(Executor::Options{.num_workers = 1,
                                  .queue_capacity = 32,
                                  .result_cache = &result_cache,
                                  .singleflight = true});

  // Occupy the single worker so every identical submission below lands
  // while the first (the leader) is still queued — the flight table holds
  // the key for that whole window. bypass_cache keeps the blocker out of
  // the tally.
  SubmitOptions bypass;
  bypass.bypass_cache = true;
  engine::Submission blocker = exec.Submit({BlockerPlan(), doc, bypass});

  constexpr int kDuplicates = 6;
  std::vector<engine::Submission> dups;
  for (int i = 0; i < kDuplicates; ++i) {
    dups.push_back(exec.Submit({plan, doc, {}}));
  }
  ASSERT_TRUE(blocker.future.get().ok());

  Result<QueryResult> want = plan->Run(*doc);
  ASSERT_TRUE(want.ok());
  for (engine::Submission& s : dups) {
    Result<QueryResult> r = s.future.get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->value, want->value);
  }
  // Only the leader evaluated: one insert, and no duplicate was served a
  // cache hit (they all joined the flight before the leader ran).
  EXPECT_EQ(result_cache.inserts(), 1u);
  EXPECT_EQ(result_cache.hits(), 0u);
}

TEST(ExecutorCacheTest, BoundedAndBypassRequestsNeverReuse) {
  DocumentPtr doc = Catalog();
  PlanPtr plan = Plan::Compile(Language::kXPath, "//review/rating5").value();
  EvalCache eval_cache;
  ResultCache result_cache;
  Executor exec(Executor::Options{.num_workers = 1,
                                  .eval_cache = &eval_cache,
                                  .result_cache = &result_cache,
                                  .singleflight = true});

  ASSERT_TRUE(exec.Submit({plan, doc, {}}).future.get().ok());
  ASSERT_EQ(result_cache.size(), 1u);

  // A budgeted request with the same text must run under its own budget —
  // and trip it — instead of being served the cached success.
  SubmitOptions starved;
  starved.visit_budget = 1;
  Result<QueryResult> r = exec.Submit({plan, doc, starved}).future.get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);

  // bypass_cache re-executes and leaves the caches untouched: a correct
  // answer with no new hit or insert on either cache means the request
  // evaluated from scratch.
  const uint64_t result_hits_before = result_cache.hits();
  const uint64_t result_inserts_before = result_cache.inserts();
  const uint64_t eval_hits_before = eval_cache.hits();
  const uint64_t eval_inserts_before = eval_cache.inserts();
  SubmitOptions bypass;
  bypass.bypass_cache = true;
  engine::Submission fresh = exec.Submit({plan, doc, bypass});
  Result<QueryResult> fresh_result = fresh.future.get();
  ASSERT_TRUE(fresh_result.ok());
  EXPECT_EQ(fresh_result->value, plan->Run(*doc)->value);
  EXPECT_EQ(result_cache.hits(), result_hits_before);
  EXPECT_EQ(result_cache.inserts(), result_inserts_before);
  EXPECT_EQ(eval_cache.hits(), eval_hits_before);
  EXPECT_EQ(eval_cache.inserts(), eval_inserts_before);
}

TEST(ExecutorCacheTest, ReplaceInvalidatesThroughStoreListeners) {
  DocumentStore store;
  EvalCache eval_cache;
  ResultCache result_cache;
  store.AddEvictionListener(
      [&](uint64_t epoch) { eval_cache.InvalidateDocument(epoch); });
  store.AddEvictionListener(
      [&](uint64_t epoch) { result_cache.InvalidateDocument(epoch); });

  ASSERT_TRUE(store.Add("doc", Chain(60, "a", "b")).ok());
  Executor exec(Executor::Options{.num_workers = 1,
                                  .eval_cache = &eval_cache,
                                  .result_cache = &result_cache});
  PlanPtr plan = Plan::Compile(Language::kXPath, "//a").value();

  DocumentPtr v1 = store.Get("doc").value();
  Result<QueryResult> old_result = exec.Submit({plan, v1, {}}).future.get();
  ASSERT_TRUE(old_result.ok());
  ASSERT_GT(result_cache.size(), 0u);
  ASSERT_GT(eval_cache.size(), 0u);

  // Replace swaps in a new epoch; the listeners reclaim the old entries.
  ASSERT_TRUE(store.Replace("doc", Star(60, "a", "a")).ok());
  EXPECT_EQ(result_cache.size(), 0u);
  EXPECT_EQ(eval_cache.size(), 0u);

  DocumentPtr v2 = store.Get("doc").value();
  EXPECT_NE(v1->epoch(), v2->epoch());
  Result<QueryResult> new_result = exec.Submit({plan, v2, {}}).future.get();
  ASSERT_TRUE(new_result.ok());
  // The fresh document's answer, never the stale one.
  EXPECT_EQ(new_result->value, plan->Run(*v2)->value);
  EXPECT_NE(new_result->nodes(), old_result->nodes());

  // Remove also notifies.
  const size_t resident = result_cache.size();
  ASSERT_GT(resident, 0u);
  ASSERT_TRUE(store.Remove("doc").ok());
  EXPECT_EQ(result_cache.size(), 0u);
}

TEST(ExecutorCacheTest, SubmitBatchDedupesAndHonorsPerRequestOptions) {
  DocumentPtr doc = Catalog();
  PlanPtr repeated =
      Plan::Compile(Language::kXPath, "//review/rating5").value();
  PlanPtr other = Plan::Compile(Language::kXPath, "//name").value();
  // Batch collapsing works even with the executor-wide flag off. The
  // result cache is the execution tally: one insert per executed eligible
  // request.
  ResultCache result_cache;
  Executor exec(Executor::Options{.num_workers = 1,
                                  .queue_capacity = 32,
                                  .result_cache = &result_cache,
                                  .singleflight = false});

  std::vector<QueryRequest> requests;
  SubmitOptions bypass;
  bypass.bypass_cache = true;
  requests.push_back({BlockerPlan(), doc, bypass});  // occupies the worker
  constexpr int kDuplicates = 5;
  for (int i = 0; i < kDuplicates; ++i) {
    requests.push_back({repeated, doc, {}});
  }
  SubmitOptions starved;
  starved.visit_budget = 1;
  requests.push_back({repeated, doc, starved});  // same text, own budget
  requests.push_back({other, doc, {}});

  std::vector<engine::Submission> submissions =
      exec.SubmitBatch(requests);
  ASSERT_EQ(submissions.size(), requests.size());

  ASSERT_TRUE(submissions[0].future.get().ok());  // blocker
  Result<QueryResult> want = repeated->Run(*doc);
  ASSERT_TRUE(want.ok());
  for (int i = 1; i <= kDuplicates; ++i) {
    Result<QueryResult> r = submissions[static_cast<size_t>(i)].future.get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->value, want->value);
  }

  // The bounded duplicate was not collapsed: its own budget tripped.
  Result<QueryResult> bounded =
      submissions[kDuplicates + 1].future.get();
  ASSERT_FALSE(bounded.ok());
  EXPECT_EQ(bounded.status().code(), StatusCode::kResourceExhausted);

  Result<QueryResult> distinct = submissions.back().future.get();
  ASSERT_TRUE(distinct.ok());
  EXPECT_EQ(distinct->value, other->Run(*doc)->value);

  // Within-batch dedup: one execution for the five duplicates, one for the
  // distinct query. The blocker (bypassed) and the bounded duplicate
  // (ineligible) never touch the cache.
  EXPECT_EQ(result_cache.inserts(), 2u);
}

// ---------------------------------------------------------------------------
// Concurrency (run under TSan in CI)

TEST(CacheConcurrencyTest, ConcurrentIdenticalSubmitsAllAgree) {
  DocumentPtr doc = Catalog(3, 30);
  PlanPtr plan = Plan::Compile(Language::kXPath, "//review/rating5").value();
  Result<QueryResult> want = plan->Run(*doc);
  ASSERT_TRUE(want.ok());

  EvalCache eval_cache;
  ResultCache result_cache;
  Executor exec(Executor::Options{.num_workers = 4,
                                  .queue_capacity = 64,
                                  .eval_cache = &eval_cache,
                                  .result_cache = &result_cache,
                                  .singleflight = true});

  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        Result<QueryResult> r = exec.Submit({plan, doc, {}}).future.get();
        if (!r.ok() || r->value != want->value) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  // Every submission was a cache hit, a collapse, or the one execution
  // per cold key; the tallies must account for all of them.
  EXPECT_GE(result_cache.hits() + result_cache.inserts(), 1u);
}

TEST(CacheConcurrencyTest, SubmitsRaceDocumentReplacement) {
  DocumentStore store;
  EvalCache eval_cache;
  ResultCache result_cache;
  store.AddEvictionListener(
      [&](uint64_t epoch) { eval_cache.InvalidateDocument(epoch); });
  store.AddEvictionListener(
      [&](uint64_t epoch) { result_cache.InvalidateDocument(epoch); });
  Rng seed_rng(7);
  ASSERT_TRUE(
      store.Add("doc", CatalogDocument(&seed_rng, CatalogOptions{})).ok());

  PlanPtr plan = Plan::Compile(Language::kXPath, "//review/rating5").value();
  Executor exec(Executor::Options{.num_workers = 4,
                                  .queue_capacity = 64,
                                  .eval_cache = &eval_cache,
                                  .result_cache = &result_cache,
                                  .singleflight = true});

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        DocumentPtr doc = store.Get("doc").value();
        Result<QueryResult> r = exec.Submit({plan, doc, {}}).future.get();
        // Whatever version this thread pinned, the answer must be that
        // version's answer — a stale cross-epoch hit would differ.
        if (!r.ok() || r->value != plan->Run(*doc)->value) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int i = 0; i < 20; ++i) {
    Rng rng(static_cast<uint64_t>(100 + i));
    CatalogOptions opts;
    opts.num_products = 20 + i;  // every version answers differently
    ASSERT_TRUE(store.Replace("doc", CatalogDocument(&rng, opts)).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace treeq
