#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "fo/ast.h"
#include "fo/corollary52.h"
#include "fo/evaluator.h"
#include "fo/parser.h"
#include "tree/generator.h"
#include "tree/orders.h"
#include "util/random.h"

namespace treeq {
namespace fo {
namespace {

std::unique_ptr<Formula> MustParse(const std::string& text) {
  Result<std::unique_ptr<Formula>> f = ParseFo(text);
  EXPECT_TRUE(f.ok()) << text << ": " << f.status().ToString();
  return std::move(f).value();
}

TEST(FoParserTest, ParsesConnectivesAndQuantifiers) {
  auto f = MustParse(
      "exists x . exists y . (Child(x, y) and (Lab_a(y) or not Lab_b(y)))");
  EXPECT_EQ(f->kind, Formula::Kind::kExists);
  EXPECT_EQ(f->left->kind, Formula::Kind::kExists);
  EXPECT_EQ(f->left->left->kind, Formula::Kind::kAnd);
  EXPECT_TRUE(FreeVariables(*f).empty());
  EXPECT_FALSE(IsPositive(*f));  // contains not
}

TEST(FoParserTest, QuantifierScopesMaximally) {
  // "exists x . A and B" is exists x . (A and B).
  auto f = MustParse("exists x . Lab_a(x) and Lab_b(x)");
  ASSERT_EQ(f->kind, Formula::Kind::kExists);
  EXPECT_EQ(f->left->kind, Formula::Kind::kAnd);
}

TEST(FoParserTest, FreeVariablesInOrder) {
  auto f = MustParse("Child(x, y) and exists z . Child(y, z)");
  EXPECT_EQ(FreeVariables(*f), (std::vector<std::string>{"x", "y"}));
}

TEST(FoParserTest, EqualityAndErrors) {
  auto f = MustParse("exists x . exists y . Child+(x, y) and x = y");
  EXPECT_TRUE(IsPositive(*f));
  EXPECT_FALSE(ParseFo("").ok());
  EXPECT_FALSE(ParseFo("exists x Lab_a(x)").ok());   // missing dot
  EXPECT_FALSE(ParseFo("Unknown(x, y)").ok());
  EXPECT_FALSE(ParseFo("Lab_a(x) extra").ok());
}

TEST(FoParserTest, ToStringRoundTrips) {
  const char* kFormulas[] = {
      "exists x . (Lab_a(x) or Lab_b(x))",
      "forall x . not Child(x, x)",
      "exists x . exists y . (Following(x, y) and x = x)",
  };
  for (const char* text : kFormulas) {
    auto f = MustParse(text);
    auto f2 = MustParse(ToString(*f));
    EXPECT_EQ(ToString(*f2), ToString(*f)) << text;
  }
}

TEST(FoNaiveTest, SentencesOnAChain) {
  Tree t = Chain(5, "a", "b");  // a b a b a
  TreeOrders o = ComputeOrders(t);
  EXPECT_TRUE(EvaluateSentenceNaive(
                  *MustParse("exists x . exists y . Child(x, y) and "
                             "Lab_a(x) and Lab_b(y)"),
                  t, o)
                  .value());
  EXPECT_FALSE(EvaluateSentenceNaive(
                   *MustParse("exists x . exists y . NextSibling(x, y)"), t,
                   o)
                   .value());
  // Universals and negation: every node has at most one child (a chain).
  EXPECT_TRUE(
      EvaluateSentenceNaive(
          *MustParse("forall x . forall y . forall z . (not Child(x, y) or "
                     "not Child(x, z) or y = z)"),
          t, o)
          .value());
  EXPECT_FALSE(EvaluateSentenceNaive(
                   *MustParse("forall x . Lab_a(x)"), t, o)
                   .value());
}

TEST(FoNaiveTest, FreeVariablesYieldTuples) {
  Tree t = Chain(4, "a", "b");
  TreeOrders o = ComputeOrders(t);
  auto f = MustParse("Child(x, y) and Lab_b(y)");
  Result<cq::TupleSet> r = EvaluateFoNaive(*f, t, o);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (cq::TupleSet{{0, 1}, {2, 3}}));
}

TEST(FoNaiveTest, BudgetAborts) {
  Tree t = Chain(40);
  TreeOrders o = ComputeOrders(t);
  auto f = MustParse(
      "exists a . exists b . exists c . exists d . (Child+(a, b) and "
      "Child+(b, c) and Child+(c, d))");
  EXPECT_FALSE(EvaluateSentenceNaive(*f, t, o, /*budget=*/100).ok());
}

TEST(DnfTest, CountsDisjunctsMultiplicatively) {
  auto f = MustParse(
      "exists x . ((Lab_a(x) or Lab_b(x)) and (Lab_c(x) or Lab_d(x)))");
  Result<std::vector<cq::ConjunctiveQuery>> cqs = PositiveFoToCqUnion(*f);
  ASSERT_TRUE(cqs.ok());
  EXPECT_EQ(cqs.value().size(), 4u);
}

TEST(DnfTest, ShadowedQuantifiersRenameApart) {
  // The two x's are different variables.
  auto f = MustParse(
      "exists x . (Lab_a(x) and exists x . Lab_b(x))");
  Result<std::vector<cq::ConjunctiveQuery>> cqs = PositiveFoToCqUnion(*f);
  ASSERT_TRUE(cqs.ok());
  ASSERT_EQ(cqs.value().size(), 1u);
  EXPECT_EQ(cqs.value()[0].num_vars(), 2);
}

TEST(DnfTest, RejectsNegation) {
  auto f = MustParse("exists x . not Lab_a(x)");
  EXPECT_FALSE(PositiveFoToCqUnion(*f).ok());
}

// Corollary 5.2 pipeline vs the naive oracle on random trees.
class Cor52AgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(Cor52AgreementTest, PipelineMatchesNaive) {
  Rng rng(GetParam());
  RandomTreeOptions opts;
  opts.num_nodes = 16;
  opts.attach_window = 1 + GetParam() % 5;
  opts.alphabet = {"a", "b", "c"};
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);

  const char* kSentences[] = {
      "exists x . Lab_a(x)",
      "exists x . exists y . Child(x, y) and Lab_b(y)",
      "exists x . exists y . (Child+(x, y) and (Lab_a(y) or Lab_c(y)))",
      "exists x . exists y . exists z . (Child+(x, z) and Child+(y, z) "
      "and Lab_a(x) and Lab_b(y))",
      "exists x . exists y . (Following(x, y) and Lab_c(x))",
      "exists x . (Lab_a(x) and exists y . (NextSibling(x, y) and "
      "Lab_b(y))) or exists z . Lab_zzz(z)",
      "exists x . exists y . Child(x, y) and x = y",  // unsatisfiable
      "exists x . exists y . (Child*(x, y) and Lab_b(y))",
  };
  for (const char* text : kSentences) {
    auto f = MustParse(text);
    ASSERT_TRUE(IsPositive(*f)) << text;
    Result<bool> fast = EvaluateSentencePositive(*f, t, o);
    ASSERT_TRUE(fast.ok()) << text << ": " << fast.status().ToString();
    Result<bool> slow = EvaluateSentenceNaive(*f, t, o);
    ASSERT_TRUE(slow.ok());
    EXPECT_EQ(fast.value(), slow.value()) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Cor52AgreementTest, ::testing::Range(0, 8));

TEST(Cor52Test, StatsReportPipelineShape) {
  auto f = MustParse(
      "exists x . exists y . ((Lab_a(x) or Lab_b(x)) and Child+(x, y))");
  Tree t = Chain(6, "a", "b");
  TreeOrders o = ComputeOrders(t);
  Corollary52Stats stats;
  Result<bool> r = EvaluateSentencePositive(*f, t, o, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value());
  EXPECT_EQ(stats.cq_disjuncts, 2);
  // The pipeline short-circuits at the first satisfiable acyclic disjunct.
  EXPECT_GE(stats.acyclic_disjuncts, 1);
}

TEST(Cor52Test, RejectsNonSentences) {
  auto f = MustParse("Lab_a(x)");
  Tree t = Chain(2);
  TreeOrders o = ComputeOrders(t);
  EXPECT_FALSE(EvaluateSentencePositive(*f, t, o).ok());
}

}  // namespace
}  // namespace fo
}  // namespace treeq
