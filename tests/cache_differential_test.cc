// Differential tests for the cross-query reuse layer: every cached answer
// must be bit-identical to the uncached evaluation it replays.
//
//   - Axis grid: AxisImageMemoized through an EvalCache, cold (miss +
//     store) and warm (fingerprint hit), against the plain AxisImage
//     kernel — all 17 axes, word-boundary universe sizes, the
//     axes_kernel_test input grid. A fingerprint collision or a stale
//     entry shows up here as a wrong bit.
//   - 100-seed corpus: random documents and random tree-shaped k-ary CQs
//     (the par_differential recipe) evaluated via Plan::Execute with an
//     axis memo, cold and warm, against the memo-free execution; same for
//     a pool of XPath queries through EvalQueryFromRoot's memo overload.
//   - Engine level: the same corpus served twice through an Executor with
//     eval + result caches and singleflight on — the second pass is all
//     cache hits — against Plan::Run.

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cache/eval_cache.h"
#include "cache/result_cache.h"
#include "engine/executor.h"
#include "engine/plan.h"
#include "tree/axes.h"
#include "tree/document.h"
#include "tree/generator.h"
#include "tree/node_set.h"
#include "tree/orders.h"
#include "util/exec_context.h"
#include "util/random.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace treeq {
namespace {

using cache::EvalCache;
using cache::ResultCache;
using engine::Executor;
using engine::Plan;
using engine::PlanPtr;

const Axis kAllAxes[] = {
    Axis::kSelf,
    Axis::kChild,
    Axis::kParent,
    Axis::kDescendant,
    Axis::kAncestor,
    Axis::kDescendantOrSelf,
    Axis::kAncestorOrSelf,
    Axis::kNextSibling,
    Axis::kPrevSibling,
    Axis::kFollowingSibling,
    Axis::kPrecedingSibling,
    Axis::kFollowingSiblingOrSelf,
    Axis::kPrecedingSiblingOrSelf,
    Axis::kFollowing,
    Axis::kPreceding,
    Axis::kFirstChild,
    Axis::kFirstChildInv,
};

// Word-boundary universe sizes: the fingerprint walks the backing words,
// so tail-masked last words are where a sloppy hash would collide.
const int kUniverseSizes[] = {1, 5, 63, 64, 65, 127, 128, 130, 192};

std::set<NodeId> RandomSubset(Rng* rng, int n, double density) {
  std::set<NodeId> s;
  for (NodeId v = 0; v < n; ++v) {
    if (rng->Bernoulli(density)) s.insert(v);
  }
  return s;
}

// The axes_kernel_test input grid; plain AxisImage is the oracle. Each
// input runs twice through the same memo: the first pass misses and
// stores, the second must hit and replay identical bits.
void CheckAllAxesMemoized(const Tree& t, Rng* rng, uint64_t epoch,
                          EvalCache* cache, const char* shape) {
  const int n = t.num_nodes();
  const TreeOrders o = ComputeOrders(t);
  std::vector<std::set<NodeId>> inputs;
  inputs.push_back({});
  inputs.push_back({t.root()});
  inputs.push_back({static_cast<NodeId>(n - 1)});
  std::set<NodeId> all;
  for (NodeId v = 0; v < n; ++v) all.insert(v);
  inputs.push_back(all);
  for (double density : {0.05, 0.3, 0.8}) {
    inputs.push_back(RandomSubset(rng, n, density));
  }

  EvalCache::Memo memo(cache, epoch);
  for (Axis axis : kAllAxes) {
    for (const std::set<NodeId>& from_ref : inputs) {
      NodeSet from(n);
      for (NodeId v : from_ref) from.Insert(v);
      NodeSet want(n);
      AxisImage(t, o, axis, from, &want);

      NodeSet cold(n);
      bool cold_hit =
          AxisImageMemoized(t, o, axis, from, &cold, &memo);
      EXPECT_TRUE(cold == want)
          << shape << " n=" << n << " axis=" << AxisName(axis)
          << " |from|=" << from_ref.size() << " cold_hit=" << cold_hit;

      NodeSet warm(n);
      EXPECT_TRUE(AxisImageMemoized(t, o, axis, from, &warm, &memo))
          << shape << " n=" << n << " axis=" << AxisName(axis);
      EXPECT_TRUE(warm == want)
          << shape << " n=" << n << " axis=" << AxisName(axis)
          << " |from|=" << from_ref.size() << " (warm)";
    }
  }
}

TEST(CacheAxisDifferentialTest, RandomTrees) {
  Rng rng(1234);
  EvalCache cache;  // shared across shapes: epochs keep them apart
  uint64_t epoch = 1;
  for (int n : kUniverseSizes) {
    RandomTreeOptions opts;
    opts.num_nodes = n;
    opts.attach_window = 4;
    opts.alphabet = {"a", "b"};
    Tree t = RandomTree(&rng, opts);
    CheckAllAxesMemoized(t, &rng, epoch++, &cache, "random");
  }
  EXPECT_GT(cache.hits(), 0u);
}

TEST(CacheAxisDifferentialTest, DeepPaths) {
  Rng rng(99);
  EvalCache cache;
  uint64_t epoch = 100;
  for (int n : kUniverseSizes) {
    Tree t = Chain(n, "a", "b");
    CheckAllAxesMemoized(t, &rng, epoch++, &cache, "chain");
  }
}

TEST(CacheAxisDifferentialTest, WideFlat) {
  Rng rng(7);
  EvalCache cache;
  uint64_t epoch = 200;
  for (int n : kUniverseSizes) {
    if (n < 2) continue;
    Tree t = Star(n);
    CheckAllAxesMemoized(t, &rng, epoch++, &cache, "star");
  }
}

// Same-universe same-popcount sets must not collide: for every pair of
// singletons of a chain, a warm lookup of one must never serve the other.
TEST(CacheAxisDifferentialTest, SingletonsStayDistinct) {
  const int n = 130;
  Tree t = Chain(n, "a", "b");
  TreeOrders o = ComputeOrders(t);
  EvalCache cache;
  EvalCache::Memo memo(&cache, 1);
  for (NodeId v = 0; v < n; ++v) {
    NodeSet from(n);
    from.Insert(v);
    NodeSet out(n);
    AxisImageMemoized(t, o, Axis::kDescendant, from, &out, &memo);
  }
  for (NodeId v = 0; v < n; ++v) {
    NodeSet from(n);
    from.Insert(v);
    NodeSet want(n);
    AxisImage(t, o, Axis::kDescendant, from, &want);
    NodeSet got(n);
    ASSERT_TRUE(
        AxisImageMemoized(t, o, Axis::kDescendant, from, &got, &memo))
        << "v=" << v;
    EXPECT_TRUE(got == want) << "v=" << v;
  }
}

// ---------------------------------------------------------------------------
// 100-seed corpus: random documents, random tree-shaped k-ary CQs (the
// par_differential recipe), and an XPath query pool — Plan::Execute with
// an axis memo (cold, then warm) against the memo-free execution.

const std::vector<std::string> kAlphabet = {"a", "b", "c"};

std::string RandomLabel(Rng* rng) {
  return kAlphabet[static_cast<size_t>(
      rng->Uniform(0, static_cast<int64_t>(kAlphabet.size()) - 1))];
}

Tree RandomDocumentTree(Rng* rng, int max_nodes) {
  static const int kSizes[] = {3, 7, 31, 63, 64, 65, 96, 127, 128, 129};
  std::vector<int> sizes;
  for (int s : kSizes) {
    if (s <= max_nodes) sizes.push_back(s);
  }
  int n = sizes[static_cast<size_t>(
      rng->Uniform(0, static_cast<int64_t>(sizes.size()) - 1))];
  switch (rng->Uniform(0, 3)) {
    case 0:
      return Chain(n, "a", "b");
    case 1:
      return Star(n, "a", rng->Bernoulli(0.5) ? "a" : "b");
    default: {
      RandomTreeOptions opt;
      opt.num_nodes = n;
      opt.attach_window = static_cast<int>(rng->Uniform(1, 8));
      opt.alphabet = kAlphabet;
      opt.second_label_prob = 0.2;
      return RandomTree(rng, opt);
    }
  }
}

// A random tree-shaped k-ary CQ as query text: node 0 is the root
// variable, every later node attaches to a random earlier one by Child or
// Child+, every variable carries a label atom and appears in the head.
std::string RandomTreeCqText(Rng* rng, int max_vars) {
  const int n = static_cast<int>(rng->Uniform(1, max_vars));
  std::string head = "Q(";
  std::string body;
  for (int i = 0; i < n; ++i) {
    if (i > 0) head += ", ";
    head += "v" + std::to_string(i);
    if (i > 0) {
      int parent = static_cast<int>(rng->Uniform(0, i - 1));
      body += rng->Bernoulli(0.5) ? "Child(" : "Child+(";
      body += "v" + std::to_string(parent) + ", v" + std::to_string(i) +
              "), ";
    }
    body += "Lab_" + RandomLabel(rng) + "(v" + std::to_string(i) + "), ";
  }
  body.resize(body.size() - 2);  // trailing ", "
  return head + ") :- " + body + ".";
}

TupleSet Sorted(TupleSet tuples) {
  std::sort(tuples.begin(), tuples.end());
  return tuples;
}

TEST(CacheCorpusDifferentialTest, HundredSeedCqCorpus) {
  const int kTrials = 100;
  EvalCache cache;  // one cache across the corpus; epochs separate docs
  for (uint64_t seed = 0; seed < kTrials; ++seed) {
    Rng rng(1000 + seed);
    DocumentPtr doc =
        MakeDocumentWithOrders(RandomDocumentTree(&rng, /*max_nodes=*/129));
    std::string text = RandomTreeCqText(&rng, /*max_vars=*/4);
    auto plan = Plan::Compile(Language::kCq, text);
    ASSERT_TRUE(plan.ok()) << text << ": " << plan.status().ToString();

    Result<QueryResult> want =
        (*plan)->Execute(*doc, ExecContext::Unbounded(), {});
    ASSERT_TRUE(want.ok()) << text;

    EvalCache::Memo memo(&cache, doc->epoch());
    engine::ExecuteOptions options;
    options.axis_memo = &memo;
    for (const char* pass : {"cold", "warm"}) {
      Result<QueryResult> got =
          (*plan)->Execute(*doc, ExecContext::Unbounded(), options);
      ASSERT_TRUE(got.ok()) << text << " " << pass;
      ASSERT_EQ(got->is_tuples(), want->is_tuples()) << text;
      if (want->is_tuples()) {
        EXPECT_EQ(Sorted(got->tuples()), Sorted(want->tuples()))
            << "seed " << 1000 + seed << " " << pass << " on " << text;
      } else {
        EXPECT_EQ(got->value, want->value)
            << "seed " << 1000 + seed << " " << pass << " on " << text;
      }
    }
  }
  EXPECT_GT(cache.hits(), 0u);
}

const char* const kXPathPool[] = {
    "//a",
    "//a//b",
    "/descendant-or-self::*[a]/b",
    "//b[following-sibling::a]/ancestor::a",
    "//a[not(b)]/following::b",
    "//c/parent::a",
};

TEST(CacheCorpusDifferentialTest, XPathMemoOverloadBitIdentical) {
  EvalCache cache;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(3000 + seed);
    Document doc(RandomDocumentTree(&rng, /*max_nodes=*/129));
    const char* text = kXPathPool[seed % std::size(kXPathPool)];
    auto parsed = xpath::ParseXPath(text);
    ASSERT_TRUE(parsed.ok()) << text;

    Result<NodeSet> want = xpath::EvalQueryFromRoot(
        doc, *parsed.value(), ExecContext::Unbounded());
    ASSERT_TRUE(want.ok()) << text;

    EvalCache::Memo memo(&cache, doc.epoch());
    for (const char* pass : {"cold", "warm"}) {
      Result<NodeSet> got = xpath::EvalQueryFromRoot(
          doc, *parsed.value(), ExecContext::Unbounded(), &memo);
      ASSERT_TRUE(got.ok()) << text << " " << pass;
      EXPECT_TRUE(got.value() == want.value())
          << "seed " << 3000 + seed << " " << pass << " on " << text;
    }
  }
  EXPECT_GT(cache.hits(), 0u);
}

// ---------------------------------------------------------------------------
// Engine level: the corpus served twice through a fully cached executor —
// the second pass is result-cache hits — against Plan::Run.

TEST(CacheEngineDifferentialTest, CachedSubmitsMatchDirectRuns) {
  EvalCache eval_cache;
  ResultCache result_cache;
  Executor exec(Executor::Options{.num_workers = 2,
                                  .queue_capacity = 32,
                                  .eval_cache = &eval_cache,
                                  .result_cache = &result_cache,
                                  .singleflight = true});

  for (uint64_t seed = 0; seed < 30; ++seed) {
    Rng rng(5000 + seed);
    DocumentPtr doc =
        MakeDocumentWithOrders(RandomDocumentTree(&rng, /*max_nodes=*/129));
    std::string cq_text = RandomTreeCqText(&rng, /*max_vars=*/4);
    const char* xpath_text = kXPathPool[seed % std::size(kXPathPool)];

    std::vector<std::pair<Language, std::string>> cases = {
        {Language::kCq, cq_text}, {Language::kXPath, xpath_text}};
    for (const auto& [language, text] : cases) {
      auto plan = Plan::Compile(language, text);
      ASSERT_TRUE(plan.ok()) << text;
      Result<QueryResult> want = (*plan)->Run(*doc);
      ASSERT_TRUE(want.ok()) << text;
      for (const char* pass : {"cold", "warm"}) {
        Result<QueryResult> got =
            exec.Submit({*plan, doc, {}}).future.get();
        ASSERT_TRUE(got.ok()) << text << " " << pass;
        EXPECT_EQ(got->value, want->value)
            << "seed " << 5000 + seed << " " << pass << " on " << text;
      }
    }
  }
  EXPECT_GT(result_cache.hits(), 0u);
  EXPECT_GT(eval_cache.hits(), 0u);
}

}  // namespace
}  // namespace treeq
