// Tests for the unified treeq::ParseQuery front door and the error-format
// contract shared by all four language parsers: every parse failure is a
// kParseError whose message ends in " at offset <N>".

#include "query/parse.h"

#include <gtest/gtest.h>

#include <string>

#include "cq/parser.h"
#include "datalog/parser.h"
#include "fo/parser.h"
#include "xpath/parser.h"

namespace treeq {
namespace {

/// Asserts the unified error shape: ParseError + trailing byte offset.
void ExpectParseErrorWithOffset(const Status& status) {
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kParseError) << status.ToString();
  const std::string& msg = status.message();
  size_t marker = msg.rfind(" at offset ");
  ASSERT_NE(marker, std::string::npos) << msg;
  std::string digits = msg.substr(marker + std::string(" at offset ").size());
  ASSERT_FALSE(digits.empty()) << msg;
  for (char c : digits) {
    EXPECT_TRUE(c >= '0' && c <= '9') << msg;
  }
}

TEST(LanguageTest, NamesRoundTrip) {
  for (Language lang : {Language::kXPath, Language::kCq, Language::kDatalog,
                        Language::kFo}) {
    Result<Language> back = ParseLanguageName(LanguageName(lang));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), lang);
  }
  EXPECT_EQ(ParseLanguageName("sql").status().code(), StatusCode::kNotFound);
}

TEST(ParseQueryTest, ParsesEachLanguage) {
  Result<ParsedQuery> xp = ParseQuery(Language::kXPath, "//a/b[c]");
  ASSERT_TRUE(xp.ok());
  EXPECT_EQ(xp->language, Language::kXPath);
  EXPECT_NE(xp->xpath, nullptr);
  EXPECT_FALSE(xp->cq.has_value());

  Result<ParsedQuery> cq =
      ParseQuery(Language::kCq, "Q() :- Child+(x, y), Lab_a(y).");
  ASSERT_TRUE(cq.ok());
  ASSERT_TRUE(cq->cq.has_value());
  EXPECT_TRUE(cq->cq->IsBoolean());

  Result<ParsedQuery> dl = ParseQuery(
      Language::kDatalog, "P(x) :- Lab_a(x).\n?- P.");
  ASSERT_TRUE(dl.ok());
  ASSERT_TRUE(dl->datalog.has_value());
  EXPECT_EQ(dl->datalog->query_predicate(), "P");

  Result<ParsedQuery> fo =
      ParseQuery(Language::kFo, "exists x . Lab_a(x)");
  ASSERT_TRUE(fo.ok());
  EXPECT_NE(fo->fo, nullptr);
}

TEST(ParseQueryTest, ErrorFormatIsUniformAcrossLanguages) {
  // One syntactically broken input per language.
  ExpectParseErrorWithOffset(
      ParseQuery(Language::kXPath, "//a[unclosed").status());
  ExpectParseErrorWithOffset(
      ParseQuery(Language::kCq, "Q() :- Child+(x, y").status());
  ExpectParseErrorWithOffset(
      ParseQuery(Language::kDatalog, "P(x) :- Lab_a(x)").status());
  ExpectParseErrorWithOffset(
      ParseQuery(Language::kFo, "exists x . (Lab_a(x)").status());
}

TEST(ParseQueryTest, DirectParserEntryPointsShareTheFormat) {
  // The front door adds nothing: the per-language parsers themselves emit
  // the uniform shape, so legacy callers see identical messages.
  ExpectParseErrorWithOffset(xpath::ParseXPath("//a[").status());
  ExpectParseErrorWithOffset(cq::ParseCq("Q( :- ").status());
  ExpectParseErrorWithOffset(datalog::ParseProgram("P(x :-").status());
  ExpectParseErrorWithOffset(fo::ParseFo("exists . x").status());
}

TEST(ParseQueryTest, ValidationFailuresAreParseErrorsWithOffset) {
  // Post-parse validation failures (Program::Validate) must surface in the
  // same shape as syntax errors: datalog referencing an undefined
  // intensional predicate parses fine but fails validation.
  ExpectParseErrorWithOffset(
      ParseQuery(Language::kDatalog, "P(x) :- Undefined(x).\n?- P.")
          .status());
}

TEST(ParseQueryTest, OffsetPointsIntoTheInput) {
  Result<ParsedQuery> r = ParseQuery(Language::kXPath, "//a[//b");
  ASSERT_FALSE(r.ok());
  const std::string& msg = r.status().message();
  size_t marker = msg.rfind(" at offset ");
  ASSERT_NE(marker, std::string::npos);
  int offset = std::stoi(msg.substr(marker + 11));
  EXPECT_GE(offset, 0);
  EXPECT_LE(offset, 8);  // within (or one past) the 8-byte input
}

TEST(ParseQueryTest, ParsedQueryIsMovable) {
  Result<ParsedQuery> r = ParseQuery(Language::kXPath, "//a");
  ASSERT_TRUE(r.ok());
  ParsedQuery moved = std::move(r).value();
  EXPECT_EQ(moved.language, Language::kXPath);
  EXPECT_NE(moved.xpath, nullptr);
}

}  // namespace
}  // namespace treeq
