// Golden-file tests for Plan::Explain and Plan::ExplainRouting. The
// explain string is an API surface: the flight recorder stores it, the
// dashboards grep it, and `query_server --explain` prints it — so its
// exact shape is pinned here. Each golden covers the three sections of
// the compile-time line (legacy classification | canonical IR + hash |
// eligible routes) for one representative per language and plan shape;
// the routing golden pins the cost-ranked, native-starred format of the
// per-document line.
//
// If a change to the canonicalizer or cost model legitimately moves one
// of these strings, update the golden here AND check the flight-recorder
// dashboards for consumers of the old shape.

#include "engine/engine.h"

#include <gtest/gtest.h>

#include <string>

#include "tree/generator.h"
#include "util/random.h"

namespace treeq {
namespace engine {
namespace {

DocumentPtr SmallCatalog() {
  Rng rng(1);
  CatalogOptions opts;
  opts.num_products = 5;
  return MakeDocumentWithOrders(CatalogDocument(&rng, opts));
}

std::string ExplainFor(Language language, const char* text) {
  Result<PlanPtr> plan = Plan::Compile(language, text);
  EXPECT_TRUE(plan.ok()) << text << ": " << plan.status().ToString();
  if (!plan.ok()) return "";
  return plan.value()->Explain();
}

TEST(PlanExplainTest, XPathStructuralGolden) {
  EXPECT_EQ(
      ExplainFor(Language::kXPath, "//product//rating5"),
      "xpath: set-at-a-time evaluator; stream fallback available (forward "
      "rewrite); est. visits = |Q|*(|D|+1), |Q|=9 | ir: arity=1 branches=1 "
      "| [0] v0{} v1{product} v2{rating5}=>0 v0 -descendant-> v1 v1 "
      "-descendant-> v2 hash=098fd0ee78c6d4e574a308af37501132 | routes: "
      "xpath.set_at_a_time xpath.naive xpath.stream datalog.tmnf "
      "cq.yannakakis");
}

TEST(PlanExplainTest, XPathOpaqueGolden) {
  // Negation is outside the structural fragment: the IR is an opaque
  // leaf (language-tagged canonical rendering) and only the native
  // engines are eligible.
  EXPECT_EQ(
      ExplainFor(Language::kXPath, "//a[not(b)]"),
      "xpath: set-at-a-time evaluator; no stream fallback; est. visits = "
      "|Q|*(|D|+1), |Q|=8 | ir: arity=1 opaque(xpath:descendant-or-self::"
      "*/child::*[lab() = \"a\"][not(child::*[lab() = \"b\"])]) "
      "hash=2b76806b91abb967a8177b95d8a26503 | routes: xpath.set_at_a_time "
      "xpath.naive");
}

TEST(PlanExplainTest, BooleanCqGolden) {
  EXPECT_EQ(
      ExplainFor(Language::kCq, "Q() :- Child+(x, y), Lab_a(x), Lab_b(y)."),
      "cq boolean: class tau1 (<pre) -> X-property evaluation; est. visits "
      "= |Q|*(|D|+1), |Q|=2 | ir: arity=0 branches=1 | [0] v0{a} v1{b} v0 "
      "-descendant-> v1 hash=ea8f95a9c1dc43867dda6856d5bcb2d3 | routes: "
      "cq.dichotomy cq.yannakakis fo.corollary52 fo.naive");
}

TEST(PlanExplainTest, KAryCqGolden) {
  EXPECT_EQ(
      ExplainFor(Language::kCq,
                 "Q(p, r) :- Child+(w, p), Child+(p, r), Lab_product(p), "
                 "Lab_review(r)."),
      "cq k-ary: class tau1 (<pre) -> acyclic enumeration (Yannakakis); "
      "est. visits = |Q|*(|D|+1), |Q|=3 | ir: arity=2 branches=1 | [0] "
      "v0{} v1{product}=>0 v2{review}=>1 v0 -descendant-> v1 v1 "
      "-descendant-> v2 hash=1b0fbc1ff0445c302009cee5570353f8 | routes: "
      "cq.yannakakis");
}

TEST(PlanExplainTest, DatalogGolden) {
  EXPECT_EQ(
      ExplainFor(Language::kDatalog,
                 "Q(y) :- Child+(w, x), Lab_name(y), Child(x, y). ?- Q."),
      "datalog: TMNF grounding + fixpoint; est. visits = |Q|*(|D|+1), "
      "|Q|=1 | ir: arity=1 branches=1 | [0] v0{} v1{} v2{name}=>0 v0 "
      "-child-> v2 v1 -descendant-> v0 "
      "hash=0ccfcf1ab12a0ccdb922be9f84262c7f | routes: datalog.tmnf "
      "cq.yannakakis");
}

TEST(PlanExplainTest, FoGoldens) {
  EXPECT_EQ(
      ExplainFor(Language::kFo, "exists x . Lab_name(x)"),
      "fo: positive sentence -> Corollary 5.2 pipeline; est. visits = "
      "|Q|*(|D|+1), |Q|=2 | ir: arity=0 branches=1 | [0] v0{name} "
      "hash=e2e4d4c059af30344e068ce9a693a249 | routes: fo.corollary52 "
      "fo.naive cq.dichotomy cq.yannakakis");
  EXPECT_EQ(
      ExplainFor(Language::kFo, "forall x . not Lab_z(x)"),
      "fo: sentence with negation -> naive model checking; est. visits = "
      "|Q|*(|D|+1), |Q|=3 | ir: arity=0 opaque(fo:forall v0 . not "
      "Lab_z(v0)) hash=28e8a2a8ff74cb27b8ae4d91fbd1815a | routes: "
      "fo.naive");
}

// Two dialects of the same query must print the same IR and hash
// sections even though their legacy classification prefixes differ.
TEST(PlanExplainTest, DialectsShareTheIrSection) {
  PlanPtr xp = Plan::Compile(Language::kXPath, "//product//rating5").value();
  PlanPtr cq = Plan::Compile(Language::kCq,
                             "Q(y) :- Child+(w, x), Child+(x, y), "
                             "Lab_product(x), Lab_rating5(y).")
                   .value();
  const std::string xp_ir = xp->Explain().substr(xp->Explain().find(" | ir:"));
  const std::string cq_ir = cq->Explain().substr(cq->Explain().find(" | ir:"));
  // Same IR + hash; the route list may differ (each language keeps its
  // native engines), so compare up to the routes section.
  EXPECT_EQ(xp_ir.substr(0, xp_ir.find(" | routes:")),
            cq_ir.substr(0, cq_ir.find(" | routes:")));
}

TEST(PlanExplainTest, RoutingGolden) {
  DocumentPtr doc = SmallCatalog();
  PlanPtr plan = Plan::Compile(Language::kXPath, "//product//rating5").value();
  EXPECT_EQ(plan->ExplainRouting(*doc),
            "routing n=62: xpath.set_at_a_time=252* cq.yannakakis=282 "
            "xpath.stream=372 datalog.tmnf=620 xpath.naive=19220");
}

}  // namespace
}  // namespace engine
}  // namespace treeq
