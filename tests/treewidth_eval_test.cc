#include "cq/treewidth_eval.h"

#include <gtest/gtest.h>

#include "cq/naive.h"
#include "cq/parser.h"
#include "tree/generator.h"
#include "util/random.h"

namespace treeq {
namespace cq {
namespace {

ConjunctiveQuery MustParse(const std::string& text) {
  Result<ConjunctiveQuery> q = ParseCq(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(q).value();
}

// Cyclic, parallel-edge, disconnected, and plain tree-shaped queries — the
// treewidth evaluator must take them all.
const char* kQueries[] = {
    "Q() :- Child(x, y), Lab_a(y).",
    "Q() :- Child(x, y), Child(y, z), Child+(x, z).",            // triangle
    "Q() :- Child+(x, y), Child+(y, z), Child+(z, w), Child+(x, w).",
    "Q() :- Child(x, y), Child+(x, y).",                          // parallel
    "Q() :- Lab_a(x), Child(y, z), Lab_b(z).",                    // 2 comps
    "Q() :- Child(x, y), Child(x, z), NextSibling(y, z), Lab_a(y).",
    "Q() :- Following(x, y), Following(y, z), Following(x, z).",
    "Q() :- Child(x, y), NextSibling(x, y).",                     // unsat
    "Q(x) :- Child(x, y), Child(y, z), Child+(x, z), Lab_b(z).",
    "Q(x, z) :- Child+(x, y), Child+(y, z), Child+(x, z).",
    "Q(x, z) :- Lab_a(x), Lab_b(z).",                             // cross
};

class TreewidthEvalTest : public ::testing::TestWithParam<int> {};

TEST_P(TreewidthEvalTest, BooleanMatchesNaive) {
  Rng rng(GetParam());
  RandomTreeOptions opts;
  opts.num_nodes = 12;
  opts.attach_window = 1 + GetParam() % 5;
  opts.alphabet = {"a", "b"};
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);
  for (const char* text : kQueries) {
    ConjunctiveQuery q = MustParse(text);
    Result<bool> fast = EvaluateBooleanTreewidth(q, t, o);
    ASSERT_TRUE(fast.ok()) << text << ": " << fast.status().ToString();
    Result<bool> slow = NaiveSatisfiableCq(q, t, o);
    ASSERT_TRUE(slow.ok());
    EXPECT_EQ(fast.value(), slow.value()) << text;
  }
}

TEST_P(TreewidthEvalTest, TuplesMatchNaive) {
  Rng rng(100 + GetParam());
  RandomTreeOptions opts;
  opts.num_nodes = 10;
  opts.alphabet = {"a", "b"};
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);
  for (const char* text : kQueries) {
    ConjunctiveQuery q = MustParse(text);
    Result<TupleSet> fast = EvaluateTreewidth(q, t, o);
    ASSERT_TRUE(fast.ok()) << text << ": " << fast.status().ToString();
    Result<TupleSet> slow = NaiveEvaluateCq(q, t, o);
    ASSERT_TRUE(slow.ok());
    EXPECT_EQ(fast.value(), slow.value()) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreewidthEvalTest, ::testing::Range(0, 6));

TEST(TreewidthEvalTest, ReportsWidthAndWork) {
  Tree t = Chain(8, "a", "b");
  TreeOrders o = ComputeOrders(t);
  // Triangle: width 2 (clique of 3).
  ConjunctiveQuery triangle =
      MustParse("Q() :- Child(x, y), Child(y, z), Child+(x, z).");
  TreewidthEvalStats stats;
  Result<bool> r = EvaluateBooleanTreewidth(triangle, t, o, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value());
  EXPECT_EQ(stats.width, 2);
  EXPECT_GT(stats.bag_tuples, 0u);
  EXPECT_GT(stats.candidate_checks, 0u);

  // A path query: width 1 — bags stay quadratic, not cubic.
  ConjunctiveQuery path = MustParse("Q() :- Child(x, y), Child(y, z).");
  TreewidthEvalStats path_stats;
  ASSERT_TRUE(EvaluateBooleanTreewidth(path, t, o, &path_stats).ok());
  EXPECT_EQ(path_stats.width, 1);
  EXPECT_LT(path_stats.candidate_checks, stats.candidate_checks);
}

TEST(TreewidthEvalTest, LabelRestrictionPrunesDomains) {
  Tree t = Chain(30, "a", "b");
  TreeOrders o = ComputeOrders(t);
  ConjunctiveQuery q =
      MustParse("Q() :- Child(x, y), Child(y, z), Child+(x, z), Lab_zzz(z).");
  TreewidthEvalStats stats;
  Result<bool> r = EvaluateBooleanTreewidth(q, t, o, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value());
  // z's domain is empty, so its bags enumerate nothing.
  EXPECT_LT(stats.candidate_checks, 30u * 30u * 30u);
}

TEST(TreewidthEvalTest, BinaryProjectionOnCycle) {
  // All (x, z) pairs two Child steps apart that are also Child+-related
  // (always true) — exercises head projection through a cyclic query.
  Tree t = BalancedTree(3, 2, {"n"});
  TreeOrders o = ComputeOrders(t);
  ConjunctiveQuery q =
      MustParse("Q(x, z) :- Child(x, y), Child(y, z), Child+(x, z).");
  Result<TupleSet> fast = EvaluateTreewidth(q, t, o);
  Result<TupleSet> slow = NaiveEvaluateCq(q, t, o);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(fast.value(), slow.value());
  EXPECT_FALSE(fast.value().empty());
}

}  // namespace
}  // namespace cq
}  // namespace treeq
