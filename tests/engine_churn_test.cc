// Document churn under load: SubmitBatch and Submit racing DocumentStore
// Replace/Remove+Add while the result cache, the eval cache, and
// singleflight are all live. No fault injection here — this is the
// fault-free half of the storm's contract, so it must hold identically in
// TREEQ_FAULT_DISABLED builds:
//
//   - every future resolves (no broken promises, no wedged flights);
//   - every ok answer is bit-identical to a serial replay against the
//     exact document handle submitted — a cache or singleflight layer
//     serving an answer from a replaced document's epoch fails this;
//   - the in-flight table drains to empty once all futures are ready.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cache/eval_cache.h"
#include "cache/result_cache.h"
#include "engine/engine.h"
#include "fault/storm.h"
#include "tree/generator.h"
#include "util/random.h"

namespace treeq {
namespace engine {
namespace {

Tree SmallCatalog(Rng* rng) {
  CatalogOptions opts;
  opts.num_products = static_cast<int>(rng->Uniform(12, 32));
  return CatalogDocument(rng, opts);
}

struct Recorded {
  Submission submission;
  PlanPtr plan;
  DocumentPtr document;  // pins the epoch the request was submitted for
};

TEST(EngineChurnTest, BatchesRaceDocumentChurnWithoutStaleResults) {
  const int rounds = fault::StressIters(8);
  constexpr int kNumDocs = 2;
  constexpr int kChurners = 2;
  constexpr int kSubmitters = 3;

  std::vector<PlanPtr> plans;
  for (const char* text :
       {"//review[rating5]", "/catalog/product[reviews/review]/name",
        "//product/descendant::rating5"}) {
    plans.push_back(Plan::Compile(Language::kXPath, text).value());
  }

  for (int round = 1; round <= rounds; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    cache::EvalCache eval_cache(cache::EvalCacheOptions{});
    cache::ResultCache result_cache(cache::ResultCacheOptions{});
    DocumentStore store;
    store.AddEvictionListener([&](uint64_t epoch) {
      eval_cache.InvalidateDocument(epoch);
      result_cache.InvalidateDocument(epoch);
    });
    {
      Rng rng(static_cast<uint64_t>(round) * 131u);
      for (int i = 0; i < kNumDocs; ++i) {
        ASSERT_TRUE(store.Add("doc" + std::to_string(i), SmallCatalog(&rng))
                        .ok());
      }
    }

    Executor::Options opts;
    opts.num_workers = 3;
    opts.queue_capacity = 32;
    opts.eval_cache = &eval_cache;
    opts.result_cache = &result_cache;
    opts.singleflight = true;
    Executor executor(opts);

    std::atomic<bool> stop{false};
    std::vector<std::thread> churners;
    for (int c = 0; c < kChurners; ++c) {
      churners.emplace_back([&, c] {
        Rng rng(static_cast<uint64_t>(round) * 977u +
                static_cast<uint64_t>(c));
        while (!stop.load(std::memory_order_relaxed)) {
          const std::string name =
              "doc" + std::to_string(rng.Uniform(0, kNumDocs - 1));
          if (rng.Bernoulli(0.25)) {
            (void)store.Remove(name);
            (void)store.Add(name, SmallCatalog(&rng));
          } else {
            (void)store.Replace(name, SmallCatalog(&rng));
          }
          std::this_thread::yield();
        }
      });
    }

    std::mutex recorded_mu;
    std::vector<Recorded> recorded;
    std::vector<std::thread> submitters;
    for (int s = 0; s < kSubmitters; ++s) {
      submitters.emplace_back([&, s] {
        Rng rng(static_cast<uint64_t>(round) * 7919u +
                static_cast<uint64_t>(s));
        std::vector<Recorded> local;
        for (int op = 0; op < 24; ++op) {
          std::vector<QueryRequest> requests;
          const int batch = static_cast<int>(rng.Uniform(1, 6));
          for (int i = 0; i < batch; ++i) {
            Result<DocumentPtr> doc = store.Get(
                "doc" + std::to_string(rng.Uniform(0, kNumDocs - 1)));
            if (!doc.ok()) continue;  // lost a Remove race; fine
            QueryRequest request;
            request.plan = plans[static_cast<size_t>(
                rng.Uniform(0, static_cast<int64_t>(plans.size()) - 1))];
            request.document = *doc;
            requests.push_back(std::move(request));
          }
          if (requests.empty()) continue;
          // Snapshot (plan, document) first: SubmitBatch moves the
          // requests out of the span.
          std::vector<std::pair<PlanPtr, DocumentPtr>> snapshot;
          for (const QueryRequest& r : requests) {
            snapshot.emplace_back(r.plan, r.document);
          }
          std::vector<Submission> submissions =
              executor.SubmitBatch(requests);
          for (size_t i = 0; i < submissions.size(); ++i) {
            Recorded r;
            r.submission = std::move(submissions[i]);
            r.plan = snapshot[i].first;
            r.document = std::move(snapshot[i].second);
            local.push_back(std::move(r));
          }
        }
        std::lock_guard<std::mutex> lock(recorded_mu);
        for (Recorded& r : local) recorded.push_back(std::move(r));
      });
    }

    for (std::thread& t : submitters) t.join();
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& t : churners) t.join();

    // Every future must resolve: a leaked singleflight entry or a dropped
    // promise wedges here, not silently.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (Recorded& r : recorded) {
      ASSERT_EQ(r.submission.future.wait_until(deadline),
                std::future_status::ready)
          << "future not resolved: '" << r.plan->text() << "' on "
          << r.document->name();
    }
    EXPECT_EQ(executor.inflight().size(), 0u)
        << "in-flight entries leaked past their futures";

    size_t checked = 0;
    for (Recorded& r : recorded) {
      Result<QueryResult> outcome = r.submission.future.get();
      // Unbounded batch submits can only fail through admission control /
      // shutdown, neither of which this test exercises.
      ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
      Result<QueryResult> replay =
          r.plan->Execute(*r.document, ExecContext::Unbounded(), {});
      ASSERT_TRUE(replay.ok()) << replay.status().ToString();
      EXPECT_EQ(outcome->nodes(), replay->nodes())
          << "stale or corrupt answer for '" << r.plan->text() << "' on "
          << r.document->name() << " (epoch " << r.document->epoch() << ")";
      ++checked;
    }
    EXPECT_GT(checked, 0u);
    executor.Shutdown();
  }
}

}  // namespace
}  // namespace engine
}  // namespace treeq
