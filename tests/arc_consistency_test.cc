#include "cq/arc_consistency.h"

#include <gtest/gtest.h>

#include "cq/naive.h"
#include "cq/parser.h"
#include "tree/generator.h"
#include "util/random.h"

namespace treeq {
namespace cq {
namespace {

ConjunctiveQuery MustParse(const std::string& text) {
  Result<ConjunctiveQuery> q = ParseCq(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(q).value();
}

// A small pool of queries mixing tree-shaped, cyclic, parallel-edge, and
// unsatisfiable bodies over several signatures.
const char* kQueries[] = {
    "Q() :- Child(x, y), Lab_a(y).",
    "Q() :- Child+(x, y), Child+(y, z), Lab_c(z).",
    "Q() :- Child(x, y), Child(x, z), NextSibling(y, z).",
    "Q() :- Child+(x, z), Child+(y, z), Following(x, y).",
    "Q() :- NextSibling(x, y), NextSibling(y, z), Lab_a(x), Lab_b(z).",
    "Q() :- Child(x, y), NextSibling(x, y).",          // unsatisfiable
    "Q() :- Following(x, y), Following(y, x).",        // unsatisfiable
    "Q() :- Child+(x, y), Lab_a(x), Lab_a(y), NextSibling+(x, y).",
    "Q() :- descendant-or-self(x, y), Lab_b(y).",
    "Q() :- self(x, x), Lab_a(x).",
};

class AcPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AcPropertyTest, OutputIsArcConsistentOrEmpty) {
  Rng rng(GetParam());
  RandomTreeOptions opts;
  opts.num_nodes = 25;
  opts.attach_window = 1 + GetParam() % 6;
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);
  for (const char* text : kQueries) {
    ConjunctiveQuery q = MustParse(text);
    AcResult ac = ComputeMaxArcConsistent(q, t, o);
    if (ac.consistent) {
      EXPECT_TRUE(IsArcConsistent(q, t, o, ac.theta)) << text;
    } else {
      bool some_empty = false;
      for (const NodeSet& s : ac.theta) some_empty |= s.empty();
      EXPECT_TRUE(some_empty) << text;
    }
  }
}

TEST_P(AcPropertyTest, HornEncodingMatchesDirect) {
  Rng rng(50 + GetParam());
  RandomTreeOptions opts;
  opts.num_nodes = 20;
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);
  for (const char* text : kQueries) {
    ConjunctiveQuery q = MustParse(text);
    AcResult direct =
        ComputeMaxArcConsistent(q, t, o, AcImplementation::kDirect);
    AcResult horn =
        ComputeMaxArcConsistent(q, t, o, AcImplementation::kHornEncoding);
    ASSERT_EQ(direct.consistent, horn.consistent) << text;
    ASSERT_EQ(direct.theta.size(), horn.theta.size());
    for (size_t x = 0; x < direct.theta.size(); ++x) {
      EXPECT_EQ(direct.theta[x].ToVector(), horn.theta[x].ToVector())
          << text << " var " << x;
    }
  }
}

// The pre-valuation subsumes every consistent valuation (it is maximal):
// each solution value must be a candidate.
TEST_P(AcPropertyTest, SubsumesAllSolutions) {
  Rng rng(100 + GetParam());
  RandomTreeOptions opts;
  opts.num_nodes = 15;
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);
  for (const char* text : kQueries) {
    ConjunctiveQuery q = MustParse(text);
    // Make every variable a head variable so solutions are full valuations.
    ConjunctiveQuery full = q;
    while (static_cast<int>(full.head_vars().size()) < full.num_vars()) {
      full.AddHeadVar(static_cast<int>(full.head_vars().size()));
    }
    AcResult ac = ComputeMaxArcConsistent(q, t, o);
    Result<TupleSet> solutions = NaiveEvaluateCq(full, t, o);
    ASSERT_TRUE(solutions.ok());
    for (const std::vector<NodeId>& sol : solutions.value()) {
      for (int x = 0; x < q.num_vars(); ++x) {
        EXPECT_TRUE(ac.theta[x].Contains(sol[x])) << text;
      }
    }
    // And if there is a solution, AC must be consistent.
    if (!solutions.value().empty()) EXPECT_TRUE(ac.consistent) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AcPropertyTest, ::testing::Range(0, 6));

// Example 6.1 of the paper, verbatim: the Boolean query
//   q <- R(x, y), S(x, y)
// over the abstract database R = {(1,2), (3,4)}, S = {(3,2), (1,4)} has the
// arc-consistent pre-valuation Theta(x) = {1,3}, Theta(y) = {2,4}, yet q is
// not satisfiable — arc-consistency does not imply global consistency in
// general, which is what the X-property of Section 6 buys back. (On trees,
// small random instances do not exhibit the gap — the axis relations prune
// aggressively — which is presumably why the paper's own example uses an
// abstract database; the NP-hardness side of Theorem 6.8 manufactures large
// tree gaps via reductions.)
TEST(AcGapTest, PaperExample61GapOnAbstractRelations) {
  const std::vector<std::pair<int, int>> r = {{1, 2}, {3, 4}};
  const std::vector<std::pair<int, int>> s = {{3, 2}, {1, 4}};
  const std::vector<int> domain = {1, 2, 3, 4};

  // The paper's pre-valuation is arc-consistent: every candidate has
  // support in both directions for both atoms.
  const std::vector<int> theta_x = {1, 3};
  const std::vector<int> theta_y = {2, 4};
  auto supported = [](const std::vector<std::pair<int, int>>& rel,
                      const std::vector<int>& xs, const std::vector<int>& ys) {
    for (int v : xs) {
      bool ok = false;
      for (int w : ys) {
        for (const auto& p : rel) ok = ok || (p == std::make_pair(v, w));
      }
      if (!ok) return false;
    }
    for (int w : ys) {
      bool ok = false;
      for (int v : xs) {
        for (const auto& p : rel) ok = ok || (p == std::make_pair(v, w));
      }
      if (!ok) return false;
    }
    return true;
  };
  EXPECT_TRUE(supported(r, theta_x, theta_y));
  EXPECT_TRUE(supported(s, theta_x, theta_y));

  // Yet no single valuation satisfies both atoms.
  bool satisfiable = false;
  for (int v : domain) {
    for (int w : domain) {
      bool in_r = false, in_s = false;
      for (const auto& p : r) in_r = in_r || (p == std::make_pair(v, w));
      for (const auto& p : s) in_s = in_s || (p == std::make_pair(v, w));
      satisfiable = satisfiable || (in_r && in_s);
    }
  }
  EXPECT_FALSE(satisfiable);
}

// On trees the soundness direction of Section 6 always holds: a satisfiable
// query has an arc-consistent pre-valuation.
TEST(AcGapTest, SatisfiableImpliesArcConsistentOnTrees) {
  const char* kCyclicQueries[] = {
      "Q() :- Child+(x, z), Child+(y, z), Following(x, y).",
      "Q() :- Child+(x, y), NextSibling(x, z), Child+(z, y).",
      "Q() :- Child(x, y), Child+(x, z), Following(y, z), Lab_a(y), "
      "Lab_b(z).",
  };
  for (int seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    RandomTreeOptions opts;
    opts.num_nodes = 12;
    opts.attach_window = 1 + seed % 6;
    Tree t = RandomTree(&rng, opts);
    TreeOrders o = ComputeOrders(t);
    for (const char* text : kCyclicQueries) {
      ConjunctiveQuery q = MustParse(text);
      AcResult ac = ComputeMaxArcConsistent(q, t, o);
      Result<bool> sat = NaiveSatisfiableCq(q, t, o);
      ASSERT_TRUE(sat.ok());
      if (sat.value()) EXPECT_TRUE(ac.consistent) << text;
    }
  }
}

TEST(AcTest, InitialRestrictionIsRespected) {
  Tree t = Chain(5);
  TreeOrders o = ComputeOrders(t);
  ConjunctiveQuery q = MustParse("Q() :- Child+(x, y).");
  PreValuation initial(2, NodeSet::All(5));
  initial[0] = NodeSet::Singleton(5, 3);  // x pinned to node 3
  AcResult ac = ComputeMaxArcConsistent(q, t, o, AcImplementation::kDirect,
                                        &initial);
  ASSERT_TRUE(ac.consistent);
  EXPECT_EQ(ac.theta[0].ToVector(), std::vector<NodeId>{3});
  EXPECT_EQ(ac.theta[1].ToVector(), std::vector<NodeId>{4});

  initial[0] = NodeSet::Singleton(5, 4);  // x pinned to the leaf: no y
  AcResult ac2 = ComputeMaxArcConsistent(q, t, o, AcImplementation::kDirect,
                                         &initial);
  EXPECT_FALSE(ac2.consistent);
  AcResult ac2h = ComputeMaxArcConsistent(
      q, t, o, AcImplementation::kHornEncoding, &initial);
  EXPECT_FALSE(ac2h.consistent);
}

TEST(AcTest, UnsatisfiableLabelYieldsInconsistent) {
  Tree t = Chain(4, "a");
  TreeOrders o = ComputeOrders(t);
  ConjunctiveQuery q = MustParse("Q() :- Lab_missing(x).");
  EXPECT_FALSE(ComputeMaxArcConsistent(q, t, o).consistent);
}

}  // namespace
}  // namespace cq
}  // namespace treeq
