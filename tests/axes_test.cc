#include "tree/axes.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "tree/generator.h"
#include "tree/orders.h"
#include "util/random.h"

namespace treeq {
namespace {

const Axis kAllAxes[] = {
    Axis::kSelf,
    Axis::kChild,
    Axis::kParent,
    Axis::kDescendant,
    Axis::kAncestor,
    Axis::kDescendantOrSelf,
    Axis::kAncestorOrSelf,
    Axis::kNextSibling,
    Axis::kPrevSibling,
    Axis::kFollowingSibling,
    Axis::kPrecedingSibling,
    Axis::kFollowingSiblingOrSelf,
    Axis::kPrecedingSiblingOrSelf,
    Axis::kFollowing,
    Axis::kPreceding,
    Axis::kFirstChild,
    Axis::kFirstChildInv,
};

// Reference semantics straight from the definitions in Section 2, using only
// parent/sibling pointer chasing (no order indexes).
bool RefAxis(const Tree& t, Axis axis, NodeId u, NodeId v) {
  auto is_ancestor = [&t](NodeId a, NodeId b) {
    for (NodeId p = t.parent(b); p != kNullNode; p = t.parent(p)) {
      if (p == a) return true;
    }
    return false;
  };
  auto is_following_sibling = [&t](NodeId a, NodeId b) {
    for (NodeId s = t.next_sibling(a); s != kNullNode; s = t.next_sibling(s)) {
      if (s == b) return true;
    }
    return false;
  };
  switch (axis) {
    case Axis::kSelf:
      return u == v;
    case Axis::kChild:
      return t.parent(v) == u;
    case Axis::kParent:
      return t.parent(u) == v;
    case Axis::kDescendant:
      return is_ancestor(u, v);
    case Axis::kAncestor:
      return is_ancestor(v, u);
    case Axis::kDescendantOrSelf:
      return u == v || is_ancestor(u, v);
    case Axis::kAncestorOrSelf:
      return u == v || is_ancestor(v, u);
    case Axis::kNextSibling:
      return t.next_sibling(u) == v;
    case Axis::kPrevSibling:
      return t.next_sibling(v) == u;
    case Axis::kFollowingSibling:
      return is_following_sibling(u, v);
    case Axis::kPrecedingSibling:
      return is_following_sibling(v, u);
    case Axis::kFollowingSiblingOrSelf:
      return u == v || is_following_sibling(u, v);
    case Axis::kPrecedingSiblingOrSelf:
      return u == v || is_following_sibling(v, u);
    case Axis::kFollowing: {
      // The paper's definition: exists x0, y0 with NextSibling+(x0, y0),
      // Child*(x0, u') where u' == u ... i.e. x0 ancestor-or-self of u,
      // y0 ancestor-or-self of v.
      for (NodeId x0 = u; x0 != kNullNode; x0 = t.parent(x0)) {
        for (NodeId y0 = v; y0 != kNullNode; y0 = t.parent(y0)) {
          if (is_following_sibling(x0, y0)) return true;
        }
      }
      return false;
    }
    case Axis::kPreceding:
      return RefAxis(t, Axis::kFollowing, v, u);
    case Axis::kFirstChild:
      return t.first_child(u) == v;
    case Axis::kFirstChildInv:
      return t.first_child(v) == u;
  }
  return false;
}

class AxesPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AxesPropertyTest, AxisHoldsMatchesDefinitions) {
  Rng rng(GetParam());
  RandomTreeOptions opts;
  opts.num_nodes = 40;
  opts.attach_window = 1 + GetParam() % 7;
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);
  for (Axis axis : kAllAxes) {
    for (NodeId u = 0; u < t.num_nodes(); ++u) {
      for (NodeId v = 0; v < t.num_nodes(); ++v) {
        EXPECT_EQ(AxisHolds(t, o, axis, u, v), RefAxis(t, axis, u, v))
            << AxisName(axis) << "(" << u << "," << v << ")";
      }
    }
  }
}

TEST_P(AxesPropertyTest, AxisImageMatchesBruteForce) {
  Rng rng(100 + GetParam());
  RandomTreeOptions opts;
  opts.num_nodes = 50;
  opts.attach_window = 1 + GetParam() % 9;
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);
  const int n = t.num_nodes();

  // A few random input sets, plus empty and full.
  std::vector<NodeSet> inputs;
  inputs.push_back(NodeSet(n));
  inputs.push_back(NodeSet::All(n));
  for (int k = 0; k < 4; ++k) {
    NodeSet s(n);
    for (NodeId v = 0; v < n; ++v) {
      if (rng.Bernoulli(0.2)) s.Insert(v);
    }
    inputs.push_back(s);
  }

  for (Axis axis : kAllAxes) {
    for (const NodeSet& from : inputs) {
      NodeSet got(n);
      AxisImage(t, o, axis, from, &got);
      NodeSet want(n);
      for (NodeId u = 0; u < n; ++u) {
        if (!from.Contains(u)) continue;
        for (NodeId v = 0; v < n; ++v) {
          if (AxisHolds(t, o, axis, u, v)) want.Insert(v);
        }
      }
      EXPECT_TRUE(got == want)
          << AxisName(axis) << " image mismatch (|from|=" << from.size()
          << ")";
    }
  }
}

TEST_P(AxesPropertyTest, InverseAxisSwapsArguments) {
  Rng rng(200 + GetParam());
  RandomTreeOptions opts;
  opts.num_nodes = 30;
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);
  for (Axis axis : kAllAxes) {
    Axis inv = InverseAxis(axis);
    EXPECT_EQ(InverseAxis(inv), axis);
    for (NodeId u = 0; u < t.num_nodes(); ++u) {
      for (NodeId v = 0; v < t.num_nodes(); ++v) {
        EXPECT_EQ(AxisHolds(t, o, axis, u, v), AxisHolds(t, o, inv, v, u))
            << AxisName(axis);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AxesPropertyTest, ::testing::Range(0, 8));

TEST(AxesTest, NamesRoundTrip) {
  for (Axis axis : kAllAxes) {
    Result<Axis> parsed = ParseAxis(AxisName(axis));
    ASSERT_TRUE(parsed.ok()) << AxisName(axis);
    EXPECT_EQ(parsed.value(), axis);
  }
}

TEST(AxesTest, PaperAliasNames) {
  EXPECT_EQ(ParseAxis("Child+").value(), Axis::kDescendant);
  EXPECT_EQ(ParseAxis("Child*").value(), Axis::kDescendantOrSelf);
  EXPECT_EQ(ParseAxis("NextSibling+").value(), Axis::kFollowingSibling);
  EXPECT_EQ(ParseAxis("NextSibling*").value(),
            Axis::kFollowingSiblingOrSelf);
  EXPECT_EQ(ParseAxis("Following").value(), Axis::kFollowing);
  EXPECT_EQ(ParseAxis("FirstChild").value(), Axis::kFirstChild);
  EXPECT_FALSE(ParseAxis("no-such-axis").ok());
}

TEST(AxesTest, ForwardAndTransitiveClassification) {
  EXPECT_TRUE(IsForwardAxis(Axis::kChild));
  EXPECT_TRUE(IsForwardAxis(Axis::kFollowing));
  EXPECT_FALSE(IsForwardAxis(Axis::kParent));
  EXPECT_FALSE(IsForwardAxis(Axis::kAncestor));
  EXPECT_TRUE(IsTransitiveAxis(Axis::kDescendant));
  EXPECT_TRUE(IsTransitiveAxis(Axis::kPreceding));
  EXPECT_FALSE(IsTransitiveAxis(Axis::kChild));
  EXPECT_FALSE(IsTransitiveAxis(Axis::kFirstChild));
}

TEST(NodeSetTest, BasicOperations) {
  NodeSet s(10);
  EXPECT_TRUE(s.empty());
  s.Insert(3);
  s.Insert(7);
  s.Insert(3);  // idempotent
  EXPECT_EQ(s.size(), 2);
  EXPECT_TRUE(s.Contains(3));
  EXPECT_FALSE(s.Contains(4));
  s.Erase(3);
  EXPECT_EQ(s.size(), 1);
  s.Erase(3);  // idempotent
  EXPECT_EQ(s.size(), 1);
  EXPECT_EQ(s.ToVector(), std::vector<NodeId>{7});
}

TEST(NodeSetTest, SetAlgebra) {
  NodeSet a = NodeSet::FromVector(6, {0, 1, 2});
  NodeSet b = NodeSet::FromVector(6, {2, 3});
  NodeSet u = a;
  u.UnionWith(b);
  EXPECT_EQ(u.ToVector(), (std::vector<NodeId>{0, 1, 2, 3}));
  NodeSet i = a;
  i.IntersectWith(b);
  EXPECT_EQ(i.ToVector(), std::vector<NodeId>{2});
  NodeSet c = a;
  c.Complement();
  EXPECT_EQ(c.ToVector(), (std::vector<NodeId>{3, 4, 5}));
  EXPECT_EQ(c.size(), 3);
}

TEST(AxesTest, MaterializeAxisCountsOnChain) {
  Tree t = Chain(4);
  TreeOrders o = ComputeOrders(t);
  EXPECT_EQ(MaterializeAxis(t, o, Axis::kChild).size(), 3u);
  EXPECT_EQ(MaterializeAxis(t, o, Axis::kDescendant).size(), 6u);
  EXPECT_EQ(MaterializeAxis(t, o, Axis::kDescendantOrSelf).size(), 10u);
  EXPECT_TRUE(MaterializeAxis(t, o, Axis::kFollowing).empty());
}

TEST(AxesTest, FollowingOnStar) {
  Tree t = Star(4);  // root + 3 leaves
  TreeOrders o = ComputeOrders(t);
  // Leaves are 1,2,3 in document order; following pairs: (1,2),(1,3),(2,3).
  auto pairs = MaterializeAxis(t, o, Axis::kFollowing);
  EXPECT_EQ(pairs.size(), 3u);
}

}  // namespace
}  // namespace treeq
