#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "datalog/evaluator.h"
#include "tree/generator.h"
#include "tree/orders.h"
#include "util/random.h"
#include "xpath/ast.h"
#include "xpath/evaluator.h"
#include "xpath/naive_evaluator.h"
#include "xpath/parser.h"
#include "xpath/to_datalog.h"

namespace treeq {
namespace xpath {
namespace {

std::unique_ptr<PathExpr> MustParse(const std::string& text) {
  Result<std::unique_ptr<PathExpr>> p = ParseXPath(text);
  EXPECT_TRUE(p.ok()) << text << ": " << p.status().ToString();
  return std::move(p).value();
}

TEST(XPathParserTest, SugarForms) {
  // bare name = child::name
  auto p = MustParse("a");
  ASSERT_EQ(p->kind, PathExpr::Kind::kStep);
  EXPECT_EQ(p->axis, Axis::kChild);
  ASSERT_EQ(p->qualifiers.size(), 1u);
  EXPECT_EQ(p->qualifiers[0]->kind, Qualifier::Kind::kLabel);
  EXPECT_EQ(p->qualifiers[0]->label, "a");

  auto dot = MustParse(".");
  EXPECT_EQ(dot->axis, Axis::kSelf);

  auto axis = MustParse("descendant::b");
  EXPECT_EQ(axis->axis, Axis::kDescendant);

  auto star = MustParse("following-sibling::*");
  EXPECT_EQ(star->axis, Axis::kFollowingSibling);
  EXPECT_TRUE(star->qualifiers.empty());

  auto paper_alias = MustParse("Child+::b");
  EXPECT_EQ(paper_alias->axis, Axis::kDescendant);
}

TEST(XPathParserTest, SlashesAndUnions) {
  auto seq = MustParse("a/b/c");
  EXPECT_EQ(seq->kind, PathExpr::Kind::kSeq);

  auto dslash = MustParse("a//b");
  // a / (descendant-or-self::* / child::b)
  ASSERT_EQ(dslash->kind, PathExpr::Kind::kSeq);
  EXPECT_EQ(dslash->right->left->axis, Axis::kDescendantOrSelf);

  auto uni = MustParse("a | b | c");
  EXPECT_EQ(uni->kind, PathExpr::Kind::kUnion);

  auto grouped = MustParse("(a | b)/c");
  ASSERT_EQ(grouped->kind, PathExpr::Kind::kSeq);
  EXPECT_EQ(grouped->left->kind, PathExpr::Kind::kUnion);
}

TEST(XPathParserTest, AbsolutePathsAnchorAtContext) {
  auto abs = MustParse("/catalog/product");
  ASSERT_EQ(abs->kind, PathExpr::Kind::kSeq);
  EXPECT_EQ(abs->left->axis, Axis::kSelf);
  EXPECT_EQ(abs->left->qualifiers[0]->label, "catalog");

  auto dabs = MustParse("//b");
  ASSERT_EQ(dabs->kind, PathExpr::Kind::kSeq);
  EXPECT_EQ(dabs->left->axis, Axis::kDescendantOrSelf);
}

TEST(XPathParserTest, Qualifiers) {
  auto p = MustParse("a[b/c and not(lab() = \"x\" or d)][.]");
  ASSERT_EQ(p->kind, PathExpr::Kind::kStep);
  // label test + two bracketed qualifiers
  ASSERT_EQ(p->qualifiers.size(), 3u);
  EXPECT_EQ(p->qualifiers[1]->kind, Qualifier::Kind::kAnd);
  EXPECT_EQ(p->qualifiers[1]->right->kind, Qualifier::Kind::kNot);
  EXPECT_EQ(p->qualifiers[2]->kind, Qualifier::Kind::kPath);
}

TEST(XPathParserTest, Errors) {
  EXPECT_FALSE(ParseXPath("").ok());
  EXPECT_FALSE(ParseXPath("a/").ok());
  EXPECT_FALSE(ParseXPath("a[b").ok());
  EXPECT_FALSE(ParseXPath("a]").ok());
  EXPECT_FALSE(ParseXPath("unknownaxis::b").ok());
  EXPECT_FALSE(ParseXPath("(a").ok());
}

TEST(XPathAstTest, ToStringRoundTrips) {
  const char* kQueries[] = {
      "a/b", "a//b[c]", "descendant::x[lab() = \"y\" or z]",
      "(a | b)/not-a-keyword", "ancestor::*[not(d)]",
  };
  for (const char* text : kQueries) {
    auto p = MustParse(text);
    std::string rendered = ToString(*p);
    auto p2 = MustParse(rendered);
    EXPECT_EQ(ToString(*p2), rendered) << text;
  }
}

TEST(XPathAstTest, SizeAndFragments) {
  auto p = MustParse("a[b and not(c)]/d");
  EXPECT_GT(PathSize(*p), 4);
  EXPECT_FALSE(IsPositive(*p));
  auto pos = MustParse("a[b or c]/d");
  EXPECT_TRUE(IsPositive(*pos));
  EXPECT_FALSE(IsConjunctive(*pos));
  auto conj = MustParse("a[b]/d");
  EXPECT_TRUE(IsConjunctive(*conj));
  EXPECT_TRUE(IsForward(*conj));
  auto back = MustParse("a/parent::b");
  EXPECT_FALSE(IsForward(*back));
}

// -- Evaluation ------------------------------------------------------------

TEST(XPathEvalTest, CatalogQueries) {
  Rng rng(5);
  CatalogOptions copts;
  copts.num_products = 25;
  Tree t = CatalogDocument(&rng, copts);
  TreeOrders o = ComputeOrders(t);

  NodeSet products = EvalQueryFromRoot(t, o, *MustParse("/catalog/product"));
  EXPECT_EQ(products.size(),
            (int)t.NodesWithLabel(t.label_table().Lookup("product")).size());

  // Products with a 5-star review.
  NodeSet top = EvalQueryFromRoot(
      t, o, *MustParse("/catalog/product[reviews/review/rating5]"));
  for (NodeId p : top.ToVector()) {
    EXPECT_TRUE(t.HasLabel(p, "product"));
  }
  // Each selected product really has a rating5 descendant.
  LabelId rating5 = t.label_table().Lookup("rating5");
  if (rating5 != kNullLabel) {
    NodeSet with5(t.num_nodes());
    for (NodeId r : t.NodesWithLabel(rating5)) {
      NodeId p = t.parent(t.parent(t.parent(r)));  // rating<-review<-reviews<-product
      with5.Insert(p);
    }
    EXPECT_EQ(top.ToVector(), with5.ToVector());
  }

  // Negation: products without any reviews.
  NodeSet no_reviews = EvalQueryFromRoot(
      t, o, *MustParse("/catalog/product[not(reviews)]"));
  NodeSet with_reviews = EvalQueryFromRoot(
      t, o, *MustParse("/catalog/product[reviews]"));
  EXPECT_EQ(no_reviews.size() + with_reviews.size(), products.size());
}

TEST(XPathEvalTest, InverseAxes) {
  Tree t = Chain(5, "a", "b");
  TreeOrders o = ComputeOrders(t);
  // Parents of b nodes.
  NodeSet parents =
      EvalQueryFromRoot(t, o, *MustParse("//b/parent::*"));
  EXPECT_EQ(parents.ToVector(), (std::vector<NodeId>{0, 2}));
  NodeSet ancestors = EvalQueryFromRoot(t, o, *MustParse("//b/ancestor::a"));
  EXPECT_EQ(ancestors.ToVector(), (std::vector<NodeId>{0, 2}));
}

// Random query generator for the agreement property tests.
class QueryGen {
 public:
  explicit QueryGen(Rng* rng) : rng_(rng) {}

  std::unique_ptr<PathExpr> GenPath(int depth) {
    int pick = static_cast<int>(rng_->Uniform(0, depth <= 0 ? 0 : 9));
    if (pick <= 5) {  // step
      auto step = PathExpr::MakeStep(RandomAxis());
      if (depth > 0 && rng_->Bernoulli(0.5)) {
        step->qualifiers.push_back(GenQual(depth - 1));
      }
      if (rng_->Bernoulli(0.6)) {
        step->qualifiers.push_back(Qualifier::MakeLabel(RandomLabel()));
      }
      return step;
    }
    if (pick <= 8) {
      return PathExpr::MakeSeq(GenPath(depth - 1), GenPath(depth - 1));
    }
    return PathExpr::MakeUnion(GenPath(depth - 1), GenPath(depth - 1));
  }

  std::unique_ptr<Qualifier> GenQual(int depth) {
    int pick = static_cast<int>(rng_->Uniform(0, depth <= 0 ? 1 : 7));
    switch (pick) {
      case 0:
      case 1:
        return Qualifier::MakeLabel(RandomLabel());
      case 2:
      case 3:
      case 4:
        return Qualifier::MakePath(GenPath(depth - 1));
      case 5:
        return Qualifier::MakeAnd(GenQual(depth - 1), GenQual(depth - 1));
      case 6:
        return Qualifier::MakeOr(GenQual(depth - 1), GenQual(depth - 1));
      default:
        return Qualifier::MakeNot(GenQual(depth - 1));
    }
  }

 private:
  Axis RandomAxis() {
    static const Axis kAxes[] = {
        Axis::kSelf,          Axis::kChild,
        Axis::kParent,        Axis::kDescendant,
        Axis::kAncestor,      Axis::kDescendantOrSelf,
        Axis::kAncestorOrSelf, Axis::kNextSibling,
        Axis::kPrevSibling,   Axis::kFollowingSibling,
        Axis::kPrecedingSibling, Axis::kFollowing,
        Axis::kPreceding,
    };
    return kAxes[rng_->Uniform(0, std::size(kAxes) - 1)];
  }

  std::string RandomLabel() {
    static const char* kLabels[] = {"a", "b", "c"};
    return kLabels[rng_->Uniform(0, 2)];
  }

  Rng* rng_;
};

class XPathAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(XPathAgreementTest, SetAtATimeMatchesNaiveSemantics) {
  Rng rng(GetParam());
  RandomTreeOptions opts;
  opts.num_nodes = 25;
  opts.attach_window = 1 + GetParam() % 5;
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);
  QueryGen gen(&rng);

  for (int trial = 0; trial < 30; ++trial) {
    std::unique_ptr<PathExpr> p = gen.GenPath(3);
    // From the root.
    NodeSet fast = EvalQueryFromRoot(t, o, *p);
    Result<NodeSet> slow =
        NaiveEvalPath(t, o, *p, t.root(), /*budget=*/50'000'000);
    ASSERT_TRUE(slow.ok()) << ToString(*p);
    EXPECT_EQ(fast.ToVector(), slow.value().ToVector()) << ToString(*p);
    // From an arbitrary context node.
    NodeId ctx = static_cast<NodeId>(rng.Uniform(0, t.num_nodes() - 1));
    NodeSet fast_ctx =
        EvalPath(t, o, *p, NodeSet::Singleton(t.num_nodes(), ctx));
    Result<NodeSet> slow_ctx =
        NaiveEvalPath(t, o, *p, ctx, /*budget=*/50'000'000);
    ASSERT_TRUE(slow_ctx.ok());
    EXPECT_EQ(fast_ctx.ToVector(), slow_ctx.value().ToVector())
        << ToString(*p) << " ctx=" << ctx;
  }
}

TEST_P(XPathAgreementTest, DatalogTranslationMatchesEvaluator) {
  Rng rng(100 + GetParam());
  RandomTreeOptions opts;
  opts.num_nodes = 20;
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);
  QueryGen gen(&rng);

  int translated = 0;
  for (int trial = 0; trial < 40; ++trial) {
    std::unique_ptr<PathExpr> p = gen.GenPath(3);
    if (!IsPositive(*p)) continue;
    ++translated;
    Result<datalog::Program> program = XPathToDatalog(*p);
    ASSERT_TRUE(program.ok()) << ToString(*p) << ": "
                              << program.status().ToString();
    Result<NodeSet> via_datalog = datalog::EvaluateDatalog(program.value(), t);
    ASSERT_TRUE(via_datalog.ok()) << via_datalog.status().ToString();
    NodeSet direct = EvalQueryFromRoot(t, o, *p);
    EXPECT_EQ(via_datalog.value().ToVector(), direct.ToVector())
        << ToString(*p);
  }
  EXPECT_GT(translated, 5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, XPathAgreementTest, ::testing::Range(0, 6));

TEST(ToDatalogTest, RejectsNegation) {
  auto p = MustParse("a[not(b)]");
  Result<datalog::Program> program = XPathToDatalog(*p);
  ASSERT_FALSE(program.ok());
  EXPECT_EQ(program.status().code(), StatusCode::kUnsupported);
}

TEST(ToDatalogTest, OutputSizeLinearInQuery) {
  auto small = MustParse("a/b[c]");
  auto big = MustParse("a/b[c]/a/b[c]/a/b[c]/a/b[c]");
  int s = XPathToDatalog(*small).value().SizeInAtoms();
  int b = XPathToDatalog(*big).value().SizeInAtoms();
  EXPECT_LE(b, 5 * s);
}

TEST(NaiveEvalTest, BudgetAborts) {
  Tree t = Chain(30);
  TreeOrders o = ComputeOrders(t);
  auto p = MustParse(
      "descendant::*/descendant::*/descendant::*/descendant::*");
  Result<NodeSet> r = NaiveEvalPath(t, o, *p, t.root(), /*budget=*/20);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace xpath
}  // namespace treeq
