// Tests for the serving engine: Plan compile/run parity with the direct
// evaluators, PlanCache LRU semantics, and Executor concurrency.

#include "engine/engine.h"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cq/dichotomy.h"
#include "cq/parser.h"
#include "datalog/evaluator.h"
#include "datalog/parser.h"
#include "fo/corollary52.h"
#include "fo/parser.h"
#include "obs/flight_recorder.h"
#include "obs/profile.h"
#include "obs/stats.h"
#include "tree/generator.h"
#include "tree/xml.h"
#include "util/random.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace treeq {
namespace engine {
namespace {

DocumentPtr Catalog(int seed = 1, int products = 40) {
  Rng rng(static_cast<uint64_t>(seed));
  CatalogOptions opts;
  opts.num_products = products;
  return MakeDocumentWithOrders(CatalogDocument(&rng, opts));
}

TEST(PlanTest, XPathPlanMatchesDirectEvaluator) {
  DocumentPtr doc = Catalog();
  const std::string query = "/catalog/product[reviews/review]/name";
  Result<PlanPtr> plan = Plan::Compile(Language::kXPath, query);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  Result<QueryResult> got = (*plan)->Run(*doc);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got->is_boolean());

  auto ast = xpath::ParseXPath(query).value();
  NodeSet expected = xpath::EvalQueryFromRoot(*doc, *ast);
  EXPECT_EQ(got->nodes(), expected);
  EXPECT_EQ(got->cardinality(), static_cast<size_t>(expected.size()));
}

TEST(PlanTest, DatalogPlanMatchesDirectEvaluator) {
  DocumentPtr doc = Catalog();
  const std::string program = R"(
    Good(x) :- Lab_rating5(x).
    HasGood(x) :- Child(x, y), Good(y).
    ?- HasGood.
  )";
  Result<PlanPtr> plan = Plan::Compile(Language::kDatalog, program);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  Result<QueryResult> got = (*plan)->Run(*doc);
  ASSERT_TRUE(got.ok());

  auto ast = datalog::ParseProgram(program).value();
  NodeSet expected = datalog::EvaluateDatalog(ast, *doc).value();
  EXPECT_EQ(got->nodes(), expected);
}

TEST(PlanTest, BooleanCqPlanUsesDichotomy) {
  DocumentPtr doc = Catalog();
  const std::string query =
      "Q() :- Child+(x, y), Lab_product(x), Lab_review(y).";
  Result<PlanPtr> plan = Plan::Compile(Language::kCq, query);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Child+ alone is tau_1: the X-property route.
  EXPECT_EQ((*plan)->cq_class(), cq::SignatureClass::kTau1);
  Result<QueryResult> got = (*plan)->Run(*doc);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->is_boolean());

  auto ast = cq::ParseCq(query).value();
  EXPECT_EQ(got->boolean(), cq::EvaluateBooleanDichotomy(ast, *doc).value());
  EXPECT_TRUE(got->boolean());
}

TEST(PlanTest, KAryCqPlanEnumerates) {
  DocumentPtr doc = Catalog();
  const std::string query =
      "Q(p, r) :- Child+(p, r), Lab_product(p), Lab_review(r).";
  Result<PlanPtr> plan = Plan::Compile(Language::kCq, query);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  Result<QueryResult> got = (*plan)->Run(*doc);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got->is_boolean());
  EXPECT_GT(got->tuples().size(), 0u);
  EXPECT_EQ(got->cardinality(), got->tuples().size());
}

TEST(PlanTest, NonTreeShapedKAryCqRejectedAtCompile) {
  // A cycle: x-y-z-x. Boolean cycles route to backtracking, but k-ary
  // plans require tree shape and must fail at compile time, not run time.
  Result<PlanPtr> plan = Plan::Compile(
      Language::kCq,
      "Q(x) :- Child(x, y), Child(y, z), Child+(x, z).");
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kUnsupported);
}

TEST(PlanTest, FoSentencePlans) {
  DocumentPtr doc = Catalog();
  const std::string positive =
      "exists x . exists y . (Child(x, y) and Lab_review(x) and "
      "Lab_rating5(y))";
  Result<PlanPtr> plan = Plan::Compile(Language::kFo, positive);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE((*plan)->fo_positive());
  Result<QueryResult> got = (*plan)->Run(*doc);
  ASSERT_TRUE(got.ok());
  auto ast = fo::ParseFo(positive).value();
  EXPECT_EQ(got->boolean(), fo::EvaluateSentencePositive(*ast, *doc).value());

  // Negation: still a valid plan, routed to the naive oracle.
  Result<PlanPtr> negated =
      Plan::Compile(Language::kFo, "forall x . not Lab_nosuchlabel(x)");
  ASSERT_TRUE(negated.ok()) << negated.status().ToString();
  EXPECT_FALSE((*negated)->fo_positive());
  Result<QueryResult> neg = (*negated)->Run(*doc);
  ASSERT_TRUE(neg.ok());
  EXPECT_TRUE(neg->boolean());

  // Free variables are not servable.
  Result<PlanPtr> open = Plan::Compile(Language::kFo, "Lab_a(x)");
  ASSERT_FALSE(open.ok());
  EXPECT_EQ(open.status().code(), StatusCode::kUnsupported);
}

TEST(PlanTest, CompileErrorsKeepParserShape) {
  Result<PlanPtr> bad = Plan::Compile(Language::kXPath, "//a[");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kParseError);
  EXPECT_NE(bad.status().message().find(" at offset "), std::string::npos);
}

TEST(PlanCacheTest, HitMissAndLru) {
  PlanCache cache(2);
  EXPECT_EQ(cache.capacity(), 2u);

  Result<PlanPtr> a = cache.GetOrCompile(Language::kXPath, "//a");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);

  // Hit returns the same plan object.
  Result<PlanPtr> a2 = cache.GetOrCompile(Language::kXPath, "//a");
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(a2.value().get(), a.value().get());
  EXPECT_EQ(cache.hits(), 1u);

  // Same text under a different language is a different key.
  ASSERT_TRUE(cache.GetOrCompile(Language::kCq,
                                 "Q() :- Lab_a(x).").ok());
  EXPECT_EQ(cache.size(), 2u);

  // Touch //a so the CQ entry is LRU, then insert a third plan.
  ASSERT_TRUE(cache.GetOrCompile(Language::kXPath, "//a").ok());
  ASSERT_TRUE(cache.GetOrCompile(Language::kXPath, "//b").ok());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.Lookup(Language::kXPath, "//a").has_value());
  EXPECT_FALSE(cache.Lookup(Language::kCq, "Q() :- Lab_a(x).").has_value());
}

TEST(PlanCacheTest, CompileErrorsAreNotCached) {
  PlanCache cache(4);
  for (int i = 0; i < 3; ++i) {
    Result<PlanPtr> bad = cache.GetOrCompile(Language::kXPath, "//a[");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), StatusCode::kParseError);
  }
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.misses(), 3u);
}

TEST(PlanCacheTest, ParseOptionsArePartOfTheKey) {
  PlanCache cache(8);
  // "/Child+::a" parses only under the paper-axes dialect; a cache that
  // keyed on text alone would serve the paper-dialect plan to a
  // standard-dialect caller.
  ParseOptions paper;
  paper.xpath_paper_axes = true;
  Result<PlanPtr> relational =
      cache.GetOrCompile(Language::kXPath, "/Child+::a", paper);
  ASSERT_TRUE(relational.ok()) << relational.status().ToString();

  ParseOptions standard;
  standard.xpath_paper_axes = false;
  Result<PlanPtr> rejected =
      cache.GetOrCompile(Language::kXPath, "/Child+::a", standard);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kParseError);
  EXPECT_FALSE(cache.Lookup(Language::kXPath, "/Child+::a", standard)
                   .has_value());

  // max_nesting is keyed too: the same deep text compiles under the
  // default depth and fails under a tiny one, independently cached.
  const std::string deep = "//a[b[b[b[c]]]]";
  ASSERT_TRUE(cache.GetOrCompile(Language::kXPath, deep).ok());
  ParseOptions shallow;
  shallow.max_nesting = 2;
  ASSERT_FALSE(cache.GetOrCompile(Language::kXPath, deep, shallow).ok());
  EXPECT_TRUE(cache.Lookup(Language::kXPath, deep).has_value());

  // The plan remembers the dialect it was compiled under, and Insert
  // files it under that dialect's key.
  EXPECT_TRUE(relational.value()->parse_options().xpath_paper_axes);
  PlanCache fresh(4);
  fresh.Insert(relational.value());
  EXPECT_TRUE(
      fresh.Lookup(Language::kXPath, "/Child+::a", paper).has_value());
  EXPECT_FALSE(fresh.Lookup(Language::kXPath, "/Child+::a", standard)
                   .has_value());
}

TEST(PlanCacheTest, ConcurrentGetOrCompile) {
  PlanCache cache(16);
  std::vector<std::string> queries = {"//a", "//b", "//c", "//d"};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, &queries] {
      for (int i = 0; i < 200; ++i) {
        auto r = cache.GetOrCompile(Language::kXPath, queries[i % 4]);
        ASSERT_TRUE(r.ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.hits() + cache.misses(), 8u * 200u);
  EXPECT_GE(cache.hits(), 8u * 200u - 8u * 4u);  // at most one miss per (thread, key)
}

TEST(ExecutorTest, SingleRequest) {
  DocumentPtr doc = Catalog();
  PlanPtr plan =
      Plan::Compile(Language::kXPath, "//review/rating5").value();
  Executor exec(Executor::Options{.num_workers = 2, .queue_capacity = 8});
  EXPECT_EQ(exec.num_workers(), 2);
  std::future<Result<QueryResult>> f = exec.Submit({plan, doc, {}}).future;
  Result<QueryResult> r = f.get();
  ASSERT_TRUE(r.ok());
  auto ast = xpath::ParseXPath("//review/rating5").value();
  EXPECT_EQ(r->nodes(), xpath::EvalQueryFromRoot(*doc, *ast));
}

TEST(ExecutorTest, NullPlanOrDocumentFailsCleanly) {
  DocumentPtr doc = Catalog();
  PlanPtr plan = Plan::Compile(Language::kXPath, "//a").value();
  Executor exec(Executor::Options{.num_workers = 1, .queue_capacity = 4});
  EXPECT_EQ(exec.Submit({nullptr, doc, {}}).future.get().status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(exec.Submit({plan, nullptr, {}}).future.get().status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ExecutorTest, MixedBatchMatchesSequentialEvaluation) {
  std::vector<DocumentPtr> docs = {Catalog(1), Catalog(2), Catalog(3)};
  std::vector<PlanPtr> plans = {
      Plan::Compile(Language::kXPath, "//product[reviews]/name").value(),
      Plan::Compile(Language::kCq,
                    "Q() :- Child+(x, y), Lab_product(x), Lab_rating1(y).")
          .value(),
      Plan::Compile(Language::kDatalog,
                    "P(x) :- Lab_para(x).\n?- P.").value(),
      Plan::Compile(Language::kFo,
                    "exists x . Lab_price(x)").value(),
  };

  std::vector<Request> requests;
  for (size_t d = 0; d < docs.size(); ++d) {
    for (size_t p = 0; p < plans.size(); ++p) {
      requests.push_back(Request{plans[p], docs[d]});
    }
  }

  Executor exec(Executor::Options{.num_workers = 4, .queue_capacity = 4});
  std::vector<Result<QueryResult>> results = exec.RunBatch(requests);
  ASSERT_EQ(results.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
    Result<QueryResult> expected =
        requests[i].plan->Run(*requests[i].document);
    ASSERT_TRUE(expected.ok());
    // The variant compares shape tag and payload in one go.
    EXPECT_EQ(results[i]->value, expected->value);
  }
}

TEST(ExecutorTest, ManyRequestsThroughSmallQueue) {
  // More requests than queue slots: Submit must backpressure, not deadlock
  // or drop.
  DocumentPtr doc = Catalog(5, 10);
  PlanPtr plan = Plan::Compile(Language::kXPath, "//name").value();
  Executor exec(Executor::Options{.num_workers = 3, .queue_capacity = 2});
  std::vector<std::future<Result<QueryResult>>> futures;
  for (int i = 0; i < 200; ++i) futures.push_back(exec.Submit({plan, doc, {}}).future);
  int expected = -1;
  for (auto& f : futures) {
    Result<QueryResult> r = f.get();
    ASSERT_TRUE(r.ok());
    if (expected < 0) expected = r->nodes().size();
    EXPECT_EQ(r->nodes().size(), expected);
  }
}

#ifndef TREEQ_OBS_DISABLED
// Counter exactness only holds when the TREEQ_OBS_* macros are live.
TEST(ExecutorTest, StatsMergedWhenFuturesReady) {
  obs::StatsRegistry& reg = obs::StatsRegistry::Global();
  reg.Reset();
  DocumentPtr doc = Catalog();
  PlanPtr plan = Plan::Compile(Language::kXPath, "//name").value();
  constexpr int kRequests = 50;
  {
    Executor exec(Executor::Options{.num_workers = 4, .queue_capacity = 16});
    std::vector<Request> requests(kRequests, Request{plan, doc});
    auto results = exec.RunBatch(std::move(requests));
    ASSERT_EQ(results.size(), static_cast<size_t>(kRequests));
    // All futures ready => every worker's shadow deltas are merged.
    EXPECT_EQ(reg.CounterValue("engine.exec.requests"),
              static_cast<uint64_t>(kRequests));
    EXPECT_EQ(reg.CounterValue("engine.exec.xpath_requests"),
              static_cast<uint64_t>(kRequests));
    EXPECT_EQ(reg.CounterValue("engine.exec.errors"), 0u);
  }
  EXPECT_EQ(reg.CounterValue("engine.plan.runs"),
            static_cast<uint64_t>(kRequests));
}
#endif  // TREEQ_OBS_DISABLED

TEST(ExecutorTest, SubmitAfterShutdownFails) {
  DocumentPtr doc = Catalog(7, 5);
  PlanPtr plan = Plan::Compile(Language::kXPath, "//a").value();
  auto exec = std::make_unique<Executor>(
      Executor::Options{.num_workers = 1, .queue_capacity = 2});
  // Exercise normal path, then destroy and verify nothing hangs. (Submit
  // after destruction is UB like any use-after-free; what we guarantee is
  // that destruction itself drains cleanly with requests in flight.)
  std::vector<std::future<Result<QueryResult>>> futures;
  for (int i = 0; i < 20; ++i) futures.push_back(exec->Submit({plan, doc, {}}).future);
  exec.reset();  // close + drain + join
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
}

TEST(ExecutorTest, SubmitAfterExplicitShutdownReturnsUnavailable) {
  DocumentPtr doc = Catalog(7, 5);
  PlanPtr plan = Plan::Compile(Language::kXPath, "//a").value();
  Executor exec(Executor::Options{.num_workers = 2, .queue_capacity = 4});
  ASSERT_TRUE(exec.Submit({plan, doc, {}}).future.get().ok());
  exec.Shutdown();
  exec.Shutdown();  // idempotent

  // Unbounded and bounded requests alike: an already-failed future, never
  // a hang or a broken promise.
  Result<QueryResult> plain = exec.Submit({plan, doc, {}}).future.get();
  ASSERT_FALSE(plain.ok());
  EXPECT_EQ(plain.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(plain.status().message().find("shut down"), std::string::npos);

  Submission bounded = exec.Submit({plan, doc, SubmitOptions{}});
  Result<QueryResult> r = bounded.future.get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
}

TEST(ExecutorTest, ConcurrentSubmitAndShutdownNeverBreaksPromises) {
  // Race many Submits against Shutdown: every future must complete with
  // either a real result or Unavailable — a broken promise would throw.
  DocumentPtr doc = Catalog(7, 5);
  PlanPtr plan = Plan::Compile(Language::kXPath, "//name").value();
  for (int round = 0; round < 20; ++round) {
    Executor exec(Executor::Options{.num_workers = 2, .queue_capacity = 2});
    std::vector<std::future<Result<QueryResult>>> futures;
    std::mutex mu;
    std::vector<std::thread> submitters;
    for (int t = 0; t < 4; ++t) {
      submitters.emplace_back([&] {
        for (int i = 0; i < 10; ++i) {
          SubmitOptions opts;
          opts.reject_when_full = true;  // non-blocking: can race Shutdown
          Submission s = exec.Submit({plan, doc, opts});
          std::lock_guard<std::mutex> lock(mu);
          futures.push_back(std::move(s.future));
        }
      });
    }
    exec.Shutdown();
    for (auto& th : submitters) th.join();
    for (auto& f : futures) {
      Result<QueryResult> r = f.get();  // must not throw
      if (!r.ok()) {
        EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
      }
    }
  }
}

TEST(ExecutorTest, AdmissionControlRejectsWhenSaturated) {
  DocumentPtr doc = Catalog(3, 60);
  PlanPtr plan =
      Plan::Compile(Language::kXPath, "//product[reviews]//rating5").value();
  // One worker, one queue slot: pile on non-blocking submits until at
  // least one is rejected, without ever blocking the test thread.
  Executor exec(Executor::Options{.num_workers = 1, .queue_capacity = 1});
  SubmitOptions opts;
  opts.reject_when_full = true;
  std::vector<Submission> submissions;
  int rejected = 0;
  for (int i = 0; i < 64; ++i) {
    submissions.push_back(exec.Submit({plan, doc, opts}));
  }
  for (auto& s : submissions) {
    Result<QueryResult> r = s.future.get();
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
      EXPECT_NE(r.status().message().find("full"), std::string::npos);
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
}

TEST(ExecutorTest, DeadlineExceededPromptly) {
  // A deliberately expensive request (naive FO evaluation over a sizable
  // document) with a 10ms deadline must come back DeadlineExceeded, and
  // promptly: well before the seconds it would take to finish.
  DocumentPtr doc = Catalog(11, 300);
  PlanPtr plan =
      Plan::Compile(Language::kFo,
                    "forall x . forall y . forall z . "
                    "(not Child(x, y) or not Child(y, z) or not Lab_zzz(x))")
          .value();
  Executor exec(Executor::Options{.num_workers = 1, .queue_capacity = 4});
  SubmitOptions opts;
  opts.timeout = std::chrono::milliseconds(10);
  auto start = std::chrono::steady_clock::now();
  Submission s = exec.Submit({plan, doc, opts});
  Result<QueryResult> r = s.future.get();
  auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  // "Promptly": an order of magnitude headroom over the 2x-deadline
  // acceptance bar would flake under CI scheduling noise, so allow 50x —
  // still thousands of times shorter than running to completion.
  EXPECT_LT(elapsed, std::chrono::milliseconds(500));
}

TEST(ExecutorTest, CancelledFutureNeverDeliversAResult) {
  DocumentPtr doc = Catalog(13, 300);
  PlanPtr plan =
      Plan::Compile(Language::kFo,
                    "forall x . forall y . forall z . "
                    "(not Child(x, y) or not Child(y, z) or not Lab_zzz(x))")
          .value();
  Executor exec(Executor::Options{.num_workers = 1, .queue_capacity = 4});
  SubmitOptions opts;
  opts.visit_budget = UINT64_MAX - 1;  // bounded context, huge budget
  Submission s = exec.Submit({plan, doc, opts});
  s.Cancel();  // may land before, during, or after the worker picks it up
  Result<QueryResult> r = s.future.get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

TEST(ExecutorTest, VisitBudgetIsDeterministicAcrossSubmissions) {
  DocumentPtr doc = Catalog(17, 40);
  PlanPtr plan =
      Plan::Compile(Language::kXPath, "//product[reviews/review]/name")
          .value();
  Executor exec(Executor::Options{.num_workers = 2, .queue_capacity = 8});

  // Meter the true cost once, then check the boundary is exact and stable.
  SubmitOptions metered;
  metered.visit_budget = UINT64_MAX - 1;
  Submission probe = exec.Submit({plan, doc, metered});
  ASSERT_TRUE(probe.future.get().ok());
  const uint64_t cost = probe.context->visits_used();
  ASSERT_GT(cost, 0u);

  for (int run = 0; run < 5; ++run) {
    SubmitOptions enough;
    enough.visit_budget = cost;
    EXPECT_TRUE(exec.Submit({plan, doc, enough}).future.get().ok()) << run;

    SubmitOptions starved;
    starved.visit_budget = cost - 1;
    Result<QueryResult> r = exec.Submit({plan, doc, starved}).future.get();
    ASSERT_FALSE(r.ok()) << run;
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  }
}

TEST(ExecutorTest, DegradedFallbackStreamsUnderTinyBudget) {
  // On a deep all-"a" chain, every step of //a//a//a//a carries a context
  // of ~n nodes, so the set-at-a-time evaluator charges several times more
  // than the streaming evaluator's one-unit-per-event pass. That gap is
  // where graceful degradation pays off.
  DocumentPtr doc = MakeDocumentWithOrders(Chain(2000, "a"));
  PlanPtr plan = Plan::Compile(Language::kXPath, "//a//a//a//a").value();
  ASSERT_TRUE(plan->stream_capable());
  NodeSet expected = plan->Run(*doc).value().nodes();

  Executor exec(Executor::Options{.num_workers = 1, .queue_capacity = 4});

  // Meter the set-at-a-time cost (a huge budget never predicts blowup, so
  // no degradation happens on the probe).
  SubmitOptions metered;
  metered.visit_budget = UINT64_MAX - 1;
  Submission probe = exec.Submit({plan, doc, metered});
  ASSERT_TRUE(probe.future.get().ok());
  const uint64_t cost = probe.context->visits_used();

  // Just under the in-memory cost: without degradation the request dies.
  SubmitOptions opts;
  opts.visit_budget = cost - 1;
  Result<QueryResult> hard = exec.Submit({plan, doc, opts}).future.get();
  ASSERT_FALSE(hard.ok());
  EXPECT_EQ(hard.status().code(), StatusCode::kResourceExhausted);

  // With degradation the classifier routes the same budget to the
  // streaming evaluator, which fits comfortably and produces the exact
  // answer, flagged as degraded.
  opts.allow_degraded = true;
  Result<QueryResult> soft = exec.Submit({plan, doc, opts}).future.get();
  ASSERT_TRUE(soft.ok()) << soft.status().ToString();
  EXPECT_TRUE(soft->degraded);
  EXPECT_EQ(soft->nodes(), expected);

  // Negation is outside the conjunctive forward-rewrite fragment, so such
  // a plan is not stream-capable and cannot degrade.
  PlanPtr opaque =
      Plan::Compile(Language::kXPath, "//review[not(b)]").value();
  EXPECT_FALSE(opaque->stream_capable());
}

#ifndef TREEQ_OBS_DISABLED
TEST(ExecutorTest, BoundedExecutionCountersExported) {
  obs::StatsRegistry& reg = obs::StatsRegistry::Global();
  reg.Reset();
  DocumentPtr doc = Catalog(23, 100);
  PlanPtr plan =
      Plan::Compile(Language::kXPath, "//product[reviews]//rating5").value();
  {
    Executor exec(Executor::Options{.num_workers = 1, .queue_capacity = 1});

    SubmitOptions starved;
    starved.visit_budget = 1;
    EXPECT_FALSE(exec.Submit({plan, doc, starved}).future.get().ok());

    SubmitOptions late;
    late.timeout = std::chrono::nanoseconds(1);
    Result<QueryResult> r = exec.Submit({plan, doc, late}).future.get();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);

    SubmitOptions reject;
    reject.reject_when_full = true;
    std::vector<Submission> burst;
    for (int i = 0; i < 64; ++i) {
      burst.push_back(exec.Submit({plan, doc, reject}));
    }
    for (auto& s : burst) s.future.get();
  }
  EXPECT_GE(reg.CounterValue("exec.budget_exhausted"), 1u);
  EXPECT_GE(reg.CounterValue("exec.deadline_exceeded"), 1u);
  EXPECT_GE(reg.CounterValue("engine.rejected"), 1u);

  // The JSON export carries all three names.
  std::ostringstream json;
  reg.DumpJson(json);
  EXPECT_NE(json.str().find("\"exec.budget_exhausted\""), std::string::npos);
  EXPECT_NE(json.str().find("\"exec.deadline_exceeded\""), std::string::npos);
  EXPECT_NE(json.str().find("\"engine.rejected\""), std::string::npos);
}
#endif  // TREEQ_OBS_DISABLED

TEST(PlanTest, ExplainAndRouteNameClassifyAtCompileTime) {
  PlanPtr streamable = Plan::Compile(Language::kXPath, "//a//b").value();
  EXPECT_EQ(std::string(streamable->route_name()), "xpath.set_at_a_time");
  EXPECT_NE(streamable->Explain().find("stream fallback available"),
            std::string::npos)
      << streamable->Explain();
  EXPECT_NE(streamable->Explain().find("est. visits"), std::string::npos);
  EXPECT_GT(streamable->compile_ns(), 0u);

  PlanPtr opaque = Plan::Compile(Language::kXPath, "//a[not(b)]").value();
  EXPECT_NE(opaque->Explain().find("no stream fallback"), std::string::npos);

  PlanPtr tractable =
      Plan::Compile(Language::kCq,
                    "Q() :- Child+(x, y), Lab_a(x), Lab_b(y).")
          .value();
  EXPECT_EQ(std::string(tractable->route_name()), "cq.x_property");
  EXPECT_NE(tractable->Explain().find("X-property"), std::string::npos);

  PlanPtr hard = Plan::Compile(
      Language::kCq,
      "Q() :- Child(x, y), Child(y, z), Child+(x, z).").value();
  EXPECT_EQ(std::string(hard->route_name()), "cq.backtracking");
  EXPECT_NE(hard->Explain().find("backtracking"), std::string::npos);

  PlanPtr naive =
      Plan::Compile(Language::kFo, "forall x . not Lab_z(x)").value();
  EXPECT_EQ(std::string(naive->route_name()), "fo.naive");
  EXPECT_NE(naive->Explain().find("negation"), std::string::npos);
}

TEST(PlanTest, RunReportsTheEngineThatAnswered) {
  DocumentPtr doc = Catalog();
  PlanPtr xp = Plan::Compile(Language::kXPath, "//name").value();
  EXPECT_EQ(std::string(xp->Run(*doc)->engine), "xpath.set_at_a_time");
  PlanPtr bool_cq =
      Plan::Compile(Language::kCq,
                    "Q() :- Child+(x, y), Lab_product(x), Lab_review(y).")
          .value();
  EXPECT_EQ(std::string(bool_cq->Run(*doc)->engine), "cq.x_property");
  // The router may honestly send a positive FO sentence to a cheaper
  // cross-language engine; whatever it picks must be one it declared
  // eligible. Forcing the native route pins the fo.corollary52 label.
  PlanPtr fo = Plan::Compile(Language::kFo, "exists x . Lab_name(x)").value();
  QueryResult routed = fo->Run(*doc).value();
  bool eligible = false;
  for (plan::EngineKind kind : fo->EligibleEngines()) {
    if (std::string(routed.engine) == plan::EngineName(kind)) eligible = true;
  }
  EXPECT_TRUE(eligible) << routed.engine;
  ExecContext unbounded;
  ExecuteOptions pinned;
  pinned.force_route = "fo.corollary52";
  EXPECT_EQ(std::string(fo->Execute(*doc, unbounded, pinned)->engine),
            "fo.corollary52");
}

TEST(PlanCacheTest, GetOrCompileReportsHits) {
  PlanCache cache(4);
  bool hit = true;
  ASSERT_TRUE(cache.GetOrCompile(Language::kXPath, "//a", &hit).ok());
  EXPECT_FALSE(hit);
  ASSERT_TRUE(cache.GetOrCompile(Language::kXPath, "//a", &hit).ok());
  EXPECT_TRUE(hit);
  // A compile failure is a miss, reported as such.
  ASSERT_FALSE(cache.GetOrCompile(Language::kXPath, "//a[", &hit).ok());
  EXPECT_FALSE(hit);
}

#ifndef TREEQ_OBS_DISABLED

/// RAII guard: enables the global flight recorder for one test, disables
/// and clears it on exit so later tests see it off again.
class ScopedGlobalRecorder {
 public:
  explicit ScopedGlobalRecorder(obs::FlightRecorder::Options options) {
    obs::FlightRecorder::Global().Enable(options);
  }
  ~ScopedGlobalRecorder() {
    obs::FlightRecorder::Global().Disable();
    obs::FlightRecorder::Global().Clear();
  }
};

// The acceptance scenario for per-query profiles: a cold-compiled query
// that degrades to the streaming fallback yields a profile with all three
// wall times, the fallback engine name, and the compile-time explanation.
TEST(ExecutorTest, ProfileCapturesColdDegradedQuery) {
  obs::StatsRegistry::Global().Reset();
  const std::string query = "//a//a//a//a";
  DocumentPtr doc = MakeDocumentWithOrders(Chain(2000, "a"), "chain2000");
  EXPECT_EQ(doc->name(), "chain2000");

  PlanCache cache(4);
  bool hit = true;
  PlanPtr plan = cache.GetOrCompile(Language::kXPath, query, &hit).value();
  ASSERT_FALSE(hit);
  PlanPtr filler = Plan::Compile(Language::kXPath, "//a").value();

  Executor exec(Executor::Options{.num_workers = 1, .queue_capacity = 8});

  // Meter the set-at-a-time cost before turning the recorder on.
  SubmitOptions metered;
  metered.visit_budget = UINT64_MAX - 1;
  Submission probe = exec.Submit({plan, doc, metered});
  ASSERT_TRUE(probe.future.get().ok());
  const uint64_t cost = probe.context->visits_used();
  ASSERT_GT(cost, 0u);

  obs::FlightRecorder::Options rec_options;
  rec_options.slow_threshold_ns = 1;  // everything lands in the slow ring
  ScopedGlobalRecorder recorder(rec_options);

  // A filler request ahead of the probe on the single worker guarantees
  // the probed request actually waits in the queue.
  std::future<Result<QueryResult>> filler_future = exec.Submit({filler, doc, {}}).future;
  SubmitOptions opts;
  opts.visit_budget = cost - 1;  // forces the degradation classifier
  opts.allow_degraded = true;
  opts.plan_cache_hit = hit;  // false: this request paid the compile
  Submission s = exec.Submit({plan, doc, opts});
  ASSERT_TRUE(filler_future.get().ok());
  Result<QueryResult> r = s.future.get();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(r->degraded);

  const obs::QueryProfile* profile = nullptr;
  std::vector<obs::QueryProfile> recent =
      obs::FlightRecorder::Global().Recent();
  for (const obs::QueryProfile& p : recent) {
    if (p.engine == "xpath.stream") profile = &p;
  }
  ASSERT_NE(profile, nullptr) << recent.size();
  EXPECT_GT(profile->id, 0u);
  EXPECT_EQ(profile->language, "xpath");
  EXPECT_EQ(profile->query, query);
  EXPECT_EQ(profile->query_hash, obs::HashQueryText(query));
  EXPECT_EQ(profile->document, "chain2000");
  EXPECT_TRUE(profile->degraded);
  EXPECT_FALSE(profile->cache_hit);
  EXPECT_TRUE(profile->ok);
  EXPECT_EQ(profile->status, "OK");
  EXPECT_GT(profile->queue_wait_ns, 0u);
  EXPECT_GT(profile->compile_ns, 0u);
  EXPECT_GT(profile->execute_ns, 0u);
  EXPECT_GT(profile->visits, 0u);
  EXPECT_EQ(profile->estimated_visits, plan->EstimatedVisits(*doc));
  EXPECT_NE(profile->explain.find("stream fallback available"),
            std::string::npos)
      << profile->explain;

  // total_ns >= 1, so the same profile is retained as a slow query.
  bool in_slow_ring = false;
  for (const obs::QueryProfile& p : obs::FlightRecorder::Global().Slow()) {
    if (p.id == profile->id) in_slow_ring = true;
  }
  EXPECT_TRUE(in_slow_ring);
}

TEST(ExecutorTest, ProfileReportsCacheHitsCompileFree) {
  DocumentPtr doc = Catalog();
  PlanCache cache(4);
  bool hit = false;
  PlanPtr cold = cache.GetOrCompile(Language::kXPath, "//name", &hit).value();
  PlanPtr warm = cache.GetOrCompile(Language::kXPath, "//name", &hit).value();
  ASSERT_TRUE(hit);

  obs::FlightRecorder::Options rec_options;
  rec_options.slow_threshold_ns = UINT64_MAX;
  ScopedGlobalRecorder recorder(rec_options);

  Executor exec(Executor::Options{.num_workers = 1, .queue_capacity = 8});
  SubmitOptions opts;
  opts.plan_cache_hit = hit;
  ASSERT_TRUE(exec.Submit({warm, doc, opts}).future.get().ok());

  std::vector<obs::QueryProfile> recent =
      obs::FlightRecorder::Global().Recent();
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_TRUE(recent[0].cache_hit);
  EXPECT_EQ(recent[0].compile_ns, 0u);  // the hit did not pay compilation
  EXPECT_GT(cold->compile_ns(), 0u);    // though the plan itself did
  EXPECT_EQ(recent[0].engine, "xpath.set_at_a_time");
}

TEST(ExecutorTest, ProfilesAttributeWorkCounters) {
  obs::StatsRegistry::Global().Reset();
  DocumentPtr doc = Catalog(29, 80);
  // A descendant step makes the evaluator scan NodeSet words; the label
  // index serves the leading label lookups. Both must show up as this
  // request's deltas.
  PlanPtr plan =
      Plan::Compile(Language::kXPath, "//product[reviews]//rating5").value();

  obs::FlightRecorder::Options rec_options;
  rec_options.slow_threshold_ns = UINT64_MAX;
  ScopedGlobalRecorder recorder(rec_options);

  Executor exec(Executor::Options{.num_workers = 1, .queue_capacity = 8});
  SubmitOptions opts;
  opts.visit_budget = UINT64_MAX - 1;
  ASSERT_TRUE(exec.Submit({plan, doc, opts}).future.get().ok());

  std::vector<obs::QueryProfile> recent =
      obs::FlightRecorder::Global().Recent();
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_GT(recent[0].words_scanned, 0u);
  EXPECT_GT(recent[0].label_index_hits, 0u);
  // The deltas never exceed the registry totals they were carved from.
  obs::StatsRegistry& reg = obs::StatsRegistry::Global();
  EXPECT_LE(recent[0].words_scanned,
            reg.CounterValue("axes.words_scanned"));
  EXPECT_LE(recent[0].label_index_hits,
            reg.CounterValue("labelindex.hits"));
}

TEST(ExecutorTest, QueueWaitAndExecuteHistogramsRecorded) {
  obs::StatsRegistry& reg = obs::StatsRegistry::Global();
  reg.Reset();
  DocumentPtr doc = Catalog(31, 20);
  PlanPtr plan = Plan::Compile(Language::kXPath, "//name").value();
  constexpr int kRequests = 10;
  {
    Executor exec(Executor::Options{.num_workers = 2, .queue_capacity = 8});
    std::vector<Request> requests(kRequests, Request{plan, doc});
    for (auto& r : exec.RunBatch(std::move(requests))) ASSERT_TRUE(r.ok());
  }
  auto histograms = reg.HistogramValues();
  ASSERT_TRUE(histograms.count("engine.queue_wait_ns"));
  ASSERT_TRUE(histograms.count("engine.execute_ns"));
  EXPECT_EQ(histograms.at("engine.queue_wait_ns").count,
            static_cast<uint64_t>(kRequests));
  EXPECT_EQ(histograms.at("engine.execute_ns").count,
            static_cast<uint64_t>(kRequests));
  EXPECT_GT(histograms.at("engine.execute_ns").sum, 0u);
}

TEST(ExecutorTest, BoundedRequestsAggregateVisitCounter) {
  obs::StatsRegistry& reg = obs::StatsRegistry::Global();
  reg.Reset();
  DocumentPtr doc = Catalog(37, 20);
  PlanPtr plan = Plan::Compile(Language::kXPath, "//name").value();
  Executor exec(Executor::Options{.num_workers = 1, .queue_capacity = 8});
  SubmitOptions opts;
  opts.visit_budget = UINT64_MAX - 1;
  Submission s = exec.Submit({plan, doc, opts});
  ASSERT_TRUE(s.future.get().ok());
  EXPECT_EQ(reg.CounterValue("exec.visits"), s.context->visits_used());
  EXPECT_GT(reg.CounterValue("exec.visits"), 0u);
}

#endif  // TREEQ_OBS_DISABLED

}  // namespace
}  // namespace engine
}  // namespace treeq
