#include "tree/generator.h"

#include <gtest/gtest.h>

#include "tree/orders.h"
#include "util/random.h"

namespace treeq {
namespace {

TEST(GeneratorTest, RandomTreeHasRequestedSize) {
  Rng rng(1);
  RandomTreeOptions opts;
  opts.num_nodes = 137;
  Tree t = RandomTree(&rng, opts);
  EXPECT_EQ(t.num_nodes(), 137);
  EXPECT_TRUE(t.IsRoot(t.root()));
}

TEST(GeneratorTest, RandomTreeIsDeterministicPerSeed) {
  RandomTreeOptions opts;
  opts.num_nodes = 64;
  Rng rng1(42), rng2(42), rng3(43);
  Tree a = RandomTree(&rng1, opts);
  Tree b = RandomTree(&rng2, opts);
  Tree c = RandomTree(&rng3, opts);
  bool same_ab = true, same_ac = true;
  for (NodeId n = 0; n < 64; ++n) {
    same_ab = same_ab && a.parent(n) == b.parent(n);
    same_ac = same_ac && a.parent(n) == c.parent(n);
  }
  EXPECT_TRUE(same_ab);
  EXPECT_FALSE(same_ac);  // different seed, overwhelmingly different shape
}

TEST(GeneratorTest, AttachWindowOneIsChain) {
  Rng rng(5);
  RandomTreeOptions opts;
  opts.num_nodes = 30;
  opts.attach_window = 1;
  Tree t = RandomTree(&rng, opts);
  EXPECT_EQ(t.Depth(), 29);
}

TEST(GeneratorTest, SecondLabelProbability) {
  Rng rng(7);
  RandomTreeOptions opts;
  opts.num_nodes = 500;
  opts.second_label_prob = 1.0;
  Tree t = RandomTree(&rng, opts);
  int multi = 0;
  for (NodeId n = 1; n < t.num_nodes(); ++n) {
    if (t.labels(n).size() >= 2) ++multi;
  }
  // With prob 1 every non-root draws a second label; it may collide with the
  // first (alphabet of 3), in which case it is deduplicated.
  EXPECT_GT(multi, 250);
}

TEST(GeneratorTest, ChainShape) {
  Tree t = Chain(6, "a", "b");
  EXPECT_EQ(t.num_nodes(), 6);
  EXPECT_EQ(t.Depth(), 5);
  EXPECT_TRUE(t.HasLabel(0, "a"));
  EXPECT_TRUE(t.HasLabel(1, "b"));
  EXPECT_TRUE(t.HasLabel(2, "a"));
  for (NodeId n = 0; n + 1 < 6; ++n) EXPECT_EQ(t.first_child(n), n + 1);
}

TEST(GeneratorTest, StarShape) {
  Tree t = Star(5);
  EXPECT_EQ(t.num_nodes(), 5);
  EXPECT_EQ(t.Depth(), 1);
  EXPECT_EQ(t.NumChildren(t.root()), 4);
}

TEST(GeneratorTest, BalancedTreeSize) {
  Tree t = BalancedTree(3, 2, {"x"});
  EXPECT_EQ(t.num_nodes(), 15);  // 1 + 2 + 4 + 8
  EXPECT_EQ(t.Depth(), 3);
  Tree t3 = BalancedTree(2, 3, {});
  EXPECT_EQ(t3.num_nodes(), 13);  // 1 + 3 + 9
}

TEST(GeneratorTest, BalancedTreeLabelsByDepth) {
  Tree t = BalancedTree(2, 2, {"d0", "d1", "d2"});
  TreeOrders o = ComputeOrders(t);
  for (NodeId n = 0; n < t.num_nodes(); ++n) {
    EXPECT_TRUE(t.HasLabel(n, "d" + std::to_string(o.depth[n])));
  }
}

TEST(GeneratorTest, CaterpillarShape) {
  Tree t = Caterpillar(4, 3);
  EXPECT_EQ(t.num_nodes(), 4 + 4 * 3);
  EXPECT_EQ(t.Depth(), 4);  // spine of 4 (depths 0..3) + legs one deeper
  EXPECT_EQ(t.NumChildren(t.root()), 4);  // 3 legs + next spine node
}

TEST(GeneratorTest, CatalogStructure) {
  Rng rng(11);
  CatalogOptions opts;
  opts.num_products = 20;
  Tree t = CatalogDocument(&rng, opts);
  EXPECT_TRUE(t.HasLabel(t.root(), "catalog"));
  LabelId product = t.label_table().Lookup("product");
  ASSERT_NE(product, kNullLabel);
  std::vector<NodeId> products = t.NodesWithLabel(product);
  EXPECT_EQ(products.size(), 20u);
  for (NodeId p : products) {
    EXPECT_EQ(t.parent(p), t.root());
    // Every product has name and price as its first two children.
    NodeId name = t.first_child(p);
    ASSERT_NE(name, kNullNode);
    EXPECT_TRUE(t.HasLabel(name, "name"));
    NodeId price = t.next_sibling(name);
    ASSERT_NE(price, kNullNode);
    EXPECT_TRUE(t.HasLabel(price, "price"));
  }
}

TEST(GeneratorTest, CatalogReviewsHaveRatings) {
  Rng rng(13);
  CatalogOptions opts;
  opts.num_products = 50;
  Tree t = CatalogDocument(&rng, opts);
  LabelId review = t.label_table().Lookup("review");
  ASSERT_NE(review, kNullLabel);
  for (NodeId r : t.NodesWithLabel(review)) {
    NodeId rating = t.first_child(r);
    ASSERT_NE(rating, kNullNode);
    const std::string& name = t.label_table().Name(t.label(rating));
    EXPECT_TRUE(name.starts_with("rating")) << name;
  }
}

}  // namespace
}  // namespace treeq
