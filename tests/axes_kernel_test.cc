// Randomized differential tests for the packed-word NodeSet and the
// word-parallel AxisImage kernels (tree/node_set.h, tree/axes.cc): every
// operation is checked against a naive std::set<NodeId> reference built
// from AxisHolds pair tests, over all 17 axes and three tree shapes
// (random attach, deep path, wide flat), including universes at and around
// multiples of 64 to exercise the tail-masking edge cases.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "tree/axes.h"
#include "tree/generator.h"
#include "tree/node_set.h"
#include "tree/orders.h"
#include "util/random.h"

namespace treeq {
namespace {

const Axis kAllAxes[] = {
    Axis::kSelf,
    Axis::kChild,
    Axis::kParent,
    Axis::kDescendant,
    Axis::kAncestor,
    Axis::kDescendantOrSelf,
    Axis::kAncestorOrSelf,
    Axis::kNextSibling,
    Axis::kPrevSibling,
    Axis::kFollowingSibling,
    Axis::kPrecedingSibling,
    Axis::kFollowingSiblingOrSelf,
    Axis::kPrecedingSiblingOrSelf,
    Axis::kFollowing,
    Axis::kPreceding,
    Axis::kFirstChild,
    Axis::kFirstChildInv,
};

// Universe sizes crossing the 64-bit word boundaries: exactly one word,
// one-short / one-past a word, multiple words, and a tiny universe.
const int kUniverseSizes[] = {1, 5, 63, 64, 65, 127, 128, 130, 192};

std::set<NodeId> ReferenceImage(const Tree& t, const TreeOrders& o, Axis axis,
                                const std::set<NodeId>& from) {
  std::set<NodeId> out;
  for (NodeId u : from) {
    for (NodeId v = 0; v < t.num_nodes(); ++v) {
      if (AxisHolds(t, o, axis, u, v)) out.insert(v);
    }
  }
  return out;
}

std::set<NodeId> RandomSubset(Rng* rng, int n, double density) {
  std::set<NodeId> s;
  for (NodeId v = 0; v < n; ++v) {
    if (rng->Bernoulli(density)) s.insert(v);
  }
  return s;
}

void CheckAllAxes(const Tree& t, Rng* rng, const char* shape) {
  const int n = t.num_nodes();
  const TreeOrders o = ComputeOrders(t);
  std::vector<std::set<NodeId>> inputs;
  inputs.push_back({});                           // empty
  inputs.push_back({t.root()});                   // singleton root
  inputs.push_back({static_cast<NodeId>(n - 1)});  // singleton last node
  std::set<NodeId> all;
  for (NodeId v = 0; v < n; ++v) all.insert(v);
  inputs.push_back(all);                          // full universe
  for (double density : {0.05, 0.3, 0.8}) {
    inputs.push_back(RandomSubset(rng, n, density));
  }
  for (Axis axis : kAllAxes) {
    for (const std::set<NodeId>& from_ref : inputs) {
      NodeSet from(n);
      for (NodeId v : from_ref) from.Insert(v);
      NodeSet got(n);
      AxisImage(t, o, axis, from, &got);
      const std::set<NodeId> want = ReferenceImage(t, o, axis, from_ref);
      NodeSet want_set(n);
      for (NodeId v : want) want_set.Insert(v);
      EXPECT_EQ(got.size(), static_cast<int>(want.size()))
          << shape << " n=" << n << " axis=" << AxisName(axis)
          << " |from|=" << from_ref.size();
      EXPECT_TRUE(got == want_set)
          << shape << " n=" << n << " axis=" << AxisName(axis)
          << " |from|=" << from_ref.size();
      // Cross-check member enumeration against the reference order.
      std::vector<NodeId> got_members = got.ToVector();
      EXPECT_TRUE(std::equal(got_members.begin(), got_members.end(),
                             want.begin(), want.end()))
          << shape << " n=" << n << " axis=" << AxisName(axis);
    }
  }
}

TEST(AxesKernelTest, DifferentialRandomTrees) {
  Rng rng(1234);
  for (int n : kUniverseSizes) {
    RandomTreeOptions opts;
    opts.num_nodes = n;
    opts.attach_window = 4;  // non-pre-order node ids: remap path
    opts.alphabet = {"a", "b"};
    Tree t = RandomTree(&rng, opts);
    CheckAllAxes(t, &rng, "random");
  }
}

TEST(AxesKernelTest, DifferentialDeepPaths) {
  Rng rng(99);
  for (int n : kUniverseSizes) {
    Tree t = Chain(n, "a", "b");
    CheckAllAxes(t, &rng, "chain");
  }
}

TEST(AxesKernelTest, DifferentialWideFlat) {
  Rng rng(7);
  for (int n : kUniverseSizes) {
    if (n < 2) continue;  // Star needs a root plus at least one leaf
    Tree t = Star(n);
    CheckAllAxes(t, &rng, "star");
  }
}

// The RandomTree generator attaches children to arbitrary earlier nodes, so
// node ids need not equal pre ranks; the kernels must hit the remap path.
TEST(AxesKernelTest, RandomTreesExerciseNonIdentityPreOrder) {
  Rng rng(4321);
  bool saw_non_identity = false;
  for (int i = 0; i < 10 && !saw_non_identity; ++i) {
    RandomTreeOptions opts;
    opts.num_nodes = 64;
    opts.attach_window = 8;
    Tree t = RandomTree(&rng, opts);
    saw_non_identity = !ComputeOrders(t).pre_is_identity;
  }
  EXPECT_TRUE(saw_non_identity);
}

TEST(NodeSetKernelTest, DifferentialSetAlgebra) {
  Rng rng(5678);
  for (int n : kUniverseSizes) {
    for (int round = 0; round < 8; ++round) {
      const std::set<NodeId> a_ref = RandomSubset(&rng, n, 0.4);
      const std::set<NodeId> b_ref = RandomSubset(&rng, n, 0.4);
      NodeSet a(n), b(n);
      for (NodeId v : a_ref) a.Insert(v);
      for (NodeId v : b_ref) b.Insert(v);

      auto check = [n](const NodeSet& got, const std::set<NodeId>& want,
                       const char* op) {
        EXPECT_EQ(got.size(), static_cast<int>(want.size()))
            << op << " n=" << n;
        std::vector<NodeId> want_vec(want.begin(), want.end());
        EXPECT_EQ(got.ToVector(), want_vec) << op << " n=" << n;
      };

      NodeSet u = a;
      u.UnionWith(b);
      std::set<NodeId> u_ref = a_ref;
      u_ref.insert(b_ref.begin(), b_ref.end());
      check(u, u_ref, "union");

      NodeSet i = a;
      i.IntersectWith(b);
      std::set<NodeId> i_ref;
      std::set_intersection(a_ref.begin(), a_ref.end(), b_ref.begin(),
                            b_ref.end(), std::inserter(i_ref, i_ref.end()));
      check(i, i_ref, "intersect");

      NodeSet d = a;
      d.AndNotWith(b);
      std::set<NodeId> d_ref;
      std::set_difference(a_ref.begin(), a_ref.end(), b_ref.begin(),
                          b_ref.end(), std::inserter(d_ref, d_ref.end()));
      check(d, d_ref, "andnot");

      NodeSet c = a;
      c.Complement();
      std::set<NodeId> c_ref;
      for (NodeId v = 0; v < n; ++v) {
        if (a_ref.count(v) == 0) c_ref.insert(v);
      }
      check(c, c_ref, "complement");
      // Tail masking: complementing twice restores the original bits.
      c.Complement();
      EXPECT_TRUE(c == a) << "double complement n=" << n;

      const int lo = static_cast<int>(rng.Uniform(0, n));
      const int hi = static_cast<int>(rng.Uniform(lo, n));
      NodeSet r = a;
      r.InsertRange(lo, hi);
      std::set<NodeId> r_ref = a_ref;
      for (NodeId v = lo; v < hi; ++v) r_ref.insert(v);
      check(r, r_ref, "insert_range");

      EXPECT_EQ(a.FirstMember(),
                a_ref.empty() ? kNullNode : *a_ref.begin());
      EXPECT_EQ(a.LastMember(),
                a_ref.empty() ? kNullNode : *a_ref.rbegin());
    }
  }
}

TEST(NodeSetKernelTest, ComplementKeepsTailBitsZero) {
  for (int n : kUniverseSizes) {
    NodeSet s(n);
    s.Complement();  // now the full universe
    EXPECT_EQ(s.size(), n);
    EXPECT_TRUE(s == NodeSet::All(n));
    // A full set's last member is in-universe, not a stray tail bit.
    EXPECT_EQ(s.LastMember(), n - 1);
    s.Complement();
    EXPECT_TRUE(s.empty());
    EXPECT_TRUE(s == NodeSet(n));
  }
}

TEST(NodeSetKernelTest, ForEachMemberWhileStopsEarly) {
  NodeSet s = NodeSet::FromVector(200, {3, 70, 140, 199});
  std::vector<NodeId> seen;
  s.ForEachMemberWhile([&](NodeId v) {
    seen.push_back(v);
    return v < 140;
  });
  EXPECT_EQ(seen, (std::vector<NodeId>{3, 70, 140}));
}

}  // namespace
}  // namespace treeq
