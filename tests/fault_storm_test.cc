// Fault-injection storms: randomized mixed workloads against the full
// serving stack under a seed-derived fault plan (src/fault/storm.h), plus
// unit coverage for the registry itself — determinism of the firing
// schedule, plan round-tripping, and firability of every named point.
//
// Knobs (all environment variables):
//   TREEQ_STRESS_ITERS      seed-count multiplier (CI: 50 smoke, 500 nightly)
//   TREEQ_STORM_SEED        replay exactly this seed...
//   TREEQ_STORM_PLAN        ...under exactly this plan line
//   TREEQ_STORM_REPRO_FILE  append failing replay lines here (CI artifact)

#include "fault/storm.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cache/eval_cache.h"
#include "cache/result_cache.h"
#include "engine/document_store.h"
#include "engine/engine.h"
#include "fault/fault.h"
#include "tree/generator.h"
#include "util/random.h"

namespace treeq {
namespace fault {
namespace {

FaultPlan OnePoint(const std::string& point, double p = 1.0,
                   uint64_t seed = 1) {
  FaultPlan plan;
  plan.seed = seed;
  FaultRule rule;
  rule.point = point;
  rule.probability = p;
  plan.rules.push_back(rule);
  return plan;
}

DocumentPtr Catalog(int seed = 1, int products = 30) {
  Rng rng(static_cast<uint64_t>(seed));
  CatalogOptions opts;
  opts.num_products = products;
  return MakeDocumentWithOrders(CatalogDocument(&rng, opts));
}

engine::PlanPtr XPathPlan(const std::string& text = "//review[rating5]") {
  return engine::Plan::Compile(Language::kXPath, text).value();
}

// ---------------------------------------------------------------------------
// Registry semantics
// ---------------------------------------------------------------------------

TEST(FaultPlanTest, ToStringParseRoundTrip) {
  FaultPlan plan;
  plan.seed = 1234;
  FaultRule a;
  a.point = "engine.queue.push";
  a.code = StatusCode::kUnavailable;
  a.first_hit = 3;
  a.max_fires = 1;
  plan.rules.push_back(a);
  FaultRule b;
  b.point = "exec.deadline.check";
  b.code = StatusCode::kDeadlineExceeded;
  b.probability = 0.125;
  b.thread_tag = "worker";
  plan.rules.push_back(b);

  const std::string line = plan.ToString();
  Result<FaultPlan> parsed = FaultPlan::Parse(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->ToString(), line);
  ASSERT_EQ(parsed->rules.size(), 2u);
  EXPECT_EQ(parsed->seed, 1234u);
  EXPECT_EQ(parsed->rules[0].point, "engine.queue.push");
  EXPECT_EQ(parsed->rules[0].first_hit, 3u);
  EXPECT_EQ(parsed->rules[0].max_fires, 1u);
  EXPECT_EQ(parsed->rules[1].code, StatusCode::kDeadlineExceeded);
  EXPECT_DOUBLE_EQ(parsed->rules[1].probability, 0.125);
  EXPECT_EQ(parsed->rules[1].thread_tag, "worker");
}

TEST(FaultPlanTest, ParseRejectsMalformedLines) {
  EXPECT_FALSE(FaultPlan::Parse("garbage").ok());
  EXPECT_FALSE(FaultPlan::Parse("seed=1 point=x").ok());  // before any rule
  EXPECT_FALSE(FaultPlan::Parse("seed=1 rule code=Unavailable").ok());
  EXPECT_FALSE(FaultPlan::Parse("seed=1 rule point=x code=NoSuch").ok());
}

TEST(FaultRegistryTest, FiringScheduleIsDeterministicInHitIndex) {
  // The determinism contract: whether the Nth hit of a point fires is a
  // pure function of (seed, point, N). Same plan re-armed, same schedule.
  auto schedule = [](uint64_t seed) {
    ScopedFaultPlan armed(OnePoint("test.determinism", 0.5, seed));
    std::vector<int> fired;
    for (int i = 0; i < 200; ++i) {
      if (!FaultRegistry::Global().Hit("test.determinism").ok()) {
        fired.push_back(i);
      }
    }
    return fired;
  };
  const std::vector<int> first = schedule(7);
  const std::vector<int> second = schedule(7);
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
  EXPECT_LT(first.size(), 200u);  // p=0.5 fires some, not all
  EXPECT_NE(first, schedule(8));  // a different seed, a different schedule
}

TEST(FaultRegistryTest, WindowAndBudgetRespected) {
  ScopedFaultPlan armed([] {
    FaultPlan plan = OnePoint("test.window");
    plan.rules[0].first_hit = 5;
    plan.rules[0].max_fires = 2;
    return plan;
  }());
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    if (!FaultRegistry::Global().Hit("test.window").ok()) {
      EXPECT_GE(i, 5) << "fired before the window opened";
      ++fired;
    }
  }
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(FaultRegistry::Global().hits("test.window"), 10u);
  EXPECT_EQ(FaultRegistry::Global().fires("test.window"), 2u);
}

TEST(FaultRegistryTest, ThreadTagFilters) {
  ScopedFaultPlan armed([] {
    FaultPlan plan = OnePoint("test.tag");
    plan.rules[0].thread_tag = "worker";
    return plan;
  }());
  SetThreadTag("");
  EXPECT_TRUE(FaultRegistry::Global().Hit("test.tag").ok());
  SetThreadTag("worker");
  EXPECT_FALSE(FaultRegistry::Global().Hit("test.tag").ok());
  SetThreadTag("");
}

TEST(FaultRegistryTest, DisarmedHitIsOkAndMacroCompilesOut) {
  FaultRegistry::Global().Disarm();
  EXPECT_TRUE(FaultRegistry::Global().Hit("test.disarmed").ok());
  // The macro path: disarmed (or compiled out) must be a no-op.
  EXPECT_TRUE(TREEQ_FAULT_INJECT("test.disarmed").ok());
  EXPECT_FALSE(TREEQ_FAULT_FIRED("test.disarmed"));
}

TEST(FaultRegistryTest, InjectedCodeSurfacesVerbatim) {
  if (!kFaultPointsCompiledIn) GTEST_SKIP() << "fault points compiled out";
  FaultPlan plan = OnePoint("test.code");
  plan.rules[0].code = StatusCode::kResourceExhausted;
  ScopedFaultPlan armed(plan);
  Status status = TREEQ_FAULT_INJECT("test.code");
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(status.message().find("test.code"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Every named point is firable
// ---------------------------------------------------------------------------

// Drives each KnownPoints() entry through its real seam under a p=1 plan
// and asserts the registry recorded a fire — a new TREEQ_FAULT_* site
// added without a driver here (or a KnownPoints entry without a site)
// fails this test.
TEST(FaultPointsTest, EveryKnownPointIsFirable) {
  if (!kFaultPointsCompiledIn) GTEST_SKIP() << "fault points compiled out";

  DocumentPtr doc = Catalog();
  engine::PlanPtr plan = XPathPlan();

  std::map<std::string, std::function<void()>> drivers;
  drivers["cache.eval.insert"] = [&] {
    cache::EvalCache cache(cache::EvalCacheOptions{});
    NodeSet from(doc->num_nodes());
    from.Insert(0);
    NodeSet to(doc->num_nodes());
    cache.Insert(doc->epoch(), Axis::kChild, from, to);
    EXPECT_EQ(cache.size(), 0u) << "injected insert must drop the entry";
  };
  drivers["cache.eval.lookup"] = [&] {
    cache::EvalCache cache(cache::EvalCacheOptions{});
    NodeSet from(doc->num_nodes());
    from.Insert(0);
    NodeSet to(doc->num_nodes());
    cache.Insert(doc->epoch(), Axis::kChild, from, to);
    ASSERT_EQ(cache.size(), 1u);
    NodeSet out(doc->num_nodes());
    EXPECT_FALSE(cache.Lookup(doc->epoch(), Axis::kChild, from, &out))
        << "injected lookup must be a forced miss";
  };
  auto result_key = [&] {
    cache::ResultKey key;
    key.doc_epoch = doc->epoch();
    key.query_hash_hi = plan->canonical_hash().hi;
    key.query_hash_lo = plan->canonical_hash().lo;
    return key;
  };
  drivers["cache.result.insert"] = [&, result_key] {
    cache::ResultCache cache(cache::ResultCacheOptions{});
    cache.Insert(result_key(), QueryResult{});
    EXPECT_EQ(cache.size(), 0u) << "injected insert must drop the entry";
  };
  drivers["cache.result.lookup"] = [&, result_key] {
    cache::ResultCache cache(cache::ResultCacheOptions{});
    cache.Insert(result_key(), QueryResult{});
    ASSERT_EQ(cache.size(), 1u);
    EXPECT_FALSE(cache.Lookup(result_key()).has_value())
        << "injected lookup must be a forced miss";
  };
  drivers["cache.result.invalidate"] = [&, result_key] {
    cache::ResultCache cache(cache::ResultCacheOptions{});
    cache.Insert(result_key(), QueryResult{});
    ASSERT_EQ(cache.size(), 1u);
    // Injected invalidate drops the fan-out: the dead-epoch entry lingers
    // (harmless — epoch-keyed lookups can never reach it from new docs).
    cache.InvalidateDocument(doc->epoch());
    EXPECT_EQ(cache.size(), 1u) << "injected invalidate must be skipped";
  };
  drivers["cache.flight.join"] = [&] {
    engine::Executor::Options opts;
    opts.num_workers = 1;
    opts.singleflight = true;
    engine::Executor executor(opts);
    QueryRequest request;
    request.plan = plan;
    request.document = doc;
    // Eligible unbounded request with singleflight on: Submit consults
    // the join point (fired = execute standalone, which is still ok).
    engine::Submission s = executor.Submit(request);
    Result<QueryResult> outcome = s.future.get();
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
  };
  drivers["engine.queue.push"] = [&] {
    engine::Executor executor(engine::Executor::Options{});
    QueryRequest request;
    request.plan = plan;
    request.document = doc;
    Result<QueryResult> outcome = executor.Submit(request).future.get();
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.status().code(), StatusCode::kUnavailable);
  };
  drivers["engine.queue.pop"] = drivers["engine.worker.run"] = [&] {
    engine::Executor executor(engine::Executor::Options{});
    QueryRequest request;
    request.plan = plan;
    request.document = doc;
    Result<QueryResult> outcome = executor.Submit(request).future.get();
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.status().code(), StatusCode::kUnavailable);
  };
  drivers["engine.child.push"] = [&] {
    // Fork-join children: every queue-front push consults the point;
    // injected = the child runs inline on the forking thread instead.
    engine::Executor executor(engine::Executor::Options{});
    std::atomic<int> ran{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 4; ++i) tasks.push_back([&] { ++ran; });
    executor.task_runner().RunAll(std::move(tasks));
    EXPECT_EQ(ran.load(), 4) << "children must run even when pushes fail";
  };
  drivers["engine.shutdown"] = [&] {
    engine::Executor executor(engine::Executor::Options{});
    executor.Shutdown();  // injected status is advisory; must not abort
  };
  drivers["exec.budget.charge"] = [&] {
    ExecContext context = ExecContext::WithVisitBudget(1 << 20);
    Status status = context.Charge(1);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
    // Sticky: the context stays tripped after the injected abort.
    EXPECT_FALSE(context.Charge(1).ok());
  };
  drivers["exec.deadline.check"] = [&] {
    ExecContext context = ExecContext::WithVisitBudget(1 << 20);
    Status status = context.Charge(1);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  };
  drivers["exec.memory.charge"] = [&] {
    ExecContext context = ExecContext::WithVisitBudget(1 << 20);
    Status status = context.ChargeMemory(64);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  };
  drivers["plan.route.decide"] = [&] {
    // Injected router failure = the cost-based decision is abandoned and
    // the plan falls back to its native engine. The answer must be the
    // same nodes either way — misrouting recovery, not an error.
    // Bounded runs take the legacy native path and never consult the
    // router, so this reference result is immune to the armed plan.
    ExecContext bounded = ExecContext::WithVisitBudget(uint64_t{1} << 40);
    QueryResult want = plan->Run(*doc, bounded).value();
    Result<QueryResult> got = plan->Run(*doc);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got->value, want.value)
        << "fallback route must return identical results";
  };
  drivers["store.evict.notify"] = [&] {
    engine::DocumentStore store;
    bool notified = false;
    store.AddEvictionListener([&](uint64_t) { notified = true; });
    Rng rng(3);
    CatalogOptions opts;
    opts.num_products = 4;
    ASSERT_TRUE(store.Add("d", CatalogDocument(&rng, opts)).ok());
    ASSERT_TRUE(store.Replace("d", CatalogDocument(&rng, opts)).ok());
    EXPECT_FALSE(notified) << "injected notify must drop the fan-out";
  };

  for (const std::string& point : KnownPoints()) {
    ASSERT_TRUE(drivers.count(point))
        << "no firability driver for known point " << point;
    SCOPED_TRACE(point);
    {
      ScopedFaultPlan armed(OnePoint(point));
      drivers[point]();
      EXPECT_GT(FaultRegistry::Global().fires(point), 0u)
          << "driver never fired " << point;
    }
  }
}

TEST(FaultPointsTest, InjectedExecTripsDoNotTouchUnbounded) {
  if (!kFaultPointsCompiledIn) GTEST_SKIP() << "fault points compiled out";
  // The shared Unbounded() context takes the fast path and is explicitly
  // excluded from injection: even a p=1 plan on every exec point must
  // leave it usable (a tripped Unbounded() would poison the process).
  FaultPlan plan;
  plan.seed = 1;
  for (const char* point :
       {"exec.budget.charge", "exec.deadline.check", "exec.memory.charge"}) {
    FaultRule rule;
    rule.point = point;
    plan.rules.push_back(rule);
  }
  ScopedFaultPlan armed(plan);
  EXPECT_TRUE(ExecContext::Unbounded().Charge(1).ok());
  EXPECT_TRUE(ExecContext::Unbounded().ChargeMemory(64).ok());
}

// ---------------------------------------------------------------------------
// Storms
// ---------------------------------------------------------------------------

void ReportFailure(const StormReport& report) {
  ADD_FAILURE() << report.ToString();
  const char* path = std::getenv("TREEQ_STORM_REPRO_FILE");
  if (path != nullptr && *path != '\0') {
    std::ofstream out(path, std::ios::app);
    out << report.replay_line << "\n";
  }
}

TEST(FaultStormTest, SeededStormsHoldEngineInvariants) {
  if (!kFaultPointsCompiledIn) GTEST_SKIP() << "fault points compiled out";
  // Default: a handful of seeds (fast enough for tier-1-adjacent local
  // runs); CI scales with TREEQ_STRESS_ITERS. Every fourth seed also
  // races Shutdown against the workload tail.
  const int seeds = StressIters(6);
  for (int seed = 1; seed <= seeds; ++seed) {
    StormOptions options;
    options.seed = static_cast<uint64_t>(seed);
    options.shutdown_race = (seed % 4 == 0);
    StormReport report = RunStorm(options);
    if (!report.passed()) ReportFailure(report);
    EXPECT_GT(report.submits, 0u);
  }
}

TEST(FaultStormTest, StormIsReplayableFromItsLine) {
  if (!kFaultPointsCompiledIn) GTEST_SKIP() << "fault points compiled out";
  // The replay contract end to end: parse the plan line a report prints,
  // re-run under it, and the invariants must hold again (the firing
  // schedule per hit index is identical by construction).
  StormOptions options;
  options.seed = 11;
  StormReport first = RunStorm(options);
  if (!first.passed()) ReportFailure(first);
  Result<FaultPlan> parsed = FaultPlan::Parse(first.plan_line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->ToString(), first.plan_line);
  StormReport again = RunStorm(options, *parsed);
  if (!again.passed()) ReportFailure(again);
  EXPECT_EQ(again.plan_line, first.plan_line);
}

TEST(FaultStormTest, ReplayFromEnvironment) {
  if (!kFaultPointsCompiledIn) GTEST_SKIP() << "fault points compiled out";
  // The debugging entry point CI prints in its artifact:
  //   TREEQ_STORM_SEED=7 TREEQ_STORM_PLAN='seed=7 rule ...'
  //     ./fault_storm_test --gtest_filter='*ReplayFromEnvironment'
  const char* seed_env = std::getenv("TREEQ_STORM_SEED");
  const char* plan_env = std::getenv("TREEQ_STORM_PLAN");
  const bool have_seed = seed_env != nullptr && *seed_env != '\0';
  const bool have_plan = plan_env != nullptr && *plan_env != '\0';
  if (!have_seed && !have_plan) {
    GTEST_SKIP() << "neither TREEQ_STORM_SEED nor TREEQ_STORM_PLAN set";
  }
  StormOptions options;
  StormReport report;
  if (have_plan) {
    Result<FaultPlan> plan = FaultPlan::Parse(plan_env);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    // The workload seed defaults to the plan's own seed; an explicit
    // TREEQ_STORM_SEED overrides it (the two differ when a plan is
    // replayed against a different traffic mix on purpose).
    options.seed = have_seed ? std::strtoull(seed_env, nullptr, 10)
                             : plan->seed;
    report = RunStorm(options, *plan);
  } else {
    options.seed = std::strtoull(seed_env, nullptr, 10);
    report = RunStorm(options);
  }
  EXPECT_TRUE(report.passed()) << report.ToString();
}

}  // namespace
}  // namespace fault
}  // namespace treeq
