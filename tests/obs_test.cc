#include "obs/obs.h"

#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/span.h"
#include "obs/stats.h"

namespace treeq {
namespace obs {
namespace {

/// Minimal recursive-descent JSON parser: validates the grammar and
/// records every "key": <number> pair it sees, at any nesting depth. Just
/// enough to round-trip DumpJson output in tests.
class MiniJsonParser {
 public:
  explicit MiniJsonParser(std::string text) : text_(std::move(text)) {}

  bool Parse() {
    pos_ = 0;
    bool ok = ParseValue();
    SkipSpace();
    return ok && pos_ == text_.size();
  }

  /// The value of the last "key": number pair seen, or `fallback`.
  double NumberFor(const std::string& key, double fallback = -1) const {
    auto it = numbers_.rbegin();
    for (; it != numbers_.rend(); ++it) {
      if (it->first == key) return it->second;
    }
    return fallback;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(text_[pos_])) ++pos_;
  }
  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      *out += text_[pos_++];
    }
    return Consume('"');
  }

  bool ParseNumber(double* out) {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(text_[pos_]) || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    *out = std::stod(text_.substr(start, pos_ - start));
    return true;
  }

  bool ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      std::string s;
      return ParseString(&s);
    }
    double n;
    return ParseNumber(&n);
  }

  bool ParseObject() {
    if (!Consume('{')) return false;
    SkipSpace();
    if (Consume('}')) return true;
    do {
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      SkipSpace();
      if (pos_ < text_.size() &&
          (std::isdigit(text_[pos_]) || text_[pos_] == '-')) {
        double n;
        if (!ParseNumber(&n)) return false;
        numbers_.emplace_back(key, n);
      } else {
        if (!ParseValue()) return false;
      }
    } while (Consume(','));
    return Consume('}');
  }

  bool ParseArray() {
    if (!Consume('[')) return false;
    SkipSpace();
    if (Consume(']')) return true;
    do {
      if (!ParseValue()) return false;
    } while (Consume(','));
    return Consume(']');
  }

  std::string text_;
  size_t pos_ = 0;
  std::vector<std::pair<std::string, double>> numbers_;
};

TEST(StatsRegistryTest, CounterAggregation) {
  StatsRegistry& reg = StatsRegistry::Global();
  reg.Reset();
  Counter* c = reg.GetCounter("test.counter_aggregation");
  c->Increment();
  c->Add(41);
  EXPECT_EQ(c->value(), 42u);
  EXPECT_EQ(reg.CounterValue("test.counter_aggregation"), 42u);
  // Re-registering the same name yields the same counter.
  EXPECT_EQ(reg.GetCounter("test.counter_aggregation"), c);
  EXPECT_EQ(reg.CounterValue("test.never_registered"), 0u);
}

TEST(StatsRegistryTest, ResetKeepsPointersValid) {
  StatsRegistry& reg = StatsRegistry::Global();
  Counter* c = reg.GetCounter("test.reset_keeps");
  c->Add(7);
  reg.Reset();
  EXPECT_EQ(c->value(), 0u);
  c->Add(3);  // the cached pointer still feeds the same registry entry
  EXPECT_EQ(reg.CounterValue("test.reset_keeps"), 3u);
}

TEST(StatsRegistryTest, ConcurrentCounterIncrements) {
  StatsRegistry& reg = StatsRegistry::Global();
  reg.Reset();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      Counter* c = reg.GetCounter("test.concurrent");
      for (int i = 0; i < kPerThread; ++i) c->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.CounterValue("test.concurrent"),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(StatsRegistryTest, GaugeRecordsMaximum) {
  StatsRegistry& reg = StatsRegistry::Global();
  reg.Reset();
  Gauge* g = reg.GetGauge("test.gauge");
  g->RecordMax(5);
  g->RecordMax(3);  // lower value must not win
  EXPECT_EQ(g->value(), 5u);
  g->RecordMax(9);
  EXPECT_EQ(reg.GaugeValue("test.gauge"), 9u);
}

TEST(StatsRegistryTest, HistogramStats) {
  StatsRegistry& reg = StatsRegistry::Global();
  reg.Reset();
  Histogram* h = reg.GetHistogram("test.histogram");
  for (uint64_t v : {1u, 2u, 4u, 1000u}) h->Record(v);
  HistogramSnapshot snap = h->Snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum, 1007u);
  EXPECT_EQ(snap.min, 1u);
  EXPECT_EQ(snap.max, 1000u);
  EXPECT_DOUBLE_EQ(snap.mean(), 1007.0 / 4);
  // 1000 has bit_width 10: bucket 10 holds [512, 1024).
  EXPECT_EQ(snap.buckets[10], 1u);
}

TEST(HistogramPercentileTest, EmptyAndSingleValue) {
  StatsRegistry& reg = StatsRegistry::Global();
  reg.Reset();
  Histogram* h = reg.GetHistogram("test.pct.single");
  EXPECT_DOUBLE_EQ(h->Snapshot().Percentile(0.5), 0.0);  // empty
  h->Record(100);
  HistogramSnapshot snap = h->Snapshot();
  // One sample: every quantile collapses to it (clamped to min == max).
  EXPECT_DOUBLE_EQ(snap.Percentile(0.0), 100.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(0.5), 100.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(1.0), 100.0);
}

TEST(HistogramPercentileTest, OrderedAcrossBuckets) {
  StatsRegistry& reg = StatsRegistry::Global();
  reg.Reset();
  Histogram* h = reg.GetHistogram("test.pct.ordered");
  // 90 small values, 10 large ones: p50 stays in the small bucket, p99
  // reaches the large one, and quantiles are monotone in q.
  for (int i = 0; i < 90; ++i) h->Record(100);
  for (int i = 0; i < 10; ++i) h->Record(100000);
  HistogramSnapshot snap = h->Snapshot();
  const double p50 = snap.Percentile(0.5);
  const double p90 = snap.Percentile(0.9);
  const double p99 = snap.Percentile(0.99);
  EXPECT_GE(p50, 64.0);  // 100 lives in bucket [64, 127]
  EXPECT_LE(p50, 127.0);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_GE(p99, 65536.0);  // 100000 lives in bucket [65536, 131071]
  EXPECT_LE(p99, 100000.0);  // clamped to the recorded max
  // Out-of-range q is clamped, never out of [min, max].
  EXPECT_DOUBLE_EQ(snap.Percentile(-1.0), 100.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(2.0), 100000.0);
}

TEST(HistogramPercentileTest, DumpsIncludePercentiles) {
  StatsRegistry& reg = StatsRegistry::Global();
  reg.Reset();
  reg.GetHistogram("test.pct.dump")->Record(42);
  std::ostringstream json;
  reg.DumpJson(json);
  EXPECT_NE(json.str().find("\"p99\": "), std::string::npos) << json.str();
  std::ostringstream table;
  reg.DumpTable(table);
  EXPECT_NE(table.str().find("p99="), std::string::npos) << table.str();
}

TEST(ScopedSpanTest, NestedSpanTimingMonotonicity) {
  StatsRegistry& reg = StatsRegistry::Global();
  reg.Reset();
  constexpr int kRuns = 3;
  for (int i = 0; i < kRuns; ++i) {
    ScopedSpan outer("test.outer");
    {
      ScopedSpan inner("test.inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  std::vector<SpanSnapshot> spans = reg.SpanTree();
  const SpanSnapshot* outer = nullptr;
  for (const SpanSnapshot& s : spans) {
    if (s.name == "test.outer") outer = &s;
  }
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, static_cast<uint64_t>(kRuns));
  ASSERT_EQ(outer->children.size(), 1u);
  const SpanSnapshot& inner = outer->children[0];
  EXPECT_EQ(inner.name, "test.inner");
  EXPECT_EQ(inner.count, static_cast<uint64_t>(kRuns));
  // The inner span slept, so both totals are positive; the outer encloses
  // the inner, and self time is what the children don't account for.
  EXPECT_GT(inner.total_ns, 0u);
  EXPECT_GE(outer->total_ns, inner.total_ns);
  EXPECT_EQ(outer->self_ns, outer->total_ns - inner.total_ns);
}

TEST(StatsRegistryTest, JsonDumpRoundTripsThroughMiniParser) {
  StatsRegistry& reg = StatsRegistry::Global();
  reg.Reset();
  reg.GetCounter("test.json.counter")->Add(123);
  reg.GetGauge("test.json.gauge")->RecordMax(17);
  reg.GetHistogram("test.json.hist")->Record(8);
  {
    ScopedSpan span("test.json.span");
  }
  std::ostringstream os;
  reg.DumpJson(os);
  MiniJsonParser parser(os.str());
  ASSERT_TRUE(parser.Parse()) << os.str();
  EXPECT_EQ(parser.NumberFor("test.json.counter"), 123);
  EXPECT_EQ(parser.NumberFor("test.json.gauge"), 17);
}

TEST(StatsRegistryTest, TableDumpMentionsEveryName) {
  StatsRegistry& reg = StatsRegistry::Global();
  reg.Reset();
  reg.GetCounter("test.table.counter")->Add(5);
  std::ostringstream os;
  reg.DumpTable(os);
  EXPECT_NE(os.str().find("test.table.counter"), std::string::npos);
}

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("plain.name"), "plain.name");
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

#ifndef TREEQ_OBS_DISABLED

TEST(ObsMacroTest, MacrosFeedTheRegistry) {
  StatsRegistry& reg = StatsRegistry::Global();
  reg.Reset();
  for (int i = 0; i < 3; ++i) TREEQ_OBS_INC("test.macro.inc");
  TREEQ_OBS_COUNT("test.macro.count", 39);
  TREEQ_OBS_GAUGE_MAX("test.macro.gauge", 11);
  TREEQ_OBS_HISTOGRAM("test.macro.hist", 4);
  {
    TREEQ_OBS_SPAN("test.macro.span");
  }
  EXPECT_EQ(reg.CounterValue("test.macro.inc"), 3u);
  EXPECT_EQ(reg.CounterValue("test.macro.count"), 39u);
  EXPECT_EQ(reg.GaugeValue("test.macro.gauge"), 11u);
  EXPECT_EQ(reg.HistogramValues().at("test.macro.hist").count, 1u);
  bool saw_span = false;
  for (const SpanSnapshot& s : reg.SpanTree()) {
    if (s.name == "test.macro.span") saw_span = true;
  }
  EXPECT_TRUE(saw_span);
}

#endif  // TREEQ_OBS_DISABLED

}  // namespace
}  // namespace obs
}  // namespace treeq
