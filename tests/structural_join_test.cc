#include "storage/structural_join.h"

#include <gtest/gtest.h>

#include <set>

#include "tree/axes.h"
#include "tree/generator.h"
#include "util/random.h"

namespace treeq {
namespace {

using PairSet = std::set<std::pair<NodeId, NodeId>>;

PairSet ToSet(const std::vector<std::pair<NodeId, NodeId>>& pairs) {
  return PairSet(pairs.begin(), pairs.end());
}

// Reference result computed from axis semantics.
PairSet RefJoin(const Tree& t, const TreeOrders& o,
                const std::vector<NodeId>& anc, const std::vector<NodeId>& desc,
                bool parent_child) {
  PairSet out;
  Axis axis = parent_child ? Axis::kChild : Axis::kDescendant;
  for (NodeId a : anc) {
    for (NodeId d : desc) {
      if (AxisHolds(t, o, axis, a, d)) out.insert({a, d});
    }
  }
  return out;
}

class StructuralJoinPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(StructuralJoinPropertyTest, MatchesAxisSemanticsOnRandomLists) {
  Rng rng(GetParam());
  RandomTreeOptions opts;
  opts.num_nodes = 70;
  opts.attach_window = 1 + GetParam() % 10;
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);

  for (int trial = 0; trial < 5; ++trial) {
    std::vector<NodeId> anc, desc;
    for (NodeId n = 0; n < t.num_nodes(); ++n) {
      if (rng.Bernoulli(0.4)) anc.push_back(n);
      if (rng.Bernoulli(0.4)) desc.push_back(n);
    }
    std::vector<JoinItem> a = MakeJoinItems(o, anc);
    std::vector<JoinItem> d = MakeJoinItems(o, desc);
    for (bool parent_child : {false, true}) {
      PairSet want = RefJoin(t, o, anc, desc, parent_child);
      EXPECT_EQ(ToSet(StackTreeJoin(a, d, parent_child)), want)
          << "stack-tree pc=" << parent_child;
      EXPECT_EQ(ToSet(NestedLoopJoin(a, d, parent_child)), want)
          << "nested-loop pc=" << parent_child;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StructuralJoinPropertyTest,
                         ::testing::Range(0, 8));

TEST(StructuralJoinTest, LabelDrivenJoin) {
  // catalog document: every "rating*" node descends from some "review".
  Rng rng(99);
  CatalogOptions copts;
  copts.num_products = 30;
  Tree t = CatalogDocument(&rng, copts);
  TreeOrders o = ComputeOrders(t);
  LabelId review = t.label_table().Lookup("review");
  ASSERT_NE(review, kNullLabel);
  std::vector<JoinItem> reviews = MakeJoinItemsForLabel(t, o, review);
  LabelId product = t.label_table().Lookup("product");
  std::vector<JoinItem> products = MakeJoinItemsForLabel(t, o, product);

  auto pairs = StackTreeJoin(products, reviews, /*parent_child=*/false);
  // Every review matches exactly one product ancestor.
  EXPECT_EQ(pairs.size(), reviews.size());
  // Parent-child join of product->review is empty (reviews sit under a
  // "reviews" wrapper).
  EXPECT_TRUE(StackTreeJoin(products, reviews, /*parent_child=*/true).empty());
}

TEST(StructuralJoinTest, SelfPairsExcluded) {
  Tree t = Chain(5);
  TreeOrders o = ComputeOrders(t);
  std::vector<NodeId> all = {0, 1, 2, 3, 4};
  std::vector<JoinItem> items = MakeJoinItems(o, all);
  auto pairs = StackTreeJoin(items, items, /*parent_child=*/false);
  EXPECT_EQ(pairs.size(), 10u);  // C(5,2) proper ancestor pairs on a chain
  for (const auto& [a, d] : pairs) EXPECT_NE(a, d);
}

TEST(StructuralJoinTest, EmptyInputs) {
  Tree t = Chain(3);
  TreeOrders o = ComputeOrders(t);
  std::vector<JoinItem> empty;
  std::vector<JoinItem> all = MakeJoinItems(o, {0, 1, 2});
  EXPECT_TRUE(StackTreeJoin(empty, all, false).empty());
  EXPECT_TRUE(StackTreeJoin(all, empty, false).empty());
  EXPECT_TRUE(StackTreeJoin(empty, empty, true).empty());
}

TEST(StructuralJoinTest, OutputGroupedByDescendantInDocumentOrder) {
  Rng rng(123);
  RandomTreeOptions opts;
  opts.num_nodes = 50;
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);
  std::vector<NodeId> all;
  for (NodeId n = 0; n < t.num_nodes(); ++n) all.push_back(n);
  std::vector<JoinItem> items = MakeJoinItems(o, all);
  auto pairs = StackTreeJoin(items, items, false);
  for (size_t i = 1; i < pairs.size(); ++i) {
    EXPECT_LE(o.pre[pairs[i - 1].second], o.pre[pairs[i].second]);
  }
}

}  // namespace
}  // namespace treeq
