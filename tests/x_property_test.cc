#include "cq/x_property.h"

#include <gtest/gtest.h>

#include "cq/naive.h"
#include "cq/parser.h"
#include "tree/generator.h"
#include "util/random.h"

namespace treeq {
namespace cq {
namespace {

ConjunctiveQuery MustParse(const std::string& text) {
  Result<ConjunctiveQuery> q = ParseCq(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(q).value();
}

TEST(XPropertyCheckerTest, Figure5StyleExplicitRelations) {
  // rank = identity on 4 points.
  std::vector<int> rank = {0, 1, 2, 3};
  // Crossing arcs (1, 2) and (0, 3) require the underbar (0, 2).
  std::vector<std::pair<NodeId, NodeId>> with_underbar = {{1, 2}, {0, 3},
                                                          {0, 2}};
  std::vector<std::pair<NodeId, NodeId>> without = {{1, 2}, {0, 3}};
  EXPECT_TRUE(HasXProperty(with_underbar, rank));
  EXPECT_FALSE(HasXProperty(without, rank));
  EXPECT_TRUE(HasXProperty({}, rank));
  EXPECT_TRUE(HasXProperty({{2, 1}}, rank));  // single arc, trivially
}

// Proposition 6.6, positive side: the claimed (axis, order) pairs hold on
// every generated tree.
class Prop66PositiveTest : public ::testing::TestWithParam<int> {};

TEST_P(Prop66PositiveTest, ClaimedPairsHoldOnRandomTrees) {
  Rng rng(GetParam());
  RandomTreeOptions opts;
  opts.num_nodes = 24;
  opts.attach_window = 1 + GetParam() % 7;
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);
  const Axis kAll[] = {
      Axis::kSelf,          Axis::kChild,
      Axis::kDescendant,    Axis::kDescendantOrSelf,
      Axis::kNextSibling,   Axis::kFollowingSibling,
      Axis::kFollowingSiblingOrSelf, Axis::kFollowing,
      Axis::kFirstChild,
  };
  for (Axis axis : kAll) {
    for (TreeOrder order :
         {TreeOrder::kPre, TreeOrder::kPost, TreeOrder::kBflr}) {
      if (XPropertyHolds(axis, order)) {
        EXPECT_TRUE(AxisHasXPropertyOn(t, o, axis, order))
            << AxisName(axis) << " vs " << TreeOrderName(order);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Prop66PositiveTest, ::testing::Range(0, 8));

// Proposition 6.6, negative side ("lists all the cases"): for each
// unclaimed base-axis/order pair there is a tree where the X-property
// fails.
TEST(Prop66NegativeTest, UnclaimedPairsFailOnSomeTree) {
  const Axis kBase[] = {
      Axis::kChild,          Axis::kDescendant,
      Axis::kDescendantOrSelf, Axis::kNextSibling,
      Axis::kFollowingSibling, Axis::kFollowingSiblingOrSelf,
      Axis::kFollowing,
  };
  for (Axis axis : kBase) {
    for (TreeOrder order :
         {TreeOrder::kPre, TreeOrder::kPost, TreeOrder::kBflr}) {
      if (XPropertyHolds(axis, order)) continue;
      bool counterexample = false;
      for (int seed = 0; seed < 25 && !counterexample; ++seed) {
        Rng rng(seed);
        RandomTreeOptions opts;
        opts.num_nodes = 14;
        opts.attach_window = 1 + seed % 5;
        Tree t = RandomTree(&rng, opts);
        TreeOrders o = ComputeOrders(t);
        if (!AxisHasXPropertyOn(t, o, axis, order)) counterexample = true;
      }
      EXPECT_TRUE(counterexample)
          << AxisName(axis) << " unexpectedly has X w.r.t. "
          << TreeOrderName(order) << " on all sampled trees";
    }
  }
}

TEST(PickXOrderTest, SignatureDispatch) {
  EXPECT_EQ(PickXOrder(MustParse("Q() :- Child+(x, y), Child*(x, z).")),
            TreeOrder::kPre);
  EXPECT_EQ(PickXOrder(MustParse("Q() :- Following(x, y).")),
            TreeOrder::kPost);
  EXPECT_EQ(PickXOrder(MustParse(
                "Q() :- Child(x, y), NextSibling+(y, z), NextSibling(z, w).")),
            TreeOrder::kBflr);
  // Inverses normalize to their base axes first.
  EXPECT_EQ(PickXOrder(MustParse("Q() :- ancestor(x, y).")), TreeOrder::kPre);
  // Mixed Child + Child+ fits no single order.
  EXPECT_EQ(PickXOrder(MustParse("Q() :- Child(x, y), Child+(y, z).")),
            std::nullopt);
}

TEST(MinimumValuationTest, PicksOrderMinima) {
  PreValuation theta = {NodeSet::FromVector(5, {2, 4}),
                        NodeSet::FromVector(5, {0, 3})};
  std::vector<int> rank = {4, 3, 2, 1, 0};  // reversed order
  std::vector<NodeId> min = MinimumValuation(theta, rank);
  EXPECT_EQ(min, (std::vector<NodeId>{4, 3}));
}

// Theorem 6.5: on X-property signatures, the AC + minimum-valuation
// evaluator agrees with the backtracking oracle — including on cyclic
// queries, which is the whole point.
class Thm65AgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(Thm65AgreementTest, MatchesNaiveOracle) {
  Rng rng(GetParam());
  RandomTreeOptions opts;
  opts.num_nodes = 22;
  opts.attach_window = 1 + GetParam() % 6;
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);

  struct Case {
    const char* text;
    TreeOrder order;
  };
  const Case kCases[] = {
      // tau1, cyclic and acyclic.
      {"Q() :- Child+(x, y), Lab_a(y).", TreeOrder::kPre},
      {"Q() :- Child+(x, y), Child+(y, z), Child+(x, z), Lab_c(z).",
       TreeOrder::kPre},
      {"Q() :- Child+(x, z), Child+(y, z), Lab_a(x), Lab_b(y).",
       TreeOrder::kPre},
      {"Q() :- Child*(x, y), Child*(y, z), Lab_a(x), Lab_b(z).",
       TreeOrder::kPre},
      {"Q() :- ancestor(x, y), Lab_a(y).", TreeOrder::kPre},
      // tau2.
      {"Q() :- Following(x, y), Lab_a(x), Lab_b(y).", TreeOrder::kPost},
      {"Q() :- Following(x, y), Following(y, z), Following(x, z).",
       TreeOrder::kPost},
      {"Q() :- Following(x, y), Following(x, z), Lab_a(y), Lab_c(z).",
       TreeOrder::kPost},
      // tau3, cyclic.
      {"Q() :- Child(x, y), Child(x, z), NextSibling(y, z), Lab_a(y).",
       TreeOrder::kBflr},
      {"Q() :- NextSibling+(x, y), NextSibling+(y, z), NextSibling+(x, z).",
       TreeOrder::kBflr},
      {"Q() :- Child(x, y), NextSibling*(y, z), Lab_b(z).", TreeOrder::kBflr},
      {"Q() :- first-child(x, y), NextSibling(y, z).", TreeOrder::kBflr},
  };
  for (const Case& c : kCases) {
    ConjunctiveQuery q = MustParse(c.text);
    Result<XEvalResult> fast = EvaluateXProperty(q, t, o, c.order);
    ASSERT_TRUE(fast.ok()) << c.text << ": " << fast.status().ToString();
    Result<bool> slow = NaiveSatisfiableCq(q, t, o);
    ASSERT_TRUE(slow.ok());
    EXPECT_EQ(fast.value().satisfiable, slow.value()) << c.text;
  }
}

TEST_P(Thm65AgreementTest, HornEncodingAblationAgrees) {
  Rng rng(700 + GetParam());
  RandomTreeOptions opts;
  opts.num_nodes = 18;
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);
  ConjunctiveQuery q = MustParse(
      "Q() :- Child+(x, y), Child+(y, z), Child+(x, z), Lab_b(y).");
  Result<XEvalResult> direct =
      EvaluateXProperty(q, t, o, TreeOrder::kPre, AcImplementation::kDirect);
  Result<XEvalResult> horn = EvaluateXProperty(
      q, t, o, TreeOrder::kPre, AcImplementation::kHornEncoding);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(horn.ok());
  EXPECT_EQ(direct.value().satisfiable, horn.value().satisfiable);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Thm65AgreementTest, ::testing::Range(0, 8));

TEST(Thm65Test, RejectsNonXSignature) {
  Tree t = Chain(3);
  TreeOrders o = ComputeOrders(t);
  ConjunctiveQuery q = MustParse("Q() :- Child(x, y), Child+(y, z).");
  Result<XEvalResult> r = EvaluateXProperty(q, t, o, TreeOrder::kPre);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(TupleCheckTest, MembershipMatchesNaive) {
  Rng rng(33);
  RandomTreeOptions opts;
  opts.num_nodes = 15;
  opts.alphabet = {"a", "b"};
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);
  ConjunctiveQuery q =
      MustParse("Q(x, y) :- Child+(x, y), Lab_a(x), Lab_b(y).");
  Result<TupleSet> all = NaiveEvaluateCq(q, t, o);
  ASSERT_TRUE(all.ok());
  for (NodeId x = 0; x < t.num_nodes(); ++x) {
    for (NodeId y = 0; y < t.num_nodes(); ++y) {
      bool expected = false;
      for (const auto& tuple : all.value()) {
        expected |= tuple == std::vector<NodeId>{x, y};
      }
      Result<bool> got =
          XPropertyTupleCheck(q, t, o, TreeOrder::kPre, {x, y});
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got.value(), expected) << x << "," << y;
    }
  }
}

TEST(Thm65Test, WitnessIsMinimumValuation) {
  // Chain a-a-a: Q() :- Child+(x, y): minimum witness under <pre is the
  // root and its first strict descendant.
  Tree t = Chain(4);
  TreeOrders o = ComputeOrders(t);
  ConjunctiveQuery q = MustParse("Q() :- Child+(x, y).");
  Result<XEvalResult> r = EvaluateXProperty(q, t, o, TreeOrder::kPre);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value().satisfiable);
  EXPECT_EQ(r.value().witness, (std::vector<NodeId>{0, 1}));
}

}  // namespace
}  // namespace cq
}  // namespace treeq
