#include "datalog/stratified.h"

#include <gtest/gtest.h>

#include "datalog/evaluator.h"
#include "datalog/parser.h"
#include "tree/generator.h"
#include "tree/orders.h"
#include "util/random.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"
#include "xpath/to_datalog.h"

namespace treeq {
namespace datalog {
namespace {

Program MustParse(const std::string& text) {
  Result<Program> p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return std::move(p).value();
}

TEST(StratifyTest, AssignsLevels) {
  Program p = MustParse(R"(
    HasB(x)   :- Child+(x, y), Lab_b(y).
    NoB(x)    :- Dom(x), not HasB(x).
    Deep(x)   :- Child(y, x), NoB(y).
    ?- Deep.
  )");
  Result<std::map<std::string, int>> strata = Stratify(p);
  ASSERT_TRUE(strata.ok()) << strata.status().ToString();
  EXPECT_EQ(strata.value().at("HasB"), 0);
  EXPECT_EQ(strata.value().at("NoB"), 1);
  EXPECT_EQ(strata.value().at("Deep"), 1);
}

TEST(StratifyTest, RejectsNegativeCycles) {
  Program p = MustParse(R"(
    P(x) :- Dom(x), not Q(x).
    Q(x) :- Dom(x), not P(x).
    ?- P.
  )");
  Result<std::map<std::string, int>> strata = Stratify(p);
  ASSERT_FALSE(strata.ok());
  EXPECT_EQ(strata.status().code(), StatusCode::kInvalidArgument);
}

TEST(StratifyTest, PositiveRecursionStaysInOneStratum) {
  Program p = MustParse(R"(
    Mark(x) :- Lab_a(x).
    Mark(x) :- Child(y, x), Mark(y).
    ?- Mark.
  )");
  Result<std::map<std::string, int>> strata = Stratify(p);
  ASSERT_TRUE(strata.ok());
  EXPECT_EQ(strata.value().at("Mark"), 0);
}

TEST(AugmentLabelsTest, PreservesStructureAndAddsLabels) {
  Rng rng(3);
  RandomTreeOptions opts;
  opts.num_nodes = 30;
  Tree t = RandomTree(&rng, opts);
  std::map<std::string, NodeSet> annotations;
  NodeSet evens(t.num_nodes());
  for (NodeId v = 0; v < t.num_nodes(); v += 2) evens.Insert(v);
  annotations.emplace("__even", evens);
  Tree augmented = AugmentLabels(t, annotations);
  ASSERT_EQ(augmented.num_nodes(), t.num_nodes());
  for (NodeId v = 0; v < t.num_nodes(); ++v) {
    EXPECT_EQ(augmented.parent(v), t.parent(v));
    EXPECT_EQ(augmented.next_sibling(v), t.next_sibling(v));
    EXPECT_EQ(augmented.HasLabel(v, "__even"), v % 2 == 0);
    for (LabelId l : t.labels(v)) {
      EXPECT_TRUE(augmented.HasLabel(v, t.label_table().Name(l)));
    }
  }
}

TEST(EvaluateStratifiedTest, NodesWithoutBDescendants) {
  // Chain a b a b a: NoB holds at nodes whose subtree below has no b.
  Tree t = Chain(5, "a", "b");
  Program p = MustParse(R"(
    HasB(x) :- Child+(x, y), Lab_b(y).
    NoB(x)  :- Dom(x), not HasB(x).
    ?- NoB.
  )");
  StratifiedStats stats;
  Result<NodeSet> r = EvaluateStratified(p, t, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Node 3 (b) has only node 4 (a) below; node 4 is a leaf.
  EXPECT_EQ(r.value().ToVector(), (std::vector<NodeId>{3, 4}));
  EXPECT_EQ(stats.strata, 2);
}

TEST(EvaluateStratifiedTest, PlainProgramsStillWork) {
  Tree t = Chain(4, "a", "b");
  Program p = MustParse("Q(x) :- Lab_b(x). ?- Q.");
  Result<NodeSet> stratified = EvaluateStratified(p, t);
  Result<NodeSet> plain = EvaluateDatalog(p, t);
  ASSERT_TRUE(stratified.ok());
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(stratified.value().ToVector(), plain.value().ToVector());
}

TEST(EvaluateStratifiedTest, DoubleNegation) {
  Tree t = Chain(6, "a", "b");
  Program p = MustParse(R"(
    HasB(x)  :- Child+(x, y), Lab_b(y).
    NoB(x)   :- Dom(x), not HasB(x).
    HasB2(x) :- Dom(x), not NoB(x).
    ?- HasB2.
  )");
  Result<NodeSet> direct = EvaluateStratified(p, t);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  Program positive = MustParse(R"(
    HasB(x) :- Child+(x, y), Lab_b(y).
    ?- HasB.
  )");
  Result<NodeSet> expected = EvaluateDatalog(positive, t);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(direct.value().ToVector(), expected.value().ToVector());
}

// Full Core XPath (with negation) through the stratified pipeline must
// match the set-at-a-time evaluator — the Section 3 claim, engine-style.
class StratifiedXPathTest : public ::testing::TestWithParam<int> {};

TEST_P(StratifiedXPathTest, NegatedXPathMatchesEvaluator) {
  Rng rng(GetParam());
  RandomTreeOptions opts;
  opts.num_nodes = 22;
  opts.attach_window = 1 + GetParam() % 5;
  opts.alphabet = {"a", "b", "c"};
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);

  const char* kQueries[] = {
      "//a[not(b)]",
      "//a[not(descendant::b)]/c",
      "//b[not(c) and not(parent::a)]",
      "//a[not(b[not(c)])]",
      "descendant::*[not(lab() = \"a\") and not(lab() = \"b\")]",
      "//a[not(following::b)]",
      "//c[not(.//a[not(b)])]",
  };
  for (const char* text : kQueries) {
    auto p = std::move(xpath::ParseXPath(text)).value();
    Result<Program> program = xpath::XPathToStratifiedDatalog(*p);
    ASSERT_TRUE(program.ok()) << text << ": "
                              << program.status().ToString();
    Result<NodeSet> via_datalog = EvaluateStratified(program.value(), t);
    ASSERT_TRUE(via_datalog.ok()) << text << ": "
                                  << via_datalog.status().ToString();
    NodeSet direct = xpath::EvalQueryFromRoot(t, o, *p);
    EXPECT_EQ(via_datalog.value().ToVector(), direct.ToVector()) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StratifiedXPathTest, ::testing::Range(0, 8));

TEST(StratifiedXPathTest, PositiveQueriesProduceSameProgram) {
  auto p = std::move(xpath::ParseXPath("//a[b]/c")).value();
  auto plain = std::move(xpath::XPathToDatalog(*p)).value();
  auto strat = std::move(xpath::XPathToStratifiedDatalog(*p)).value();
  EXPECT_EQ(plain.ToString(), strat.ToString());
}

TEST(StratifiedXPathTest, PlainEvaluatorRejectsNegatedPrograms) {
  auto p = std::move(xpath::ParseXPath("//a[not(b)]")).value();
  auto program = std::move(xpath::XPathToStratifiedDatalog(*p)).value();
  Tree t = Chain(3, "a", "b");
  EXPECT_FALSE(EvaluateDatalog(program, t).ok());
}

}  // namespace
}  // namespace datalog
}  // namespace treeq
