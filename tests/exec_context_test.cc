#include "util/exec_context.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "fault/fault.h"
#include "obs/stats.h"
#include "tree/generator.h"
#include "tree/orders.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace treeq {
namespace {

using std::chrono::hours;
using std::chrono::milliseconds;

TEST(ExecContextTest, UnboundedNeverTripsAndNeverWrites) {
  const ExecContext& exec = ExecContext::Unbounded();
  EXPECT_FALSE(exec.has_limits());
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(exec.Charge().ok());
  }
  EXPECT_TRUE(exec.ChargeMemory(uint64_t{1} << 40).ok());
  EXPECT_TRUE(exec.CheckNow().ok());
  EXPECT_FALSE(exec.expired());
  // The fast path performs no bookkeeping writes.
  EXPECT_EQ(exec.visits_used(), 0u);
}

TEST(ExecContextTest, VisitBudgetIsDeterministic) {
  ExecContext exec = ExecContext::WithVisitBudget(100);
  EXPECT_TRUE(exec.has_limits());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(exec.Charge().ok()) << "charge " << i;
  }
  Status s = exec.Charge();
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(exec.expired());
  EXPECT_EQ(exec.visits_used(), 100u);
  // Sticky: every later charge reports the same cause, with no more
  // budget consumed.
  EXPECT_EQ(exec.Charge().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(exec.CheckNow().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(exec.visits_used(), 100u);
}

TEST(ExecContextTest, MultiUnitChargesCountOnce) {
  ExecContext exec = ExecContext::WithVisitBudget(100);
  EXPECT_TRUE(exec.Charge(60).ok());
  EXPECT_TRUE(exec.Charge(40).ok());
  EXPECT_EQ(exec.Charge(1).code(), StatusCode::kResourceExhausted);
}

TEST(ExecContextTest, VisitBudgetOverflowIsABudgetTrip) {
  ExecContext exec = ExecContext::WithVisitBudget(UINT64_MAX - 1);
  EXPECT_TRUE(exec.Charge(UINT64_MAX - 1).ok());
  EXPECT_EQ(exec.Charge(UINT64_MAX).code(), StatusCode::kResourceExhausted);
}

TEST(ExecContextTest, MemoryBudget) {
  ExecContext::Limits limits;
  limits.memory_budget = 1024;
  ExecContext exec(limits);
  EXPECT_TRUE(exec.ChargeMemory(1000).ok());
  EXPECT_EQ(exec.memory_used(), 1000u);
  Status s = exec.ChargeMemory(100);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(s.message().find("memory"), std::string::npos);
  // Sticky across charge kinds.
  EXPECT_EQ(exec.Charge().code(), StatusCode::kResourceExhausted);
}

TEST(ExecContextTest, CancelIsStickyAndCrossThread) {
  ExecContext::Limits limits;
  limits.visit_budget = UINT64_MAX - 1;  // limited, but effectively infinite
  ExecContext exec(limits);
  EXPECT_TRUE(exec.Charge().ok());

  std::atomic<bool> aborted{false};
  std::thread worker([&] {
    while (exec.Charge().ok()) {
    }
    aborted.store(true);
  });
  exec.Cancel();
  worker.join();
  EXPECT_TRUE(aborted.load());
  EXPECT_TRUE(exec.cancelled());
  EXPECT_EQ(exec.Charge().code(), StatusCode::kCancelled);
  EXPECT_EQ(exec.CheckNow().code(), StatusCode::kCancelled);
}

TEST(ExecContextTest, CancelUnlimitedContextStillTrips) {
  // A context with no limits at all must still honour Cancel().
  ExecContext exec;
  EXPECT_TRUE(exec.Charge().ok());
  exec.Cancel();
  EXPECT_EQ(exec.Charge().code(), StatusCode::kCancelled);
  EXPECT_TRUE(exec.expired());
}

TEST(ExecContextTest, ExpiredDeadlineTripsOnFirstCharge) {
  ExecContext exec = ExecContext::WithDeadline(milliseconds(-1));
  EXPECT_EQ(exec.Charge().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(exec.CheckNow().code(), StatusCode::kDeadlineExceeded);
}

TEST(ExecContextTest, DeadlineCheckedWithinOneStride) {
  ExecContext exec = ExecContext::WithDeadline(milliseconds(5));
  std::this_thread::sleep_for(milliseconds(10));
  // The clock is only consulted every kDeadlineStride units, so a single
  // charge may pass; within one stride the trip is guaranteed.
  Status s = Status::OK();
  for (uint64_t i = 0; i <= ExecContext::kDeadlineStride && s.ok(); ++i) {
    s = exec.Charge();
  }
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
}

TEST(ExecContextTest, FarDeadlineDoesNotTrip) {
  ExecContext exec = ExecContext::WithDeadline(hours(1));
  for (uint64_t i = 0; i < 4 * ExecContext::kDeadlineStride; ++i) {
    ASSERT_TRUE(exec.Charge().ok());
  }
  EXPECT_TRUE(exec.CheckNow().ok());
}

#ifndef TREEQ_OBS_DISABLED
TEST(ExecContextTest, AbortCausesCountedOnce) {
  obs::StatsRegistry& reg = obs::StatsRegistry::Global();
  reg.Reset();

  ExecContext budget = ExecContext::WithVisitBudget(1);
  EXPECT_TRUE(budget.Charge().ok());
  EXPECT_FALSE(budget.Charge().ok());
  EXPECT_FALSE(budget.Charge().ok());  // sticky repeat: not re-counted
  EXPECT_EQ(reg.CounterValue("exec.budget_exhausted"), 1u);

  ExecContext cancelled;
  cancelled.Cancel();
  EXPECT_FALSE(cancelled.Charge().ok());
  EXPECT_EQ(reg.CounterValue("exec.cancelled"), 1u);

  ExecContext late = ExecContext::WithDeadline(milliseconds(-1));
  EXPECT_FALSE(late.CheckNow().ok());
  EXPECT_EQ(reg.CounterValue("exec.deadline_exceeded"), 1u);

  // Partial progress is recorded at abort time.
  auto hist = reg.HistogramValues();
  ASSERT_TRUE(hist.contains("exec.visits_at_abort"));
  EXPECT_EQ(hist["exec.visits_at_abort"].count, 3u);
}
#endif  // TREEQ_OBS_DISABLED

// ---------------------------------------------------------------------------
// End-to-end: a real evaluator honours the budget deterministically and
// reports partial progress.

TEST(ExecContextTest, EvaluatorBudgetIsReproducible) {
  Rng rng(7);
  RandomTreeOptions opt;
  opt.num_nodes = 200;
  Tree tree = RandomTree(&rng, opt);
  TreeOrders orders = ComputeOrders(tree);
  auto path = xpath::ParseXPath("//a[b]//c").value();

  // Find the exact cost of the query under an unlimited (but metered)
  // context, then verify the boundary is sharp: cost visits succeed,
  // cost - 1 fail, across repeated runs.
  ExecContext::Limits metered;
  metered.visit_budget = UINT64_MAX - 1;
  ExecContext meter(metered);
  ASSERT_TRUE(xpath::EvalQueryFromRoot(tree, orders, *path, meter).ok());
  const uint64_t cost = meter.visits_used();
  ASSERT_GT(cost, 0u);

  for (int run = 0; run < 3; ++run) {
    ExecContext enough = ExecContext::WithVisitBudget(cost);
    Result<NodeSet> ok = xpath::EvalQueryFromRoot(tree, orders, *path, enough);
    EXPECT_TRUE(ok.ok()) << run;
    EXPECT_EQ(enough.visits_used(), cost);

    ExecContext starved = ExecContext::WithVisitBudget(cost - 1);
    Result<NodeSet> fail =
        xpath::EvalQueryFromRoot(tree, orders, *path, starved);
    ASSERT_FALSE(fail.ok()) << run;
    EXPECT_EQ(fail.status().code(), StatusCode::kResourceExhausted);
    // Partial progress: the failed run spent its whole budget.
    EXPECT_EQ(starved.visits_used(), cost - 1);
  }
}

// ---------------------------------------------------------------------------
// Fault injection through the real abort machinery (src/fault)
// ---------------------------------------------------------------------------

TEST(ExecContextFaultTest, InjectedTripsAreStickyAndRenderRealStatuses) {
  if (!fault::kFaultPointsCompiledIn) {
    GTEST_SKIP() << "fault points compiled out";
  }
  struct Case {
    const char* point;
    StatusCode code;
  };
  for (const Case& c : {Case{"exec.budget.charge",
                             StatusCode::kResourceExhausted},
                        Case{"exec.deadline.check",
                             StatusCode::kDeadlineExceeded}}) {
    SCOPED_TRACE(c.point);
    fault::FaultPlan plan;
    plan.seed = 1;
    fault::FaultRule rule;
    rule.point = c.point;
    plan.rules.push_back(rule);
    fault::ScopedFaultPlan armed(plan);
    // A bounded context (far from its real limits) trips through the same
    // sticky-abort path a genuine limit uses.
    ExecContext context = ExecContext::WithVisitBudget(uint64_t{1} << 40);
    Status status = context.Charge();
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), c.code);
    // Sticky: later charges keep failing with the same kind, and the trip
    // fans out to forked children exactly like a real abort.
    EXPECT_EQ(context.Charge().code(), c.code);
    auto child = context.Fork(100, 100);
    EXPECT_FALSE(child->Charge().ok());
  }
}

TEST(ExecContextFaultTest, InjectedMemoryTripUsesMemoryAbortKind) {
  if (!fault::kFaultPointsCompiledIn) {
    GTEST_SKIP() << "fault points compiled out";
  }
  fault::FaultPlan plan;
  plan.seed = 1;
  fault::FaultRule rule;
  rule.point = "exec.memory.charge";
  plan.rules.push_back(rule);
  fault::ScopedFaultPlan armed(plan);
  ExecContext context = ExecContext::WithVisitBudget(uint64_t{1} << 40);
  Status status = context.ChargeMemory(64);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
}

TEST(ExecContextFaultTest, InjectionNeverTouchesTheUnboundedContext) {
  // Holds in every build: the shared Unbounded() context takes the fast
  // path and the slow-path injection sites are guarded on limited_.
  fault::FaultPlan plan;
  plan.seed = 1;
  for (const char* point :
       {"exec.budget.charge", "exec.deadline.check", "exec.memory.charge"}) {
    fault::FaultRule rule;
    rule.point = point;
    plan.rules.push_back(rule);
  }
  fault::ScopedFaultPlan armed(plan);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(ExecContext::Unbounded().Charge().ok());
  }
  EXPECT_TRUE(ExecContext::Unbounded().ChargeMemory(1024).ok());
  EXPECT_TRUE(ExecContext::Unbounded().CheckNow().ok());
}

}  // namespace
}  // namespace treeq
