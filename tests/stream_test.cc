#include <gtest/gtest.h>

#include <functional>

#include "stream/sax.h"
#include "stream/stream_eval.h"
#include "tree/generator.h"
#include "tree/orders.h"
#include "tree/xml.h"
#include "util/random.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"
#include "xpath/to_forward.h"

namespace treeq {
namespace stream {
namespace {

std::unique_ptr<xpath::PathExpr> MustParse(const std::string& text) {
  Result<std::unique_ptr<xpath::PathExpr>> p = xpath::ParseXPath(text);
  EXPECT_TRUE(p.ok()) << text << ": " << p.status().ToString();
  return std::move(p).value();
}

TEST(SaxTest, EventsAreBalancedAndDocumentOrdered) {
  Rng rng(3);
  RandomTreeOptions opts;
  opts.num_nodes = 40;
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);
  std::vector<SaxEvent> events = ToSaxEvents(t);
  ASSERT_EQ(events.size(), 2u * t.num_nodes());
  int depth = 0;
  int starts_seen = 0;
  for (const SaxEvent& e : events) {
    if (e.kind == SaxEvent::Kind::kStartElement) {
      // Start events come in pre-order.
      EXPECT_EQ(o.pre[e.node], starts_seen);
      ++starts_seen;
      ++depth;
      EXPECT_FALSE(e.labels.empty());
    } else {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
}

TEST(SaxTest, XmlTextStreamMatchesTreeStream) {
  const char* kDoc =
      "<catalog><product id=\"1\"><name/>text<price/></product>"
      "<!-- c --><product/></catalog>";
  Result<Tree> tree = ParseXml(kDoc);
  ASSERT_TRUE(tree.ok());
  std::vector<SaxEvent> from_tree = ToSaxEvents(tree.value());
  std::vector<SaxEvent> from_text;
  ASSERT_TRUE(StreamXmlText(kDoc, [&from_text](const SaxEvent& e) {
                from_text.push_back(e);
              }).ok());
  ASSERT_EQ(from_tree.size(), from_text.size());
  for (size_t i = 0; i < from_tree.size(); ++i) {
    EXPECT_EQ(from_tree[i].kind, from_text[i].kind) << i;
    EXPECT_EQ(from_tree[i].labels, from_text[i].labels) << i;
  }
}

TEST(SaxTest, XmlTextStreamRejectsMalformed) {
  auto sink = [](const SaxEvent&) {};
  EXPECT_FALSE(StreamXmlText("<a><b></a></b>", sink).ok());
  EXPECT_FALSE(StreamXmlText("<a>", sink).ok());
  EXPECT_FALSE(StreamXmlText("<a/><b/>", sink).ok());
  EXPECT_TRUE(StreamXmlText("<?xml version=\"1.0\"?><a><b/></a>", sink).ok());
}

TEST(StreamMatcherTest, CompileRejectsBackwardAxes) {
  EXPECT_FALSE(StreamMatcher::Compile(*MustParse("a/parent::b")).ok());
  EXPECT_FALSE(StreamMatcher::Compile(*MustParse("ancestor::a")).ok());
  EXPECT_FALSE(
      StreamMatcher::Compile(*MustParse("following-sibling::a")).ok());
}

TEST(StreamMatcherTest, SelectionSupportClassification) {
  auto simple = StreamMatcher::Compile(*MustParse("//a/b[c]"));
  ASSERT_TRUE(simple.ok());
  EXPECT_TRUE(simple.value()->selection_supported());
  auto hard = StreamMatcher::Compile(*MustParse("//a[c]/b"));
  ASSERT_TRUE(hard.ok());
  EXPECT_FALSE(hard.value()->selection_supported());
}

class StreamAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(StreamAgreementTest, BooleanMatchesInMemoryEvaluator) {
  Rng rng(GetParam());
  RandomTreeOptions opts;
  opts.num_nodes = 30;
  opts.attach_window = 1 + GetParam() % 6;
  opts.alphabet = {"a", "b", "c"};
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);

  const char* kQueries[] = {
      "a",
      "//a",
      "//a/b",
      "//a//b[c]",
      "//a[b and c]",
      "//a[b or not(c)]",
      "a/b/c",
      "//b[not(descendant::a)]",
      "/a//c",
      ".[a]//b",
      "//a[.//b[c] and not(b/c)]",
      "(//a/b | //c)",
      "//a[descendant-or-self::c]",
  };
  for (const char* text : kQueries) {
    std::unique_ptr<xpath::PathExpr> p = MustParse(text);
    Result<bool> streamed = StreamMatcher::MatchTree(*p, t);
    ASSERT_TRUE(streamed.ok()) << text << ": "
                               << streamed.status().ToString();
    bool expected = !xpath::EvalQueryFromRoot(t, o, *p).empty();
    EXPECT_EQ(streamed.value(), expected) << text;
  }
}

TEST_P(StreamAgreementTest, SelectionMatchesInMemoryEvaluator) {
  Rng rng(100 + GetParam());
  RandomTreeOptions opts;
  opts.num_nodes = 35;
  opts.alphabet = {"a", "b", "c"};
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);

  // Selection-supported queries: non-final steps carry label tests only.
  const char* kQueries[] = {
      "a",
      "//a",
      "//a/b",
      "a/b/c",
      "//a//b",
      "//a/b[c]",
      "//b[not(c) and descendant::a]",
      "(//a | //b/c)",
      "//c[.//a//b]",
  };
  for (const char* text : kQueries) {
    std::unique_ptr<xpath::PathExpr> p = MustParse(text);
    Result<std::vector<NodeId>> streamed =
        StreamMatcher::SelectFromTree(*p, t);
    ASSERT_TRUE(streamed.ok()) << text << ": "
                               << streamed.status().ToString();
    NodeSet expected = xpath::EvalQueryFromRoot(t, o, *p);
    EXPECT_EQ(streamed.value(), expected.ToVector()) << text;
  }
}

// Random downward forward queries (with and/or/not in qualifiers): the
// streaming Boolean answer must match the in-memory evaluator.
TEST_P(StreamAgreementTest, RandomQueriesMatchInMemoryEvaluator) {
  Rng rng(200 + GetParam());
  RandomTreeOptions opts;
  opts.num_nodes = 28;
  opts.attach_window = 1 + GetParam() % 5;
  opts.alphabet = {"a", "b", "c"};
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);

  static const Axis kDownward[] = {Axis::kSelf, Axis::kChild,
                                   Axis::kDescendant,
                                   Axis::kDescendantOrSelf};
  std::function<std::unique_ptr<xpath::PathExpr>(int)> gen_path;
  std::function<std::unique_ptr<xpath::Qualifier>(int)> gen_qual =
      [&](int depth) -> std::unique_ptr<xpath::Qualifier> {
    int pick = static_cast<int>(rng.Uniform(0, depth <= 0 ? 1 : 5));
    switch (pick) {
      case 0:
      case 1:
        return xpath::Qualifier::MakeLabel(
            std::string(1, static_cast<char>('a' + rng.Uniform(0, 2))));
      case 2:
        return xpath::Qualifier::MakePath(gen_path(depth - 1));
      case 3:
        return xpath::Qualifier::MakeAnd(gen_qual(depth - 1),
                                         gen_qual(depth - 1));
      case 4:
        return xpath::Qualifier::MakeOr(gen_qual(depth - 1),
                                        gen_qual(depth - 1));
      default:
        return xpath::Qualifier::MakeNot(gen_qual(depth - 1));
    }
  };
  gen_path = [&](int depth) -> std::unique_ptr<xpath::PathExpr> {
    auto step = xpath::PathExpr::MakeStep(kDownward[rng.Uniform(0, 3)]);
    if (rng.Bernoulli(0.6)) {
      step->qualifiers.push_back(gen_qual(depth));
    }
    if (depth > 0 && rng.Bernoulli(0.4)) {
      return xpath::PathExpr::MakeSeq(std::move(step), gen_path(depth - 1));
    }
    if (depth > 0 && rng.Bernoulli(0.2)) {
      return xpath::PathExpr::MakeUnion(std::move(step), gen_path(depth - 1));
    }
    return step;
  };

  for (int trial = 0; trial < 25; ++trial) {
    std::unique_ptr<xpath::PathExpr> p = gen_path(3);
    Result<bool> streamed = StreamMatcher::MatchTree(*p, t);
    ASSERT_TRUE(streamed.ok()) << xpath::ToString(*p);
    bool expected = !xpath::EvalQueryFromRoot(t, o, *p).empty();
    EXPECT_EQ(streamed.value(), expected) << xpath::ToString(*p);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamAgreementTest, ::testing::Range(0, 8));

TEST(StreamMatcherTest, MemoryScalesWithDepthNotSize) {
  std::unique_ptr<xpath::PathExpr> p = MustParse("//a[b]//c");
  // Wide flat document: many nodes, depth 2.
  Tree wide = Caterpillar(1, 5000, "s", "l");
  StreamStats wide_stats;
  ASSERT_TRUE(StreamMatcher::MatchTree(*p, wide, &wide_stats).ok());
  EXPECT_LE(wide_stats.peak_frames, 3u);
  // Deep chain: few nodes relative to the wide doc, depth 999.
  Tree deep = Chain(1000);
  StreamStats deep_stats;
  ASSERT_TRUE(StreamMatcher::MatchTree(*p, deep, &deep_stats).ok());
  EXPECT_EQ(deep_stats.peak_frames, 1000u);
  EXPECT_GT(deep_stats.frame_bytes, 0u);
}

TEST(StreamMatcherTest, PipelineWithForwardRewriting) {
  // A backward query run by the streaming matcher after ToForwardXPath.
  Rng rng(77);
  CatalogOptions copts;
  copts.num_products = 20;
  Tree t = CatalogDocument(&rng, copts);
  TreeOrders o = ComputeOrders(t);
  std::unique_ptr<xpath::PathExpr> backward =
      MustParse("//rating5/ancestor::product");
  Result<std::unique_ptr<xpath::PathExpr>> forward =
      xpath::ToForwardXPath(*backward);
  ASSERT_TRUE(forward.ok()) << forward.status().ToString();
  Result<bool> streamed = StreamMatcher::MatchTree(*forward.value(), t);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  EXPECT_EQ(streamed.value(),
            !xpath::EvalQueryFromRoot(t, o, *backward).empty());
}

}  // namespace
}  // namespace stream
}  // namespace treeq
