#include "cq/yannakakis.h"

#include <gtest/gtest.h>

#include "cq/enumerate.h"
#include "cq/naive.h"
#include "cq/parser.h"
#include "tree/generator.h"
#include "util/random.h"

namespace treeq {
namespace cq {
namespace {

ConjunctiveQuery MustParse(const std::string& text) {
  Result<ConjunctiveQuery> q = ParseCq(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(q).value();
}

// Random tree-shaped CQ over the given axis pool: variables form a random
// tree, each edge gets a random axis and direction, labels are sprinkled.
ConjunctiveQuery RandomTreeQuery(Rng* rng, int num_vars,
                                 const std::vector<Axis>& pool,
                                 const std::vector<std::string>& labels,
                                 int arity) {
  ConjunctiveQuery q;
  for (int v = 0; v < num_vars; ++v) q.AddVar("v" + std::to_string(v));
  for (int v = 1; v < num_vars; ++v) {
    int parent = static_cast<int>(rng->Uniform(0, v - 1));
    Axis axis = pool[rng->Uniform(0, static_cast<int64_t>(pool.size()) - 1)];
    if (rng->Bernoulli(0.5)) {
      q.AddAxisAtom(axis, parent, v);
    } else {
      q.AddAxisAtom(InverseAxis(axis), v, parent);
    }
  }
  for (int v = 0; v < num_vars; ++v) {
    if (rng->Bernoulli(0.4)) {
      q.AddLabelAtom(
          labels[rng->Uniform(0, static_cast<int64_t>(labels.size()) - 1)],
          v);
    }
  }
  for (int h = 0; h < arity; ++h) {
    q.AddHeadVar(static_cast<int>(rng->Uniform(0, num_vars - 1)));
  }
  return q;
}

TEST(FullReducerTest, RejectsNonTreeShaped) {
  Tree t = Chain(3);
  TreeOrders o = ComputeOrders(t);
  ConjunctiveQuery cyclic =
      MustParse("Q() :- Child(x, y), Child(y, z), Child+(x, z).");
  EXPECT_FALSE(FullReducer(cyclic, t, o).ok());
  ConjunctiveQuery disconnected =
      MustParse("Q() :- Lab_a(x), Child(y, z).");
  EXPECT_FALSE(FullReducer(disconnected, t, o).ok());
}

TEST(FullReducerTest, CandidateSetsOnChain) {
  Tree t = Chain(5, "a", "b");  // a b a b a
  TreeOrders o = ComputeOrders(t);
  ConjunctiveQuery q =
      MustParse("Q(x) :- Child(x, y), Child(y, z), Lab_a(z).");
  Result<ReducedQuery> r = FullReducer(q, t, o, 0);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value().satisfiable);
  // x at nodes 0, 2 (z = x+2 must be labeled a: nodes 2 and 4).
  EXPECT_EQ(r.value().candidates[0].ToVector(), (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(r.value().candidates[2].ToVector(), (std::vector<NodeId>{2, 4}));
}

// Proposition 6.9 / the full-reducer property: every candidate value
// participates in at least one solution.
class FullReducerPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FullReducerPropertyTest, EveryCandidateExtendsToASolution) {
  Rng rng(GetParam());
  RandomTreeOptions opts;
  opts.num_nodes = 18;
  opts.attach_window = 1 + GetParam() % 5;
  opts.alphabet = {"a", "b"};
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);
  std::vector<Axis> pool = {Axis::kChild, Axis::kDescendant,
                            Axis::kNextSibling, Axis::kFollowingSibling,
                            Axis::kFollowing, Axis::kDescendantOrSelf};
  for (int trial = 0; trial < 10; ++trial) {
    ConjunctiveQuery q = RandomTreeQuery(
        &rng, 2 + static_cast<int>(rng.Uniform(0, 3)), pool, {"a", "b"}, 0);
    // All-variable head for the oracle.
    ConjunctiveQuery full = q;
    for (int v = 0; v < q.num_vars(); ++v) full.AddHeadVar(v);
    Result<ReducedQuery> reduced = FullReducer(q, t, o);
    ASSERT_TRUE(reduced.ok()) << q.ToString();
    Result<TupleSet> solutions = NaiveEvaluateCq(full, t, o);
    ASSERT_TRUE(solutions.ok());
    EXPECT_EQ(reduced.value().satisfiable, !solutions.value().empty())
        << q.ToString();
    // Candidate sets equal per-variable projections of the solutions.
    for (int v = 0; v < q.num_vars(); ++v) {
      NodeSet projection(t.num_nodes());
      for (const auto& sol : solutions.value()) projection.Insert(sol[v]);
      EXPECT_EQ(reduced.value().candidates[v].ToVector(),
                projection.ToVector())
          << q.ToString() << " var " << v;
    }
  }
}

TEST_P(FullReducerPropertyTest, UnaryEvaluationMatchesNaive) {
  Rng rng(400 + GetParam());
  RandomTreeOptions opts;
  opts.num_nodes = 20;
  opts.alphabet = {"a", "b", "c"};
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);
  std::vector<Axis> pool = {Axis::kChild, Axis::kDescendant,
                            Axis::kFollowingSibling, Axis::kNextSibling};
  for (int trial = 0; trial < 10; ++trial) {
    ConjunctiveQuery q = RandomTreeQuery(
        &rng, 2 + static_cast<int>(rng.Uniform(0, 3)), pool,
        {"a", "b", "c"}, 1);
    Result<NodeSet> fast = EvaluateUnaryAcyclic(q, t, o);
    ASSERT_TRUE(fast.ok()) << q.ToString();
    Result<TupleSet> slow = NaiveEvaluateCq(q, t, o);
    ASSERT_TRUE(slow.ok());
    std::vector<NodeId> expected;
    for (const auto& tuple : slow.value()) expected.push_back(tuple[0]);
    EXPECT_EQ(fast.value().ToVector(), expected) << q.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FullReducerPropertyTest,
                         ::testing::Range(0, 8));

// Figure 6 enumeration: all solutions, no duplicates, matches the oracle.
class EnumeratePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(EnumeratePropertyTest, MatchesNaiveOnTreeQueries) {
  Rng rng(800 + GetParam());
  RandomTreeOptions opts;
  opts.num_nodes = 14;
  opts.alphabet = {"a", "b"};
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);
  std::vector<Axis> pool = {Axis::kChild, Axis::kDescendant,
                            Axis::kNextSibling, Axis::kFollowing};
  for (int trial = 0; trial < 8; ++trial) {
    int vars = 2 + static_cast<int>(rng.Uniform(0, 2));
    ConjunctiveQuery q =
        RandomTreeQuery(&rng, vars, pool, {"a", "b"}, /*arity=*/2);
    Result<TupleSet> fast = EvaluateAcyclic(q, t, o);
    ASSERT_TRUE(fast.ok()) << q.ToString();
    Result<TupleSet> slow = NaiveEvaluateCq(q, t, o);
    ASSERT_TRUE(slow.ok());
    EXPECT_EQ(fast.value(), slow.value()) << q.ToString();
  }
}

TEST_P(EnumeratePropertyTest, BacktrackFree) {
  // Count: the number of full recursion completions equals the number of
  // solutions — indirectly validated by requesting a limit and receiving
  // exactly `limit` solutions when more exist.
  Rng rng(900 + GetParam());
  Tree t = Star(30);
  TreeOrders o = ComputeOrders(t);
  ConjunctiveQuery q = MustParse("Q(x, y) :- NextSibling+(x, y).");
  Result<ReducedQuery> reduced = FullReducer(q, t, o);
  ASSERT_TRUE(reduced.ok());
  Result<std::vector<std::vector<NodeId>>> some =
      EnumerateSolutions(q, t, o, reduced.value(), /*limit=*/7);
  ASSERT_TRUE(some.ok());
  EXPECT_EQ(some.value().size(), 7u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnumeratePropertyTest, ::testing::Range(0, 6));

TEST(EnumerateTest, UnsatisfiableYieldsEmpty) {
  Tree t = Chain(3, "a");
  TreeOrders o = ComputeOrders(t);
  ConjunctiveQuery q = MustParse("Q(x) :- Child(x, y), Lab_zzz(y).");
  Result<TupleSet> r = EvaluateAcyclic(q, t, o);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().empty());
}

TEST(EnumerateTest, SolutionsSatisfyAllAtoms) {
  Rng rng(5);
  CatalogOptions copts;
  copts.num_products = 15;
  Tree t = CatalogDocument(&rng, copts);
  TreeOrders o = ComputeOrders(t);
  ConjunctiveQuery q = MustParse(
      "Q(p, r) :- Child+(p, r), Lab_product(p), Lab_review(r), "
      "Child(r, c), Lab_comment(c).");
  Result<ReducedQuery> reduced = FullReducer(q, t, o);
  ASSERT_TRUE(reduced.ok());
  Result<std::vector<std::vector<NodeId>>> all =
      EnumerateSolutions(q, t, o, reduced.value());
  ASSERT_TRUE(all.ok());
  for (const auto& sol : all.value()) {
    for (const AxisAtom& a : q.axis_atoms()) {
      EXPECT_TRUE(AxisHolds(t, o, a.axis, sol[a.var0], sol[a.var1]));
    }
    for (const LabelAtom& a : q.label_atoms()) {
      EXPECT_TRUE(t.HasLabel(sol[a.var], a.label));
    }
  }
}

}  // namespace
}  // namespace cq
}  // namespace treeq
