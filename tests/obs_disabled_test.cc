/// Verifies the TREEQ_OBS_DISABLED contract: with the macro defined before
/// obs.h is included, every TREEQ_OBS_* macro must compile to an empty
/// statement — argument expressions are discarded unevaluated and nothing
/// reaches the registry. This test unit defines the switch locally, so it
/// exercises the disabled expansion even when the library build has
/// instrumentation on.

#define TREEQ_OBS_DISABLED 1
#include "obs/obs.h"

#include <gtest/gtest.h>

#include "obs/flight_recorder.h"
#include "obs/profile.h"
#include "obs/stats.h"

namespace treeq {
namespace obs {
namespace {

TEST(ObsDisabledTest, MacrosCompileToNoOps) {
  StatsRegistry& reg = StatsRegistry::Global();
  reg.Reset();

  int evaluations = 0;
  TREEQ_OBS_INC("disabled.counter");
  TREEQ_OBS_COUNT("disabled.counter", ++evaluations);
  TREEQ_OBS_GAUGE_MAX("disabled.gauge", ++evaluations);
  TREEQ_OBS_GAUGE_SET("disabled.gauge", ++evaluations);
  TREEQ_OBS_HISTOGRAM("disabled.hist", ++evaluations);
  TREEQ_OBS_SPAN("disabled.span");

  // Argument expressions are discarded textually, not evaluated.
  EXPECT_EQ(evaluations, 0);
  // Nothing was registered.
  EXPECT_EQ(reg.CounterValue("disabled.counter"), 0u);
  EXPECT_EQ(reg.GaugeValue("disabled.gauge"), 0u);
  EXPECT_EQ(reg.HistogramValues().count("disabled.hist"), 0u);
  for (const SpanSnapshot& s : reg.SpanTree()) {
    EXPECT_NE(s.name, "disabled.span");
  }
}

TEST(ObsDisabledTest, MacrosAreValidSingleStatements) {
  // Must parse as one statement in unbraced control flow.
  if (true) TREEQ_OBS_INC("disabled.branch");
  for (int i = 0; i < 2; ++i) TREEQ_OBS_COUNT("disabled.loop", i);
  if (true) TREEQ_OBS_FLIGHT_RECORD(QueryProfile{});
  EXPECT_EQ(StatsRegistry::Global().CounterValue("disabled.branch"), 0u);
}

QueryProfile MakeProfileCounting(int* evaluations) {
  ++*evaluations;
  return QueryProfile{};
}

TEST(ObsDisabledTest, FlightRecordMacroDiscardsItsArgument) {
  FlightRecorder& global = FlightRecorder::Global();
  // Even with the global recorder enabled, the disabled macro neither
  // evaluates its argument nor records anything.
  FlightRecorder::Options options;
  options.slow_threshold_ns = UINT64_MAX;
  global.Enable(options);
  int evaluations = 0;
  TREEQ_OBS_FLIGHT_RECORD(MakeProfileCounting(&evaluations));
  EXPECT_EQ(evaluations, 0);
  EXPECT_EQ(global.recorded(), 0u);
  global.Disable();
  global.Clear();

  // The classes themselves stay linkable and usable in disabled builds —
  // only the macro sites vanish.
  FlightRecorder local;
  local.Enable(options);
  local.Record(QueryProfile{});
  EXPECT_EQ(local.recorded(), 1u);
}

}  // namespace
}  // namespace obs
}  // namespace treeq
