// Tests for treeq::Document (tree + lazily computed TreeOrders in one
// value) and the engine's DocumentStore.

#include "tree/document.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "engine/document_store.h"
#include "tree/generator.h"
#include "tree/orders.h"
#include "tree/xml.h"
#include "util/random.h"

namespace treeq {
namespace {

Tree SmallTree() { return ParseXml("<a><b/><c><b/></c></a>").value(); }

TEST(DocumentTest, LazyOrdersMatchComputeOrders) {
  Document doc(SmallTree());
  EXPECT_FALSE(doc.orders_computed());
  TreeOrders expected = ComputeOrders(doc.tree());
  const TreeOrders& lazy = doc.orders();
  EXPECT_TRUE(doc.orders_computed());
  EXPECT_EQ(lazy.pre, expected.pre);
  EXPECT_EQ(lazy.post, expected.post);
  EXPECT_EQ(lazy.bflr, expected.bflr);
  // Same object on every call.
  EXPECT_EQ(&doc.orders(), &lazy);
}

TEST(DocumentTest, PrecomputedOrdersAreUsedAsIs) {
  Tree tree = SmallTree();
  TreeOrders orders = ComputeOrders(tree);
  const int* pre_data = orders.pre.data();
  Document doc(std::move(tree), std::move(orders));
  EXPECT_TRUE(doc.orders_computed());
  EXPECT_EQ(doc.orders().pre.data(), pre_data);
}

TEST(DocumentTest, ConcurrentFirstAccessComputesOnce) {
  Rng rng(7);
  RandomTreeOptions opts;
  opts.num_nodes = 5000;
  Document doc(RandomTree(&rng, opts));
  std::vector<std::thread> threads;
  std::vector<const TreeOrders*> seen(8, nullptr);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&doc, &seen, t] { seen[t] = &doc.orders(); });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < 8; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(doc.orders().num_nodes(), doc.num_nodes());
}

TEST(DocumentTest, MakeDocumentHelpers) {
  DocumentPtr lazy = MakeDocument(SmallTree());
  EXPECT_FALSE(lazy->orders_computed());
  DocumentPtr eager = MakeDocumentWithOrders(SmallTree());
  EXPECT_TRUE(eager->orders_computed());
  EXPECT_EQ(lazy->orders().pre, eager->orders().pre);
}

TEST(DocumentStoreTest, AddGetRemove) {
  engine::DocumentStore store;
  Result<DocumentPtr> added = store.Add("doc1", SmallTree());
  ASSERT_TRUE(added.ok());
  // The store precomputes orders so serving threads never race on them.
  EXPECT_TRUE((*added)->orders_computed());

  Result<DocumentPtr> got = store.Get("doc1");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().get(), added.value().get());

  EXPECT_EQ(store.Get("missing").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.Remove("missing").code(), StatusCode::kNotFound);

  EXPECT_TRUE(store.Remove("doc1").ok());
  EXPECT_EQ(store.size(), 0u);
  // The handle we already hold outlives removal.
  EXPECT_EQ((*added)->num_nodes(), 4);
}

TEST(DocumentStoreTest, DuplicateNameRejected) {
  engine::DocumentStore store;
  ASSERT_TRUE(store.Add("doc", SmallTree()).ok());
  EXPECT_EQ(store.Add("doc", SmallTree()).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store.size(), 1u);
}

TEST(DocumentStoreTest, NamesSortedAndConcurrentAccess) {
  engine::DocumentStore store;
  ASSERT_TRUE(store.Add("b", SmallTree()).ok());
  ASSERT_TRUE(store.Add("a", SmallTree()).ok());
  ASSERT_TRUE(store.Add("c", SmallTree()).ok());
  EXPECT_EQ(store.Names(), (std::vector<std::string>{"a", "b", "c"}));

  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < 200; ++i) {
        EXPECT_TRUE(store.Get("a").ok());
        if (i == 50 && t == 0) {
          EXPECT_TRUE(store.Add("d", SmallTree()).ok());
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(store.size(), 4u);
}

}  // namespace
}  // namespace treeq
