#include "tree/treewidth.h"

#include <gtest/gtest.h>

#include "tree/generator.h"
#include "util/random.h"

namespace treeq {
namespace {

TEST(GraphTest, AddEdgeDeduplicates) {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.AddEdge(0, 0);  // self-loop ignored
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_EQ(g.adjacency[0].size(), 1u);
}

TEST(TreewidthTest, VerifierAcceptsTrivialDecomposition) {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  TreeDecomposition d;
  d.bags = {{0, 1, 2}};
  d.parent = {-1};
  EXPECT_TRUE(VerifyDecomposition(g, d).ok());
  EXPECT_EQ(d.Width(), 2);
}

TEST(TreewidthTest, VerifierRejectsMissingVertex) {
  Graph g(3);
  TreeDecomposition d;
  d.bags = {{0, 1}};
  d.parent = {-1};
  EXPECT_FALSE(VerifyDecomposition(g, d).ok());
}

TEST(TreewidthTest, VerifierRejectsUncoveredEdge) {
  Graph g(3);
  g.AddEdge(0, 2);
  TreeDecomposition d;
  d.bags = {{0, 1}, {1, 2}};
  d.parent = {-1, 0};
  EXPECT_FALSE(VerifyDecomposition(g, d).ok());
}

TEST(TreewidthTest, VerifierRejectsDisconnectedOccurrences) {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  TreeDecomposition d;
  // Vertex 0 occurs in bags 0 and 2, but bag 1 in between lacks it.
  d.bags = {{0, 1}, {1, 2}, {0, 2}};
  d.parent = {-1, 0, 1};
  EXPECT_FALSE(VerifyDecomposition(g, d).ok());
}

// Figure 4 / Section 4: every (Child, NextSibling)-tree graph has an
// explicit decomposition of width at most 2.
class Fig4PropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(Fig4PropertyTest, ExplicitDecompositionIsValidWidthTwo) {
  Rng rng(GetParam());
  RandomTreeOptions opts;
  opts.num_nodes = 10 + 30 * GetParam();
  opts.attach_window = 1 + GetParam() % 11;
  Tree t = RandomTree(&rng, opts);
  Graph g = ChildNextSiblingGraph(t);
  TreeDecomposition d = DecomposeChildNextSibling(t);
  EXPECT_TRUE(VerifyDecomposition(g, d).ok());
  EXPECT_LE(d.Width(), 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fig4PropertyTest, ::testing::Range(0, 10));

TEST(TreewidthTest, Figure4ShapesExactWidth) {
  // A star: union graph is root-to-children edges plus the sibling chain;
  // width exactly 2 once there are >= 2 children.
  Tree star = Star(6);
  TreeDecomposition d = DecomposeChildNextSibling(star);
  EXPECT_TRUE(VerifyDecomposition(ChildNextSiblingGraph(star), d).ok());
  EXPECT_EQ(d.Width(), 2);

  // A chain: the union graph is a path (tree-width 1); the explicit
  // construction yields bags of size 2.
  Tree chain = Chain(6);
  TreeDecomposition dc = DecomposeChildNextSibling(chain);
  EXPECT_TRUE(VerifyDecomposition(ChildNextSiblingGraph(chain), dc).ok());
  EXPECT_EQ(dc.Width(), 1);
}

TEST(GreedyDecomposeTest, TreeGraphGetsWidthOne) {
  Graph g(5);  // a path
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 4);
  TreeDecomposition d = GreedyDecompose(g);
  EXPECT_TRUE(VerifyDecomposition(g, d).ok());
  EXPECT_EQ(d.Width(), 1);
}

TEST(GreedyDecomposeTest, CycleGetsWidthTwo) {
  Graph g(5);
  for (int i = 0; i < 5; ++i) g.AddEdge(i, (i + 1) % 5);
  TreeDecomposition d = GreedyDecompose(g);
  EXPECT_TRUE(VerifyDecomposition(g, d).ok());
  EXPECT_EQ(d.Width(), 2);
}

TEST(GreedyDecomposeTest, CliqueGetsFullWidth) {
  const int k = 5;
  Graph g(k);
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) g.AddEdge(i, j);
  }
  TreeDecomposition d = GreedyDecompose(g);
  EXPECT_TRUE(VerifyDecomposition(g, d).ok());
  EXPECT_EQ(d.Width(), k - 1);
}

TEST(GreedyDecomposeTest, RandomGraphsVerify) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    int n = 2 + static_cast<int>(rng.Uniform(0, 18));
    Graph g(n);
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (rng.Bernoulli(0.25)) g.AddEdge(i, j);
      }
    }
    TreeDecomposition d = GreedyDecompose(g);
    EXPECT_TRUE(VerifyDecomposition(g, d).ok()) << "trial " << trial;
  }
}

TEST(GreedyDecomposeTest, EmptyGraph) {
  Graph g(0);
  TreeDecomposition d = GreedyDecompose(g);
  EXPECT_EQ(d.bags.size(), 0u);
}

}  // namespace
}  // namespace treeq
