#include "obs/prometheus.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "obs/stats.h"

namespace treeq {
namespace obs {
namespace {

/// Lines of `text`, without the trailing empty line.
std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

/// The sample value of the first line starting with `prefix`, or -1.
int64_t ValueFor(const std::vector<std::string>& lines,
                 const std::string& prefix) {
  for (const std::string& line : lines) {
    if (line.rfind(prefix, 0) == 0) {
      return std::stoll(line.substr(prefix.size()));
    }
  }
  return -1;
}

TEST(PrometheusNameTest, ManglesDotsAndPrefixes) {
  EXPECT_EQ(PrometheusName("engine.plan_cache.hits"),
            "treeq_engine_plan_cache_hits");
  EXPECT_EQ(PrometheusName("axes.words_scanned"),
            "treeq_axes_words_scanned");
  EXPECT_EQ(PrometheusName("weird-name with spaces"),
            "treeq_weird_name_with_spaces");
}

TEST(PrometheusEscapeTest, EscapesHelpText) {
  EXPECT_EQ(PrometheusEscape("plain"), "plain");
  EXPECT_EQ(PrometheusEscape("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
}

TEST(PrometheusExportTest, CountersGetTotalSuffixAndTypeLines) {
  StatsRegistry& reg = StatsRegistry::Global();
  reg.Reset();
  reg.GetCounter("test.prom.counter")->Add(123);
  std::ostringstream os;
  ExportPrometheus(reg, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE treeq_test_prom_counter_total counter\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("\ntreeq_test_prom_counter_total 123\n"),
            std::string::npos)
      << text;
}

TEST(PrometheusExportTest, GaugesExportVerbatim) {
  StatsRegistry& reg = StatsRegistry::Global();
  reg.Reset();
  reg.GetGauge("test.prom.gauge")->RecordMax(17);
  std::ostringstream os;
  ExportPrometheus(reg, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE treeq_test_prom_gauge gauge\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("\ntreeq_test_prom_gauge 17\n"), std::string::npos)
      << text;
}

TEST(PrometheusExportTest, HistogramBucketsAreCumulative) {
  StatsRegistry& reg = StatsRegistry::Global();
  reg.Reset();
  Histogram* h = reg.GetHistogram("test.prom.hist");
  // bit_width: 1 -> bucket 1 (le 1), 4 -> bucket 3 (le 7), 1000 -> bucket
  // 10 (le 1023).
  for (uint64_t v : {1u, 4u, 4u, 1000u}) h->Record(v);
  std::ostringstream os;
  ExportPrometheus(reg, os);
  const std::vector<std::string> lines = SplitLines(os.str());
  const std::string base = "treeq_test_prom_hist";

  EXPECT_EQ(ValueFor(lines, base + "_bucket{le=\"1\"} "), 1);
  EXPECT_EQ(ValueFor(lines, base + "_bucket{le=\"7\"} "), 3);
  EXPECT_EQ(ValueFor(lines, base + "_bucket{le=\"1023\"} "), 4);
  EXPECT_EQ(ValueFor(lines, base + "_bucket{le=\"+Inf\"} "), 4);
  EXPECT_EQ(ValueFor(lines, base + "_sum "), 1009);
  EXPECT_EQ(ValueFor(lines, base + "_count "), 4);

  // Bucket counts never decrease, and +Inf equals _count.
  int64_t prev = 0;
  for (const std::string& line : lines) {
    if (line.rfind(base + "_bucket{le=\"", 0) != 0) continue;
    const int64_t v = std::stoll(line.substr(line.find("} ") + 2));
    EXPECT_GE(v, prev) << line;
    prev = v;
  }
  EXPECT_EQ(prev, 4);
}

TEST(PrometheusExportTest, EveryLineIsCommentOrSample) {
  StatsRegistry& reg = StatsRegistry::Global();
  reg.Reset();
  reg.GetCounter("test.prom.a")->Add(1);
  reg.GetGauge("test.prom.b")->RecordMax(2);
  reg.GetHistogram("test.prom.c")->Record(3);
  std::ostringstream os;
  ExportPrometheus(reg, os);
  for (const std::string& line : SplitLines(os.str())) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                  line.rfind("# TYPE ", 0) == 0)
          << line;
      continue;
    }
    // Sample lines: a valid metric name, optional {labels}, then a value.
    EXPECT_EQ(line.rfind("treeq_", 0), 0u) << line;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name = line.substr(0, space);
    for (char c : name) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                  c == '_' || c == '{' || c == '}' || c == '=' || c == '"' ||
                  c == '+' || c == 'I' || c == 'n' || c == 'f')
          << line;
    }
    EXPECT_NO_THROW(std::stoll(line.substr(space + 1))) << line;
  }
}

TEST(PrometheusExportTest, GlobalOverloadUsesGlobalRegistry) {
  StatsRegistry& reg = StatsRegistry::Global();
  reg.Reset();
  reg.GetCounter("test.prom.global")->Add(7);
  std::ostringstream os;
  ExportPrometheus(os);
  EXPECT_NE(os.str().find("treeq_test_prom_global_total 7\n"),
            std::string::npos)
      << os.str();
}

}  // namespace
}  // namespace obs
}  // namespace treeq
