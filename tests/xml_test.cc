#include "tree/xml.h"

#include <gtest/gtest.h>

#include "tree/tree.h"

namespace treeq {
namespace {

TEST(XmlTest, ParsesSimpleDocument) {
  Result<Tree> tr = ParseXml("<a><b/><c><d/></c></a>");
  ASSERT_TRUE(tr.ok()) << tr.status().ToString();
  const Tree& t = tr.value();
  ASSERT_EQ(t.num_nodes(), 4);
  EXPECT_TRUE(t.HasLabel(0, "a"));
  EXPECT_TRUE(t.HasLabel(1, "b"));
  EXPECT_TRUE(t.HasLabel(2, "c"));
  EXPECT_TRUE(t.HasLabel(3, "d"));
  EXPECT_EQ(t.parent(3), 2);
}

TEST(XmlTest, AttributesBecomeLabels) {
  Result<Tree> tr = ParseXml(R"(<item id="42" cls='x'/>)");
  ASSERT_TRUE(tr.ok()) << tr.status().ToString();
  const Tree& t = tr.value();
  EXPECT_TRUE(t.HasLabel(0, "item"));
  EXPECT_TRUE(t.HasLabel(0, "@id"));
  EXPECT_TRUE(t.HasLabel(0, "@id=42"));
  EXPECT_TRUE(t.HasLabel(0, "@cls=x"));
}

TEST(XmlTest, SkipsCommentsPisAndDeclaration) {
  Result<Tree> tr = ParseXml(
      "<?xml version=\"1.0\"?><!-- hi --><a><!-- inner --><b/><?pi data?>"
      "</a><!-- bye -->");
  ASSERT_TRUE(tr.ok()) << tr.status().ToString();
  EXPECT_EQ(tr.value().num_nodes(), 2);
}

TEST(XmlTest, TextIgnoredByDefault) {
  Result<Tree> tr = ParseXml("<a>hello <b/> world</a>");
  ASSERT_TRUE(tr.ok()) << tr.status().ToString();
  EXPECT_EQ(tr.value().num_nodes(), 2);
}

TEST(XmlTest, KeepTextOption) {
  XmlOptions opts;
  opts.keep_text = true;
  Result<Tree> tr = ParseXml("<a>hello<b/>world</a>", opts);
  ASSERT_TRUE(tr.ok()) << tr.status().ToString();
  const Tree& t = tr.value();
  ASSERT_EQ(t.num_nodes(), 4);
  EXPECT_TRUE(t.HasLabel(1, "#text"));
  EXPECT_TRUE(t.HasLabel(1, "#text=hello"));
  EXPECT_TRUE(t.HasLabel(2, "b"));
  EXPECT_TRUE(t.HasLabel(3, "#text=world"));
}

TEST(XmlTest, WhitespaceOnlyTextDropped) {
  XmlOptions opts;
  opts.keep_text = true;
  Result<Tree> tr = ParseXml("<a>\n  <b/>\n</a>", opts);
  ASSERT_TRUE(tr.ok());
  EXPECT_EQ(tr.value().num_nodes(), 2);
}

TEST(XmlTest, DecodesEntities) {
  XmlOptions opts;
  opts.keep_text = true;
  Result<Tree> tr = ParseXml("<a x=\"&lt;&amp;&gt;\">&quot;q&apos;</a>", opts);
  ASSERT_TRUE(tr.ok()) << tr.status().ToString();
  const Tree& t = tr.value();
  EXPECT_TRUE(t.HasLabel(0, "@x=<&>"));
  EXPECT_TRUE(t.HasLabel(1, "#text=\"q'"));
}

TEST(XmlTest, MismatchedCloseTagIsError) {
  Result<Tree> tr = ParseXml("<a><b></a></b>");
  ASSERT_FALSE(tr.ok());
  EXPECT_EQ(tr.status().code(), StatusCode::kParseError);
}

TEST(XmlTest, UnterminatedDocumentIsError) {
  EXPECT_FALSE(ParseXml("<a><b/>").ok());
  EXPECT_FALSE(ParseXml("<a attr=\"x>").ok());
  EXPECT_FALSE(ParseXml("").ok());
  EXPECT_FALSE(ParseXml("plain text").ok());
}

TEST(XmlTest, TrailingContentIsError) {
  EXPECT_FALSE(ParseXml("<a/><b/>").ok());
}

TEST(XmlTest, RoundTrip) {
  const char* kDoc =
      "<catalog><product id=\"1\"><name/><price/></product>"
      "<product id=\"2\"><name/></product></catalog>";
  Result<Tree> tr = ParseXml(kDoc);
  ASSERT_TRUE(tr.ok());
  std::string out = WriteXml(tr.value());
  // Reparse the serialization; it must produce an identical structure.
  Result<Tree> tr2 = ParseXml(out);
  ASSERT_TRUE(tr2.ok()) << out;
  const Tree& a = tr.value();
  const Tree& b = tr2.value();
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  for (NodeId n = 0; n < a.num_nodes(); ++n) {
    EXPECT_EQ(a.parent(n), b.parent(n));
    EXPECT_EQ(a.labels(n).size(), b.labels(n).size());
    for (LabelId l : a.labels(n)) {
      EXPECT_TRUE(b.HasLabel(n, a.label_table().Name(l)));
    }
  }
}

TEST(XmlTest, DeepNesting) {
  std::string doc;
  const int kDepth = 2000;
  for (int i = 0; i < kDepth; ++i) doc += "<a>";
  doc += "<leaf/>";
  for (int i = 0; i < kDepth; ++i) doc += "</a>";
  Result<Tree> tr = ParseXml(doc);
  ASSERT_TRUE(tr.ok());
  EXPECT_EQ(tr.value().num_nodes(), kDepth + 1);
  EXPECT_EQ(tr.value().Depth(), kDepth);
}

}  // namespace
}  // namespace treeq
