#include "storage/xasr.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "tree/axes.h"
#include "tree/generator.h"
#include "util/random.h"

namespace treeq {
namespace {

// The tree of Figure 2(a).
Tree Figure2Tree() {
  TreeBuilder b;
  b.BeginNode("a");
  b.BeginNode("b");
  b.BeginNode("a");
  b.EndNode();
  b.BeginNode("c");
  b.EndNode();
  b.EndNode();
  b.BeginNode("a");
  b.BeginNode("b");
  b.EndNode();
  b.BeginNode("d");
  b.EndNode();
  b.EndNode();
  b.EndNode();
  Result<Tree> t = b.Finish();
  EXPECT_TRUE(t.ok());
  return std::move(t).value();
}

TEST(XasrTest, Figure2TableMatchesPaper) {
  Tree t = Figure2Tree();
  TreeOrders o = ComputeOrders(t);
  Xasr x = Xasr::Build(t, o);
  ASSERT_EQ(x.num_rows(), 7);
  // Paper's table (1-based): rows (pre, post, parent_pre, label):
  // (1,7,NULL,a) (2,3,1,b) (3,1,2,a) (4,2,2,c) (5,6,1,a) (6,4,5,b) (7,5,5,d)
  struct Expect {
    int post;
    int parent_pre;
    const char* label;
  };
  const Expect kExpected[] = {{6, XasrRow::kNoParent, "a"},
                              {2, 0, "b"},
                              {0, 1, "a"},
                              {1, 1, "c"},
                              {5, 0, "a"},
                              {3, 4, "b"},
                              {4, 4, "d"}};
  for (int pre = 0; pre < 7; ++pre) {
    const XasrRow& row = x.row(pre);
    EXPECT_EQ(row.pre, pre);
    EXPECT_EQ(row.post, kExpected[pre].post) << "pre=" << pre;
    EXPECT_EQ(row.parent_pre, kExpected[pre].parent_pre) << "pre=" << pre;
    EXPECT_EQ(t.label_table().Name(row.label), kExpected[pre].label);
  }
}

TEST(XasrTest, ChildViewMatchesChildAxis) {
  Rng rng(3);
  RandomTreeOptions opts;
  opts.num_nodes = 80;
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);
  Xasr x = Xasr::Build(t, o);
  std::set<std::pair<int, int>> got;
  for (const auto& p : x.ChildView()) got.insert(p);
  std::set<std::pair<int, int>> want;
  for (const auto& [u, v] : MaterializeAxis(t, o, Axis::kChild)) {
    want.insert({o.pre[u], o.pre[v]});
  }
  EXPECT_EQ(got, want);
}

TEST(XasrTest, DescendantViewMatchesDescendantAxis) {
  Rng rng(5);
  RandomTreeOptions opts;
  opts.num_nodes = 60;
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);
  Xasr x = Xasr::Build(t, o);
  std::set<std::pair<int, int>> got;
  for (const auto& p : x.DescendantView()) got.insert(p);
  std::set<std::pair<int, int>> want;
  for (const auto& [u, v] : MaterializeAxis(t, o, Axis::kDescendant)) {
    want.insert({o.pre[u], o.pre[v]});
  }
  EXPECT_EQ(got, want);
}

TEST(XasrTest, IteratedJoinsEqualThetaJoin) {
  Rng rng(7);
  RandomTreeOptions opts;
  opts.num_nodes = 40;
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);
  Xasr x = Xasr::Build(t, o);
  std::set<std::pair<int, int>> a;
  for (const auto& p : x.DescendantView()) a.insert(p);
  std::set<std::pair<int, int>> b;
  for (const auto& p : DescendantByIteratedJoins(x)) b.insert(p);
  EXPECT_EQ(a, b);
}

TEST(XasrTest, PresWithLabel) {
  Tree t = Figure2Tree();
  TreeOrders o = ComputeOrders(t);
  Xasr x = Xasr::Build(t, o);
  LabelId a = t.label_table().Lookup("a");
  EXPECT_EQ(x.PresWithLabel(a), (std::vector<int>{0, 2, 4}));
  LabelId d = t.label_table().Lookup("d");
  EXPECT_EQ(x.PresWithLabel(d), std::vector<int>{6});
}

TEST(XasrTest, SizeIsLinear) {
  Tree t = Figure2Tree();
  TreeOrders o = ComputeOrders(t);
  Xasr x = Xasr::Build(t, o);
  EXPECT_EQ(x.SizeInWords(), 7u * 4u);
}

TEST(XasrTest, NodeAtInvertsPre) {
  Tree t = Figure2Tree();
  TreeOrders o = ComputeOrders(t);
  Xasr x = Xasr::Build(t, o);
  for (int pre = 0; pre < x.num_rows(); ++pre) {
    EXPECT_EQ(o.pre[x.NodeAt(pre)], pre);
  }
}

}  // namespace
}  // namespace treeq
