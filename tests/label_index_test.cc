// LabelIndex (tree/label_index.h): the per-document inverted label index
// must agree with the arena-scanning paths it replaces, and the consumers
// routed through it (twig joins, xpath label filters) must be
// behaviour-identical to the (tree, orders) entry points.

#include <gtest/gtest.h>

#include <algorithm>

#include "cq/twig_join.h"
#include "storage/structural_join.h"
#include "tree/document.h"
#include "tree/generator.h"
#include "tree/label_index.h"
#include "tree/orders.h"
#include "util/random.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace treeq {
namespace {

Tree MakeCatalog(int products) {
  Rng rng(11);
  CatalogOptions opts;
  opts.num_products = products;
  return CatalogDocument(&rng, opts);
}

TEST(LabelIndexTest, ItemsMatchScanAndSort) {
  Tree t = MakeCatalog(30);
  TreeOrders o = ComputeOrders(t);
  LabelIndex index(t, o);
  ASSERT_EQ(index.num_labels(), t.label_table().size());
  for (LabelId label = 0; label < t.label_table().size(); ++label) {
    const std::vector<JoinItem>& got = index.Items(label);
    const std::vector<JoinItem> want = MakeJoinItemsForLabel(t, o, label);
    ASSERT_EQ(got.size(), want.size()) << "label " << t.label_table().Name(label);
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].node, want[i].node);
      EXPECT_EQ(got[i].pre, want[i].pre);
      EXPECT_EQ(got[i].end, want[i].end);
      EXPECT_EQ(got[i].depth, want[i].depth);
    }
    EXPECT_TRUE(std::is_sorted(
        got.begin(), got.end(),
        [](const JoinItem& a, const JoinItem& b) { return a.pre < b.pre; }));
  }
}

TEST(LabelIndexTest, SetsMatchHasLabel) {
  Tree t = MakeCatalog(20);
  TreeOrders o = ComputeOrders(t);
  LabelIndex index(t, o);
  for (LabelId label = 0; label < t.label_table().size(); ++label) {
    const NodeSet& set = index.Set(label);
    EXPECT_EQ(set.universe(), t.num_nodes());
    for (NodeId v = 0; v < t.num_nodes(); ++v) {
      EXPECT_EQ(set.Contains(v), t.HasLabel(v, label));
    }
  }
}

TEST(LabelIndexTest, UnknownLabelsAreEmpty) {
  Tree t = MakeCatalog(3);
  TreeOrders o = ComputeOrders(t);
  LabelIndex index(t, o);
  EXPECT_TRUE(index.Items(kNullLabel).empty());
  EXPECT_TRUE(index.Items(t.label_table().size() + 5).empty());
  EXPECT_TRUE(index.Set(kNullLabel).empty());
  EXPECT_EQ(index.Set(kNullLabel).universe(), t.num_nodes());
}

TEST(LabelIndexTest, MultiLabelNodesAppearInEveryStream) {
  Rng rng(3);
  RandomTreeOptions opts;
  opts.num_nodes = 80;
  opts.alphabet = {"a", "b", "c"};
  opts.second_label_prob = 0.5;
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);
  LabelIndex index(t, o);
  int total = 0;
  for (LabelId label = 0; label < t.label_table().size(); ++label) {
    total += static_cast<int>(index.Items(label).size());
  }
  int want = 0;
  for (NodeId v = 0; v < t.num_nodes(); ++v) {
    want += static_cast<int>(t.labels(v).size());
  }
  EXPECT_EQ(total, want);
}

TEST(LabelIndexTest, DocumentCachesIndex) {
  DocumentPtr doc = MakeDocument(MakeCatalog(5));
  EXPECT_FALSE(doc->label_index_computed());
  const LabelIndex& first = doc->label_index();
  EXPECT_TRUE(doc->label_index_computed());
  EXPECT_EQ(&first, &doc->label_index());  // same instance, no rebuild
}

TEST(LabelIndexTest, TwigJoinsAgreeAcrossEntryPoints) {
  Tree t = MakeCatalog(40);
  TreeOrders o = ComputeOrders(t);
  cq::TwigPattern p;
  p.nodes.push_back({"product", Axis::kDescendant, -1});
  p.nodes.push_back({"reviews", Axis::kChild, 0});
  p.nodes.push_back({"review", Axis::kChild, 1});
  p.nodes.push_back({"rating5", Axis::kChild, 2});

  Result<cq::TupleSet> via_orders = cq::TwigStackJoin(p, t, o);
  ASSERT_TRUE(via_orders.ok());

  Tree t2 = MakeCatalog(40);
  DocumentPtr doc = MakeDocument(std::move(t2));
  Result<cq::TupleSet> via_doc = cq::TwigStackJoin(p, *doc);
  ASSERT_TRUE(via_doc.ok());
  EXPECT_EQ(via_orders.value(), via_doc.value());

  Result<cq::TupleSet> binary_doc = cq::TwigByStructuralJoins(p, *doc);
  ASSERT_TRUE(binary_doc.ok());
  EXPECT_EQ(via_orders.value(), binary_doc.value());
}

TEST(LabelIndexTest, XPathLabelFilterAgreesAcrossEntryPoints) {
  Tree t = MakeCatalog(25);
  TreeOrders o = ComputeOrders(t);
  auto q = xpath::ParseXPath(
               "descendant::*[lab() = \"product\" and "
               "descendant::*[lab() = \"rating5\"] and "
               "not(lab() = \"desc\")]")
               .value();
  NodeSet via_orders = xpath::EvalQueryFromRoot(t, o, *q);

  DocumentPtr doc = MakeDocument(MakeCatalog(25));
  NodeSet via_doc = xpath::EvalQueryFromRoot(*doc, *q);
  EXPECT_TRUE(via_orders == via_doc);
}

}  // namespace
}  // namespace treeq
