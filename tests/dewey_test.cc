#include "storage/dewey.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tree/axes.h"
#include "tree/generator.h"
#include "tree/orders.h"
#include "util/random.h"

namespace treeq {
namespace {

TEST(OrdpathTest, CompareIsLexicographic) {
  EXPECT_EQ(OrdpathCompare({1}, {1}), 0);
  EXPECT_LT(OrdpathCompare({1}, {3}), 0);
  EXPECT_LT(OrdpathCompare({1}, {1, 1}), 0);  // ancestor before descendant
  EXPECT_GT(OrdpathCompare({3, 1}, {1, 5}), 0);
  EXPECT_LT(OrdpathCompare({}, {1}), 0);  // root first
}

TEST(OrdpathTest, DepthCountsOddComponents) {
  EXPECT_EQ(OrdpathDepth({}), 0);
  EXPECT_EQ(OrdpathDepth({1}), 1);
  EXPECT_EQ(OrdpathDepth({4, 1}), 1);  // caret does not add depth
  EXPECT_EQ(OrdpathDepth({1, 3, 5}), 3);
  EXPECT_EQ(OrdpathDepth({2, 2, 1, 3}), 2);
}

TEST(OrdpathTest, AncestorIsChunkPrefix) {
  EXPECT_TRUE(OrdpathIsAncestor({}, {1}));
  EXPECT_TRUE(OrdpathIsAncestor({1}, {1, 3}));
  EXPECT_TRUE(OrdpathIsAncestor({1}, {1, 4, 1}));
  EXPECT_FALSE(OrdpathIsAncestor({1}, {1}));
  EXPECT_FALSE(OrdpathIsAncestor({1, 3}, {1}));
  EXPECT_FALSE(OrdpathIsAncestor({3}, {1, 3}));
}

TEST(OrdpathTest, ChildAddsOneChunk) {
  EXPECT_TRUE(OrdpathIsChild({1}, {1, 3}));
  EXPECT_TRUE(OrdpathIsChild({1}, {1, 4, 1}));  // careted child
  EXPECT_FALSE(OrdpathIsChild({1}, {1, 3, 5}));
}

TEST(OrdpathTest, FollowingSibling) {
  EXPECT_TRUE(OrdpathIsFollowingSibling({1, 1}, {1, 3}));
  EXPECT_TRUE(OrdpathIsFollowingSibling({1, 1}, {1, 4, 1}));
  EXPECT_FALSE(OrdpathIsFollowingSibling({1, 3}, {1, 1}));
  EXPECT_FALSE(OrdpathIsFollowingSibling({1, 1}, {3, 3}));  // different parent
  EXPECT_FALSE(OrdpathIsFollowingSibling({}, {1}));
}

TEST(OrdpathTest, ValidChunk) {
  EXPECT_TRUE(OrdpathIsValidChunk({1}));
  EXPECT_TRUE(OrdpathIsValidChunk({-3}));
  EXPECT_TRUE(OrdpathIsValidChunk({4, 1}));
  EXPECT_TRUE(OrdpathIsValidChunk({2, 0, 7}));
  EXPECT_FALSE(OrdpathIsValidChunk({}));
  EXPECT_FALSE(OrdpathIsValidChunk({2}));      // must end odd
  EXPECT_FALSE(OrdpathIsValidChunk({1, 3}));   // odd in the middle
}

TEST(OrdpathTest, BeforeAfterProduceValidOrderedChunks) {
  std::vector<int64_t> c = {5};
  auto before = OrdpathBefore(c);
  auto after = OrdpathAfter(c);
  EXPECT_TRUE(OrdpathIsValidChunk(before));
  EXPECT_TRUE(OrdpathIsValidChunk(after));
  EXPECT_LT(OrdpathCompare(before, c), 0);
  EXPECT_GT(OrdpathCompare(after, c), 0);
  // Works on careted chunks too.
  std::vector<int64_t> careted = {4, 1};
  EXPECT_LT(OrdpathCompare(OrdpathBefore(careted), careted), 0);
  EXPECT_GT(OrdpathCompare(OrdpathAfter(careted), careted), 0);
}

TEST(OrdpathTest, BetweenSimpleGap) {
  auto mid = OrdpathBetween({1}, {5});
  EXPECT_TRUE(OrdpathIsValidChunk(mid));
  EXPECT_LT(OrdpathCompare({1}, mid), 0);
  EXPECT_LT(OrdpathCompare(mid, {5}), 0);
  EXPECT_EQ(mid, (std::vector<int64_t>{3}));
}

TEST(OrdpathTest, BetweenAdjacentOddsUsesCaret) {
  auto mid = OrdpathBetween({3}, {5});
  EXPECT_TRUE(OrdpathIsValidChunk(mid));
  EXPECT_LT(OrdpathCompare({3}, mid), 0);
  EXPECT_LT(OrdpathCompare(mid, {5}), 0);
  EXPECT_EQ(mid, (std::vector<int64_t>{4, 1}));
}

// Property: repeated insertion between random adjacent siblings always
// yields valid, strictly ordered, depth-preserving chunks — the
// insert-friendliness ORDPATH exists for.
class OrdpathInsertTortureTest : public ::testing::TestWithParam<int> {};

TEST_P(OrdpathInsertTortureTest, HundredInsertsStayConsistent) {
  Rng rng(GetParam());
  std::vector<std::vector<int64_t>> siblings = {{1}};
  for (int step = 0; step < 100; ++step) {
    int pos = static_cast<int>(
        rng.Uniform(0, static_cast<int64_t>(siblings.size())));
    std::vector<int64_t> fresh;
    if (pos == 0) {
      fresh = OrdpathBefore(siblings.front());
    } else if (pos == static_cast<int>(siblings.size())) {
      fresh = OrdpathAfter(siblings.back());
    } else {
      fresh = OrdpathBetween(siblings[pos - 1], siblings[pos]);
    }
    ASSERT_TRUE(OrdpathIsValidChunk(fresh)) << "step " << step;
    siblings.insert(siblings.begin() + pos, fresh);
    for (size_t i = 1; i < siblings.size(); ++i) {
      ASSERT_LT(OrdpathCompare(siblings[i - 1], siblings[i]), 0)
          << "step " << step << " i " << i;
    }
  }
  // All inserted labels are chunks: depth contribution exactly 1 each.
  for (const auto& s : siblings) {
    int odd = 0;
    for (int64_t c : s) {
      if (((c % 2) + 2) % 2 == 1) ++odd;
    }
    EXPECT_EQ(odd, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrdpathInsertTortureTest,
                         ::testing::Range(0, 10));

TEST(DeweyLabelingTest, BuildUsesOddOrdinals) {
  Tree t = Star(4);
  DeweyLabeling d = DeweyLabeling::Build(t);
  EXPECT_TRUE(d.label(0).empty());
  EXPECT_EQ(d.label(1), (OrdpathLabel{1}));
  EXPECT_EQ(d.label(2), (OrdpathLabel{3}));
  EXPECT_EQ(d.label(3), (OrdpathLabel{5}));
}

class DeweyPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DeweyPropertyTest, LabelsDecideAxesLikeOrders) {
  Rng rng(GetParam());
  RandomTreeOptions opts;
  opts.num_nodes = 50;
  opts.attach_window = 1 + GetParam() % 8;
  Tree t = RandomTree(&rng, opts);
  TreeOrders o = ComputeOrders(t);
  DeweyLabeling d = DeweyLabeling::Build(t);
  for (NodeId u = 0; u < t.num_nodes(); ++u) {
    for (NodeId v = 0; v < t.num_nodes(); ++v) {
      EXPECT_EQ(OrdpathCompare(d.label(u), d.label(v)) < 0,
                o.pre[u] < o.pre[v])
          << u << " " << v;
      EXPECT_EQ(OrdpathIsAncestor(d.label(u), d.label(v)),
                AxisHolds(t, o, Axis::kDescendant, u, v));
      EXPECT_EQ(OrdpathIsChild(d.label(u), d.label(v)),
                AxisHolds(t, o, Axis::kChild, u, v));
      EXPECT_EQ(OrdpathIsFollowingSibling(d.label(u), d.label(v)),
                AxisHolds(t, o, Axis::kFollowingSibling, u, v));
      EXPECT_EQ(OrdpathIsFollowing(d.label(u), d.label(v)),
                AxisHolds(t, o, Axis::kFollowing, u, v));
    }
    EXPECT_EQ(OrdpathDepth(d.label(u)), o.depth[u]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeweyPropertyTest, ::testing::Range(0, 6));

TEST(DeweyLabelingTest, InsertChildBetweenExistingChildren) {
  Tree t = Star(3);  // root with children 1, 2
  DeweyLabeling d = DeweyLabeling::Build(t);
  Result<int> mid = d.InsertChild(0, 1, 2);
  ASSERT_TRUE(mid.ok());
  const OrdpathLabel& l = d.label(mid.value());
  EXPECT_LT(OrdpathCompare(d.label(1), l), 0);
  EXPECT_LT(OrdpathCompare(l, d.label(2)), 0);
  EXPECT_TRUE(OrdpathIsChild(d.label(0), l));
}

TEST(DeweyLabelingTest, InsertChildAtEdgesAndUnderLeaf) {
  Tree t = Star(3);
  DeweyLabeling d = DeweyLabeling::Build(t);
  Result<int> first = d.InsertChild(0, kNullNode, 1);
  ASSERT_TRUE(first.ok());
  EXPECT_LT(OrdpathCompare(d.label(first.value()), d.label(1)), 0);
  Result<int> last = d.InsertChild(0, 2, kNullNode);
  ASSERT_TRUE(last.ok());
  EXPECT_GT(OrdpathCompare(d.label(last.value()), d.label(2)), 0);
  Result<int> leaf_child = d.InsertChild(1, kNullNode, kNullNode);
  ASSERT_TRUE(leaf_child.ok());
  EXPECT_TRUE(OrdpathIsChild(d.label(1), d.label(leaf_child.value())));
}

TEST(DeweyLabelingTest, InsertChildRejectsBadArguments) {
  Tree t = Star(3);
  DeweyLabeling d = DeweyLabeling::Build(t);
  EXPECT_FALSE(d.InsertChild(99, kNullNode, kNullNode).ok());
  // Sibling that is not a child of the given parent.
  EXPECT_FALSE(d.InsertChild(1, 2, kNullNode).ok());
  // Left not before right.
  EXPECT_FALSE(d.InsertChild(0, 2, 1).ok());
}

TEST(OrdpathTest, ToStringRendering) {
  EXPECT_EQ(OrdpathToString({}), "<root>");
  EXPECT_EQ(OrdpathToString({1, 4, 1}), "1.4.1");
}

}  // namespace
}  // namespace treeq
