#!/usr/bin/env python3
"""Gate TREEQ_OBS_* metric names against the documented taxonomy.

Scans src/ for every name passed to a TREEQ_OBS_{INC,COUNT,GAUGE_MAX,
GAUGE_SET,HISTOGRAM,SPAN} macro and checks that

  1. the name is well-formed: lowercase dot-separated components,
     `namespace.rest` with at least one dot (`^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$`);
  2. the name lives under a namespace documented in DESIGN.md's counter
     taxonomy table (the `` `ns.*` `` first column);
  3. namespaces with a structure rule also match it — `cache.*` names
     must be `cache.<plane>.<leaf>` where <plane> is one of eval, result,
     singleflight (adding a fourth plane means updating the rule and the
     DESIGN.md taxonomy together).

Run from anywhere:  python3 tools/check_metric_names.py
Exit code 0 = clean, 1 = violations (each printed with file:line).
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
DESIGN = os.path.join(REPO, "DESIGN.md")

MACRO_RE = re.compile(
    r'TREEQ_OBS_(?:INC|COUNT|GAUGE_MAX|GAUGE_SET|HISTOGRAM|SPAN)\s*\(\s*"([^"]+)"'
)
NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")
# A taxonomy row's first column: | `xpath.naive.*` | ...
TAXONOMY_ROW_RE = re.compile(r"^\|\s*`([a-z][a-z0-9_.]*)\.\*`\s*\|")
# Per-namespace structure rules, stricter than the generic shape. The
# cache subsystem has exactly three planes; a new plane must be added
# here and in the DESIGN.md taxonomy row in the same change.
STRUCTURE_RULES = {
    "cache": re.compile(r"^cache\.(eval|result|singleflight)\.[a-z0-9_]+$"),
    # Fault-injection metrics: `fault.<point>.<leaf>` where <point> is a
    # registry point name (dotted, e.g. engine.queue.push) or `registry`
    # for the process-wide counters, and the leaf is one of the three
    # verbs the registry emits (src/fault/fault.cc).
    "fault": re.compile(r"^fault\.[a-z0-9_.]+\.(hits|fired|armed)$"),
    # Planner metrics: the `plan.cost_ns` histogram plus counters in
    # exactly three stages — `plan.lower.<language>` per lowering,
    # `plan.canon.<leaf>` for canonicalization, and `plan.route.<leaf>`
    # for routing decisions (per-engine picks use underscored engine
    # names, e.g. plan.route.xpath_set_at_a_time). A fourth stage means
    # updating this rule and the DESIGN.md taxonomy row together.
    "plan": re.compile(r"^plan\.(cost_ns|(lower|canon|route)\.[a-z0-9_]+)$"),
}


def documented_namespaces():
    namespaces = set()
    with open(DESIGN, encoding="utf-8") as f:
        for line in f:
            m = TAXONOMY_ROW_RE.match(line.strip())
            if m:
                namespaces.add(m.group(1))
    return namespaces


def find_metric_uses():
    """Yields (path, line_number, metric_name) for every macro site."""
    for root, _dirs, files in os.walk(SRC):
        for name in sorted(files):
            if not name.endswith((".h", ".cc")):
                continue
            path = os.path.join(root, name)
            with open(path, encoding="utf-8") as f:
                for lineno, line in enumerate(f, start=1):
                    for m in MACRO_RE.finditer(line):
                        yield path, lineno, m.group(1)


def in_namespace(metric, namespaces):
    """True when some documented namespace is a dot-prefix of `metric`."""
    parts = metric.split(".")
    return any(".".join(parts[:i]) in namespaces
               for i in range(1, len(parts)))


def main():
    namespaces = documented_namespaces()
    if not namespaces:
        print(f"error: no taxonomy rows found in {DESIGN}", file=sys.stderr)
        return 1

    errors = []
    seen = set()
    for path, lineno, metric in find_metric_uses():
        rel = os.path.relpath(path, REPO)
        seen.add(metric)
        if not NAME_RE.match(metric):
            errors.append(
                f"{rel}:{lineno}: malformed metric name {metric!r} "
                "(want lowercase dot-separated, e.g. engine.exec.requests)")
        elif not in_namespace(metric, namespaces):
            errors.append(
                f"{rel}:{lineno}: metric {metric!r} is outside every "
                "documented namespace — add a row to DESIGN.md's taxonomy "
                f"table (documented: {', '.join(sorted(namespaces))})")
        else:
            rule = STRUCTURE_RULES.get(metric.split(".")[0])
            if rule is not None and not rule.match(metric):
                errors.append(
                    f"{rel}:{lineno}: metric {metric!r} violates its "
                    f"namespace structure rule {rule.pattern!r}")

    for e in errors:
        print(e)
    print(f"checked {len(seen)} distinct metric names against "
          f"{len(namespaces)} documented namespaces: "
          f"{'FAIL' if errors else 'OK'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
