// F3 — Figure 3: Minoux' linear-time algorithm for propositional Horn-SAT.
// We replay the paper's Example 3.3 instance, then measure runtime against
// instance size on two clause families; the expected shape is linear (the
// Complexity() fit should report ~O(N)).

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <cstdio>

#include "datalog/horn.h"
#include "util/random.h"

namespace {

void PrintExample33() {
  std::printf("=== Figure 3 on Example 3.3 ===\n");
  treeq::horn::HornInstance h;
  h.AddPredicates(7);
  h.AddFact(1);
  h.AddFact(2);
  h.AddFact(3);
  h.AddClause(4, {1});
  h.AddClause(5, {3, 4});
  h.AddClause(6, {2, 5});
  std::vector<treeq::horn::PredId> order;
  std::vector<char> truth = h.Solve(&order);
  std::printf("derivation order:");
  for (treeq::horn::PredId p : order) std::printf(" %d", p);
  std::printf("\n(the paper's trace starts q = [1, 2, 3] and pops 1 first)\n");
  std::printf("model: ");
  for (int p = 1; p <= 6; ++p) std::printf("%d=%s ", p, truth[p] ? "T" : "F");
  std::printf("\n\n");
}

/// A chain instance: facts at the bottom, every clause consumed once.
treeq::horn::HornInstance ChainInstance(int n) {
  treeq::horn::HornInstance h;
  h.AddPredicates(n);
  h.AddFact(0);
  for (int i = 1; i < n; ++i) h.AddClause(i, {i - 1, (i - 1) / 2});
  return h;
}

/// Random definite Horn instance with 3 clauses per predicate.
treeq::horn::HornInstance RandomInstance(int n, treeq::Rng* rng) {
  treeq::horn::HornInstance h;
  h.AddPredicates(n);
  for (int i = 0; i < n / 10 + 1; ++i) {
    h.AddFact(static_cast<treeq::horn::PredId>(rng->Uniform(0, n - 1)));
  }
  for (int c = 0; c < 3 * n; ++c) {
    treeq::horn::PredId head =
        static_cast<treeq::horn::PredId>(rng->Uniform(0, n - 1));
    std::vector<treeq::horn::PredId> body;
    int len = static_cast<int>(rng->Uniform(1, 3));
    for (int i = 0; i < len; ++i) {
      body.push_back(
          static_cast<treeq::horn::PredId>(rng->Uniform(0, n - 1)));
    }
    h.AddClause(head, std::move(body));
  }
  return h;
}

void BM_MinouxChain(benchmark::State& state) {
  treeq::horn::HornInstance h = ChainInstance(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::vector<char> truth = h.Solve();
    benchmark::DoNotOptimize(truth.data());
  }
  state.SetComplexityN(h.SizeInLiterals());
  state.counters["literals"] = static_cast<double>(h.SizeInLiterals());
}
BENCHMARK(BM_MinouxChain)
    ->RangeMultiplier(4)
    ->Range(1024, 262144)
    ->Complexity(benchmark::oN)
    ->Unit(benchmark::kMicrosecond);

void BM_MinouxRandom(benchmark::State& state) {
  treeq::Rng rng(11);
  treeq::horn::HornInstance h =
      RandomInstance(static_cast<int>(state.range(0)), &rng);
  for (auto _ : state) {
    std::vector<char> truth = h.Solve();
    benchmark::DoNotOptimize(truth.data());
  }
  state.SetComplexityN(h.SizeInLiterals());
  state.counters["literals"] = static_cast<double>(h.SizeInLiterals());
}
BENCHMARK(BM_MinouxRandom)
    ->RangeMultiplier(4)
    ->Range(1024, 262144)
    ->Complexity(benchmark::oN)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = treeq::benchjson::ExtractJsonPath(&argc, argv);
  if (!json_path.empty()) {
    // --json mode: the headline workload runs once under a reset obs
    // registry; its work counters and spans land in the record.
    return treeq::benchjson::WriteRecord(
        json_path, "bench_fig3_minoux", [](treeq::benchjson::Record*) {
          PrintExample33();
        });
  }
  PrintExample33();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
