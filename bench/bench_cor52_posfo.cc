// S5c — Corollary 5.2: a fixed positive Boolean FO query evaluates on
// trees in time O(||A||), via DNF -> Theorem 5.1 -> per-component
// Yannakakis. The data sweep should be linear (the query-dependent blow-up
// is paid once, independent of the document); the naive FO model checker is
// the baseline, polynomial of degree = quantifier depth.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <cstdio>

#include "fo/corollary52.h"
#include "fo/evaluator.h"
#include "fo/parser.h"
#include "tree/generator.h"
#include "tree/orders.h"
#include "util/random.h"

namespace {

// A positive sentence with disjunction, shared variables and transitive
// axes: "some a-node has, below it, both a b-node and (a c-node or a
// second b-node following it)".
constexpr const char* kSentence =
    "exists x . exists y . exists z . (Lab_a(x) and Child+(x, y) and "
    "Lab_b(y) and Child+(x, z) and (Lab_c(z) or (Following(y, z) and "
    "Lab_b(z))))";

treeq::Tree MakeTree(int n) {
  treeq::Rng rng(101);
  treeq::RandomTreeOptions opts;
  opts.num_nodes = n;
  opts.attach_window = 4;
  // Make the sentence *barely* unsatisfiable-ish: rare labels force real
  // work instead of an instant witness.
  opts.alphabet = {"d", "d", "d", "d", "a", "b", "c"};
  return treeq::RandomTree(&rng, opts);
}

void PrintPipelineShape() {
  std::printf("=== Corollary 5.2 pipeline shape ===\n");
  std::printf("sentence: %s\n", kSentence);
  auto f = std::move(treeq::fo::ParseFo(kSentence)).value();
  treeq::Tree t = MakeTree(400);
  treeq::TreeOrders o = treeq::ComputeOrders(t);
  treeq::fo::Corollary52Stats stats;
  auto fast = treeq::fo::EvaluateSentencePositive(*f, t, o, &stats);
  auto slow = treeq::fo::EvaluateSentenceNaive(*f, t, o);
  TREEQ_CHECK(fast.ok() && slow.ok());
  std::printf("CQ disjuncts after DNF:      %d\n", stats.cq_disjuncts);
  std::printf("acyclic disjuncts explored:  %d\n", stats.acyclic_disjuncts);
  std::printf("pipeline == naive oracle:    %s (answer: %s)\n\n",
              fast.value() == slow.value() ? "yes" : "NO — BUG",
              fast.value() ? "true" : "false");
}

void BM_Corollary52Pipeline(benchmark::State& state) {
  auto f = std::move(treeq::fo::ParseFo(kSentence)).value();
  treeq::Tree t = MakeTree(static_cast<int>(state.range(0)));
  treeq::TreeOrders o = treeq::ComputeOrders(t);
  for (auto _ : state) {
    auto r = treeq::fo::EvaluateSentencePositive(*f, t, o);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Corollary52Pipeline)
    ->RangeMultiplier(4)
    ->Range(1024, 65536)
    ->Complexity(benchmark::oN)
    ->Unit(benchmark::kMicrosecond);

void BM_NaiveFoModelChecking(benchmark::State& state) {
  auto f = std::move(treeq::fo::ParseFo(kSentence)).value();
  treeq::Tree t = MakeTree(static_cast<int>(state.range(0)));
  treeq::TreeOrders o = treeq::ComputeOrders(t);
  for (auto _ : state) {
    auto r = treeq::fo::EvaluateSentenceNaive(*f, t, o);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_NaiveFoModelChecking)->Arg(64)->Arg(128)->Arg(256)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = treeq::benchjson::ExtractJsonPath(&argc, argv);
  if (!json_path.empty()) {
    // --json mode: the headline workload runs once under a reset obs
    // registry; its work counters and spans land in the record.
    return treeq::benchjson::WriteRecord(
        json_path, "bench_cor52_posfo", [](treeq::benchjson::Record*) {
          PrintPipelineShape();
        });
  }
  PrintPipelineShape();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
