// S5b — streaming memory (Section 5 / [40]): a streaming evaluator for
// (forward) Core XPath needs memory linear in the document depth — and our
// matcher uses no more than that: peak state is (depth+1) frames of O(|Q|)
// bytes, independent of document *size*. Two sweeps make the shape visible:
// depth sweep at ~fixed size (linear growth) and size sweep at fixed depth
// (flat). Throughput is timed as events/second.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <cstdio>

#include "stream/stream_eval.h"
#include "tree/generator.h"
#include "util/random.h"
#include "xpath/parser.h"

namespace {

constexpr const char* kQuery = "//a[b]//c[not(d)]";

/// depth * width nodes: `width` chains of length `depth` under a root.
treeq::Tree Comb(int depth, int width) {
  treeq::TreeBuilder b;
  treeq::NodeId root = b.AddChild(treeq::kNullNode, "a");
  for (int w = 0; w < width; ++w) {
    treeq::NodeId prev = b.AddChild(root, "b");
    for (int d = 1; d < depth; ++d) prev = b.AddChild(prev, "c");
  }
  return std::move(b.Finish()).value();
}

void PrintMemoryTables() {
  auto q = treeq::xpath::ParseXPath(kQuery).value();
  std::printf("=== streaming memory: O(depth * |Q|), size-independent ===\n");
  std::printf("query: %s\n\n", kQuery);
  std::printf("depth sweep (size ~ 16k nodes):\n%-8s %-8s %-12s %-12s\n",
              "depth", "nodes", "peak frames", "peak bytes");
  for (int depth : {4, 16, 64, 256, 1024}) {
    treeq::Tree t = Comb(depth, 16384 / depth);
    treeq::stream::StreamStats stats;
    auto r = treeq::stream::StreamMatcher::MatchTree(*q, t, &stats);
    TREEQ_CHECK(r.ok());
    std::printf("%-8d %-8d %-12zu %-12zu\n", depth, t.num_nodes(),
                stats.peak_frames, stats.PeakStateBytes());
  }
  std::printf("\nsize sweep (depth fixed at 8):\n%-8s %-8s %-12s %-12s\n",
              "width", "nodes", "peak frames", "peak bytes");
  for (int width : {16, 256, 4096, 65536}) {
    treeq::Tree t = Comb(8, width);
    treeq::stream::StreamStats stats;
    auto r = treeq::stream::StreamMatcher::MatchTree(*q, t, &stats);
    TREEQ_CHECK(r.ok());
    std::printf("%-8d %-8d %-12zu %-12zu\n", width, t.num_nodes(),
                stats.peak_frames, stats.PeakStateBytes());
  }
  std::printf("(peak bytes track depth, not node count — the [40] lower "
              "bound is tight)\n\n");
}

void BM_StreamThroughput(benchmark::State& state) {
  auto q = treeq::xpath::ParseXPath(kQuery).value();
  treeq::Tree t = Comb(8, static_cast<int>(state.range(0)));
  uint64_t events = 0;
  for (auto _ : state) {
    treeq::stream::StreamStats stats;
    auto r = treeq::stream::StreamMatcher::MatchTree(*q, t, &stats);
    benchmark::DoNotOptimize(r.ok());
    events = stats.events;
  }
  state.SetItemsProcessed(static_cast<int64_t>(events) * state.iterations());
  state.SetComplexityN(t.num_nodes());
}
BENCHMARK(BM_StreamThroughput)
    ->Arg(128)
    ->Arg(1024)
    ->Arg(8192)
    ->Complexity(benchmark::oN)
    ->Unit(benchmark::kMicrosecond);

void BM_DeepDocumentStream(benchmark::State& state) {
  auto q = treeq::xpath::ParseXPath(kQuery).value();
  treeq::Tree t = Comb(static_cast<int>(state.range(0)), 4);
  for (auto _ : state) {
    auto r = treeq::stream::StreamMatcher::MatchTree(*q, t);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_DeepDocumentStream)->Arg(64)->Arg(1024)->Unit(
    benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = treeq::benchjson::ExtractJsonPath(&argc, argv);
  if (!json_path.empty()) {
    // --json mode: the headline workload runs once under a reset obs
    // registry; its work counters and spans land in the record.
    return treeq::benchjson::WriteRecord(
        json_path, "bench_stream_memory", [](treeq::benchjson::Record*) {
          PrintMemoryTables();
        });
  }
  PrintMemoryTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
