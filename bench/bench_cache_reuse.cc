// Cross-query reuse: served qps with the evaluation/result caches on
// versus off, swept across repeated-work fractions. Each sweep point
// builds a fixed-size request mix whose distinct-key count sets the
// achievable result-cache hit rate (0%, 50%, 90%, 99%), then runs the
// identical shuffled mix through a cacheless executor and through one
// wired with an EvalCache + ResultCache + singleflight. Two claims land
// in the --json record:
//
//   - hot speedup grows with the repeat fraction (the 99% row is the
//     steady-state serving case: nearly every submission is answered
//     from the result cache);
//   - the all-miss row gates the cold path: on a mix where every
//     result-cache lookup misses, the cache-wired executor must stay
//     within noise of the cacheless one (meta.cold_ratio, gated > 0.85
//     in CI). Axis images can still be shared across the six query texts
//     on a document, so this bounds bookkeeping overhead from below —
//     any eval-cache benefit only raises the ratio.
//
// Hit rates are constructed, not sampled: a mix of N requests over D
// distinct (plan, document) keys executes exactly D evaluations — every
// repeat is served either a result-cache hit or an in-flight collapse,
// depending on whether the first occurrence has finished when the repeat
// is submitted (capacities are sized so nothing evicts). The record's
// per-row executions (result-cache inserts) proves the reuse rate.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "cache/eval_cache.h"
#include "cache/result_cache.h"
#include "engine/engine.h"
#include "tree/generator.h"
#include "util/random.h"

namespace {

using treeq::Language;
using treeq::engine::DocumentStore;
using treeq::engine::Executor;
using treeq::engine::Plan;
using treeq::engine::PlanPtr;
using treeq::engine::QueryResult;
using treeq::engine::Request;

// The per-document query set: each (query, document) pair is one distinct
// result-cache key, so D = |queries| x |documents used by the sweep point|.
constexpr const char* kQueries[] = {
    "/catalog/product[reviews/review]/name",
    "//review/rating5",
    "//product/price",
    "/catalog/product/reviews",
    "//name",
    "//product[price]/reviews/review",
};
constexpr int kNumQueries = static_cast<int>(std::size(kQueries));

// 600 requests per sweep point; the distinct-key count D = 600 / repeats
// dials the hit rate to (repeats - 1) / repeats.
constexpr int kRequestsPerMix = 600;
constexpr int kMaxDocuments = kRequestsPerMix / kNumQueries;  // 0%-hit row
// Serving-sized documents: evaluations must cost enough that the sweep
// measures reuse, not allocator noise — and the cold-path gate compares
// bookkeeping overhead against realistic per-request work.
constexpr int kProductsPerDocument = 120;

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void BuildCorpus(DocumentStore* store) {
  for (int d = 0; d < kMaxDocuments; ++d) {
    treeq::Rng rng(static_cast<uint64_t>(7000 + d));
    treeq::CatalogOptions opts;
    opts.num_products = kProductsPerDocument;
    auto added = store->Add("doc" + std::to_string(d),
                            treeq::CatalogDocument(&rng, opts));
    TREEQ_CHECK(added.ok());
  }
}

std::vector<PlanPtr> CompileQueries() {
  std::vector<PlanPtr> plans;
  for (const char* text : kQueries) {
    auto plan = Plan::Compile(Language::kXPath, text);
    TREEQ_CHECK(plan.ok());
    plans.push_back(std::move(plan).value());
  }
  return plans;
}

/// A shuffled mix of kRequestsPerMix requests over `documents` distinct
/// documents: D = kNumQueries * documents distinct keys, each repeated
/// kRequestsPerMix / D times. Shuffling interleaves hits and misses so a
/// cached run measures the steady mixed path, not a miss-phase followed by
/// a hit-phase.
std::vector<Request> BuildMix(const DocumentStore& store,
                              const std::vector<PlanPtr>& plans,
                              int documents, int* distinct_out) {
  const int distinct = kNumQueries * documents;
  const int repeats = kRequestsPerMix / distinct;
  TREEQ_CHECK(repeats * distinct == kRequestsPerMix);
  std::vector<Request> mix;
  mix.reserve(static_cast<size_t>(kRequestsPerMix));
  for (int rep = 0; rep < repeats; ++rep) {
    for (int d = 0; d < documents; ++d) {
      treeq::DocumentPtr doc = store.Get("doc" + std::to_string(d)).value();
      for (const PlanPtr& plan : plans) {
        mix.push_back(Request{plan, doc});
      }
    }
  }
  treeq::Rng rng(42);
  std::shuffle(mix.begin(), mix.end(), rng.engine());
  if (distinct_out != nullptr) *distinct_out = distinct;
  return mix;
}

double MeasureQps(const std::vector<Request>& mix, Executor* exec) {
  uint64_t start = NowNs();
  std::vector<treeq::Result<QueryResult>> results = exec->RunBatch(mix);
  uint64_t wall_ns = NowNs() - start;
  for (const auto& r : results) TREEQ_CHECK(r.ok());
  return static_cast<double>(mix.size()) * 1e9 /
         static_cast<double>(wall_ns);
}

/// Best-of-`reps` qps through a fresh cacheless 1-worker executor.
double UncachedQps(const std::vector<Request>& mix, int reps) {
  double best = 0;
  for (int i = 0; i < reps; ++i) {
    Executor exec(Executor::Options{.num_workers = 1, .queue_capacity = 64});
    best = std::max(best, MeasureQps(mix, &exec));
  }
  return best;
}

/// Best-of-`reps` qps through a fully cache-wired 1-worker executor. Fresh
/// caches per rep: every rep replays the same cold-start-to-warm mix, so
/// the measurement includes the misses that populate the caches.
double CachedQps(const std::vector<Request>& mix, int reps,
                 uint64_t* executions_out, uint64_t* hits_out,
                 uint64_t* eval_hits_out) {
  double best = 0;
  for (int i = 0; i < reps; ++i) {
    treeq::cache::EvalCache eval_cache;
    treeq::cache::ResultCache result_cache;
    Executor exec(Executor::Options{.num_workers = 1,
                                    .queue_capacity = 64,
                                    .eval_cache = &eval_cache,
                                    .result_cache = &result_cache,
                                    .singleflight = true});
    double qps = MeasureQps(mix, &exec);
    if (qps > best) {
      best = qps;
      if (executions_out != nullptr) *executions_out = result_cache.inserts();
      if (hits_out != nullptr) *hits_out = result_cache.hits();
      if (eval_hits_out != nullptr) *eval_hits_out = eval_cache.hits();
    }
  }
  return best;
}

void RunReuseSweep(treeq::benchjson::Record* record) {
  DocumentStore store;
  BuildCorpus(&store);
  std::vector<PlanPtr> plans = CompileQueries();
  constexpr int kReps = 3;

  std::printf("=== cross-query reuse: qps vs repeated-work fraction ===\n");
  std::printf("corpus: up to %d catalog documents, %d products each\n",
              kMaxDocuments, kProductsPerDocument);
  std::printf("mix:    %d requests per sweep point, %d query texts\n\n",
              kRequestsPerMix, kNumQueries);

  // documents -> target hit rate: 100 -> 0%, 50 -> 50%, 10 -> 90%, 1 -> 99%.
  double cold_ratio = 0;
  for (int documents : {kMaxDocuments, kMaxDocuments / 2, 10, 1}) {
    int distinct = 0;
    std::vector<Request> mix = BuildMix(store, plans, documents, &distinct);
    const double target_rate =
        static_cast<double>(kRequestsPerMix - distinct) / kRequestsPerMix;

    double uncached_qps = UncachedQps(mix, kReps);
    uint64_t executions = 0;
    uint64_t result_hits = 0;
    uint64_t eval_hits = 0;
    double cached_qps =
        CachedQps(mix, kReps, &executions, &result_hits, &eval_hits);
    const double speedup = cached_qps / uncached_qps;
    if (documents == kMaxDocuments) cold_ratio = speedup;

    std::printf("hit-rate %4.0f%%  uncached %9.0f qps  cached %9.0f qps  "
                "(%5.2fx; %llu executions, %llu result hits, "
                "%llu eval hits)\n",
                100.0 * target_rate, uncached_qps, cached_qps, speedup,
                static_cast<unsigned long long>(executions),
                static_cast<unsigned long long>(result_hits),
                static_cast<unsigned long long>(eval_hits));
    // Every distinct key executes exactly once; every repeat is reused
    // (hit or collapse). A tiny tolerance absorbs the benign race where a
    // repeat misses the cache just as its leader completes and re-runs.
    TREEQ_CHECK(executions >= static_cast<uint64_t>(distinct));
    TREEQ_CHECK(executions <= static_cast<uint64_t>(distinct) + 8);
    if (record != nullptr) {
      record->AddRow({{"hit_rate", target_rate},
                      {"requests", static_cast<double>(kRequestsPerMix)},
                      {"distinct_keys", static_cast<double>(distinct)},
                      {"uncached_qps", uncached_qps},
                      {"cached_qps", cached_qps},
                      {"speedup", speedup},
                      {"executions", static_cast<double>(executions)},
                      {"result_cache_hits", static_cast<double>(result_hits)},
                      {"eval_cache_hits", static_cast<double>(eval_hits)}});
    }
  }

  std::printf("\ncold_ratio (all-miss mix, caches on / caches off): %.3f\n",
              cold_ratio);
  if (record != nullptr) {
    record->SetString("note",
                      "cold_ratio (all-miss mix) is the CI gate (> 0.85); "
                      "speedup rows scale with per-request evaluation cost "
                      "and are recorded, not gated");
    record->SetNumber("hardware_concurrency",
                      std::thread::hardware_concurrency());
    record->SetNumber("requests_per_mix", kRequestsPerMix);
    record->SetNumber("query_texts", kNumQueries);
    record->SetNumber("cold_ratio", cold_ratio);
  }
}

// Micro-benchmarks for the default (google-benchmark) mode: the per-request
// cost of a result-cache hit versus a full evaluation.

void BM_SubmitResultCacheHit(benchmark::State& state) {
  DocumentStore store;
  BuildCorpus(&store);
  treeq::DocumentPtr doc = store.Get("doc0").value();
  PlanPtr plan = Plan::Compile(Language::kXPath, kQueries[1]).value();
  treeq::cache::ResultCache result_cache;
  Executor exec(Executor::Options{.num_workers = 1,
                                  .result_cache = &result_cache});
  TREEQ_CHECK(exec.Submit({plan, doc, {}}).future.get().ok());  // warm
  for (auto _ : state) {
    auto r = exec.Submit({plan, doc, {}}).future.get();
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SubmitResultCacheHit);

void BM_SubmitUncached(benchmark::State& state) {
  DocumentStore store;
  BuildCorpus(&store);
  treeq::DocumentPtr doc = store.Get("doc0").value();
  PlanPtr plan = Plan::Compile(Language::kXPath, kQueries[1]).value();
  Executor exec(Executor::Options{.num_workers = 1});
  for (auto _ : state) {
    auto r = exec.Submit({plan, doc, {}}).future.get();
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SubmitUncached);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = treeq::benchjson::ExtractJsonPath(&argc, argv);
  if (!json_path.empty()) {
    return treeq::benchjson::WriteRecord(
        json_path, "bench_cache_reuse",
        [](treeq::benchjson::Record* record) { RunReuseSweep(record); });
  }
  RunReuseSweep(nullptr);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
