// NodeSet kernel microbenchmark: the packed 64-bit-word NodeSet and the
// word-parallel AxisImage kernels (tree/node_set.h, tree/axes.cc) against
// the scalar byte-per-node baselines they replaced (reproduced verbatim
// below). Headline numbers at n = 10^6: union/intersect must be >= 5x,
// descendant/ancestor AxisImage >= 2x — see EXPERIMENTS.md for the repro
// commands and ISSUE/acceptance context.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_json.h"
#include "tree/axes.h"
#include "util/status.h"
#include "tree/generator.h"
#include "tree/node_set.h"
#include "tree/orders.h"
#include "util/random.h"

namespace {

using treeq::NodeId;
using treeq::NodeSet;
using treeq::Tree;
using treeq::TreeOrders;

// ---------------------------------------------------------------------------
// Scalar baseline: the seed's byte-per-node NodeSet and its O(n)-probe
// kernels, kept here so the speedup stays measurable against the real
// predecessor rather than a strawman.

class ScalarNodeSet {
 public:
  explicit ScalarNodeSet(int universe) : bits_(universe, 0) {}

  int universe() const { return static_cast<int>(bits_.size()); }
  int size() const { return count_; }
  bool empty() const { return count_ == 0; }
  bool Contains(NodeId n) const { return bits_[n] != 0; }

  void Insert(NodeId n) {
    if (!bits_[n]) {
      bits_[n] = 1;
      ++count_;
    }
  }

  void UnionWith(const ScalarNodeSet& other) {
    for (int i = 0; i < universe(); ++i) {
      if (other.bits_[i]) Insert(i);
    }
  }
  void IntersectWith(const ScalarNodeSet& other) {
    for (int i = 0; i < universe(); ++i) {
      if (bits_[i] && !other.bits_[i]) {
        bits_[i] = 0;
        --count_;
      }
    }
  }
  void Complement() {
    for (int i = 0; i < universe(); ++i) bits_[i] = bits_[i] ? 0 : 1;
    count_ = universe() - count_;
  }

 private:
  std::vector<char> bits_;
  int count_ = 0;
};

// Seed DescendantImage: one pre-order pass probing every node.
void ScalarDescendantImage(const Tree& tree, const TreeOrders& orders,
                           const ScalarNodeSet& from, ScalarNodeSet* to) {
  for (int i = 0; i < orders.num_nodes(); ++i) {
    NodeId v = orders.node_at_pre[i];
    NodeId p = tree.parent(v);
    if (p != treeq::kNullNode && (from.Contains(p) || to->Contains(p))) {
      to->Insert(v);
    }
  }
}

// Seed AncestorImage: one post-order pass with per-node child-chain walks.
void ScalarAncestorImage(const Tree& tree, const TreeOrders& orders,
                         const ScalarNodeSet& from, ScalarNodeSet* to) {
  std::vector<char> has(orders.num_nodes(), 0);
  for (int i = 0; i < orders.num_nodes(); ++i) {
    NodeId v = orders.node_at_post[i];
    char h = from.Contains(v) ? 1 : 0;
    char child_has = 0;
    for (NodeId c = tree.first_child(v); c != treeq::kNullNode;
         c = tree.next_sibling(c)) {
      child_has |= has[c];
    }
    has[v] = h | child_has;
    if (child_has) to->Insert(v);
  }
}

// ---------------------------------------------------------------------------

constexpr int kHeadlineNodes = 1'000'000;

// A ~10^6-node document-order tree (ids == pre ranks, the common case for
// parsed documents). BalancedTree builds breadth-first, so grow the same
// shape depth-first here: depth 10 / fanout 4 => (4^11 - 1) / 3 = 1,398,101
// nodes >= 10^6.
constexpr int kBigDepth = 10;
constexpr int kBigFanout = 4;

void GrowPreOrder(treeq::TreeBuilder* builder, NodeId parent, int depth) {
  if (depth == kBigDepth) return;
  static const char* kLabels[] = {"a", "b", "c"};
  for (int i = 0; i < kBigFanout; ++i) {
    NodeId c = builder->AddChild(parent, kLabels[(depth + 1) % 3]);
    GrowPreOrder(builder, c, depth + 1);
  }
}

Tree MakeBigTree() {
  treeq::TreeBuilder builder;
  NodeId root = builder.AddChild(treeq::kNullNode, "a");
  GrowPreOrder(&builder, root, 0);
  auto tree = builder.Finish();
  TREEQ_CHECK(tree.ok());
  return std::move(tree).value();
}

std::vector<NodeId> RandomMembers(treeq::Rng* rng, int n, double density) {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < n; ++v) {
    if (rng->Bernoulli(density)) out.push_back(v);
  }
  return out;
}

uint64_t MedianNs(std::vector<uint64_t>* samples) {
  std::sort(samples->begin(), samples->end());
  return (*samples)[samples->size() / 2];
}

template <typename Fn>
uint64_t TimeMedianNs(int reps, Fn&& fn) {
  std::vector<uint64_t> samples;
  samples.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    samples.push_back(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
  }
  return MedianNs(&samples);
}

// ---------------------------------------------------------------------------
// google-benchmark mode

void BM_ScalarUnion(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  treeq::Rng rng(1);
  ScalarNodeSet a(n), b(n);
  for (NodeId v : RandomMembers(&rng, n, 0.5)) a.Insert(v);
  for (NodeId v : RandomMembers(&rng, n, 0.5)) b.Insert(v);
  for (auto _ : state) {
    ScalarNodeSet u = a;
    u.UnionWith(b);
    benchmark::DoNotOptimize(u.size());
  }
}
BENCHMARK(BM_ScalarUnion)->Arg(65536)->Arg(kHeadlineNodes)->Unit(
    benchmark::kMicrosecond);

void BM_PackedUnion(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  treeq::Rng rng(1);
  NodeSet a = NodeSet::FromVector(n, RandomMembers(&rng, n, 0.5));
  NodeSet b = NodeSet::FromVector(n, RandomMembers(&rng, n, 0.5));
  for (auto _ : state) {
    NodeSet u = a;
    u.UnionWith(b);
    benchmark::DoNotOptimize(u.size());
  }
}
BENCHMARK(BM_PackedUnion)->Arg(65536)->Arg(kHeadlineNodes)->Unit(
    benchmark::kMicrosecond);

void BM_PackedDescendantImage(benchmark::State& state) {
  Tree t = MakeBigTree();
  TreeOrders o = treeq::ComputeOrders(t);
  const int n = t.num_nodes();
  treeq::Rng rng(2);
  NodeSet from = NodeSet::FromVector(n, RandomMembers(&rng, n, 0.01));
  NodeSet to(n);
  for (auto _ : state) {
    treeq::AxisImage(t, o, treeq::Axis::kDescendant, from, &to);
    benchmark::DoNotOptimize(to.size());
  }
}
BENCHMARK(BM_PackedDescendantImage)->Unit(benchmark::kMillisecond);

void BM_PackedAncestorImage(benchmark::State& state) {
  Tree t = MakeBigTree();
  TreeOrders o = treeq::ComputeOrders(t);
  const int n = t.num_nodes();
  treeq::Rng rng(3);
  NodeSet from = NodeSet::FromVector(n, RandomMembers(&rng, n, 0.01));
  NodeSet to(n);
  for (auto _ : state) {
    treeq::AxisImage(t, o, treeq::Axis::kAncestor, from, &to);
    benchmark::DoNotOptimize(to.size());
  }
}
BENCHMARK(BM_PackedAncestorImage)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// --json mode: one row per kernel with scalar/packed medians and the
// speedup, at the headline size. Result sizes are cross-checked so the
// baselines and kernels provably compute the same images.

void JsonWorkload(treeq::benchjson::Record* rec) {
  constexpr int kReps = 7;
  Tree t = MakeBigTree();
  TreeOrders o = treeq::ComputeOrders(t);
  const int n = t.num_nodes();
  rec->SetNumber("input_nodes", n);
  rec->SetNumber("reps", kReps);
  rec->SetString("tree_shape", "balanced 4-ary, depth 10, doc-order ids");
  rec->SetNumber("pre_is_identity", o.pre_is_identity ? 1 : 0);

  treeq::Rng rng(7);
  const std::vector<NodeId> a_members = RandomMembers(&rng, n, 0.5);
  const std::vector<NodeId> b_members = RandomMembers(&rng, n, 0.5);
  const std::vector<NodeId> sparse_members = RandomMembers(&rng, n, 0.01);

  ScalarNodeSet sa(n), sb(n), s_sparse(n);
  for (NodeId v : a_members) sa.Insert(v);
  for (NodeId v : b_members) sb.Insert(v);
  for (NodeId v : sparse_members) s_sparse.Insert(v);
  NodeSet pa = NodeSet::FromVector(n, a_members);
  NodeSet pb = NodeSet::FromVector(n, b_members);
  NodeSet p_sparse = NodeSet::FromVector(n, sparse_members);

  int next_op_id = 0;
  auto add_row = [&](const char* op, uint64_t scalar_ns, uint64_t packed_ns,
                     int scalar_size, int packed_size) {
    TREEQ_CHECK(scalar_size == packed_size);
    std::printf("%-22s scalar %12llu ns   packed %12llu ns   speedup %.1fx\n",
                op, static_cast<unsigned long long>(scalar_ns),
                static_cast<unsigned long long>(packed_ns),
                static_cast<double>(scalar_ns) /
                    static_cast<double>(packed_ns));
    const int op_id = next_op_id++;
    rec->SetString("op" + std::to_string(op_id), op);
    rec->AddRow({{"op_id", static_cast<double>(op_id)},
                 {"n", static_cast<double>(n)},
                 {"scalar_ns", static_cast<double>(scalar_ns)},
                 {"packed_ns", static_cast<double>(packed_ns)},
                 {"speedup", static_cast<double>(scalar_ns) /
                                 static_cast<double>(packed_ns)},
                 {"result_size", static_cast<double>(packed_size)}});
  };

  {
    int ssize = 0, psize = 0;
    uint64_t s = TimeMedianNs(kReps, [&] {
      ScalarNodeSet u = sa;
      u.UnionWith(sb);
      ssize = u.size();
    });
    uint64_t p = TimeMedianNs(kReps, [&] {
      NodeSet u = pa;
      u.UnionWith(pb);
      psize = u.size();
    });
    add_row("union", s, p, ssize, psize);
  }
  {
    int ssize = 0, psize = 0;
    uint64_t s = TimeMedianNs(kReps, [&] {
      ScalarNodeSet u = sa;
      u.IntersectWith(sb);
      ssize = u.size();
    });
    uint64_t p = TimeMedianNs(kReps, [&] {
      NodeSet u = pa;
      u.IntersectWith(pb);
      psize = u.size();
    });
    add_row("intersect", s, p, ssize, psize);
  }
  {
    int ssize = 0, psize = 0;
    uint64_t s = TimeMedianNs(kReps, [&] {
      ScalarNodeSet u = sa;
      u.Complement();
      ssize = u.size();
    });
    uint64_t p = TimeMedianNs(kReps, [&] {
      NodeSet u = pa;
      u.Complement();
      psize = u.size();
    });
    add_row("complement", s, p, ssize, psize);
  }
  {
    int ssize = 0, psize = 0;
    uint64_t s = TimeMedianNs(kReps, [&] {
      ScalarNodeSet to(n);
      ScalarDescendantImage(t, o, s_sparse, &to);
      ssize = to.size();
    });
    NodeSet to(n);
    uint64_t p = TimeMedianNs(kReps, [&] {
      treeq::AxisImage(t, o, treeq::Axis::kDescendant, p_sparse, &to);
      psize = to.size();
    });
    add_row("descendant_image", s, p, ssize, psize);
  }
  {
    int ssize = 0, psize = 0;
    uint64_t s = TimeMedianNs(kReps, [&] {
      ScalarNodeSet to(n);
      ScalarAncestorImage(t, o, s_sparse, &to);
      ssize = to.size();
    });
    NodeSet to(n);
    uint64_t p = TimeMedianNs(kReps, [&] {
      treeq::AxisImage(t, o, treeq::Axis::kAncestor, p_sparse, &to);
      psize = to.size();
    });
    add_row("ancestor_image", s, p, ssize, psize);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = treeq::benchjson::ExtractJsonPath(&argc, argv);
  if (!json_path.empty()) {
    return treeq::benchjson::WriteRecord(json_path, "bench_nodeset_kernels",
                                         JsonWorkload);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
