// F1 — Figure 1: an unranked tree and its binary representation through
// FirstChild and NextSibling. We rebuild a tree from exactly those two
// partial functions, verify the round trip, and time construction plus
// order computation at scale (everything downstream — Theorem 3.2's
// grounding, the streaming evaluator — leans on this O(n) substrate).

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <cstdio>

#include "tree/generator.h"
#include "tree/orders.h"
#include "tree/tree.h"
#include "util/random.h"

namespace {

/// Rebuilds `t` from its (FirstChild, NextSibling) encoding only.
treeq::Tree RebuildFromBinaryEncoding(const treeq::Tree& t) {
  treeq::TreeBuilder builder;
  // Walk the FirstChild/NextSibling pointers exactly as Figure 1(b) draws
  // them; no other navigation is consulted.
  struct Pending {
    treeq::NodeId src;
    treeq::NodeId dst_parent;
  };
  std::vector<Pending> stack;
  treeq::NodeId root = builder.AddChild(
      treeq::kNullNode, t.label_table().Name(t.label(t.root())));
  if (t.first_child(t.root()) != treeq::kNullNode) {
    stack.push_back({t.first_child(t.root()), root});
  }
  while (!stack.empty()) {
    Pending p = stack.back();
    stack.pop_back();
    treeq::NodeId fresh =
        builder.AddChild(p.dst_parent, t.label_table().Name(t.label(p.src)));
    if (t.next_sibling(p.src) != treeq::kNullNode) {
      stack.push_back({t.next_sibling(p.src), p.dst_parent});
    }
    if (t.first_child(p.src) != treeq::kNullNode) {
      stack.push_back({t.first_child(p.src), fresh});
    }
  }
  treeq::Result<treeq::Tree> rebuilt = builder.Finish();
  TREEQ_CHECK(rebuilt.ok());
  return std::move(rebuilt).value();
}

void PrintFigure1() {
  std::printf("=== Figure 1: FirstChild/NextSibling binary encoding ===\n");
  // The figure's 6-node tree.
  treeq::TreeBuilder b;
  treeq::NodeId n1 = b.AddChild(treeq::kNullNode, "n1");
  b.AddChild(n1, "n2");
  b.AddChild(n1, "n3");
  treeq::NodeId n4 = b.AddChild(n1, "n4");
  b.AddChild(n4, "n5");
  b.AddChild(n4, "n6");
  treeq::Tree t = std::move(b.Finish()).value();
  std::printf("FirstChild edges:");
  for (treeq::NodeId v = 0; v < t.num_nodes(); ++v) {
    if (t.first_child(v) != treeq::kNullNode) {
      std::printf(" (%s,%s)", t.label_table().Name(t.label(v)).c_str(),
                  t.label_table().Name(t.label(t.first_child(v))).c_str());
    }
  }
  std::printf("\nNextSibling edges:");
  for (treeq::NodeId v = 0; v < t.num_nodes(); ++v) {
    if (t.next_sibling(v) != treeq::kNullNode) {
      std::printf(" (%s,%s)", t.label_table().Name(t.label(v)).c_str(),
                  t.label_table().Name(t.label(t.next_sibling(v))).c_str());
    }
  }
  treeq::Tree rebuilt = RebuildFromBinaryEncoding(t);
  bool same = rebuilt.num_nodes() == t.num_nodes();
  for (treeq::NodeId v = 0; same && v < t.num_nodes(); ++v) {
    same = rebuilt.parent(v) == t.parent(v) &&
           rebuilt.next_sibling(v) == t.next_sibling(v);
  }
  std::printf("\nround trip through the binary encoding: %s\n\n",
              same ? "identical" : "MISMATCH — BUG");
}

void BM_BuildFromBinaryEncoding(benchmark::State& state) {
  treeq::Rng rng(7);
  treeq::RandomTreeOptions opts;
  opts.num_nodes = static_cast<int>(state.range(0));
  treeq::Tree t = treeq::RandomTree(&rng, opts);
  for (auto _ : state) {
    treeq::Tree rebuilt = RebuildFromBinaryEncoding(t);
    benchmark::DoNotOptimize(rebuilt.num_nodes());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BuildFromBinaryEncoding)
    ->RangeMultiplier(4)
    ->Range(1024, 65536)
    ->Complexity(benchmark::oN)
    ->Unit(benchmark::kMicrosecond);

void BM_ComputeOrders(benchmark::State& state) {
  treeq::Rng rng(7);
  treeq::RandomTreeOptions opts;
  opts.num_nodes = static_cast<int>(state.range(0));
  treeq::Tree t = treeq::RandomTree(&rng, opts);
  for (auto _ : state) {
    treeq::TreeOrders o = treeq::ComputeOrders(t);
    benchmark::DoNotOptimize(o.pre.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ComputeOrders)
    ->RangeMultiplier(4)
    ->Range(1024, 65536)
    ->Complexity(benchmark::oN)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = treeq::benchjson::ExtractJsonPath(&argc, argv);
  if (!json_path.empty()) {
    // --json mode: the headline workload runs once under a reset obs
    // registry; its work counters and spans land in the record.
    return treeq::benchjson::WriteRecord(
        json_path, "bench_fig1_repr", [](treeq::benchjson::Record*) {
          PrintFigure1();
        });
  }
  PrintFigure1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
