// S6a — Theorem 6.5: Boolean conjunctive queries over X-underbar signatures
// evaluate in O(||A|| * |Q|) via arc-consistency + minimum valuation — even
// for CYCLIC queries, which acyclicity-based methods cannot touch. Sweeps:
// data size for a fixed cyclic tau_1 query (polynomial, dominated by the
// materialized ||A||) vs backtracking; plus the Horn-encoding vs direct
// AC-4 ablation (the paper's proof vs the optimized implementation).

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <cstdio>

#include "cq/naive.h"
#include "cq/parser.h"
#include "cq/x_property.h"
#include "tree/generator.h"
#include "tree/orders.h"
#include "util/random.h"

namespace {

treeq::Tree MakeTree(int n) {
  treeq::Rng rng(77);
  treeq::RandomTreeOptions opts;
  opts.num_nodes = n;
  opts.attach_window = 5;
  opts.alphabet = {"a", "b", "c"};
  return treeq::RandomTree(&rng, opts);
}

// A cyclic tau_1 query: a triangle of descendant atoms plus labels chosen
// to be selective.
treeq::cq::ConjunctiveQuery CyclicTau1() {
  return treeq::cq::ParseCq(
             "Q() :- Child+(x, y), Child+(y, z), Child+(x, z), Lab_a(x), "
             "Lab_b(y), Lab_c(z).")
      .value();
}

void PrintHeadline() {
  std::printf("=== Theorem 6.5: X-underbar evaluation of a cyclic CQ ===\n");
  std::printf("query: %s\n", CyclicTau1().ToString().c_str());
  std::printf("%-8s %-14s %-18s\n", "nodes", "X-eval result",
              "backtrack agrees");
  for (int n : {100, 400, 1600}) {
    treeq::Tree t = MakeTree(n);
    treeq::TreeOrders o = treeq::ComputeOrders(t);
    auto fast = treeq::cq::EvaluateXProperty(CyclicTau1(), t, o,
                                             treeq::cq::TreeOrder::kPre);
    auto slow = treeq::cq::NaiveSatisfiableCq(CyclicTau1(), t, o);
    std::printf("%-8d %-14s %-18s\n", n,
                fast.value().satisfiable ? "satisfiable" : "unsatisfiable",
                fast.value().satisfiable == slow.value() ? "yes" : "NO!");
  }
  std::printf("\n");
}

void BM_XPropertyDirect(benchmark::State& state) {
  treeq::Tree t = MakeTree(static_cast<int>(state.range(0)));
  treeq::TreeOrders o = treeq::ComputeOrders(t);
  treeq::cq::ConjunctiveQuery q = CyclicTau1();
  for (auto _ : state) {
    auto r = treeq::cq::EvaluateXProperty(q, t, o,
                                          treeq::cq::TreeOrder::kPre,
                                          treeq::cq::AcImplementation::kDirect);
    benchmark::DoNotOptimize(r.ok());
  }
  // ||A|| for Child+ is quadratic in n; the claim is linearity in ||A||.
  state.SetComplexityN(state.range(0) * state.range(0));
}
BENCHMARK(BM_XPropertyDirect)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Complexity(benchmark::oN)
    ->Unit(benchmark::kMicrosecond);

void BM_XPropertyHornEncoding(benchmark::State& state) {
  treeq::Tree t = MakeTree(static_cast<int>(state.range(0)));
  treeq::TreeOrders o = treeq::ComputeOrders(t);
  treeq::cq::ConjunctiveQuery q = CyclicTau1();
  for (auto _ : state) {
    auto r = treeq::cq::EvaluateXProperty(
        q, t, o, treeq::cq::TreeOrder::kPre,
        treeq::cq::AcImplementation::kHornEncoding);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetComplexityN(state.range(0) * state.range(0));
}
BENCHMARK(BM_XPropertyHornEncoding)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Complexity(benchmark::oN)
    ->Unit(benchmark::kMicrosecond);

void BM_BacktrackingBaseline(benchmark::State& state) {
  treeq::Tree t = MakeTree(static_cast<int>(state.range(0)));
  treeq::TreeOrders o = treeq::ComputeOrders(t);
  treeq::cq::ConjunctiveQuery q = CyclicTau1();
  for (auto _ : state) {
    auto r = treeq::cq::NaiveSatisfiableCq(q, t, o);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_BacktrackingBaseline)->Arg(128)->Arg(512)->Unit(
    benchmark::kMicrosecond);

// tau_2 and tau_3 workloads through the same evaluator.
void BM_XPropertyTau2(benchmark::State& state) {
  treeq::Tree t = MakeTree(static_cast<int>(state.range(0)));
  treeq::TreeOrders o = treeq::ComputeOrders(t);
  auto q = treeq::cq::ParseCq(
               "Q() :- Following(x, y), Following(y, z), Following(x, z), "
               "Lab_a(x), Lab_b(y), Lab_c(z).")
               .value();
  for (auto _ : state) {
    auto r = treeq::cq::EvaluateXProperty(q, t, o,
                                          treeq::cq::TreeOrder::kPost);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_XPropertyTau2)->Arg(256)->Arg(512)->Unit(
    benchmark::kMicrosecond);

void BM_XPropertyTau3(benchmark::State& state) {
  treeq::Tree t = MakeTree(static_cast<int>(state.range(0)));
  treeq::TreeOrders o = treeq::ComputeOrders(t);
  auto q = treeq::cq::ParseCq(
               "Q() :- Child(x, y), Child(x, z), NextSibling(y, z), "
               "Lab_a(y), Lab_b(z).")
               .value();
  for (auto _ : state) {
    auto r = treeq::cq::EvaluateXProperty(q, t, o,
                                          treeq::cq::TreeOrder::kBflr);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_XPropertyTau3)->Arg(256)->Arg(512)->Unit(
    benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = treeq::benchjson::ExtractJsonPath(&argc, argv);
  if (!json_path.empty()) {
    // --json mode: the headline workload runs once under a reset obs
    // registry; its work counters and spans land in the record.
    return treeq::benchjson::WriteRecord(
        json_path, "bench_thm65_xbar", [](treeq::benchjson::Record*) {
          PrintHeadline();
        });
  }
  PrintHeadline();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
