// S6c — holistic twig joins ([13, 48], Section 6): TwigStack processes all
// structural joins of a twig at once, keeping intermediate state
// proportional to useful path solutions, whereas a binary structural-join
// pipeline materializes edge-join results that may never contribute to a
// full match. We compare matches, intermediate-result counts, and runtime
// on a selective and an unselective twig over catalog documents.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <cstdio>

#include "cq/twig_join.h"
#include "tree/generator.h"
#include "tree/orders.h"
#include "util/random.h"

namespace {

treeq::Tree MakeDoc(int products) {
  treeq::Rng rng(55);
  treeq::CatalogOptions opts;
  opts.num_products = products;
  return treeq::CatalogDocument(&rng, opts);
}

// Selective: products with a 5-star review AND a comment (few matches, but
// the binary pipeline first joins ALL product//rating5 and product//comment
// pairs).
treeq::cq::TwigPattern SelectiveTwig() {
  treeq::cq::TwigPattern p;
  p.nodes.push_back({"product", treeq::Axis::kDescendant, -1});
  p.nodes.push_back({"reviews", treeq::Axis::kChild, 0});
  p.nodes.push_back({"review", treeq::Axis::kChild, 1});
  p.nodes.push_back({"rating5", treeq::Axis::kChild, 2});
  p.nodes.push_back({"comment", treeq::Axis::kChild, 2});
  return p;
}

// Unselective: catalog//product//review (most reviews match).
treeq::cq::TwigPattern UnselectiveTwig() {
  treeq::cq::TwigPattern p;
  p.nodes.push_back({"catalog", treeq::Axis::kDescendant, -1});
  p.nodes.push_back({"product", treeq::Axis::kDescendant, 0});
  p.nodes.push_back({"review", treeq::Axis::kDescendant, 1});
  return p;
}

void PrintComparison() {
  std::printf("=== TwigStack vs binary structural joins ===\n");
  treeq::Tree doc = MakeDoc(500);
  treeq::TreeOrders orders = treeq::ComputeOrders(doc);
  struct Case {
    const char* name;
    treeq::cq::TwigPattern twig;
  };
  Case cases[] = {{"selective twig", SelectiveTwig()},
                  {"unselective twig", UnselectiveTwig()}};
  std::printf("%-18s %-9s %-22s %-22s\n", "twig", "matches",
              "holistic intermediates", "binary intermediates");
  for (Case& c : cases) {
    treeq::cq::TwigStats hs, bs;
    auto holistic = treeq::cq::TwigStackJoin(c.twig, doc, orders, &hs);
    auto binary = treeq::cq::TwigByStructuralJoins(c.twig, doc, orders, &bs);
    TREEQ_CHECK(holistic.ok() && binary.ok());
    TREEQ_CHECK(holistic.value() == binary.value());
    std::printf("%-18s %-9zu %-22llu %-22llu\n", c.name,
                holistic.value().size(),
                static_cast<unsigned long long>(hs.intermediate_results),
                static_cast<unsigned long long>(bs.intermediate_results));
  }
  std::printf("(holistic intermediates = stack pushes; the binary pipeline "
              "counts edge-join\n and join-result tuples — the gap is the "
              "[13] claim)\n\n");
}

void BM_TwigStackSelective(benchmark::State& state) {
  treeq::Tree doc = MakeDoc(static_cast<int>(state.range(0)));
  treeq::TreeOrders orders = treeq::ComputeOrders(doc);
  treeq::cq::TwigPattern twig = SelectiveTwig();
  for (auto _ : state) {
    auto r = treeq::cq::TwigStackJoin(twig, doc, orders);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetComplexityN(doc.num_nodes());
}
BENCHMARK(BM_TwigStackSelective)
    ->Arg(250)
    ->Arg(1000)
    ->Arg(4000)
    ->Complexity(benchmark::oN)
    ->Unit(benchmark::kMicrosecond);

void BM_BinaryJoinsSelective(benchmark::State& state) {
  treeq::Tree doc = MakeDoc(static_cast<int>(state.range(0)));
  treeq::TreeOrders orders = treeq::ComputeOrders(doc);
  treeq::cq::TwigPattern twig = SelectiveTwig();
  for (auto _ : state) {
    auto r = treeq::cq::TwigByStructuralJoins(twig, doc, orders);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_BinaryJoinsSelective)
    ->Arg(250)
    ->Arg(1000)
    ->Arg(4000)
    ->Unit(benchmark::kMicrosecond);

void BM_TwigStackUnselective(benchmark::State& state) {
  treeq::Tree doc = MakeDoc(static_cast<int>(state.range(0)));
  treeq::TreeOrders orders = treeq::ComputeOrders(doc);
  treeq::cq::TwigPattern twig = UnselectiveTwig();
  for (auto _ : state) {
    auto r = treeq::cq::TwigStackJoin(twig, doc, orders);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_TwigStackUnselective)->Arg(250)->Arg(1000)->Unit(
    benchmark::kMicrosecond);

void BM_BinaryJoinsUnselective(benchmark::State& state) {
  treeq::Tree doc = MakeDoc(static_cast<int>(state.range(0)));
  treeq::TreeOrders orders = treeq::ComputeOrders(doc);
  treeq::cq::TwigPattern twig = UnselectiveTwig();
  for (auto _ : state) {
    auto r = treeq::cq::TwigByStructuralJoins(twig, doc, orders);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_BinaryJoinsUnselective)->Arg(250)->Arg(1000)->Unit(
    benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = treeq::benchjson::ExtractJsonPath(&argc, argv);
  if (!json_path.empty()) {
    // --json mode: the headline workload runs once under a reset obs
    // registry; its work counters and spans land in the record.
    return treeq::benchjson::WriteRecord(
        json_path, "bench_twigstack", [](treeq::benchjson::Record*) {
          PrintComparison();
        });
  }
  PrintComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
