// S4b — Core XPath combined complexity: the set-at-a-time evaluator runs in
// O(|D| * |Q|) ([32,33], Section 4), while the textbook per-context-node
// recursive interpreter is exponential in the query (the "engines are
// exponential" observation that motivated [32]). Query sweep on //*//*...
// chains: naive rule applications grow ~|D|^k; the linear evaluator stays
// proportional to k.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>

#include "bench_json.h"
#include "obs/stats.h"
#include "tree/generator.h"
#include "tree/orders.h"
#include "util/random.h"
#include "xpath/evaluator.h"
#include "xpath/naive_evaluator.h"
#include "xpath/parser.h"

namespace {

treeq::Tree MakeTree(int n) {
  treeq::Rng rng(5);
  treeq::RandomTreeOptions opts;
  opts.num_nodes = n;
  opts.attach_window = 3;
  opts.alphabet = {"a"};
  return treeq::RandomTree(&rng, opts);
}

std::string DescendantChain(int k) {
  std::string q = "descendant::*";
  for (int i = 1; i < k; ++i) q += "/descendant::*";
  return q;
}

// Right-associated chain d/(d/(d/...)): the shape on which per-context
// re-evaluation is Theta(n^k) — the parser's left association would let
// even the naive interpreter get away with polynomial work, so the
// worst case is built directly.
std::unique_ptr<treeq::xpath::PathExpr> RightNestedChain(int k) {
  std::unique_ptr<treeq::xpath::PathExpr> chain =
      treeq::xpath::PathExpr::MakeStep(treeq::Axis::kDescendant);
  for (int i = 1; i < k; ++i) {
    chain = treeq::xpath::PathExpr::MakeSeq(
        treeq::xpath::PathExpr::MakeStep(treeq::Axis::kDescendant),
        std::move(chain));
  }
  return chain;
}

void PrintBlowupTable() {
  std::printf("=== naive recursive XPath: rule applications vs |Q| ===\n");
  std::printf("(document: 60 nodes; query: k right-nested descendant "
              "steps)\n");
  std::printf("%-6s %-20s %-20s\n", "k", "naive applications",
              "set-at-a-time axis ops (=k)");
  treeq::Tree t = MakeTree(60);
  treeq::TreeOrders o = treeq::ComputeOrders(t);
  for (int k : {1, 2, 3, 4, 5}) {
    auto q = RightNestedChain(k);
    treeq::xpath::NaiveStats stats;
    auto r = treeq::xpath::NaiveEvalPath(t, o, *q, t.root(),
                                         /*budget=*/500'000'000, &stats);
    if (!r.ok()) {
      std::printf("%-6d %-20s %-20d\n", k, "(budget exceeded)", k);
      continue;
    }
    std::printf("%-6d %-20llu %-20d\n", k,
                static_cast<unsigned long long>(stats.rule_applications), k);
  }
  std::printf("(naive column grows geometrically: exponential combined "
              "complexity;\n the linear evaluator touches each "
              "subexpression once)\n\n");
}

void BM_SetAtATimeDataSweep(benchmark::State& state) {
  treeq::Tree t = MakeTree(static_cast<int>(state.range(0)));
  treeq::TreeOrders o = treeq::ComputeOrders(t);
  auto q = treeq::xpath::ParseXPath(DescendantChain(4)).value();
  for (auto _ : state) {
    treeq::NodeSet r = treeq::xpath::EvalQueryFromRoot(t, o, *q);
    benchmark::DoNotOptimize(r.size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SetAtATimeDataSweep)
    ->RangeMultiplier(4)
    ->Range(1024, 65536)
    ->Complexity(benchmark::oN)
    ->Unit(benchmark::kMicrosecond);

void BM_SetAtATimeQuerySweep(benchmark::State& state) {
  treeq::Tree t = MakeTree(4096);
  treeq::TreeOrders o = treeq::ComputeOrders(t);
  auto q = treeq::xpath::ParseXPath(
               DescendantChain(static_cast<int>(state.range(0))))
               .value();
  for (auto _ : state) {
    treeq::NodeSet r = treeq::xpath::EvalQueryFromRoot(t, o, *q);
    benchmark::DoNotOptimize(r.size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SetAtATimeQuerySweep)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Complexity(benchmark::oN)
    ->Unit(benchmark::kMicrosecond);

void BM_NaiveQuerySweep(benchmark::State& state) {
  treeq::Tree t = MakeTree(48);
  treeq::TreeOrders o = treeq::ComputeOrders(t);
  auto q = RightNestedChain(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto r = treeq::xpath::NaiveEvalPath(t, o, *q, t.root());
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_NaiveQuerySweep)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Unit(
    benchmark::kMicrosecond);

// Qualifier-heavy query: nested predicates are where early engines melted.
void BM_NestedQualifiers(benchmark::State& state) {
  treeq::Tree t = MakeTree(2048);
  treeq::TreeOrders o = treeq::ComputeOrders(t);
  std::string text = "descendant::a";
  for (int i = 0; i < 6; ++i) text = "descendant::a[" + text + "]";
  auto q = treeq::xpath::ParseXPath(text).value();
  for (auto _ : state) {
    treeq::NodeSet r = treeq::xpath::EvalQueryFromRoot(t, o, *q);
    benchmark::DoNotOptimize(r.size());
  }
}
BENCHMARK(BM_NestedQualifiers)->Unit(benchmark::kMicrosecond);

// --json mode: one row per query length k, with per-k deltas of the
// engines' registry counters. The naive column grows geometrically in k
// while the set-at-a-time column grows by exactly k axis applications —
// the paper's combined-complexity contrast as data.
void JsonWorkload(treeq::benchjson::Record* rec) {
  treeq::obs::StatsRegistry& reg = treeq::obs::StatsRegistry::Global();
  treeq::Tree t = MakeTree(60);
  treeq::TreeOrders o = treeq::ComputeOrders(t);
  rec->SetNumber("input_nodes", t.num_nodes());
  rec->SetString("query_shape", "k right-nested descendant steps");
  for (int k : {1, 2, 3, 4, 5}) {
    auto q = RightNestedChain(k);
    uint64_t naive_before = reg.CounterValue("xpath.naive.rule_applications");
    auto t0 = std::chrono::steady_clock::now();
    auto naive = treeq::xpath::NaiveEvalPath(t, o, *q, t.root(),
                                             /*budget=*/500'000'000);
    auto t1 = std::chrono::steady_clock::now();
    uint64_t axis_before = reg.CounterValue("xpath.axis_ops");
    treeq::NodeSet fast = treeq::xpath::EvalQueryFromRoot(t, o, *q);
    auto t2 = std::chrono::steady_clock::now();
    auto ns = [](auto d) {
      return static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
    };
    rec->AddRow({
        {"k", static_cast<double>(k)},
        {"naive_rule_applications",
         static_cast<double>(reg.CounterValue("xpath.naive.rule_applications") -
                             naive_before)},
        {"set_at_a_time_axis_ops",
         static_cast<double>(reg.CounterValue("xpath.axis_ops") -
                             axis_before)},
        {"naive_ok", naive.ok() ? 1.0 : 0.0},
        {"result_size", static_cast<double>(fast.size())},
        {"naive_wall_ns", ns(t1 - t0)},
        {"set_at_a_time_wall_ns", ns(t2 - t1)},
    });
  }
  // One qualifier-bearing query so the dump also carries per-qualifier work
  // (xpath.qualifier_ops), not just axis applications.
  auto qual = treeq::xpath::ParseXPath("descendant::a[descendant::a]").value();
  treeq::NodeSet qr = treeq::xpath::EvalQueryFromRoot(t, o, *qual);
  rec->SetNumber("qualified_result_size", static_cast<double>(qr.size()));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = treeq::benchjson::ExtractJsonPath(&argc, argv);
  if (!json_path.empty()) {
    return treeq::benchjson::WriteRecord(json_path, "bench_xpath_combined",
                                         JsonWorkload);
  }
  PrintBlowupTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
