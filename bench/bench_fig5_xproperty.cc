// F5 — Figure 5 / Proposition 6.6: the X-underbar property. The matrix of
// axis x order is regenerated empirically (checking Definition 6.3 on a
// generated tree family) and compared against the Proposition 6.6 table the
// dichotomy dispatcher uses. Checker cost is also timed.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <cstdio>
#include <vector>

#include "cq/x_property.h"
#include "tree/generator.h"
#include "tree/orders.h"
#include "util/random.h"

namespace {

using treeq::cq::TreeOrder;

constexpr treeq::Axis kAxes[] = {
    treeq::Axis::kSelf,
    treeq::Axis::kChild,
    treeq::Axis::kDescendant,
    treeq::Axis::kDescendantOrSelf,
    treeq::Axis::kNextSibling,
    treeq::Axis::kFollowingSibling,
    treeq::Axis::kFollowingSiblingOrSelf,
    treeq::Axis::kFollowing,
    treeq::Axis::kFirstChild,
};

void PrintMatrix() {
  std::printf("=== Proposition 6.6: which axes have X-underbar w.r.t. which "
              "order ===\n");
  std::printf("(cell: table / empirical over 20 random trees; tau_1 = <pre "
              "column,\n tau_2 = <post, tau_3 = <bflr)\n\n");
  std::vector<treeq::Tree> trees;
  for (int seed = 0; seed < 20; ++seed) {
    treeq::Rng rng(seed);
    treeq::RandomTreeOptions opts;
    opts.num_nodes = 12;
    opts.attach_window = 1 + seed % 6;
    trees.push_back(treeq::RandomTree(&rng, opts));
  }
  std::printf("%-28s %-14s %-14s %-14s\n", "axis", "<pre", "<post", "<bflr");
  bool all_agree = true;
  for (treeq::Axis axis : kAxes) {
    std::printf("%-28s", treeq::AxisName(axis));
    for (TreeOrder order :
         {TreeOrder::kPre, TreeOrder::kPost, TreeOrder::kBflr}) {
      bool table = treeq::cq::XPropertyHolds(axis, order);
      bool empirical = true;
      for (const treeq::Tree& t : trees) {
        treeq::TreeOrders o = treeq::ComputeOrders(t);
        empirical =
            empirical && treeq::cq::AxisHasXPropertyOn(t, o, axis, order);
      }
      // The table claims "holds on every tree": table==true must imply
      // empirical==true; table==false should be refuted by some tree.
      bool consistent = table ? empirical : !empirical;
      all_agree = all_agree && consistent;
      std::printf("%-14s", table ? (empirical ? "X/X" : "X/refuted?!")
                                 : (empirical ? "-/unrefuted" : "-/-"));
    }
    std::printf("\n");
  }
  std::printf("\ntable consistent with the empirical check: %s\n\n",
              all_agree ? "yes" : "NO — BUG");
}

void BM_XPropertyChecker(benchmark::State& state) {
  treeq::Rng rng(3);
  treeq::RandomTreeOptions opts;
  opts.num_nodes = static_cast<int>(state.range(0));
  treeq::Tree t = treeq::RandomTree(&rng, opts);
  treeq::TreeOrders o = treeq::ComputeOrders(t);
  for (auto _ : state) {
    bool holds = treeq::cq::AxisHasXPropertyOn(
        t, o, treeq::Axis::kDescendant, TreeOrder::kPre);
    benchmark::DoNotOptimize(holds);
  }
}
BENCHMARK(BM_XPropertyChecker)->Arg(16)->Arg(32)->Arg(64)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = treeq::benchjson::ExtractJsonPath(&argc, argv);
  if (!json_path.empty()) {
    // --json mode: the headline workload runs once under a reset obs
    // registry; its work counters and spans land in the record.
    return treeq::benchjson::WriteRecord(
        json_path, "bench_fig5_xproperty", [](treeq::benchjson::Record*) {
          PrintMatrix();
        });
  }
  PrintMatrix();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
