// F4 — Figure 4 / Section 4: (Child, NextSibling)-trees are graphs of
// tree-width two. We regenerate the explicit width-2 decomposition across a
// tree family, verify the three decomposition conditions, and report the
// width distribution; decomposition construction is timed (linear).

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <cstdio>

#include "tree/generator.h"
#include "tree/treewidth.h"
#include "util/random.h"

namespace {

void PrintFigure4() {
  std::printf(
      "=== Figure 4: width-2 decompositions of Child/NextSibling graphs "
      "===\n");
  std::printf("%-10s %-8s %-8s %-8s %-8s\n", "shape", "nodes", "edges",
              "width", "valid");
  struct Case {
    const char* name;
    treeq::Tree tree;
  };
  treeq::Rng rng(5);
  treeq::RandomTreeOptions ropts;
  ropts.num_nodes = 500;
  Case cases[] = {
      {"chain", treeq::Chain(500)},
      {"star", treeq::Star(500)},
      {"balanced", treeq::BalancedTree(8, 2, {"x"})},
      {"caterpillar", treeq::Caterpillar(100, 4)},
      {"random", treeq::RandomTree(&rng, ropts)},
  };
  for (const Case& c : cases) {
    treeq::Graph g = treeq::ChildNextSiblingGraph(c.tree);
    int edges = 0;
    for (const auto& adj : g.adjacency) edges += static_cast<int>(adj.size());
    edges /= 2;
    treeq::TreeDecomposition d = treeq::DecomposeChildNextSibling(c.tree);
    treeq::Status valid = treeq::VerifyDecomposition(g, d);
    std::printf("%-10s %-8d %-8d %-8d %-8s\n", c.name, c.tree.num_nodes(),
                edges, d.Width(), valid.ok() ? "yes" : "NO");
  }
  std::printf("(the paper: every such union graph has tree-width <= 2)\n\n");
}

void BM_DecomposeChildNextSibling(benchmark::State& state) {
  treeq::Rng rng(9);
  treeq::RandomTreeOptions opts;
  opts.num_nodes = static_cast<int>(state.range(0));
  treeq::Tree t = treeq::RandomTree(&rng, opts);
  for (auto _ : state) {
    treeq::TreeDecomposition d = treeq::DecomposeChildNextSibling(t);
    benchmark::DoNotOptimize(d.bags.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DecomposeChildNextSibling)
    ->RangeMultiplier(4)
    ->Range(1024, 65536)
    ->Complexity(benchmark::oN)
    ->Unit(benchmark::kMicrosecond);

void BM_VerifyDecomposition(benchmark::State& state) {
  treeq::Rng rng(9);
  treeq::RandomTreeOptions opts;
  opts.num_nodes = static_cast<int>(state.range(0));
  treeq::Tree t = treeq::RandomTree(&rng, opts);
  treeq::Graph g = treeq::ChildNextSiblingGraph(t);
  treeq::TreeDecomposition d = treeq::DecomposeChildNextSibling(t);
  for (auto _ : state) {
    treeq::Status s = treeq::VerifyDecomposition(g, d);
    benchmark::DoNotOptimize(s.ok());
  }
}
BENCHMARK(BM_VerifyDecomposition)
    ->Arg(1024)
    ->Arg(16384)
    ->Unit(benchmark::kMicrosecond);

// Greedy decomposition of query graphs (bounded tree-width queries,
// Theorem 4.1's hypothesis): cycles of growing length stay width 2.
void BM_GreedyDecomposeCycle(benchmark::State& state) {
  treeq::Graph g(static_cast<int>(state.range(0)));
  for (int i = 0; i < g.num_vertices(); ++i) {
    g.AddEdge(i, (i + 1) % g.num_vertices());
  }
  int width = -1;
  for (auto _ : state) {
    treeq::TreeDecomposition d = treeq::GreedyDecompose(g);
    width = d.Width();
    benchmark::DoNotOptimize(d.bags.data());
  }
  state.counters["width"] = width;
}
BENCHMARK(BM_GreedyDecomposeCycle)->Arg(16)->Arg(64)->Arg(256)->Unit(
    benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = treeq::benchjson::ExtractJsonPath(&argc, argv);
  if (!json_path.empty()) {
    // --json mode: the headline workload runs once under a reset obs
    // registry; its work counters and spans land in the record.
    return treeq::benchjson::WriteRecord(
        json_path, "bench_fig4_treewidth", [](treeq::benchjson::Record*) {
          PrintFigure4();
        });
  }
  PrintFigure4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
