// S3 — Theorem 3.2: monadic datalog over tau+ has O(|P| * |Dom|) combined
// complexity. Two sweeps: tree size at a fixed program (expect linear), and
// program size at a fixed tree (expect linear). The grounding statistics
// (clauses ~ |P| * |Dom|) are reported as counters.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <cstdio>
#include <string>

#include "datalog/evaluator.h"
#include "datalog/parser.h"
#include "tree/generator.h"
#include "util/random.h"

namespace {

treeq::Tree MakeTree(int n) {
  treeq::Rng rng(17);
  treeq::RandomTreeOptions opts;
  opts.num_nodes = n;
  opts.alphabet = {"a", "b", "L"};
  return treeq::RandomTree(&rng, opts);
}

/// Example 3.1 (nodes with an L-labeled descendant), the fixed program.
treeq::datalog::Program FixedProgram() {
  return treeq::datalog::ParseProgram(R"(
    P0(x)  :- Label("L", x).
    P0(x0) :- NextSibling(x0, x), P0(x).
    P(x0)  :- FirstChild(x0, x), P0(x).
    P0(x)  :- P(x).
    ?- P.
  )").value();
}

/// A program with `k` chained marking rules (size grows linearly in k):
/// M0 marks L-nodes, Mi marks parents of M(i-1) nodes.
treeq::datalog::Program ChainedProgram(int k) {
  std::string text = "M0(x) :- Label(\"L\", x).\n";
  for (int i = 1; i <= k; ++i) {
    text += "M" + std::to_string(i) + "(x) :- Child(x, y), M" +
            std::to_string(i - 1) + "(y).\n";
  }
  text += "?- M" + std::to_string(k) + ".\n";
  return treeq::datalog::ParseProgram(text).value();
}

void PrintGroundingSizes() {
  std::printf("=== Theorem 3.2: ground program sizes ===\n");
  std::printf("%-10s %-10s %-14s %-14s\n", "|Dom|", "|P| atoms",
              "ground clauses", "clauses/node");
  treeq::datalog::Program p = FixedProgram();
  for (int n : {100, 1000, 10000}) {
    treeq::Tree t = MakeTree(n);
    treeq::datalog::EvalStats stats;
    auto r = treeq::datalog::EvaluateDatalog(p, t, &stats);
    TREEQ_CHECK(r.ok());
    std::printf("%-10d %-10d %-14d %-14.2f\n", n, p.SizeInAtoms(),
                stats.ground_clauses,
                static_cast<double>(stats.ground_clauses) / n);
  }
  std::printf("(clauses/node is flat: grounding is |P| * |Dom|)\n\n");
}

void BM_DataSweep(benchmark::State& state) {
  treeq::Tree t = MakeTree(static_cast<int>(state.range(0)));
  treeq::datalog::Program p = FixedProgram();
  for (auto _ : state) {
    auto r = treeq::datalog::EvaluateDatalog(p, t);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DataSweep)
    ->RangeMultiplier(4)
    ->Range(1024, 65536)
    ->Complexity(benchmark::oN)
    ->Unit(benchmark::kMicrosecond);

void BM_ProgramSweep(benchmark::State& state) {
  treeq::Tree t = MakeTree(4096);
  treeq::datalog::Program p = ChainedProgram(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto r = treeq::datalog::EvaluateDatalog(p, t);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetComplexityN(p.SizeInAtoms());
  state.counters["program_atoms"] = p.SizeInAtoms();
}
BENCHMARK(BM_ProgramSweep)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Complexity(benchmark::oN)
    ->Unit(benchmark::kMicrosecond);

// Ablation: the naive fixpoint oracle on the same fixed program — its
// per-iteration rule matching is polynomial, not linear, so it falls behind
// quickly in the data sweep.
void BM_NaiveOracleDataSweep(benchmark::State& state) {
  treeq::Tree t = MakeTree(static_cast<int>(state.range(0)));
  treeq::TreeOrders o = treeq::ComputeOrders(t);
  treeq::datalog::Program p = FixedProgram();
  for (auto _ : state) {
    auto r = treeq::datalog::EvaluateDatalogNaive(p, t, o);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_NaiveOracleDataSweep)->Arg(256)->Arg(1024)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = treeq::benchjson::ExtractJsonPath(&argc, argv);
  if (!json_path.empty()) {
    // --json mode: the headline workload runs once under a reset obs
    // registry; its work counters and spans land in the record.
    return treeq::benchjson::WriteRecord(
        json_path, "bench_thm32_datalog", [](treeq::benchjson::Record*) {
          PrintGroundingSizes();
        });
  }
  PrintGroundingSizes();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
