// Cost-based router payoff: per-query wall time of the routed execution
// path (Plan::Execute picks the cheapest eligible engine) against the same
// plan pinned to the worst eligible engine (force_route="xpath.naive",
// the O(|Q|*|D|^2) baseline every XPath plan can fall back to), plus the
// router's own overhead against a pinned native engine. The --json record
// carries the two headline numbers CI gates:
//
//   router_vs_naive_speedup   total naive wall / total routed wall — the
//                             router must beat the worst engine by a wide
//                             margin (gated >= 3x);
//   router_overhead_ratio     routed qps / forced-native qps — picking an
//                             engine per request costs a table of cost
//                             formulas, not an evaluation (gated > 0.85).
//
// Per-query rows record both wall times and which engine the router chose
// (engine_index is the position in the plan's EligibleEngines() list, 0 =
// native), so a regression in one query's routing is visible in the JSON
// diff, not just the aggregate.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <chrono>
#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "plan/cost.h"
#include "tree/generator.h"
#include "util/random.h"

namespace {

using treeq::ExecContext;
using treeq::Language;
using treeq::engine::DocumentStore;
using treeq::engine::ExecuteOptions;
using treeq::engine::Plan;
using treeq::engine::PlanPtr;
using treeq::engine::QueryResult;

// XPath-only workload: every XPath plan keeps xpath.naive eligible, so
// the forced-worst-engine comparison is well-defined for each entry. The
// mix spans the router's decision space: structural descendant chains
// (stream/set-at-a-time/Yannakakis candidates), a child step, and a
// qualifier query that lowers opaquely (router choice collapses to
// set-at-a-time vs naive).
constexpr const char* kQueries[] = {
    "//product//rating5",
    "//review/rating5",
    "//product/name",
    "/catalog/product/reviews/review",
    "/catalog/product[reviews/review]/name",
};
constexpr int kNumQueries = static_cast<int>(std::size(kQueries));

constexpr int kNumDocuments = 4;
constexpr int kProductsPerDocument = 120;
constexpr int kRepeats = 5;  // timed evaluations per (query, doc, mode)

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void BuildCorpus(DocumentStore* store) {
  for (int d = 0; d < kNumDocuments; ++d) {
    treeq::Rng rng(static_cast<uint64_t>(2000 + d));
    treeq::CatalogOptions opts;
    opts.num_products = kProductsPerDocument;
    auto added = store->Add("catalog" + std::to_string(d),
                            treeq::CatalogDocument(&rng, opts));
    TREEQ_CHECK(added.ok());
  }
}

/// Total wall time of kRepeats evaluations of `plan` over every document,
/// with `force` pinning an engine ("" = let the router decide). Checks
/// every result and returns the name of the engine that answered the last
/// evaluation through `engine_out`.
uint64_t MeasureWallNs(const PlanPtr& plan, const DocumentStore& store,
                       const std::string& force, std::string* engine_out) {
  ExecContext unbounded;
  ExecuteOptions options;
  options.force_route = force;
  uint64_t total = 0;
  for (int rep = 0; rep < kRepeats; ++rep) {
    for (const std::string& name : store.Names()) {
      treeq::DocumentPtr doc = store.Get(name).value();
      uint64_t start = NowNs();
      treeq::Result<QueryResult> r = plan->Execute(*doc, unbounded, options);
      total += NowNs() - start;
      TREEQ_CHECK(r.ok());
      benchmark::DoNotOptimize(r->engine);
      if (engine_out != nullptr) *engine_out = r->engine;
    }
  }
  return total;
}

void RunRoutingBench(treeq::benchjson::Record* record) {
  DocumentStore store;
  BuildCorpus(&store);

  std::printf("=== cost-based router vs forced engines ===\n");
  std::printf("corpus: %d catalog documents, %d products each; "
              "%d evaluations per (query, mode)\n\n",
              kNumDocuments, kProductsPerDocument,
              kRepeats * kNumDocuments);

  uint64_t routed_total_ns = 0;
  uint64_t naive_total_ns = 0;
  uint64_t native_total_ns = 0;
  for (int q = 0; q < kNumQueries; ++q) {
    auto compiled = Plan::Compile(Language::kXPath, kQueries[q]);
    TREEQ_CHECK(compiled.ok());
    PlanPtr plan = std::move(compiled).value();

    // Untimed warm-up so first-touch effects (axis tables, page faults)
    // don't land on whichever mode happens to run first.
    (void)MeasureWallNs(plan, store, "", nullptr);

    std::string routed_engine;
    const uint64_t routed_ns =
        MeasureWallNs(plan, store, "", &routed_engine);
    const uint64_t naive_ns =
        MeasureWallNs(plan, store, "xpath.naive", nullptr);
    const uint64_t native_ns = MeasureWallNs(
        plan, store, treeq::plan::EngineName(plan->NativeEngine()), nullptr);
    routed_total_ns += routed_ns;
    naive_total_ns += naive_ns;
    native_total_ns += native_ns;

    // Where the routed pick sits in the eligibility list (0 = native).
    int engine_index = -1;
    const std::vector<treeq::plan::EngineKind>& eligible =
        plan->EligibleEngines();
    for (size_t e = 0; e < eligible.size(); ++e) {
      if (routed_engine == treeq::plan::EngineName(eligible[e])) {
        engine_index = static_cast<int>(e);
      }
    }
    TREEQ_CHECK(engine_index >= 0);

    std::printf("%-40s routed=%-20s %8.2f ms   naive %8.2f ms (%6.1fx)   "
                "native %8.2f ms\n",
                kQueries[q], routed_engine.c_str(),
                static_cast<double>(routed_ns) / 1e6,
                static_cast<double>(naive_ns) / 1e6,
                static_cast<double>(naive_ns) /
                    static_cast<double>(routed_ns),
                static_cast<double>(native_ns) / 1e6);
    if (record != nullptr) {
      record->AddRow({{"query_index", static_cast<double>(q)},
                      {"engine_index", static_cast<double>(engine_index)},
                      {"eligible_engines",
                       static_cast<double>(eligible.size())},
                      {"routed_wall_ns", static_cast<double>(routed_ns)},
                      {"naive_wall_ns", static_cast<double>(naive_ns)},
                      {"native_wall_ns", static_cast<double>(native_ns)},
                      {"naive_vs_routed",
                       static_cast<double>(naive_ns) /
                           static_cast<double>(routed_ns)}});
    }
  }

  const double router_vs_naive_speedup =
      static_cast<double>(naive_total_ns) /
      static_cast<double>(routed_total_ns);
  const double router_overhead_ratio =
      static_cast<double>(native_total_ns) /
      static_cast<double>(routed_total_ns);

  std::printf("\nrouter vs always-naive:  %.1fx faster "
              "(%.2f ms vs %.2f ms total)\n",
              router_vs_naive_speedup,
              static_cast<double>(routed_total_ns) / 1e6,
              static_cast<double>(naive_total_ns) / 1e6);
  std::printf("router vs pinned-native: %.2f (>= ~1 when the router only "
              "ever improves on the native engine)\n",
              router_overhead_ratio);

  // The routed path must never lose badly to always-native: routing picks
  // the native engine unless an estimate says another engine is cheaper,
  // so the total can only drift below 1 by decision overhead plus estimate
  // error on these small documents.
  TREEQ_CHECK(router_vs_naive_speedup > 1.0);

  if (record != nullptr) {
    record->SetNumber("num_documents", kNumDocuments);
    record->SetNumber("products_per_document", kProductsPerDocument);
    record->SetNumber("workload_queries", kNumQueries);
    record->SetNumber("evals_per_mode", kRepeats * kNumDocuments);
    record->SetNumber("routed_total_ns",
                      static_cast<double>(routed_total_ns));
    record->SetNumber("naive_total_ns",
                      static_cast<double>(naive_total_ns));
    record->SetNumber("native_total_ns",
                      static_cast<double>(native_total_ns));
    record->SetNumber("router_vs_naive_speedup", router_vs_naive_speedup);
    record->SetNumber("router_overhead_ratio", router_overhead_ratio);
  }
}

// Micro-benchmarks for the default (google-benchmark) mode.

void BM_RoutedExecute(benchmark::State& state) {
  DocumentStore store;
  BuildCorpus(&store);
  PlanPtr plan =
      Plan::Compile(Language::kXPath, kQueries[state.range(0)]).value();
  treeq::DocumentPtr doc = store.Get(store.Names().front()).value();
  ExecContext unbounded;
  ExecuteOptions options;
  for (auto _ : state) {
    auto r = plan->Execute(*doc, unbounded, options);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_RoutedExecute)->DenseRange(0, kNumQueries - 1);

void BM_RouteDecisionOnly(benchmark::State& state) {
  DocumentStore store;
  BuildCorpus(&store);
  PlanPtr plan = Plan::Compile(Language::kXPath, kQueries[0]).value();
  treeq::DocumentPtr doc = store.Get(store.Names().front()).value();
  for (auto _ : state) {
    std::string table = plan->ExplainRouting(*doc);
    benchmark::DoNotOptimize(table.size());
  }
}
BENCHMARK(BM_RouteDecisionOnly);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = treeq::benchjson::ExtractJsonPath(&argc, argv);
  if (!json_path.empty()) {
    return treeq::benchjson::WriteRecord(
        json_path, "bench_plan_routing",
        [](treeq::benchjson::Record* record) { RunRoutingBench(record); });
  }
  RunRoutingBench(nullptr);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
