// T1 — Table 1 of the paper: satisfiability of R(x,z) ∧ S(y,z) ∧ x <pre y
// for R, S in {Child, Child+, NextSibling, NextSibling+}. The matrix is
// regenerated two ways: from the rule table the Theorem 5.1 rewriter uses,
// and by exhaustive witness search over a generated tree family; both are
// printed side by side (they must agree — rewrite_test enforces it too).

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <cstdio>
#include <vector>

#include "cq/rewrite.h"
#include "tree/axes.h"
#include "tree/generator.h"
#include "tree/orders.h"
#include "util/random.h"

namespace {

using treeq::cq::RewriteAxis;

constexpr RewriteAxis kAxes[] = {
    RewriteAxis::kChild, RewriteAxis::kChildPlus, RewriteAxis::kNextSibling,
    RewriteAxis::kNextSiblingPlus};
constexpr const char* kNames[] = {"Child", "Child+", "NextSibling",
                                  "NextSibling+"};

treeq::Axis ToTreeAxis(RewriteAxis r) {
  switch (r) {
    case RewriteAxis::kChild:
      return treeq::Axis::kChild;
    case RewriteAxis::kChildPlus:
      return treeq::Axis::kDescendant;
    case RewriteAxis::kNextSibling:
      return treeq::Axis::kNextSibling;
    case RewriteAxis::kNextSiblingPlus:
      return treeq::Axis::kFollowingSibling;
  }
  return treeq::Axis::kSelf;
}

bool EmpiricalWitness(const std::vector<treeq::Tree>& trees, RewriteAxis r,
                      RewriteAxis s) {
  for (const treeq::Tree& t : trees) {
    treeq::TreeOrders o = treeq::ComputeOrders(t);
    for (treeq::NodeId x = 0; x < t.num_nodes(); ++x) {
      for (treeq::NodeId y = 0; y < t.num_nodes(); ++y) {
        if (o.pre[x] >= o.pre[y]) continue;
        for (treeq::NodeId z = 0; z < t.num_nodes(); ++z) {
          if (treeq::AxisHolds(t, o, ToTreeAxis(r), x, z) &&
              treeq::AxisHolds(t, o, ToTreeAxis(s), y, z)) {
            return true;
          }
        }
      }
    }
  }
  return false;
}

std::vector<treeq::Tree> SampleTrees() {
  std::vector<treeq::Tree> trees;
  for (int seed = 0; seed < 10; ++seed) {
    treeq::Rng rng(seed);
    treeq::RandomTreeOptions opts;
    opts.num_nodes = 12;
    opts.attach_window = 1 + seed % 5;
    trees.push_back(treeq::RandomTree(&rng, opts));
  }
  return trees;
}

void PrintTable1() {
  std::vector<treeq::Tree> trees = SampleTrees();
  std::printf("=== Table 1: satisfiability of R(x,z) & S(y,z) & x<pre y ===\n");
  std::printf("(each cell: rule-table / empirical witness search)\n\n");
  std::printf("%-14s", "R \\ S");
  for (const char* n : kNames) std::printf("%-16s", n);
  std::printf("\n");
  bool all_agree = true;
  for (int i = 0; i < 4; ++i) {
    std::printf("%-14s", kNames[i]);
    for (int j = 0; j < 4; ++j) {
      bool table = treeq::cq::Table1Satisfiable(kAxes[i], kAxes[j]);
      bool emp = EmpiricalWitness(trees, kAxes[i], kAxes[j]);
      all_agree = all_agree && (table == emp);
      std::printf("%-16s", table ? (emp ? "sat/sat" : "sat/UNSAT?!")
                                 : (emp ? "unsat/SAT?!" : "unsat/unsat"));
    }
    std::printf("\n");
  }
  std::printf("\nrule table and empirical search agree: %s\n\n",
              all_agree ? "yes" : "NO — BUG");
}

void BM_Table1EmpiricalVerification(benchmark::State& state) {
  treeq::Rng rng(1);
  treeq::RandomTreeOptions opts;
  opts.num_nodes = static_cast<int>(state.range(0));
  std::vector<treeq::Tree> trees = {treeq::RandomTree(&rng, opts)};
  for (auto _ : state) {
    int sat_count = 0;
    for (RewriteAxis r : kAxes) {
      for (RewriteAxis s : kAxes) {
        sat_count += EmpiricalWitness(trees, r, s) ? 1 : 0;
      }
    }
    benchmark::DoNotOptimize(sat_count);
  }
}
BENCHMARK(BM_Table1EmpiricalVerification)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = treeq::benchjson::ExtractJsonPath(&argc, argv);
  if (!json_path.empty()) {
    // --json mode: the headline workload runs once under a reset obs
    // registry; its work counters and spans land in the record.
    return treeq::benchjson::WriteRecord(
        json_path, "bench_table1", [](treeq::benchjson::Record*) {
          PrintTable1();
        });
  }
  PrintTable1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
