// Serving-engine throughput: queries/second of the Executor worker pool as
// the thread count grows (1, 2, 4, 8) on a mixed XPath + CQ + datalog + FO
// workload over catalog documents, and the latency gap between a PlanCache
// hit and a cold compile. The obs counters in the --json record prove the
// two headline claims: per-evaluation work counters stay exact under
// concurrency (shadow counters merge losslessly), and a cache hit leaves
// engine.plan.compiles untouched.
//
// Scaling caveat: qps-vs-threads is hardware-dependent — on a single-core
// container every thread count serves at the same rate. The record's meta
// carries hardware_concurrency so a reader can interpret the rows.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "cache/eval_cache.h"
#include "cache/result_cache.h"
#include "engine/engine.h"
#include "fault/fault.h"
#include "obs/flight_recorder.h"
#include "obs/prometheus.h"
#include "tree/generator.h"
#include "util/random.h"

namespace {

using treeq::Language;
using treeq::engine::DocumentStore;
using treeq::engine::Executor;
using treeq::engine::Plan;
using treeq::engine::PlanCache;
using treeq::engine::PlanPtr;
using treeq::engine::QueryResult;
using treeq::engine::Request;

struct WorkloadQuery {
  Language language;
  const char* text;
};

// The mixed serving workload: two XPath paths, a Boolean CQ (dichotomy
// route), a k-ary CQ (Yannakakis enumeration), a TMNF datalog program, and
// a positive FO sentence (Corollary 5.2 route).
constexpr WorkloadQuery kWorkload[] = {
    {Language::kXPath, "/catalog/product[reviews/review]/name"},
    {Language::kXPath, "//review/rating5"},
    {Language::kCq, "Q() :- Child+(x, y), Lab_product(x), Lab_rating1(y)."},
    {Language::kCq, "Q(p, r) :- Child+(p, r), Lab_product(p), Lab_review(r)."},
    {Language::kDatalog,
     "Good(x) :- Lab_rating5(x).\nHasGood(x) :- Child(x, y), Good(y).\n"
     "?- HasGood."},
    {Language::kFo,
     "exists x . exists y . (Child(x, y) and Lab_review(x) and "
     "Lab_rating5(y))"},
};
constexpr int kNumQueries = static_cast<int>(std::size(kWorkload));

constexpr int kNumDocuments = 6;
constexpr int kProductsPerDocument = 120;
constexpr int kBatchRepeats = 8;  // requests = repeats * docs * queries

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void BuildCorpus(DocumentStore* store) {
  for (int d = 0; d < kNumDocuments; ++d) {
    treeq::Rng rng(static_cast<uint64_t>(1000 + d));
    treeq::CatalogOptions opts;
    opts.num_products = kProductsPerDocument;
    auto added = store->Add("catalog" + std::to_string(d),
                            treeq::CatalogDocument(&rng, opts));
    TREEQ_CHECK(added.ok());
  }
}

std::vector<PlanPtr> CompileWorkload() {
  std::vector<PlanPtr> plans;
  for (const WorkloadQuery& q : kWorkload) {
    auto plan = Plan::Compile(q.language, q.text);
    TREEQ_CHECK(plan.ok());
    plans.push_back(std::move(plan).value());
  }
  return plans;
}

std::vector<Request> BuildBatch(const DocumentStore& store,
                                const std::vector<PlanPtr>& plans) {
  std::vector<Request> requests;
  for (int rep = 0; rep < kBatchRepeats; ++rep) {
    for (const std::string& name : store.Names()) {
      for (const PlanPtr& plan : plans) {
        requests.push_back(Request{plan, store.Get(name).value()});
      }
    }
  }
  return requests;
}

/// One timed RunBatch on a fresh pool of `threads` workers. Returns qps.
double MeasureQps(const std::vector<Request>& batch, int threads,
                  uint64_t* wall_ns_out) {
  Executor exec(Executor::Options{.num_workers = threads,
                                  .queue_capacity = 64});
  uint64_t start = NowNs();
  std::vector<treeq::Result<QueryResult>> results = exec.RunBatch(batch);
  uint64_t wall_ns = NowNs() - start;
  for (const auto& r : results) TREEQ_CHECK(r.ok());
  if (wall_ns_out != nullptr) *wall_ns_out = wall_ns;
  return static_cast<double>(batch.size()) * 1e9 /
         static_cast<double>(wall_ns);
}

void RunThroughputSweep(treeq::benchjson::Record* record) {
  DocumentStore store;
  BuildCorpus(&store);
  std::vector<PlanPtr> plans = CompileWorkload();
  std::vector<Request> batch = BuildBatch(store, plans);

  std::printf("=== engine throughput: qps vs worker threads ===\n");
  std::printf("corpus: %d catalog documents, %d products each\n",
              kNumDocuments, kProductsPerDocument);
  std::printf("batch:  %zu requests (%d-query mix x %d docs x %d repeats)\n",
              batch.size(), kNumQueries, kNumDocuments, kBatchRepeats);
  std::printf("hardware_concurrency: %u\n\n",
              std::thread::hardware_concurrency());

  // Warm-up pass so first-touch effects don't land on the 1-thread row.
  (void)MeasureQps(batch, 1, nullptr);

  double qps1 = 0;
  for (int threads : {1, 2, 4, 8}) {
    uint64_t wall_ns = 0;
    double qps = MeasureQps(batch, threads, &wall_ns);
    if (threads == 1) qps1 = qps;
    std::printf("threads=%d  wall=%8.2f ms  qps=%9.0f  speedup=%.2fx\n",
                threads, static_cast<double>(wall_ns) / 1e6, qps,
                qps / qps1);
    if (record != nullptr) {
      record->AddRow({{"threads", static_cast<double>(threads)},
                      {"requests", static_cast<double>(batch.size())},
                      {"wall_ns", static_cast<double>(wall_ns)},
                      {"qps", qps},
                      {"speedup_vs_1_thread", qps / qps1}});
    }
  }

  // --- Plan-cache hit vs cold compile -----------------------------------
  treeq::obs::StatsRegistry& reg = treeq::obs::StatsRegistry::Global();
  constexpr int kReps = 2000;

  uint64_t cold_start = NowNs();
  for (int i = 0; i < kReps; ++i) {
    const WorkloadQuery& q = kWorkload[i % kNumQueries];
    auto plan = Plan::Compile(q.language, q.text);
    TREEQ_CHECK(plan.ok());
    benchmark::DoNotOptimize(plan);
  }
  double cold_ns = static_cast<double>(NowNs() - cold_start) / kReps;

  PlanCache cache(32);
  for (const WorkloadQuery& q : kWorkload) {
    TREEQ_CHECK(cache.GetOrCompile(q.language, q.text).ok());
  }
  uint64_t compiles_before = reg.CounterValue("engine.plan.compiles");
  uint64_t hit_start = NowNs();
  for (int i = 0; i < kReps; ++i) {
    const WorkloadQuery& q = kWorkload[i % kNumQueries];
    auto plan = cache.GetOrCompile(q.language, q.text);
    TREEQ_CHECK(plan.ok());
    benchmark::DoNotOptimize(plan);
  }
  double hit_ns = static_cast<double>(NowNs() - hit_start) / kReps;
  uint64_t compiles_during_hits =
      reg.CounterValue("engine.plan.compiles") - compiles_before;

  std::printf("\n=== plan cache: hit vs cold compile (avg over %d) ===\n",
              kReps);
  std::printf("cold compile: %8.0f ns/query\n", cold_ns);
  std::printf("cache hit:    %8.0f ns/query  (%.1fx faster)\n", hit_ns,
              cold_ns / hit_ns);
  std::printf("compiles during hit loop: %llu (cache hits skip the parser)\n",
              static_cast<unsigned long long>(compiles_during_hits));
  TREEQ_CHECK(compiles_during_hits == 0);
  TREEQ_CHECK(cache.hits() >= static_cast<uint64_t>(kReps));

  // --- Bounded execution: overhead, deadline and cancel latency ---------
  // (1) Overhead: the same batch submitted with a far deadline + huge
  // budget attached, so every evaluator charge runs the bounded (but
  // never-tripping) path. The qps delta is the whole-engine cost of the
  // ExecContext plumbing.
  double bounded_qps;
  {
    Executor exec(Executor::Options{.num_workers = 1, .queue_capacity = 64});
    treeq::engine::SubmitOptions opts;
    opts.timeout = std::chrono::hours(1);
    opts.visit_budget = UINT64_MAX - 1;
    uint64_t start = NowNs();
    std::vector<treeq::engine::Submission> submissions;
    submissions.reserve(batch.size());
    for (const Request& r : batch) {
      submissions.push_back(exec.Submit({r.plan, r.document, opts}));
    }
    for (auto& s : submissions) TREEQ_CHECK(s.future.get().ok());
    uint64_t wall_ns = NowNs() - start;
    bounded_qps = static_cast<double>(batch.size()) * 1e9 /
                  static_cast<double>(wall_ns);
  }

  // (2) Deadline/cancel latency on a request that would otherwise run for
  // seconds (naive FO, cubic in document size): time from the abort signal
  // to the future completing.
  PlanPtr costly =
      Plan::Compile(Language::kFo,
                    "forall x . forall y . forall z . "
                    "(not Child(x, y) or not Child(y, z) or not Lab_zzz(x))")
          .value();
  treeq::DocumentPtr big_doc = store.Get(store.Names().front()).value();
  constexpr int kAbortReps = 15;
  std::vector<uint64_t> deadline_ns, cancel_ns;
  {
    Executor exec(Executor::Options{.num_workers = 1, .queue_capacity = 8});
    for (int i = 0; i < kAbortReps; ++i) {
      treeq::engine::SubmitOptions opts;
      opts.timeout = std::chrono::milliseconds(10);
      uint64_t start = NowNs();
      treeq::engine::Submission s = exec.Submit({costly, big_doc, opts});
      treeq::Result<QueryResult> r = s.future.get();
      deadline_ns.push_back(NowNs() - start);
      TREEQ_CHECK(!r.ok());
    }
    for (int i = 0; i < kAbortReps; ++i) {
      treeq::engine::SubmitOptions opts;
      opts.visit_budget = UINT64_MAX - 1;
      treeq::engine::Submission s = exec.Submit({costly, big_doc, opts});
      // Let the worker get well into the evaluation before cancelling.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      uint64_t start = NowNs();
      s.Cancel();
      treeq::Result<QueryResult> r = s.future.get();
      cancel_ns.push_back(NowNs() - start);
      TREEQ_CHECK(!r.ok());
    }
  }
  auto median = [](std::vector<uint64_t> v) {
    std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
    return static_cast<double>(v[v.size() / 2]);
  };
  double deadline_p50 = median(deadline_ns);
  double cancel_p50 = median(cancel_ns);

  std::printf("\n=== bounded execution ===\n");
  std::printf("bounded submit qps (1 thread): %9.0f  (plain: %9.0f, %.1f%%)\n",
              bounded_qps, qps1, 100.0 * bounded_qps / qps1);
  std::printf("10ms-deadline completion p50:  %8.2f ms\n", deadline_p50 / 1e6);
  std::printf("cancel-to-future-ready p50:    %8.2f ms\n", cancel_p50 / 1e6);

  // --- Flight recorder overhead -----------------------------------------
  // The same 1-thread batch with the recorder off and on: the on-run pays
  // for one QueryProfile (a few string copies + a sharded ring insert) per
  // request. Best-of-3 per mode so scheduler noise doesn't masquerade as
  // recorder cost.
  treeq::obs::FlightRecorder& recorder = treeq::obs::FlightRecorder::Global();
  recorder.Disable();
  double recorder_off_qps = 0;
  for (int i = 0; i < 3; ++i) {
    recorder_off_qps = std::max(recorder_off_qps, MeasureQps(batch, 1,
                                                             nullptr));
  }
  treeq::obs::FlightRecorder::Options rec_options;  // 256 deep, auto slow
  recorder.Enable(rec_options);
  double recorder_on_qps = 0;
  for (int i = 0; i < 3; ++i) {
    recorder_on_qps = std::max(recorder_on_qps, MeasureQps(batch, 1,
                                                           nullptr));
  }
  const uint64_t recorder_recorded = recorder.recorded();
  const uint64_t recorder_slow = recorder.slow_recorded();
  recorder.Disable();
  const double recorder_ratio = recorder_on_qps / recorder_off_qps;

  std::printf("\n=== flight recorder overhead (1 thread) ===\n");
  std::printf("recorder off: %9.0f qps\n", recorder_off_qps);
  std::printf("recorder on:  %9.0f qps  (%.1f%% of off; %llu profiles, "
              "%llu slow)\n",
              recorder_on_qps, 100.0 * recorder_ratio,
              static_cast<unsigned long long>(recorder_recorded),
              static_cast<unsigned long long>(recorder_slow));

  // --- Fault-point overhead ---------------------------------------------
  // The same 1-thread batch with the registry disarmed (the shipping
  // state: every point is one relaxed atomic load) vs armed with a rule
  // on a point no seam ever hits ("bench.idle"): the armed run takes the
  // full Hit() slow path — hash, hit counter, rule scan — at every
  // compiled-in point without ever injecting, so armed/disarmed is an
  // upper bound on what the compiled-in points can cost at all. The two
  // modes are measured interleaved (disarmed, armed, disarmed, ...) so
  // machine drift between sections cannot skew the ratio; CI gates it
  // >= 0.98. The true disarmed-vs-TREEQ_FAULT_DISABLED comparison needs
  // two builds and lives in the nightly fault-storm CI job.
  treeq::fault::FaultPlan idle_plan;
  idle_plan.seed = 1;
  treeq::fault::FaultRule idle_rule;
  idle_rule.point = "bench.idle";
  idle_plan.rules.push_back(idle_rule);
  double fault_disarmed_qps = 0;
  double fault_armed_idle_qps = 0;
  for (int i = 0; i < 3; ++i) {
    treeq::fault::FaultRegistry::Global().Disarm();
    fault_disarmed_qps = std::max(fault_disarmed_qps,
                                  MeasureQps(batch, 1, nullptr));
    treeq::fault::FaultRegistry::Global().Arm(idle_plan);
    fault_armed_idle_qps = std::max(fault_armed_idle_qps,
                                    MeasureQps(batch, 1, nullptr));
  }
  treeq::fault::FaultRegistry::Global().Disarm();
  const double fault_overhead_ratio = fault_armed_idle_qps / fault_disarmed_qps;

  std::printf("\n=== fault-point overhead (1 thread) ===\n");
  std::printf("disarmed:     %9.0f qps\n", fault_disarmed_qps);
  std::printf("armed (idle): %9.0f qps  (%.1f%% of disarmed)\n",
              fault_armed_idle_qps, 100.0 * fault_overhead_ratio);

  // --- Cross-query reuse: 90%-repeated mix, caches on vs off ------------
  // Each distinct (plan, document) pair appears 10 times in the mix, so a
  // result cache can serve 90% of submissions from memory. The off mode
  // runs the identical mix through a cacheless executor; the speedup is
  // the headline cross-query-reuse claim (gated >= 3x in CI). Best-of-3
  // per mode; the caches persist across the on-mode repetitions, so the
  // best on-run measures the fully warm steady state.
  double cache_off_qps = 0;
  double cache_on_qps = 0;
  uint64_t result_cache_hits = 0;
  {
    std::vector<Request> mix;
    for (int rep = 0; rep < 10; ++rep) {
      for (const std::string& name : store.Names()) {
        for (const PlanPtr& plan : plans) {
          mix.push_back(Request{plan, store.Get(name).value()});
        }
      }
    }
    for (int i = 0; i < 3; ++i) {
      cache_off_qps = std::max(cache_off_qps, MeasureQps(mix, 1, nullptr));
    }
    treeq::cache::EvalCache eval_cache;
    treeq::cache::ResultCache result_cache;
    for (int i = 0; i < 3; ++i) {
      Executor exec(Executor::Options{.num_workers = 1,
                                      .queue_capacity = 64,
                                      .eval_cache = &eval_cache,
                                      .result_cache = &result_cache,
                                      .singleflight = true});
      uint64_t start = NowNs();
      std::vector<treeq::Result<QueryResult>> results = exec.RunBatch(mix);
      uint64_t wall_ns = NowNs() - start;
      for (const auto& r : results) TREEQ_CHECK(r.ok());
      cache_on_qps = std::max(cache_on_qps,
                              static_cast<double>(mix.size()) * 1e9 /
                                  static_cast<double>(wall_ns));
    }
    result_cache_hits = result_cache.hits();
  }
  const double cache_hot_speedup = cache_on_qps / cache_off_qps;

  std::printf("\n=== cross-query reuse: 90%%-repeated mix (1 thread) ===\n");
  std::printf("caches off: %9.0f qps\n", cache_off_qps);
  std::printf("caches on:  %9.0f qps  (%.2fx; %llu result-cache hits)\n",
              cache_on_qps, cache_hot_speedup,
              static_cast<unsigned long long>(result_cache_hits));

  // --- Cross-dialect canonical aliasing ---------------------------------
  // Four spellings of ONE semantic query (XPath, two CQ alpha-variants,
  // datalog). With text-keyed caches each spelling would warm its own
  // entry; with canonical-hash keys all four share one PlanCache entry
  // and one ResultCache entry per document, so a mix that rotates through
  // the spellings hits exactly as often as a mix that repeats one text.
  const WorkloadQuery kAliases[] = {
      {Language::kXPath, "//product//rating5"},
      {Language::kCq,
       "Q(y) :- Child+(w, x), Child+(x, y), Lab_product(x), "
       "Lab_rating5(y)."},
      {Language::kCq,
       "Q(b) :- Lab_rating5(b), Child+(a, b), Child+(c, a), "
       "Lab_product(a)."},
      {Language::kDatalog,
       "Q(y) :- Child+(w, x), Child+(x, y), Lab_product(x), "
       "Lab_rating5(y). ?- Q."},
  };
  constexpr int kNumAliases = static_cast<int>(std::size(kAliases));
  PlanCache alias_cache(32);
  std::vector<PlanPtr> alias_plans;
  for (const WorkloadQuery& q : kAliases) {
    auto plan = alias_cache.GetOrCompile(q.language, q.text);
    TREEQ_CHECK(plan.ok());
    alias_plans.push_back(std::move(plan).value());
  }
  const uint64_t plan_canonical_hits = alias_cache.canonical_hits();
  TREEQ_CHECK(plan_canonical_hits == kNumAliases - 1);
  TREEQ_CHECK(alias_cache.size() == 1);

  // Sequential submit-and-wait, so each request sees every earlier insert
  // (a RunBatch looks everything up before the first result lands, which
  // would report zero intra-batch hits regardless of keying).
  auto measure_hit_rate = [&](const std::vector<Request>& mix,
                              double* qps_out) {
    treeq::cache::ResultCache rc;
    Executor exec(Executor::Options{.num_workers = 1,
                                    .queue_capacity = 64,
                                    .result_cache = &rc});
    uint64_t start = NowNs();
    for (const Request& r : mix) {
      TREEQ_CHECK(exec.Submit({r.plan, r.document, {}}).future.get().ok());
    }
    uint64_t wall_ns = NowNs() - start;
    *qps_out = static_cast<double>(mix.size()) * 1e9 /
               static_cast<double>(wall_ns);
    return static_cast<double>(rc.hits()) /
           static_cast<double>(rc.hits() + rc.misses());
  };

  constexpr int kAliasRepeats = 10;
  std::vector<Request> cross_mix, same_mix;
  for (int rep = 0; rep < kAliasRepeats; ++rep) {
    for (const std::string& name : store.Names()) {
      for (const PlanPtr& plan : alias_plans) {
        cross_mix.push_back(Request{plan, store.Get(name).value()});
      }
      for (int a = 0; a < kNumAliases; ++a) {
        same_mix.push_back(Request{alias_plans[0], store.Get(name).value()});
      }
    }
  }
  double cross_qps = 0, same_qps = 0;
  const double cross_dialect_hit_rate =
      measure_hit_rate(cross_mix, &cross_qps);
  const double same_text_hit_rate = measure_hit_rate(same_mix, &same_qps);
  // The headline claim: rotating dialects costs no hit rate at all.
  TREEQ_CHECK(cross_dialect_hit_rate >= same_text_hit_rate - 1e-9);

  std::printf("\n=== cross-dialect canonical aliasing (1 thread) ===\n");
  std::printf("plan cache: %d spellings -> 1 entry (%llu canonical hits)\n",
              kNumAliases,
              static_cast<unsigned long long>(plan_canonical_hits));
  std::printf("cross-dialect mix: hit rate %.3f  (%9.0f qps)\n",
              cross_dialect_hit_rate, cross_qps);
  std::printf("same-text mix:     hit rate %.3f  (%9.0f qps)\n",
              same_text_hit_rate, same_qps);

  if (record != nullptr) {
    record->SetNumber("hardware_concurrency",
                      std::thread::hardware_concurrency());
    record->SetNumber("bounded_qps_1_thread", bounded_qps);
    record->SetNumber("bounded_vs_plain_ratio", bounded_qps / qps1);
    record->SetNumber("deadline_10ms_completion_ns_p50", deadline_p50);
    record->SetNumber("cancel_latency_ns_p50", cancel_p50);
    record->SetNumber("num_documents", kNumDocuments);
    record->SetNumber("products_per_document", kProductsPerDocument);
    record->SetNumber("batch_requests", static_cast<double>(batch.size()));
    record->SetNumber("workload_queries", kNumQueries);
    record->SetNumber("cold_compile_ns_avg", cold_ns);
    record->SetNumber("cache_hit_ns_avg", hit_ns);
    record->SetNumber("cache_hit_speedup", cold_ns / hit_ns);
    record->SetNumber("compiles_during_hit_loop",
                      static_cast<double>(compiles_during_hits));
    record->SetNumber("recorder_off_qps", recorder_off_qps);
    record->SetNumber("recorder_on_qps", recorder_on_qps);
    record->SetNumber("recorder_overhead_ratio", recorder_ratio);
    record->SetNumber("recorder_profiles_recorded",
                      static_cast<double>(recorder_recorded));
    record->SetNumber("cache_off_qps", cache_off_qps);
    record->SetNumber("cache_on_qps", cache_on_qps);
    record->SetNumber("cache_hot_speedup", cache_hot_speedup);
    record->SetNumber("cache_result_hits",
                      static_cast<double>(result_cache_hits));
    record->SetNumber("plan_cache_canonical_hits",
                      static_cast<double>(plan_canonical_hits));
    record->SetNumber("cross_dialect_hit_rate", cross_dialect_hit_rate);
    record->SetNumber("same_text_hit_rate", same_text_hit_rate);
    record->SetNumber("fault_disarmed_qps", fault_disarmed_qps);
    record->SetNumber("fault_armed_idle_qps", fault_armed_idle_qps);
    record->SetNumber("fault_overhead_ratio", fault_overhead_ratio);
  }
}

/// Removes `--metrics-out=<path>` from the arguments (mirrors
/// ExtractJsonPath) and returns the path, or "" when absent.
std::string ExtractMetricsPath(int* argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    constexpr const char kPrefix[] = "--metrics-out=";
    if (std::strncmp(argv[i], kPrefix, sizeof(kPrefix) - 1) == 0) {
      path = argv[i] + sizeof(kPrefix) - 1;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return path;
}

/// Writes the registry's Prometheus exposition to `path`, if requested.
int WriteMetrics(const std::string& path) {
  if (path.empty()) return 0;
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  treeq::obs::ExportPrometheus(os);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return 0;
}

// Micro-benchmarks for the default (google-benchmark) mode.

void BM_ExecutorBatch(benchmark::State& state) {
  DocumentStore store;
  BuildCorpus(&store);
  std::vector<Request> batch = BuildBatch(store, CompileWorkload());
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Executor exec(
        Executor::Options{.num_workers = threads, .queue_capacity = 64});
    auto results = exec.RunBatch(batch);
    benchmark::DoNotOptimize(results.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_ExecutorBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(
    benchmark::kMillisecond);

void BM_PlanColdCompile(benchmark::State& state) {
  int i = 0;
  for (auto _ : state) {
    const WorkloadQuery& q = kWorkload[i++ % kNumQueries];
    auto plan = Plan::Compile(q.language, q.text);
    benchmark::DoNotOptimize(plan.ok());
  }
}
BENCHMARK(BM_PlanColdCompile);

void BM_PlanCacheHit(benchmark::State& state) {
  PlanCache cache(32);
  for (const WorkloadQuery& q : kWorkload) {
    auto warm = cache.GetOrCompile(q.language, q.text);
    TREEQ_CHECK(warm.ok());
  }
  int i = 0;
  for (auto _ : state) {
    const WorkloadQuery& q = kWorkload[i++ % kNumQueries];
    auto plan = cache.GetOrCompile(q.language, q.text);
    benchmark::DoNotOptimize(plan.ok());
  }
}
BENCHMARK(BM_PlanCacheHit);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = treeq::benchjson::ExtractJsonPath(&argc, argv);
  const std::string metrics_path = ExtractMetricsPath(&argc, argv);
  if (!json_path.empty()) {
    const int rc = treeq::benchjson::WriteRecord(
        json_path, "bench_engine_throughput",
        [](treeq::benchjson::Record* record) { RunThroughputSweep(record); });
    if (rc != 0) return rc;
    return WriteMetrics(metrics_path);
  }
  RunThroughputSweep(nullptr);
  if (const int rc = WriteMetrics(metrics_path); rc != 0) return rc;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
