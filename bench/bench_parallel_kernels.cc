// Partition-parallel kernel scaling bench (tree/par_axes.h,
// xpath/evaluator.h EvalQueryFromRootParallel): a descendant-heavy Core
// XPath workload on a ~1.4M-node document, evaluated serially and at
// parallelism 2/4/8 on a thread-per-task runner. The headline row set is
// the scaling curve {threads, serial_ns, parallel_ns, speedup}; the "p0"
// row measures the parallelism=0 path against the plain serial evaluator —
// the no-regression floor CI gates on (the two must be the same code path
// up to dispatch overhead; the answers are asserted bit-identical here).
//
// Acceptance context (ISSUE 7): >= 1.5x at 8 threads on a machine with
// cores to back it; on single-core CI runners the speedup rows are
// recorded honestly (~1x or below) and only the p0 ratio is gated.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "tree/document.h"
#include "tree/generator.h"
#include "tree/node_set.h"
#include "tree/orders.h"
#include "util/exec_context.h"
#include "util/random.h"
#include "util/status.h"
#include "util/task_runner.h"
#include "xpath/ast.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace {

using treeq::Document;
using treeq::NodeId;
using treeq::NodeSet;
using treeq::Tree;

// The same ~1.4M-node depth-first balanced 4-ary shape as
// bench_nodeset_kernels (ids == pre ranks), labels a/b/c by depth: every
// step of the workload queries below keeps a dense context set, so the
// axis-image steps are large enough to fork.
constexpr int kBigDepth = 10;
constexpr int kBigFanout = 4;

void GrowPreOrder(treeq::TreeBuilder* builder, NodeId parent, int depth) {
  if (depth == kBigDepth) return;
  static const char* kLabels[] = {"a", "b", "c"};
  for (int i = 0; i < kBigFanout; ++i) {
    NodeId c = builder->AddChild(parent, kLabels[(depth + 1) % 3]);
    GrowPreOrder(builder, c, depth + 1);
  }
}

Tree MakeBigTree() {
  treeq::TreeBuilder builder;
  NodeId root = builder.AddChild(treeq::kNullNode, "a");
  GrowPreOrder(&builder, root, 0);
  auto tree = builder.Finish();
  TREEQ_CHECK(tree.ok());
  return std::move(tree).value();
}

// Descendant-heavy: every step is a kDescendant/kAncestor image over a
// large context set — exactly the shape the partition kernels target.
const char* const kWorkloadQuery = "//a//b//c/ancestor::a";

uint64_t MedianNs(std::vector<uint64_t>* samples) {
  std::sort(samples->begin(), samples->end());
  return (*samples)[samples->size() / 2];
}

template <typename Fn>
uint64_t TimeMedianNs(int reps, Fn&& fn) {
  std::vector<uint64_t> samples;
  samples.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    samples.push_back(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
  }
  return MedianNs(&samples);
}

// ---------------------------------------------------------------------------
// google-benchmark mode

void BM_EvalSerial(benchmark::State& state) {
  Document doc(MakeBigTree());
  auto parsed = treeq::xpath::ParseXPath(kWorkloadQuery);
  TREEQ_CHECK(parsed.ok());
  for (auto _ : state) {
    auto got = treeq::xpath::EvalQueryFromRoot(
        doc, *parsed.value(), treeq::ExecContext::Unbounded());
    TREEQ_CHECK(got.ok());
    benchmark::DoNotOptimize(got.value().size());
  }
}
BENCHMARK(BM_EvalSerial)->Unit(benchmark::kMillisecond);

void BM_EvalParallel(benchmark::State& state) {
  Document doc(MakeBigTree());
  auto parsed = treeq::xpath::ParseXPath(kWorkloadQuery);
  TREEQ_CHECK(parsed.ok());
  treeq::par::ThreadPerTaskRunner runner;
  treeq::par::ParOptions options;
  options.parallelism = static_cast<int>(state.range(0));
  options.runner = options.parallelism >= 2 ? &runner : nullptr;
  for (auto _ : state) {
    auto got = treeq::xpath::EvalQueryFromRootParallel(
        doc, *parsed.value(), treeq::ExecContext::Unbounded(), options);
    TREEQ_CHECK(got.ok());
    benchmark::DoNotOptimize(got.value().size());
  }
}
BENCHMARK(BM_EvalParallel)->Arg(0)->Arg(2)->Arg(4)->Arg(8)->Unit(
    benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// --json mode: the scaling curve plus the p0 no-regression row.

void JsonWorkload(treeq::benchjson::Record* rec) {
  constexpr int kReps = 5;
  Document doc(MakeBigTree());
  auto parsed = treeq::xpath::ParseXPath(kWorkloadQuery);
  TREEQ_CHECK(parsed.ok());
  const treeq::xpath::PathExpr& path = *parsed.value();

  rec->SetNumber("input_nodes", doc.num_nodes());
  rec->SetNumber("reps", kReps);
  rec->SetNumber("host_cores",
                 static_cast<double>(std::thread::hardware_concurrency()));
  rec->SetString("query", kWorkloadQuery);
  rec->SetString("tree_shape", "balanced 4-ary, depth 10, doc-order ids");

  NodeSet want;
  const uint64_t serial_ns = TimeMedianNs(kReps, [&] {
    auto got = treeq::xpath::EvalQueryFromRoot(
        doc, path, treeq::ExecContext::Unbounded());
    TREEQ_CHECK(got.ok());
    want = std::move(got).value();
  });
  rec->SetNumber("serial_ns", static_cast<double>(serial_ns));

  treeq::par::ThreadPerTaskRunner runner;
  auto run_parallel = [&](int parallelism) {
    treeq::par::ParOptions options;
    options.parallelism = parallelism;
    options.runner = parallelism >= 2 ? &runner : nullptr;
    NodeSet result;
    const uint64_t parallel_ns = TimeMedianNs(kReps, [&] {
      auto got = treeq::xpath::EvalQueryFromRootParallel(
          doc, path, treeq::ExecContext::Unbounded(), options);
      TREEQ_CHECK(got.ok());
      result = std::move(got).value();
    });
    TREEQ_CHECK(result == want);  // bit-identical or the timing is moot
    const double speedup = static_cast<double>(serial_ns) /
                           static_cast<double>(parallel_ns);
    std::printf("threads %d   serial %12llu ns   parallel %12llu ns   "
                "speedup %.2fx\n",
                parallelism, static_cast<unsigned long long>(serial_ns),
                static_cast<unsigned long long>(parallel_ns), speedup);
    rec->AddRow({{"threads", static_cast<double>(parallelism)},
                 {"serial_ns", static_cast<double>(serial_ns)},
                 {"parallel_ns", static_cast<double>(parallel_ns)},
                 {"speedup", speedup}});
  };

  run_parallel(0);  // the p0 no-regression row CI gates on
  for (int threads : {2, 4, 8}) run_parallel(threads);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = treeq::benchjson::ExtractJsonPath(&argc, argv);
  if (!json_path.empty()) {
    return treeq::benchjson::WriteRecord(json_path, "bench_parallel_kernels",
                                         JsonWorkload);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
