#ifndef TREEQ_BENCH_BENCH_JSON_H_
#define TREEQ_BENCH_BENCH_JSON_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/stats.h"

/// \file bench_json.h
/// Shared `--json=<path>` mode for the bench binaries. When the flag is
/// present, a bench runs its headline workload once under a freshly reset
/// obs registry, measures wall time, and writes one machine-readable
/// BENCH_*.json record:
///
///   {"bench": "<name>", "wall_ns": N,
///    "meta": {...input sizes and per-bench scalars...},
///    "rows": [...optional per-configuration measurements...],
///    "stats": {"counters": {...}, "gauges": {...},
///              "histograms": {...}, "spans": [...]}}
///
/// The stats object is the full registry dump, so every work counter the
/// engines incremented during the workload (xpath.axis_ops,
/// cq.twig.stack_pushes, ...) lands in the record without per-bench code.
///
/// Usage in a bench main:
///
///   const std::string json = treeq::benchjson::ExtractJsonPath(&argc, argv);
///   if (!json.empty())
///     return treeq::benchjson::WriteRecord(json, "bench_foo", JsonWorkload);

namespace treeq {
namespace benchjson {

/// Removes `--json=<path>` from the argument list (google-benchmark rejects
/// unknown flags) and returns the path, or "" when absent. A bare `--json`
/// or an empty `--json=` is a usage error: exits with code 2 rather than
/// silently running the full benchmark suite.
inline std::string ExtractJsonPath(int* argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    constexpr const char kPrefix[] = "--json=";
    if (std::strncmp(argv[i], kPrefix, sizeof(kPrefix) - 1) == 0) {
      path = argv[i] + sizeof(kPrefix) - 1;
      if (path.empty()) {
        std::fprintf(stderr, "error: --json requires a path (--json=<path>)\n");
        std::exit(2);
      }
    } else if (std::strcmp(argv[i], "--json") == 0) {
      std::fprintf(stderr, "error: --json requires a path (--json=<path>)\n");
      std::exit(2);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return path;
}

/// Per-bench scalars and per-configuration rows added by the workload.
class Record {
 public:
  void SetNumber(const std::string& key, double value) {
    numbers_.emplace_back(key, value);
  }
  void SetString(const std::string& key, const std::string& value) {
    strings_.emplace_back(key, value);
  }
  /// One measurement row, e.g. {"k": 3, "naive_rule_applications": 9000}.
  void AddRow(std::vector<std::pair<std::string, double>> row) {
    rows_.push_back(std::move(row));
  }

  void WriteTo(std::ostream& os, const std::string& bench_name,
               uint64_t wall_ns) const {
    os << "{\"bench\": \"" << obs::JsonEscape(bench_name)
       << "\", \"wall_ns\": " << wall_ns << ", \"meta\": {";
    bool first = true;
    for (const auto& [k, v] : strings_) {
      if (!first) os << ", ";
      first = false;
      os << "\"" << obs::JsonEscape(k) << "\": \"" << obs::JsonEscape(v)
         << "\"";
    }
    for (const auto& [k, v] : numbers_) {
      if (!first) os << ", ";
      first = false;
      os << "\"" << obs::JsonEscape(k) << "\": " << v;
    }
    os << "}, \"rows\": [";
    for (size_t i = 0; i < rows_.size(); ++i) {
      if (i > 0) os << ", ";
      os << "{";
      for (size_t j = 0; j < rows_[i].size(); ++j) {
        if (j > 0) os << ", ";
        os << "\"" << obs::JsonEscape(rows_[i][j].first)
           << "\": " << rows_[i][j].second;
      }
      os << "}";
    }
    os << "], \"stats\": ";
    obs::StatsRegistry::Global().DumpJson(os);
    os << "}\n";
  }

 private:
  std::vector<std::pair<std::string, double>> numbers_;
  std::vector<std::pair<std::string, std::string>> strings_;
  std::vector<std::vector<std::pair<std::string, double>>> rows_;
};

/// Runs `workload` under a reset registry, then writes the record to
/// `path`. Returns a process exit code.
inline int WriteRecord(const std::string& path, const std::string& bench_name,
                       const std::function<void(Record*)>& workload) {
  obs::StatsRegistry::Global().Reset();
  Record record;
  auto start = std::chrono::steady_clock::now();
  workload(&record);
  auto wall_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  record.WriteTo(os, bench_name, wall_ns);
  os.close();
  if (!os) {
    std::fprintf(stderr, "error writing %s\n", path.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return 0;
}

}  // namespace benchjson
}  // namespace treeq

#endif  // TREEQ_BENCH_BENCH_JSON_H_
