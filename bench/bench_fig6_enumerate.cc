// F6 — Figure 6 / Propositions 6.9-6.10: enumerating all solutions of an
// acyclic CQ from a fully reduced pre-valuation is backtracking-free, so
// runtime is governed by the output size. We hold the input document fixed
// and scale the number of solutions via label selectivity; expected shape:
// enumeration time grows linearly with |output| while the reduction cost
// stays flat. The naive backtracker is the baseline.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <cstdio>

#include "cq/enumerate.h"
#include "cq/naive.h"
#include "cq/parser.h"
#include "cq/yannakakis.h"
#include "tree/generator.h"
#include "tree/orders.h"
#include "util/random.h"

namespace {

// Caterpillar with `legs` leaves per spine node: the query
// Q(x, y) :- Child(s, x), Child(s, y), ... has ~legs^2 matches per spine
// node, so `legs` directly scales the output.
treeq::Tree MakeDoc(int legs) { return treeq::Caterpillar(64, legs); }

treeq::cq::ConjunctiveQuery Query() {
  return treeq::cq::ParseCq(
             "Q(x, y) :- Child(s, x), Lab_l(x), NextSibling+(x, y), "
             "Lab_l(y).")
      .value();
}

void PrintOutputSensitivity() {
  std::printf("=== Figure 6: output-sensitive enumeration ===\n");
  std::printf("%-8s %-12s %-14s\n", "legs", "solutions", "per-solution work");
  for (int legs : {2, 4, 8, 16}) {
    treeq::Tree t = MakeDoc(legs);
    treeq::TreeOrders o = treeq::ComputeOrders(t);
    treeq::cq::ConjunctiveQuery q = Query();
    treeq::Result<treeq::cq::ReducedQuery> reduced =
        treeq::cq::FullReducer(q, t, o);
    auto solutions =
        treeq::cq::EnumerateSolutions(q, t, o, reduced.value()).value();
    std::printf("%-8d %-12zu (see timed series below)\n", legs,
                solutions.size());
  }
  std::printf("\n");
}

void BM_EnumerateFromReduced(benchmark::State& state) {
  treeq::Tree t = MakeDoc(static_cast<int>(state.range(0)));
  treeq::TreeOrders o = treeq::ComputeOrders(t);
  treeq::cq::ConjunctiveQuery q = Query();
  treeq::cq::ReducedQuery reduced =
      std::move(treeq::cq::FullReducer(q, t, o)).value();
  size_t out = 0;
  for (auto _ : state) {
    auto solutions = treeq::cq::EnumerateSolutions(q, t, o, reduced).value();
    out = solutions.size();
    benchmark::DoNotOptimize(solutions.data());
  }
  state.counters["solutions"] = static_cast<double>(out);
  state.SetComplexityN(static_cast<int64_t>(out));
}
BENCHMARK(BM_EnumerateFromReduced)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Complexity(benchmark::oN)
    ->Unit(benchmark::kMicrosecond);

void BM_FullReducerOnly(benchmark::State& state) {
  treeq::Tree t = MakeDoc(static_cast<int>(state.range(0)));
  treeq::TreeOrders o = treeq::ComputeOrders(t);
  treeq::cq::ConjunctiveQuery q = Query();
  for (auto _ : state) {
    auto reduced = treeq::cq::FullReducer(q, t, o);
    benchmark::DoNotOptimize(reduced.ok());
  }
}
BENCHMARK(BM_FullReducerOnly)
    ->Arg(2)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMicrosecond);

void BM_NaiveBaseline(benchmark::State& state) {
  treeq::Tree t = MakeDoc(static_cast<int>(state.range(0)));
  treeq::TreeOrders o = treeq::ComputeOrders(t);
  treeq::cq::ConjunctiveQuery q = Query();
  for (auto _ : state) {
    auto tuples = treeq::cq::NaiveEvaluateCq(q, t, o);
    benchmark::DoNotOptimize(tuples.ok());
  }
}
BENCHMARK(BM_NaiveBaseline)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = treeq::benchjson::ExtractJsonPath(&argc, argv);
  if (!json_path.empty()) {
    // --json mode: the headline workload runs once under a reset obs
    // registry; its work counters and spans land in the record.
    return treeq::benchjson::WriteRecord(
        json_path, "bench_fig6_enumerate", [](treeq::benchjson::Record*) {
          PrintOutputSensitivity();
        });
  }
  PrintOutputSensitivity();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
