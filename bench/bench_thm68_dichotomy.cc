// S6b — Theorem 6.8, the dichotomy: CQ[F] is in P iff some order gives all
// of F the X-underbar property; otherwise NP-complete. We print the
// classification of representative signatures, then measure the dispatcher:
// inside tau_1/tau_2/tau_3 it runs the Theorem 6.5 evaluator (polynomial,
// smooth growth); outside, it falls back to backtracking, whose search
// effort on crafted instances grows explosively with the query size.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <cstdio>
#include <string>

#include "cq/dichotomy.h"
#include "cq/naive.h"
#include "cq/parser.h"
#include "tree/generator.h"
#include "tree/orders.h"
#include "util/random.h"

namespace {

void PrintClassification() {
  std::printf("=== Theorem 6.8: signature classification ===\n");
  struct Case {
    const char* name;
    std::vector<treeq::Axis> axes;
  };
  const Case kCases[] = {
      {"{Child+, Child*}",
       {treeq::Axis::kDescendant, treeq::Axis::kDescendantOrSelf}},
      {"{Following}", {treeq::Axis::kFollowing}},
      {"{Child, NextSibling, NextSibling+, NextSibling*}",
       {treeq::Axis::kChild, treeq::Axis::kNextSibling,
        treeq::Axis::kFollowingSibling,
        treeq::Axis::kFollowingSiblingOrSelf}},
      {"{Child, Child+}", {treeq::Axis::kChild, treeq::Axis::kDescendant}},
      {"{Child+, NextSibling}",
       {treeq::Axis::kDescendant, treeq::Axis::kNextSibling}},
      {"{Child+, Following}",
       {treeq::Axis::kDescendant, treeq::Axis::kFollowing}},
      {"{Parent, PrevSibling} (inverses)",
       {treeq::Axis::kParent, treeq::Axis::kPrevSibling}},
  };
  for (const Case& c : kCases) {
    std::printf("  %-48s -> %s\n", c.name,
                treeq::cq::SignatureClassName(
                    treeq::cq::ClassifySignature(c.axes)));
  }
  std::printf("\n");
}

// Hard-side instance family: k "descendant chain + child anchor" variables;
// nearly-satisfiable on a long chain with sparse labels, which makes the
// backtracker sweat.
treeq::cq::ConjunctiveQuery HardQuery(int k) {
  std::string text = "Q() :- Lab_a(x0)";
  for (int i = 1; i <= k; ++i) {
    std::string v = "x" + std::to_string(i);
    std::string prev = "x" + std::to_string(i - 1);
    text += ", Child+(" + prev + ", " + v + ")";
    text += ", Child(" + v + ", c" + std::to_string(i) + ")";
    text += ", Lab_b(c" + std::to_string(i) + ")";
  }
  text += ".";
  return treeq::cq::ParseCq(text).value();
}

treeq::Tree HardTree(int n) {
  // Deep-ish random tree with rare 'b' labels: many near misses.
  treeq::Rng rng(13);
  treeq::RandomTreeOptions opts;
  opts.num_nodes = n;
  opts.attach_window = 2;
  opts.alphabet = {"a", "a", "a", "c", "b"};
  return treeq::RandomTree(&rng, opts);
}

void PrintSearchBlowup() {
  std::printf("hard-side search effort (signature {Child, Child+}):\n");
  std::printf("%-6s %-22s\n", "k", "backtrack assignments");
  treeq::Tree t = HardTree(220);
  treeq::TreeOrders o = treeq::ComputeOrders(t);
  for (int k : {1, 2, 3, 4}) {
    treeq::cq::NaiveCqStats stats;
    auto r = treeq::cq::NaiveSatisfiableCq(HardQuery(k), t, o, UINT64_MAX,
                                           &stats);
    TREEQ_CHECK(r.ok());
    std::printf("%-6d %-22llu\n", k,
                static_cast<unsigned long long>(stats.assignments_tried));
  }
  std::printf("\n");
}

// Tractable side: same chain shape but in pure tau_1 (Child+ only) runs
// through the X-property evaluator regardless of k.
treeq::cq::ConjunctiveQuery Tau1Chain(int k) {
  std::string text = "Q() :- Lab_a(x0)";
  for (int i = 1; i <= k; ++i) {
    text += ", Child+(x" + std::to_string(i - 1) + ", x" +
            std::to_string(i) + ")";
    text += ", Lab_b(x" + std::to_string(i) + ")";
  }
  text += ".";
  return treeq::cq::ParseCq(text).value();
}

void BM_DispatcherTractable(benchmark::State& state) {
  treeq::Tree t = HardTree(300);
  treeq::TreeOrders o = treeq::ComputeOrders(t);
  treeq::cq::ConjunctiveQuery q = Tau1Chain(static_cast<int>(state.range(0)));
  bool tractable = false;
  for (auto _ : state) {
    auto r = treeq::cq::EvaluateBooleanDichotomy(q, t, o, &tractable);
    benchmark::DoNotOptimize(r.ok());
  }
  state.counters["tractable_path"] = tractable ? 1 : 0;
}
BENCHMARK(BM_DispatcherTractable)->Arg(2)->Arg(4)->Arg(8)->Unit(
    benchmark::kMicrosecond);

void BM_DispatcherNpHard(benchmark::State& state) {
  treeq::Tree t = HardTree(220);
  treeq::TreeOrders o = treeq::ComputeOrders(t);
  treeq::cq::ConjunctiveQuery q = HardQuery(static_cast<int>(state.range(0)));
  bool tractable = true;
  for (auto _ : state) {
    auto r = treeq::cq::EvaluateBooleanDichotomy(q, t, o, &tractable);
    benchmark::DoNotOptimize(r.ok());
  }
  state.counters["tractable_path"] = tractable ? 1 : 0;
}
BENCHMARK(BM_DispatcherNpHard)->Arg(1)->Arg(2)->Arg(3)->Unit(
    benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = treeq::benchjson::ExtractJsonPath(&argc, argv);
  if (!json_path.empty()) {
    // --json mode: the headline workload runs once under a reset obs
    // registry; its work counters and spans land in the record.
    return treeq::benchjson::WriteRecord(
        json_path, "bench_thm68_dichotomy", [](treeq::benchjson::Record*) {
          PrintClassification();
          PrintSearchBlowup();
        });
  }
  PrintClassification();
  PrintSearchBlowup();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
