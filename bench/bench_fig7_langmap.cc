// F7 — Figure 7: the complexity/expressiveness map of query languages over
// trees. The figure's arrows are translations; here each implemented arrow
// is exercised on one shared workload and the engines' answers are
// cross-checked, so the diagram becomes a runnable compatibility matrix:
//
//   conjunctive Core XPath --(ConjunctiveXPathToCq)--> CQ
//   CQ  --(Theorem 5.1)--> acyclic positive queries --> forward XPath
//   positive Core XPath --(Section 3)--> monadic datalog --> TMNF
//   TMNF --(Theorem 3.2)--> ground Horn --(Figure 3)--> model
//
// The timing section compares the engines on the same query/document.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <cstdio>

#include "cq/enumerate.h"
#include "cq/yannakakis.h"
#include "datalog/evaluator.h"
#include "datalog/tmnf.h"
#include "stream/stream_eval.h"
#include "tree/generator.h"
#include "tree/orders.h"
#include "util/random.h"
#include "xpath/evaluator.h"
#include "xpath/naive_evaluator.h"
#include "xpath/parser.h"
#include "xpath/to_datalog.h"
#include "xpath/to_forward.h"

namespace {

treeq::Tree MakeDoc(int products) {
  treeq::Rng rng(123);
  treeq::CatalogOptions opts;
  opts.num_products = products;
  return treeq::CatalogDocument(&rng, opts);
}

// The shared workload: products with a commented review
// (//product[reviews/review/comment]).
constexpr const char* kQuery = "//product[reviews/review/comment]";

void PrintLanguageMap() {
  std::printf("=== Figure 7 as a translation/compatibility matrix ===\n");
  treeq::Tree doc = MakeDoc(100);
  treeq::TreeOrders orders = treeq::ComputeOrders(doc);
  auto xp = treeq::xpath::ParseXPath(kQuery).value();

  // 1. Core XPath, set-at-a-time.
  treeq::NodeSet direct = treeq::xpath::EvalQueryFromRoot(doc, orders, *xp);
  std::printf("%-44s -> %d nodes\n", "Core XPath (set-at-a-time)",
              direct.size());

  // 2. Core XPath -> monadic datalog -> TMNF -> Horn (Theorem 3.2).
  auto program = treeq::xpath::XPathToDatalog(*xp).value();
  auto tmnf = treeq::datalog::ToTmnf(program).value();
  treeq::datalog::EvalStats stats;
  auto via_datalog =
      std::move(treeq::datalog::EvaluateDatalog(program, doc, &stats))
          .value();
  std::printf("%-44s -> %d nodes  (%d TMNF rules, %d ground clauses)\n",
              "XPath -> datalog -> TMNF -> Horn", via_datalog.size(),
              static_cast<int>(tmnf.rules().size()), stats.ground_clauses);

  // 3. Conjunctive XPath -> CQ -> Theorem 5.1 -> forward XPath -> stream.
  auto fwd = std::move(treeq::xpath::ToForwardXPath(*xp)).value();
  auto selected =
      std::move(treeq::stream::StreamMatcher::SelectFromTree(*fwd, doc))
          .value();
  std::printf("%-44s -> %zu nodes\n",
              "XPath -> CQ -> acyclic -> forward -> stream", selected.size());

  // 4. CQ via the full reducer (Prop 4.2 / Yannakakis).
  auto xcq = std::move(treeq::xpath::ConjunctiveXPathToCq(*xp)).value();
  treeq::cq::ConjunctiveQuery unary = xcq.query;
  // Make the result var the only head var.
  treeq::cq::ConjunctiveQuery cq2;
  {
    for (int v = 0; v < unary.num_vars(); ++v) {
      cq2.AddVar(unary.var_names()[v]);
    }
    for (const auto& a : unary.label_atoms()) cq2.AddLabelAtom(a.label, a.var);
    for (const auto& a : unary.axis_atoms()) {
      cq2.AddAxisAtom(a.axis, a.var0, a.var1);
    }
    cq2.AddHeadVar(xcq.result_var);
  }
  auto via_reducer =
      std::move(treeq::cq::EvaluateUnaryAcyclic(cq2, doc, orders)).value();
  // The CQ leaves the context variable unanchored, so it also admits
  // non-root contexts; restrict by intersecting with the root-anchored
  // answer for the comparison below.
  std::printf("%-44s -> %d nodes (context unanchored)\n",
              "CQ via full reducer (Prop 4.2)", via_reducer.size());

  bool agree = direct.ToVector() == via_datalog.ToVector() &&
               direct.ToVector() == selected;
  std::printf("\nroot-anchored engines agree: %s\n\n",
              agree ? "yes" : "NO — BUG");
}

void BM_XPathSetAtATime(benchmark::State& state) {
  treeq::Tree doc = MakeDoc(static_cast<int>(state.range(0)));
  treeq::TreeOrders orders = treeq::ComputeOrders(doc);
  auto xp = treeq::xpath::ParseXPath(kQuery).value();
  for (auto _ : state) {
    treeq::NodeSet r = treeq::xpath::EvalQueryFromRoot(doc, orders, *xp);
    benchmark::DoNotOptimize(r.size());
  }
}
BENCHMARK(BM_XPathSetAtATime)->Arg(100)->Arg(1000)->Unit(
    benchmark::kMicrosecond);

void BM_ViaDatalogHorn(benchmark::State& state) {
  treeq::Tree doc = MakeDoc(static_cast<int>(state.range(0)));
  auto xp = treeq::xpath::ParseXPath(kQuery).value();
  auto program = treeq::xpath::XPathToDatalog(*xp).value();
  for (auto _ : state) {
    auto r = treeq::datalog::EvaluateDatalog(program, doc);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_ViaDatalogHorn)->Arg(100)->Arg(1000)->Unit(
    benchmark::kMicrosecond);

void BM_ViaStreamingForward(benchmark::State& state) {
  treeq::Tree doc = MakeDoc(static_cast<int>(state.range(0)));
  auto xp = treeq::xpath::ParseXPath(kQuery).value();
  auto fwd = std::move(treeq::xpath::ToForwardXPath(*xp)).value();
  for (auto _ : state) {
    auto r = treeq::stream::StreamMatcher::MatchTree(*fwd, doc);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_ViaStreamingForward)->Arg(100)->Arg(1000)->Unit(
    benchmark::kMicrosecond);

void BM_NaiveRecursiveXPath(benchmark::State& state) {
  treeq::Tree doc = MakeDoc(static_cast<int>(state.range(0)));
  treeq::TreeOrders orders = treeq::ComputeOrders(doc);
  auto xp = treeq::xpath::ParseXPath(kQuery).value();
  for (auto _ : state) {
    auto r = treeq::xpath::NaiveEvalPath(doc, orders, *xp, doc.root());
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_NaiveRecursiveXPath)->Arg(100)->Arg(1000)->Unit(
    benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = treeq::benchjson::ExtractJsonPath(&argc, argv);
  if (!json_path.empty()) {
    // --json mode: the headline workload runs once under a reset obs
    // registry; its work counters and spans land in the record.
    return treeq::benchjson::WriteRecord(
        json_path, "bench_fig7_langmap", [](treeq::benchjson::Record*) {
          PrintLanguageMap();
        });
  }
  PrintLanguageMap();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
