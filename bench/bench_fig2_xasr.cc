// F2 — Figure 2 / Section 2: XASR storage and structural joins. The claim:
// computing descendant pairs with a single structural (theta/merge) join on
// (pre, post) beats both the iterated-join transitive closure an RDBMS
// would run and the nested-loop join, and the XASR stays linear in size.
// Shape expected: stack-tree join ~ linear in input+output, nested loop
// quadratic, iterated joins far worse.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <cstdio>

#include "storage/structural_join.h"
#include "storage/xasr.h"
#include "tree/generator.h"
#include "tree/orders.h"
#include "util/random.h"

namespace {

treeq::Tree MakeTree(int n) {
  treeq::Rng rng(42);
  treeq::RandomTreeOptions opts;
  opts.num_nodes = n;
  opts.attach_window = 6;
  opts.alphabet = {"a", "b"};
  return treeq::RandomTree(&rng, opts);
}

void PrintFigure2() {
  std::printf("=== Figure 2: the XASR relation of the paper's tree ===\n");
  treeq::TreeBuilder b;
  b.BeginNode("a");
  b.BeginNode("b");
  b.BeginNode("a");
  b.EndNode();
  b.BeginNode("c");
  b.EndNode();
  b.EndNode();
  b.BeginNode("a");
  b.BeginNode("b");
  b.EndNode();
  b.BeginNode("d");
  b.EndNode();
  b.EndNode();
  b.EndNode();
  treeq::Tree t = std::move(b.Finish()).value();
  treeq::TreeOrders o = treeq::ComputeOrders(t);
  treeq::Xasr xasr = treeq::Xasr::Build(t, o);
  std::printf("pre  post  parent_pre  label   (0-based; paper is 1-based)\n");
  for (const treeq::XasrRow& row : xasr.rows()) {
    if (row.parent_pre == treeq::XasrRow::kNoParent) {
      std::printf("%3d  %4d  %10s  %s\n", row.pre, row.post, "NULL",
                  t.label_table().Name(row.label).c_str());
    } else {
      std::printf("%3d  %4d  %10d  %s\n", row.pre, row.post, row.parent_pre,
                  t.label_table().Name(row.label).c_str());
    }
  }
  std::printf("representation size: %zu words for %d nodes (linear)\n\n",
              xasr.SizeInWords(), t.num_nodes());
}

// Descendant pairs between a-labeled and b-labeled nodes, three ways.

void BM_StackTreeJoin(benchmark::State& state) {
  treeq::Tree t = MakeTree(static_cast<int>(state.range(0)));
  treeq::TreeOrders o = treeq::ComputeOrders(t);
  auto anc = treeq::MakeJoinItemsForLabel(t, o, t.label_table().Lookup("a"));
  auto desc = treeq::MakeJoinItemsForLabel(t, o, t.label_table().Lookup("b"));
  size_t out = 0;
  for (auto _ : state) {
    auto pairs = treeq::StackTreeJoin(anc, desc, false);
    out = pairs.size();
    benchmark::DoNotOptimize(pairs.data());
  }
  state.counters["output_pairs"] = static_cast<double>(out);
}
BENCHMARK(BM_StackTreeJoin)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

void BM_NestedLoopJoin(benchmark::State& state) {
  treeq::Tree t = MakeTree(static_cast<int>(state.range(0)));
  treeq::TreeOrders o = treeq::ComputeOrders(t);
  auto anc = treeq::MakeJoinItemsForLabel(t, o, t.label_table().Lookup("a"));
  auto desc = treeq::MakeJoinItemsForLabel(t, o, t.label_table().Lookup("b"));
  for (auto _ : state) {
    auto pairs = treeq::NestedLoopJoin(anc, desc, false);
    benchmark::DoNotOptimize(pairs.data());
  }
}
BENCHMARK(BM_NestedLoopJoin)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

void BM_IteratedJoinClosure(benchmark::State& state) {
  treeq::Tree t = MakeTree(static_cast<int>(state.range(0)));
  treeq::TreeOrders o = treeq::ComputeOrders(t);
  treeq::Xasr xasr = treeq::Xasr::Build(t, o);
  for (auto _ : state) {
    auto pairs = treeq::DescendantByIteratedJoins(xasr);
    benchmark::DoNotOptimize(pairs.data());
  }
}
BENCHMARK(BM_IteratedJoinClosure)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = treeq::benchjson::ExtractJsonPath(&argc, argv);
  if (!json_path.empty()) {
    // --json mode: the headline workload runs once under a reset obs
    // registry; its work counters and spans land in the record.
    return treeq::benchjson::WriteRecord(
        json_path, "bench_fig2_xasr", [](treeq::benchjson::Record*) {
          PrintFigure2();
        });
  }
  PrintFigure2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
