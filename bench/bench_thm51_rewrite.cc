// S5a — Theorem 5.1: rewriting conjunctive queries into unions of acyclic
// positive queries is exponential in general ([35] shows this is
// necessary), but linear for CQ[{Child, NextSibling}] (implicit in [31]).
// We sweep the variable count and report order types enumerated, surviving
// disjuncts, and rewrite time; the special case stays flat.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <cstdio>
#include <string>

#include "cq/parser.h"
#include "cq/rewrite.h"

namespace {

/// A star-join query with k leaf variables below a common ancestor:
/// Q() :- Child+(x, y1), ..., Child+(x, yk), Lab(yi).
treeq::cq::ConjunctiveQuery StarQuery(int k) {
  std::string text = "Q() :- Lab_a(x)";
  for (int i = 1; i <= k; ++i) {
    text += ", Child+(x, y" + std::to_string(i) + ")";
    text += std::string(", Lab_") + (i % 2 ? "b" : "c") + "(y" +
            std::to_string(i) + ")";
  }
  text += ".";
  return treeq::cq::ParseCq(text).value();
}

/// The same shape in the tractable signature.
treeq::cq::ConjunctiveQuery CnsQuery(int k) {
  std::string text = "Q() :- Lab_a(x)";
  for (int i = 1; i <= k; ++i) {
    text += ", Child(x, y" + std::to_string(i) + ")";
  }
  text += ".";
  return treeq::cq::ParseCq(text).value();
}

void PrintBlowup() {
  std::printf("=== Theorem 5.1: rewrite blow-up (eager vs lazy [35]) ===\n");
  std::printf("%-6s %-8s %-14s %-12s %-14s %-12s\n", "k", "vars",
              "eager orders", "disjuncts", "lazy leaves", "disjuncts");
  for (int k : {1, 2, 3, 4}) {
    treeq::cq::ConjunctiveQuery q = StarQuery(k);
    auto eager = std::move(treeq::cq::RewriteToAcyclicUnion(q)).value();
    auto lazy = std::move(treeq::cq::RewriteToAcyclicUnionLazy(q)).value();
    std::printf("%-6d %-8d %-14d %-12zu %-14d %-12zu\n", k, q.num_vars(),
                eager.order_types_considered, eager.queries.size(),
                lazy.order_types_considered, lazy.queries.size());
  }
  std::printf("(eager = ordered Bell numbers 1, 3, 13, 75, 541, ...; lazy "
              "branches on demand)\n");
  std::printf("\nCQ[Child, NextSibling] special case (no enumeration):\n");
  std::printf("%-6s %-8s %-14s\n", "k", "vars", "result");
  for (int k : {2, 4, 8, 16}) {
    treeq::cq::ConjunctiveQuery q = CnsQuery(k);
    auto out = std::move(treeq::cq::RewriteChildNextSibling(q)).value();
    std::printf("%-6d %-8d %-14s\n", k, q.num_vars(),
                out.has_value() ? "single acyclic query" : "unsatisfiable");
  }
  std::printf("\n");
}

void BM_EagerRewrite(benchmark::State& state) {
  treeq::cq::ConjunctiveQuery q = StarQuery(static_cast<int>(state.range(0)));
  size_t disjuncts = 0;
  for (auto _ : state) {
    auto out = treeq::cq::RewriteToAcyclicUnion(q);
    disjuncts = out.value().queries.size();
    benchmark::DoNotOptimize(disjuncts);
  }
  state.counters["disjuncts"] = static_cast<double>(disjuncts);
}
BENCHMARK(BM_EagerRewrite)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Unit(
    benchmark::kMicrosecond);

void BM_LazyRewrite(benchmark::State& state) {
  treeq::cq::ConjunctiveQuery q = StarQuery(static_cast<int>(state.range(0)));
  size_t disjuncts = 0;
  for (auto _ : state) {
    auto out = treeq::cq::RewriteToAcyclicUnionLazy(q);
    disjuncts = out.value().queries.size();
    benchmark::DoNotOptimize(disjuncts);
  }
  state.counters["disjuncts"] = static_cast<double>(disjuncts);
}
BENCHMARK(BM_LazyRewrite)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Arg(5)->Arg(6)->Unit(
    benchmark::kMicrosecond);

void BM_ChildNextSiblingRewrite(benchmark::State& state) {
  treeq::cq::ConjunctiveQuery q = CnsQuery(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto out = treeq::cq::RewriteChildNextSibling(q);
    benchmark::DoNotOptimize(out.ok());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ChildNextSiblingRewrite)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Complexity(benchmark::oN)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = treeq::benchjson::ExtractJsonPath(&argc, argv);
  if (!json_path.empty()) {
    // --json mode: the headline workload runs once under a reset obs
    // registry; its work counters and spans land in the record.
    return treeq::benchjson::WriteRecord(
        json_path, "bench_thm51_rewrite", [](treeq::benchjson::Record*) {
          PrintBlowup();
        });
  }
  PrintBlowup();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
