// S4a — Theorem 4.1 / Proposition 4.2: acyclic conjunctive queries evaluate
// in O(||A|| * |Q|) via the full reducer (Yannakakis on trees), while
// generic backtracking is super-polynomial in the query. Two sweeps:
// data size at fixed query (both linear-ish, reducer far cheaper) and query
// length at fixed data (reducer linear in |Q|, backtracking explodes —
// the crossover the paper's combined-complexity bounds predict).

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <cstdio>
#include <string>

#include "cq/naive.h"
#include "cq/parser.h"
#include "cq/treewidth_eval.h"
#include "cq/yannakakis.h"
#include "tree/generator.h"
#include "tree/orders.h"
#include "util/random.h"

namespace {

treeq::Tree MakeTree(int n) {
  treeq::Rng rng(31);
  treeq::RandomTreeOptions opts;
  opts.num_nodes = n;
  opts.attach_window = 4;
  opts.alphabet = {"a", "b"};
  return treeq::RandomTree(&rng, opts);
}

// Shallow tree (depth ~ log n) for the backtracking baselines: on deep
// trees the number of Child+ chains is astronomically large and full
// enumeration would not terminate in bench time; shallow documents keep
// the super-polynomial growth visible but bounded.
treeq::Tree MakeShallowTree(int n) {
  treeq::Rng rng(31);
  treeq::RandomTreeOptions opts;
  opts.num_nodes = n;
  opts.attach_window = n;
  opts.alphabet = {"a", "b"};
  return treeq::RandomTree(&rng, opts);
}

/// A path query of k Child+ steps alternating labels:
/// Q(x0) :- Child+(x0,x1), Lab(x1), Child+(x1,x2), ...
treeq::cq::ConjunctiveQuery PathQuery(int k) {
  std::string text = "Q(x0) :- Lab_a(x0)";
  for (int i = 1; i <= k; ++i) {
    text += ", Child+(x" + std::to_string(i - 1) + ", x" +
            std::to_string(i) + ")";
    text += std::string(", Lab_") + (i % 2 ? "b" : "a") + "(x" +
            std::to_string(i) + ")";
  }
  text += ".";
  return treeq::cq::ParseCq(text).value();
}

void PrintWorkCounters() {
  std::printf("=== Prop 4.2: reducer vs backtracking work, query sweep ===\n");
  std::printf("(shallow tree: 400 nodes; query: k Child+ steps)\n");
  std::printf("%-6s %-22s %-22s\n", "k", "backtrack assignments",
              "reducer semijoins (=2(k))");
  treeq::Tree t = MakeShallowTree(400);
  treeq::TreeOrders o = treeq::ComputeOrders(t);
  for (int k : {2, 4, 6, 8}) {
    treeq::cq::ConjunctiveQuery q = PathQuery(k);
    treeq::cq::NaiveCqStats stats;
    auto r = treeq::cq::NaiveEvaluateCq(q, t, o, UINT64_MAX, &stats);
    TREEQ_CHECK(r.ok());
    std::printf("%-6d %-22llu %-22d\n", k,
                static_cast<unsigned long long>(stats.assignments_tried),
                2 * k);
  }
  std::printf("\n");
}

void BM_FullReducerDataSweep(benchmark::State& state) {
  treeq::Tree t = MakeTree(static_cast<int>(state.range(0)));
  treeq::TreeOrders o = treeq::ComputeOrders(t);
  treeq::cq::ConjunctiveQuery q = PathQuery(4);
  for (auto _ : state) {
    auto r = treeq::cq::EvaluateUnaryAcyclic(q, t, o);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FullReducerDataSweep)
    ->RangeMultiplier(4)
    ->Range(1024, 65536)
    ->Complexity(benchmark::oN)
    ->Unit(benchmark::kMicrosecond);

void BM_BacktrackDataSweep(benchmark::State& state) {
  treeq::Tree t = MakeShallowTree(static_cast<int>(state.range(0)));
  treeq::TreeOrders o = treeq::ComputeOrders(t);
  treeq::cq::ConjunctiveQuery q = PathQuery(4);
  for (auto _ : state) {
    auto r = treeq::cq::NaiveEvaluateCq(q, t, o);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_BacktrackDataSweep)->Arg(512)->Arg(1024)->Unit(
    benchmark::kMillisecond);

void BM_FullReducerQuerySweep(benchmark::State& state) {
  treeq::Tree t = MakeTree(2048);
  treeq::TreeOrders o = treeq::ComputeOrders(t);
  treeq::cq::ConjunctiveQuery q = PathQuery(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto r = treeq::cq::EvaluateUnaryAcyclic(q, t, o);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FullReducerQuerySweep)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Complexity(benchmark::oN)
    ->Unit(benchmark::kMicrosecond);

void BM_BacktrackQuerySweep(benchmark::State& state) {
  treeq::Tree t = MakeShallowTree(1024);
  treeq::TreeOrders o = treeq::ComputeOrders(t);
  treeq::cq::ConjunctiveQuery q = PathQuery(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto r = treeq::cq::NaiveEvaluateCq(q, t, o);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_BacktrackQuerySweep)->Arg(2)->Arg(3)->Arg(4)->Unit(
    benchmark::kMillisecond);

// Theorem 4.1: CYCLIC queries of bounded width stay polynomial through the
// decomposition route (a triangle has width 2: cost ~ |A|^3 worst case,
// label-pruned here). Acyclicity-based engines cannot run this query at
// all; backtracking can, but with no polynomial guarantee.
void BM_TreewidthCyclicTriangle(benchmark::State& state) {
  treeq::Tree t = MakeTree(static_cast<int>(state.range(0)));
  treeq::TreeOrders o = treeq::ComputeOrders(t);
  auto q = treeq::cq::ParseCq(
               "Q() :- Child(x, y), Child(y, z), Child+(x, z), Lab_a(x), "
               "Lab_b(z).")
               .value();
  treeq::cq::TreewidthEvalStats stats;
  for (auto _ : state) {
    auto r = treeq::cq::EvaluateBooleanTreewidth(q, t, o, &stats);
    benchmark::DoNotOptimize(r.ok());
  }
  state.counters["width"] = stats.width;
}
BENCHMARK(BM_TreewidthCyclicTriangle)->Arg(64)->Arg(128)->Arg(256)->Unit(
    benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = treeq::benchjson::ExtractJsonPath(&argc, argv);
  if (!json_path.empty()) {
    // --json mode: the headline workload runs once under a reset obs
    // registry; its work counters and spans land in the record.
    return treeq::benchjson::WriteRecord(
        json_path, "bench_prop42_acyclic", [](treeq::benchjson::Record*) {
          PrintWorkCounters();
        });
  }
  PrintWorkCounters();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
