// Web information extraction with monadic datalog (the paper's motivating
// application for Section 3, after [31]/Lixto [6]): a wrapper program marks
// the record fields of a product-listing page. Monadic datalog is exactly
// as expressive as MSO on trees, and Theorem 3.2 evaluates it in
// O(|program| * |document|).
//
// The page below mimics scraped HTML: records are <tr> rows inside the
// second <table>; the first cell of each row is the product name, the last
// cell is the price, and discount rows carry class="sale".

#include <cstdio>

#include "datalog/evaluator.h"
#include "datalog/parser.h"
#include "tree/tree.h"
#include "tree/xml.h"

namespace {

constexpr const char* kPage = R"(
<html>
  <body>
    <table class="nav"><tr><td/></tr></table>
    <table class="products">
      <tr><td>widget</td><td/><td>9</td></tr>
      <tr class="sale"><td>gadget</td><td/><td>5</td></tr>
      <tr><td>doohickey</td><td/><td>12</td></tr>
      <tr class="sale"><td>gizmo</td><td/><td>3</td></tr>
    </table>
    <table class="footer"><tr><td/></tr></table>
  </body>
</html>
)";

// The wrapper: navigate structurally (no string matching needed — the
// "bare tree structure" of Section 2 suffices).
constexpr const char* kWrapper = R"(
  % The products table and its record rows.
  ProductsTable(t) :- Lab_table(t), Label("@class=products", t).
  Record(r)        :- Child(t, r), ProductsTable(t), Lab_tr(r).

  % Field extraction: the first cell is the name, the last cell the price.
  NameCell(c)  :- FirstChild(r, c), Record(r), Lab_td(c).
  LastCell(c)  :- Child(r, c), Record(r), Lab_td(c), LastSibling(c).
  PriceCell(c) :- LastCell(c).

  % Sale records and their names.
  SaleRecord(r) :- Record(r), Label("@class=sale", r).
  SaleName(c)   :- FirstChild(r, c), SaleRecord(r), Lab_td(c).

  ?- SaleName.
)";

void Report(const char* what, const treeq::Tree& tree,
            const treeq::NodeSet& nodes) {
  std::printf("%-12s:", what);
  for (treeq::NodeId n : nodes.ToVector()) std::printf(" node%d", n);
  std::printf("  (%d match%s)\n", nodes.size(),
              nodes.size() == 1 ? "" : "es");
}

}  // namespace

int main() {
  treeq::Result<treeq::Tree> page = treeq::ParseXml(kPage);
  if (!page.ok()) {
    std::fprintf(stderr, "%s\n", page.status().ToString().c_str());
    return 1;
  }
  const treeq::Tree& tree = page.value();

  treeq::Result<treeq::datalog::Program> wrapper =
      treeq::datalog::ParseProgram(kWrapper);
  if (!wrapper.ok()) {
    std::fprintf(stderr, "%s\n", wrapper.status().ToString().c_str());
    return 1;
  }

  // Run each extraction predicate by re-targeting the query predicate: the
  // program is compiled through TMNF + grounding + Minoux each time
  // (Theorem 3.2 makes this linear, so re-running is cheap).
  std::printf("wrapper program:\n%s\n", wrapper.value().ToString().c_str());
  for (const char* pred :
       {"Record", "NameCell", "PriceCell", "SaleRecord", "SaleName"}) {
    treeq::datalog::Program program = wrapper.value();
    program.set_query_predicate(pred);
    treeq::datalog::EvalStats stats;
    treeq::Result<treeq::NodeSet> result =
        treeq::datalog::EvaluateDatalog(program, tree, &stats);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    Report(pred, tree, result.value());
  }
  return 0;
}
