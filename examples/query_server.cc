// A miniature query server built from the engine pieces: a DocumentStore
// holding the corpus, a PlanCache deduplicating compilation, and an
// Executor pool serving a mixed-language batch. Run it with no arguments;
// it prints each query's answer summary and the per-language serving
// counters from the obs registry.

#include <cstdio>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "obs/stats.h"
#include "tree/generator.h"
#include "util/random.h"

using treeq::Language;
using treeq::engine::DocumentStore;
using treeq::engine::Executor;
using treeq::engine::PlanCache;
using treeq::engine::PlanPtr;
using treeq::engine::QueryResult;
using treeq::engine::Request;

namespace {

// The "client traffic": (language, query) pairs, with repeats — exactly
// what a cache is for.
struct Incoming {
  Language language;
  const char* text;
};

constexpr Incoming kTraffic[] = {
    {Language::kXPath, "/catalog/product[reviews/review]/name"},
    {Language::kXPath, "//review/rating5"},
    {Language::kXPath, "/catalog/product[reviews/review]/name"},  // repeat
    {Language::kCq, "Q() :- Child+(x, y), Lab_product(x), Lab_rating1(y)."},
    {Language::kCq, "Q(p, r) :- Child+(p, r), Lab_product(p), Lab_review(r)."},
    {Language::kDatalog,
     "Good(x) :- Lab_rating5(x).\nHasGood(x) :- Child(x, y), Good(y).\n"
     "?- HasGood."},
    {Language::kFo,
     "exists x . exists y . (Child(x, y) and Lab_review(x) and "
     "Lab_rating5(y))"},
    {Language::kXPath, "//review/rating5"},  // repeat
};

std::string OneLine(std::string text) {
  for (char& c : text) {
    if (c == '\n') c = ' ';
  }
  return text;
}

void DescribeResult(const QueryResult& result) {
  if (result.is_boolean) {
    std::printf("%s", result.boolean ? "true" : "false");
  } else if (!result.tuples.empty()) {
    std::printf("%zu tuples", result.tuples.size());
  } else {
    std::printf("%d nodes", result.nodes.size());
  }
}

}  // namespace

int main() {
  treeq::obs::StatsRegistry& stats = treeq::obs::StatsRegistry::Global();
  stats.Reset();

  // 1. Load the corpus. Add() precomputes each document's TreeOrders, so
  //    the serving threads below share read-only data with no locking.
  DocumentStore store;
  for (int d = 0; d < 4; ++d) {
    treeq::Rng rng(static_cast<uint64_t>(42 + d));
    treeq::CatalogOptions opts;
    opts.num_products = 50;
    auto added = store.Add("catalog" + std::to_string(d),
                           treeq::CatalogDocument(&rng, opts));
    TREEQ_CHECK(added.ok());
  }
  std::printf("loaded %zu documents: ", store.size());
  for (const std::string& name : store.Names()) std::printf("%s ", name.c_str());
  std::printf("\n\n");

  // 2. Compile the traffic through the plan cache: repeated query text is
  //    parsed and classified once.
  PlanCache cache(/*capacity=*/16);
  std::vector<PlanPtr> plans;
  for (const Incoming& incoming : kTraffic) {
    auto plan = cache.GetOrCompile(incoming.language, incoming.text);
    if (!plan.ok()) {  // a real server would return this to the client
      std::printf("rejected %-7s %s\n  -> %s\n",
                  LanguageName(incoming.language), incoming.text,
                  plan.status().ToString().c_str());
      continue;
    }
    plans.push_back(std::move(plan).value());
  }
  std::printf("compiled %zu requests through the cache: %llu hits, %llu "
              "misses\n\n",
              plans.size(), static_cast<unsigned long long>(cache.hits()),
              static_cast<unsigned long long>(cache.misses()));

  // 3. Serve every (plan, document) pair on a worker pool.
  std::vector<Request> batch;
  for (const std::string& name : store.Names()) {
    for (const PlanPtr& plan : plans) {
      batch.push_back(Request{plan, store.Get(name).value()});
    }
  }
  Executor executor(Executor::Options{.num_workers = 4});
  std::vector<treeq::Result<QueryResult>> results =
      executor.RunBatch(batch);

  size_t i = 0;
  for (const std::string& name : store.Names()) {
    std::printf("-- %s --\n", name.c_str());
    for (const PlanPtr& plan : plans) {
      const treeq::Result<QueryResult>& r = results[i++];
      std::printf("  [%-7s] %-55.55s => ", LanguageName(plan->language()),
                  OneLine(plan->text()).c_str());
      if (r.ok()) {
        DescribeResult(*r);
      } else {
        std::printf("%s", r.status().ToString().c_str());
      }
      std::printf("\n");
    }
  }

  // 4. The registry saw every request — the workers' shadow counters were
  //    merged before each future became ready.
  std::printf("\n=== serving counters ===\n");
  for (const auto& [name, value] : stats.CounterValues()) {
    if (name.rfind("engine.", 0) == 0) {
      std::printf("%-32s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    }
  }
  return 0;
}
