// A miniature query server built from the engine pieces: a DocumentStore
// holding the corpus, a PlanCache deduplicating compilation, and an
// Executor pool serving a mixed-language batch. Run it with no arguments;
// it prints each query's answer summary and the per-language serving
// counters from the obs registry.
//
// Observability flags:
//   --flight-recorder=N   keep the last N per-query profiles (and a slow
//                         ring) in the global FlightRecorder; dumps the
//                         table after serving
//   --slow-ms=T           slow-query threshold in milliseconds (0 = auto:
//                         p99 of engine.execute_ns)
//   --metrics-out=PATH    write the full registry in Prometheus text
//                         exposition format to PATH on exit (point a
//                         node_exporter textfile collector at it)
//   --fault-plan=LINE     arm the global FaultRegistry with a serialized
//                         FaultPlan (the one-line format storms print,
//                         e.g. 'seed=7 rule point=engine.queue.push
//                         code=Unavailable first=3 max=inf p=1 tag=any')
//                         to watch injected failures flow through the
//                         serving path end to end
//   --explain             compile the traffic and print each plan's
//                         explain line (classification | canonical IR +
//                         hash | eligible routes) plus the cost-ranked
//                         routing decision for one document, without
//                         executing any query

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "fault/fault.h"
#include "obs/flight_recorder.h"
#include "obs/prometheus.h"
#include "obs/stats.h"
#include "tree/generator.h"
#include "util/random.h"

using treeq::Language;
using treeq::engine::DocumentStore;
using treeq::engine::Executor;
using treeq::engine::PlanCache;
using treeq::engine::PlanPtr;
using treeq::engine::QueryResult;
using treeq::engine::SubmitOptions;

namespace {

// The "client traffic": (language, query) pairs, with repeats — exactly
// what a cache is for.
struct Incoming {
  Language language;
  const char* text;
};

constexpr Incoming kTraffic[] = {
    {Language::kXPath, "/catalog/product[reviews/review]/name"},
    {Language::kXPath, "//review/rating5"},
    {Language::kXPath, "/catalog/product[reviews/review]/name"},  // repeat
    {Language::kCq, "Q() :- Child+(x, y), Lab_product(x), Lab_rating1(y)."},
    {Language::kCq, "Q(p, r) :- Child+(p, r), Lab_product(p), Lab_review(r)."},
    {Language::kDatalog,
     "Good(x) :- Lab_rating5(x).\nHasGood(x) :- Child(x, y), Good(y).\n"
     "?- HasGood."},
    {Language::kFo,
     "exists x . exists y . (Child(x, y) and Lab_review(x) and "
     "Lab_rating5(y))"},
    {Language::kXPath, "//review/rating5"},  // repeat
};

std::string OneLine(std::string text) {
  for (char& c : text) {
    if (c == '\n') c = ' ';
  }
  return text;
}

void DescribeResult(const QueryResult& result) {
  if (result.is_boolean()) {
    std::printf("%s", result.boolean() ? "true" : "false");
  } else if (result.is_tuples()) {
    std::printf("%zu tuples", result.tuples().size());
  } else {
    std::printf("%d nodes", result.nodes().size());
  }
}

/// --name=value flags; anything else aborts with usage.
struct Flags {
  size_t flight_recorder = 0;  // 0 = off
  double slow_ms = 0;          // 0 = auto threshold
  std::string metrics_out;
  std::string fault_plan;      // serialized FaultPlan; empty = disarmed
  bool explain = false;        // print plans, don't execute
};

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--flight-recorder=", 0) == 0) {
      flags->flight_recorder =
          static_cast<size_t>(std::atoll(arg.c_str() + 18));
    } else if (arg.rfind("--slow-ms=", 0) == 0) {
      flags->slow_ms = std::atof(arg.c_str() + 10);
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      flags->metrics_out = arg.substr(14);
    } else if (arg.rfind("--fault-plan=", 0) == 0) {
      flags->fault_plan = arg.substr(13);
    } else if (arg == "--explain") {
      flags->explain = true;
    } else {
      std::fprintf(stderr,
                   "usage: query_server [--flight-recorder=N] [--slow-ms=T] "
                   "[--metrics-out=PATH] [--fault-plan=LINE] [--explain]\n");
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 2;

  treeq::obs::StatsRegistry& stats = treeq::obs::StatsRegistry::Global();
  stats.Reset();
  if (flags.flight_recorder > 0) {
    treeq::obs::FlightRecorder::Options options;
    options.capacity = flags.flight_recorder;
    options.slow_threshold_ns =
        static_cast<uint64_t>(flags.slow_ms * 1e6);
    treeq::obs::FlightRecorder::Global().Enable(options);
  }
  if (!flags.fault_plan.empty()) {
    treeq::Result<treeq::fault::FaultPlan> plan =
        treeq::fault::FaultPlan::Parse(flags.fault_plan);
    if (!plan.ok()) {
      std::fprintf(stderr, "--fault-plan: %s\n",
                   plan.status().ToString().c_str());
      return 2;
    }
    if (!treeq::fault::kFaultPointsCompiledIn) {
      std::fprintf(stderr,
                   "--fault-plan: built with TREEQ_FAULT_DISABLED; "
                   "no points to arm\n");
      return 2;
    }
    treeq::fault::FaultRegistry::Global().Arm(*plan);
    std::printf("fault plan armed: %s\n", plan->ToString().c_str());
  }

  // 1. Load the corpus. Add() precomputes each document's TreeOrders, so
  //    the serving threads below share read-only data with no locking.
  DocumentStore store;
  for (int d = 0; d < 4; ++d) {
    treeq::Rng rng(static_cast<uint64_t>(42 + d));
    treeq::CatalogOptions opts;
    opts.num_products = 50;
    auto added = store.Add("catalog" + std::to_string(d),
                           treeq::CatalogDocument(&rng, opts));
    TREEQ_CHECK(added.ok());
  }
  std::printf("loaded %zu documents: ", store.size());
  for (const std::string& name : store.Names()) std::printf("%s ", name.c_str());
  std::printf("\n\n");

  // 2. Compile the traffic through the plan cache: repeated query text is
  //    parsed and classified once. Remember per plan whether it was a hit,
  //    so the per-query profiles attribute compile time to cold requests.
  PlanCache cache(/*capacity=*/16);
  std::vector<PlanPtr> plans;
  std::vector<bool> cache_hits;
  for (const Incoming& incoming : kTraffic) {
    bool was_hit = false;
    auto plan = cache.GetOrCompile(incoming.language, incoming.text,
                                   &was_hit);
    if (!plan.ok()) {  // a real server would return this to the client
      std::printf("rejected %-7s %s\n  -> %s\n",
                  LanguageName(incoming.language), incoming.text,
                  plan.status().ToString().c_str());
      continue;
    }
    plans.push_back(std::move(plan).value());
    cache_hits.push_back(was_hit);
  }
  std::printf("compiled %zu requests through the cache: %llu hits, %llu "
              "misses, %llu canonical aliases\n\n",
              plans.size(), static_cast<unsigned long long>(cache.hits()),
              static_cast<unsigned long long>(cache.misses()),
              static_cast<unsigned long long>(cache.canonical_hits()));

  // --explain: print each plan's compile-time classification, canonical
  // IR + hash, and the cost-ranked routing against one document (the
  // native engine is starred) — then exit without executing anything.
  if (flags.explain) {
    treeq::DocumentPtr sample = store.Get(store.Names().front()).value();
    for (const PlanPtr& plan : plans) {
      std::printf("[%-7s] %s\n  %s\n  %s\n\n",
                  LanguageName(plan->language()),
                  OneLine(plan->text()).c_str(), plan->Explain().c_str(),
                  plan->ExplainRouting(*sample).c_str());
    }
    return 0;
  }

  // 3. Serve every (plan, document) pair on a worker pool.
  Executor executor(Executor::Options{.num_workers = 4});
  std::vector<std::future<treeq::Result<QueryResult>>> futures;
  for (const std::string& name : store.Names()) {
    for (size_t p = 0; p < plans.size(); ++p) {
      SubmitOptions opts;
      opts.plan_cache_hit = cache_hits[p];
      futures.push_back(
          executor.Submit({plans[p], store.Get(name).value(), opts})
              .future);
    }
  }

  size_t i = 0;
  for (const std::string& name : store.Names()) {
    std::printf("-- %s --\n", name.c_str());
    for (const PlanPtr& plan : plans) {
      treeq::Result<QueryResult> r = futures[i++].get();
      std::printf("  [%-7s] %-55.55s => ", LanguageName(plan->language()),
                  OneLine(plan->text()).c_str());
      if (r.ok()) {
        DescribeResult(*r);
      } else {
        std::printf("%s", r.status().ToString().c_str());
      }
      std::printf("\n");
    }
  }

  // 4. The registry saw every request — the workers' shadow counters were
  //    merged before each future became ready.
  std::printf("\n=== serving counters ===\n");
  for (const auto& [name, value] : stats.CounterValues()) {
    if (name.rfind("engine.", 0) == 0) {
      std::printf("%-32s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    }
  }

  // 5. The request-scoped views: the flight recorder's table and the
  //    Prometheus exposition of the whole registry.
  if (flags.flight_recorder > 0) {
    std::printf("\n=== flight recorder ===\n");
    std::ostringstream table;
    treeq::obs::FlightRecorder::Global().DumpTable(table);
    std::fputs(table.str().c_str(), stdout);
  }
  if (!flags.metrics_out.empty()) {
    std::ofstream out(flags.metrics_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", flags.metrics_out.c_str());
      return 1;
    }
    treeq::obs::ExportPrometheus(out);
    std::printf("\nwrote Prometheus metrics to %s\n",
                flags.metrics_out.c_str());
  }
  return 0;
}
