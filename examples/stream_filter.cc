// Selective dissemination of information (the paper's streaming motivation,
// Section 5 / [3, 16]): a broker matches a stream of XML documents against
// a subscription written in XPath, holding only O(depth * |query|) state
// per document — it never builds trees.
//
// The subscription below uses a backward axis; ToForwardXPath (Theorem 5.1
// + [62]) rewrites it into a forward query the streaming matcher accepts.

#include <cstdio>
#include <string>
#include <vector>

#include "stream/sax.h"
#include "stream/stream_eval.h"
#include "xpath/ast.h"
#include "xpath/parser.h"
#include "xpath/to_forward.h"

namespace {

const char* kDocuments[] = {
    // 1: a matching order (contains a rush line item for SKU-7).
    R"(<order id="1"><customer/><items>
         <item sku="SKU-7"><rush/></item>
         <item sku="SKU-9"/></items></order>)",
    // 2: SKU-7 but not rush.
    R"(<order id="2"><items><item sku="SKU-7"/></items></order>)",
    // 3: rush, but a different SKU.
    R"(<order id="3"><items><item sku="SKU-1"><rush/></item></items></order>)",
    // 4: rush SKU-7 deep inside a gift bundle.
    R"(<order id="4"><items><bundle><item sku="SKU-7"><gift/><rush/></item>
       </bundle></items></order>)",
};

}  // namespace

int main() {
  // The subscription, written naturally with a backward axis:
  // rush elements whose parent item sells SKU-7.
  const char* kSubscription = "//rush/parent::item[lab() = \"@sku=SKU-7\"]";
  treeq::Result<std::unique_ptr<treeq::xpath::PathExpr>> query =
      treeq::xpath::ParseXPath(kSubscription);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("subscription:   %s\n", kSubscription);

  treeq::Result<std::unique_ptr<treeq::xpath::PathExpr>> forward =
      treeq::xpath::ToForwardXPath(*query.value());
  if (!forward.ok()) {
    std::fprintf(stderr, "%s\n", forward.status().ToString().c_str());
    return 1;
  }
  std::printf("forward form:   %s\n\n",
              treeq::xpath::ToString(*forward.value()).c_str());

  for (const char* doc : kDocuments) {
    treeq::Result<std::unique_ptr<treeq::stream::StreamMatcher>> matcher =
        treeq::stream::StreamMatcher::Compile(*forward.value());
    if (!matcher.ok()) {
      std::fprintf(stderr, "%s\n", matcher.status().ToString().c_str());
      return 1;
    }
    treeq::Status streamed = treeq::stream::StreamXmlText(
        doc, [&matcher](const treeq::stream::SaxEvent& e) {
          matcher.value()->OnEvent(e);
        });
    if (!streamed.ok()) {
      std::fprintf(stderr, "%s\n", streamed.ToString().c_str());
      return 1;
    }
    const treeq::stream::StreamStats& stats = matcher.value()->stats();
    std::printf("document %.30s...  %s  (peak state: %zu frames x %zu B)\n",
                doc, matcher.value()->Matches() ? "MATCH   " : "no match",
                stats.peak_frames, stats.frame_bytes);
  }
  return 0;
}
