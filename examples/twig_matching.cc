// XML twig pattern matching (Section 6 / [13]): find products that have
// both a five-star rating and a written comment, three ways —
//   1. TwigStack (holistic: all structural joins at once),
//   2. a pipeline of binary structural joins,
//   3. the arc-consistency view of the same problem (Section 6 explains
//      holistic twig joins as arc-consistency + enumeration).
// All three agree; the interesting part is the intermediate-result counts.

#include <cstdio>

#include "cq/arc_consistency.h"
#include "cq/enumerate.h"
#include "cq/twig_join.h"
#include "tree/generator.h"
#include "tree/orders.h"
#include "util/random.h"

int main() {
  treeq::Rng rng(2026);
  treeq::CatalogOptions options;
  options.num_products = 200;
  treeq::Tree doc = treeq::CatalogDocument(&rng, options);
  treeq::TreeOrders orders = treeq::ComputeOrders(doc);
  std::printf("catalog document: %d nodes, depth %d\n", doc.num_nodes(),
              doc.Depth());

  // The twig:  product[.//rating5][.//comment]
  treeq::cq::TwigPattern twig;
  twig.nodes.push_back({"product", treeq::Axis::kDescendant, -1});
  twig.nodes.push_back({"rating5", treeq::Axis::kDescendant, 0});
  twig.nodes.push_back({"comment", treeq::Axis::kDescendant, 0});
  std::printf("twig: product[.//rating5][.//comment]\n\n");

  // 1. TwigStack.
  treeq::cq::TwigStats holistic_stats;
  treeq::Result<treeq::cq::TupleSet> holistic =
      treeq::cq::TwigStackJoin(twig, doc, orders, &holistic_stats);
  if (!holistic.ok()) {
    std::fprintf(stderr, "%s\n", holistic.status().ToString().c_str());
    return 1;
  }
  std::printf("TwigStack:        %5zu matches, %6llu stack pushes, %6llu "
              "path solutions\n",
              holistic.value().size(),
              static_cast<unsigned long long>(
                  holistic_stats.intermediate_results),
              static_cast<unsigned long long>(holistic_stats.path_solutions));

  // 2. Binary structural-join pipeline.
  treeq::cq::TwigStats binary_stats;
  treeq::Result<treeq::cq::TupleSet> binary =
      treeq::cq::TwigByStructuralJoins(twig, doc, orders, &binary_stats);
  std::printf("binary joins:     %5zu matches, %6llu intermediate tuples\n",
              binary.value().size(),
              static_cast<unsigned long long>(
                  binary_stats.intermediate_results));

  // 3. Arc-consistency + backtracking-free enumeration (Figure 6).
  treeq::cq::ConjunctiveQuery query = twig.ToConjunctiveQuery();
  treeq::cq::AcResult ac =
      treeq::cq::ComputeMaxArcConsistent(query, doc, orders);
  treeq::Result<treeq::cq::TupleSet> enumerated =
      treeq::cq::EvaluateAcyclic(query, doc, orders);
  std::printf("AC + enumerate:   %5zu matches; candidate sets:",
              enumerated.value().size());
  for (int v = 0; v < query.num_vars(); ++v) {
    std::printf(" |T(%s)|=%d", query.var_names()[v].c_str(),
                ac.theta[v].size());
  }
  std::printf("\n\n");

  bool agree = holistic.value() == binary.value() &&
               binary.value() == enumerated.value();
  std::printf("all three engines agree: %s\n", agree ? "yes" : "NO (bug!)");

  // Show a few matches.
  std::printf("first matches (product, rating5, comment):\n");
  for (size_t i = 0; i < holistic.value().size() && i < 5; ++i) {
    const auto& m = holistic.value()[i];
    std::printf("  (%d, %d, %d)\n", m[0], m[1], m[2]);
  }
  return agree ? 0 : 1;
}
