// Quickstart: parse a document, run the main query engines, print results.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart

#include <cstdio>
#include <string>

#include "cq/enumerate.h"
#include "cq/parser.h"
#include "datalog/evaluator.h"
#include "datalog/parser.h"
#include "tree/orders.h"
#include "tree/tree.h"
#include "tree/xml.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace {

constexpr const char* kDocument = R"(
<library>
  <shelf topic="databases">
    <book year="1995"><title/><author name="abiteboul"/></book>
    <book year="2002"><title/><author name="gottlob"/><author name="koch"/></book>
  </shelf>
  <shelf topic="logic">
    <book year="1999"><title/><author name="immerman"/></book>
  </shelf>
</library>
)";

void PrintNodes(const treeq::Tree& tree, const std::vector<treeq::NodeId>& nodes) {
  for (treeq::NodeId n : nodes) {
    std::printf("  node %d:", n);
    for (treeq::LabelId l : tree.labels(n)) {
      std::printf(" %s", tree.label_table().Name(l).c_str());
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  // 1. Parse the document into an unranked ordered labeled tree.
  treeq::Result<treeq::Tree> parsed = treeq::ParseXml(kDocument);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  const treeq::Tree& tree = parsed.value();
  treeq::TreeOrders orders = treeq::ComputeOrders(tree);
  std::printf("document with %d nodes, depth %d:\n%s\n", tree.num_nodes(),
              tree.Depth(), ToOutline(tree).c_str());

  // 2. Core XPath, evaluated set-at-a-time in O(|D| * |Q|).
  auto xp = treeq::xpath::ParseXPath("//book[author]/author").value();
  treeq::NodeSet authors = treeq::xpath::EvalQueryFromRoot(tree, orders, *xp);
  std::printf("XPath //book[author]/author selects %d nodes:\n",
              authors.size());
  PrintNodes(tree, authors.ToVector());

  // 3. Monadic datalog via TMNF + grounding + Minoux' algorithm
  //    (Theorem 3.2): books on a databases shelf.
  auto program = treeq::datalog::ParseProgram(R"(
    DbShelf(x)  :- Lab_shelf(x), Label("@topic=databases", x).
    DbBook(x)   :- Child(y, x), DbShelf(y), Lab_book(x).
    ?- DbBook.
  )").value();
  treeq::Result<treeq::NodeSet> db_books =
      treeq::datalog::EvaluateDatalog(program, tree);
  std::printf("\ndatalog DbBook selects %d nodes:\n", db_books.value().size());
  PrintNodes(tree, db_books.value().ToVector());

  // 4. A conjunctive query evaluated with the full reducer + the Figure 6
  //    enumerator (Yannakakis / Proposition 6.10): (shelf, author) pairs.
  auto cq = treeq::cq::ParseCq(
      "Q(s, a) :- Child+(s, a), Lab_shelf(s), Lab_author(a).").value();
  treeq::Result<treeq::cq::TupleSet> pairs =
      treeq::cq::EvaluateAcyclic(cq, tree, orders);
  std::printf("\nCQ (shelf, author) has %zu result tuples:\n",
              pairs.value().size());
  for (const auto& tuple : pairs.value()) {
    std::printf("  (%d, %d)\n", tuple[0], tuple[1]);
  }
  return 0;
}
