#ifndef TREEQ_UTIL_TASK_RUNNER_H_
#define TREEQ_UTIL_TASK_RUNNER_H_

#include <cstdint>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

/// \file task_runner.h
/// The fork-join seam between the parallel kernels (tree/par_axes.h,
/// storage/par_join.h, cq/par_twig.h) and whatever executes their partition
/// tasks. The kernels only ever need one operation — "run these closures,
/// all of them, and return when every one has finished" — so that is the
/// whole interface. The engine plugs in a TaskGroupRunner backed by its
/// worker pool (engine/task_group.h, with help-running so nested tasks
/// cannot deadlock the bounded queue); tests and benches use the two
/// trivial implementations below.
///
/// Contract for RunAll:
///   - every task is invoked exactly once, on an unspecified thread
///     (possibly the calling thread);
///   - RunAll returns only after all tasks have returned (a join barrier:
///     writes made by the tasks happen-before the return);
///   - tasks must not call RunAll recursively (single fork level — the
///     partition kernels never nest) and must not throw.

namespace treeq {
namespace par {

class TaskRunner {
 public:
  virtual ~TaskRunner() = default;

  /// Runs every task and joins. See the file comment for the contract.
  virtual void RunAll(std::vector<std::function<void()>> tasks) = 0;
};

/// Runs the tasks inline on the calling thread, in order. The degenerate
/// degree-1 runner: useful as a stand-in where a TaskRunner is required but
/// parallel execution is not wanted (and in tests, to pin scheduling).
class SerialRunner : public TaskRunner {
 public:
  void RunAll(std::vector<std::function<void()>> tasks) override {
    for (auto& task : tasks) task();
  }
};

/// Spawns one std::thread per task and joins them. No pooling, no queue —
/// the simplest possibly-parallel runner, used by the kernel differential
/// tests and the scaling bench so they exercise true cross-thread execution
/// without standing up an Executor.
class ThreadPerTaskRunner : public TaskRunner {
 public:
  void RunAll(std::vector<std::function<void()>> tasks) override {
    if (tasks.empty()) return;
    if (tasks.size() == 1) {
      tasks[0]();
      return;
    }
    std::vector<std::thread> threads;
    threads.reserve(tasks.size() - 1);
    for (size_t i = 1; i < tasks.size(); ++i) {
      threads.emplace_back(std::move(tasks[i]));
    }
    tasks[0]();  // the caller is a worker too
    for (std::thread& t : threads) t.join();
  }
};

/// How a partition kernel should fork. The degenerate default (parallelism
/// 0, no runner) makes every kernel take its serial path, so a ParOptions
/// can be threaded unconditionally.
struct ParOptions {
  /// Partition degree; values < 2 mean "do not fork".
  int parallelism = 0;
  /// Executes the partition tasks; required when parallelism >= 2.
  TaskRunner* runner = nullptr;
  /// Inputs smaller than this run the serial kernel inline: forking has a
  /// fixed cost (closures, child contexts, merge pass) that only pays off
  /// on large inputs.
  int min_context = 1024;
};

/// Per-call attribution of one parallel stage, summed over stages by the
/// evaluators and surfaced in QueryResult / QueryProfile as
/// `partitions` / `parallel_ns` / `merge_ns`.
struct ParStats {
  /// Partition degree of the widest fork performed (0 = never forked).
  int partitions = 0;
  /// Wall time spent inside RunAll (fork + kernels + join), summed.
  uint64_t parallel_ns = 0;
  /// Wall time spent OR-merging / concatenating partial results, summed.
  uint64_t merge_ns = 0;

  void Accumulate(const ParStats& other) {
    if (other.partitions > partitions) partitions = other.partitions;
    parallel_ns += other.parallel_ns;
    merge_ns += other.merge_ns;
  }
};

}  // namespace par
}  // namespace treeq

#endif  // TREEQ_UTIL_TASK_RUNNER_H_
