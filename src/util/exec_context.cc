#include "util/exec_context.h"

#include <string>

#include "fault/fault.h"
#include "obs/obs.h"

namespace treeq {

const ExecContext& ExecContext::Unbounded() {
  static const ExecContext* const kUnbounded = new ExecContext();
  return *kUnbounded;
}

ExecContext::ExecContext(Limits limits)
    : limits_(limits),
      limited_(limits.deadline != Clock::time_point::max() ||
               limits.visit_budget != UINT64_MAX ||
               limits.memory_budget != UINT64_MAX) {}

ExecContext ExecContext::WithDeadline(Clock::duration timeout) {
  Limits limits;
  limits.deadline = Clock::now() + timeout;
  return ExecContext(limits);
}

ExecContext ExecContext::WithVisitBudget(uint64_t visits) {
  Limits limits;
  limits.visit_budget = visits;
  return ExecContext(limits);
}

std::shared_ptr<ExecContext> ExecContext::Fork(uint64_t visit_share,
                                               uint64_t memory_share) const {
  Limits limits;
  limits.deadline = limits_.deadline;
  limits.visit_budget = visit_share;
  limits.memory_budget = memory_share;
  auto child = std::make_shared<ExecContext>(limits);
  child->parent_ = this;
  // Force the slow charge path even for unlimited shares: that is where
  // the parent's cancellation / sticky abort is observed.
  child->limited_ = true;
  TREEQ_OBS_INC("exec.forks");
  return child;
}

uint64_t ExecContext::RemainingVisits() const {
  if (limits_.visit_budget == UINT64_MAX) return UINT64_MAX;
  const uint64_t used = visits_used_.load(std::memory_order_relaxed);
  return limits_.visit_budget > used ? limits_.visit_budget - used : 0;
}

uint64_t ExecContext::RemainingMemory() const {
  if (limits_.memory_budget == UINT64_MAX) return UINT64_MAX;
  const uint64_t used = memory_used_.load(std::memory_order_relaxed);
  return limits_.memory_budget > used ? limits_.memory_budget - used : 0;
}

void ExecContext::AbsorbChildUsage(const ExecContext& child) const {
  visits_used_.fetch_add(child.visits_used(), std::memory_order_relaxed);
  memory_used_.fetch_add(child.memory_used(), std::memory_order_relaxed);
}

Status ExecContext::ChargeSlow(uint64_t units) const {
  AbortKind aborted = abort_.load(std::memory_order_relaxed);
  if (aborted != AbortKind::kNone) return AbortStatus(aborted);
  if (cancelled_.load(std::memory_order_relaxed)) {
    return Trip(AbortKind::kCancelled);
  }
  // Cancellation fan-out: a cancelled or tripped parent stops every child
  // at its next charge (children are always limited_, so this runs).
  if (parent_ != nullptr && (parent_->cancelled() || parent_->expired())) {
    return Trip(AbortKind::kCancelled);
  }
  // Injected limit trips route through the real sticky-abort machinery —
  // identical counters, identical Status rendering, identical fan-out to
  // forked children — so a storm exercises the genuine failure paths.
  // Guarded on limited_: the shared Unbounded() context must never trip.
  if (limited_) {
    if (TREEQ_FAULT_FIRED("exec.budget.charge")) {
      return Trip(AbortKind::kVisitBudget);
    }
    if (TREEQ_FAULT_FIRED("exec.deadline.check")) {
      return Trip(AbortKind::kDeadline);
    }
  }
  uint64_t before = visits_used_.fetch_add(units, std::memory_order_relaxed);
  uint64_t after = before + units;
  if (after > limits_.visit_budget || after < before /*overflow*/) {
    visits_used_.store(limits_.visit_budget, std::memory_order_relaxed);
    return Trip(AbortKind::kVisitBudget);
  }
  // Read the clock on the first charge and once per stride thereafter, so
  // the common path costs two relaxed atomic ops and no syscall.
  if (limits_.deadline != Clock::time_point::max() &&
      (before == 0 || before / kDeadlineStride != after / kDeadlineStride)) {
    if (Clock::now() >= limits_.deadline) return Trip(AbortKind::kDeadline);
  }
  return Status::OK();
}

Status ExecContext::ChargeMemory(uint64_t bytes) const {
  AbortKind aborted = abort_.load(std::memory_order_relaxed);
  if (aborted != AbortKind::kNone) return AbortStatus(aborted);
  if (cancelled_.load(std::memory_order_relaxed)) {
    return Trip(AbortKind::kCancelled);
  }
  if (parent_ != nullptr && (parent_->cancelled() || parent_->expired())) {
    return Trip(AbortKind::kCancelled);
  }
  if (limited_ && TREEQ_FAULT_FIRED("exec.memory.charge")) {
    return Trip(AbortKind::kMemoryBudget);
  }
  uint64_t before = memory_used_.fetch_add(bytes, std::memory_order_relaxed);
  uint64_t after = before + bytes;
  if (after > limits_.memory_budget || after < before) {
    return Trip(AbortKind::kMemoryBudget);
  }
  return Status::OK();
}

Status ExecContext::CheckNow() const {
  AbortKind aborted = abort_.load(std::memory_order_relaxed);
  if (aborted != AbortKind::kNone) return AbortStatus(aborted);
  if (cancelled_.load(std::memory_order_relaxed)) {
    return Trip(AbortKind::kCancelled);
  }
  if (parent_ != nullptr && (parent_->cancelled() || parent_->expired())) {
    return Trip(AbortKind::kCancelled);
  }
  if (limited_ && limits_.deadline != Clock::time_point::max() &&
      Clock::now() >= limits_.deadline) {
    return Trip(AbortKind::kDeadline);
  }
  return Status::OK();
}

Status ExecContext::Trip(AbortKind kind) const {
  AbortKind expected = AbortKind::kNone;
  if (abort_.compare_exchange_strong(expected, kind,
                                     std::memory_order_relaxed)) {
    // First trip only: count the abort cause and the partial progress the
    // evaluation made before it stopped.
    switch (kind) {
      case AbortKind::kCancelled:
        TREEQ_OBS_INC("exec.cancelled");
        break;
      case AbortKind::kDeadline:
        TREEQ_OBS_INC("exec.deadline_exceeded");
        break;
      case AbortKind::kVisitBudget:
      case AbortKind::kMemoryBudget:
        TREEQ_OBS_INC("exec.budget_exhausted");
        break;
      case AbortKind::kNone:
        break;
    }
    TREEQ_OBS_HISTOGRAM("exec.visits_at_abort", visits_used());
    return AbortStatus(kind);
  }
  return AbortStatus(expected);  // some other thread tripped first
}

Status ExecContext::AbortStatus(AbortKind kind) const {
  switch (kind) {
    case AbortKind::kCancelled:
      return CancelledError();
    case AbortKind::kDeadline:
      return Status::DeadlineExceeded(
          "evaluation deadline exceeded after " +
          std::to_string(visits_used()) + " visits");
    case AbortKind::kVisitBudget:
      return Status::ResourceExhausted(
          "visit budget of " + std::to_string(limits_.visit_budget) +
          " exhausted");
    case AbortKind::kMemoryBudget:
      return Status::ResourceExhausted(
          "memory budget of " + std::to_string(limits_.memory_budget) +
          " bytes exhausted");
    case AbortKind::kNone:
      break;
  }
  return Status::OK();
}

Status ExecContext::CancelledError() const {
  return Status::Cancelled("evaluation cancelled by caller");
}

}  // namespace treeq
