#include "util/random.h"

#include <algorithm>

#include "util/status.h"

namespace treeq {

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  TREEQ_CHECK(lo <= hi);
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::UniformReal() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  std::bernoulli_distribution dist(std::clamp(p, 0.0, 1.0));
  return dist(engine_);
}

int Rng::Fanout(double mean_fanout, int cap) {
  TREEQ_CHECK(mean_fanout > 0.0 && cap >= 1);
  // Geometric with success probability 1/(1+mean) has mean `mean_fanout`.
  std::geometric_distribution<int> dist(1.0 / (1.0 + mean_fanout));
  return std::min(dist(engine_), cap);
}

}  // namespace treeq
