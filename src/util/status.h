#ifndef TREEQ_UTIL_STATUS_H_
#define TREEQ_UTIL_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <utility>

/// \file status.h
/// Error handling for treeq. Library code does not throw exceptions; fallible
/// operations return a `Status` or a `Result<T>` (a value-or-status sum),
/// following the Arrow/RocksDB idiom.

namespace treeq {

/// Machine-readable category of an error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kNotFound,
  kUnsupported,
  kInternal,
  kUnavailable,
  kDeadlineExceeded,
  kResourceExhausted,
  kCancelled,
};

/// Returns a short human-readable name for `code` ("OK", "InvalidArgument",
/// ...).
const char* StatusCodeName(StatusCode code);

/// An OK-or-error outcome with an optional message. Cheap to copy when OK.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// A resource that exists but is not currently serving (e.g. submitting
  /// to an executor that has shut down, or one whose admission queue is
  /// saturated).
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  /// An evaluation ran past its wall-clock deadline (util/exec_context.h).
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// An evaluation exhausted a deterministic resource budget (node visits,
  /// memory) before completing.
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  /// The caller cancelled the evaluation cooperatively.
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value of type T or an error Status. Accessing the value of an errored
/// Result is a programmer error and aborts.
template <typename T>
class Result {
 public:
  /// Implicit so functions can `return value;` and `return status;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      std::cerr << "Result constructed from OK status\n";
      std::abort();
    }
  }
  /// Convenience error construction; passing kOk is a programmer error
  /// (a Result holding no value must carry a real error) and aborts.
  Result(StatusCode code, std::string message)
      : Result(Status(code, std::move(message))) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(*value_);
  }

  /// The held value, or `default_value` when this Result is an error.
  T value_or(T default_value) const& {
    return ok() ? *value_ : std::move(default_value);
  }
  T value_or(T default_value) && {
    return ok() ? std::move(*value_) : std::move(default_value);
  }

  /// optional-style access. Like value(), aborts on an errored Result.
  const T& operator*() const& {
    CheckOk();
    return *value_;
  }
  T& operator*() & {
    CheckOk();
    return *value_;
  }
  T&& operator*() && {
    CheckOk();
    return std::move(*value_);
  }
  const T* operator->() const {
    CheckOk();
    return &*value_;
  }
  T* operator->() {
    CheckOk();
    return &*value_;
  }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::cerr << "Result::value() on error: " << status_.ToString() << "\n";
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace treeq

/// Propagates a non-OK Status from the enclosing function.
#define TREEQ_RETURN_IF_ERROR(expr)          \
  do {                                       \
    ::treeq::Status _treeq_status = (expr);  \
    if (!_treeq_status.ok()) return _treeq_status; \
  } while (0)

#define TREEQ_CONCAT_IMPL(a, b) a##b
#define TREEQ_CONCAT(a, b) TREEQ_CONCAT_IMPL(a, b)

/// Evaluates `rexpr` (a Result<T>), propagating an error or binding the value
/// to `lhs`.
#define TREEQ_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  auto TREEQ_CONCAT(_treeq_result_, __LINE__) = (rexpr);          \
  if (!TREEQ_CONCAT(_treeq_result_, __LINE__).ok())               \
    return TREEQ_CONCAT(_treeq_result_, __LINE__).status();       \
  lhs = std::move(TREEQ_CONCAT(_treeq_result_, __LINE__)).value()

/// Aborts with a message if `cond` is false. For invariants that indicate a
/// bug in treeq itself (not bad user input).
#define TREEQ_CHECK(cond)                                                 \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::cerr << "TREEQ_CHECK failed at " << __FILE__ << ":" << __LINE__ \
                << ": " #cond "\n";                                       \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#endif  // TREEQ_UTIL_STATUS_H_
