#ifndef TREEQ_UTIL_EXEC_CONTEXT_H_
#define TREEQ_UTIL_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "util/status.h"

/// \file exec_context.h
/// Cooperative cancellation and resource budgets for query evaluation.
///
/// The paper's central result is that the polynomial/exponential boundary
/// for queries over trees is sharp (Theorems 3.2, 6.8): some inputs are
/// provably expensive, and a serving engine must bound and cancel rather
/// than hope. An `ExecContext` is created per request (engine/executor.h)
/// and threaded through every evaluator; the evaluators call `Charge()` at
/// loop granularity — once per axis operation, stream event, fixpoint rule
/// firing, stack push, enumerated tuple — and abort with
/// `Status::DeadlineExceeded` / `ResourceExhausted` / `Cancelled` as soon
/// as a limit trips.
///
/// Budget semantics:
///   - `visit_budget` is a *deterministic* work budget: the number of
///     charge units (roughly node visits) the evaluation may spend. Unit
///     tests use it to pin budget enforcement without wall clocks.
///   - `deadline` is a wall-clock bound, checked every `kDeadlineStride`
///     charge units so the steady_clock read stays off the per-visit path.
///   - `memory_budget` bounds bytes of evaluator-allocated intermediate
///     state, charged via `ChargeMemory` at allocation sites.
///
/// Thread safety: `Charge`/`ChargeMemory` may be called from the evaluating
/// thread while any other thread calls `Cancel()`; all state is atomic.
/// Once a limit trips the context is sticky — every later charge returns
/// the same error — so deep evaluator recursions unwind promptly.
///
/// Parallel stages fork child contexts with `Fork()`: the child gets the
/// parent's deadline, its own share of the remaining visit/memory budgets,
/// and a back-pointer for cancellation fan-out — a `Cancel()` (or sticky
/// abort) on the parent makes every child's next charge fail. After the
/// join barrier the parent absorbs the children's spend with
/// `AbsorbChildUsage` (non-tripping: reconciliation never aborts by
/// itself; the parent's *next* charge sees the combined total).
///
/// The shared `ExecContext::Unbounded()` context never trips and its fast
/// path performs no writes, so pre-existing unlimited entry points cost one
/// predictable branch per charge site.

namespace treeq {

class ExecContext {
 public:
  using Clock = std::chrono::steady_clock;

  /// Resource limits for one evaluation. Defaults are all "unlimited".
  struct Limits {
    /// Absolute wall-clock deadline; Clock::time_point::max() = none.
    Clock::time_point deadline = Clock::time_point::max();
    /// Charge units the evaluation may spend; UINT64_MAX = unlimited.
    uint64_t visit_budget = UINT64_MAX;
    /// Bytes of intermediate state the evaluation may hold.
    uint64_t memory_budget = UINT64_MAX;
  };

  /// How many charge units elapse between wall-clock deadline checks.
  static constexpr uint64_t kDeadlineStride = 256;

  /// An unbounded context: never expires, cheap to check. Do not Cancel()
  /// it — it is shared by every caller that passes no context.
  static const ExecContext& Unbounded();

  ExecContext() = default;
  explicit ExecContext(Limits limits);

  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  /// Convenience factories.
  static ExecContext WithDeadline(Clock::duration timeout);
  static ExecContext WithVisitBudget(uint64_t visits);

  /// Child context for one partition of a forked parallel stage: inherits
  /// this context's deadline, gets `visit_share` / `memory_share` as its own
  /// budgets (UINT64_MAX = unlimited), and observes this context's
  /// cancellation and sticky aborts on every charge. The parent must
  /// outlive the child (the fork-join kernels join before returning).
  std::shared_ptr<ExecContext> Fork(uint64_t visit_share,
                                    uint64_t memory_share) const;

  /// Visit / memory budget still unspent (UINT64_MAX when unlimited).
  /// Parallel stages divide these across partitions before forking.
  uint64_t RemainingVisits() const;
  uint64_t RemainingMemory() const;

  /// Adds a joined child's spend to this context's usage without tripping
  /// any limit: the merge itself always completes, and the reconciled total
  /// is enforced by the parent's next Charge.
  void AbsorbChildUsage(const ExecContext& child) const;

  const Limits& limits() const { return limits_; }
  bool has_limits() const { return limited_; }

  /// Requests cooperative cancellation: the next Charge() on any thread
  /// returns Status::Cancelled. Safe to call from any thread, repeatedly.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Spends `units` of the visit budget and checks cancellation (always)
  /// and the deadline (every kDeadlineStride units). Returns OK or the
  /// sticky abort status. Called at loop granularity by every evaluator.
  Status Charge(uint64_t units = 1) const {
    if (!limited_ && !cancelled_.load(std::memory_order_relaxed)) {
      return Status::OK();
    }
    return ChargeSlow(units);
  }

  /// Spends `bytes` of the memory budget (no deadline check).
  Status ChargeMemory(uint64_t bytes) const;

  /// Re-checks cancellation and the deadline without spending budget (for
  /// stage boundaries where work was already charged).
  Status CheckNow() const;

  /// Charge units spent so far (partial progress at abort time).
  uint64_t visits_used() const {
    return visits_used_.load(std::memory_order_relaxed);
  }
  uint64_t memory_used() const {
    return memory_used_.load(std::memory_order_relaxed);
  }

  /// True once a Charge/CheckNow has returned non-OK (or Cancel was
  /// observed). Later charges keep returning the same error.
  bool expired() const {
    return abort_.load(std::memory_order_relaxed) != AbortKind::kNone;
  }

 private:
  enum class AbortKind : int {
    kNone = 0,
    kCancelled,
    kDeadline,
    kVisitBudget,
    kMemoryBudget,
  };

  Status ChargeSlow(uint64_t units) const;
  /// Records the first abort cause (incrementing its obs counter exactly
  /// once) and renders the matching Status.
  Status Trip(AbortKind kind) const;
  Status AbortStatus(AbortKind kind) const;
  Status CancelledError() const;

  Limits limits_;
  bool limited_ = false;
  /// Set only on forked children; checked in the slow charge paths so a
  /// parent Cancel()/abort fans out. Children are always `limited_`, so
  /// every child charge takes the slow path and sees the parent state.
  const ExecContext* parent_ = nullptr;
  std::atomic<bool> cancelled_{false};
  mutable std::atomic<uint64_t> visits_used_{0};
  mutable std::atomic<uint64_t> memory_used_{0};
  mutable std::atomic<AbortKind> abort_{AbortKind::kNone};
};

/// Shared handle used by the engine: the submitter keeps one reference (to
/// Cancel) while the worker evaluates with another.
using ExecContextPtr = std::shared_ptr<ExecContext>;

}  // namespace treeq

#endif  // TREEQ_UTIL_EXEC_CONTEXT_H_
