#ifndef TREEQ_UTIL_RANDOM_H_
#define TREEQ_UTIL_RANDOM_H_

#include <cstdint>
#include <random>

/// \file random.h
/// Deterministic random number generation used by the tree/query generators
/// and the property tests. All randomness in treeq flows through `Rng` so
/// tests are reproducible from a seed.

namespace treeq {

/// A seeded pseudo-random source (Mersenne Twister under the hood).
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformReal();

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// Geometric-ish fanout draw: number of children with mean roughly
  /// `mean_fanout`, capped at `cap`.
  int Fanout(double mean_fanout, int cap);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace treeq

#endif  // TREEQ_UTIL_RANDOM_H_
