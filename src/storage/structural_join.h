#ifndef TREEQ_STORAGE_STRUCTURAL_JOIN_H_
#define TREEQ_STORAGE_STRUCTURAL_JOIN_H_

#include <utility>
#include <vector>

#include "tree/orders.h"
#include "tree/tree.h"

/// \file structural_join.h
/// Structural joins ([2], Section 2): given two lists of nodes A ("ancestor
/// candidates") and D ("descendant candidates"), compute all pairs (a, d)
/// with a an ancestor (or parent) of d. The stack-based merge algorithm runs
/// in O(|A| + |D| + |output|) on document-ordered inputs; the nested-loop
/// baseline is O(|A| * |D|).

namespace treeq {

/// A node's structural coordinates: pre rank, end of subtree in pre ranks,
/// and depth (depth is needed only for parent-child joins).
struct JoinItem {
  int pre = 0;
  int end = 0;  // SubtreeEndPre: pre + subtree size
  int depth = 0;
  NodeId node = kNullNode;
};

/// Builds join input items for `nodes`, sorted by document order.
std::vector<JoinItem> MakeJoinItems(const TreeOrders& orders,
                                    const std::vector<NodeId>& nodes);

/// Builds join input items for all nodes carrying `label`. One arena scan +
/// sort per call; when joining on several labels of one document, build a
/// LabelIndex (tree/label_index.h) instead and borrow its Items(label)
/// streams — one scan, already sorted.
std::vector<JoinItem> MakeJoinItemsForLabel(const Tree& tree,
                                            const TreeOrders& orders,
                                            LabelId label);

/// Ancestor-descendant (or parent-child, if `parent_child`) structural join
/// via the stack-tree merge of [2]. Inputs must be sorted by `pre`
/// (MakeJoinItems guarantees this). Returns (ancestor, descendant) node
/// pairs, grouped by descendant in document order.
std::vector<std::pair<NodeId, NodeId>> StackTreeJoin(
    const std::vector<JoinItem>& ancestors,
    const std::vector<JoinItem>& descendants, bool parent_child);

/// Nested-loop baseline with identical output contract (modulo order).
std::vector<std::pair<NodeId, NodeId>> NestedLoopJoin(
    const std::vector<JoinItem>& ancestors,
    const std::vector<JoinItem>& descendants, bool parent_child);

}  // namespace treeq

#endif  // TREEQ_STORAGE_STRUCTURAL_JOIN_H_
