#ifndef TREEQ_STORAGE_DEWEY_H_
#define TREEQ_STORAGE_DEWEY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tree/tree.h"
#include "util/status.h"

/// \file dewey.h
/// ORDPATH-style Dewey node labels ([63], Section 2's discussion of labeling
/// and indexing schemes). A node's label is a sequence of integers; each
/// tree level contributes one *chunk* of the form even* odd (the even
/// components are "carets" created by insertions and do not add depth).
///
/// Properties realized here:
///   - document order  = lexicographic order of labels,
///   - depth           = number of odd components (chunks),
///   - ancestor(a, b)  = a's chunk sequence is a proper prefix of b's,
///   - insert-friendliness: a new sibling label strictly between any two
///     existing sibling labels can be generated without relabeling anything
///     (OrdpathBetween / OrdpathBefore / OrdpathAfter).

namespace treeq {

/// A full node label (concatenation of per-level chunks).
using OrdpathLabel = std::vector<int64_t>;

/// Lexicographic comparison; equals document order. Returns <0, 0, >0.
int OrdpathCompare(const OrdpathLabel& a, const OrdpathLabel& b);

/// Number of chunks == depth below the root (the root has the empty label).
int OrdpathDepth(const OrdpathLabel& label);

/// True iff `a` is a proper ancestor of `b`.
bool OrdpathIsAncestor(const OrdpathLabel& a, const OrdpathLabel& b);

/// True iff `b` is a child of `a`.
bool OrdpathIsChild(const OrdpathLabel& a, const OrdpathLabel& b);

/// True iff a and b are siblings (same parent chunk prefix) with b after a.
bool OrdpathIsFollowingSibling(const OrdpathLabel& a, const OrdpathLabel& b);

/// True iff Following(a, b) in the paper's sense: a before b in document
/// order and disjoint subtrees.
bool OrdpathIsFollowing(const OrdpathLabel& a, const OrdpathLabel& b);

/// True iff `chunk` is a single valid level ordinal: even* odd, nonempty.
bool OrdpathIsValidChunk(const std::vector<int64_t>& chunk);

/// A chunk strictly smaller than `chunk` (insert before the first sibling).
std::vector<int64_t> OrdpathBefore(const std::vector<int64_t>& chunk);

/// A chunk strictly greater than `chunk` (insert after the last sibling).
std::vector<int64_t> OrdpathAfter(const std::vector<int64_t>& chunk);

/// A chunk strictly between two distinct sibling chunks a < b.
std::vector<int64_t> OrdpathBetween(const std::vector<int64_t>& a,
                                    const std::vector<int64_t>& b);

/// "1.3.5" rendering for debugging.
std::string OrdpathToString(const OrdpathLabel& label);

/// The ORDPATH labeling of a whole tree: initial chunks are 1, 3, 5, ...
/// per the ORDPATH convention (leaving even gaps for future inserts).
class DeweyLabeling {
 public:
  /// Labels every node of `tree` in O(total label length).
  static DeweyLabeling Build(const Tree& tree);

  const OrdpathLabel& label(NodeId n) const { return labels_[n]; }
  int num_nodes() const { return static_cast<int>(labels_.size()); }

  /// Generates a label for a fresh node inserted as a child of `parent`
  /// between existing children `left` and `right` (either may be kNullNode
  /// for "at the edge"). The labeling stores the new label and returns its
  /// dense id. Existing labels never change.
  Result<int> InsertChild(NodeId parent, NodeId left, NodeId right);

 private:
  std::vector<OrdpathLabel> labels_;
};

}  // namespace treeq

#endif  // TREEQ_STORAGE_DEWEY_H_
