#include "storage/xasr.h"

#include <algorithm>
#include <set>

namespace treeq {

Xasr Xasr::Build(const Tree& tree, const TreeOrders& orders) {
  Xasr xasr;
  const int n = tree.num_nodes();
  xasr.rows_.resize(n);
  xasr.node_at_pre_.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    XasrRow& row = xasr.rows_[orders.pre[v]];
    row.pre = orders.pre[v];
    row.post = orders.post[v];
    row.parent_pre = tree.parent(v) == kNullNode
                         ? XasrRow::kNoParent
                         : orders.pre[tree.parent(v)];
    row.label = tree.label(v);
    xasr.node_at_pre_[orders.pre[v]] = v;
  }
  return xasr;
}

std::vector<std::pair<int, int>> Xasr::DescendantView() const {
  std::vector<std::pair<int, int>> out;
  for (const XasrRow& r1 : rows_) {
    for (const XasrRow& r2 : rows_) {
      if (r1.pre < r2.pre && r2.post < r1.post) {
        out.emplace_back(r1.pre, r2.pre);
      }
    }
  }
  return out;
}

std::vector<std::pair<int, int>> Xasr::ChildView() const {
  std::vector<std::pair<int, int>> out;
  for (const XasrRow& r : rows_) {
    if (r.parent_pre != XasrRow::kNoParent) {
      out.emplace_back(r.parent_pre, r.pre);
    }
  }
  return out;
}

std::vector<int> Xasr::PresWithLabel(LabelId label) const {
  std::vector<int> out;
  for (const XasrRow& r : rows_) {
    if (r.label == label) out.push_back(r.pre);
  }
  return out;
}

std::vector<std::pair<int, int>> DescendantByIteratedJoins(const Xasr& xasr) {
  // closure := Child; repeat closure := closure ∪ (closure ⋈ Child) until no
  // change. Deliberately the naive relational plan.
  std::vector<std::pair<int, int>> child = xasr.ChildView();
  std::set<std::pair<int, int>> closure(child.begin(), child.end());
  // Index Child by first column for the join.
  std::vector<std::vector<int>> child_of(xasr.num_rows());
  for (const auto& [p, c] : child) child_of[p].push_back(c);

  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<std::pair<int, int>> additions;
    for (const auto& [a, b] : closure) {
      for (int c : child_of[b]) {
        if (!closure.count({a, c})) additions.emplace_back(a, c);
      }
    }
    for (const auto& p : additions) {
      if (closure.insert(p).second) changed = true;
    }
  }
  return {closure.begin(), closure.end()};
}

}  // namespace treeq
