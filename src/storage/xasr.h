#ifndef TREEQ_STORAGE_XASR_H_
#define TREEQ_STORAGE_XASR_H_

#include <utility>
#include <vector>

#include "tree/orders.h"
#include "tree/tree.h"

/// \file xasr.h
/// The eXtended Access Support Relation of Figure 2 ([27]): one tuple
/// (pre, post, parent_pre, label) per node, the relational storage scheme on
/// which structural joins run. Ranks are 0-based (the paper uses 1-based).
///
/// The two SQL views of Example 2.1 are provided as methods:
///   descendant: SELECT r1.pre, r2.pre FROM R r1, R r2
///               WHERE r1.pre < r2.pre AND r2.post < r1.post
///   child:      SELECT parent_pre, pre FROM R WHERE parent_pre IS NOT NULL

namespace treeq {

/// One XASR tuple. `parent_pre` is kNoParent for the root. `label` is the
/// node's first label (kNullLabel if unlabeled).
struct XasrRow {
  int pre = 0;
  int post = 0;
  int parent_pre = -1;
  LabelId label = kNullLabel;

  static constexpr int kNoParent = -1;
};

/// The XASR of a tree: rows sorted by `pre` (document order), so row i has
/// pre == i.
class Xasr {
 public:
  /// Builds the relation from a tree in O(n).
  static Xasr Build(const Tree& tree, const TreeOrders& orders);

  int num_rows() const { return static_cast<int>(rows_.size()); }
  const XasrRow& row(int pre) const { return rows_[pre]; }
  const std::vector<XasrRow>& rows() const { return rows_; }

  /// Node id of the row with the given pre rank.
  NodeId NodeAt(int pre) const { return node_at_pre_[pre]; }

  /// The `descendant` view: all (ancestor_pre, descendant_pre) pairs via the
  /// theta-join of Example 2.1. O(n^2) evaluation, quadratic output — this
  /// is the single structural join the paper contrasts with repeated
  /// relational joins.
  std::vector<std::pair<int, int>> DescendantView() const;

  /// The `child` view: all (parent_pre, child_pre) pairs. O(n).
  std::vector<std::pair<int, int>> ChildView() const;

  /// Pre ranks of rows with the given label, sorted (a "label index" scan).
  std::vector<int> PresWithLabel(LabelId label) const;

  /// Size of the representation in machine words (the O(||A|| log |A|)
  /// argument of Section 2).
  size_t SizeInWords() const { return rows_.size() * 4; }

 private:
  std::vector<XasrRow> rows_;
  std::vector<NodeId> node_at_pre_;
};

/// Strawman the paper argues against: computes Child+ by iterating joins of
/// the Child relation to a fixpoint (an "arbitrary number of joins in an
/// RDBMS"). Returns (ancestor_pre, descendant_pre) pairs. Used as the
/// baseline in bench_fig2_xasr.
std::vector<std::pair<int, int>> DescendantByIteratedJoins(const Xasr& xasr);

}  // namespace treeq

#endif  // TREEQ_STORAGE_XASR_H_
