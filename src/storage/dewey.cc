#include "storage/dewey.h"

#include <algorithm>

namespace treeq {

int OrdpathCompare(const OrdpathLabel& a, const OrdpathLabel& b) {
  size_t k = std::min(a.size(), b.size());
  for (size_t i = 0; i < k; ++i) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

namespace {
bool IsOdd(int64_t x) { return ((x % 2) + 2) % 2 == 1; }
}  // namespace

int OrdpathDepth(const OrdpathLabel& label) {
  int depth = 0;
  for (int64_t c : label) {
    if (IsOdd(c)) ++depth;
  }
  return depth;
}

bool OrdpathIsAncestor(const OrdpathLabel& a, const OrdpathLabel& b) {
  if (a.size() >= b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  // A chunk boundary lies exactly after each odd component; `a` must end at
  // a boundary, which holds iff `a` is empty or ends odd (valid labels
  // always do). So the prefix test suffices for valid labels.
  return true;
}

bool OrdpathIsChild(const OrdpathLabel& a, const OrdpathLabel& b) {
  return OrdpathIsAncestor(a, b) &&
         OrdpathDepth(b) == OrdpathDepth(a) + 1;
}

bool OrdpathIsFollowingSibling(const OrdpathLabel& a, const OrdpathLabel& b) {
  if (a.empty() || b.empty()) return false;  // the root has no siblings
  // Same parent: equal after removing the last chunk.
  auto parent_len = [](const OrdpathLabel& l) {
    size_t i = l.size();
    while (i > 0 && !IsOdd(l[i - 1])) --i;  // unreachable for valid labels
    // Last component is odd; the chunk extends back over preceding evens.
    --i;
    while (i > 0 && !IsOdd(l[i - 1])) --i;
    return i;
  };
  size_t pa = parent_len(a);
  size_t pb = parent_len(b);
  if (pa != pb) return false;
  for (size_t i = 0; i < pa; ++i) {
    if (a[i] != b[i]) return false;
  }
  return OrdpathCompare(a, b) < 0;
}

bool OrdpathIsFollowing(const OrdpathLabel& a, const OrdpathLabel& b) {
  return OrdpathCompare(a, b) < 0 && !OrdpathIsAncestor(a, b);
}

bool OrdpathIsValidChunk(const std::vector<int64_t>& chunk) {
  if (chunk.empty()) return false;
  for (size_t i = 0; i + 1 < chunk.size(); ++i) {
    if (IsOdd(chunk[i])) return false;
  }
  return IsOdd(chunk.back());
}

std::vector<int64_t> OrdpathBefore(const std::vector<int64_t>& chunk) {
  TREEQ_CHECK(OrdpathIsValidChunk(chunk));
  int64_t head = chunk[0] - 2;
  if (IsOdd(head)) return {head};
  return {head, 1};
}

std::vector<int64_t> OrdpathAfter(const std::vector<int64_t>& chunk) {
  TREEQ_CHECK(OrdpathIsValidChunk(chunk));
  int64_t head = chunk[0] + 2;
  if (IsOdd(head)) return {head};
  return {head, 1};
}

std::vector<int64_t> OrdpathBetween(const std::vector<int64_t>& a,
                                    const std::vector<int64_t>& b) {
  TREEQ_CHECK(OrdpathIsValidChunk(a) && OrdpathIsValidChunk(b));
  TREEQ_CHECK(OrdpathCompare(a, b) < 0);
  // Valid chunks are never prefixes of one another (a chunk's only odd
  // component is its last), so a divergence index exists.
  size_t i = 0;
  while (a[i] == b[i]) {
    ++i;
    TREEQ_CHECK(i < a.size() && i < b.size());
  }
  std::vector<int64_t> out(a.begin(), a.begin() + i);
  int64_t lo = a[i];
  int64_t hi = b[i];
  TREEQ_CHECK(lo < hi);
  if (hi - lo >= 2) {
    // Room for a component strictly in between.
    int64_t mid = lo + 1;  // lo+1 < hi
    if (IsOdd(mid)) {
      out.push_back(mid);
    } else if (mid + 1 < hi) {
      out.push_back(mid + 1);  // odd and still below hi
    } else {
      out.push_back(mid);  // even caret, then terminate
      out.push_back(1);
    }
    return out;
  }
  // hi == lo + 1: descend into one side.
  if (IsOdd(lo)) {
    // `a` ends here (odd terminates its chunk); go under b's continuation.
    TREEQ_CHECK(i + 1 < b.size());  // hi is even, so b continues
    out.push_back(hi);
    std::vector<int64_t> rest(b.begin() + i + 1, b.end());
    std::vector<int64_t> below = OrdpathBefore(rest);
    out.insert(out.end(), below.begin(), below.end());
    return out;
  }
  // lo is even: `a` continues; go above a's continuation.
  TREEQ_CHECK(i + 1 < a.size());
  out.push_back(lo);
  std::vector<int64_t> rest(a.begin() + i + 1, a.end());
  std::vector<int64_t> above = OrdpathAfter(rest);
  out.insert(out.end(), above.begin(), above.end());
  return out;
}

std::string OrdpathToString(const OrdpathLabel& label) {
  std::string out;
  for (size_t i = 0; i < label.size(); ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(label[i]);
  }
  return out.empty() ? "<root>" : out;
}

DeweyLabeling DeweyLabeling::Build(const Tree& tree) {
  DeweyLabeling d;
  d.labels_.resize(tree.num_nodes());
  // Parent ids precede child ids (TreeBuilder invariant), so a single pass
  // in sibling order per parent suffices; we traverse explicitly for
  // clarity.
  std::vector<NodeId> stack = {tree.root()};
  d.labels_[tree.root()] = {};
  while (!stack.empty()) {
    NodeId v = stack.back();
    stack.pop_back();
    int64_t ordinal = 1;
    for (NodeId c = tree.first_child(v); c != kNullNode;
         c = tree.next_sibling(c)) {
      d.labels_[c] = d.labels_[v];
      d.labels_[c].push_back(ordinal);
      ordinal += 2;
      stack.push_back(c);
    }
  }
  return d;
}

Result<int> DeweyLabeling::InsertChild(NodeId parent, NodeId left,
                                       NodeId right) {
  if (parent < 0 || parent >= num_nodes()) {
    return Status::InvalidArgument("bad parent id");
  }
  const OrdpathLabel& base = labels_[parent];
  auto chunk_of = [&](NodeId child) -> Result<std::vector<int64_t>> {
    if (child < 0 || child >= num_nodes()) {
      return Status::InvalidArgument("bad sibling id");
    }
    const OrdpathLabel& l = labels_[child];
    if (!OrdpathIsChild(base, l)) {
      return Status::InvalidArgument("sibling is not a child of parent");
    }
    return std::vector<int64_t>(l.begin() + base.size(), l.end());
  };

  std::vector<int64_t> chunk;
  if (left == kNullNode && right == kNullNode) {
    chunk = {1};
  } else if (left == kNullNode) {
    TREEQ_ASSIGN_OR_RETURN(std::vector<int64_t> r, chunk_of(right));
    chunk = OrdpathBefore(r);
  } else if (right == kNullNode) {
    TREEQ_ASSIGN_OR_RETURN(std::vector<int64_t> l, chunk_of(left));
    chunk = OrdpathAfter(l);
  } else {
    TREEQ_ASSIGN_OR_RETURN(std::vector<int64_t> l, chunk_of(left));
    TREEQ_ASSIGN_OR_RETURN(std::vector<int64_t> r, chunk_of(right));
    if (OrdpathCompare(l, r) >= 0) {
      return Status::InvalidArgument("left sibling not before right sibling");
    }
    chunk = OrdpathBetween(l, r);
  }
  OrdpathLabel label = base;
  label.insert(label.end(), chunk.begin(), chunk.end());
  labels_.push_back(std::move(label));
  return num_nodes() - 1;
}

}  // namespace treeq
