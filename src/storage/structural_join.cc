#include "storage/structural_join.h"

#include <algorithm>

#include "obs/obs.h"
#include "util/status.h"

namespace treeq {

std::vector<JoinItem> MakeJoinItems(const TreeOrders& orders,
                                    const std::vector<NodeId>& nodes) {
  std::vector<JoinItem> items;
  items.reserve(nodes.size());
  for (NodeId n : nodes) {
    items.push_back(JoinItem{orders.pre[n], orders.SubtreeEndPre(n),
                             orders.depth[n], n});
  }
  std::sort(items.begin(), items.end(),
            [](const JoinItem& a, const JoinItem& b) { return a.pre < b.pre; });
  return items;
}

std::vector<JoinItem> MakeJoinItemsForLabel(const Tree& tree,
                                            const TreeOrders& orders,
                                            LabelId label) {
  return MakeJoinItems(orders, tree.NodesWithLabel(label));
}

std::vector<std::pair<NodeId, NodeId>> StackTreeJoin(
    const std::vector<JoinItem>& ancestors,
    const std::vector<JoinItem>& descendants, bool parent_child) {
  std::vector<std::pair<NodeId, NodeId>> out;
  std::vector<JoinItem> stack;  // chain of nested ancestor candidates
  size_t ai = 0;

  for (const JoinItem& d : descendants) {
    // Admit all ancestor candidates that start before d.
    while (ai < ancestors.size() && ancestors[ai].pre <= d.pre) {
      const JoinItem& a = ancestors[ai++];
      // Pop candidates whose subtree ended before a starts; they can contain
      // no future node either (inputs are in document order).
      while (!stack.empty() && stack.back().end <= a.pre) {
        TREEQ_OBS_INC("storage.join.skipped_nodes");
        stack.pop_back();
      }
      TREEQ_OBS_INC("storage.join.stack_pushes");
      stack.push_back(a);
    }
    while (!stack.empty() && stack.back().end <= d.pre) {
      TREEQ_OBS_INC("storage.join.skipped_nodes");
      stack.pop_back();
    }
    // Every remaining stack entry contains d (stack entries are nested).
    for (const JoinItem& a : stack) {
      if (a.pre == d.pre) continue;  // a node is not its own ancestor
      if (parent_child && a.depth != d.depth - 1) continue;
      out.emplace_back(a.node, d.node);
    }
  }
  TREEQ_OBS_COUNT("storage.join.output_pairs", out.size());
  return out;
}

std::vector<std::pair<NodeId, NodeId>> NestedLoopJoin(
    const std::vector<JoinItem>& ancestors,
    const std::vector<JoinItem>& descendants, bool parent_child) {
  std::vector<std::pair<NodeId, NodeId>> out;
  for (const JoinItem& a : ancestors) {
    for (const JoinItem& d : descendants) {
      bool contains = a.pre < d.pre && d.pre < a.end;
      if (!contains) continue;
      if (parent_child && a.depth != d.depth - 1) continue;
      out.emplace_back(a.node, d.node);
    }
  }
  TREEQ_OBS_COUNT("storage.join.nested_loop_pairs", out.size());
  return out;
}

}  // namespace treeq
