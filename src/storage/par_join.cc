#include "storage/par_join.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <memory>

#include "obs/obs.h"

namespace treeq {
namespace par {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t Share(uint64_t remaining, int k) {
  if (remaining == UINT64_MAX) return UINT64_MAX;
  const uint64_t share = remaining / static_cast<uint64_t>(k);
  return share > 0 ? share : 1;
}

}  // namespace

Status ParStackTreeJoin(const std::vector<JoinItem>& ancestors,
                        const std::vector<JoinItem>& descendants,
                        bool parent_child,
                        std::vector<std::pair<NodeId, NodeId>>* out,
                        const ParOptions& options, const ExecContext& exec,
                        ParStats* stats) {
  const int k = options.parallelism;
  if (k < 2 || options.runner == nullptr ||
      descendants.size() < static_cast<size_t>(options.min_context)) {
    TREEQ_RETURN_IF_ERROR(exec.Charge(
        1 + static_cast<uint64_t>(ancestors.size() + descendants.size())));
    *out = StackTreeJoin(ancestors, descendants, parent_child);
    return Status::OK();
  }

  // Contiguous descendant index chunks; ceil division so every chunk but
  // possibly the last has equal size and none is empty.
  const size_t chunk =
      (descendants.size() + static_cast<size_t>(k) - 1) /
      static_cast<size_t>(k);
  struct Slot {
    size_t begin = 0;
    size_t end = 0;
    std::shared_ptr<ExecContext> child;
    std::vector<std::pair<NodeId, NodeId>> pairs;
    Status status;
  };
  std::vector<Slot> slots;
  for (size_t begin = 0; begin < descendants.size(); begin += chunk) {
    Slot slot;
    slot.begin = begin;
    slot.end = std::min(descendants.size(), begin + chunk);
    slots.push_back(std::move(slot));
  }
  const int degree = static_cast<int>(slots.size());
  TREEQ_OBS_INC("par.forks");
  TREEQ_OBS_COUNT("par.tasks", static_cast<uint64_t>(degree));
  const uint64_t visit_share = Share(exec.RemainingVisits(), degree);
  const uint64_t memory_share = Share(exec.RemainingMemory(), degree);

  std::vector<std::function<void()>> tasks;
  tasks.reserve(slots.size());
  for (Slot& slot : slots) {
    slot.child = exec.Fork(visit_share, memory_share);
    tasks.push_back([&ancestors, &descendants, parent_child, &slot] {
      // The stack content for a descendant d depends only on ancestors
      // with pre <= d.pre: truncate the ancestor list at the chunk's last
      // descendant so the per-chunk join replays the serial stack states.
      const int max_pre = descendants[slot.end - 1].pre;
      const auto prefix_end = std::upper_bound(
          ancestors.begin(), ancestors.end(), max_pre,
          [](int pre, const JoinItem& a) { return pre < a.pre; });
      const std::vector<JoinItem> anc_prefix(ancestors.begin(), prefix_end);
      const std::vector<JoinItem> desc_chunk(
          descendants.begin() + static_cast<ptrdiff_t>(slot.begin),
          descendants.begin() + static_cast<ptrdiff_t>(slot.end));
      slot.status = slot.child->Charge(
          1 + static_cast<uint64_t>(anc_prefix.size() + desc_chunk.size()));
      if (!slot.status.ok()) return;
      slot.pairs = StackTreeJoin(anc_prefix, desc_chunk, parent_child);
      slot.status = slot.child->ChargeMemory(
          slot.pairs.size() * sizeof(std::pair<NodeId, NodeId>));
    });
  }

  const uint64_t fork_start = NowNs();
  options.runner->RunAll(std::move(tasks));
  const uint64_t merge_start = NowNs();

  out->clear();
  Status first_error;
  for (Slot& slot : slots) {
    exec.AbsorbChildUsage(*slot.child);
    if (first_error.ok() && !slot.status.ok()) first_error = slot.status;
    if (slot.status.ok()) {
      // Chunks are in descendant document order, so plain concatenation
      // reproduces the serial grouped-by-descendant output exactly.
      out->insert(out->end(), slot.pairs.begin(), slot.pairs.end());
    }
  }
  const uint64_t merge_end = NowNs();
  if (stats != nullptr) {
    ParStats local;
    local.partitions = degree;
    local.parallel_ns = merge_start - fork_start;
    local.merge_ns = merge_end - merge_start;
    stats->Accumulate(local);
  }
  TREEQ_OBS_HISTOGRAM("par.parallel_ns", merge_start - fork_start);
  TREEQ_OBS_HISTOGRAM("par.merge_ns", merge_end - merge_start);
  if (!first_error.ok()) return first_error;
  return exec.CheckNow();
}

}  // namespace par
}  // namespace treeq
