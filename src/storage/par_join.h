#ifndef TREEQ_STORAGE_PAR_JOIN_H_
#define TREEQ_STORAGE_PAR_JOIN_H_

#include <utility>
#include <vector>

#include "storage/structural_join.h"
#include "tree/tree.h"
#include "util/exec_context.h"
#include "util/status.h"
#include "util/task_runner.h"

/// \file par_join.h
/// Partition-parallel stack-tree structural join (treeq::par).
///
/// The serial StackTreeJoin scans both document-ordered lists once; its
/// output is grouped by descendant in document order, and the ancestor
/// group emitted for a descendant d depends only on ancestors a with
/// a.pre <= d.pre (later ancestors cannot be on the stack when d is
/// processed). So chunking the *descendant* list into K contiguous index
/// ranges and running each chunk against the ancestor-list prefix with
/// pre <= (chunk's last descendant pre) reproduces, per chunk, exactly the
/// serial output rows for that chunk's descendants; concatenating the
/// chunks in order is bit-identical to the serial result.
///
/// Each chunk task runs under a forked ExecContext share (cancellation
/// fans out; the parent absorbs child spend at the join), charged
/// 1 + |ancestor prefix| + |chunk| to mirror the list-scan cost.

namespace treeq {
namespace par {

/// Parallel ancestor-descendant (or parent-child) structural join with
/// output bit-identical to StackTreeJoin(ancestors, descendants,
/// parent_child). Inputs must be sorted by pre. Falls back to the serial
/// join when `options.parallelism` < 2, no runner is given, or the
/// descendant list is smaller than `options.min_context`.
Status ParStackTreeJoin(const std::vector<JoinItem>& ancestors,
                        const std::vector<JoinItem>& descendants,
                        bool parent_child,
                        std::vector<std::pair<NodeId, NodeId>>* out,
                        const ParOptions& options, const ExecContext& exec,
                        ParStats* stats = nullptr);

}  // namespace par
}  // namespace treeq

#endif  // TREEQ_STORAGE_PAR_JOIN_H_
