#ifndef TREEQ_FAULT_STORM_H_
#define TREEQ_FAULT_STORM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault.h"

/// \file storm.h
/// The reusable fault-storm harness behind tests/fault_storm_test.cc and
/// the nightly CI sweep: one RunStorm call drives a randomized mixed
/// workload (unbounded / bounded / cancelled / rejected / batched submits
/// racing document churn) through a fully wired serving stack — Executor +
/// EvalCache + ResultCache + singleflight + DocumentStore — under a fault
/// plan derived from a single seed, then checks the engine's cross-cutting
/// invariants:
///
///   - every future resolves (no broken promises), with a status in the
///     engine's documented failure vocabulary;
///   - every ok non-degraded answer is bit-identical to a fault-free
///     serial replay against the exact document handle submitted (which is
///     also the stale-epoch check: a cache serving a dead epoch fails it);
///   - the singleflight table drains to empty once all futures are ready;
///   - the registry totals are exact once all futures are ready
///     (obs-enabled builds): submitted == submit calls − result-cache hits
///     − collapsed followers.
///
/// A failing run is fully described by its one-line replay form
/// (StormReport::replay_line); re-running the same (seed, plan) reproduces
/// the identical firing schedule (see fault.h on determinism).

namespace treeq {
namespace fault {

/// Workload shape for one storm run. Defaults are sized so one run takes
/// well under a second; the nightly sweep runs hundreds of seeds.
struct StormOptions {
  /// Master seed: derives the fault plan (unless one is given), every
  /// per-thread workload RNG, and the document corpus.
  uint64_t seed = 1;
  /// Concurrent client threads issuing submits and churning documents.
  int num_client_threads = 4;
  /// Executor worker threads.
  int num_workers = 3;
  /// Submits/churn ops issued per client thread.
  int ops_per_thread = 60;
  /// Executor queue capacity — deliberately small so genuine queue-full
  /// rejections happen alongside injected ones.
  size_t queue_capacity = 16;
  /// Let client threads Replace/Remove+Add documents mid-storm.
  bool churn_documents = true;
  /// Have one client thread call Shutdown() partway through, so the tail
  /// of the workload races the drain (every such submit must still get a
  /// well-formed Unavailable future).
  bool shutdown_race = false;
  /// Per-hit firing probability used by PlanFromSeed (ignored when an
  /// explicit plan is passed to RunStorm).
  double fault_probability = 0.08;
};

/// Everything one storm run learned, plus its replay line.
struct StormReport {
  uint64_t seed = 0;
  /// `TREEQ_STORM_PLAN` value: FaultPlan::ToString() of the armed plan.
  std::string plan_line;
  /// Copy-pasteable repro, e.g.
  ///   TREEQ_STORM_SEED=7 TREEQ_STORM_PLAN='seed=7 rule point=...'
  std::string replay_line;

  uint64_t submits = 0;        ///< Submit calls that reached the executor.
  uint64_t ok = 0;             ///< Futures that resolved ok.
  uint64_t failed = 0;         ///< Futures that resolved with an error.
  uint64_t injected_fires = 0; ///< FaultRegistry::total_fires().
  uint64_t replayed = 0;       ///< Answers checked bit-identical vs replay.

  /// Invariant violations, empty on a clean run. Each entry is a
  /// self-contained sentence; the test prints them with the replay line.
  std::vector<std::string> violations;

  bool passed() const { return violations.empty(); }
  /// Multi-line human summary (counts, violations, replay line).
  std::string ToString() const;
};

/// Derives a deterministic fault plan from `seed`: a random subset of
/// KnownPoints(), each with a randomized firing window and `probability`.
/// Same seed, same plan — the nightly sweep needs nothing but seed numbers.
FaultPlan PlanFromSeed(uint64_t seed, double probability);

/// Runs one storm with the plan derived from `options.seed`.
StormReport RunStorm(const StormOptions& options);

/// Runs one storm under an explicit plan (the replay entry point: parse
/// TREEQ_STORM_PLAN, pass it here with the failing seed in `options`).
StormReport RunStorm(const StormOptions& options, const FaultPlan& plan);

/// Stress scale knob: the value of the TREEQ_STRESS_ITERS environment
/// variable (clamped to >= 1), or `default_iters` when unset/invalid. The
/// storm and churn tests multiply their seed counts by it; CI sets 50 on
/// the TSan smoke slice and 500 on the nightly sweep.
int StressIters(int default_iters);

}  // namespace fault
}  // namespace treeq

#endif  // TREEQ_FAULT_STORM_H_
