#include "fault/storm.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cache/eval_cache.h"
#include "cache/result_cache.h"
#include "engine/document_store.h"
#include "engine/executor.h"
#include "engine/plan.h"
#include "obs/stats.h"
#include "tree/generator.h"
#include "util/random.h"

namespace treeq {
namespace fault {

namespace {

/// The query corpus: one plan per language route the engine serves, all
/// cheap on a small catalog (no naive-FO blowups — a storm runs hundreds
/// of each).
struct CorpusQuery {
  Language language;
  const char* text;
};
constexpr CorpusQuery kCorpus[] = {
    {Language::kXPath, "/catalog/product[reviews/review]/name"},
    {Language::kXPath, "//review[rating5]"},
    {Language::kXPath, "//product/descendant::rating5"},
    {Language::kDatalog,
     "Good(x) :- Lab_rating5(x). HasGood(x) :- Child(x, y), Good(y). "
     "?- HasGood."},
    {Language::kCq, "Q() :- Child+(x, y), Lab_product(x), Lab_review(y)."},
    {Language::kCq,
     "Q(p, r) :- Child+(p, r), Lab_product(p), Lab_review(r)."},
    {Language::kFo,
     "exists x . exists y . (Child(x, y) and Lab_review(x) and "
     "Lab_rating5(y))"},
};
constexpr int kNumCorpusQueries =
    static_cast<int>(sizeof(kCorpus) / sizeof(kCorpus[0]));

constexpr int kNumDocuments = 3;

std::string DocName(int i) { return "doc" + std::to_string(i); }

Tree MakeCatalog(Rng* rng) {
  CatalogOptions opts;
  opts.num_products = static_cast<int>(rng->Uniform(16, 48));
  return CatalogDocument(rng, opts);
}

/// Deep answer equality across the three result shapes. QueryResult has no
/// operator== (metadata like `engine` legitimately differs between a
/// cached answer and a replay); the *answer* must still match bit for bit.
bool SameAnswer(const QueryResult& a, const QueryResult& b) {
  if (a.value.index() != b.value.index()) return false;
  if (a.is_boolean()) return a.boolean() == b.boolean();
  if (a.is_tuples()) return a.tuples() == b.tuples();
  return a.nodes() == b.nodes();
}

const char* AnswerShape(const QueryResult& r) {
  if (r.is_boolean()) return "bool";
  if (r.is_tuples()) return "tuples";
  return "nodes";
}

/// One tracked submission: enough to judge its future later.
struct TrackedSubmit {
  engine::Submission submission;
  engine::PlanPtr plan;
  DocumentPtr document;  // the exact handle submitted (pins the epoch)
  bool cancelled = false;
};

bool AllowedFailure(StatusCode code) {
  switch (code) {
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
    case StatusCode::kCancelled:
      return true;
    default:
      return false;
  }
}

}  // namespace

FaultPlan PlanFromSeed(uint64_t seed, double probability) {
  FaultPlan plan;
  plan.seed = seed;
  // Independent generator stream from the workload RNGs (salted seed), so
  // plan shape and workload shape vary independently across seeds.
  Rng rng(seed * 0x9e3779b97f4a7c15ull + 1);
  for (const std::string& point : KnownPoints()) {
    if (!rng.Bernoulli(0.5)) continue;
    FaultRule rule;
    rule.point = point;
    rule.probability = probability * (0.5 + rng.UniformReal());
    rule.first_hit = static_cast<uint64_t>(rng.Uniform(1, 40));
    if (rng.Bernoulli(0.3)) {
      rule.max_fires = static_cast<uint64_t>(rng.Uniform(1, 8));
    }
    plan.rules.push_back(std::move(rule));
  }
  if (plan.rules.empty()) {
    // Degenerate draw: storm with at least one live rule so every seed
    // actually injects something.
    FaultRule rule;
    rule.point = "engine.queue.pop";
    rule.probability = probability;
    plan.rules.push_back(std::move(rule));
  }
  return plan;
}

StormReport RunStorm(const StormOptions& options) {
  return RunStorm(options,
                  PlanFromSeed(options.seed, options.fault_probability));
}

StormReport RunStorm(const StormOptions& options, const FaultPlan& plan) {
  StormReport report;
  report.seed = options.seed;
  report.plan_line = plan.ToString();
  report.replay_line = "TREEQ_STORM_SEED=" + std::to_string(options.seed) +
                       " TREEQ_STORM_PLAN='" + report.plan_line + "'";

  // --- Stack under test -----------------------------------------------
  cache::EvalCacheOptions eval_opts;
  cache::EvalCache eval_cache(eval_opts);
  cache::ResultCacheOptions result_opts;
  cache::ResultCache result_cache(result_opts);
  engine::DocumentStore store;
  store.AddEvictionListener([&](uint64_t epoch) {
    eval_cache.InvalidateDocument(epoch);
    result_cache.InvalidateDocument(epoch);
  });
  {
    Rng corpus_rng(options.seed ^ 0xd0c5);
    for (int i = 0; i < kNumDocuments; ++i) {
      (void)store.Add(DocName(i), MakeCatalog(&corpus_rng));
    }
  }
  std::vector<engine::PlanPtr> plans;
  for (const CorpusQuery& q : kCorpus) {
    plans.push_back(engine::Plan::Compile(q.language, q.text).value());
  }

  engine::Executor::Options exec_opts;
  exec_opts.num_workers = options.num_workers;
  exec_opts.queue_capacity = options.queue_capacity;
  exec_opts.eval_cache = &eval_cache;
  exec_opts.result_cache = &result_cache;
  exec_opts.singleflight = true;
  engine::Executor executor(exec_opts);

#ifndef TREEQ_OBS_DISABLED
  const uint64_t submitted_before =
      obs::StatsRegistry::Global().CounterValue("engine.exec.submitted");
#endif
  const uint64_t result_hits_before = result_cache.hits();
  const uint64_t followers_before = executor.inflight().followers();

  // --- The storm -------------------------------------------------------
  FaultRegistry::Global().Arm(plan);

  std::mutex tracked_mu;
  std::vector<TrackedSubmit> tracked;
  std::atomic<uint64_t> submit_calls{0};
  const int shutdown_at = options.ops_per_thread / 2;

  auto client = [&](int thread_index) {
    Rng rng(options.seed * 0x100000001b3ull + 977u +
            static_cast<uint64_t>(thread_index));
    std::vector<TrackedSubmit> local;
    auto pick_request = [&]() -> std::optional<QueryRequest> {
      Result<DocumentPtr> doc =
          store.Get(DocName(static_cast<int>(rng.Uniform(0, kNumDocuments - 1))));
      if (!doc.ok()) return std::nullopt;  // lost a churn race; skip
      QueryRequest request;
      request.plan =
          plans[static_cast<size_t>(rng.Uniform(0, kNumCorpusQueries - 1))];
      request.document = *doc;
      return request;
    };
    for (int op = 0; op < options.ops_per_thread; ++op) {
      if (options.shutdown_race && thread_index == 0 && op == shutdown_at) {
        executor.Shutdown();
        continue;
      }
      const int64_t roll = rng.Uniform(0, 99);
      if (options.churn_documents && roll >= 85) {
        // Document churn: mostly Replace (new epoch, eviction fan-out);
        // occasionally a Remove immediately refilled by Add, so a
        // concurrent Get sees a brief NotFound window.
        const std::string name =
            DocName(static_cast<int>(rng.Uniform(0, kNumDocuments - 1)));
        if (rng.Bernoulli(0.3)) {
          (void)store.Remove(name);
          (void)store.Add(name, MakeCatalog(&rng));
        } else {
          (void)store.Replace(name, MakeCatalog(&rng));
        }
        continue;
      }
      if (roll >= 70) {
        // Batched submit: collapses identical requests within the batch.
        const int batch_size = static_cast<int>(rng.Uniform(2, 6));
        std::vector<QueryRequest> requests;
        for (int i = 0; i < batch_size; ++i) {
          if (std::optional<QueryRequest> request = pick_request()) {
            requests.push_back(*std::move(request));
          }
        }
        if (requests.empty()) continue;
        // Snapshot (plan, document) first: SubmitBatch moves the requests
        // out of the span.
        std::vector<std::pair<engine::PlanPtr, DocumentPtr>> snapshot;
        for (const QueryRequest& r : requests) {
          snapshot.emplace_back(r.plan, r.document);
        }
        submit_calls.fetch_add(requests.size(), std::memory_order_relaxed);
        std::vector<engine::Submission> submissions =
            executor.SubmitBatch(requests);
        for (size_t i = 0; i < submissions.size(); ++i) {
          TrackedSubmit t;
          t.submission = std::move(submissions[i]);
          t.plan = snapshot[i].first;
          t.document = std::move(snapshot[i].second);
          local.push_back(std::move(t));
        }
        continue;
      }
      std::optional<QueryRequest> request = pick_request();
      if (!request) continue;
      TrackedSubmit t;
      t.plan = request->plan;
      t.document = request->document;
      if (roll >= 50) {
        // Bounded submit: a tight deadline or budget, sometimes cancelled
        // immediately — the abort paths the exec.* points also exercise.
        if (rng.Bernoulli(0.5)) {
          request->options.timeout =
              std::chrono::microseconds(rng.Uniform(50, 4000));
        } else {
          request->options.visit_budget =
              static_cast<uint64_t>(rng.Uniform(16, 4096));
        }
        if (rng.Bernoulli(0.25)) t.cancelled = true;
      } else {
        // Unbounded submit: cache-eligible unless bypassing; sometimes
        // admission-controlled, sometimes parallel.
        if (rng.Bernoulli(0.15)) request->options.bypass_cache = true;
        if (rng.Bernoulli(0.3)) request->options.reject_when_full = true;
        if (rng.Bernoulli(0.2)) request->options.parallelism = 2;
      }
      submit_calls.fetch_add(1, std::memory_order_relaxed);
      t.submission = executor.Submit(*std::move(request));
      if (t.cancelled) t.submission.Cancel();
      local.push_back(std::move(t));
    }
    std::lock_guard<std::mutex> lock(tracked_mu);
    for (TrackedSubmit& t : local) tracked.push_back(std::move(t));
  };

  std::vector<std::thread> clients;
  for (int i = 0; i < options.num_client_threads; ++i) {
    clients.emplace_back(client, i);
  }
  for (std::thread& c : clients) c.join();

  // --- Invariant: no broken promises ----------------------------------
  report.submits = submit_calls.load(std::memory_order_relaxed);
  const auto wait_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  size_t unresolved = 0;
  for (TrackedSubmit& t : tracked) {
    if (t.submission.future.wait_until(wait_deadline) !=
        std::future_status::ready) {
      ++unresolved;
    }
  }
  if (unresolved > 0) {
    report.violations.push_back(
        "broken promise: " + std::to_string(unresolved) +
        " futures unresolved after 30s");
    // Without every future ready no other invariant is meaningful (and
    // .get() below would block); bail with the replay line.
    report.injected_fires = FaultRegistry::Global().total_fires();
    FaultRegistry::Global().Disarm();
    executor.Shutdown();
    return report;
  }

  report.injected_fires = FaultRegistry::Global().total_fires();
  FaultRegistry::Global().Disarm();

  // --- Invariant: singleflight drains ---------------------------------
  if (executor.inflight().size() != 0) {
    report.violations.push_back(
        "inflight leak: " + std::to_string(executor.inflight().size()) +
        " entries remain after all futures resolved");
  }

  // --- Invariants: failure vocabulary + bit-identical replay ----------
  // Replay runs fault-free (disarmed, unbounded, serial, no memo) against
  // the exact document handle submitted. An ok answer computed against —
  // or cached under — any other epoch fails this check.
  for (TrackedSubmit& t : tracked) {
    Result<QueryResult> outcome = t.submission.future.get();
    if (!outcome.ok()) {
      ++report.failed;
      if (!AllowedFailure(outcome.status().code())) {
        report.violations.push_back(
            "unexpected failure code: " + outcome.status().ToString());
      }
      continue;
    }
    ++report.ok;
    if (outcome->degraded) continue;
    Result<QueryResult> replay =
        t.plan->Execute(*t.document, ExecContext::Unbounded(), {});
    if (!replay.ok()) {
      report.violations.push_back("fault-free replay failed: " +
                                  replay.status().ToString());
      continue;
    }
    ++report.replayed;
    if (!SameAnswer(*outcome, *replay)) {
      report.violations.push_back(
          std::string("answer mismatch vs fault-free replay: query '") +
          t.plan->text() + "' on " + t.document->name() + " (shape " +
          AnswerShape(*outcome) + " vs " + AnswerShape(*replay) + ")");
    }
  }

  // --- Invariant: registry totals exact -------------------------------
  // Every submit call either reached SubmitTask (counted), was served by
  // a result-cache hit on the submitting thread, or collapsed into an
  // in-flight leader. The tallies are plain atomics, but the submitted
  // counter itself is observability, so the equation needs obs compiled
  // in. Workers flush their shadow counters before fulfilling futures, so
  // with every future ready the registry is exact — no sleep needed.
#ifndef TREEQ_OBS_DISABLED
  const uint64_t submitted_delta =
      obs::StatsRegistry::Global().CounterValue("engine.exec.submitted") -
      submitted_before;
  const uint64_t hits_delta = result_cache.hits() - result_hits_before;
  const uint64_t followers_delta =
      executor.inflight().followers() - followers_before;
  if (submitted_delta + hits_delta + followers_delta != report.submits) {
    report.violations.push_back(
        "stats not exact: submitted " + std::to_string(submitted_delta) +
        " + result hits " + std::to_string(hits_delta) + " + followers " +
        std::to_string(followers_delta) + " != submit calls " +
        std::to_string(report.submits));
  }
#endif

  // --- Invariant: clean shutdown (idempotent under the race case) -----
  executor.Shutdown();
  return report;
}

std::string StormReport::ToString() const {
  std::string out = "storm seed=" + std::to_string(seed) + ": submits=" +
                    std::to_string(submits) + " ok=" + std::to_string(ok) +
                    " failed=" + std::to_string(failed) + " fires=" +
                    std::to_string(injected_fires) + " replayed=" +
                    std::to_string(replayed);
  if (violations.empty()) {
    out += " PASS";
    return out;
  }
  out += " FAIL";
  for (const std::string& v : violations) out += "\n  violation: " + v;
  out += "\n  replay: " + replay_line;
  return out;
}

int StressIters(int default_iters) {
  const char* env = std::getenv("TREEQ_STRESS_ITERS");
  if (env == nullptr || *env == '\0') return default_iters;
  const long parsed = std::strtol(env, nullptr, 10);
  return parsed >= 1 ? static_cast<int>(parsed) : default_iters;
}

}  // namespace fault
}  // namespace treeq
