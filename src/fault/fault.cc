#include "fault/fault.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "obs/obs.h"
#ifndef TREEQ_OBS_DISABLED
#include "obs/stats.h"
#endif

namespace treeq {
namespace fault {

namespace {

thread_local const char* t_thread_tag = "";

inline uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t HashPoint(std::string_view point) {
  uint64_t h = 14695981039346656037ull;
  for (char c : point) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// Deterministic Bernoulli draw for the Nth hit of `point` under `seed`:
/// independent of thread interleaving, identical on replay.
bool DeterministicBernoulli(uint64_t seed, std::string_view point,
                            uint64_t hit, double p) {
  if (p >= 1.0) return true;
  if (p <= 0.0) return false;
  const uint64_t h = Mix(seed ^ Mix(HashPoint(point) ^ hit * Mix(hit)));
  return static_cast<double>(h >> 11) * 0x1.0p-53 < p;
}

/// The serialized code names (round-tripped by ToString/Parse). Kept
/// lowercase-stable rather than reusing StatusCodeName so a replay line
/// survives future display-name changes.
struct CodeName {
  StatusCode code;
  const char* name;
};
constexpr CodeName kCodeNames[] = {
    {StatusCode::kUnavailable, "Unavailable"},
    {StatusCode::kDeadlineExceeded, "DeadlineExceeded"},
    {StatusCode::kResourceExhausted, "ResourceExhausted"},
    {StatusCode::kCancelled, "Cancelled"},
    {StatusCode::kInternal, "Internal"},
    {StatusCode::kInvalidArgument, "InvalidArgument"},
    {StatusCode::kNotFound, "NotFound"},
};

const char* CodeToName(StatusCode code) {
  for (const CodeName& c : kCodeNames) {
    if (c.code == code) return c.name;
  }
  return "Unavailable";
}

bool NameToCode(std::string_view name, StatusCode* out) {
  for (const CodeName& c : kCodeNames) {
    if (name == c.name) {
      *out = c.code;
      return true;
    }
  }
  return false;
}

}  // namespace

const std::vector<std::string>& KnownPoints() {
  // One entry per TREEQ_FAULT_* site in the engine. Keep sorted by module;
  // tests/fault_storm_test.cc asserts every entry is firable.
  static const std::vector<std::string>* const kPoints =
      new std::vector<std::string>{
          "cache.eval.insert",       "cache.eval.lookup",
          "cache.flight.join",       "cache.result.insert",
          "cache.result.invalidate", "cache.result.lookup",
          "engine.child.push",       "engine.queue.pop",
          "engine.queue.push",       "engine.shutdown",
          "engine.worker.run",       "exec.budget.charge",
          "exec.deadline.check",     "exec.memory.charge",
          "plan.route.decide",       "store.evict.notify",
      };
  return *kPoints;
}

void SetThreadTag(const char* tag) {
  t_thread_tag = tag != nullptr ? tag : "";
}

const char* ThreadTag() { return t_thread_tag; }

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* const kRegistry = new FaultRegistry();
  return *kRegistry;
}

void FaultRegistry::Arm(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = std::move(plan);
  rules_.clear();
  points_.clear();
  total_fires_.store(0, std::memory_order_relaxed);
  for (const FaultRule& rule : plan_.rules) {
    rules_.push_back(std::make_unique<RuleState>(RuleState{rule, 0}));
    points_[rule.point].rules.push_back(rules_.back().get());
  }
  TREEQ_OBS_INC("fault.registry.armed");
  armed_.store(true, std::memory_order_relaxed);
}

void FaultRegistry::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_relaxed);
  plan_ = FaultPlan();
  // Keep rules_/points_ so hits()/fires() stay inspectable after a storm.
}

Status FaultRegistry::Hit(const char* point) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_.load(std::memory_order_relaxed)) return Status::OK();
  PointState& state = points_[point];
  const uint64_t hit = ++state.hits;
  for (RuleState* rs : state.rules) {
    const FaultRule& rule = rs->rule;
    if (!rule.thread_tag.empty() && rule.thread_tag != t_thread_tag) {
      continue;
    }
    if (hit < rule.first_hit) continue;
    if (rs->fires >= rule.max_fires) continue;
    if (!DeterministicBernoulli(plan_.seed, point, hit, rule.probability)) {
      continue;
    }
    ++rs->fires;
    ++state.fires;
    total_fires_.fetch_add(1, std::memory_order_relaxed);
    TREEQ_OBS_INC("fault.registry.fired");
#ifndef TREEQ_OBS_DISABLED
    // Per-point fired counter, `fault.<point>.fired` per the taxonomy's
    // fault structure rule. Name built once per (plan, point) in practice;
    // the armed path is never hot.
    obs::StatsRegistry::Global()
        .GetCounter("fault." + std::string(point) + ".fired")
        ->Add(1);
#endif
    return Status(rule.code,
                  "injected fault at " + std::string(point));
  }
  return Status::OK();
}

uint64_t FaultRegistry::hits(std::string_view point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(std::string(point));
  return it != points_.end() ? it->second.hits : 0;
}

uint64_t FaultRegistry::fires(std::string_view point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(std::string(point));
  return it != points_.end() ? it->second.fires : 0;
}

FaultPlan FaultRegistry::plan() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plan_;
}

std::string FaultPlan::ToString() const {
  std::string out = "seed=" + std::to_string(seed);
  for (const FaultRule& rule : rules) {
    char p[32];
    std::snprintf(p, sizeof(p), "%.6g", rule.probability);
    out += " rule point=" + rule.point;
    out += " code=" + std::string(CodeToName(rule.code));
    out += " first=" + std::to_string(rule.first_hit);
    out += " max=" + (rule.max_fires == UINT64_MAX
                          ? std::string("inf")
                          : std::to_string(rule.max_fires));
    out += " p=" + std::string(p);
    out += " tag=" + (rule.thread_tag.empty() ? std::string("any")
                                              : rule.thread_tag);
  }
  return out;
}

Result<FaultPlan> FaultPlan::Parse(std::string_view text) {
  FaultPlan plan;
  FaultRule* current = nullptr;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (start == i) break;
    std::string_view token = text.substr(start, i - start);
    if (token == "rule") {
      plan.rules.emplace_back();
      current = &plan.rules.back();
      continue;
    }
    size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      return Status::ParseError("fault plan: expected key=value, got '" +
                                std::string(token) + "'");
    }
    std::string key(token.substr(0, eq));
    std::string value(token.substr(eq + 1));
    if (key == "seed") {
      plan.seed = std::strtoull(value.c_str(), nullptr, 10);
      continue;
    }
    if (current == nullptr) {
      return Status::ParseError("fault plan: '" + key +
                                "' before any 'rule'");
    }
    if (key == "point") {
      current->point = value;
    } else if (key == "code") {
      if (!NameToCode(value, &current->code)) {
        return Status::ParseError("fault plan: unknown code '" + value +
                                  "'");
      }
    } else if (key == "first") {
      current->first_hit = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "max") {
      current->max_fires = value == "inf"
                               ? UINT64_MAX
                               : std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "p") {
      current->probability = std::strtod(value.c_str(), nullptr);
    } else if (key == "tag") {
      current->thread_tag = value == "any" ? "" : value;
    } else {
      return Status::ParseError("fault plan: unknown key '" + key + "'");
    }
  }
  for (const FaultRule& rule : plan.rules) {
    if (rule.point.empty()) {
      return Status::ParseError("fault plan: rule without point=");
    }
  }
  return plan;
}

}  // namespace fault
}  // namespace treeq
