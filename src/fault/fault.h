#ifndef TREEQ_FAULT_FAULT_H_
#define TREEQ_FAULT_FAULT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/status.h"

/// \file fault.h
/// Deterministic fault injection for the serving stack.
///
/// Every failure edge the engine promises to survive — queue full, budget
/// trip, deadline race, cache eviction mid-flight, shutdown racing submit —
/// is reachable on demand through a *named fault point*: a compiled-in hook
/// (`TREEQ_FAULT_POINT("engine.queue.push")` and friends) that normally
/// costs one relaxed atomic load and, when the global `FaultRegistry` is
/// armed with a `FaultPlan`, may return an injected `Status` that the
/// surrounding code surfaces through its *existing* error contracts. The
/// point never invents a new failure shape: an injected `engine.queue.push`
/// looks exactly like a saturated queue, an injected `exec.deadline.check`
/// trips the context's real sticky-abort machinery.
///
/// Determinism and replay: a plan is a list of rules, each naming a point
/// plus a firing window (`first_hit`, `max_fires`), a probability, and an
/// optional thread tag. Whether the Nth hit of a point fires is a pure
/// function of `(plan.seed, point, N)` — the per-point hit counter is
/// global, so the *set* of firing hit indices does not depend on thread
/// interleaving. Any storm failure therefore replays from the one-line
/// `(seed, plan)` pair printed by `FaultPlan::ToString()` and re-parsed by
/// `FaultPlan::Parse()`.
///
/// Building with -DTREEQ_FAULT_DISABLED (CMake option of the same name)
/// compiles every macro to nothing: `TREEQ_FAULT_POINT` becomes an empty
/// statement, `TREEQ_FAULT_INJECT` a constant `Status::OK()`, and
/// `TREEQ_FAULT_FIRED` a constant `false`, so instrumented hot paths fold
/// to their pre-fault code. The registry itself still builds, keeping the
/// Arm/Disarm API linkable from tests and benches in every configuration.

namespace treeq {
namespace fault {

/// True when fault points are compiled into this build (no
/// TREEQ_FAULT_DISABLED); tests use it to skip injection cases cleanly.
#if defined(TREEQ_FAULT_DISABLED)
inline constexpr bool kFaultPointsCompiledIn = false;
#else
inline constexpr bool kFaultPointsCompiledIn = true;
#endif

/// One injection rule of a plan. Defaults fire on every hit of `point`
/// from any thread.
struct FaultRule {
  /// Exact fault point name (see KnownPoints()).
  std::string point;
  /// The injected status code. Points that route the injection through
  /// richer machinery (the exec.* points trip the context's real abort
  /// kinds) may override the rendered code; everything else surfaces it
  /// verbatim with message "injected fault at <point>".
  StatusCode code = StatusCode::kUnavailable;
  /// 1-based hit index at which the firing window opens.
  uint64_t first_hit = 1;
  /// Fires at most this many times (UINT64_MAX = unlimited).
  uint64_t max_fires = UINT64_MAX;
  /// Per-hit firing probability inside the window. Draws are deterministic
  /// in (plan.seed, point, hit index) — see the file comment.
  double probability = 1.0;
  /// Only fire on threads carrying this tag (SetThreadTag); empty = any.
  /// Executor workers are tagged "worker".
  std::string thread_tag;
};

/// A seed plus rules: everything needed to replay an injected failure.
struct FaultPlan {
  uint64_t seed = 0;
  std::vector<FaultRule> rules;

  /// One-line replay form, e.g.
  ///   seed=42 rule point=engine.queue.push code=Unavailable first=3
  ///   max=1 p=1 tag=any
  /// Parse(ToString()) reproduces the plan exactly.
  std::string ToString() const;
  static Result<FaultPlan> Parse(std::string_view text);
};

/// The process-global fault-point registry. All methods are thread-safe;
/// the disarmed fast path (`armed()`) is one relaxed atomic load.
class FaultRegistry {
 public:
  static FaultRegistry& Global();

  FaultRegistry(const FaultRegistry&) = delete;
  FaultRegistry& operator=(const FaultRegistry&) = delete;

  /// Installs `plan` and resets every per-point hit/fire counter, so a
  /// replay of the same (seed, plan) sees identical hit indices.
  void Arm(FaultPlan plan);

  /// Clears the plan. Points keep costing the one disarmed load.
  void Disarm();

  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Called by the TREEQ_FAULT_* macros when armed: counts the hit and
  /// returns the injected status of the first matching rule, or OK.
  Status Hit(const char* point);

  /// Per-point introspection since the last Arm (0 for unknown points).
  uint64_t hits(std::string_view point) const;
  uint64_t fires(std::string_view point) const;
  /// Total fires across all points since the last Arm.
  uint64_t total_fires() const {
    return total_fires_.load(std::memory_order_relaxed);
  }

  /// Copy of the armed plan (empty when disarmed).
  FaultPlan plan() const;

 private:
  FaultRegistry() = default;

  struct RuleState {
    FaultRule rule;
    uint64_t fires = 0;
  };
  struct PointState {
    uint64_t hits = 0;
    uint64_t fires = 0;
    std::vector<RuleState*> rules;  // borrowed from rules_
  };

  mutable std::mutex mu_;
  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> total_fires_{0};
  FaultPlan plan_;
  std::vector<std::unique_ptr<RuleState>> rules_;
  std::unordered_map<std::string, PointState> points_;
};

/// Every named fault point compiled into the engine, in naming-scheme
/// order `<module>.<object>.<operation>` (see DESIGN.md "Fault
/// injection"). Adding a TREEQ_FAULT_* site means adding its name here —
/// tests assert each listed point is firable.
const std::vector<std::string>& KnownPoints();

/// Tags the calling thread for FaultRule::thread_tag filters. The pointer
/// must outlive the thread (string literals in practice).
void SetThreadTag(const char* tag);
const char* ThreadTag();

/// RAII arm/disarm for tests: arms `plan` on construction, disarms on
/// destruction.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(FaultPlan plan) {
    FaultRegistry::Global().Arm(std::move(plan));
  }
  ~ScopedFaultPlan() { FaultRegistry::Global().Disarm(); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

}  // namespace fault
}  // namespace treeq

#if defined(TREEQ_FAULT_DISABLED)

#define TREEQ_FAULT_INJECT(name) (::treeq::Status::OK())
#define TREEQ_FAULT_FIRED(name) (false)
#define TREEQ_FAULT_POINT(name) \
  do {                          \
  } while (0)
#define TREEQ_FAULT_THREAD_TAG(tag) \
  do {                              \
  } while (0)

#else  // !defined(TREEQ_FAULT_DISABLED)

/// Expression yielding the injected Status (OK unless armed and fired).
/// Use at seams that propagate a Status through their own contract.
#define TREEQ_FAULT_INJECT(name)                           \
  (::treeq::fault::FaultRegistry::Global().armed()         \
       ? ::treeq::fault::FaultRegistry::Global().Hit(name) \
       : ::treeq::Status::OK())

/// Expression yielding true when the point fired. Use at bool seams (a
/// queue push, a cache probe) where the surrounding code already has a
/// failure path and the injected code itself is irrelevant.
#define TREEQ_FAULT_FIRED(name) (!TREEQ_FAULT_INJECT(name).ok())

/// Statement: returns the injected Status from the enclosing function
/// when the point fires. For Status- or Result-returning functions.
#define TREEQ_FAULT_POINT(name)                                 \
  do {                                                          \
    ::treeq::Status _treeq_fault = TREEQ_FAULT_INJECT(name);    \
    if (!_treeq_fault.ok()) return _treeq_fault;                \
  } while (0)

/// Tags the calling thread for FaultRule::thread_tag filters.
#define TREEQ_FAULT_THREAD_TAG(tag) ::treeq::fault::SetThreadTag(tag)

#endif  // TREEQ_FAULT_DISABLED

#endif  // TREEQ_FAULT_FAULT_H_
