#ifndef TREEQ_TREE_DOCUMENT_H_
#define TREEQ_TREE_DOCUMENT_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <utility>

#include "tree/label_index.h"
#include "tree/orders.h"
#include "tree/partition.h"
#include "tree/tree.h"

/// \file document.h
/// A `Document` bundles a Tree with its precomputed TreeOrders in one
/// immutable value, so callers stop threading `(tree, orders)` pairs through
/// every evaluator. Orders are computed lazily on first access (thread-safe,
/// exactly once) or can be supplied up front. The per-label inverted index
/// (tree/label_index.h) is cached the same way, so repeated queries against
/// one document never rescan the arena for label streams.
///
/// A Document is immutable after construction and safe to share read-only
/// across threads; the engine's DocumentStore (engine/document_store.h)
/// hands out `DocumentPtr` (shared_ptr<const Document>) handles on that
/// basis. Every evaluator entry point (xpath/cq/datalog/fo) has a
/// Document-taking overload.

namespace treeq {

/// Process-wide monotonic document epoch (starts at 1). Every Document gets
/// a fresh epoch at construction, so replacing a document — the store drops
/// the old handle and registers a new Document for the same name — changes
/// the epoch observed by cache keys. A stale cache entry keyed by the old
/// epoch is simply unreachable; no cross-thread invalidation handshake is
/// needed on the read path.
inline uint64_t NextDocumentEpoch() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

class Document {
 public:
  /// Takes ownership of `tree`; orders are computed on first orders() call.
  /// `name` is a display label for logs and per-query profiles — the
  /// DocumentStore passes its registration key; anonymous documents keep
  /// the empty default.
  explicit Document(Tree tree, std::string name = "")
      : tree_(std::move(tree)), name_(std::move(name)) {}

  /// Takes ownership of both. `orders` must have been computed from `tree`.
  Document(Tree tree, TreeOrders orders, std::string name = "")
      : tree_(std::move(tree)),
        name_(std::move(name)),
        orders_(std::move(orders)),
        computed_(true) {}

  /// Not copyable/movable (the lazy-init state pins the address); construct
  /// in place or use MakeDocument for a shared handle.
  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;

  const Tree& tree() const { return tree_; }
  int num_nodes() const { return tree_.num_nodes(); }

  /// Display name; empty for anonymous documents.
  const std::string& name() const { return name_; }

  /// Process-unique version stamp assigned at construction (see
  /// NextDocumentEpoch). The treeq::cache layer keys cached axis images and
  /// whole-query results on it: two Documents never share an epoch, so a
  /// cache entry can only ever be served for the exact tree it was computed
  /// on.
  uint64_t epoch() const { return epoch_; }

  /// The three total orders, depth and subtree sizes (tree/orders.h).
  /// Computed at most once; concurrent first calls are safe.
  const TreeOrders& orders() const {
    if (!computed_.load(std::memory_order_acquire)) {
      std::call_once(once_, [this] {
        orders_ = ComputeOrders(tree_);
        computed_.store(true, std::memory_order_release);
      });
    }
    return orders_;
  }

  /// True once orders are available without computation (supplied at
  /// construction or already computed by some thread).
  bool orders_computed() const {
    return computed_.load(std::memory_order_acquire);
  }

  /// The per-label inverted index (tree/label_index.h). Built at most once,
  /// lazily, from the cached orders; concurrent first calls are safe.
  const LabelIndex& label_index() const {
    if (!index_computed_.load(std::memory_order_acquire)) {
      std::call_once(index_once_, [this] {
        label_index_ = std::make_unique<LabelIndex>(tree_, orders());
        index_computed_.store(true, std::memory_order_release);
      });
    }
    return *label_index_;
  }

  /// True once the label index is available without computation.
  bool label_index_computed() const {
    return index_computed_.load(std::memory_order_acquire);
  }

  /// The subtree-range partition for intra-query parallelism
  /// (tree/partition.h). Built at most once, lazily, from the cached
  /// orders; concurrent first calls are safe. Per-degree masks inside it
  /// are themselves cached on first use.
  const TreePartition& partition() const {
    if (!partition_computed_.load(std::memory_order_acquire)) {
      std::call_once(partition_once_, [this] {
        partition_ = std::make_unique<TreePartition>(tree_, orders());
        partition_computed_.store(true, std::memory_order_release);
      });
    }
    return *partition_;
  }

  /// True once the partition is available without computation.
  bool partition_computed() const {
    return partition_computed_.load(std::memory_order_acquire);
  }

 private:
  Tree tree_;
  std::string name_;
  const uint64_t epoch_ = NextDocumentEpoch();
  mutable std::once_flag once_;
  mutable TreeOrders orders_;
  mutable std::atomic<bool> computed_{false};
  mutable std::once_flag index_once_;
  mutable std::unique_ptr<LabelIndex> label_index_;
  mutable std::atomic<bool> index_computed_{false};
  mutable std::once_flag partition_once_;
  mutable std::unique_ptr<TreePartition> partition_;
  mutable std::atomic<bool> partition_computed_{false};
};

/// Shared read-only handle to a Document. The engine APIs traffic in these.
using DocumentPtr = std::shared_ptr<const Document>;

/// Builds a shared Document from a tree, orders computed lazily.
inline DocumentPtr MakeDocument(Tree tree, std::string name = "") {
  return std::make_shared<Document>(std::move(tree), std::move(name));
}

/// Builds a shared Document with orders precomputed eagerly (what the
/// DocumentStore does, so serving threads never race on first access).
inline DocumentPtr MakeDocumentWithOrders(Tree tree, std::string name = "") {
  TreeOrders orders = ComputeOrders(tree);
  return std::make_shared<Document>(std::move(tree), std::move(orders),
                                    std::move(name));
}

}  // namespace treeq

#endif  // TREEQ_TREE_DOCUMENT_H_
