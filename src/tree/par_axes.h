#ifndef TREEQ_TREE_PAR_AXES_H_
#define TREEQ_TREE_PAR_AXES_H_

#include "tree/axes.h"
#include "tree/node_set.h"
#include "tree/orders.h"
#include "tree/partition.h"
#include "tree/tree.h"
#include "util/exec_context.h"
#include "util/status.h"
#include "util/task_runner.h"

/// \file par_axes.h
/// Partition-parallel AxisImage (treeq::par): the word-parallel axis
/// kernels of tree/axes.h, split across the disjoint subtree-range classes
/// of a TreePartition and merged with the fused word-OR of NodeSet.
///
/// Correctness rests on AxisImage being a union homomorphism: for every
/// axis, Image(from1 ∪ from2) = Image(from1) ∪ Image(from2), because the
/// image is defined pointwise ({ v : ∃u ∈ from, Axis(u, v) }). The
/// partition masks split `from` into disjoint pieces whose union is `from`,
/// each piece is imaged by the unchanged serial kernel, and the OR-merge
/// reassembles exactly the serial answer — bit-identical, not just
/// set-equal, since NodeSets with equal membership have equal words.
///
/// Budgets: each partition task runs under an ExecContext forked from
/// `exec` (util/exec_context.h) with a 1/k share of the remaining visit
/// and memory budgets, charged 1 + |from_i| like the serial evaluator's
/// per-step schedule; parent cancellation and sticky aborts fan out to
/// every task, and the parent absorbs the children's spend at the join.

namespace treeq {
namespace par {

/// Computes `*to` = { v : ∃u ∈ from, Axis(u, v) } exactly like
/// AxisImage, forking the kernel across `options.parallelism` partitions
/// of `partition` when the input is large enough. `*to` must be sized to
/// the tree's universe. On an error (budget trip, cancellation) `*to` is
/// unspecified. `stats`, when set, accumulates fork attribution.
Status ParAxisImage(const Tree& tree, const TreeOrders& orders,
                    const TreePartition& partition, Axis axis,
                    const NodeSet& from, NodeSet* to,
                    const ParOptions& options, const ExecContext& exec,
                    ParStats* stats = nullptr);

}  // namespace par
}  // namespace treeq

#endif  // TREEQ_TREE_PAR_AXES_H_
