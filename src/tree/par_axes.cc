#include "tree/par_axes.h"

#include <chrono>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "obs/obs.h"

namespace treeq {
namespace par {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Divides a remaining budget into k equal shares (unlimited stays
/// unlimited; at least 1 unit per share so a child can report its trip).
uint64_t Share(uint64_t remaining, int k) {
  if (remaining == UINT64_MAX) return UINT64_MAX;
  const uint64_t share = remaining / static_cast<uint64_t>(k);
  return share > 0 ? share : 1;
}

}  // namespace

Status ParAxisImage(const Tree& tree, const TreeOrders& orders,
                    const TreePartition& partition, Axis axis,
                    const NodeSet& from, NodeSet* to,
                    const ParOptions& options, const ExecContext& exec,
                    ParStats* stats) {
  const int k = options.parallelism;
  if (k < 2 || options.runner == nullptr ||
      from.size() < options.min_context) {
    // Below the fork threshold the serial kernel wins; keep the serial
    // charge schedule (1 + |from|) so degree-capped calls stay bounded.
    TREEQ_RETURN_IF_ERROR(
        exec.Charge(1 + static_cast<uint64_t>(from.size())));
    AxisImage(tree, orders, axis, from, to);
    return Status::OK();
  }

  const std::vector<NodeSet>& masks = partition.Masks(k);
  const int degree = static_cast<int>(masks.size());
  TREEQ_OBS_INC("par.forks");
  TREEQ_OBS_COUNT("par.tasks", static_cast<uint64_t>(degree));

  // One slot per partition: the split input, a forked child context, the
  // task's partial image and its status. Slots are written only by their
  // own task; the join barrier orders them before the merge below.
  struct Slot {
    NodeSet input;
    std::shared_ptr<ExecContext> child;
    NodeSet out;
    Status status;
  };
  std::vector<Slot> slots(static_cast<size_t>(degree));
  const uint64_t visit_share = Share(exec.RemainingVisits(), degree);
  const uint64_t memory_share = Share(exec.RemainingMemory(), degree);

  std::vector<std::function<void()>> tasks;
  tasks.reserve(static_cast<size_t>(degree));
  const int n = tree.num_nodes();
  for (int i = 0; i < degree; ++i) {
    Slot& slot = slots[static_cast<size_t>(i)];
    slot.input = from;
    slot.input.IntersectWith(masks[static_cast<size_t>(i)]);
    slot.out = NodeSet(n);
    if (slot.input.empty()) continue;  // Image(∅) = ∅: nothing to fork
    slot.child = exec.Fork(visit_share, memory_share);
    tasks.push_back([&tree, &orders, axis, &slot] {
      // The serial per-step schedule, charged against this partition's
      // share; a cancelled/tripped parent fails this charge and the task
      // skips its kernel entirely.
      slot.status =
          slot.child->Charge(1 + static_cast<uint64_t>(slot.input.size()));
      if (!slot.status.ok()) return;
      AxisImage(tree, orders, axis, slot.input, &slot.out);
    });
  }

  const uint64_t fork_start = NowNs();
  options.runner->RunAll(std::move(tasks));
  const uint64_t merge_start = NowNs();

  // Reconcile budgets and merge, deterministically by partition index:
  // the first failing partition's status wins, and the fused word-OR
  // reassembles the serial kernel's exact bit pattern.
  Status first_error;
  for (Slot& slot : slots) {
    if (slot.child != nullptr) exec.AbsorbChildUsage(*slot.child);
    if (first_error.ok() && !slot.status.ok()) first_error = slot.status;
    if (slot.status.ok()) to->UnionWith(slot.out);
  }
  const uint64_t merge_end = NowNs();
  if (stats != nullptr) {
    ParStats local;
    local.partitions = degree;
    local.parallel_ns = merge_start - fork_start;
    local.merge_ns = merge_end - merge_start;
    stats->Accumulate(local);
  }
  TREEQ_OBS_HISTOGRAM("par.parallel_ns", merge_start - fork_start);
  TREEQ_OBS_HISTOGRAM("par.merge_ns", merge_end - merge_start);
  if (!first_error.ok()) return first_error;
  // The parent may have been cancelled after every child finished; keep
  // the sticky-abort contract at the stage boundary.
  return exec.CheckNow();
}

}  // namespace par
}  // namespace treeq
