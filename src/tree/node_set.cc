#include "tree/node_set.h"

#include <algorithm>

namespace treeq {

void NodeSet::UnionWith(const NodeSet& other) {
  TREEQ_CHECK(universe_ == other.universe_);
  int c = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    words_[i] |= other.words_[i];
    c += std::popcount(words_[i]);
  }
  count_ = c;
}

void NodeSet::IntersectWith(const NodeSet& other) {
  TREEQ_CHECK(universe_ == other.universe_);
  int c = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= other.words_[i];
    c += std::popcount(words_[i]);
  }
  count_ = c;
}

void NodeSet::AndNotWith(const NodeSet& other) {
  TREEQ_CHECK(universe_ == other.universe_);
  int c = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= ~other.words_[i];
    c += std::popcount(words_[i]);
  }
  count_ = c;
}

void NodeSet::Complement() {
  if (words_.empty()) return;
  for (uint64_t& w : words_) w = ~w;
  words_.back() &= TailMask();
  count_ = universe_ - count_;
}

void NodeSet::InsertRange(int begin, int end) {
  begin = std::max(begin, 0);
  end = std::min(end, universe_);
  if (begin >= end) return;
  const size_t first = WordOf(begin), last = WordOf(end - 1);
  const uint64_t head = ~uint64_t{0} << BitOf(begin);
  const uint64_t tail = ~uint64_t{0} >> (63 - BitOf(end - 1));
  // Count is updated per touched word, keeping the cost proportional to the
  // range length, not the universe.
  auto fill = [this](size_t i, uint64_t mask) {
    const uint64_t old = words_[i];
    words_[i] = old | mask;
    count_ += std::popcount(words_[i]) - std::popcount(old);
  };
  if (first == last) {
    fill(first, head & tail);
  } else {
    fill(first, head);
    for (size_t i = first + 1; i < last; ++i) fill(i, ~uint64_t{0});
    fill(last, tail);
  }
}

NodeId NodeSet::FirstMember() const {
  for (size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] != 0) {
      return static_cast<NodeId>(i * 64 +
                                 static_cast<size_t>(std::countr_zero(words_[i])));
    }
  }
  return kNullNode;
}

NodeId NodeSet::LastMember() const {
  for (size_t i = words_.size(); i-- > 0;) {
    if (words_[i] != 0) {
      return static_cast<NodeId>(i * 64 + 63 -
                                 static_cast<size_t>(std::countl_zero(words_[i])));
    }
  }
  return kNullNode;
}

std::vector<NodeId> NodeSet::ToVector() const {
  std::vector<NodeId> out;
  out.reserve(static_cast<size_t>(count_));
  ForEachMember([&out](NodeId n) { out.push_back(n); });
  return out;
}

NodeSet NodeSet::FromVector(int universe, const std::vector<NodeId>& nodes) {
  NodeSet s(universe);
  for (NodeId n : nodes) s.Insert(n);
  return s;
}

NodeSet NodeSet::All(int universe) {
  NodeSet s(universe);
  s.InsertRange(0, universe);
  return s;
}

NodeSet NodeSet::Singleton(int universe, NodeId n) {
  NodeSet s(universe);
  s.Insert(n);
  return s;
}

}  // namespace treeq
