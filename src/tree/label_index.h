#ifndef TREEQ_TREE_LABEL_INDEX_H_
#define TREEQ_TREE_LABEL_INDEX_H_

#include <memory>
#include <mutex>
#include <vector>

#include "storage/structural_join.h"
#include "tree/node_set.h"
#include "tree/orders.h"
#include "tree/tree.h"

/// \file label_index.h
/// Per-document inverted label index: for every label, the nodes carrying
/// it, in document (pre) order. Built in one arena pass, it replaces the
/// per-query-node `Tree::NodesWithLabel` scans (plus their sorts) that the
/// structural/twig joins used to issue — a k-node twig query does one index
/// build (or zero, when the Document caches it) instead of k scans.
///
/// Two views are exposed:
///   - Items(label):  the sorted JoinItem stream the structural joins and
///     TwigStack consume directly;
///   - Set(label):    the per-label NodeSet the XPath label-filter step
///     intersects with (built lazily per label, thread-safe).

namespace treeq {

class LabelIndex {
 public:
  /// One pass over the arena in pre order; `orders` must belong to `tree`.
  LabelIndex(const Tree& tree, const TreeOrders& orders);

  LabelIndex(const LabelIndex&) = delete;
  LabelIndex& operator=(const LabelIndex&) = delete;

  /// Join input stream for `label`, sorted by pre rank. Returns an empty
  /// stream for kNullLabel / labels interned after the index was built.
  const std::vector<JoinItem>& Items(LabelId label) const;

  /// Bitmap of the nodes carrying `label` (same fallback as Items).
  /// Lazily materialized from the item stream; safe to call concurrently.
  const NodeSet& Set(LabelId label) const;

  int universe() const { return universe_; }
  int num_labels() const { return static_cast<int>(items_.size()); }

 private:
  bool InRange(LabelId label) const {
    return label >= 0 && label < num_labels();
  }

  int universe_ = 0;
  std::vector<std::vector<JoinItem>> items_;  // indexed by LabelId

  mutable std::mutex sets_mu_;
  mutable std::vector<std::unique_ptr<NodeSet>> sets_;
  mutable std::unique_ptr<NodeSet> empty_set_;  // for out-of-range labels
};

}  // namespace treeq

#endif  // TREEQ_TREE_LABEL_INDEX_H_
