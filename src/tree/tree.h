#ifndef TREEQ_TREE_TREE_H_
#define TREEQ_TREE_TREE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

/// \file tree.h
/// Unranked ordered finite labeled trees (Section 2 of the paper). A tree is
/// stored as a contiguous node arena with FirstChild / NextSibling / Parent /
/// PrevSibling links — the binary representation of Figure 1(b). Nodes may
/// carry multiple labels (the paper's (Lab_a) relations allow this).

namespace treeq {

/// Index of a node within its Tree. Dense in [0, Tree::num_nodes()).
using NodeId = int32_t;

/// Sentinel for "no node" (e.g. the parent of the root).
inline constexpr NodeId kNullNode = -1;

/// Interned label. Dense in [0, LabelTable::size()).
using LabelId = int32_t;

inline constexpr LabelId kNullLabel = -1;

/// Bidirectional mapping between label strings (the alphabet Sigma) and dense
/// LabelIds. The alphabet is not assumed fixed, matching the paper.
class LabelTable {
 public:
  /// Returns the id for `name`, interning it if new.
  LabelId Intern(std::string_view name);

  /// Returns the id for `name`, or kNullLabel if it was never interned.
  /// Heterogeneous lookup: no temporary std::string per probe.
  LabelId Lookup(std::string_view name) const;

  /// Returns the string for `id`. Requires a valid id.
  const std::string& Name(LabelId id) const;

  int size() const { return static_cast<int>(names_.size()); }

 private:
  /// Transparent hash so the map accepts string_view probes directly.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::vector<std::string> names_;
  std::unordered_map<std::string, LabelId, StringHash, std::equal_to<>> ids_;
};

/// An immutable unranked ordered labeled tree. Construct via TreeBuilder.
///
/// Navigation accessors are O(1); they realize the binary relations Child,
/// FirstChild, NextSibling (and inverses) of the paper's tree signatures.
class Tree {
 public:
  NodeId root() const { return 0; }
  int num_nodes() const { return static_cast<int>(parent_.size()); }

  /// kNullNode for the root.
  NodeId parent(NodeId n) const { return parent_[n]; }
  /// kNullNode if `n` is a leaf.
  NodeId first_child(NodeId n) const { return first_child_[n]; }
  NodeId last_child(NodeId n) const { return last_child_[n]; }
  /// kNullNode if `n` is a last sibling.
  NodeId next_sibling(NodeId n) const { return next_sibling_[n]; }
  NodeId prev_sibling(NodeId n) const { return prev_sibling_[n]; }

  /// Unary predicates of the datalog signature tau+ (Section 3).
  bool IsRoot(NodeId n) const { return parent_[n] == kNullNode; }
  bool IsLeaf(NodeId n) const { return first_child_[n] == kNullNode; }
  bool IsFirstSibling(NodeId n) const { return prev_sibling_[n] == kNullNode; }
  bool IsLastSibling(NodeId n) const { return next_sibling_[n] == kNullNode; }

  /// The labels of node `n` (possibly several; possibly none).
  const std::vector<LabelId>& labels(NodeId n) const { return labels_[n]; }

  /// True iff node `n` carries label `label` (the Lab_a(n) relation).
  bool HasLabel(NodeId n, LabelId label) const;
  bool HasLabel(NodeId n, std::string_view name) const;

  /// The first label of `n`, or kNullLabel if unlabeled. Convenient for
  /// single-labeled (XML-like) trees.
  LabelId label(NodeId n) const {
    return labels_[n].empty() ? kNullLabel : labels_[n][0];
  }

  const LabelTable& label_table() const { return label_table_; }
  LabelTable& mutable_label_table() { return label_table_; }

  /// All nodes carrying `label`, in node-id order. O(n) scan.
  std::vector<NodeId> NodesWithLabel(LabelId label) const;

  /// Number of children of `n`. O(#children).
  int NumChildren(NodeId n) const;

  /// Depth of the tree (root has depth 0; a single-node tree has depth 0).
  int Depth() const;

 private:
  friend class TreeBuilder;
  Tree() = default;

  std::vector<NodeId> parent_;
  std::vector<NodeId> first_child_;
  std::vector<NodeId> last_child_;
  std::vector<NodeId> next_sibling_;
  std::vector<NodeId> prev_sibling_;
  std::vector<std::vector<LabelId>> labels_;
  LabelTable label_table_;
};

/// Incremental constructor for Tree. Two styles are supported and may be
/// mixed:
///  - document style: BeginNode(label) ... EndNode() nested calls;
///  - random-access style: AddChild(parent, label) appending a last child.
///
/// The first created node becomes the root. Finish() validates and returns
/// the tree; the builder must not be reused afterwards.
class TreeBuilder {
 public:
  TreeBuilder() = default;

  /// Opens a new node as the last child of the currently open node (or as the
  /// root if none is open). Returns its id.
  NodeId BeginNode(std::string_view label);
  NodeId BeginNode(const std::vector<std::string>& node_labels);

  /// Closes the most recently opened node.
  void EndNode();

  /// Appends a new last child under `parent` (kNullNode creates the root;
  /// allowed only once). Returns its id.
  NodeId AddChild(NodeId parent, std::string_view label);
  NodeId AddChild(NodeId parent, const std::vector<std::string>& node_labels);

  /// Adds an extra label to an existing node.
  void AddLabel(NodeId node, std::string_view label);

  int num_nodes() const { return static_cast<int>(tree_.parent_.size()); }

  /// Validates (single root, all BeginNode calls closed) and returns the
  /// finished tree.
  Result<Tree> Finish();

 private:
  NodeId NewNode(NodeId parent);

  Tree tree_;
  std::vector<NodeId> open_stack_;
  bool finished_ = false;
};

/// Renders the tree as an indented ASCII outline (for debugging and example
/// output).
std::string ToOutline(const Tree& tree);

}  // namespace treeq

#endif  // TREEQ_TREE_TREE_H_
