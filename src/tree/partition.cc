#include "tree/partition.h"

#include <algorithm>

namespace treeq {

int TreePartition::ClampDegree(int k) const {
  if (k < 1) return 1;
  if (k > num_nodes_ && num_nodes_ > 0) return num_nodes_;
  return k;
}

std::vector<TreePartition::Range> TreePartition::Ranges(int k) const {
  k = ClampDegree(k);
  std::vector<Range> out;
  out.reserve(static_cast<size_t>(k));
  // Equal widths rounded up to whole 64-bit words; the last ranges absorb
  // the (possibly empty) remainder.
  const int width = ((num_nodes_ + k - 1) / k + 63) / 64 * 64;
  int begin = 0;
  for (int i = 0; i < k; ++i) {
    const int end = std::min(num_nodes_, begin + width);
    out.push_back(Range{begin, end});
    begin = end;
  }
  return out;
}

const std::vector<NodeSet>& TreePartition::Masks(int k) const {
  k = ClampDegree(k);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = masks_.find(k);
  if (it != masks_.end()) return it->second;
  std::vector<NodeSet> masks;
  for (const Range& range : Ranges(k)) {
    NodeSet mask(num_nodes_);
    if (orders_->pre_is_identity) {
      // Node id == pre rank: the mask is one contiguous word-fill.
      mask.InsertRange(range.begin, range.end);
    } else {
      for (int r = range.begin; r < range.end; ++r) {
        mask.Insert(orders_->node_at_pre[static_cast<size_t>(r)]);
      }
    }
    masks.push_back(std::move(mask));
  }
  return masks_.emplace(k, std::move(masks)).first->second;
}

}  // namespace treeq
