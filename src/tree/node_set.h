#ifndef TREEQ_TREE_NODE_SET_H_
#define TREEQ_TREE_NODE_SET_H_

#include <bit>
#include <cstdint>
#include <vector>

#include "tree/tree.h"
#include "util/status.h"

/// \file node_set.h
/// `NodeSet`: a set of nodes of one tree, stored as packed 64-bit words.
/// This is the substrate of the Section-3 linear-time building blocks; all
/// set algebra (union, intersection, complement, and-not) is word-parallel,
/// and members are enumerated by skip-scanning set bits with
/// `std::countr_zero` instead of probing every node. Sizes are maintained
/// with `std::popcount`.
///
/// Invariant: bits at positions >= universe() in the last word are always
/// zero ("tail masking"), so `operator==` is a plain word compare and
/// `Complement` stays closed over the universe.

namespace treeq {

class NodeSet {
 public:
  NodeSet() = default;
  explicit NodeSet(int universe)
      : words_(NumWordsFor(universe), 0), universe_(universe) {}

  int universe() const { return universe_; }
  int size() const { return count_; }
  bool empty() const { return count_ == 0; }

  bool Contains(NodeId n) const {
    return (words_[WordOf(n)] >> BitOf(n)) & uint64_t{1};
  }

  void Insert(NodeId n) {
    uint64_t& w = words_[WordOf(n)];
    const uint64_t mask = uint64_t{1} << BitOf(n);
    count_ += static_cast<int>(~w >> BitOf(n) & 1);
    w |= mask;
  }
  void Erase(NodeId n) {
    uint64_t& w = words_[WordOf(n)];
    count_ -= static_cast<int>(w >> BitOf(n) & 1);
    w &= ~(uint64_t{1} << BitOf(n));
  }
  void Clear() {
    std::fill(words_.begin(), words_.end(), 0);
    count_ = 0;
  }

  /// In-place word-parallel algebra with `other` (same universe).
  void UnionWith(const NodeSet& other);
  void IntersectWith(const NodeSet& other);
  /// this \ other (set difference), one pass of `a &= ~b`.
  void AndNotWith(const NodeSet& other);
  /// In-place complement relative to the universe (tail bits stay zero).
  void Complement();

  /// Sets every node in [begin, end) — a word-fill, used by the subtree /
  /// following kernels that mark contiguous pre-rank ranges.
  void InsertRange(int begin, int end);

  bool operator==(const NodeSet& other) const {
    return universe_ == other.universe_ && words_ == other.words_;
  }

  /// Calls fn(NodeId) for each member in increasing order, skipping over
  /// zero words and jumping between set bits with countr_zero.
  template <typename Fn>
  void ForEachMember(Fn&& fn) const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w != 0) {
        const int bit = std::countr_zero(w);
        fn(static_cast<NodeId>(wi * 64 + static_cast<size_t>(bit)));
        w &= w - 1;  // clear lowest set bit
      }
    }
  }

  /// Like ForEachMember but stops as soon as fn returns false.
  template <typename Fn>
  void ForEachMemberWhile(Fn&& fn) const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w != 0) {
        const int bit = std::countr_zero(w);
        if (!fn(static_cast<NodeId>(wi * 64 + static_cast<size_t>(bit)))) {
          return;
        }
        w &= w - 1;
      }
    }
  }

  /// Smallest / largest member, or kNullNode if empty. O(words).
  NodeId FirstMember() const;
  NodeId LastMember() const;

  /// Members in increasing node-id order.
  std::vector<NodeId> ToVector() const;

  static NodeSet FromVector(int universe, const std::vector<NodeId>& nodes);

  /// The full universe / a singleton.
  static NodeSet All(int universe);
  static NodeSet Singleton(int universe, NodeId n);

  /// Number of 64-bit words backing the set (for the obs word counters and
  /// the kernel microbenchmarks).
  int num_words() const { return static_cast<int>(words_.size()); }

  /// Read-only view of the backing words (tail bits beyond universe() are
  /// guaranteed zero). The evaluation cache fingerprints sets from this
  /// view instead of re-enumerating members bit by bit.
  const std::vector<uint64_t>& words() const { return words_; }

 private:
  static int NumWordsFor(int universe) { return (universe + 63) / 64; }
  static size_t WordOf(NodeId n) { return static_cast<size_t>(n) >> 6; }
  static int BitOf(NodeId n) { return static_cast<int>(n) & 63; }

  /// Mask selecting the in-universe bits of the last word (all ones when the
  /// universe is a multiple of 64).
  uint64_t TailMask() const {
    const int rem = universe_ & 63;
    return rem == 0 ? ~uint64_t{0} : (uint64_t{1} << rem) - 1;
  }

  std::vector<uint64_t> words_;
  int universe_ = 0;
  int count_ = 0;
};

}  // namespace treeq

#endif  // TREEQ_TREE_NODE_SET_H_
