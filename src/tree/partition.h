#ifndef TREEQ_TREE_PARTITION_H_
#define TREEQ_TREE_PARTITION_H_

#include <map>
#include <mutex>
#include <vector>

#include "tree/node_set.h"
#include "tree/orders.h"
#include "tree/tree.h"

/// \file partition.h
/// `TreePartition`: the document decomposition behind intra-query
/// parallelism (tree/par_axes.h, storage/par_join.h, cq/par_twig.h).
///
/// The pre order is dense — every pre rank in [0, n) names exactly one
/// node — so cutting pre-rank space into K contiguous ranges yields K
/// disjoint, jointly exhaustive node classes that are perfectly balanced by
/// node count and word-aligned in rank space. Because subtrees are
/// contiguous pre-rank intervals (the laminar-range property the
/// descendant kernel already exploits), each range is a union of whole
/// subtrees plus at most one "spine" of ancestors cut at the boundary;
/// the parallel kernels never rely on more than disjointness + coverage,
/// which hold unconditionally.
///
/// For each degree K the partition caches one node-id mask per range
/// (`Masks(k)[i]` = { v : pre[v] in range i }), so splitting an input
/// NodeSet across partitions is K word-parallel ANDs. Masks are built
/// lazily per degree and cached; a TreePartition is computed once per
/// Document and cached on it like the LabelIndex (tree/document.h), so
/// repeated parallel queries pay nothing after the first.
///
/// Thread safety: const methods are safe to call concurrently; the lazy
/// mask cache is mutex-protected.

namespace treeq {

class TreePartition {
 public:
  /// Half-open pre-rank range [begin, end).
  struct Range {
    int begin = 0;
    int end = 0;
  };

  /// `orders` must have been computed from `tree` and must outlive the
  /// partition (the Document cache guarantees both).
  TreePartition(const Tree& tree, const TreeOrders& orders)
      : orders_(&orders), num_nodes_(tree.num_nodes()) {}

  TreePartition(const TreePartition&) = delete;
  TreePartition& operator=(const TreePartition&) = delete;

  int num_nodes() const { return num_nodes_; }

  /// The K contiguous pre-rank ranges for degree `k` (clamped to
  /// [1, num_nodes]): equal widths rounded up to a multiple of 64 so the
  /// identity-pre fast path splits on word boundaries. Trailing ranges may
  /// be empty when 64-alignment exhausts the rank space early; empty
  /// ranges are kept so Ranges(k).size() == Masks(k).size() == k.
  std::vector<Range> Ranges(int k) const;

  /// Node-id masks for degree `k`: Masks(k)[i] is the NodeSet of nodes
  /// whose pre rank falls in Ranges(k)[i]. Built on first use per degree,
  /// then cached; the reference stays valid for the partition's lifetime.
  const std::vector<NodeSet>& Masks(int k) const;

 private:
  int ClampDegree(int k) const;

  const TreeOrders* orders_;
  int num_nodes_;
  mutable std::mutex mu_;
  mutable std::map<int, std::vector<NodeSet>> masks_;
};

}  // namespace treeq

#endif  // TREEQ_TREE_PARTITION_H_
