#ifndef TREEQ_TREE_GENERATOR_H_
#define TREEQ_TREE_GENERATOR_H_

#include <string>
#include <vector>

#include "tree/tree.h"
#include "util/random.h"

/// \file generator.h
/// Synthetic tree/document generators. The paper's algorithms are evaluated
/// on XML corpora we do not ship; these generators produce the same
/// structural regimes (shallow-and-wide documents, deep chains, recursive
/// documents, catalog-like records) so every benchmark exercises the code
/// paths the paper discusses. See DESIGN.md for the substitution rationale.

namespace treeq {

/// Shape parameters for RandomTree.
struct RandomTreeOptions {
  int num_nodes = 100;
  /// Bias toward depth: each new node's parent is drawn uniformly from the
  /// `attach_window` most recently created nodes (1 = chain; num_nodes =
  /// uniform recursive tree, depth ~ log n).
  int attach_window = 8;
  /// Labels drawn uniformly from this alphabet ("a", "b", ... by default).
  std::vector<std::string> alphabet;
  /// Probability that a node receives a second label (multi-label support).
  double second_label_prob = 0.0;
};

/// A random tree with `options.num_nodes` nodes.
Tree RandomTree(Rng* rng, const RandomTreeOptions& options);

/// A path (chain) of n nodes, all labeled `label` unless `alternate` is set
/// (then labels alternate label, label2, label, ...).
Tree Chain(int n, const std::string& label = "a",
           const std::string& alternate = "");

/// A root with n-1 leaf children.
Tree Star(int n, const std::string& root_label = "r",
          const std::string& leaf_label = "a");

/// A complete `fanout`-ary tree of the given depth (depth 0 = single node).
/// All nodes labeled by their depth modulo the alphabet.
Tree BalancedTree(int depth, int fanout, const std::vector<std::string>& alphabet);

/// A caterpillar: a spine of `spine` nodes, each with `legs` leaf children.
Tree Caterpillar(int spine, int legs, const std::string& spine_label = "s",
                 const std::string& leg_label = "l");

/// Shape parameters for CatalogDocument.
struct CatalogOptions {
  int num_products = 50;
  int max_reviews = 4;
  int max_paragraphs = 3;
};

/// A synthetic product-catalog document (XMark-flavored):
/// catalog / product* / (name, price, desc/para*, reviews?/review*).
/// Reviews carry a "rating" child whose label is one of rating1..rating5.
Tree CatalogDocument(Rng* rng, const CatalogOptions& options);

}  // namespace treeq

#endif  // TREEQ_TREE_GENERATOR_H_
