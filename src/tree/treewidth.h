#ifndef TREEQ_TREE_TREEWIDTH_H_
#define TREEQ_TREE_TREEWIDTH_H_

#include <vector>

#include "tree/tree.h"
#include "util/status.h"

/// \file treewidth.h
/// Tree decompositions (Section 4). Provides
///   - a generic undirected graph + decomposition representation,
///   - a verifier for the three tree-decomposition conditions,
///   - the explicit width-2 decomposition of a (Child, NextSibling)-tree's
///     union graph (Figure 4),
///   - a min-degree greedy heuristic for arbitrary graphs (used on query
///     graphs to bound the tree-width of conjunctive queries).

namespace treeq {

/// A simple undirected graph on vertices 0..n-1.
struct Graph {
  explicit Graph(int n) : adjacency(n) {}

  int num_vertices() const { return static_cast<int>(adjacency.size()); }

  /// Adds an undirected edge (self-loops and duplicates are ignored).
  void AddEdge(int u, int v);

  bool HasEdge(int u, int v) const;

  std::vector<std::vector<int>> adjacency;
};

/// A tree decomposition (T, chi): bags[i] is chi of decomposition node i;
/// `parent[i]` gives the decomposition tree (kNullNode for the root bag).
struct TreeDecomposition {
  std::vector<std::vector<int>> bags;
  std::vector<int> parent;

  /// max bag size - 1.
  int Width() const;
};

/// Checks the three conditions of Section 4: every vertex covered, every
/// edge covered by some bag, and every vertex's bags form a connected
/// subtree. Returns OK or a description of the first violation.
Status VerifyDecomposition(const Graph& graph,
                           const TreeDecomposition& decomposition);

/// The union graph of the Child and NextSibling relations of `tree`
/// (Section 4: this graph has tree-width two).
Graph ChildNextSiblingGraph(const Tree& tree);

/// The explicit width-<=2 decomposition of ChildNextSiblingGraph(tree) from
/// Figure 4: bag(v) = {v} ∪ {parent(v)} ∪ {prev-sibling(v)}, arranged along
/// the FirstChild/NextSibling skeleton.
TreeDecomposition DecomposeChildNextSibling(const Tree& tree);

/// Greedy min-degree elimination heuristic for arbitrary graphs. Returns a
/// valid decomposition whose width upper-bounds the tree-width.
TreeDecomposition GreedyDecompose(const Graph& graph);

}  // namespace treeq

#endif  // TREEQ_TREE_TREEWIDTH_H_
