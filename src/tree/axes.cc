#include "tree/axes.h"

#include <algorithm>
#include <utility>

namespace treeq {

Axis InverseAxis(Axis axis) {
  switch (axis) {
    case Axis::kSelf:
      return Axis::kSelf;
    case Axis::kChild:
      return Axis::kParent;
    case Axis::kParent:
      return Axis::kChild;
    case Axis::kDescendant:
      return Axis::kAncestor;
    case Axis::kAncestor:
      return Axis::kDescendant;
    case Axis::kDescendantOrSelf:
      return Axis::kAncestorOrSelf;
    case Axis::kAncestorOrSelf:
      return Axis::kDescendantOrSelf;
    case Axis::kNextSibling:
      return Axis::kPrevSibling;
    case Axis::kPrevSibling:
      return Axis::kNextSibling;
    case Axis::kFollowingSibling:
      return Axis::kPrecedingSibling;
    case Axis::kPrecedingSibling:
      return Axis::kFollowingSibling;
    case Axis::kFollowingSiblingOrSelf:
      return Axis::kPrecedingSiblingOrSelf;
    case Axis::kPrecedingSiblingOrSelf:
      return Axis::kFollowingSiblingOrSelf;
    case Axis::kFollowing:
      return Axis::kPreceding;
    case Axis::kPreceding:
      return Axis::kFollowing;
    case Axis::kFirstChild:
      return Axis::kFirstChildInv;
    case Axis::kFirstChildInv:
      return Axis::kFirstChild;
  }
  TREEQ_CHECK(false);
  return Axis::kSelf;
}

const char* AxisName(Axis axis) {
  switch (axis) {
    case Axis::kSelf:
      return "self";
    case Axis::kChild:
      return "child";
    case Axis::kParent:
      return "parent";
    case Axis::kDescendant:
      return "descendant";
    case Axis::kAncestor:
      return "ancestor";
    case Axis::kDescendantOrSelf:
      return "descendant-or-self";
    case Axis::kAncestorOrSelf:
      return "ancestor-or-self";
    case Axis::kNextSibling:
      return "next-sibling";
    case Axis::kPrevSibling:
      return "prev-sibling";
    case Axis::kFollowingSibling:
      return "following-sibling";
    case Axis::kPrecedingSibling:
      return "preceding-sibling";
    case Axis::kFollowingSiblingOrSelf:
      return "following-sibling-or-self";
    case Axis::kPrecedingSiblingOrSelf:
      return "preceding-sibling-or-self";
    case Axis::kFollowing:
      return "following";
    case Axis::kPreceding:
      return "preceding";
    case Axis::kFirstChild:
      return "first-child";
    case Axis::kFirstChildInv:
      return "first-child-inv";
  }
  TREEQ_CHECK(false);
  return "";
}

Result<Axis> ParseAxis(std::string_view name) {
  struct Alias {
    const char* name;
    Axis axis;
  };
  static constexpr Alias kAliases[] = {
      {"self", Axis::kSelf},
      {"Self", Axis::kSelf},
      {"child", Axis::kChild},
      {"Child", Axis::kChild},
      {"parent", Axis::kParent},
      {"Parent", Axis::kParent},
      {"Child-", Axis::kParent},
      {"descendant", Axis::kDescendant},
      {"Descendant", Axis::kDescendant},
      {"Child+", Axis::kDescendant},
      {"ancestor", Axis::kAncestor},
      {"Ancestor", Axis::kAncestor},
      {"descendant-or-self", Axis::kDescendantOrSelf},
      {"Descendant-or-self", Axis::kDescendantOrSelf},
      {"Child*", Axis::kDescendantOrSelf},
      {"ancestor-or-self", Axis::kAncestorOrSelf},
      {"Ancestor-or-self", Axis::kAncestorOrSelf},
      {"next-sibling", Axis::kNextSibling},
      {"NextSibling", Axis::kNextSibling},
      {"prev-sibling", Axis::kPrevSibling},
      {"PrevSibling", Axis::kPrevSibling},
      {"NextSibling-", Axis::kPrevSibling},
      {"following-sibling", Axis::kFollowingSibling},
      {"Following-Sibling", Axis::kFollowingSibling},
      {"NextSibling+", Axis::kFollowingSibling},
      {"preceding-sibling", Axis::kPrecedingSibling},
      {"Preceding-Sibling", Axis::kPrecedingSibling},
      {"following-sibling-or-self", Axis::kFollowingSiblingOrSelf},
      {"NextSibling*", Axis::kFollowingSiblingOrSelf},
      {"preceding-sibling-or-self", Axis::kPrecedingSiblingOrSelf},
      {"following", Axis::kFollowing},
      {"Following", Axis::kFollowing},
      {"preceding", Axis::kPreceding},
      {"Preceding", Axis::kPreceding},
      {"first-child", Axis::kFirstChild},
      {"FirstChild", Axis::kFirstChild},
      {"first-child-inv", Axis::kFirstChildInv},
  };
  for (const Alias& a : kAliases) {
    if (name == a.name) return a.axis;
  }
  return Status::ParseError("unknown axis: " + std::string(name));
}

bool IsTransitiveAxis(Axis axis) {
  switch (axis) {
    case Axis::kDescendant:
    case Axis::kAncestor:
    case Axis::kDescendantOrSelf:
    case Axis::kAncestorOrSelf:
    case Axis::kFollowingSibling:
    case Axis::kPrecedingSibling:
    case Axis::kFollowingSiblingOrSelf:
    case Axis::kPrecedingSiblingOrSelf:
    case Axis::kFollowing:
    case Axis::kPreceding:
      return true;
    default:
      return false;
  }
}

bool IsForwardAxis(Axis axis) {
  switch (axis) {
    case Axis::kSelf:
    case Axis::kChild:
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf:
    case Axis::kNextSibling:
    case Axis::kFollowingSibling:
    case Axis::kFollowingSiblingOrSelf:
    case Axis::kFollowing:
    case Axis::kFirstChild:
      return true;
    default:
      return false;
  }
}

bool AxisHolds(const Tree& tree, const TreeOrders& orders, Axis axis, NodeId u,
               NodeId v) {
  switch (axis) {
    case Axis::kSelf:
      return u == v;
    case Axis::kChild:
      return tree.parent(v) == u;
    case Axis::kParent:
      return tree.parent(u) == v;
    case Axis::kDescendant:
      return orders.IsProperAncestor(u, v);
    case Axis::kAncestor:
      return orders.IsProperAncestor(v, u);
    case Axis::kDescendantOrSelf:
      return u == v || orders.IsProperAncestor(u, v);
    case Axis::kAncestorOrSelf:
      return u == v || orders.IsProperAncestor(v, u);
    case Axis::kNextSibling:
      return tree.next_sibling(u) == v;
    case Axis::kPrevSibling:
      return tree.next_sibling(v) == u;
    case Axis::kFollowingSibling:
      return u != v && tree.parent(u) == tree.parent(v) &&
             tree.parent(u) != kNullNode && orders.pre[u] < orders.pre[v];
    case Axis::kPrecedingSibling:
      return AxisHolds(tree, orders, Axis::kFollowingSibling, v, u);
    case Axis::kFollowingSiblingOrSelf:
      return u == v ||
             AxisHolds(tree, orders, Axis::kFollowingSibling, u, v);
    case Axis::kPrecedingSiblingOrSelf:
      return u == v ||
             AxisHolds(tree, orders, Axis::kFollowingSibling, v, u);
    case Axis::kFollowing:
      return orders.IsFollowing(u, v);
    case Axis::kPreceding:
      return orders.IsFollowing(v, u);
    case Axis::kFirstChild:
      return tree.first_child(u) == v;
    case Axis::kFirstChildInv:
      return tree.first_child(v) == u;
  }
  TREEQ_CHECK(false);
  return false;
}

void NodeSet::UnionWith(const NodeSet& other) {
  TREEQ_CHECK(universe() == other.universe());
  for (int i = 0; i < universe(); ++i) {
    if (other.bits_[i]) Insert(i);
  }
}

void NodeSet::IntersectWith(const NodeSet& other) {
  TREEQ_CHECK(universe() == other.universe());
  for (int i = 0; i < universe(); ++i) {
    if (bits_[i] && !other.bits_[i]) Erase(i);
  }
}

void NodeSet::Complement() {
  for (int i = 0; i < universe(); ++i) {
    bits_[i] = bits_[i] ? 0 : 1;
  }
  count_ = universe() - count_;
}

std::vector<NodeId> NodeSet::ToVector() const {
  std::vector<NodeId> out;
  out.reserve(count_);
  for (int i = 0; i < universe(); ++i) {
    if (bits_[i]) out.push_back(i);
  }
  return out;
}

NodeSet NodeSet::FromVector(int universe, const std::vector<NodeId>& nodes) {
  NodeSet s(universe);
  for (NodeId n : nodes) s.Insert(n);
  return s;
}

NodeSet NodeSet::All(int universe) {
  NodeSet s(universe);
  for (NodeId n = 0; n < universe; ++n) s.Insert(n);
  return s;
}

NodeSet NodeSet::Singleton(int universe, NodeId n) {
  NodeSet s(universe);
  s.Insert(n);
  return s;
}

namespace {

// Marks descendants of `from` nodes: one pre-order pass.
void DescendantImage(const Tree& tree, const TreeOrders& orders,
                     const NodeSet& from, bool include_self, NodeSet* to) {
  for (int i = 0; i < orders.num_nodes(); ++i) {
    NodeId v = orders.node_at_pre[i];
    NodeId p = tree.parent(v);
    if (include_self && from.Contains(v)) {
      to->Insert(v);
      continue;
    }
    if (p != kNullNode && (from.Contains(p) || to->Contains(p))) {
      to->Insert(v);
    }
  }
}

// Marks ancestors of `from` nodes: one post-order pass.
void AncestorImage(const Tree& tree, const TreeOrders& orders,
                   const NodeSet& from, bool include_self, NodeSet* to) {
  // has_in_subtree[v]: subtree of v contains a `from` node.
  std::vector<char> has(orders.num_nodes(), 0);
  for (int i = 0; i < orders.num_nodes(); ++i) {
    NodeId v = orders.node_at_post[i];
    char h = from.Contains(v) ? 1 : 0;
    char child_has = 0;
    for (NodeId c = tree.first_child(v); c != kNullNode;
         c = tree.next_sibling(c)) {
      child_has |= has[c];
    }
    has[v] = h | child_has;
    if (child_has || (include_self && from.Contains(v))) to->Insert(v);
  }
}

void SiblingChainImage(const Tree& tree, const NodeSet& from, bool forward,
                       bool include_self, NodeSet* to) {
  const int n = tree.num_nodes();
  for (NodeId head = 0; head < n; ++head) {
    if (!tree.IsFirstSibling(head)) continue;
    // Collect the sibling chain once.
    std::vector<NodeId> chain;
    for (NodeId s = head; s != kNullNode; s = tree.next_sibling(s)) {
      chain.push_back(s);
    }
    if (forward) {
      bool flag = false;
      for (NodeId s : chain) {
        if (flag || (include_self && from.Contains(s))) to->Insert(s);
        flag = flag || from.Contains(s);
      }
    } else {
      bool flag = false;
      for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
        if (flag || (include_self && from.Contains(*it))) to->Insert(*it);
        flag = flag || from.Contains(*it);
      }
    }
  }
}

// Siblings include the root (a one-element chain), which SiblingChainImage
// visits because the root is a first sibling; following-sibling of the root
// is empty, as required.

}  // namespace

void AxisImage(const Tree& tree, const TreeOrders& orders, Axis axis,
               const NodeSet& from, NodeSet* to) {
  const int n = tree.num_nodes();
  TREEQ_CHECK(from.universe() == n && to->universe() == n);
  to->Clear();
  switch (axis) {
    case Axis::kSelf:
      *to = from;
      return;
    case Axis::kChild:
      for (NodeId v = 0; v < n; ++v) {
        NodeId p = tree.parent(v);
        if (p != kNullNode && from.Contains(p)) to->Insert(v);
      }
      return;
    case Axis::kParent:
      for (NodeId v = 0; v < n; ++v) {
        if (from.Contains(v) && tree.parent(v) != kNullNode) {
          to->Insert(tree.parent(v));
        }
      }
      return;
    case Axis::kDescendant:
      DescendantImage(tree, orders, from, /*include_self=*/false, to);
      return;
    case Axis::kDescendantOrSelf:
      DescendantImage(tree, orders, from, /*include_self=*/true, to);
      return;
    case Axis::kAncestor:
      AncestorImage(tree, orders, from, /*include_self=*/false, to);
      return;
    case Axis::kAncestorOrSelf:
      AncestorImage(tree, orders, from, /*include_self=*/true, to);
      return;
    case Axis::kNextSibling:
      for (NodeId v = 0; v < n; ++v) {
        NodeId p = tree.prev_sibling(v);
        if (p != kNullNode && from.Contains(p)) to->Insert(v);
      }
      return;
    case Axis::kPrevSibling:
      for (NodeId v = 0; v < n; ++v) {
        NodeId s = tree.next_sibling(v);
        if (s != kNullNode && from.Contains(s)) to->Insert(v);
      }
      return;
    case Axis::kFollowingSibling:
      SiblingChainImage(tree, from, /*forward=*/true, /*include_self=*/false,
                        to);
      return;
    case Axis::kPrecedingSibling:
      SiblingChainImage(tree, from, /*forward=*/false, /*include_self=*/false,
                        to);
      return;
    case Axis::kFollowingSiblingOrSelf:
      SiblingChainImage(tree, from, /*forward=*/true, /*include_self=*/true,
                        to);
      return;
    case Axis::kPrecedingSiblingOrSelf:
      SiblingChainImage(tree, from, /*forward=*/false, /*include_self=*/true,
                        to);
      return;
    case Axis::kFollowing: {
      if (from.empty()) return;
      int threshold = n;  // pre rank from which nodes are in the image
      for (NodeId u = 0; u < n; ++u) {
        if (from.Contains(u)) {
          threshold = std::min(threshold, orders.SubtreeEndPre(u));
        }
      }
      for (int i = threshold; i < n; ++i) to->Insert(orders.node_at_pre[i]);
      return;
    }
    case Axis::kPreceding: {
      if (from.empty()) return;
      int max_pre = -1;
      for (NodeId v = 0; v < n; ++v) {
        if (from.Contains(v)) max_pre = std::max(max_pre, orders.pre[v]);
      }
      for (NodeId u = 0; u < n; ++u) {
        if (orders.SubtreeEndPre(u) <= max_pre) to->Insert(u);
      }
      return;
    }
    case Axis::kFirstChild:
      for (NodeId v = 0; v < n; ++v) {
        if (from.Contains(v) && tree.first_child(v) != kNullNode) {
          to->Insert(tree.first_child(v));
        }
      }
      return;
    case Axis::kFirstChildInv:
      for (NodeId v = 0; v < n; ++v) {
        if (from.Contains(v) && tree.prev_sibling(v) == kNullNode &&
            tree.parent(v) != kNullNode) {
          to->Insert(tree.parent(v));
        }
      }
      return;
  }
  TREEQ_CHECK(false);
}

std::vector<std::pair<NodeId, NodeId>> MaterializeAxis(
    const Tree& tree, const TreeOrders& orders, Axis axis) {
  std::vector<std::pair<NodeId, NodeId>> out;
  const int n = tree.num_nodes();
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (AxisHolds(tree, orders, axis, u, v)) out.emplace_back(u, v);
    }
  }
  return out;
}

}  // namespace treeq
