#include "tree/axes.h"

#include <algorithm>
#include <utility>

#include "obs/obs.h"

namespace treeq {

Axis InverseAxis(Axis axis) {
  switch (axis) {
    case Axis::kSelf:
      return Axis::kSelf;
    case Axis::kChild:
      return Axis::kParent;
    case Axis::kParent:
      return Axis::kChild;
    case Axis::kDescendant:
      return Axis::kAncestor;
    case Axis::kAncestor:
      return Axis::kDescendant;
    case Axis::kDescendantOrSelf:
      return Axis::kAncestorOrSelf;
    case Axis::kAncestorOrSelf:
      return Axis::kDescendantOrSelf;
    case Axis::kNextSibling:
      return Axis::kPrevSibling;
    case Axis::kPrevSibling:
      return Axis::kNextSibling;
    case Axis::kFollowingSibling:
      return Axis::kPrecedingSibling;
    case Axis::kPrecedingSibling:
      return Axis::kFollowingSibling;
    case Axis::kFollowingSiblingOrSelf:
      return Axis::kPrecedingSiblingOrSelf;
    case Axis::kPrecedingSiblingOrSelf:
      return Axis::kFollowingSiblingOrSelf;
    case Axis::kFollowing:
      return Axis::kPreceding;
    case Axis::kPreceding:
      return Axis::kFollowing;
    case Axis::kFirstChild:
      return Axis::kFirstChildInv;
    case Axis::kFirstChildInv:
      return Axis::kFirstChild;
  }
  TREEQ_CHECK(false);
  return Axis::kSelf;
}

const char* AxisName(Axis axis) {
  switch (axis) {
    case Axis::kSelf:
      return "self";
    case Axis::kChild:
      return "child";
    case Axis::kParent:
      return "parent";
    case Axis::kDescendant:
      return "descendant";
    case Axis::kAncestor:
      return "ancestor";
    case Axis::kDescendantOrSelf:
      return "descendant-or-self";
    case Axis::kAncestorOrSelf:
      return "ancestor-or-self";
    case Axis::kNextSibling:
      return "next-sibling";
    case Axis::kPrevSibling:
      return "prev-sibling";
    case Axis::kFollowingSibling:
      return "following-sibling";
    case Axis::kPrecedingSibling:
      return "preceding-sibling";
    case Axis::kFollowingSiblingOrSelf:
      return "following-sibling-or-self";
    case Axis::kPrecedingSiblingOrSelf:
      return "preceding-sibling-or-self";
    case Axis::kFollowing:
      return "following";
    case Axis::kPreceding:
      return "preceding";
    case Axis::kFirstChild:
      return "first-child";
    case Axis::kFirstChildInv:
      return "first-child-inv";
  }
  TREEQ_CHECK(false);
  return "";
}

Result<Axis> ParseAxis(std::string_view name) {
  struct Alias {
    const char* name;
    Axis axis;
  };
  static constexpr Alias kAliases[] = {
      {"self", Axis::kSelf},
      {"Self", Axis::kSelf},
      {"child", Axis::kChild},
      {"Child", Axis::kChild},
      {"parent", Axis::kParent},
      {"Parent", Axis::kParent},
      {"Child-", Axis::kParent},
      {"descendant", Axis::kDescendant},
      {"Descendant", Axis::kDescendant},
      {"Child+", Axis::kDescendant},
      {"ancestor", Axis::kAncestor},
      {"Ancestor", Axis::kAncestor},
      {"descendant-or-self", Axis::kDescendantOrSelf},
      {"Descendant-or-self", Axis::kDescendantOrSelf},
      {"Child*", Axis::kDescendantOrSelf},
      {"ancestor-or-self", Axis::kAncestorOrSelf},
      {"Ancestor-or-self", Axis::kAncestorOrSelf},
      {"next-sibling", Axis::kNextSibling},
      {"NextSibling", Axis::kNextSibling},
      {"prev-sibling", Axis::kPrevSibling},
      {"PrevSibling", Axis::kPrevSibling},
      {"NextSibling-", Axis::kPrevSibling},
      {"following-sibling", Axis::kFollowingSibling},
      {"Following-Sibling", Axis::kFollowingSibling},
      {"NextSibling+", Axis::kFollowingSibling},
      {"preceding-sibling", Axis::kPrecedingSibling},
      {"Preceding-Sibling", Axis::kPrecedingSibling},
      {"following-sibling-or-self", Axis::kFollowingSiblingOrSelf},
      {"NextSibling*", Axis::kFollowingSiblingOrSelf},
      {"preceding-sibling-or-self", Axis::kPrecedingSiblingOrSelf},
      {"following", Axis::kFollowing},
      {"Following", Axis::kFollowing},
      {"preceding", Axis::kPreceding},
      {"Preceding", Axis::kPreceding},
      {"first-child", Axis::kFirstChild},
      {"FirstChild", Axis::kFirstChild},
      {"first-child-inv", Axis::kFirstChildInv},
  };
  for (const Alias& a : kAliases) {
    if (name == a.name) return a.axis;
  }
  return Status::ParseError("unknown axis: " + std::string(name));
}

bool IsTransitiveAxis(Axis axis) {
  switch (axis) {
    case Axis::kDescendant:
    case Axis::kAncestor:
    case Axis::kDescendantOrSelf:
    case Axis::kAncestorOrSelf:
    case Axis::kFollowingSibling:
    case Axis::kPrecedingSibling:
    case Axis::kFollowingSiblingOrSelf:
    case Axis::kPrecedingSiblingOrSelf:
    case Axis::kFollowing:
    case Axis::kPreceding:
      return true;
    default:
      return false;
  }
}

bool IsForwardAxis(Axis axis) {
  switch (axis) {
    case Axis::kSelf:
    case Axis::kChild:
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf:
    case Axis::kNextSibling:
    case Axis::kFollowingSibling:
    case Axis::kFollowingSiblingOrSelf:
    case Axis::kFollowing:
    case Axis::kFirstChild:
      return true;
    default:
      return false;
  }
}

bool AxisHolds(const Tree& tree, const TreeOrders& orders, Axis axis, NodeId u,
               NodeId v) {
  switch (axis) {
    case Axis::kSelf:
      return u == v;
    case Axis::kChild:
      return tree.parent(v) == u;
    case Axis::kParent:
      return tree.parent(u) == v;
    case Axis::kDescendant:
      return orders.IsProperAncestor(u, v);
    case Axis::kAncestor:
      return orders.IsProperAncestor(v, u);
    case Axis::kDescendantOrSelf:
      return u == v || orders.IsProperAncestor(u, v);
    case Axis::kAncestorOrSelf:
      return u == v || orders.IsProperAncestor(v, u);
    case Axis::kNextSibling:
      return tree.next_sibling(u) == v;
    case Axis::kPrevSibling:
      return tree.next_sibling(v) == u;
    case Axis::kFollowingSibling:
      return u != v && tree.parent(u) == tree.parent(v) &&
             tree.parent(u) != kNullNode && orders.pre[u] < orders.pre[v];
    case Axis::kPrecedingSibling:
      return AxisHolds(tree, orders, Axis::kFollowingSibling, v, u);
    case Axis::kFollowingSiblingOrSelf:
      return u == v ||
             AxisHolds(tree, orders, Axis::kFollowingSibling, u, v);
    case Axis::kPrecedingSiblingOrSelf:
      return u == v ||
             AxisHolds(tree, orders, Axis::kFollowingSibling, v, u);
    case Axis::kFollowing:
      return orders.IsFollowing(u, v);
    case Axis::kPreceding:
      return orders.IsFollowing(v, u);
    case Axis::kFirstChild:
      return tree.first_child(u) == v;
    case Axis::kFirstChildInv:
      return tree.first_child(v) == u;
  }
  TREEQ_CHECK(false);
  return false;
}

namespace {

// Inserts the nodes at pre ranks [begin, end) into `to`: a word fill when
// node ids coincide with pre ranks, a rank->node remap otherwise.
void InsertPreRange(const TreeOrders& orders, int begin, int end,
                    NodeSet* to) {
  if (orders.pre_is_identity) {
    to->InsertRange(begin, end);
    return;
  }
  for (int i = begin; i < end; ++i) to->Insert(orders.node_at_pre[i]);
}

// Marks descendants of `from` nodes. Subtrees are contiguous pre ranges, so
// the image is a union of word-filled ranges; ranges nested inside an
// already-covered subtree are skipped (subtree ranges form a laminar
// family, so after skipping, fills never overlap). Members must be visited
// in increasing pre rank: node-id order when pre_is_identity, otherwise via
// a scratch bitmap over pre ranks (bit enumeration is rank order for free —
// no comparator sort).
void DescendantImage(const TreeOrders& orders, const NodeSet& from,
                     bool include_self, NodeSet* to) {
  int covered = 0;  // pre ranks below this are already marked
  auto visit = [&](int rank, NodeId u) {
    const int end = orders.SubtreeEndPre(u);
    if (end <= covered) return;
    InsertPreRange(orders, rank + (include_self ? 0 : 1), end, to);
    covered = end;
  };
  if (orders.pre_is_identity) {
    from.ForEachMember([&](NodeId u) { visit(u, u); });
  } else if (from.size() * 8 >= orders.num_nodes()) {
    // Dense members: scan pre ranks directly and leap to the end of each
    // inserted subtree range — every rank the loop lands on is outside all
    // ranges inserted so far, so the probe count is n minus the inserted
    // mass, without materializing a rank-space copy of `from`.
    const int n = orders.num_nodes();
    for (int i = 0; i < n;) {
      NodeId v = orders.node_at_pre[i];
      if (from.Contains(v)) {
        InsertPreRange(orders, i + (include_self ? 0 : 1),
                       orders.SubtreeEndPre(v), to);
        i = orders.SubtreeEndPre(v);  // SubtreeEndPre > pre: always advances
      } else {
        ++i;
      }
    }
  } else {
    // Sparse members: remap them into rank space first so the watermark
    // scan touches O(|from| + n/64) words instead of probing every rank.
    NodeSet by_pre(orders.num_nodes());
    from.ForEachMember([&](NodeId u) { by_pre.Insert(orders.pre[u]); });
    by_pre.ForEachMember(
        [&](NodeId rank) { visit(rank, orders.node_at_pre[rank]); });
  }
}

// Marks ancestors of `from` nodes by walking parent chains, stopping at the
// first node already marked (its ancestors are marked too): O(|from| +
// |image|) instead of a full post-order pass.
void AncestorImage(const Tree& tree, const NodeSet& from, bool include_self,
                   NodeSet* to) {
  from.ForEachMember([&](NodeId u) {
    for (NodeId p = tree.parent(u); p != kNullNode && !to->Contains(p);
         p = tree.parent(p)) {
      to->Insert(p);
    }
  });
  if (include_self) to->UnionWith(from);
}

// Marks the forward (or backward) sibling chain of every member, with the
// same early-exit discipline as AncestorImage: a marked sibling implies the
// rest of its chain is marked.
void SiblingChainImage(const Tree& tree, const NodeSet& from, bool forward,
                       bool include_self, NodeSet* to) {
  from.ForEachMember([&](NodeId u) {
    if (forward) {
      for (NodeId s = tree.next_sibling(u);
           s != kNullNode && !to->Contains(s); s = tree.next_sibling(s)) {
        to->Insert(s);
      }
    } else {
      for (NodeId s = tree.prev_sibling(u);
           s != kNullNode && !to->Contains(s); s = tree.prev_sibling(s)) {
        to->Insert(s);
      }
    }
  });
  if (include_self) to->UnionWith(from);
}

// Siblings include the root (a one-element chain); following-sibling of the
// root is empty, as required, because its next_sibling link is null.

}  // namespace

void AxisImage(const Tree& tree, const TreeOrders& orders, Axis axis,
               const NodeSet& from, NodeSet* to) {
  const int n = tree.num_nodes();
  TREEQ_CHECK(from.universe() == n && to->universe() == n);
  to->Clear();
  // Every kernel makes at least one skip-scan pass over `from`'s words.
  TREEQ_OBS_COUNT("axes.words_scanned", from.num_words());
  switch (axis) {
    case Axis::kSelf:
      *to = from;
      return;
    case Axis::kChild:
      from.ForEachMember([&](NodeId u) {
        for (NodeId c = tree.first_child(u); c != kNullNode;
             c = tree.next_sibling(c)) {
          to->Insert(c);
        }
      });
      return;
    case Axis::kParent:
      from.ForEachMember([&](NodeId u) {
        if (tree.parent(u) != kNullNode) to->Insert(tree.parent(u));
      });
      return;
    case Axis::kDescendant:
      DescendantImage(orders, from, /*include_self=*/false, to);
      return;
    case Axis::kDescendantOrSelf:
      DescendantImage(orders, from, /*include_self=*/true, to);
      return;
    case Axis::kAncestor:
      AncestorImage(tree, from, /*include_self=*/false, to);
      return;
    case Axis::kAncestorOrSelf:
      AncestorImage(tree, from, /*include_self=*/true, to);
      return;
    case Axis::kNextSibling:
      from.ForEachMember([&](NodeId u) {
        if (tree.next_sibling(u) != kNullNode) {
          to->Insert(tree.next_sibling(u));
        }
      });
      return;
    case Axis::kPrevSibling:
      from.ForEachMember([&](NodeId u) {
        if (tree.prev_sibling(u) != kNullNode) {
          to->Insert(tree.prev_sibling(u));
        }
      });
      return;
    case Axis::kFollowingSibling:
      SiblingChainImage(tree, from, /*forward=*/true, /*include_self=*/false,
                        to);
      return;
    case Axis::kPrecedingSibling:
      SiblingChainImage(tree, from, /*forward=*/false, /*include_self=*/false,
                        to);
      return;
    case Axis::kFollowingSiblingOrSelf:
      SiblingChainImage(tree, from, /*forward=*/true, /*include_self=*/true,
                        to);
      return;
    case Axis::kPrecedingSiblingOrSelf:
      SiblingChainImage(tree, from, /*forward=*/false, /*include_self=*/true,
                        to);
      return;
    case Axis::kFollowing: {
      if (from.empty()) return;
      int threshold = n;  // pre rank from which nodes are in the image
      if (orders.pre_is_identity) {
        // Members arrive in pre order; once pre[u] >= threshold no later
        // member's subtree can end earlier, so the scan stops at the first
        // few set bits.
        from.ForEachMemberWhile([&](NodeId u) {
          if (u >= threshold) return false;
          threshold = std::min(threshold, orders.SubtreeEndPre(u));
          return true;
        });
      } else {
        from.ForEachMember([&](NodeId u) {
          threshold = std::min(threshold, orders.SubtreeEndPre(u));
        });
      }
      InsertPreRange(orders, threshold, n, to);
      return;
    }
    case Axis::kPreceding: {
      if (from.empty()) return;
      // The image is determined by the member with the largest pre rank m:
      // pre ranks [0, pre[m]) minus the proper ancestors of m.
      NodeId m = kNullNode;
      if (orders.pre_is_identity) {
        m = from.LastMember();  // last set bit = largest pre rank
      } else {
        from.ForEachMember([&](NodeId u) {
          if (m == kNullNode || orders.pre[u] > orders.pre[m]) m = u;
        });
      }
      InsertPreRange(orders, 0, orders.pre[m], to);
      for (NodeId p = tree.parent(m); p != kNullNode; p = tree.parent(p)) {
        to->Erase(p);
      }
      return;
    }
    case Axis::kFirstChild:
      from.ForEachMember([&](NodeId u) {
        if (tree.first_child(u) != kNullNode) {
          to->Insert(tree.first_child(u));
        }
      });
      return;
    case Axis::kFirstChildInv:
      from.ForEachMember([&](NodeId u) {
        if (tree.prev_sibling(u) == kNullNode &&
            tree.parent(u) != kNullNode) {
          to->Insert(tree.parent(u));
        }
      });
      return;
  }
  TREEQ_CHECK(false);
}

bool AxisImageMemoized(const Tree& tree, const TreeOrders& orders, Axis axis,
                       const NodeSet& from, NodeSet* to, AxisImageMemo* memo) {
  if (memo != nullptr && memo->Lookup(axis, from, to)) return true;
  AxisImage(tree, orders, axis, from, to);
  if (memo != nullptr) memo->Store(axis, from, *to);
  return false;
}

std::vector<std::pair<NodeId, NodeId>> MaterializeAxis(
    const Tree& tree, const TreeOrders& orders, Axis axis) {
  std::vector<std::pair<NodeId, NodeId>> out;
  const int n = tree.num_nodes();
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (AxisHolds(tree, orders, axis, u, v)) out.emplace_back(u, v);
    }
  }
  return out;
}

}  // namespace treeq
