#include "tree/orders.h"

#include <deque>

namespace treeq {

TreeOrders ComputeOrders(const Tree& tree) {
  const int n = tree.num_nodes();
  TreeOrders o;
  o.pre.assign(n, 0);
  o.post.assign(n, 0);
  o.bflr.assign(n, 0);
  o.depth.assign(n, 0);
  o.size.assign(n, 1);
  o.node_at_pre.assign(n, kNullNode);
  o.node_at_post.assign(n, kNullNode);
  o.node_at_bflr.assign(n, kNullNode);

  // Iterative DFS computing pre-order on entry and post-order on exit.
  int pre_counter = 0;
  int post_counter = 0;
  // Stack entries: (node, entered?). Encoded as node for enter, ~node for
  // exit to avoid a struct.
  std::vector<NodeId> stack;
  stack.push_back(tree.root());
  while (!stack.empty()) {
    NodeId top = stack.back();
    stack.pop_back();
    if (top < 0) {
      NodeId v = ~top;
      o.post[v] = post_counter;
      o.node_at_post[post_counter] = v;
      ++post_counter;
      if (tree.parent(v) != kNullNode) o.size[tree.parent(v)] += o.size[v];
      continue;
    }
    o.pre[top] = pre_counter;
    o.node_at_pre[pre_counter] = top;
    ++pre_counter;
    if (tree.parent(top) != kNullNode) {
      o.depth[top] = o.depth[tree.parent(top)] + 1;
    }
    stack.push_back(~top);
    // Push children right-to-left so the leftmost is visited first.
    std::vector<NodeId> kids;
    for (NodeId c = tree.first_child(top); c != kNullNode;
         c = tree.next_sibling(c)) {
      kids.push_back(c);
    }
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back(*it);
    }
  }

  o.pre_is_identity = true;
  for (NodeId v = 0; v < n; ++v) {
    if (o.pre[v] != v) {
      o.pre_is_identity = false;
      break;
    }
  }

  // Breadth-first left-to-right.
  int bflr_counter = 0;
  std::deque<NodeId> queue;
  queue.push_back(tree.root());
  while (!queue.empty()) {
    NodeId v = queue.front();
    queue.pop_front();
    o.bflr[v] = bflr_counter;
    o.node_at_bflr[bflr_counter] = v;
    ++bflr_counter;
    for (NodeId c = tree.first_child(v); c != kNullNode;
         c = tree.next_sibling(c)) {
      queue.push_back(c);
    }
  }

  return o;
}

}  // namespace treeq
