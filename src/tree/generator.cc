#include "tree/generator.h"

#include <algorithm>

#include "util/status.h"

namespace treeq {

Tree RandomTree(Rng* rng, const RandomTreeOptions& options) {
  TREEQ_CHECK(options.num_nodes >= 1);
  TREEQ_CHECK(options.attach_window >= 1);
  std::vector<std::string> alphabet = options.alphabet;
  if (alphabet.empty()) alphabet = {"a", "b", "c"};

  TreeBuilder builder;
  std::vector<NodeId> nodes;
  nodes.reserve(options.num_nodes);
  auto pick_label = [&]() {
    return alphabet[static_cast<size_t>(
        rng->Uniform(0, static_cast<int64_t>(alphabet.size()) - 1))];
  };
  NodeId root = builder.AddChild(kNullNode, pick_label());
  nodes.push_back(root);
  for (int i = 1; i < options.num_nodes; ++i) {
    int64_t lo = std::max<int64_t>(0, static_cast<int64_t>(nodes.size()) -
                                          options.attach_window);
    NodeId parent =
        nodes[static_cast<size_t>(rng->Uniform(lo, nodes.size() - 1))];
    NodeId child = builder.AddChild(parent, pick_label());
    if (options.second_label_prob > 0 &&
        rng->Bernoulli(options.second_label_prob)) {
      builder.AddLabel(child, pick_label());
    }
    nodes.push_back(child);
  }
  Result<Tree> tree = builder.Finish();
  TREEQ_CHECK(tree.ok());
  return std::move(tree).value();
}

Tree Chain(int n, const std::string& label, const std::string& alternate) {
  TREEQ_CHECK(n >= 1);
  TreeBuilder builder;
  NodeId prev = kNullNode;
  for (int i = 0; i < n; ++i) {
    const std::string& l =
        (!alternate.empty() && i % 2 == 1) ? alternate : label;
    prev = builder.AddChild(prev, l);
  }
  Result<Tree> tree = builder.Finish();
  TREEQ_CHECK(tree.ok());
  return std::move(tree).value();
}

Tree Star(int n, const std::string& root_label, const std::string& leaf_label) {
  TREEQ_CHECK(n >= 1);
  TreeBuilder builder;
  NodeId root = builder.AddChild(kNullNode, root_label);
  for (int i = 1; i < n; ++i) builder.AddChild(root, leaf_label);
  Result<Tree> tree = builder.Finish();
  TREEQ_CHECK(tree.ok());
  return std::move(tree).value();
}

Tree BalancedTree(int depth, int fanout,
                  const std::vector<std::string>& alphabet) {
  TREEQ_CHECK(depth >= 0 && fanout >= 1);
  std::vector<std::string> labels = alphabet;
  if (labels.empty()) labels = {"a", "b", "c"};
  TreeBuilder builder;
  // Breadth-first construction.
  struct Frontier {
    NodeId node;
    int depth;
  };
  NodeId root = builder.AddChild(
      kNullNode, labels[0 % labels.size()]);
  std::vector<Frontier> frontier = {{root, 0}};
  size_t head = 0;
  while (head < frontier.size()) {
    Frontier f = frontier[head++];
    if (f.depth == depth) continue;
    for (int i = 0; i < fanout; ++i) {
      NodeId c = builder.AddChild(
          f.node, labels[static_cast<size_t>(f.depth + 1) % labels.size()]);
      frontier.push_back({c, f.depth + 1});
    }
  }
  Result<Tree> tree = builder.Finish();
  TREEQ_CHECK(tree.ok());
  return std::move(tree).value();
}

Tree Caterpillar(int spine, int legs, const std::string& spine_label,
                 const std::string& leg_label) {
  TREEQ_CHECK(spine >= 1 && legs >= 0);
  TreeBuilder builder;
  NodeId prev = kNullNode;
  for (int i = 0; i < spine; ++i) {
    NodeId s = builder.AddChild(prev, spine_label);
    for (int j = 0; j < legs; ++j) builder.AddChild(s, leg_label);
    prev = s;
  }
  Result<Tree> tree = builder.Finish();
  TREEQ_CHECK(tree.ok());
  return std::move(tree).value();
}

Tree CatalogDocument(Rng* rng, const CatalogOptions& options) {
  TREEQ_CHECK(options.num_products >= 0);
  TreeBuilder builder;
  builder.BeginNode("catalog");
  for (int i = 0; i < options.num_products; ++i) {
    builder.BeginNode("product");
    builder.BeginNode("name");
    builder.EndNode();
    builder.BeginNode("price");
    builder.EndNode();
    builder.BeginNode("desc");
    int paragraphs =
        static_cast<int>(rng->Uniform(0, options.max_paragraphs));
    for (int p = 0; p < paragraphs; ++p) {
      builder.BeginNode("para");
      if (rng->Bernoulli(0.3)) {
        builder.BeginNode("emph");
        builder.EndNode();
      }
      builder.EndNode();
    }
    builder.EndNode();  // desc
    if (rng->Bernoulli(0.7)) {
      builder.BeginNode("reviews");
      int reviews = static_cast<int>(rng->Uniform(1, options.max_reviews));
      for (int r = 0; r < reviews; ++r) {
        builder.BeginNode("review");
        builder.BeginNode("rating" +
                          std::to_string(rng->Uniform(1, 5)));
        builder.EndNode();
        if (rng->Bernoulli(0.5)) {
          builder.BeginNode("comment");
          builder.EndNode();
        }
        builder.EndNode();  // review
      }
      builder.EndNode();  // reviews
    }
    builder.EndNode();  // product
  }
  builder.EndNode();  // catalog
  Result<Tree> tree = builder.Finish();
  TREEQ_CHECK(tree.ok());
  return std::move(tree).value();
}

}  // namespace treeq
