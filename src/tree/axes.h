#ifndef TREEQ_TREE_AXES_H_
#define TREEQ_TREE_AXES_H_

#include <string>
#include <string_view>
#include <vector>

#include "tree/node_set.h"
#include "tree/orders.h"
#include "tree/tree.h"
#include "util/status.h"

/// \file axes.h
/// The binary tree navigation relations ("axes", Section 2): Child,
/// Child+ (Descendant), Child* (Descendant-or-self), NextSibling,
/// NextSibling+ (Following-Sibling), NextSibling*, Following, FirstChild and
/// all their inverses, plus Self.
///
/// Two access paths are provided:
///   - AxisHolds:  O(1) pair test using the (pre, post) characterizations;
///   - AxisImage:  O(n) image of a node set under an axis, the workhorse of
///     the set-at-a-time Core XPath evaluator and the tree-specialized
///     semijoins (Sections 3, 4, 6).

namespace treeq {

/// All axes, closed under inverse.
enum class Axis {
  kSelf = 0,
  kChild,                    // Child(u, v): v is a child of u
  kParent,                   // inverse of Child
  kDescendant,               // Child+
  kAncestor,                 // inverse of Child+
  kDescendantOrSelf,         // Child*
  kAncestorOrSelf,           // inverse of Child*
  kNextSibling,              // NextSibling(u, v): v immediately follows u
  kPrevSibling,              // inverse of NextSibling
  kFollowingSibling,         // NextSibling+
  kPrecedingSibling,         // inverse of NextSibling+
  kFollowingSiblingOrSelf,   // NextSibling*
  kPrecedingSiblingOrSelf,   // inverse of NextSibling*
  kFollowing,                // Following(u, v) per the paper's definition
  kPreceding,                // inverse of Following
  kFirstChild,               // FirstChild(u, v): v is the first child of u
  kFirstChildInv,            // inverse of FirstChild
};

inline constexpr int kNumAxes = 17;

/// Returns the inverse axis (kSelf is its own inverse).
Axis InverseAxis(Axis axis);

/// Canonical name, e.g. "child", "descendant", "following-sibling".
const char* AxisName(Axis axis);

/// Parses an axis name. Accepts both XPath-style names ("descendant",
/// "following-sibling") and the paper's relational names ("Child+",
/// "NextSibling*", "Following", "FirstChild").
Result<Axis> ParseAxis(std::string_view name);

/// True for Child+, Child*, NextSibling+, NextSibling*, Following and their
/// inverses (used by the treewidth discussion and the rewriting engine).
bool IsTransitiveAxis(Axis axis);

/// True for the forward axes (Self, Child, Child+, Child*, NextSibling,
/// NextSibling+, NextSibling*, Following, FirstChild) — the fragment a
/// streaming evaluator can run (Section 5).
bool IsForwardAxis(Axis axis);

/// O(1) test whether Axis(u, v) holds. Requires `orders` computed from
/// `tree`.
bool AxisHolds(const Tree& tree, const TreeOrders& orders, Axis axis, NodeId u,
               NodeId v);

/// Computes `to` = { v : exists u in `from` with Axis(u, v) }, Section 3's
/// linear-time building block. The kernels are word-parallel: they iterate
/// only the set bits of `from` (tree/node_set.h skip-scan) and mark
/// contiguous pre-rank ranges with word fills, so the cost is
/// O(|from| + |to| + n/64) for most axes rather than a full n-node probe
/// loop; O(n) remains the worst case.
void AxisImage(const Tree& tree, const TreeOrders& orders, Axis axis,
               const NodeSet& from, NodeSet* to);

/// Memoization seam for AxisImage. The cache layer (src/cache/eval_cache.h)
/// implements this against a per-document, epoch-keyed store; the tree and
/// evaluator layers only ever see the abstract interface, so they carry no
/// cache dependency. Implementations must be safe for concurrent calls and
/// must return results bit-identical to AxisImage — Lookup either leaves
/// `*to` untouched (miss, returns false) or fully overwrites it with the
/// stored image (hit, returns true).
class AxisImageMemo {
 public:
  virtual ~AxisImageMemo() = default;
  virtual bool Lookup(Axis axis, const NodeSet& from, NodeSet* to) = 0;
  virtual void Store(Axis axis, const NodeSet& from, const NodeSet& to) = 0;
};

/// AxisImage through an optional memo: serves `*to` from `memo` when it
/// holds this (axis, from) image, otherwise computes it and stores it back.
/// Returns true when the image came from the memo. A null memo degenerates
/// to plain AxisImage.
bool AxisImageMemoized(const Tree& tree, const TreeOrders& orders, Axis axis,
                       const NodeSet& from, NodeSet* to, AxisImageMemo* memo);

/// All pairs (u, v) with Axis(u, v), in lexicographic (u, v) order. O(n^2)
/// materialization — intended for tests, XASR-style storage, and small
/// structures (this is exactly the quadratic blowup Section 2 warns about).
std::vector<std::pair<NodeId, NodeId>> MaterializeAxis(const Tree& tree,
                                                       const TreeOrders& orders,
                                                       Axis axis);

}  // namespace treeq

#endif  // TREEQ_TREE_AXES_H_
