#include "tree/xml.h"

#include <cctype>
#include <string>
#include <vector>

namespace treeq {

namespace {

/// Recursive-descent XML subset parser over a string_view.
class XmlParser {
 public:
  XmlParser(std::string_view input, const XmlOptions& options)
      : input_(input), options_(options) {}

  Result<Tree> Parse() {
    SkipMisc();
    if (!AtTagOpen()) return Error("expected a root element");
    TREEQ_RETURN_IF_ERROR(ParseElement());
    SkipMisc();
    if (pos_ != input_.size()) return Error("trailing content after root");
    return builder_.Finish();
  }

 private:
  bool Eof() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  bool AtTagOpen() const {
    return !Eof() && Peek() == '<' && pos_ + 1 < input_.size() &&
           (std::isalpha(static_cast<unsigned char>(input_[pos_ + 1])) ||
            input_[pos_ + 1] == '_');
  }

  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " at offset " + std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (!Eof() && std::isspace(static_cast<unsigned char>(Peek()))) ++pos_;
  }

  // Skips whitespace, comments, PIs, doctype, and the XML declaration.
  void SkipMisc() {
    for (;;) {
      SkipWhitespace();
      if (Eof() || Peek() != '<') return;
      if (input_.substr(pos_).starts_with("<!--")) {
        size_t end = input_.find("-->", pos_ + 4);
        pos_ = (end == std::string_view::npos) ? input_.size() : end + 3;
      } else if (input_.substr(pos_).starts_with("<?") ||
                 input_.substr(pos_).starts_with("<!")) {
        size_t end = input_.find('>', pos_);
        pos_ = (end == std::string_view::npos) ? input_.size() : end + 1;
      } else {
        return;
      }
    }
  }

  Result<std::string> ParseName() {
    size_t start = pos_;
    while (!Eof() &&
           (std::isalnum(static_cast<unsigned char>(Peek())) || Peek() == '_' ||
            Peek() == '-' || Peek() == '.' || Peek() == ':')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a name");
    return std::string(input_.substr(start, pos_ - start));
  }

  static std::string DecodeEntities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size();) {
      if (raw[i] == '&') {
        if (raw.substr(i).starts_with("&lt;")) {
          out.push_back('<');
          i += 4;
          continue;
        }
        if (raw.substr(i).starts_with("&gt;")) {
          out.push_back('>');
          i += 4;
          continue;
        }
        if (raw.substr(i).starts_with("&amp;")) {
          out.push_back('&');
          i += 5;
          continue;
        }
        if (raw.substr(i).starts_with("&quot;")) {
          out.push_back('"');
          i += 6;
          continue;
        }
        if (raw.substr(i).starts_with("&apos;")) {
          out.push_back('\'');
          i += 6;
          continue;
        }
      }
      out.push_back(raw[i]);
      ++i;
    }
    return out;
  }

  // Parses the start tag at pos_ (name plus attributes), emitting BeginNode
  // (and EndNode when self-closing). Leaves pos_ past the closing '>'.
  Status ParseStartTag(std::string* tag, bool* self_closing) {
    TREEQ_CHECK(Peek() == '<');
    ++pos_;
    TREEQ_ASSIGN_OR_RETURN(*tag, ParseName());
    NodeId node = builder_.BeginNode(*tag);
    // Attributes.
    for (;;) {
      SkipWhitespace();
      if (Eof()) return Error("unexpected end inside tag <" + *tag);
      if (Peek() == '>' || Peek() == '/') break;
      TREEQ_ASSIGN_OR_RETURN(std::string attr, ParseName());
      SkipWhitespace();
      if (Eof() || Peek() != '=') return Error("expected '=' after attribute");
      ++pos_;
      SkipWhitespace();
      if (Eof() || (Peek() != '"' && Peek() != '\'')) {
        return Error("expected a quoted attribute value");
      }
      char quote = Peek();
      ++pos_;
      size_t start = pos_;
      while (!Eof() && Peek() != quote) ++pos_;
      if (Eof()) return Error("unterminated attribute value");
      std::string value = DecodeEntities(input_.substr(start, pos_ - start));
      ++pos_;
      builder_.AddLabel(node, "@" + attr);
      builder_.AddLabel(node, "@" + attr + "=" + value);
    }
    if (Peek() == '/') {
      ++pos_;
      if (Eof() || Peek() != '>') return Error("expected '>' after '/'");
      ++pos_;
      builder_.EndNode();
      *self_closing = true;
      return Status::OK();
    }
    ++pos_;  // consume '>'
    *self_closing = false;
    return Status::OK();
  }

  // Iterative element parser. An explicit stack of open tag names replaces
  // recursion, so document depth is bounded by max_depth and the heap rather
  // than the call stack (deep inputs must not overflow, even under
  // sanitizers that inflate stack frames).
  Status ParseElement() {
    std::vector<std::string> open;
    for (;;) {
      // pos_ is at the '<' of a start tag here.
      if (static_cast<int>(open.size()) + 1 > options_.max_depth) {
        return Error("element nesting deeper than " +
                     std::to_string(options_.max_depth));
      }
      std::string tag;
      bool self_closing = false;
      TREEQ_RETURN_IF_ERROR(ParseStartTag(&tag, &self_closing));
      if (!self_closing) open.push_back(std::move(tag));
      // Content of the innermost open element: text, misc, and close tags,
      // until a child start tag sends us back around the outer loop.
      while (!open.empty()) {
        size_t text_start = pos_;
        while (!Eof() && Peek() != '<') ++pos_;
        if (options_.keep_text) {
          std::string text =
              DecodeEntities(input_.substr(text_start, pos_ - text_start));
          bool all_space = true;
          for (char c : text) {
            if (!std::isspace(static_cast<unsigned char>(c))) all_space = false;
          }
          if (!all_space) {
            NodeId t = builder_.BeginNode("#text");
            builder_.AddLabel(t, "#text=" + text);
            builder_.EndNode();
          }
        }
        if (Eof()) return Error("unexpected end inside <" + open.back() + ">");
        if (input_.substr(pos_).starts_with("</")) {
          pos_ += 2;
          TREEQ_ASSIGN_OR_RETURN(std::string close, ParseName());
          if (close != open.back()) {
            return Error("mismatched close tag </" + close + "> for <" +
                         open.back() + ">");
          }
          SkipWhitespace();
          if (Eof() || Peek() != '>') return Error("expected '>' in close tag");
          ++pos_;
          builder_.EndNode();
          open.pop_back();
          continue;
        }
        if (input_.substr(pos_).starts_with("<!--") ||
            input_.substr(pos_).starts_with("<?") ||
            input_.substr(pos_).starts_with("<!")) {
          SkipMisc();
          continue;
        }
        if (AtTagOpen()) break;
        return Error("unexpected '<'");
      }
      if (open.empty()) return Status::OK();
    }
  }

  std::string_view input_;
  XmlOptions options_;
  size_t pos_ = 0;
  TreeBuilder builder_;
};

std::string EncodeEntities(std::string_view raw) {
  std::string out;
  for (char c : raw) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

void WriteNode(const Tree& tree, NodeId n, std::string* out) {
  const LabelTable& labels = tree.label_table();
  const std::string& tag = labels.Name(tree.labels(n)[0]);
  if (tag == "#text") {
    for (LabelId l : tree.labels(n)) {
      const std::string& name = labels.Name(l);
      if (name.starts_with("#text=")) {
        out->append(EncodeEntities(name.substr(6)));
        return;
      }
    }
    return;
  }
  out->push_back('<');
  out->append(tag);
  for (size_t i = 1; i < tree.labels(n).size(); ++i) {
    const std::string& name = labels.Name(tree.labels(n)[i]);
    if (!name.starts_with("@")) continue;
    size_t eq = name.find('=');
    if (eq == std::string::npos) continue;  // bare "@a" marker label
    out->push_back(' ');
    out->append(name.substr(1, eq - 1));
    out->append("=\"");
    out->append(EncodeEntities(name.substr(eq + 1)));
    out->push_back('"');
  }
  if (tree.first_child(n) == kNullNode) {
    out->append("/>");
    return;
  }
  out->push_back('>');
  for (NodeId c = tree.first_child(n); c != kNullNode;
       c = tree.next_sibling(c)) {
    WriteNode(tree, c, out);
  }
  out->append("</");
  out->append(tag);
  out->push_back('>');
}

}  // namespace

Result<Tree> ParseXml(std::string_view input, const XmlOptions& options) {
  XmlParser parser(input, options);
  return parser.Parse();
}

std::string WriteXml(const Tree& tree) {
  std::string out;
  WriteNode(tree, tree.root(), &out);
  return out;
}

}  // namespace treeq
