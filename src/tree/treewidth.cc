#include "tree/treewidth.h"

#include <algorithm>
#include <set>
#include <string>

namespace treeq {

void Graph::AddEdge(int u, int v) {
  if (u == v) return;
  if (!HasEdge(u, v)) {
    adjacency[u].push_back(v);
    adjacency[v].push_back(u);
  }
}

bool Graph::HasEdge(int u, int v) const {
  const std::vector<int>& adj = adjacency[u];
  return std::find(adj.begin(), adj.end(), v) != adj.end();
}

int TreeDecomposition::Width() const {
  int max_bag = 0;
  for (const std::vector<int>& bag : bags) {
    max_bag = std::max(max_bag, static_cast<int>(bag.size()));
  }
  return max_bag - 1;
}

Status VerifyDecomposition(const Graph& graph,
                           const TreeDecomposition& decomposition) {
  const int n = graph.num_vertices();
  const int num_bags = static_cast<int>(decomposition.bags.size());
  if (static_cast<int>(decomposition.parent.size()) != num_bags) {
    return Status::InvalidArgument("parent array size mismatch");
  }

  // Condition 1: every vertex appears in some bag.
  std::vector<std::vector<int>> bags_of(n);
  for (int b = 0; b < num_bags; ++b) {
    for (int v : decomposition.bags[b]) {
      if (v < 0 || v >= n) {
        return Status::InvalidArgument("bag contains out-of-range vertex");
      }
      bags_of[v].push_back(b);
    }
  }
  for (int v = 0; v < n; ++v) {
    if (bags_of[v].empty()) {
      return Status::InvalidArgument("vertex " + std::to_string(v) +
                                     " is in no bag");
    }
  }

  // Condition 2: every edge is covered by some bag.
  for (int u = 0; u < n; ++u) {
    for (int v : graph.adjacency[u]) {
      if (v < u) continue;
      bool covered = false;
      for (int b : bags_of[u]) {
        const std::vector<int>& bag = decomposition.bags[b];
        if (std::find(bag.begin(), bag.end(), v) != bag.end()) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        return Status::InvalidArgument("edge (" + std::to_string(u) + "," +
                                       std::to_string(v) + ") uncovered");
      }
    }
  }

  // Condition 3: bags containing each vertex form a connected subtree.
  // Count, for each vertex v, the bags containing v whose parent bag also
  // contains v; connectivity holds iff exactly one bag of v lacks such a
  // parent (the top of v's subtree).
  for (int v = 0; v < n; ++v) {
    int tops = 0;
    for (int b : bags_of[v]) {
      int p = decomposition.parent[b];
      bool parent_has = false;
      if (p != -1) {
        const std::vector<int>& pbag = decomposition.bags[p];
        parent_has = std::find(pbag.begin(), pbag.end(), v) != pbag.end();
      }
      if (!parent_has) ++tops;
    }
    if (tops != 1) {
      return Status::InvalidArgument("vertex " + std::to_string(v) +
                                     " induces a disconnected set of bags");
    }
  }
  return Status::OK();
}

Graph ChildNextSiblingGraph(const Tree& tree) {
  Graph graph(tree.num_nodes());
  for (NodeId v = 0; v < tree.num_nodes(); ++v) {
    if (tree.parent(v) != kNullNode) graph.AddEdge(tree.parent(v), v);
    if (tree.next_sibling(v) != kNullNode) {
      graph.AddEdge(v, tree.next_sibling(v));
    }
  }
  return graph;
}

TreeDecomposition DecomposeChildNextSibling(const Tree& tree) {
  const int n = tree.num_nodes();
  TreeDecomposition d;
  d.bags.resize(n);
  d.parent.assign(n, -1);
  // Bag i corresponds to tree node i: {v, parent(v), prev-sibling(v)}.
  for (NodeId v = 0; v < n; ++v) {
    d.bags[v].push_back(v);
    if (tree.parent(v) != kNullNode) d.bags[v].push_back(tree.parent(v));
    if (tree.prev_sibling(v) != kNullNode) {
      d.bags[v].push_back(tree.prev_sibling(v));
    }
    // Attach along the FirstChild/NextSibling skeleton so that the bags
    // containing any given node stay connected (see DESIGN.md / Figure 4).
    if (tree.prev_sibling(v) != kNullNode) {
      d.parent[v] = tree.prev_sibling(v);
    } else if (tree.parent(v) != kNullNode) {
      d.parent[v] = tree.parent(v);
    }
  }
  return d;
}

TreeDecomposition GreedyDecompose(const Graph& graph) {
  const int n = graph.num_vertices();
  TreeDecomposition d;
  if (n == 0) return d;

  std::vector<std::set<int>> adj(n);
  for (int u = 0; u < n; ++u) {
    for (int v : graph.adjacency[u]) adj[u].insert(v);
  }
  std::vector<bool> eliminated(n, false);
  std::vector<int> elim_position(n, -1);
  std::vector<int> bag_of_vertex(n, -1);

  for (int step = 0; step < n; ++step) {
    // Pick the unEliminated vertex of minimum current degree.
    int best = -1;
    for (int v = 0; v < n; ++v) {
      if (eliminated[v]) continue;
      if (best == -1 || adj[v].size() < adj[best].size()) best = v;
    }
    eliminated[best] = true;
    elim_position[best] = step;
    std::vector<int> bag = {best};
    for (int w : adj[best]) bag.push_back(w);
    // Fill-in: make the neighborhood a clique, then remove `best`.
    for (int a : adj[best]) {
      for (int b : adj[best]) {
        if (a != b) adj[a].insert(b);
      }
      adj[a].erase(best);
    }
    bag_of_vertex[best] = static_cast<int>(d.bags.size());
    d.bags.push_back(std::move(bag));
    d.parent.push_back(-1);  // fixed up below
  }

  // Parent of v's bag: the bag of the neighbor (within v's bag) eliminated
  // soonest after v; the last-eliminated vertex roots the tree.
  for (int v = 0; v < n; ++v) {
    int my_bag = bag_of_vertex[v];
    int best_vertex = -1;
    for (int w : d.bags[my_bag]) {
      if (w == v) continue;
      if (best_vertex == -1 ||
          elim_position[w] < elim_position[best_vertex]) {
        best_vertex = w;
      }
    }
    if (best_vertex != -1) d.parent[my_bag] = bag_of_vertex[best_vertex];
  }
  return d;
}

}  // namespace treeq
