#ifndef TREEQ_TREE_ORDERS_H_
#define TREEQ_TREE_ORDERS_H_

#include <vector>

#include "tree/tree.h"

/// \file orders.h
/// The three total orders on tree nodes used throughout the paper
/// (Section 2): pre-order `<pre` (document order), post-order `<post`, and
/// breadth-first left-to-right order `<bflr`, plus depth and subtree size.
///
/// Indexes are 0-based: pre[n] == i means n is the (i+1)-th node in document
/// order. The paper's characterizations hold verbatim:
///   Child+(x, y)    iff  x <pre y  and  y <post x
///   Following(x, y) iff  x <pre y  and  x <post y

namespace treeq {

/// Precomputed order indexes for a Tree. Build once with ComputeOrders; all
/// axis tests and set operators take a const reference.
struct TreeOrders {
  /// pre[n], post[n], bflr[n]: rank of node n in the respective order.
  std::vector<int> pre;
  std::vector<int> post;
  std::vector<int> bflr;
  /// depth[n]: number of edges from the root.
  std::vector<int> depth;
  /// size[n]: number of nodes in the subtree rooted at n (including n).
  std::vector<int> size;
  /// Inverse permutations: node_at_pre[i] is the node with pre rank i.
  std::vector<NodeId> node_at_pre;
  std::vector<NodeId> node_at_post;
  std::vector<NodeId> node_at_bflr;
  /// True iff pre[n] == n for every node (document-style construction).
  /// The word-parallel axis kernels then treat pre-rank bitmaps and node-id
  /// bitmaps as the same thing and skip the rank->node remap pass.
  bool pre_is_identity = false;

  int num_nodes() const { return static_cast<int>(pre.size()); }

  /// The (pre, post, label) triple representation of Section 2: a node is
  /// fully located in the tree by its pre and post ranks.
  bool PreLess(NodeId a, NodeId b) const { return pre[a] < pre[b]; }
  bool PostLess(NodeId a, NodeId b) const { return post[a] < post[b]; }
  bool BflrLess(NodeId a, NodeId b) const { return bflr[a] < bflr[b]; }

  /// Child+(a, b): b is a proper descendant of a. O(1).
  bool IsProperAncestor(NodeId a, NodeId b) const {
    return pre[a] < pre[b] && post[b] < post[a];
  }

  /// Following(a, b) per the paper's definition. O(1).
  bool IsFollowing(NodeId a, NodeId b) const {
    return pre[a] < pre[b] && post[a] < post[b];
  }

  /// Pre rank of the first node strictly after the subtree of n in document
  /// order; nodes v with pre[v] >= SubtreeEndPre(n) are exactly Following(n).
  int SubtreeEndPre(NodeId n) const { return pre[n] + size[n]; }
};

/// Computes all orders in O(n) (iterative traversals; safe for deep trees).
TreeOrders ComputeOrders(const Tree& tree);

}  // namespace treeq

#endif  // TREEQ_TREE_ORDERS_H_
