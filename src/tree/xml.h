#ifndef TREEQ_TREE_XML_H_
#define TREEQ_TREE_XML_H_

#include <string>
#include <string_view>

#include "tree/tree.h"
#include "util/status.h"

/// \file xml.h
/// A small XML 1.0 subset reader/writer. Queries in this library only see
/// the navigational structure ("the bare tree structures of the parse trees
/// of XML documents", Section 2), so the parser maps:
///   - each element to a node labeled with its tag name,
///   - each attribute `a="v"` to two extra labels on that node: "@a" and
///     "@a=v" (exercising multi-label nodes),
///   - text content to child nodes labeled "#text" when
///     XmlOptions::keep_text is set, and to nothing otherwise.
/// Comments, processing instructions, and the XML declaration are skipped.

namespace treeq {

struct XmlOptions {
  /// Keep non-whitespace text content as "#text"-labeled leaf children.
  bool keep_text = false;
  /// Maximum element nesting depth. The parser itself is iterative (heap
  /// stack), but the trees it produces are consumed by recursive traversals
  /// elsewhere, and an unbounded `<a><a><a>...` input would make the parse
  /// result a stack-overflow hazard for them; deeper documents get a
  /// ParseError (with offset) instead. Raise it explicitly to admit deeper
  /// documents.
  int max_depth = 10000;
};

/// Parses `input` into a Tree. Returns ParseError with a position on
/// malformed input.
Result<Tree> ParseXml(std::string_view input, const XmlOptions& options = {});

/// Serializes a tree back to XML using each node's first label as the tag
/// (attribute/"#text" labels are rendered appropriately). Inverse of
/// ParseXml up to whitespace.
std::string WriteXml(const Tree& tree);

}  // namespace treeq

#endif  // TREEQ_TREE_XML_H_
