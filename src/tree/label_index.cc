#include "tree/label_index.h"

#include "obs/obs.h"

namespace treeq {

LabelIndex::LabelIndex(const Tree& tree, const TreeOrders& orders)
    : universe_(tree.num_nodes()),
      items_(static_cast<size_t>(tree.label_table().size())),
      sets_(items_.size()) {
  TREEQ_OBS_INC("labelindex.builds");
  // Walking nodes in pre order makes every per-label stream come out
  // sorted by pre rank with no per-label sort.
  for (int i = 0; i < orders.num_nodes(); ++i) {
    const NodeId v = orders.node_at_pre[i];
    for (LabelId label : tree.labels(v)) {
      items_[static_cast<size_t>(label)].push_back(
          JoinItem{i, orders.SubtreeEndPre(v), orders.depth[v], v});
    }
  }
}

const std::vector<JoinItem>& LabelIndex::Items(LabelId label) const {
  static const std::vector<JoinItem> kEmpty;
  if (!InRange(label)) return kEmpty;
  TREEQ_OBS_INC("labelindex.hits");
  return items_[static_cast<size_t>(label)];
}

const NodeSet& LabelIndex::Set(LabelId label) const {
  std::lock_guard<std::mutex> lock(sets_mu_);
  if (!InRange(label)) {
    if (empty_set_ == nullptr) {
      empty_set_ = std::make_unique<NodeSet>(universe_);
    }
    return *empty_set_;
  }
  std::unique_ptr<NodeSet>& slot = sets_[static_cast<size_t>(label)];
  if (slot == nullptr) {
    auto set = std::make_unique<NodeSet>(universe_);
    for (const JoinItem& item : items_[static_cast<size_t>(label)]) {
      set->Insert(item.node);
    }
    slot = std::move(set);
  }
  TREEQ_OBS_INC("labelindex.hits");
  return *slot;
}

}  // namespace treeq
