#include "tree/tree.h"

#include <algorithm>

namespace treeq {

LabelId LabelTable::Intern(std::string_view name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  LabelId id = static_cast<LabelId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

LabelId LabelTable::Lookup(std::string_view name) const {
  auto it = ids_.find(name);
  return it == ids_.end() ? kNullLabel : it->second;
}

const std::string& LabelTable::Name(LabelId id) const {
  TREEQ_CHECK(id >= 0 && id < size());
  return names_[id];
}

bool Tree::HasLabel(NodeId n, LabelId label) const {
  const std::vector<LabelId>& ls = labels_[n];
  return std::find(ls.begin(), ls.end(), label) != ls.end();
}

bool Tree::HasLabel(NodeId n, std::string_view name) const {
  LabelId id = label_table_.Lookup(name);
  return id != kNullLabel && HasLabel(n, id);
}

std::vector<NodeId> Tree::NodesWithLabel(LabelId label) const {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < num_nodes(); ++n) {
    if (HasLabel(n, label)) out.push_back(n);
  }
  return out;
}

int Tree::NumChildren(NodeId n) const {
  int count = 0;
  for (NodeId c = first_child_[n]; c != kNullNode; c = next_sibling_[c]) {
    ++count;
  }
  return count;
}

int Tree::Depth() const {
  if (num_nodes() == 0) return 0;
  std::vector<int> depth(num_nodes(), 0);
  int max_depth = 0;
  // Node ids are assigned parent-before-child by TreeBuilder.
  for (NodeId n = 1; n < num_nodes(); ++n) {
    depth[n] = depth[parent_[n]] + 1;
    max_depth = std::max(max_depth, depth[n]);
  }
  return max_depth;
}

NodeId TreeBuilder::NewNode(NodeId parent) {
  TREEQ_CHECK(!finished_);
  NodeId id = static_cast<NodeId>(tree_.parent_.size());
  tree_.parent_.push_back(parent);
  tree_.first_child_.push_back(kNullNode);
  tree_.last_child_.push_back(kNullNode);
  tree_.next_sibling_.push_back(kNullNode);
  tree_.prev_sibling_.push_back(kNullNode);
  tree_.labels_.emplace_back();
  if (parent != kNullNode) {
    NodeId prev = tree_.last_child_[parent];
    if (prev == kNullNode) {
      tree_.first_child_[parent] = id;
    } else {
      tree_.next_sibling_[prev] = id;
      tree_.prev_sibling_[id] = prev;
    }
    tree_.last_child_[parent] = id;
  }
  return id;
}

NodeId TreeBuilder::BeginNode(std::string_view label) {
  NodeId parent = open_stack_.empty() ? kNullNode : open_stack_.back();
  TREEQ_CHECK(parent != kNullNode || num_nodes() == 0);
  NodeId id = NewNode(parent);
  AddLabel(id, label);
  open_stack_.push_back(id);
  return id;
}

NodeId TreeBuilder::BeginNode(const std::vector<std::string>& node_labels) {
  NodeId parent = open_stack_.empty() ? kNullNode : open_stack_.back();
  TREEQ_CHECK(parent != kNullNode || num_nodes() == 0);
  NodeId id = NewNode(parent);
  for (const std::string& l : node_labels) AddLabel(id, l);
  open_stack_.push_back(id);
  return id;
}

void TreeBuilder::EndNode() {
  TREEQ_CHECK(!open_stack_.empty());
  open_stack_.pop_back();
}

NodeId TreeBuilder::AddChild(NodeId parent, std::string_view label) {
  TREEQ_CHECK(parent != kNullNode || num_nodes() == 0);
  NodeId id = NewNode(parent);
  AddLabel(id, label);
  return id;
}

NodeId TreeBuilder::AddChild(NodeId parent,
                             const std::vector<std::string>& node_labels) {
  TREEQ_CHECK(parent != kNullNode || num_nodes() == 0);
  NodeId id = NewNode(parent);
  for (const std::string& l : node_labels) AddLabel(id, l);
  return id;
}

void TreeBuilder::AddLabel(NodeId node, std::string_view label) {
  TREEQ_CHECK(node >= 0 && node < num_nodes());
  LabelId id = tree_.label_table_.Intern(label);
  if (!tree_.HasLabel(node, id)) tree_.labels_[node].push_back(id);
}

Result<Tree> TreeBuilder::Finish() {
  if (finished_) return Status::Internal("TreeBuilder::Finish called twice");
  if (!open_stack_.empty()) {
    return Status::InvalidArgument("unclosed BeginNode calls at Finish");
  }
  if (num_nodes() == 0) {
    return Status::InvalidArgument("cannot build an empty tree");
  }
  finished_ = true;
  return std::move(tree_);
}

namespace {

void OutlineRec(const Tree& tree, NodeId n, int indent, std::string* out) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  bool first = true;
  for (LabelId l : tree.labels(n)) {
    if (!first) out->push_back(',');
    out->append(tree.label_table().Name(l));
    first = false;
  }
  if (first) out->append("(unlabeled)");
  out->push_back('\n');
  for (NodeId c = tree.first_child(n); c != kNullNode;
       c = tree.next_sibling(c)) {
    OutlineRec(tree, c, indent + 1, out);
  }
}

}  // namespace

std::string ToOutline(const Tree& tree) {
  std::string out;
  OutlineRec(tree, tree.root(), 0, &out);
  return out;
}

}  // namespace treeq
