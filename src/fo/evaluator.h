#ifndef TREEQ_FO_EVALUATOR_H_
#define TREEQ_FO_EVALUATOR_H_

#include <cstdint>

#include "cq/ast.h"
#include "fo/ast.h"
#include "tree/document.h"
#include "tree/orders.h"
#include "util/exec_context.h"
#include "util/status.h"

/// \file evaluator.h
/// Naive first-order model checking over trees: direct recursion on the
/// formula, trying every node at each quantifier. Exponential-time in the
/// quantifier depth (FO over trees is PSPACE-complete in combined
/// complexity) but polynomial for any fixed query — the data-complexity
/// side of Section 4's discussion. Serves as the oracle for the Corollary
/// 5.2 pipeline (fo/corollary52.h).

namespace treeq {
namespace fo {

/// Truth of a closed (sentence) formula. InvalidArgument if free variables
/// remain; ResourceExhausted if `budget` recursion steps are exceeded. The
/// ExecContext is charged one unit per recursion step, so deadlines and
/// cancellation abort the PSPACE-hard recursion cooperatively.
Result<bool> EvaluateSentenceNaive(const Formula& formula, const Tree& tree,
                                   const TreeOrders& orders,
                                   uint64_t budget = UINT64_MAX,
                                   const ExecContext& exec =
                                       ExecContext::Unbounded());

/// All satisfying assignments of the free variables (in FreeVariables
/// order), deduplicated and sorted.
Result<cq::TupleSet> EvaluateFoNaive(const Formula& formula, const Tree& tree,
                                     const TreeOrders& orders,
                                     uint64_t budget = UINT64_MAX,
                                     const ExecContext& exec =
                                         ExecContext::Unbounded());

/// Document-taking overloads (tree/document.h); thin forwarders.
inline Result<bool> EvaluateSentenceNaive(
    const Formula& formula, const Document& doc, uint64_t budget = UINT64_MAX,
    const ExecContext& exec = ExecContext::Unbounded()) {
  return EvaluateSentenceNaive(formula, doc.tree(), doc.orders(), budget,
                               exec);
}
inline Result<cq::TupleSet> EvaluateFoNaive(
    const Formula& formula, const Document& doc, uint64_t budget = UINT64_MAX,
    const ExecContext& exec = ExecContext::Unbounded()) {
  return EvaluateFoNaive(formula, doc.tree(), doc.orders(), budget, exec);
}

}  // namespace fo
}  // namespace treeq

#endif  // TREEQ_FO_EVALUATOR_H_
