#ifndef TREEQ_FO_PARSER_H_
#define TREEQ_FO_PARSER_H_

#include <memory>
#include <string_view>

#include "fo/ast.h"
#include "util/status.h"

/// \file parser.h
/// Text syntax for FO formulas over trees:
///
///   exists x . exists y . (Child(x, y) and (Lab_a(y) or Lab_b(y)))
///   forall x . not Lab_c(x)
///   exists x . exists y . Child+(x, y) and x = x
///
/// Quantifiers bind as far right as possible ("dot notation"); `and` binds
/// tighter than `or`; `not` applies to the following unary formula. Atom
/// names follow the conjunctive-query parser: any ParseAxis name is a
/// binary axis atom, Lab_<l>(v) / Label("l", v) are label atoms, `v = w`
/// is equality. `%`/`#` start comments.

namespace treeq {
namespace fo {

Result<std::unique_ptr<Formula>> ParseFo(std::string_view input);

}  // namespace fo
}  // namespace treeq

#endif  // TREEQ_FO_PARSER_H_
