#ifndef TREEQ_FO_COROLLARY52_H_
#define TREEQ_FO_COROLLARY52_H_

#include <vector>

#include "cq/ast.h"
#include "fo/ast.h"
#include "tree/document.h"
#include "tree/orders.h"
#include "util/exec_context.h"
#include "util/status.h"

/// \file corollary52.h
/// Corollary 5.2: a fixed positive Boolean FO query evaluates on trees in
/// time O(||A||). The pipeline composes the paper's Section 5 machinery:
///
///   positive FO --(DNF over existentials, fresh renaming)-->
///     union of conjunctive queries --(Theorem 5.1, lazy variant)-->
///     union of acyclic (forest-shaped) positive queries --(Yannakakis
///     per connected component)--> Boolean answer.
///
/// Everything except the final Yannakakis step depends only on the query,
/// so for a fixed query the document-dependent cost is linear.

namespace treeq {
namespace fo {

/// DNF conversion: an equivalent union of conjunctive queries. Requires
/// IsPositive(formula). Free variables become head variables (in
/// FreeVariables order); equality atoms are encoded as Self axis atoms
/// (unified away by the rewriting). Exponential in the number of kOr nodes.
Result<std::vector<cq::ConjunctiveQuery>> PositiveFoToCqUnion(
    const Formula& formula);

/// Work counters for the bench.
struct Corollary52Stats {
  int cq_disjuncts = 0;       // after DNF
  int acyclic_disjuncts = 0;  // after Theorem 5.1
};

/// Corollary 5.2: truth of a positive FO sentence via the pipeline above.
/// The ExecContext is charged one linear pass per acyclic disjunct, so
/// unions blown up by the DNF conversion abort at a deadline.
Result<bool> EvaluateSentencePositive(const Formula& formula,
                                      const Tree& tree,
                                      const TreeOrders& orders,
                                      Corollary52Stats* stats = nullptr,
                                      const ExecContext& exec =
                                          ExecContext::Unbounded());

/// Document-taking overload (tree/document.h); thin forwarder.
inline Result<bool> EvaluateSentencePositive(
    const Formula& formula, const Document& doc,
    Corollary52Stats* stats = nullptr,
    const ExecContext& exec = ExecContext::Unbounded()) {
  return EvaluateSentencePositive(formula, doc.tree(), doc.orders(), stats,
                                  exec);
}

}  // namespace fo
}  // namespace treeq

#endif  // TREEQ_FO_COROLLARY52_H_
