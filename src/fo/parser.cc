#include "fo/parser.h"

#include <cctype>
#include <string>

namespace treeq {
namespace fo {
namespace {

class FoParser {
 public:
  explicit FoParser(std::string_view input) : input_(input) {}

  Result<std::unique_ptr<Formula>> Parse() {
    TREEQ_ASSIGN_OR_RETURN(std::unique_ptr<Formula> f, ParseFormula());
    Skip();
    if (!Eof()) return Error("trailing input");
    return f;
  }

 private:
  bool Eof() const { return pos_ >= input_.size(); }
  char Peek() const { return Eof() ? '\0' : input_[pos_]; }

  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " at offset " + std::to_string(pos_));
  }

  void Skip() {
    for (;;) {
      while (!Eof() && std::isspace(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
      if (!Eof() && (Peek() == '%' || Peek() == '#')) {
        while (!Eof() && Peek() != '\n') ++pos_;
        continue;
      }
      return;
    }
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '+' || c == '*' || c == '-';
  }

  bool MatchWord(std::string_view word) {
    Skip();
    if (!input_.substr(pos_).starts_with(word)) return false;
    size_t end = pos_ + word.size();
    if (end < input_.size() && IsNameChar(input_[end])) return false;
    pos_ = end;
    return true;
  }

  bool Match(char c) {
    Skip();
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }

  Result<std::string> ParseName() {
    Skip();
    size_t start = pos_;
    while (!Eof() && IsNameChar(Peek())) ++pos_;
    if (pos_ == start) return Error("expected a name");
    return std::string(input_.substr(start, pos_ - start));
  }

  Result<std::string> ParseQuoted() {
    Skip();
    if (Peek() != '"') return Error("expected '\"'");
    ++pos_;
    size_t start = pos_;
    while (!Eof() && Peek() != '"') ++pos_;
    if (Eof()) return Error("unterminated string");
    std::string s(input_.substr(start, pos_ - start));
    ++pos_;
    return s;
  }

  Result<std::unique_ptr<Formula>> ParseFormula() {
    // Quantifiers scope maximally to the right.
    if (MatchWord("exists")) return ParseQuantified(/*forall=*/false);
    if (MatchWord("forall")) return ParseQuantified(/*forall=*/true);
    return ParseOr();
  }

  Result<std::unique_ptr<Formula>> ParseQuantified(bool forall) {
    TREEQ_ASSIGN_OR_RETURN(std::string var, ParseName());
    if (!Match('.')) return Error("expected '.' after quantifier");
    TREEQ_ASSIGN_OR_RETURN(std::unique_ptr<Formula> body, ParseFormula());
    return forall ? Formula::ForAll(var, std::move(body))
                  : Formula::Exists(var, std::move(body));
  }

  Result<std::unique_ptr<Formula>> ParseOr() {
    TREEQ_ASSIGN_OR_RETURN(std::unique_ptr<Formula> left, ParseAnd());
    while (MatchWord("or")) {
      TREEQ_ASSIGN_OR_RETURN(std::unique_ptr<Formula> right, ParseAnd());
      left = Formula::Or(std::move(left), std::move(right));
    }
    return left;
  }

  Result<std::unique_ptr<Formula>> ParseAnd() {
    TREEQ_ASSIGN_OR_RETURN(std::unique_ptr<Formula> left, ParseUnary());
    while (MatchWord("and")) {
      TREEQ_ASSIGN_OR_RETURN(std::unique_ptr<Formula> right, ParseUnary());
      left = Formula::And(std::move(left), std::move(right));
    }
    return left;
  }

  Result<std::unique_ptr<Formula>> ParseUnary() {
    if (MatchWord("not")) {
      TREEQ_ASSIGN_OR_RETURN(std::unique_ptr<Formula> inner, ParseUnary());
      return Formula::Not(std::move(inner));
    }
    if (MatchWord("exists")) return ParseQuantified(/*forall=*/false);
    if (MatchWord("forall")) return ParseQuantified(/*forall=*/true);
    if (Match('(')) {
      TREEQ_ASSIGN_OR_RETURN(std::unique_ptr<Formula> inner, ParseFormula());
      if (!Match(')')) return Error("expected ')'");
      return inner;
    }
    return ParseAtom();
  }

  Result<std::unique_ptr<Formula>> ParseAtom() {
    TREEQ_ASSIGN_OR_RETURN(std::string name, ParseName());
    Skip();
    if (Peek() == '=') {
      ++pos_;
      TREEQ_ASSIGN_OR_RETURN(std::string rhs, ParseName());
      return Formula::Equals(name, rhs);
    }
    if (name == "Label") {
      if (!Match('(')) return Error("expected '('");
      TREEQ_ASSIGN_OR_RETURN(std::string label, ParseQuoted());
      if (!Match(',')) return Error("expected ','");
      TREEQ_ASSIGN_OR_RETURN(std::string v, ParseName());
      if (!Match(')')) return Error("expected ')'");
      return Formula::Label(label, v);
    }
    if (name.starts_with("Lab_")) {
      if (!Match('(')) return Error("expected '('");
      TREEQ_ASSIGN_OR_RETURN(std::string v, ParseName());
      if (!Match(')')) return Error("expected ')'");
      return Formula::Label(name.substr(4), v);
    }
    Result<Axis> axis = ParseAxis(name);
    if (!axis.ok()) return Error("unknown atom '" + name + "'");
    if (!Match('(')) return Error("expected '('");
    TREEQ_ASSIGN_OR_RETURN(std::string v0, ParseName());
    if (!Match(',')) return Error("expected ','");
    TREEQ_ASSIGN_OR_RETURN(std::string v1, ParseName());
    if (!Match(')')) return Error("expected ')'");
    return Formula::AxisAtom(axis.value(), v0, v1);
  }

  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<Formula>> ParseFo(std::string_view input) {
  return FoParser(input).Parse();
}

}  // namespace fo
}  // namespace treeq
