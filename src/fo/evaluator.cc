#include "fo/evaluator.h"

#include <map>
#include <string>

namespace treeq {
namespace fo {
namespace {

class NaiveChecker {
 public:
  NaiveChecker(const Tree& tree, const TreeOrders& orders, uint64_t budget,
               const ExecContext& exec)
      : tree_(tree), orders_(orders), budget_(budget), exec_(exec) {}

  Result<bool> Eval(const Formula& f, std::map<std::string, NodeId>* env) {
    TREEQ_RETURN_IF_ERROR(exec_.Charge(1));
    if (budget_ == 0) {
      return Status::ResourceExhausted("naive FO evaluation budget exceeded");
    }
    --budget_;
    switch (f.kind) {
      case Formula::Kind::kLabel:
        return tree_.HasLabel(Lookup(f.var0, env), f.label);
      case Formula::Kind::kAxis:
        return AxisHolds(tree_, orders_, f.axis, Lookup(f.var0, env),
                         Lookup(f.var1, env));
      case Formula::Kind::kEquals:
        return Lookup(f.var0, env) == Lookup(f.var1, env);
      case Formula::Kind::kAnd: {
        TREEQ_ASSIGN_OR_RETURN(bool l, Eval(*f.left, env));
        if (!l) return false;
        return Eval(*f.right, env);
      }
      case Formula::Kind::kOr: {
        TREEQ_ASSIGN_OR_RETURN(bool l, Eval(*f.left, env));
        if (l) return true;
        return Eval(*f.right, env);
      }
      case Formula::Kind::kNot: {
        TREEQ_ASSIGN_OR_RETURN(bool l, Eval(*f.left, env));
        return !l;
      }
      case Formula::Kind::kExists:
      case Formula::Kind::kForAll: {
        const bool forall = f.kind == Formula::Kind::kForAll;
        auto saved = env->find(f.var0);
        NodeId saved_value = saved == env->end() ? kNullNode : saved->second;
        bool had = saved != env->end();
        for (NodeId v = 0; v < tree_.num_nodes(); ++v) {
          (*env)[f.var0] = v;
          TREEQ_ASSIGN_OR_RETURN(bool inner, Eval(*f.left, env));
          if (inner != forall) {
            // exists: found a witness; forall: found a counterexample.
            RestoreVar(f.var0, had, saved_value, env);
            return !forall;
          }
        }
        RestoreVar(f.var0, had, saved_value, env);
        return forall;
      }
    }
    return Status::Internal("unreachable");
  }

 private:
  NodeId Lookup(const std::string& var,
                std::map<std::string, NodeId>* env) const {
    auto it = env->find(var);
    TREEQ_CHECK(it != env->end());
    return it->second;
  }

  static void RestoreVar(const std::string& var, bool had, NodeId value,
                         std::map<std::string, NodeId>* env) {
    if (had) {
      (*env)[var] = value;
    } else {
      env->erase(var);
    }
  }

  const Tree& tree_;
  const TreeOrders& orders_;
  uint64_t budget_;
  const ExecContext& exec_;
};

}  // namespace

Result<bool> EvaluateSentenceNaive(const Formula& formula, const Tree& tree,
                                   const TreeOrders& orders, uint64_t budget,
                                   const ExecContext& exec) {
  if (!FreeVariables(formula).empty()) {
    return Status::InvalidArgument("formula has free variables");
  }
  NaiveChecker checker(tree, orders, budget, exec);
  std::map<std::string, NodeId> env;
  return checker.Eval(formula, &env);
}

Result<cq::TupleSet> EvaluateFoNaive(const Formula& formula, const Tree& tree,
                                     const TreeOrders& orders,
                                     uint64_t budget,
                                     const ExecContext& exec) {
  std::vector<std::string> free_vars = FreeVariables(formula);
  NaiveChecker checker(tree, orders, budget, exec);
  cq::TupleSet result;
  std::vector<NodeId> tuple(free_vars.size(), 0);
  std::map<std::string, NodeId> env;
  // Odometer over assignments of the free variables.
  for (;;) {
    for (size_t i = 0; i < free_vars.size(); ++i) {
      env[free_vars[i]] = tuple[i];
    }
    TREEQ_ASSIGN_OR_RETURN(bool holds, checker.Eval(formula, &env));
    if (holds) result.push_back(tuple);
    size_t pos = 0;
    while (pos < tuple.size() && ++tuple[pos] == tree.num_nodes()) {
      tuple[pos] = 0;
      ++pos;
    }
    if (pos == tuple.size()) break;
    if (free_vars.empty()) break;
  }
  cq::CanonicalizeTuples(&result);
  return result;
}

}  // namespace fo
}  // namespace treeq
