#include "fo/corollary52.h"

#include <map>
#include <string>

#include "cq/rewrite.h"
#include "cq/yannakakis.h"

namespace treeq {
namespace fo {
namespace {

/// A partially built conjunct: atoms over scoped variable ids.
struct Fragment {
  std::vector<std::pair<std::string, int>> labels;      // (label, var id)
  std::vector<std::tuple<Axis, int, int>> axis_atoms;   // incl. Self for =
};

/// DNF builder with capture-avoiding renaming: every quantifier binding
/// introduces a fresh id; free variables get stable ids registered up
/// front.
class DnfBuilder {
 public:
  Result<std::vector<Fragment>> Build(const Formula& f,
                                      std::map<std::string, int>* scope) {
    switch (f.kind) {
      case Formula::Kind::kLabel: {
        TREEQ_ASSIGN_OR_RETURN(int v, Resolve(f.var0, scope));
        Fragment frag;
        frag.labels.emplace_back(f.label, v);
        return std::vector<Fragment>{std::move(frag)};
      }
      case Formula::Kind::kAxis: {
        TREEQ_ASSIGN_OR_RETURN(int v0, Resolve(f.var0, scope));
        TREEQ_ASSIGN_OR_RETURN(int v1, Resolve(f.var1, scope));
        Fragment frag;
        frag.axis_atoms.emplace_back(f.axis, v0, v1);
        return std::vector<Fragment>{std::move(frag)};
      }
      case Formula::Kind::kEquals: {
        TREEQ_ASSIGN_OR_RETURN(int v0, Resolve(f.var0, scope));
        TREEQ_ASSIGN_OR_RETURN(int v1, Resolve(f.var1, scope));
        Fragment frag;
        frag.axis_atoms.emplace_back(Axis::kSelf, v0, v1);
        return std::vector<Fragment>{std::move(frag)};
      }
      case Formula::Kind::kAnd: {
        TREEQ_ASSIGN_OR_RETURN(std::vector<Fragment> left,
                               Build(*f.left, scope));
        TREEQ_ASSIGN_OR_RETURN(std::vector<Fragment> right,
                               Build(*f.right, scope));
        std::vector<Fragment> out;
        for (const Fragment& l : left) {
          for (const Fragment& r : right) {
            Fragment merged = l;
            merged.labels.insert(merged.labels.end(), r.labels.begin(),
                                 r.labels.end());
            merged.axis_atoms.insert(merged.axis_atoms.end(),
                                     r.axis_atoms.begin(),
                                     r.axis_atoms.end());
            out.push_back(std::move(merged));
          }
        }
        return out;
      }
      case Formula::Kind::kOr: {
        TREEQ_ASSIGN_OR_RETURN(std::vector<Fragment> out,
                               Build(*f.left, scope));
        TREEQ_ASSIGN_OR_RETURN(std::vector<Fragment> right,
                               Build(*f.right, scope));
        out.insert(out.end(), std::make_move_iterator(right.begin()),
                   std::make_move_iterator(right.end()));
        return out;
      }
      case Formula::Kind::kExists: {
        int fresh = next_id_++;
        var_names_.push_back(f.var0);
        auto saved = scope->find(f.var0);
        int saved_id = saved == scope->end() ? -1 : saved->second;
        (*scope)[f.var0] = fresh;
        Result<std::vector<Fragment>> body = Build(*f.left, scope);
        if (saved_id == -1) {
          scope->erase(f.var0);
        } else {
          (*scope)[f.var0] = saved_id;
        }
        return body;
      }
      case Formula::Kind::kNot:
      case Formula::Kind::kForAll:
        return Status::InvalidArgument(
            "PositiveFoToCqUnion requires a positive formula");
    }
    return Status::Internal("unreachable");
  }

  int RegisterFree(const std::string& name) {
    int id = next_id_++;
    var_names_.push_back(name);
    return id;
  }

  const std::string& NameOf(int id) const { return var_names_[id]; }
  int num_ids() const { return next_id_; }

 private:
  Result<int> Resolve(const std::string& name,
                      std::map<std::string, int>* scope) {
    auto it = scope->find(name);
    if (it == scope->end()) {
      return Status::Internal("unscoped variable " + name);
    }
    return it->second;
  }

  int next_id_ = 0;
  std::vector<std::string> var_names_;
};

}  // namespace

Result<std::vector<cq::ConjunctiveQuery>> PositiveFoToCqUnion(
    const Formula& formula) {
  if (!IsPositive(formula)) {
    return Status::InvalidArgument(
        "PositiveFoToCqUnion requires a positive formula");
  }
  DnfBuilder builder;
  std::map<std::string, int> scope;
  std::vector<std::string> free_vars = FreeVariables(formula);
  std::vector<int> free_ids;
  for (const std::string& v : free_vars) {
    int id = builder.RegisterFree(v);
    scope[v] = id;
    free_ids.push_back(id);
  }
  TREEQ_ASSIGN_OR_RETURN(std::vector<Fragment> fragments,
                         builder.Build(formula, &scope));

  std::vector<cq::ConjunctiveQuery> out;
  for (const Fragment& frag : fragments) {
    cq::ConjunctiveQuery query;
    std::map<int, int> var_of;
    auto map_var = [&](int id) {
      auto it = var_of.find(id);
      if (it != var_of.end()) return it->second;
      int v = query.AddVar(builder.NameOf(id) + "#" + std::to_string(id));
      var_of.emplace(id, v);
      return v;
    };
    // Head variables first so projections stay aligned even if a free
    // variable appears in no atom of this disjunct (it is then
    // unconstrained — any node).
    for (int id : free_ids) map_var(id);
    for (const auto& [label, id] : frag.labels) {
      query.AddLabelAtom(label, map_var(id));
    }
    for (const auto& [axis, a, b] : frag.axis_atoms) {
      int va = map_var(a);
      int vb = map_var(b);
      query.AddAxisAtom(axis, va, vb);
    }
    for (int id : free_ids) query.AddHeadVar(var_of.at(id));
    out.push_back(std::move(query));
  }
  return out;
}

Result<bool> EvaluateSentencePositive(const Formula& formula, const Tree& tree,
                                      const TreeOrders& orders,
                                      Corollary52Stats* stats,
                                      const ExecContext& exec) {
  if (!FreeVariables(formula).empty()) {
    return Status::InvalidArgument("formula has free variables");
  }
  TREEQ_ASSIGN_OR_RETURN(std::vector<cq::ConjunctiveQuery> disjuncts,
                         PositiveFoToCqUnion(formula));
  if (stats != nullptr) {
    stats->cq_disjuncts = static_cast<int>(disjuncts.size());
  }
  for (const cq::ConjunctiveQuery& cq_disjunct : disjuncts) {
    TREEQ_ASSIGN_OR_RETURN(cq::RewriteOutput rewritten,
                           cq::RewriteToAcyclicUnionLazy(cq_disjunct));
    if (stats != nullptr) {
      stats->acyclic_disjuncts +=
          static_cast<int>(rewritten.queries.size());
    }
    for (const cq::ConjunctiveQuery& acyclic : rewritten.queries) {
      // Each Yannakakis pass is O(|Q| * |D|); charge it as a block.
      TREEQ_RETURN_IF_ERROR(exec.Charge(
          1 + static_cast<uint64_t>(tree.num_nodes()) * acyclic.num_vars()));
      TREEQ_ASSIGN_OR_RETURN(
          bool satisfiable,
          cq::EvaluateBooleanAcyclicForest(acyclic, tree, orders));
      if (satisfiable) return true;
    }
  }
  return false;
}

}  // namespace fo
}  // namespace treeq
