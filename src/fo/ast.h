#ifndef TREEQ_FO_AST_H_
#define TREEQ_FO_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "tree/axes.h"

/// \file ast.h
/// First-order logic over tree structures (Section 3): formulas built from
/// label atoms Lab_a(x), axis atoms R(x, y), equality, the Boolean
/// connectives and quantifiers. A k-ary FO query is a formula with k free
/// variables.
///
/// A *positive* FO query uses no negation and no universal quantification —
/// the fragment Theorem 5.1 / Corollary 5.2 make linear-time (fo/
/// corollary52.h). The naive evaluator (fo/evaluator.h) handles full FO,
/// realizing the "FO has linear-time data complexity but PSPACE combined
/// complexity" contrast.

namespace treeq {
namespace fo {

struct Formula {
  enum class Kind {
    kLabel,   // Lab_label(var)
    kAxis,    // axis(var0, var1)
    kEquals,  // var0 = var1
    kAnd,
    kOr,
    kNot,     // uses `left`
    kExists,  // var quantified in `left`
    kForAll,  // var quantified in `left`
  };

  Kind kind = Kind::kLabel;
  std::string label;     // kLabel
  Axis axis = Axis::kSelf;
  std::string var0;      // kLabel/kAxis/kEquals; quantified var for ∃/∀
  std::string var1;      // kAxis/kEquals
  std::unique_ptr<Formula> left;
  std::unique_ptr<Formula> right;

  static std::unique_ptr<Formula> Label(std::string label, std::string var);
  static std::unique_ptr<Formula> AxisAtom(Axis axis, std::string var0,
                                           std::string var1);
  static std::unique_ptr<Formula> Equals(std::string var0, std::string var1);
  static std::unique_ptr<Formula> And(std::unique_ptr<Formula> l,
                                      std::unique_ptr<Formula> r);
  static std::unique_ptr<Formula> Or(std::unique_ptr<Formula> l,
                                     std::unique_ptr<Formula> r);
  static std::unique_ptr<Formula> Not(std::unique_ptr<Formula> f);
  static std::unique_ptr<Formula> Exists(std::string var,
                                         std::unique_ptr<Formula> body);
  static std::unique_ptr<Formula> ForAll(std::string var,
                                         std::unique_ptr<Formula> body);

  std::unique_ptr<Formula> Clone() const;
};

/// Free variables in first-occurrence order.
std::vector<std::string> FreeVariables(const Formula& f);

/// True iff the formula avoids kNot and kForAll (and kEquals is allowed).
bool IsPositive(const Formula& f);

/// Number of AST nodes.
int Size(const Formula& f);

/// Reparseable rendering: "exists x . (Child(x, y) and Lab_a(y))".
std::string ToString(const Formula& f);

}  // namespace fo
}  // namespace treeq

#endif  // TREEQ_FO_AST_H_
