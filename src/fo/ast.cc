#include "fo/ast.h"

#include <algorithm>
#include <set>

namespace treeq {
namespace fo {

std::unique_ptr<Formula> Formula::Label(std::string label, std::string var) {
  auto f = std::make_unique<Formula>();
  f->kind = Kind::kLabel;
  f->label = std::move(label);
  f->var0 = std::move(var);
  return f;
}

std::unique_ptr<Formula> Formula::AxisAtom(Axis axis, std::string var0,
                                           std::string var1) {
  auto f = std::make_unique<Formula>();
  f->kind = Kind::kAxis;
  f->axis = axis;
  f->var0 = std::move(var0);
  f->var1 = std::move(var1);
  return f;
}

std::unique_ptr<Formula> Formula::Equals(std::string var0, std::string var1) {
  auto f = std::make_unique<Formula>();
  f->kind = Kind::kEquals;
  f->var0 = std::move(var0);
  f->var1 = std::move(var1);
  return f;
}

std::unique_ptr<Formula> Formula::And(std::unique_ptr<Formula> l,
                                      std::unique_ptr<Formula> r) {
  auto f = std::make_unique<Formula>();
  f->kind = Kind::kAnd;
  f->left = std::move(l);
  f->right = std::move(r);
  return f;
}

std::unique_ptr<Formula> Formula::Or(std::unique_ptr<Formula> l,
                                     std::unique_ptr<Formula> r) {
  auto f = std::make_unique<Formula>();
  f->kind = Kind::kOr;
  f->left = std::move(l);
  f->right = std::move(r);
  return f;
}

std::unique_ptr<Formula> Formula::Not(std::unique_ptr<Formula> inner) {
  auto f = std::make_unique<Formula>();
  f->kind = Kind::kNot;
  f->left = std::move(inner);
  return f;
}

std::unique_ptr<Formula> Formula::Exists(std::string var,
                                         std::unique_ptr<Formula> body) {
  auto f = std::make_unique<Formula>();
  f->kind = Kind::kExists;
  f->var0 = std::move(var);
  f->left = std::move(body);
  return f;
}

std::unique_ptr<Formula> Formula::ForAll(std::string var,
                                         std::unique_ptr<Formula> body) {
  auto f = std::make_unique<Formula>();
  f->kind = Kind::kForAll;
  f->var0 = std::move(var);
  f->left = std::move(body);
  return f;
}

std::unique_ptr<Formula> Formula::Clone() const {
  auto f = std::make_unique<Formula>();
  f->kind = kind;
  f->label = label;
  f->axis = axis;
  f->var0 = var0;
  f->var1 = var1;
  if (left != nullptr) f->left = left->Clone();
  if (right != nullptr) f->right = right->Clone();
  return f;
}

namespace {

void CollectFree(const Formula& f, std::set<std::string>* bound,
                 std::vector<std::string>* out,
                 std::set<std::string>* seen) {
  auto add = [&](const std::string& v) {
    if (!bound->count(v) && seen->insert(v).second) out->push_back(v);
  };
  switch (f.kind) {
    case Formula::Kind::kLabel:
      add(f.var0);
      return;
    case Formula::Kind::kAxis:
    case Formula::Kind::kEquals:
      add(f.var0);
      add(f.var1);
      return;
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr:
      CollectFree(*f.left, bound, out, seen);
      CollectFree(*f.right, bound, out, seen);
      return;
    case Formula::Kind::kNot:
      CollectFree(*f.left, bound, out, seen);
      return;
    case Formula::Kind::kExists:
    case Formula::Kind::kForAll: {
      bool was_bound = bound->count(f.var0) > 0;
      bound->insert(f.var0);
      CollectFree(*f.left, bound, out, seen);
      if (!was_bound) bound->erase(f.var0);
      return;
    }
  }
}

}  // namespace

std::vector<std::string> FreeVariables(const Formula& f) {
  std::set<std::string> bound;
  std::set<std::string> seen;
  std::vector<std::string> out;
  CollectFree(f, &bound, &out, &seen);
  return out;
}

bool IsPositive(const Formula& f) {
  switch (f.kind) {
    case Formula::Kind::kLabel:
    case Formula::Kind::kAxis:
    case Formula::Kind::kEquals:
      return true;
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr:
      return IsPositive(*f.left) && IsPositive(*f.right);
    case Formula::Kind::kNot:
    case Formula::Kind::kForAll:
      return false;
    case Formula::Kind::kExists:
      return IsPositive(*f.left);
  }
  return false;
}

int Size(const Formula& f) {
  int size = 1;
  if (f.left != nullptr) size += Size(*f.left);
  if (f.right != nullptr) size += Size(*f.right);
  return size;
}

std::string ToString(const Formula& f) {
  switch (f.kind) {
    case Formula::Kind::kLabel:
      return "Lab_" + f.label + "(" + f.var0 + ")";
    case Formula::Kind::kAxis:
      return std::string(AxisName(f.axis)) + "(" + f.var0 + ", " + f.var1 +
             ")";
    case Formula::Kind::kEquals:
      return f.var0 + " = " + f.var1;
    case Formula::Kind::kAnd:
      return "(" + ToString(*f.left) + " and " + ToString(*f.right) + ")";
    case Formula::Kind::kOr:
      return "(" + ToString(*f.left) + " or " + ToString(*f.right) + ")";
    case Formula::Kind::kNot:
      return "not " + ToString(*f.left);
    case Formula::Kind::kExists:
      return "exists " + f.var0 + " . " + ToString(*f.left);
    case Formula::Kind::kForAll:
      return "forall " + f.var0 + " . " + ToString(*f.left);
  }
  return "";
}

}  // namespace fo
}  // namespace treeq
