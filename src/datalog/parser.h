#ifndef TREEQ_DATALOG_PARSER_H_
#define TREEQ_DATALOG_PARSER_H_

#include <string_view>

#include "datalog/ast.h"
#include "util/status.h"

/// \file parser.h
/// Text syntax for monadic datalog programs, close to the paper's rule
/// notation:
///
///   % an Example 3.1 program
///   P0(x)  :- Label("L", x).       % also: Lab_L(x)
///   P0(x0) :- NextSibling(x0, x), P0(x).
///   P(x0)  :- FirstChild(x0, x), P0(x).
///   P0(x)  :- P(x).
///   ?- P.
///
/// Atom names: Root/Leaf/FirstSibling/LastSibling (unary builtins); any axis
/// name accepted by ParseAxis, e.g. Child, Child+, descendant, NextSibling*
/// (binary); Label("a", x) or Lab_a(x) (label test); anything else is an
/// intensional unary predicate. `<-` is accepted for `:-`; `true` denotes
/// the empty body; `%` and `#` start comments.

namespace treeq {
namespace datalog {

/// Parses a program. The result is validated.
Result<Program> ParseProgram(std::string_view input);

}  // namespace datalog
}  // namespace treeq

#endif  // TREEQ_DATALOG_PARSER_H_
