#include "datalog/grounder.h"

#include "datalog/tmnf.h"

namespace treeq {
namespace datalog {

horn::PredId GroundProgram::PropositionOf(const std::string& pred,
                                          NodeId node) const {
  auto it = pred_base.find(pred);
  TREEQ_CHECK(it != pred_base.end());
  TREEQ_CHECK(node >= 0 && node < num_nodes);
  return it->second + node;
}

bool EvalUnaryExtensional(const Atom& atom, const Tree& tree, NodeId node) {
  switch (atom.kind) {
    case Atom::Kind::kUnaryBuiltin:
      switch (atom.unary) {
        case UnaryBuiltin::kRoot:
          return tree.IsRoot(node);
        case UnaryBuiltin::kLeaf:
          return tree.IsLeaf(node);
        case UnaryBuiltin::kFirstSibling:
          return tree.IsFirstSibling(node);
        case UnaryBuiltin::kLastSibling:
          return tree.IsLastSibling(node);
        case UnaryBuiltin::kDom:
          return true;
      }
      TREEQ_CHECK(false);
      return false;
    case Atom::Kind::kLabel:
      return tree.HasLabel(node, atom.label);
    default:
      TREEQ_CHECK(false);
      return false;
  }
}

namespace {

/// The unique x0 with B(x0, x) for the four TMNF step relations, or
/// kNullNode. (FirstChild and NextSibling are injective partial functions in
/// both directions — the functional dependencies Theorem 3.2 rests on.)
NodeId StepPartner(const Tree& tree, Axis b, NodeId x) {
  switch (b) {
    case Axis::kFirstChild:
      // FirstChild(x0, x): x is the first child of x0.
      return tree.IsFirstSibling(x) ? tree.parent(x) : kNullNode;
    case Axis::kFirstChildInv:
      // FirstChildInv(x0, x): x0 is the first child of x.
      return tree.first_child(x);
    case Axis::kNextSibling:
      // NextSibling(x0, x): x0 is x's previous sibling.
      return tree.prev_sibling(x);
    case Axis::kPrevSibling:
      // PrevSibling(x0, x): x0 is x's next sibling.
      return tree.next_sibling(x);
    default:
      TREEQ_CHECK(false);
      return kNullNode;
  }
}

}  // namespace

Result<GroundProgram> GroundTmnf(const Program& program, const Tree& tree) {
  if (!IsTmnf(program)) {
    return Status::InvalidArgument("GroundTmnf requires a TMNF program");
  }
  GroundProgram ground;
  ground.num_nodes = tree.num_nodes();
  const int n = tree.num_nodes();
  for (const std::string& pred : program.IntensionalPredicates()) {
    ground.pred_base[pred] = ground.horn.AddPredicates(n);
  }

  // Appends clause head <- unary-atom-at-node, resolving extensional atoms
  // to facts/omissions.
  auto ground_rule_at = [&](const Rule& rule, NodeId head_node,
                            const std::vector<std::pair<const Atom*, NodeId>>&
                                body) {
    std::vector<horn::PredId> clause_body;
    for (const auto& [atom, node] : body) {
      if (atom->kind == Atom::Kind::kIntensional) {
        clause_body.push_back(ground.PropositionOf(atom->predicate, node));
      } else {
        if (!EvalUnaryExtensional(*atom, tree, node)) return;  // no clause
      }
    }
    ground.horn.AddClause(ground.PropositionOf(rule.head_pred, head_node),
                          std::move(clause_body));
  };

  for (const Rule& rule : program.rules()) {
    const std::vector<Atom>& body = rule.body;
    if (body.size() == 1) {
      // Form (1): p(x) <- p0(x).
      for (NodeId v = 0; v < n; ++v) {
        ground_rule_at(rule, v, {{&body[0], v}});
      }
      continue;
    }
    const Atom* binary = nullptr;
    const Atom* unary = nullptr;
    for (const Atom& a : body) {
      if (a.IsUnary() && unary == nullptr) {
        unary = &a;
      } else if (!a.IsUnary()) {
        binary = &a;
      }
    }
    if (binary == nullptr) {
      // Form (3): p(x) <- p0(x), p1(x).
      for (NodeId v = 0; v < n; ++v) {
        ground_rule_at(rule, v, {{&body[0], v}, {&body[1], v}});
      }
      continue;
    }
    // Form (2): p(x) <- p0(x0), B(x0, x) — or the equivalent orientation
    // p(x) <- p0(x0), B'(x, x0) with B' the inverse step relation.
    Axis axis = binary->var1 == rule.head_var ? binary->axis
                                              : InverseAxis(binary->axis);
    for (NodeId v = 0; v < n; ++v) {
      NodeId x0 = StepPartner(tree, axis, v);
      if (x0 == kNullNode) continue;
      ground_rule_at(rule, v, {{unary, x0}});
    }
  }
  return ground;
}

}  // namespace datalog
}  // namespace treeq
