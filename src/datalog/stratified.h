#ifndef TREEQ_DATALOG_STRATIFIED_H_
#define TREEQ_DATALOG_STRATIFIED_H_

#include <map>
#include <string>
#include <vector>

#include "datalog/ast.h"
#include "tree/axes.h"
#include "tree/tree.h"
#include "util/status.h"

/// \file stratified.h
/// Monadic datalog with stratified negation over trees. Section 3 notes
/// that Core XPath translates into TMNF "in the presence of negation ...
/// for which no analogous language feature exists in datalog" — [29]
/// achieves this with complementation gadgets inside one program; here the
/// same expressiveness is provided the way production engines do it:
///
///   1. stratify the predicate dependency graph (error if some negation
///      sits on a cycle);
///   2. evaluate the strata bottom-up through the Theorem 3.2 pipeline,
///      materializing every predicate of a stratum (one grounding + one
///      Minoux run per stratum);
///   3. lower-stratum predicates become *labels* on an augmented copy of
///      the tree — "__strat_P" for P and "__strat_not_P" for its
///      complement — so each stratum is again plain monadic datalog.
///
/// Total cost: O(strata * |P| * |Dom|), still linear in the document.

namespace treeq {
namespace datalog {

/// Computes the stratum of every intensional predicate (0-based), or
/// InvalidArgument if negation occurs on a dependency cycle. The program
/// must Validate(/*allow_negation=*/true).
Result<std::map<std::string, int>> Stratify(const Program& program);

/// Evaluation statistics.
struct StratifiedStats {
  int strata = 0;
};

/// Evaluates the query predicate of a stratified monadic datalog program.
Result<NodeSet> EvaluateStratified(const Program& program, const Tree& tree,
                                   StratifiedStats* stats = nullptr);

/// Helper (exposed for tests): a structural copy of `tree` with the extra
/// labels of `annotations` added (label -> set of nodes carrying it).
Tree AugmentLabels(const Tree& tree,
                   const std::map<std::string, NodeSet>& annotations);

}  // namespace datalog
}  // namespace treeq

#endif  // TREEQ_DATALOG_STRATIFIED_H_
