#include "datalog/ast.h"

#include <set>

namespace treeq {
namespace datalog {

const char* UnaryBuiltinName(UnaryBuiltin b) {
  switch (b) {
    case UnaryBuiltin::kRoot:
      return "Root";
    case UnaryBuiltin::kLeaf:
      return "Leaf";
    case UnaryBuiltin::kFirstSibling:
      return "FirstSibling";
    case UnaryBuiltin::kLastSibling:
      return "LastSibling";
    case UnaryBuiltin::kDom:
      return "Dom";
  }
  return "";
}

Atom Atom::MakeUnaryBuiltin(UnaryBuiltin b, int var) {
  Atom a;
  a.kind = Kind::kUnaryBuiltin;
  a.unary = b;
  a.var0 = var;
  return a;
}

Atom Atom::MakeLabel(std::string label, int var) {
  Atom a;
  a.kind = Kind::kLabel;
  a.label = std::move(label);
  a.var0 = var;
  return a;
}

Atom Atom::MakeAxis(Axis axis, int var0, int var1) {
  Atom a;
  a.kind = Kind::kAxis;
  a.axis = axis;
  a.var0 = var0;
  a.var1 = var1;
  return a;
}

Atom Atom::MakeIntensional(std::string predicate, int var) {
  Atom a;
  a.kind = Kind::kIntensional;
  a.predicate = std::move(predicate);
  a.var0 = var;
  return a;
}

std::vector<std::string> Program::IntensionalPredicates() const {
  std::vector<std::string> out;
  std::set<std::string> seen;
  auto add = [&](const std::string& p) {
    if (seen.insert(p).second) out.push_back(p);
  };
  for (const Rule& rule : rules_) {
    add(rule.head_pred);
    for (const Atom& atom : rule.body) {
      if (atom.kind == Atom::Kind::kIntensional) add(atom.predicate);
    }
  }
  return out;
}

Status Program::Validate(bool allow_negation) const {
  if (rules_.empty()) return Status::InvalidArgument("program has no rules");
  std::set<std::string> defined;
  for (const Rule& rule : rules_) defined.insert(rule.head_pred);
  for (size_t i = 0; i < rules_.size(); ++i) {
    const Rule& rule = rules_[i];
    std::string where = "rule " + std::to_string(i) + " (" +
                        RuleToString(rule) + "): ";
    if (rule.head_pred.empty()) {
      return Status::InvalidArgument(where + "empty head predicate");
    }
    if (rule.head_var < 0 || rule.head_var >= rule.num_vars()) {
      return Status::InvalidArgument(where + "head variable out of range");
    }
    std::vector<char> used(rule.var_names.size(), 0);
    for (const Atom& atom : rule.body) {
      if (atom.var0 < 0 || atom.var0 >= rule.num_vars() ||
          (atom.kind == Atom::Kind::kAxis &&
           (atom.var1 < 0 || atom.var1 >= rule.num_vars()))) {
        return Status::InvalidArgument(where + "atom variable out of range");
      }
      used[atom.var0] = 1;
      if (atom.kind == Atom::Kind::kAxis) used[atom.var1] = 1;
      if (atom.kind == Atom::Kind::kIntensional &&
          !defined.count(atom.predicate)) {
        return Status::InvalidArgument(where + "undefined predicate " +
                                       atom.predicate);
      }
      if (atom.negated &&
          (!allow_negation || atom.kind != Atom::Kind::kIntensional)) {
        return Status::InvalidArgument(
            where + "negation is only allowed on intensional atoms in "
                    "stratified programs");
      }
    }
    if (!rule.body.empty() && !used[rule.head_var]) {
      return Status::InvalidArgument(where + "head variable not in body");
    }
    // Every variable must occur in some atom (no free-floating domain vars
    // beyond the head of a bodyless rule).
    for (int v = 0; v < rule.num_vars(); ++v) {
      if (!used[v] && !(rule.body.empty() && v == rule.head_var)) {
        return Status::InvalidArgument(where + "unused variable " +
                                       rule.var_names[v]);
      }
    }
  }
  if (query_predicate_.empty()) {
    return Status::InvalidArgument("no query predicate set (use '?- P.')");
  }
  if (!defined.count(query_predicate_)) {
    return Status::InvalidArgument("query predicate " + query_predicate_ +
                                   " has no rules");
  }
  return Status::OK();
}

int Program::SizeInAtoms() const {
  int size = 0;
  for (const Rule& rule : rules_) {
    size += 1 + static_cast<int>(rule.body.size());
  }
  return size;
}

std::string AtomToString(const Atom& atom, const Rule& rule) {
  if (atom.negated) {
    Atom positive = atom;
    positive.negated = false;
    return "not " + AtomToString(positive, rule);
  }
  switch (atom.kind) {
    case Atom::Kind::kUnaryBuiltin:
      return std::string(UnaryBuiltinName(atom.unary)) + "(" +
             rule.var_names[atom.var0] + ")";
    case Atom::Kind::kLabel:
      return "Label(\"" + atom.label + "\", " + rule.var_names[atom.var0] +
             ")";
    case Atom::Kind::kAxis: {
      std::string name = AxisName(atom.axis);
      return name + "(" + rule.var_names[atom.var0] + ", " +
             rule.var_names[atom.var1] + ")";
    }
    case Atom::Kind::kIntensional:
      return atom.predicate + "(" + rule.var_names[atom.var0] + ")";
  }
  return "";
}

std::string RuleToString(const Rule& rule) {
  std::string out =
      rule.head_pred + "(" + rule.var_names[rule.head_var] + ") :- ";
  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (i > 0) out += ", ";
    out += AtomToString(rule.body[i], rule);
  }
  if (rule.body.empty()) out += "true";
  out += ".";
  return out;
}

std::string Program::ToString() const {
  std::string out;
  for (const Rule& rule : rules_) {
    out += RuleToString(rule);
    out += "\n";
  }
  if (!query_predicate_.empty()) {
    out += "?- " + query_predicate_ + ".\n";
  }
  return out;
}

}  // namespace datalog
}  // namespace treeq
