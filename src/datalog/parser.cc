#include "datalog/parser.h"

#include <cctype>
#include <map>
#include <string>

namespace treeq {
namespace datalog {
namespace {

class ProgramParser {
 public:
  explicit ProgramParser(std::string_view input) : input_(input) {}

  Result<Program> Parse() {
    Program program;
    for (;;) {
      SkipWhitespaceAndComments();
      if (Eof()) break;
      if (input_.substr(pos_).starts_with("?-")) {
        pos_ += 2;
        SkipWhitespaceAndComments();
        TREEQ_ASSIGN_OR_RETURN(std::string pred, ParseName());
        TREEQ_RETURN_IF_ERROR(Expect('.'));
        program.set_query_predicate(pred);
        continue;
      }
      TREEQ_ASSIGN_OR_RETURN(Rule rule, ParseRule());
      program.rules().push_back(std::move(rule));
    }
    // Negated atoms are accepted here; the plain evaluator rejects them
    // later, while the stratified evaluator handles them. Validation
    // failures are reported as ParseError with the byte offset so every
    // non-OK outcome of ParseProgram has the same shape.
    if (Status valid = program.Validate(/*allow_negation=*/true);
        !valid.ok()) {
      return Error(valid.message());
    }
    return program;
  }

 private:
  bool Eof() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }

  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " at offset " + std::to_string(pos_));
  }

  void SkipWhitespaceAndComments() {
    for (;;) {
      while (!Eof() && std::isspace(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
      if (!Eof() && (Peek() == '%' || Peek() == '#')) {
        while (!Eof() && Peek() != '\n') ++pos_;
        continue;
      }
      return;
    }
  }

  Status Expect(char c) {
    SkipWhitespaceAndComments();
    if (Eof() || Peek() != c) {
      return Error(std::string("expected '") + c + "'");
    }
    ++pos_;
    return Status::OK();
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '+' || c == '*' || c == '-';
  }

  Result<std::string> ParseName() {
    SkipWhitespaceAndComments();
    size_t start = pos_;
    while (!Eof() && IsNameChar(Peek())) ++pos_;
    if (pos_ == start) return Error("expected a name");
    return std::string(input_.substr(start, pos_ - start));
  }

  Result<std::string> ParseQuotedString() {
    SkipWhitespaceAndComments();
    if (Eof() || Peek() != '"') return Error("expected '\"'");
    ++pos_;
    size_t start = pos_;
    while (!Eof() && Peek() != '"') ++pos_;
    if (Eof()) return Error("unterminated string");
    std::string s(input_.substr(start, pos_ - start));
    ++pos_;
    return s;
  }

  // Variable interning within the current rule.
  int InternVar(Rule* rule, std::map<std::string, int>* vars,
                const std::string& name) {
    auto it = vars->find(name);
    if (it != vars->end()) return it->second;
    int id = rule->num_vars();
    rule->var_names.push_back(name);
    (*vars)[name] = id;
    return id;
  }

  Result<Rule> ParseRule() {
    Rule rule;
    std::map<std::string, int> vars;
    TREEQ_ASSIGN_OR_RETURN(std::string head, ParseName());
    TREEQ_RETURN_IF_ERROR(Expect('('));
    TREEQ_ASSIGN_OR_RETURN(std::string head_var, ParseName());
    TREEQ_RETURN_IF_ERROR(Expect(')'));
    rule.head_pred = head;
    rule.head_var = InternVar(&rule, &vars, head_var);

    SkipWhitespaceAndComments();
    if (!Eof() && Peek() == '.') {
      ++pos_;
      return rule;  // fact rule "P(x)." == "P(x) :- true."
    }
    if (input_.substr(pos_).starts_with(":-")) {
      pos_ += 2;
    } else if (input_.substr(pos_).starts_with("<-")) {
      pos_ += 2;
    } else {
      return Error("expected ':-' or '<-'");
    }

    for (;;) {
      SkipWhitespaceAndComments();
      TREEQ_ASSIGN_OR_RETURN(std::string name, ParseName());
      bool negated = false;
      if (name == "not") {
        negated = true;  // stratified-program negation (datalog/stratified.h)
        TREEQ_ASSIGN_OR_RETURN(name, ParseName());
      }
      if (name == "true") {
        if (negated) return Error("'not true' is not an atom");
        // empty body marker; no atom
      } else {
        TREEQ_RETURN_IF_ERROR(Expect('('));
        TREEQ_RETURN_IF_ERROR(ParseAtomTail(name, &rule, &vars));
        rule.body.back().negated = negated;
      }
      SkipWhitespaceAndComments();
      if (!Eof() && Peek() == ',') {
        ++pos_;
        continue;
      }
      TREEQ_RETURN_IF_ERROR(Expect('.'));
      return rule;
    }
  }

  // Parses the argument list and closing paren; `name` is the atom's
  // predicate name whose kind we dispatch on.
  Status ParseAtomTail(const std::string& name, Rule* rule,
                       std::map<std::string, int>* vars) {
    if (name == "Label") {
      TREEQ_ASSIGN_OR_RETURN(std::string label, ParseQuotedString());
      TREEQ_RETURN_IF_ERROR(Expect(','));
      TREEQ_ASSIGN_OR_RETURN(std::string v, ParseName());
      TREEQ_RETURN_IF_ERROR(Expect(')'));
      rule->body.push_back(Atom::MakeLabel(label, InternVar(rule, vars, v)));
      return Status::OK();
    }
    if (name == "Root" || name == "Leaf" || name == "FirstSibling" ||
        name == "LastSibling" || name == "Dom") {
      UnaryBuiltin b = UnaryBuiltin::kRoot;
      if (name == "Leaf") b = UnaryBuiltin::kLeaf;
      if (name == "FirstSibling") b = UnaryBuiltin::kFirstSibling;
      if (name == "LastSibling") b = UnaryBuiltin::kLastSibling;
      if (name == "Dom") b = UnaryBuiltin::kDom;
      TREEQ_ASSIGN_OR_RETURN(std::string v, ParseName());
      TREEQ_RETURN_IF_ERROR(Expect(')'));
      rule->body.push_back(
          Atom::MakeUnaryBuiltin(b, InternVar(rule, vars, v)));
      return Status::OK();
    }
    if (name.starts_with("Lab_")) {
      TREEQ_ASSIGN_OR_RETURN(std::string v, ParseName());
      TREEQ_RETURN_IF_ERROR(Expect(')'));
      rule->body.push_back(
          Atom::MakeLabel(name.substr(4), InternVar(rule, vars, v)));
      return Status::OK();
    }
    Result<Axis> axis = ParseAxis(name);
    if (axis.ok()) {
      TREEQ_ASSIGN_OR_RETURN(std::string v0, ParseName());
      TREEQ_RETURN_IF_ERROR(Expect(','));
      TREEQ_ASSIGN_OR_RETURN(std::string v1, ParseName());
      TREEQ_RETURN_IF_ERROR(Expect(')'));
      // Sequenced so variable indices follow first occurrence left-to-right.
      int i0 = InternVar(rule, vars, v0);
      int i1 = InternVar(rule, vars, v1);
      rule->body.push_back(Atom::MakeAxis(axis.value(), i0, i1));
      return Status::OK();
    }
    // Intensional unary predicate.
    TREEQ_ASSIGN_OR_RETURN(std::string v, ParseName());
    TREEQ_RETURN_IF_ERROR(Expect(')'));
    rule->body.push_back(
        Atom::MakeIntensional(name, InternVar(rule, vars, v)));
    return Status::OK();
  }

  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace

Result<Program> ParseProgram(std::string_view input) {
  return ProgramParser(input).Parse();
}

}  // namespace datalog
}  // namespace treeq
