#ifndef TREEQ_DATALOG_HORN_H_
#define TREEQ_DATALOG_HORN_H_

#include <cstdint>
#include <vector>

#include "util/exec_context.h"
#include "util/status.h"

/// \file horn.h
/// Propositional Horn-SAT solved in linear time by Minoux' algorithm [59],
/// exactly as listed in Figure 3 of the paper: per-rule remaining-body-size
/// counters, a rules-watching-each-predicate index, and a queue of derived
/// unit predicates.

namespace treeq {
namespace horn {

/// Propositional predicate id (dense, starting at 0).
using PredId = int32_t;

/// A definite Horn clause: head <- body[0] & ... & body[k-1].
/// An empty body makes the clause a fact.
struct Clause {
  PredId head;
  std::vector<PredId> body;
};

/// A Horn-SAT instance builder + solver.
class HornInstance {
 public:
  /// Creates `count` fresh predicates; returns the first id.
  PredId AddPredicates(int count);
  int num_predicates() const { return num_predicates_; }

  /// Adds head <- body. All ids must be valid.
  void AddClause(PredId head, std::vector<PredId> body);
  void AddFact(PredId head) { AddClause(head, {}); }

  int num_clauses() const { return static_cast<int>(clauses_.size()); }
  /// Total number of literals (the instance size Minoux' algorithm is linear
  /// in).
  int64_t SizeInLiterals() const;

  /// Minoux' algorithm (Figure 3): returns the minimal model as a truth
  /// vector indexed by predicate id, in time linear in SizeInLiterals().
  /// `derivation_order`, if non-null, receives the predicates in the order
  /// the main loop outputs "p is true".
  std::vector<char> Solve(std::vector<PredId>* derivation_order = nullptr) const;

  /// Bounded Solve: charges `exec` one unit per queue pop (plus the
  /// initialization literals up front), so deadlines and budgets abort the
  /// fixpoint mid-derivation.
  Result<std::vector<char>> Solve(
      const ExecContext& exec,
      std::vector<PredId>* derivation_order = nullptr) const;

 private:
  int num_predicates_ = 0;
  std::vector<Clause> clauses_;
};

}  // namespace horn
}  // namespace treeq

#endif  // TREEQ_DATALOG_HORN_H_
