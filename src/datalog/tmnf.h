#ifndef TREEQ_DATALOG_TMNF_H_
#define TREEQ_DATALOG_TMNF_H_

#include "datalog/ast.h"
#include "util/status.h"

/// \file tmnf.h
/// Tree-Marking Normal Form (Definition 3.4) and the linear-time
/// transformation into it ([31], Section 3). A TMNF rule is one of
///   (1) p(x) <- p0(x).
///   (2) p(x) <- p0(x0), B(x0, x).
///   (3) p(x) <- p0(x), p1(x).
/// with p0, p1 intensional or tau+ unary predicates and B one of
/// FirstChild, NextSibling or their inverses.
///
/// ToTmnf additionally compiles the derived axes (Child, Child+, Child*,
/// NextSibling+, NextSibling*, Following, and inverses) into
/// FirstChild/NextSibling recursions, generalizing Example 3.1: e.g.
/// "some child satisfies q" becomes "the first child reaches a q-node
/// walking NextSibling".

namespace treeq {
namespace datalog {

/// True iff every rule of `program` matches one of the three TMNF forms.
bool IsTmnf(const Program& program);

/// Rewrites `program` into an equivalent TMNF program. Each rule body's
/// variable graph (binary atoms as edges, after unifying variables joined
/// by Self atoms) must be connected, acyclic, and simple; otherwise
/// Unsupported is returned. Output size is O(|program|).
Result<Program> ToTmnf(const Program& program);

}  // namespace datalog
}  // namespace treeq

#endif  // TREEQ_DATALOG_TMNF_H_
