#include "datalog/horn.h"

#include <deque>

namespace treeq {
namespace horn {

PredId HornInstance::AddPredicates(int count) {
  TREEQ_CHECK(count >= 0);
  PredId first = num_predicates_;
  num_predicates_ += count;
  return first;
}

void HornInstance::AddClause(PredId head, std::vector<PredId> body) {
  TREEQ_CHECK(head >= 0 && head < num_predicates_);
  for (PredId p : body) TREEQ_CHECK(p >= 0 && p < num_predicates_);
  clauses_.push_back(Clause{head, std::move(body)});
}

int64_t HornInstance::SizeInLiterals() const {
  int64_t size = 0;
  for (const Clause& c : clauses_) {
    size += 1 + static_cast<int64_t>(c.body.size());
  }
  return size;
}

std::vector<char> HornInstance::Solve(
    std::vector<PredId>* derivation_order) const {
  Result<std::vector<char>> r =
      Solve(ExecContext::Unbounded(), derivation_order);
  TREEQ_CHECK(r.ok());  // unbounded contexts never trip
  return std::move(r).value();
}

Result<std::vector<char>> HornInstance::Solve(
    const ExecContext& exec, std::vector<PredId>* derivation_order) const {
  const int num_rules = static_cast<int>(clauses_.size());
  // Initialization of data structures (Figure 3): rules[p] lists the rules
  // whose body mentions p, size[i] counts i's not-yet-derived body atoms,
  // head[i] is i's head.
  std::vector<std::vector<int>> rules(num_predicates_);
  std::vector<int> size(num_rules);
  std::vector<PredId> head(num_rules);
  std::deque<PredId> queue;
  std::vector<char> truth(num_predicates_, 0);

  // Initialization walks every literal once; charge it as a block so huge
  // ground programs trip the budget before the main loop even starts.
  TREEQ_RETURN_IF_ERROR(
      exec.Charge(1 + static_cast<uint64_t>(SizeInLiterals())));
  for (int i = 0; i < num_rules; ++i) {
    const Clause& c = clauses_[i];
    head[i] = c.head;
    size[i] = static_cast<int>(c.body.size());
    for (PredId p : c.body) rules[p].push_back(i);
    if (size[i] == 0) queue.push_back(c.head);
  }

  // Main loop.
  while (!queue.empty()) {
    TREEQ_RETURN_IF_ERROR(exec.Charge(1));
    PredId p = queue.front();
    queue.pop_front();
    if (truth[p]) continue;  // a predicate may be enqueued more than once
    truth[p] = 1;            // output "p is true"
    if (derivation_order != nullptr) derivation_order->push_back(p);
    for (int i : rules[p]) {
      if (--size[i] == 0) queue.push_back(head[i]);
    }
  }
  return truth;
}

}  // namespace horn
}  // namespace treeq
