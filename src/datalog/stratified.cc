#include "datalog/stratified.h"

#include <set>

#include "datalog/evaluator.h"

namespace treeq {
namespace datalog {

Result<std::map<std::string, int>> Stratify(const Program& program) {
  TREEQ_RETURN_IF_ERROR(program.Validate(/*allow_negation=*/true));
  std::vector<std::string> preds = program.IntensionalPredicates();
  std::map<std::string, int> stratum;
  for (const std::string& p : preds) stratum[p] = 0;
  const int n = static_cast<int>(preds.size());

  // Bellman-Ford-style constraint propagation:
  //   head >= body-pred          (positive dependency)
  //   head >= body-pred + 1      (negative dependency)
  // A stratum exceeding the predicate count means a negative cycle.
  for (int round = 0; round <= n; ++round) {
    bool changed = false;
    for (const Rule& rule : program.rules()) {
      int& head = stratum[rule.head_pred];
      for (const Atom& atom : rule.body) {
        if (atom.kind != Atom::Kind::kIntensional) continue;
        int required = stratum[atom.predicate] + (atom.negated ? 1 : 0);
        if (head < required) {
          head = required;
          changed = true;
        }
      }
    }
    if (!changed) return stratum;
  }
  return Status::InvalidArgument(
      "program is not stratifiable: negation occurs on a recursive cycle");
}

Tree AugmentLabels(const Tree& tree,
                   const std::map<std::string, NodeSet>& annotations) {
  // Rebuild the identical structure with the extra labels. Node ids are
  // preserved: TreeBuilder assigns ids in creation order, the original ids
  // are parent-before-child, and sibling ids increase left to right, so
  // creating nodes in id order appends every child in its original
  // position.
  TreeBuilder builder;
  for (NodeId v = 0; v < tree.num_nodes(); ++v) {
    std::vector<std::string> labels;
    for (LabelId l : tree.labels(v)) {
      labels.push_back(tree.label_table().Name(l));
    }
    for (const auto& [label, set] : annotations) {
      if (set.Contains(v)) labels.push_back(label);
    }
    NodeId id = builder.AddChild(
        v == tree.root() ? kNullNode : tree.parent(v), labels);
    TREEQ_CHECK(id == v);
  }
  Result<Tree> rebuilt = builder.Finish();
  TREEQ_CHECK(rebuilt.ok());
  return std::move(rebuilt).value();
}

Result<NodeSet> EvaluateStratified(const Program& program, const Tree& tree,
                                   StratifiedStats* stats) {
  TREEQ_ASSIGN_OR_RETURN(auto strata, Stratify(program));
  int max_stratum = 0;
  for (const auto& [pred, s] : strata) max_stratum = std::max(max_stratum, s);
  if (stats != nullptr) stats->strata = max_stratum + 1;

  // Values of already-evaluated predicates.
  std::map<std::string, NodeSet> computed;
  // The working tree, re-labeled after each stratum.
  Tree current = AugmentLabels(tree, {});

  for (int level = 0; level <= max_stratum; ++level) {
    // Build the stratum program: rules whose head lives at this level, with
    // lower-level predicate references replaced by label atoms.
    Program sub;
    std::set<std::string> heads;
    for (const Rule& rule : program.rules()) {
      if (strata.at(rule.head_pred) != level) continue;
      heads.insert(rule.head_pred);
      Rule copy = rule;
      for (Atom& atom : copy.body) {
        if (atom.kind != Atom::Kind::kIntensional) continue;
        int dep = strata.at(atom.predicate);
        if (dep == level) {
          TREEQ_CHECK(!atom.negated);  // stratification guarantees this
          continue;
        }
        std::string label = (atom.negated ? "__strat_not_" : "__strat_") +
                            atom.predicate;
        atom = Atom::MakeLabel(label, atom.var0);
      }
      sub.rules().push_back(std::move(copy));
    }
    if (heads.empty()) continue;
    sub.set_query_predicate(*heads.begin());
    TREEQ_ASSIGN_OR_RETURN(auto values,
                           EvaluateDatalogAllPredicates(sub, current));
    // Record and annotate for the next strata.
    std::map<std::string, NodeSet> annotations;
    for (const std::string& head : heads) {
      NodeSet set = values.at(head);
      NodeSet complement = set;
      complement.Complement();
      annotations.emplace("__strat_" + head, set);
      annotations.emplace("__strat_not_" + head, std::move(complement));
      computed.emplace(head, std::move(set));
    }
    current = AugmentLabels(current, annotations);
  }

  auto it = computed.find(program.query_predicate());
  if (it == computed.end()) {
    return Status::Internal("query predicate was never evaluated");
  }
  return it->second;
}

}  // namespace datalog
}  // namespace treeq
