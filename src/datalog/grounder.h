#ifndef TREEQ_DATALOG_GROUNDER_H_
#define TREEQ_DATALOG_GROUNDER_H_

#include <map>
#include <string>

#include "datalog/ast.h"
#include "datalog/horn.h"
#include "tree/tree.h"
#include "util/status.h"

/// \file grounder.h
/// Grounding TMNF programs over a tree into propositional Horn clauses in
/// time O(|P| * |Dom|) (Theorem 3.2, Example 3.3). This is where the
/// bidirectional functional dependencies of tau+ pay off: in a form-(2) rule
/// p(x) <- p0(x0), B(x0, x), the partner x0 of any x is unique, so each rule
/// grounds to at most one clause per node.

namespace treeq {
namespace datalog {

/// A grounded TMNF program: a Horn instance whose propositional predicate
/// for (intensional pred P, node v) is pred_base[P] + v.
struct GroundProgram {
  horn::HornInstance horn;
  std::map<std::string, horn::PredId> pred_base;
  int num_nodes = 0;

  horn::PredId PropositionOf(const std::string& pred, NodeId node) const;
};

/// Grounds `program` (which must be in TMNF) over `tree`.
Result<GroundProgram> GroundTmnf(const Program& program, const Tree& tree);

/// Evaluates a tau+ unary builtin / label atom at a node.
bool EvalUnaryExtensional(const Atom& atom, const Tree& tree, NodeId node);

}  // namespace datalog
}  // namespace treeq

#endif  // TREEQ_DATALOG_GROUNDER_H_
