#include "datalog/tmnf.h"

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace treeq {
namespace datalog {

namespace {

bool IsTmnfStep(Axis axis) {
  return axis == Axis::kFirstChild || axis == Axis::kFirstChildInv ||
         axis == Axis::kNextSibling || axis == Axis::kPrevSibling;
}

bool IsUnaryAtomAt(const Atom& a, int var) {
  return a.IsUnary() && a.var0 == var;
}

}  // namespace

bool IsTmnf(const Program& program) {
  for (const Rule& rule : program.rules()) {
    const std::vector<Atom>& body = rule.body;
    if (body.size() == 1 && IsUnaryAtomAt(body[0], rule.head_var)) {
      continue;  // form (1)
    }
    if (body.size() == 2 && body[0].IsUnary() && body[1].IsUnary() &&
        body[0].var0 == rule.head_var && body[1].var0 == rule.head_var) {
      continue;  // form (3)
    }
    if (body.size() == 2 && rule.num_vars() == 2) {
      // form (2), atoms in either order
      const Atom* unary = nullptr;
      const Atom* binary = nullptr;
      for (const Atom& a : body) {
        if (a.IsUnary()) {
          unary = &a;
        } else {
          binary = &a;
        }
      }
      // B may be written in either orientation (B and B^-1 are both
      // admissible), so the head variable may sit in either argument.
      if (unary != nullptr && binary != nullptr && IsTmnfStep(binary->axis) &&
          binary->var0 != binary->var1 &&
          (binary->var0 == rule.head_var || binary->var1 == rule.head_var)) {
        int other = binary->var0 == rule.head_var ? binary->var1
                                                  : binary->var0;
        if (unary->var0 == other) continue;
      }
    }
    return false;
  }
  return true;
}

namespace {

/// Emits the TMNF gadget rules for the transformation. A "UPred" is a unary
/// predicate reference usable in forms (1)-(3): an extensional tau+ unary
/// atom or an intensional predicate, with its variable left open.
struct UPred {
  Atom proto;  // var0 filled in at instantiation time

  Atom At(int var) const {
    Atom a = proto;
    a.var0 = var;
    return a;
  }
};

class TmnfEmitter {
 public:
  explicit TmnfEmitter(Program* out) : out_(out) {}

  UPred Dom() const {
    UPred p;
    p.proto = Atom::MakeUnaryBuiltin(UnaryBuiltin::kDom, -1);
    return p;
  }

  UPred Intensional(const std::string& name) const {
    UPred p;
    p.proto = Atom::MakeIntensional(name, -1);
    return p;
  }

  std::string Fresh() { return "__t" + std::to_string(counter_++); }

  // out(x) <- in(x).                                     [form (1)]
  void EmitCopy(const std::string& out, const UPred& in) {
    Rule rule;
    rule.head_pred = out;
    rule.head_var = 0;
    rule.var_names = {"x"};
    rule.body = {in.At(0)};
    out_->rules().push_back(std::move(rule));
  }

  // out(x) <- in(x0), B(x0, x).                          [form (2)]
  void EmitStep(const std::string& out, const UPred& in, Axis b) {
    TREEQ_CHECK(IsTmnfStep(b));
    Rule rule;
    rule.head_pred = out;
    rule.head_var = 1;
    rule.var_names = {"x0", "x"};
    rule.body = {in.At(0), Atom::MakeAxis(b, 0, 1)};
    out_->rules().push_back(std::move(rule));
  }

  // out(x) <- a(x), b(x).                                [form (3)]
  void EmitAnd(const std::string& out, const UPred& a, const UPred& b) {
    Rule rule;
    rule.head_pred = out;
    rule.head_var = 0;
    rule.var_names = {"x"};
    rule.body = {a.At(0), b.At(0)};
    out_->rules().push_back(std::move(rule));
  }

  /// Emits rules making `out` satisfy: out(x) iff ∃y axis(x, y) ∧ q(y).
  void EmitExists(Axis axis, const UPred& q, const std::string& out) {
    switch (axis) {
      case Axis::kSelf:
        EmitCopy(out, q);
        return;
      case Axis::kFirstChild:
      case Axis::kFirstChildInv:
      case Axis::kNextSibling:
      case Axis::kPrevSibling:
        // out(x) <- q(y), axis^-1(y, x): axis^-1(y, x) iff axis(x, y).
        EmitStep(out, q, InverseAxis(axis));
        return;
      case Axis::kChild: {
        // t(y): some sibling of y at-or-right of y satisfies q.
        std::string t = Fresh();
        EmitCopy(t, q);
        // t(y) <- t(z), PrevSibling(z, y): y precedes z, so t flows left.
        EmitStep(t, Intensional(t), Axis::kPrevSibling);
        // out(x) <- t(y), FirstChildInv(y, x): y is x's first child.
        EmitStep(out, Intensional(t), Axis::kFirstChildInv);
        return;
      }
      case Axis::kParent: {
        // t(y): y is a child of a q-node.
        std::string t = Fresh();
        EmitStep(t, q, Axis::kFirstChild);
        EmitStep(t, Intensional(t), Axis::kNextSibling);
        EmitCopy(out, Intensional(t));
        return;
      }
      case Axis::kDescendant: {
        // out(x) iff some child y has q(y) or out(y).
        std::string m = Fresh();
        EmitCopy(m, q);
        EmitCopy(m, Intensional(out));
        EmitExists(Axis::kChild, Intensional(m), out);
        return;
      }
      case Axis::kAncestor: {
        std::string m = Fresh();
        EmitCopy(m, q);
        EmitCopy(m, Intensional(out));
        EmitExists(Axis::kParent, Intensional(m), out);
        return;
      }
      case Axis::kDescendantOrSelf:
        EmitCopy(out, q);
        EmitExists(Axis::kDescendant, q, out);
        return;
      case Axis::kAncestorOrSelf:
        EmitCopy(out, q);
        EmitExists(Axis::kAncestor, q, out);
        return;
      case Axis::kFollowingSibling: {
        // out(x) iff q(next(x)) or out(next(x)).
        std::string m = Fresh();
        EmitCopy(m, q);
        EmitCopy(m, Intensional(out));
        // out(x) <- m(y), PrevSibling(y, x): y is x's next sibling.
        EmitStep(out, Intensional(m), Axis::kPrevSibling);
        return;
      }
      case Axis::kPrecedingSibling: {
        std::string m = Fresh();
        EmitCopy(m, q);
        EmitCopy(m, Intensional(out));
        EmitStep(out, Intensional(m), Axis::kNextSibling);
        return;
      }
      case Axis::kFollowingSiblingOrSelf:
        EmitCopy(out, q);
        EmitExists(Axis::kFollowingSibling, q, out);
        return;
      case Axis::kPrecedingSiblingOrSelf:
        EmitCopy(out, q);
        EmitExists(Axis::kPrecedingSibling, q, out);
        return;
      case Axis::kFollowing: {
        // Following(x, y): some ancestor-or-self x0 of x has a following
        // sibling y0 whose subtree contains y (the paper's definition).
        std::string a = Fresh();
        EmitExists(Axis::kDescendantOrSelf, q, a);
        std::string b = Fresh();
        EmitExists(Axis::kFollowingSibling, Intensional(a), b);
        EmitExists(Axis::kAncestorOrSelf, Intensional(b), out);
        return;
      }
      case Axis::kPreceding: {
        std::string a = Fresh();
        EmitExists(Axis::kDescendantOrSelf, q, a);
        std::string b = Fresh();
        EmitExists(Axis::kPrecedingSibling, Intensional(a), b);
        EmitExists(Axis::kAncestorOrSelf, Intensional(b), out);
        return;
      }
    }
    TREEQ_CHECK(false);
  }

  /// Conjoins a list of UPreds into a single fresh predicate (or returns the
  /// sole member / Dom if the list is short).
  UPred Conjoin(std::vector<UPred> parts) {
    if (parts.empty()) return Dom();
    if (parts.size() == 1) return parts[0];
    UPred acc = parts[0];
    for (size_t i = 1; i < parts.size(); ++i) {
      std::string fresh = Fresh();
      EmitAnd(fresh, acc, parts[i]);
      acc = Intensional(fresh);
    }
    return acc;
  }

 private:
  Program* out_;
  int counter_ = 0;
};

/// Union-find for Self-atom variable unification.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n) {
    for (int i = 0; i < n; ++i) parent_[i] = i;
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(int a, int b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<int> parent_;
};

Status TransformRule(const Rule& rule, TmnfEmitter* emitter, Program* out) {
  // 1. Unify variables joined by Self atoms; drop those atoms.
  UnionFind uf(rule.num_vars());
  for (const Atom& a : rule.body) {
    if (a.kind == Atom::Kind::kAxis && a.axis == Axis::kSelf) {
      uf.Union(a.var0, a.var1);
    }
  }
  auto rep = [&uf](int v) { return uf.Find(v); };

  // 2. Build the variable graph: unary atom lists and binary edges.
  std::map<int, std::vector<Atom>> unary_at;
  struct Edge {
    int to;
    Axis axis;      // oriented from -> to
    bool used = false;
  };
  std::map<int, std::vector<std::pair<int, Axis>>> edges;  // var -> (nbr, axis from var to nbr)
  int num_edges = 0;
  std::map<std::pair<int, int>, int> edge_count;
  for (const Atom& a : rule.body) {
    if (a.kind == Atom::Kind::kAxis) {
      if (a.axis == Axis::kSelf) continue;
      int u = rep(a.var0);
      int v = rep(a.var1);
      if (u == v) {
        return Status::Unsupported(
            "TMNF transform: non-Self axis atom over a single variable in " +
            RuleToString(rule));
      }
      edges[u].emplace_back(v, a.axis);
      edges[v].emplace_back(u, InverseAxis(a.axis));
      ++num_edges;
      std::pair<int, int> key = u < v ? std::make_pair(u, v)
                                      : std::make_pair(v, u);
      if (++edge_count[key] > 1) {
        return Status::Unsupported(
            "TMNF transform: parallel binary atoms between two variables "
            "in " +
            RuleToString(rule));
      }
    } else {
      Atom copy = a;
      copy.var0 = rep(a.var0);
      unary_at[rep(a.var0)].push_back(copy);
    }
  }

  // Collect the distinct representative variables actually used.
  std::map<int, bool> vars;
  vars[rep(rule.head_var)] = true;
  for (const auto& [v, _] : unary_at) vars[v] = true;
  for (const auto& [v, _] : edges) vars[v] = true;
  const int num_vars = static_cast<int>(vars.size());

  // 3. Connectivity + acyclicity: a connected simple graph on k vertices is
  // a tree iff it has k-1 edges; connectivity is checked by the traversal
  // below reaching every vertex.
  if (num_edges != num_vars - 1) {
    return Status::Unsupported(
        "TMNF transform: rule body graph is not a tree in " +
        RuleToString(rule));
  }

  // 4. Root the body tree at the head variable and fold bottom-up:
  // solve(v, parent) = conjunction of v's unary atoms and, per child w via
  // axis A (oriented v -> w), a fresh predicate for ∃w A(v,w) ∧ solve(w).
  int reached = 0;
  // Iterative DFS to avoid deep recursion on path-shaped rules.
  struct Frame {
    int var;
    int parent;
    size_t next_edge = 0;
    std::vector<UPred> parts;
  };
  std::map<int, UPred> solved;
  std::vector<Frame> stack;
  Frame root_frame;
  root_frame.var = rep(rule.head_var);
  root_frame.parent = -1;
  stack.push_back(std::move(root_frame));
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_edge == 0) {
      ++reached;
      for (const Atom& a : unary_at[f.var]) {
        UPred p;
        p.proto = a;
        p.proto.var0 = -1;
        f.parts.push_back(p);
      }
    }
    if (f.next_edge < edges[f.var].size()) {
      auto [nbr, axis] = edges[f.var][f.next_edge++];
      if (nbr == f.parent) continue;
      Frame child_frame;
      child_frame.var = nbr;
      child_frame.parent = f.var;
      stack.push_back(std::move(child_frame));
      continue;
    }
    // All children solved: conjoin and record.
    UPred result = emitter->Conjoin(std::move(f.parts));
    int var = f.var;
    int parent = f.parent;
    solved.emplace(var, result);
    stack.pop_back();
    if (!stack.empty()) {
      // Attach to the parent frame: parent needs ∃v axis(parent, v) ∧ result.
      Frame& pf = stack.back();
      // Find the axis of the edge parent -> var.
      Axis axis = Axis::kSelf;
      bool found = false;
      for (const auto& [nbr, ax] : edges[pf.var]) {
        if (nbr == var) {
          axis = ax;
          found = true;
          break;
        }
      }
      TREEQ_CHECK(found);
      std::string fresh = emitter->Fresh();
      emitter->EmitExists(axis, result, fresh);
      pf.parts.push_back(emitter->Intensional(fresh));
    } else {
      (void)parent;
      // Root of the body tree: emit the head rule.
      emitter->EmitCopy(rule.head_pred, result);
    }
  }
  if (reached != num_vars) {
    return Status::Unsupported(
        "TMNF transform: rule body graph is disconnected in " +
        RuleToString(rule));
  }
  (void)out;
  return Status::OK();
}

}  // namespace

Result<Program> ToTmnf(const Program& program) {
  TREEQ_RETURN_IF_ERROR(program.Validate());
  Program out;
  TmnfEmitter emitter(&out);
  for (const Rule& rule : program.rules()) {
    TREEQ_RETURN_IF_ERROR(TransformRule(rule, &emitter, &out));
  }
  out.set_query_predicate(program.query_predicate());
  TREEQ_RETURN_IF_ERROR(out.Validate());
  TREEQ_CHECK(IsTmnf(out));
  return out;
}

}  // namespace datalog
}  // namespace treeq
