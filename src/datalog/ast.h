#ifndef TREEQ_DATALOG_AST_H_
#define TREEQ_DATALOG_AST_H_

#include <string>
#include <vector>

#include "tree/axes.h"
#include "tree/tree.h"
#include "util/status.h"

/// \file ast.h
/// Monadic datalog over trees (Section 3). Programs run over the signature
/// tau+ = <Dom, Root, Leaf, (Lab_a), FirstChild, NextSibling, LastSibling>
/// (FirstSibling is also provided), extended with the derived axes Child,
/// Child+, Child*, NextSibling+, NextSibling*, Following and inverses in
/// rule bodies — the TMNF transformation compiles those away (Section 3 /
/// [31]).

namespace treeq {
namespace datalog {

/// The unary predicates of tau+ other than labels. kDom (the whole domain)
/// lets fact rules "P(x)." be expressed in TMNF as P(x) <- Dom(x).
enum class UnaryBuiltin {
  kRoot,
  kLeaf,
  kFirstSibling,
  kLastSibling,
  kDom,
};

const char* UnaryBuiltinName(UnaryBuiltin b);

/// One body atom. Variables are rule-local indices into Rule::var_names.
struct Atom {
  enum class Kind {
    kUnaryBuiltin,  // Root(x), Leaf(x), FirstSibling(x), LastSibling(x)
    kLabel,         // Lab_a(x)
    kAxis,          // Axis(x, y) for any axis in tree/axes.h
    kIntensional,   // P(x) with P an intensional (unary) predicate
  };

  Kind kind;
  UnaryBuiltin unary = UnaryBuiltin::kRoot;  // kUnaryBuiltin
  std::string label;                         // kLabel
  Axis axis = Axis::kSelf;                   // kAxis
  std::string predicate;                     // kIntensional
  int var0 = -1;
  int var1 = -1;  // only for kAxis
  /// Negation-as-failure marker, allowed on intensional atoms only and only
  /// in stratified programs (datalog/stratified.h); plain monadic datalog
  /// cannot express negation (Section 3) and Validate() rejects it by
  /// default.
  bool negated = false;

  bool IsUnary() const { return kind != Kind::kAxis; }

  static Atom MakeUnaryBuiltin(UnaryBuiltin b, int var);
  static Atom MakeLabel(std::string label, int var);
  static Atom MakeAxis(Axis axis, int var0, int var1);
  static Atom MakeIntensional(std::string predicate, int var);
};

/// One rule: head(head_var) <- body. All intensional predicates are unary
/// (monadic datalog).
struct Rule {
  std::string head_pred;
  int head_var = -1;
  std::vector<Atom> body;
  std::vector<std::string> var_names;

  int num_vars() const { return static_cast<int>(var_names.size()); }
};

/// A monadic datalog program with one distinguished query predicate.
class Program {
 public:
  std::vector<Rule>& rules() { return rules_; }
  const std::vector<Rule>& rules() const { return rules_; }

  const std::string& query_predicate() const { return query_predicate_; }
  void set_query_predicate(std::string p) { query_predicate_ = std::move(p); }

  /// All intensional predicate names, in first-occurrence order.
  std::vector<std::string> IntensionalPredicates() const;

  /// Structural sanity: nonempty, every rule's head variable occurs in its
  /// body (or the rule has no body atoms over other variables), variable
  /// indices in range, query predicate defined. Negated atoms are rejected
  /// unless `allow_negation` (the stratified evaluator's mode).
  Status Validate(bool allow_negation = false) const;

  /// Total number of atoms (the |P| of Theorem 3.2, up to a constant).
  int SizeInAtoms() const;

  /// Round-trippable text rendering in the parser's syntax.
  std::string ToString() const;

 private:
  std::vector<Rule> rules_;
  std::string query_predicate_;
};

/// Renders one atom/rule in the parser's concrete syntax.
std::string AtomToString(const Atom& atom, const Rule& rule);
std::string RuleToString(const Rule& rule);

}  // namespace datalog
}  // namespace treeq

#endif  // TREEQ_DATALOG_AST_H_
