#include "datalog/evaluator.h"

#include <map>
#include <string>
#include <vector>

#include "datalog/grounder.h"
#include "datalog/horn.h"
#include "datalog/tmnf.h"
#include "obs/obs.h"

namespace treeq {
namespace datalog {

Result<NodeSet> EvaluateDatalog(const Program& program, const Tree& tree,
                                EvalStats* stats, const ExecContext& exec) {
  TREEQ_OBS_SPAN("datalog.eval");
  TREEQ_ASSIGN_OR_RETURN(Program tmnf, ToTmnf(program));
  // Grounding materializes O(|P| * |Dom|) clauses; charge the estimate up
  // front so a doomed request never allocates the ground program at all.
  TREEQ_RETURN_IF_ERROR(exec.Charge(
      1 + tmnf.rules().size() * static_cast<uint64_t>(tree.num_nodes())));
  TREEQ_ASSIGN_OR_RETURN(GroundProgram ground, GroundTmnf(tmnf, tree));
  if (stats != nullptr) {
    stats->tmnf_rules = static_cast<int>(tmnf.rules().size());
    stats->ground_clauses = ground.horn.num_clauses();
    stats->ground_literals = ground.horn.SizeInLiterals();
  }
  TREEQ_OBS_COUNT("datalog.ground_clauses", ground.horn.num_clauses());
  TREEQ_OBS_COUNT("datalog.ground_literals", ground.horn.SizeInLiterals());
  TREEQ_RETURN_IF_ERROR(exec.ChargeMemory(
      static_cast<uint64_t>(ground.horn.SizeInLiterals()) *
      sizeof(horn::PredId)));
  TREEQ_ASSIGN_OR_RETURN(std::vector<char> truth, ground.horn.Solve(exec));
  NodeSet result(tree.num_nodes());
  horn::PredId base = ground.pred_base.at(program.query_predicate());
  for (NodeId v = 0; v < tree.num_nodes(); ++v) {
    if (truth[base + v]) result.Insert(v);
  }
  return result;
}

Result<std::map<std::string, NodeSet>> EvaluateDatalogAllPredicates(
    const Program& program, const Tree& tree) {
  TREEQ_ASSIGN_OR_RETURN(Program tmnf, ToTmnf(program));
  TREEQ_ASSIGN_OR_RETURN(GroundProgram ground, GroundTmnf(tmnf, tree));
  std::vector<char> truth = ground.horn.Solve();
  std::map<std::string, NodeSet> out;
  for (const std::string& pred : program.IntensionalPredicates()) {
    NodeSet set(tree.num_nodes());
    horn::PredId base = ground.pred_base.at(pred);
    for (NodeId v = 0; v < tree.num_nodes(); ++v) {
      if (truth[base + v]) set.Insert(v);
    }
    out.emplace(pred, std::move(set));
  }
  return out;
}

namespace {

/// Tries all assignments of the rule's variables to nodes, checking atoms as
/// soon as their variables are bound; adds derived heads to `derived`.
class NaiveRuleMatcher {
 public:
  NaiveRuleMatcher(const Rule& rule, const Tree& tree, const TreeOrders& orders,
                   const std::map<std::string, NodeSet>& relations,
                   const ExecContext& exec)
      : rule_(rule), tree_(tree), orders_(orders), relations_(relations),
        exec_(exec) {}

  Status Match(NodeSet* head_result) {
    assignment_.assign(rule_.num_vars(), kNullNode);
    head_result_ = head_result;
    abort_ = Status::OK();
    Assign(0);
    return abort_;
  }

 private:
  bool AtomHolds(const Atom& atom) const {
    NodeId a = assignment_[atom.var0];
    switch (atom.kind) {
      case Atom::Kind::kAxis:
        return AxisHolds(tree_, orders_, atom.axis, a,
                         assignment_[atom.var1]);
      case Atom::Kind::kIntensional:
        return relations_.at(atom.predicate).Contains(a);
      default:
        return EvalUnaryExtensional(atom, tree_, a);
    }
  }

  bool AtomReady(const Atom& atom, int bound_up_to) const {
    if (atom.var0 > bound_up_to) return false;
    if (atom.kind == Atom::Kind::kAxis && atom.var1 > bound_up_to) {
      return false;
    }
    return true;
  }

  void Assign(int var) {
    if (!abort_.ok()) return;
    if (var == rule_.num_vars()) {
      head_result_->Insert(assignment_[rule_.head_var]);
      return;
    }
    for (NodeId v = 0; v < tree_.num_nodes(); ++v) {
      abort_ = exec_.Charge(1);
      if (!abort_.ok()) return;
      assignment_[var] = v;
      bool ok = true;
      for (const Atom& atom : rule_.body) {
        // Check each atom exactly once: when its last variable is bound.
        if (AtomReady(atom, var) && !AtomReady(atom, var - 1) &&
            !AtomHolds(atom)) {
          ok = false;
          break;
        }
      }
      if (ok) Assign(var + 1);
    }
    assignment_[var] = kNullNode;
  }

  const Rule& rule_;
  const Tree& tree_;
  const TreeOrders& orders_;
  const std::map<std::string, NodeSet>& relations_;
  const ExecContext& exec_;
  Status abort_;
  std::vector<NodeId> assignment_;
  NodeSet* head_result_ = nullptr;
};

}  // namespace

Result<NodeSet> EvaluateDatalogNaive(const Program& program, const Tree& tree,
                                     const TreeOrders& orders,
                                     const ExecContext& exec) {
  TREEQ_RETURN_IF_ERROR(program.Validate());
  std::map<std::string, NodeSet> relations;
  for (const std::string& pred : program.IntensionalPredicates()) {
    relations.emplace(pred, NodeSet(tree.num_nodes()));
  }
  bool changed = true;
  while (changed) {
    TREEQ_OBS_INC("datalog.fixpoint_iterations");
    changed = false;
    for (const Rule& rule : program.rules()) {
      TREEQ_OBS_INC("datalog.rule_firings");
      NodeSet derived(tree.num_nodes());
      NaiveRuleMatcher matcher(rule, tree, orders, relations, exec);
      TREEQ_RETURN_IF_ERROR(matcher.Match(&derived));
      NodeSet& head = relations.at(rule.head_pred);
      for (NodeId v : derived.ToVector()) {
        if (!head.Contains(v)) {
          head.Insert(v);
          TREEQ_OBS_INC("datalog.facts_derived");
          changed = true;
        }
      }
    }
  }
  return relations.at(program.query_predicate());
}

}  // namespace datalog
}  // namespace treeq
