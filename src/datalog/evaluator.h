#ifndef TREEQ_DATALOG_EVALUATOR_H_
#define TREEQ_DATALOG_EVALUATOR_H_

#include <map>
#include <string>

#include "datalog/ast.h"
#include "tree/axes.h"
#include "tree/document.h"
#include "tree/orders.h"
#include "tree/tree.h"
#include "util/exec_context.h"
#include "util/status.h"

/// \file evaluator.h
/// End-to-end monadic datalog evaluation over trees.
///
/// EvaluateDatalog realizes Theorem 3.2's O(|P| * |Dom|) pipeline:
///   program -> TMNF (tmnf.h) -> ground Horn clauses (grounder.h)
///           -> Minoux' algorithm (horn.h) -> query-predicate node set.
///
/// EvaluateDatalogNaive is an independent oracle: a bottom-up fixpoint that
/// enumerates rule matches by backtracking over materialized axis semantics.
/// Exponential in rule arity, used to cross-check the fast path in tests.

namespace treeq {
namespace datalog {

/// Statistics of one EvaluateDatalog run (exposed for the benches).
struct EvalStats {
  int tmnf_rules = 0;
  int ground_clauses = 0;
  int64_t ground_literals = 0;
};

/// Evaluates the program's query predicate over `tree` via TMNF + grounding
/// + Minoux. Returns the set of nodes in the query result. The ExecContext
/// is charged for the grounding (per ground literal, also against the
/// memory budget) and per derivation step of the Horn fixpoint.
Result<NodeSet> EvaluateDatalog(const Program& program, const Tree& tree,
                                EvalStats* stats = nullptr,
                                const ExecContext& exec =
                                    ExecContext::Unbounded());

/// Like EvaluateDatalog, but returns the value of EVERY intensional
/// predicate (one grounding, one Minoux run). Used by the stratified
/// evaluator, which must materialize all heads of a stratum.
Result<std::map<std::string, NodeSet>> EvaluateDatalogAllPredicates(
    const Program& program, const Tree& tree);

/// Reference oracle (see file comment). `orders` must be computed from
/// `tree`. Charged per assignment tried in the rule matcher.
Result<NodeSet> EvaluateDatalogNaive(const Program& program, const Tree& tree,
                                     const TreeOrders& orders,
                                     const ExecContext& exec =
                                         ExecContext::Unbounded());

/// Document-taking overloads (tree/document.h); thin forwarders.
inline Result<NodeSet> EvaluateDatalog(
    const Program& program, const Document& doc, EvalStats* stats = nullptr,
    const ExecContext& exec = ExecContext::Unbounded()) {
  return EvaluateDatalog(program, doc.tree(), stats, exec);
}
inline Result<NodeSet> EvaluateDatalogNaive(
    const Program& program, const Document& doc,
    const ExecContext& exec = ExecContext::Unbounded()) {
  return EvaluateDatalogNaive(program, doc.tree(), doc.orders(), exec);
}

}  // namespace datalog
}  // namespace treeq

#endif  // TREEQ_DATALOG_EVALUATOR_H_
