#ifndef TREEQ_OBS_PROFILE_H_
#define TREEQ_OBS_PROFILE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>

/// \file profile.h
/// Request-scoped observability: one `QueryProfile` per Executor::Submit,
/// answering "which query was slow, on which document, and where did its
/// time go". The process-wide StatsRegistry (stats.h) aggregates totals;
/// a profile attributes them — queue wait vs. compile vs. execute, which
/// evaluator actually ran (including the degraded streaming fallback), and
/// the request's share of the key work counters, captured by snapshotting
/// the worker's ShadowCounters around the evaluation.
///
/// Profiles are plain values. The engine's worker loop fills one per
/// request (engine/executor.cc) and hands it to the FlightRecorder
/// (flight_recorder.h) through the TREEQ_OBS_FLIGHT_RECORD macro, which
/// compiles away under TREEQ_OBS_DISABLED.

namespace treeq {
namespace obs {

/// Everything the serving stack knows about one finished request.
struct QueryProfile {
  /// Process-unique request id, assigned at Submit (NextQueryId()).
  uint64_t id = 0;
  /// FlightRecorder insertion order; 0 until recorded.
  uint64_t seq = 0;

  /// Canonical language name ("xpath", "cq", "datalog", "fo").
  std::string language;
  /// FNV-1a hash of the full query text — stable join key for log
  /// pipelines even when `query` below is truncated.
  uint64_t query_hash = 0;
  /// Query text, truncated to kMaxQueryChars for bounded recorder memory.
  std::string query;
  /// Document name (empty for anonymous documents).
  std::string document;

  /// The evaluator that actually ran ("xpath.set_at_a_time",
  /// "xpath.stream", "cq.x_property", "cq.backtracking", "cq.yannakakis",
  /// "datalog.tmnf", "fo.corollary52", "fo.naive"). For failed requests,
  /// the route the plan would have taken.
  std::string engine;
  /// Plan::Explain(): the compile-time classification that decided the
  /// routing (dichotomy class, positivity, stream capability, logical IR
  /// + canonical hash + eligible engines).
  std::string explain;
  /// The cost router's one-line verdict for this execution (empty when the
  /// router did not run: bounded budgets, forced routes report "forced:",
  /// cache hits).
  std::string route_rationale;
  /// The plan's canonical 128-bit identity, as 32 hex chars — the key
  /// PlanCache and ResultCache share across dialects.
  std::string canonical_hash;

  /// True when the plan came from a PlanCache hit (compile_ns is then 0).
  bool cache_hit = false;
  /// True when the whole result came from the ResultCache: the request
  /// never touched the worker queue and `engine` reads "cache.result".
  bool result_cache_hit = false;
  /// True when bounded execution degraded to the streaming fallback.
  bool degraded = false;
  bool ok = true;
  /// StatusCodeName of the final status ("OK", "DEADLINE_EXCEEDED", ...).
  std::string status = "OK";

  /// Wall times: enqueue->dequeue, Plan::Compile, dequeue->done.
  uint64_t queue_wait_ns = 0;
  uint64_t compile_ns = 0;
  uint64_t execute_ns = 0;

  /// Intra-query parallelism attribution (QueryResult pass-through): the
  /// maximum fork degree of any parallel step, wall time inside forked
  /// kernels, and wall time merging partials. All zero for serial runs.
  int partitions = 0;
  uint64_t parallel_ns = 0;
  uint64_t merge_ns = 0;

  /// Counter deltas attributed to this request (ShadowCounters snapshot
  /// around the evaluation; see DESIGN.md "Per-query observability").
  uint64_t visits = 0;            // ExecContext charge units spent
  uint64_t words_scanned = 0;     // axes.words_scanned delta
  uint64_t label_index_hits = 0;  // labelindex.hits delta
  uint64_t eval_cache_hits = 0;   // cache.eval.hits delta (axis memo)
  /// Plan::EstimatedVisits(doc) — what the degradation classifier saw.
  uint64_t estimated_visits = 0;

  /// Queue wait + compile + execute: the latency the client observed.
  uint64_t total_ns() const {
    return queue_wait_ns + compile_ns + execute_ns;
  }

  /// One JSON object (no trailing newline).
  void WriteJson(std::ostream& os) const;
};

/// Longest query text stored in a profile; the hash covers the full text.
inline constexpr size_t kMaxQueryChars = 96;

/// FNV-1a over the full query text.
uint64_t HashQueryText(std::string_view text);

/// Process-wide monotonic request id (starts at 1).
uint64_t NextQueryId();

}  // namespace obs
}  // namespace treeq

#endif  // TREEQ_OBS_PROFILE_H_
