#include "obs/stats.h"

#include <bit>
#include <cinttypes>
#include <cstdio>
#include <iomanip>

namespace treeq {
namespace obs {

namespace {

/// The calling thread's position in the trace tree; null means "at root".
thread_local SpanNode* tls_current_span = nullptr;

void AtomicMin(std::atomic<uint64_t>* slot, uint64_t v) {
  uint64_t cur = slot->load(std::memory_order_relaxed);
  while (v < cur &&
         !slot->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<uint64_t>* slot, uint64_t v) {
  uint64_t cur = slot->load(std::memory_order_relaxed);
  while (v > cur &&
         !slot->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void ResetSpanNode(SpanNode* node) {
  node->count.store(0, std::memory_order_relaxed);
  node->total_ns.store(0, std::memory_order_relaxed);
  node->child_ns.store(0, std::memory_order_relaxed);
  for (const auto& child : node->children) ResetSpanNode(child.get());
}

SpanSnapshot SnapshotSpanNode(const SpanNode& node) {
  SpanSnapshot snap;
  snap.name = node.name;
  snap.count = node.count.load(std::memory_order_relaxed);
  snap.total_ns = node.total_ns.load(std::memory_order_relaxed);
  uint64_t child = node.child_ns.load(std::memory_order_relaxed);
  snap.self_ns = snap.total_ns > child ? snap.total_ns - child : 0;
  for (const auto& c : node.children) {
    snap.children.push_back(SnapshotSpanNode(*c));
  }
  return snap;
}

void JsonSpan(std::ostream& os, const SpanSnapshot& span) {
  os << "{\"name\": \"" << JsonEscape(span.name)
     << "\", \"count\": " << span.count
     << ", \"total_ns\": " << span.total_ns
     << ", \"self_ns\": " << span.self_ns << ", \"children\": [";
  for (size_t i = 0; i < span.children.size(); ++i) {
    if (i > 0) os << ", ";
    JsonSpan(os, span.children[i]);
  }
  os << "]}";
}

void TableSpan(std::ostream& os, const SpanSnapshot& span, int depth) {
  std::string indent(static_cast<size_t>(depth) * 2, ' ');
  os << "  " << indent << span.name << "  count=" << span.count
     << "  total=" << span.total_ns << "ns  self=" << span.self_ns << "ns\n";
  for (const SpanSnapshot& c : span.children) TableSpan(os, c, depth + 1);
}

}  // namespace

ShadowCounters::ShadowCounters() : prev_(internal::tls_shadow_counters) {
  internal::tls_shadow_counters = this;
}

ShadowCounters::~ShadowCounters() {
  Flush();
  internal::tls_shadow_counters = prev_;
}

void ShadowCounters::Flush() {
  for (const auto& [counter, delta] : deltas_) counter->AddDirect(delta);
  deltas_.clear();
}

ShadowCounters* ShadowCounters::Current() {
  return internal::tls_shadow_counters;
}

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const uint64_t next = cumulative + buckets[i];
    if (static_cast<double>(next) >= target) {
      // Bucket i holds values with bit_width == i: {0} for i == 0,
      // [2^(i-1), 2^i - 1] otherwise. Interpolate by rank within it.
      double lo = i == 0 ? 0.0 : static_cast<double>(uint64_t{1} << (i - 1));
      double hi = i == 0 ? 0.0
                  : i >= 64
                      ? static_cast<double>(UINT64_MAX)
                      : static_cast<double>((uint64_t{1} << i) - 1);
      const double into =
          (target - static_cast<double>(cumulative)) / buckets[i];
      double v = lo + (hi - lo) * into;
      // The recorded extremes are exact; never report outside them.
      if (v < static_cast<double>(min)) v = static_cast<double>(min);
      if (v > static_cast<double>(max)) v = static_cast<double>(max);
      return v;
    }
    cumulative = next;
  }
  return static_cast<double>(max);
}

void Histogram::Record(uint64_t v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  AtomicMin(&min_, v);
  AtomicMax(&max_, v);
  buckets_[std::bit_width(v)].fetch_add(1, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  uint64_t min = min_.load(std::memory_order_relaxed);
  snap.min = snap.count == 0 || min == UINT64_MAX ? 0 : min;
  snap.max = max_.load(std::memory_order_relaxed);
  snap.buckets.resize(kNumBuckets);
  for (int i = 0; i < kNumBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

StatsRegistry::StatsRegistry() { span_root_.name = "<root>"; }

StatsRegistry& StatsRegistry::Global() {
  static StatsRegistry* registry = new StatsRegistry();  // never destroyed
  return *registry;
}

Counter* StatsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* StatsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* StatsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

void StatsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
  ResetSpanNode(&span_root_);
}

uint64_t StatsRegistry::CounterValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

uint64_t StatsRegistry::GaugeValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second->value();
}

std::map<std::string, uint64_t> StatsRegistry::CounterValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, uint64_t> out;
  for (const auto& [name, c] : counters_) out.emplace(name, c->value());
  return out;
}

std::map<std::string, uint64_t> StatsRegistry::GaugeValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, uint64_t> out;
  for (const auto& [name, g] : gauges_) out.emplace(name, g->value());
  return out;
}

std::map<std::string, HistogramSnapshot> StatsRegistry::HistogramValues()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, HistogramSnapshot> out;
  for (const auto& [name, h] : histograms_) out.emplace(name, h->Snapshot());
  return out;
}

std::vector<SpanSnapshot> StatsRegistry::SpanTree() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanSnapshot> out;
  for (const auto& c : span_root_.children) {
    out.push_back(SnapshotSpanNode(*c));
  }
  return out;
}

SpanNode* StatsRegistry::EnterSpan(const char* name) {
  std::lock_guard<std::mutex> lock(mu_);
  SpanNode* parent =
      tls_current_span == nullptr ? &span_root_ : tls_current_span;
  for (const auto& c : parent->children) {
    if (c->name == name) {
      tls_current_span = c.get();
      return c.get();
    }
  }
  auto node = std::make_unique<SpanNode>();
  node->name = name;
  node->parent = parent;
  SpanNode* raw = node.get();
  parent->children.push_back(std::move(node));
  tls_current_span = raw;
  return raw;
}

void StatsRegistry::ExitSpan(SpanNode* node, uint64_t elapsed_ns) {
  node->count.fetch_add(1, std::memory_order_relaxed);
  node->total_ns.fetch_add(elapsed_ns, std::memory_order_relaxed);
  if (node->parent != nullptr && node->parent != &span_root_) {
    node->parent->child_ns.fetch_add(elapsed_ns, std::memory_order_relaxed);
  }
  tls_current_span = node->parent == &span_root_ ? nullptr : node->parent;
}

void StatsRegistry::DumpJson(std::ostream& os) const {
  // Snapshot everything first; the accessors take the lock themselves.
  auto counters = CounterValues();
  auto gauges = GaugeValues();
  auto histograms = HistogramValues();
  auto spans = SpanTree();

  os << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << JsonEscape(name) << "\": " << v;
  }
  os << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << JsonEscape(name) << "\": " << v;
  }
  os << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << JsonEscape(name) << "\": {\"count\": " << h.count
       << ", \"sum\": " << h.sum << ", \"min\": " << h.min
       << ", \"max\": " << h.max << ", \"mean\": " << h.mean()
       << ", \"p50\": " << h.Percentile(0.5)
       << ", \"p90\": " << h.Percentile(0.9)
       << ", \"p99\": " << h.Percentile(0.99) << "}";
  }
  os << "}, \"spans\": [";
  for (size_t i = 0; i < spans.size(); ++i) {
    if (i > 0) os << ", ";
    JsonSpan(os, spans[i]);
  }
  os << "]}";
}

void StatsRegistry::DumpTable(std::ostream& os) const {
  os << "counters:\n";
  for (const auto& [name, v] : CounterValues()) {
    os << "  " << std::left << std::setw(40) << name << " " << v << "\n";
  }
  os << "gauges:\n";
  for (const auto& [name, v] : GaugeValues()) {
    os << "  " << std::left << std::setw(40) << name << " " << v << "\n";
  }
  os << "histograms:\n";
  for (const auto& [name, h] : HistogramValues()) {
    os << "  " << std::left << std::setw(40) << name << " count=" << h.count
       << " sum=" << h.sum << " min=" << h.min << " max=" << h.max
       << " mean=" << h.mean() << " p50=" << h.Percentile(0.5)
       << " p90=" << h.Percentile(0.9) << " p99=" << h.Percentile(0.99)
       << "\n";
  }
  os << "spans:\n";
  for (const SpanSnapshot& span : SpanTree()) TableSpan(os, span, 0);
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace treeq
