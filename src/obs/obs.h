#ifndef TREEQ_OBS_OBS_H_
#define TREEQ_OBS_OBS_H_

/// \file obs.h
/// Instrumentation macros — the only interface engine code should use to
/// record observability data. Each macro caches the registry pointer in a
/// function-local static, so a counter hit after the first costs one
/// relaxed atomic add.
///
///   TREEQ_OBS_INC("xpath.axis_ops");              // counter += 1
///   TREEQ_OBS_COUNT("cq.twig.output", n);         // counter += n
///   TREEQ_OBS_GAUGE_MAX("stream.peak", depth);    // high-water mark
///   TREEQ_OBS_HISTOGRAM("xpath.result_size", k);  // log2 histogram
///   TREEQ_OBS_SPAN("datalog.eval");               // RAII timer to scope end
///   TREEQ_OBS_FLIGHT_RECORD(std::move(profile));  // per-query profile
///
/// Building with -DTREEQ_OBS_DISABLED (CMake option TREEQ_OBS_DISABLED)
/// turns every macro into an empty statement: the argument expressions are
/// discarded textually, no obs symbol is referenced, and instrumented hot
/// loops compile exactly as if the macros were absent.

#if defined(TREEQ_OBS_DISABLED)

#define TREEQ_OBS_COUNT(name, delta) \
  do {                               \
  } while (0)
#define TREEQ_OBS_INC(name) \
  do {                      \
  } while (0)
#define TREEQ_OBS_GAUGE_MAX(name, value) \
  do {                                   \
  } while (0)
#define TREEQ_OBS_GAUGE_SET(name, value) \
  do {                                   \
  } while (0)
#define TREEQ_OBS_HISTOGRAM(name, value) \
  do {                                   \
  } while (0)
#define TREEQ_OBS_SPAN(name) \
  do {                       \
  } while (0)
#define TREEQ_OBS_FLIGHT_RECORD(profile) \
  do {                                   \
  } while (0)

#else  // !defined(TREEQ_OBS_DISABLED)

#include "obs/flight_recorder.h"
#include "obs/span.h"
#include "obs/stats.h"

#define TREEQ_OBS_CONCAT_IMPL(a, b) a##b
#define TREEQ_OBS_CONCAT(a, b) TREEQ_OBS_CONCAT_IMPL(a, b)

#define TREEQ_OBS_COUNT(name, delta)                            \
  do {                                                          \
    static ::treeq::obs::Counter* const _treeq_obs_counter =    \
        ::treeq::obs::StatsRegistry::Global().GetCounter(name); \
    _treeq_obs_counter->Add(static_cast<uint64_t>(delta));      \
  } while (0)

#define TREEQ_OBS_INC(name) TREEQ_OBS_COUNT(name, 1)

#define TREEQ_OBS_GAUGE_MAX(name, value)                          \
  do {                                                            \
    static ::treeq::obs::Gauge* const _treeq_obs_gauge =          \
        ::treeq::obs::StatsRegistry::Global().GetGauge(name);     \
    _treeq_obs_gauge->RecordMax(static_cast<uint64_t>(value));    \
  } while (0)

#define TREEQ_OBS_GAUGE_SET(name, value)                      \
  do {                                                        \
    static ::treeq::obs::Gauge* const _treeq_obs_gauge =      \
        ::treeq::obs::StatsRegistry::Global().GetGauge(name); \
    _treeq_obs_gauge->Set(static_cast<uint64_t>(value));      \
  } while (0)

#define TREEQ_OBS_HISTOGRAM(name, value)                          \
  do {                                                            \
    static ::treeq::obs::Histogram* const _treeq_obs_histogram =  \
        ::treeq::obs::StatsRegistry::Global().GetHistogram(name); \
    _treeq_obs_histogram->Record(static_cast<uint64_t>(value));   \
  } while (0)

#define TREEQ_OBS_SPAN(name)                                          \
  ::treeq::obs::ScopedSpan TREEQ_OBS_CONCAT(_treeq_obs_span_,         \
                                            __LINE__)(name)

#define TREEQ_OBS_FLIGHT_RECORD(profile)                       \
  do {                                                         \
    ::treeq::obs::FlightRecorder::Global().Record((profile));  \
  } while (0)

#endif  // TREEQ_OBS_DISABLED

#endif  // TREEQ_OBS_OBS_H_
