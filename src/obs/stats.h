#ifndef TREEQ_OBS_STATS_H_
#define TREEQ_OBS_STATS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

/// \file stats.h
/// The treeq observability registry: named monotonic counters, max-gauges,
/// and size/latency histograms with cheap thread-safe updates, plus a
/// lightweight trace tree aggregated from `ScopedSpan` (span.h) timings.
///
/// Instrumentation sites do not use these classes directly; they use the
/// macros in obs.h, which cache the registry pointer in a function-local
/// static so a hit costs one relaxed atomic add. With `TREEQ_OBS_DISABLED`
/// defined the macros expand to nothing and no registry symbol is
/// referenced from instrumented code.
///
/// Counter names are dot-separated, one namespace per engine family
/// ("xpath.axis_ops", "cq.twig.stack_pushes", ...); see DESIGN.md's
/// "Observability" section for the taxonomy.

namespace treeq {
namespace obs {

class Counter;

/// Per-thread shadow buffer for counter increments. While one is installed
/// on a thread (construction installs, destruction flushes and restores the
/// previously installed one), every Counter::Add on that thread accumulates
/// into a thread-private delta table instead of the shared atomic — no
/// cache-line sharing between worker threads hammering the same counters.
/// Flush() (and the destructor) merges the accumulated deltas into the real
/// counters with one relaxed add per touched counter.
///
/// The engine's worker pool installs one per worker and flushes at request
/// boundaries, so whenever a request's future is ready its counter deltas
/// are globally visible. Gauges and histograms are not shadowed; they stay
/// direct atomic updates.
class ShadowCounters {
 public:
  ShadowCounters();
  ~ShadowCounters();

  ShadowCounters(const ShadowCounters&) = delete;
  ShadowCounters& operator=(const ShadowCounters&) = delete;

  /// Merges all buffered deltas into the underlying counters and clears the
  /// buffer. Called automatically on destruction.
  void Flush();

  void Buffer(Counter* counter, uint64_t delta) { deltas_[counter] += delta; }

  /// The delta buffered for `counter` since the last Flush(). The engine's
  /// worker loop flushes at request boundaries, so sampling this right
  /// before the flush yields the finishing request's exact share of the
  /// counter — the per-query attribution QueryProfile records.
  uint64_t BufferedDelta(const Counter* counter) const {
    auto it = deltas_.find(const_cast<Counter*>(counter));
    return it == deltas_.end() ? 0 : it->second;
  }

  /// The shadow installed on the calling thread, or nullptr.
  static ShadowCounters* Current();

 private:
  std::unordered_map<Counter*, uint64_t> deltas_;
  ShadowCounters* prev_;
};

namespace internal {
/// The calling thread's active shadow buffer (innermost, if nested).
/// Defined inline (constant-initialized) so reads compile to a direct TLS
/// load in every TU instead of a cross-TU wrapper call.
inline thread_local ShadowCounters* tls_shadow_counters = nullptr;
}  // namespace internal

/// A monotonic event counter. Updates are relaxed atomic adds — or, when
/// the calling thread has a ShadowCounters installed, thread-private
/// buffered adds merged on Flush().
class Counter {
 public:
  void Add(uint64_t delta) {
    if (ShadowCounters* shadow = internal::tls_shadow_counters) {
      shadow->Buffer(this, delta);
      return;
    }
    AddDirect(delta);
  }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  /// Bypasses any installed shadow (used by ShadowCounters::Flush).
  void AddDirect(uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A high-water-mark gauge (e.g. peak stack depth). `RecordMax` keeps the
/// maximum ever observed; `Set` overwrites.
class Gauge {
 public:
  void Set(uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  void RecordMax(uint64_t v) {
    uint64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Read-only view of a Histogram at one instant.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  // 0 when count == 0
  uint64_t max = 0;
  /// buckets[i] counts values v with bit_width(v) == i, i.e. bucket 0 is
  /// {0}, bucket i >= 1 is [2^(i-1), 2^i).
  std::vector<uint64_t> buckets;

  double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }

  /// The q-quantile (q in [0, 1]) estimated by linear interpolation inside
  /// the covering log2 bucket, clamped to the recorded [min, max]. With
  /// power-of-two buckets the estimate is within 2x of the true quantile;
  /// good enough for p50/p90/p99 reporting and the flight recorder's
  /// auto slow-query threshold. Returns 0 when the histogram is empty.
  double Percentile(double q) const;
};

/// A log2-bucketed histogram of sizes or latencies (nanoseconds).
class Histogram {
 public:
  static constexpr int kNumBuckets = 65;  // bit_width of uint64_t in [0,64]

  void Record(uint64_t v);
  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
};

/// One node of the aggregated trace tree: totals for every execution of a
/// span name at one nesting position. Structure mutations are guarded by
/// the registry mutex; totals are atomics so exits never lock.
struct SpanNode {
  std::string name;
  SpanNode* parent = nullptr;
  std::atomic<uint64_t> count{0};
  std::atomic<uint64_t> total_ns{0};
  std::atomic<uint64_t> child_ns{0};
  std::vector<std::unique_ptr<SpanNode>> children;
};

/// Read-only view of one trace-tree node.
struct SpanSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t total_ns = 0;
  /// Time not attributed to any child span.
  uint64_t self_ns = 0;
  std::vector<SpanSnapshot> children;
};

/// The process-wide registry. Get* registers on first use and returns a
/// stable pointer (entries are never removed, so macro-site caches stay
/// valid across Reset()).
class StatsRegistry {
 public:
  static StatsRegistry& Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// Zeroes every counter, gauge, histogram, and span total. Registered
  /// names and cached pointers remain valid.
  void Reset();

  /// Current value of a counter / gauge, 0 if never registered.
  uint64_t CounterValue(std::string_view name) const;
  uint64_t GaugeValue(std::string_view name) const;

  std::map<std::string, uint64_t> CounterValues() const;
  std::map<std::string, uint64_t> GaugeValues() const;
  std::map<std::string, HistogramSnapshot> HistogramValues() const;
  std::vector<SpanSnapshot> SpanTree() const;

  /// Serializes the full registry as one JSON object:
  /// {"counters": {...}, "gauges": {...}, "histograms": {...},
  ///  "spans": [...]}.
  void DumpJson(std::ostream& os) const;

  /// Human-readable aligned dump (counters, gauges, histograms, span tree).
  void DumpTable(std::ostream& os) const;

  /// Used by ScopedSpan. EnterSpan pushes a node for `name` under the
  /// calling thread's current span (creating it on first use) and returns
  /// it; ExitSpan records the elapsed time and pops.
  SpanNode* EnterSpan(const char* name);
  void ExitSpan(SpanNode* node, uint64_t elapsed_ns);

 private:
  StatsRegistry();

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  SpanNode span_root_;
};

/// Escapes `s` for use inside a JSON string literal (quotes not included).
std::string JsonEscape(std::string_view s);

}  // namespace obs
}  // namespace treeq

#endif  // TREEQ_OBS_STATS_H_
