#ifndef TREEQ_OBS_SPAN_H_
#define TREEQ_OBS_SPAN_H_

#include <chrono>

#include "obs/stats.h"

/// \file span.h
/// RAII wall-clock timers (steady_clock) that nest into the registry's
/// trace tree. Constructing a ScopedSpan pushes a node named `name` under
/// the calling thread's current span; destruction records the elapsed time
/// into that node's aggregate totals.
///
/// Use via the TREEQ_OBS_SPAN macro in obs.h so the span compiles away
/// under TREEQ_OBS_DISABLED.

namespace treeq {
namespace obs {

class ScopedSpan {
 public:
  /// `name` must outlive the program (string literals only).
  explicit ScopedSpan(const char* name)
      : node_(StatsRegistry::Global().EnterSpan(name)),
        start_(std::chrono::steady_clock::now()) {}

  ~ScopedSpan() {
    auto elapsed = std::chrono::steady_clock::now() - start_;
    StatsRegistry::Global().ExitSpan(
        node_, static_cast<uint64_t>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(
                       elapsed)
                       .count()));
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanNode* node_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace treeq

#endif  // TREEQ_OBS_SPAN_H_
