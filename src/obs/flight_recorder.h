#ifndef TREEQ_OBS_FLIGHT_RECORDER_H_
#define TREEQ_OBS_FLIGHT_RECORDER_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <vector>

#include "obs/profile.h"

/// \file flight_recorder.h
/// A fixed-capacity ring buffer of the last N QueryProfiles plus a
/// separate threshold-gated ring of slow queries — the "what just
/// happened" view the aggregate StatsRegistry cannot give. Memory is
/// bounded by construction: capacity * sizeof(QueryProfile) (+ the bounded
/// strings each profile holds), regardless of traffic.
///
/// Writers are the Executor's workers, so Record() is sharded: profiles
/// round-robin across kNumShards independently-locked rings, and two
/// workers recording concurrently almost never touch the same mutex. The
/// slow ring is a single mutex — by definition it sees only the tail of
/// the latency distribution.
///
/// The global recorder (FlightRecorder::Global(), StatsRegistry-style) is
/// disabled by default: an atomic `enabled` flag gates recording, and the
/// engine skips building profiles entirely while it is off, so serving
/// pays nothing until someone turns the recorder on (query_server's
/// --flight-recorder flag, the bench's overhead experiment, tests).
/// Instrumentation sites use the TREEQ_OBS_FLIGHT_RECORD macro (obs.h),
/// which compiles to an empty statement under TREEQ_OBS_DISABLED; the
/// class itself stays linkable in disabled builds, like StatsRegistry.
///
/// Slow gating: a profile whose total_ns() reaches the threshold is also
/// copied into the slow ring. An explicit threshold (slow_threshold_ns > 0)
/// is taken as-is; in auto mode (0) the threshold is the p99 of the
/// engine.execute_ns histogram (HistogramSnapshot::Percentile), recomputed
/// every kAutoThresholdStride records — until that histogram has
/// kAutoThresholdMinSamples samples, nothing is considered slow.

namespace treeq {
namespace obs {

class FlightRecorder {
 public:
  struct Options {
    /// Profiles retained in the main ring. Rounded up to a multiple of
    /// kNumShards (each shard keeps capacity / kNumShards slots).
    size_t capacity = 256;
    /// Profiles retained in the slow ring.
    size_t slow_capacity = 64;
    /// Slow gate on QueryProfile::total_ns(); 0 = auto (p99 of
    /// engine.execute_ns).
    uint64_t slow_threshold_ns = 0;
  };

  static constexpr size_t kNumShards = 8;
  static constexpr uint64_t kAutoThresholdStride = 64;
  static constexpr uint64_t kAutoThresholdMinSamples = 32;

  /// The process-wide recorder used by the engine. Starts disabled.
  static FlightRecorder& Global();

  FlightRecorder() : FlightRecorder(Options()) {}
  explicit FlightRecorder(const Options& options);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Reconfigures (dropping retained profiles) and starts recording.
  void Enable(const Options& options);
  /// Stops recording; retained profiles stay readable.
  void Disable();
  /// One relaxed atomic load — the engine's "should I build a profile at
  /// all" check.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Stamps `profile.seq` and stores it (dropped while disabled). Also
  /// copies it into the slow ring when total_ns() meets the threshold.
  void Record(QueryProfile profile);

  /// Retained profiles, oldest first. At most `capacity()` of them.
  std::vector<QueryProfile> Recent() const;
  /// Retained slow profiles, oldest first.
  std::vector<QueryProfile> Slow() const;

  size_t capacity() const { return kNumShards * shard_capacity_; }
  size_t slow_capacity() const { return slow_capacity_; }

  /// Lifetime totals (survive ring eviction, reset by Enable/Clear).
  uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  uint64_t slow_recorded() const {
    return slow_recorded_.load(std::memory_order_relaxed);
  }

  /// The threshold currently gating the slow ring: the configured value,
  /// or in auto mode the cached p99 (UINT64_MAX until enough samples).
  uint64_t EffectiveSlowThresholdNs() const;

  /// Drops every retained profile and zeroes the lifetime totals.
  void Clear();

  /// {"capacity": ..., "slow_threshold_ns": ..., "recorded": ...,
  ///  "profiles": [...], "slow": [...]}.
  void DumpJson(std::ostream& os) const;
  /// Aligned human-readable table: recent profiles, then the slow ring.
  void DumpTable(std::ostream& os) const;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::vector<QueryProfile> ring;  // ring[seq/kNumShards % shard_capacity]
    uint64_t stored = 0;             // profiles ever stored in this shard
  };

  /// Recomputes the auto threshold from engine.execute_ns if due.
  uint64_t AutoThresholdNs();
  void CollectSorted(std::vector<QueryProfile>* out) const;

  std::atomic<bool> enabled_{false};
  size_t shard_capacity_ = 0;
  size_t slow_capacity_ = 0;
  uint64_t configured_slow_threshold_ns_ = 0;
  std::array<Shard, kNumShards> shards_;

  mutable std::mutex slow_mu_;
  std::vector<QueryProfile> slow_ring_;
  uint64_t slow_stored_ = 0;

  std::atomic<uint64_t> seq_{0};
  std::atomic<uint64_t> recorded_{0};
  std::atomic<uint64_t> slow_recorded_{0};
  std::atomic<uint64_t> cached_auto_threshold_ns_{UINT64_MAX};
};

}  // namespace obs
}  // namespace treeq

#endif  // TREEQ_OBS_FLIGHT_RECORDER_H_
