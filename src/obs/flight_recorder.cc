#include "obs/flight_recorder.h"

#include <algorithm>
#include <iomanip>

#include "obs/stats.h"

namespace treeq {
namespace obs {

namespace {

/// Query text column width in DumpTable.
constexpr size_t kTableQueryChars = 40;

std::string Truncate(const std::string& s, size_t n) {
  std::string out = s.size() <= n ? s : s.substr(0, n - 3) + "...";
  // Query text may span lines (datalog programs); keep table rows intact.
  for (char& c : out) {
    if (c == '\n' || c == '\r' || c == '\t') c = ' ';
  }
  return out;
}

void TableRow(std::ostream& os, const QueryProfile& p) {
  os << "  " << std::right << std::setw(6) << p.id << "  " << std::left
     << std::setw(7) << p.language << " " << std::setw(18)
     << Truncate(p.engine, 18) << " " << std::setw(10)
     << Truncate(p.document, 10) << " " << (p.cache_hit ? "hit " : "cold")
     << (p.degraded ? " degr" : "     ") << std::right << std::setw(9)
     << p.queue_wait_ns / 1000 << " " << std::setw(9) << p.compile_ns / 1000
     << " " << std::setw(9) << p.execute_ns / 1000 << " " << std::setw(10)
     << p.visits << "  " << std::left << std::setw(18)
     << Truncate(p.status, 18) << " "
     << Truncate(p.query, kTableQueryChars) << "\n";
}

void TableHeader(std::ostream& os) {
  os << "  " << std::right << std::setw(6) << "id" << "  " << std::left
     << std::setw(7) << "lang" << " " << std::setw(18) << "engine" << " "
     << std::setw(10) << "document" << " " << "plan     " << std::right
     << std::setw(9) << "queue_us" << " " << std::setw(9) << "comp_us"
     << " " << std::setw(9) << "exec_us" << " " << std::setw(10) << "visits"
     << "  " << std::left << std::setw(18) << "status" << " query\n";
}

}  // namespace

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();  // never destroyed
  return *recorder;
}

FlightRecorder::FlightRecorder(const Options& options) {
  shard_capacity_ =
      (std::max<size_t>(1, options.capacity) + kNumShards - 1) / kNumShards;
  slow_capacity_ = std::max<size_t>(1, options.slow_capacity);
  configured_slow_threshold_ns_ = options.slow_threshold_ns;
  for (Shard& shard : shards_) shard.ring.resize(shard_capacity_);
  slow_ring_.resize(slow_capacity_);
}

void FlightRecorder::Enable(const Options& options) {
  Disable();
  {
    // Take every lock so in-flight Records that passed the enabled check
    // finish before the rings are reshaped.
    std::array<std::unique_lock<std::mutex>, kNumShards> locks;
    for (size_t i = 0; i < kNumShards; ++i) {
      locks[i] = std::unique_lock<std::mutex>(shards_[i].mu);
    }
    std::lock_guard<std::mutex> slow_lock(slow_mu_);
    shard_capacity_ =
        (std::max<size_t>(1, options.capacity) + kNumShards - 1) / kNumShards;
    slow_capacity_ = std::max<size_t>(1, options.slow_capacity);
    configured_slow_threshold_ns_ = options.slow_threshold_ns;
    for (Shard& shard : shards_) {
      shard.ring.assign(shard_capacity_, QueryProfile());
      shard.stored = 0;
    }
    slow_ring_.assign(slow_capacity_, QueryProfile());
    slow_stored_ = 0;
    seq_.store(0, std::memory_order_relaxed);
    recorded_.store(0, std::memory_order_relaxed);
    slow_recorded_.store(0, std::memory_order_relaxed);
    cached_auto_threshold_ns_.store(UINT64_MAX, std::memory_order_relaxed);
  }
  enabled_.store(true, std::memory_order_release);
}

void FlightRecorder::Disable() {
  enabled_.store(false, std::memory_order_release);
}

uint64_t FlightRecorder::AutoThresholdNs() {
  // Recompute every kAutoThresholdStride records; the histogram snapshot
  // is 65 relaxed loads, far off the per-record path at this stride.
  Histogram* hist =
      StatsRegistry::Global().GetHistogram("engine.execute_ns");
  HistogramSnapshot snap = hist->Snapshot();
  uint64_t threshold = UINT64_MAX;
  if (snap.count >= kAutoThresholdMinSamples) {
    threshold = static_cast<uint64_t>(snap.Percentile(0.99));
  }
  cached_auto_threshold_ns_.store(threshold, std::memory_order_relaxed);
  return threshold;
}

uint64_t FlightRecorder::EffectiveSlowThresholdNs() const {
  if (configured_slow_threshold_ns_ > 0) {
    return configured_slow_threshold_ns_;
  }
  return cached_auto_threshold_ns_.load(std::memory_order_relaxed);
}

void FlightRecorder::Record(QueryProfile profile) {
  if (!enabled()) return;
  const uint64_t n = recorded_.fetch_add(1, std::memory_order_relaxed);
  uint64_t threshold = configured_slow_threshold_ns_;
  if (threshold == 0) {
    threshold = (n % kAutoThresholdStride == 0)
                    ? AutoThresholdNs()
                    : cached_auto_threshold_ns_.load(
                          std::memory_order_relaxed);
  }
  const uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  profile.seq = seq + 1;  // 0 stays "never recorded"

  if (profile.total_ns() >= threshold) {
    slow_recorded_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(slow_mu_);
    slow_ring_[slow_stored_ % slow_capacity_] = profile;
    ++slow_stored_;
  }

  Shard& shard = shards_[seq % kNumShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.ring[(seq / kNumShards) % shard_capacity_] = std::move(profile);
  ++shard.stored;
}

void FlightRecorder::CollectSorted(std::vector<QueryProfile>* out) const {
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    const size_t valid = std::min<uint64_t>(shard.stored, shard.ring.size());
    for (size_t i = 0; i < valid; ++i) out->push_back(shard.ring[i]);
  }
  std::sort(out->begin(), out->end(),
            [](const QueryProfile& a, const QueryProfile& b) {
              return a.seq < b.seq;
            });
}

std::vector<QueryProfile> FlightRecorder::Recent() const {
  std::vector<QueryProfile> out;
  out.reserve(capacity());
  CollectSorted(&out);
  return out;
}

std::vector<QueryProfile> FlightRecorder::Slow() const {
  std::vector<QueryProfile> out;
  {
    std::lock_guard<std::mutex> lock(slow_mu_);
    const size_t valid = std::min<uint64_t>(slow_stored_, slow_ring_.size());
    out.reserve(valid);
    for (size_t i = 0; i < valid; ++i) out.push_back(slow_ring_[i]);
  }
  std::sort(out.begin(), out.end(),
            [](const QueryProfile& a, const QueryProfile& b) {
              return a.seq < b.seq;
            });
  return out;
}

void FlightRecorder::Clear() {
  std::array<std::unique_lock<std::mutex>, kNumShards> locks;
  for (size_t i = 0; i < kNumShards; ++i) {
    locks[i] = std::unique_lock<std::mutex>(shards_[i].mu);
  }
  std::lock_guard<std::mutex> slow_lock(slow_mu_);
  for (Shard& shard : shards_) {
    shard.ring.assign(shard_capacity_, QueryProfile());
    shard.stored = 0;
  }
  slow_ring_.assign(slow_capacity_, QueryProfile());
  slow_stored_ = 0;
  seq_.store(0, std::memory_order_relaxed);
  recorded_.store(0, std::memory_order_relaxed);
  slow_recorded_.store(0, std::memory_order_relaxed);
}

void FlightRecorder::DumpJson(std::ostream& os) const {
  std::vector<QueryProfile> recent = Recent();
  std::vector<QueryProfile> slow = Slow();
  os << "{\"enabled\": " << (enabled() ? "true" : "false")
     << ", \"capacity\": " << capacity()
     << ", \"slow_capacity\": " << slow_capacity()
     << ", \"slow_threshold_ns\": " << EffectiveSlowThresholdNs()
     << ", \"recorded\": " << recorded()
     << ", \"slow_recorded\": " << slow_recorded() << ", \"profiles\": [";
  for (size_t i = 0; i < recent.size(); ++i) {
    if (i > 0) os << ", ";
    recent[i].WriteJson(os);
  }
  os << "], \"slow\": [";
  for (size_t i = 0; i < slow.size(); ++i) {
    if (i > 0) os << ", ";
    slow[i].WriteJson(os);
  }
  os << "]}";
}

void FlightRecorder::DumpTable(std::ostream& os) const {
  std::vector<QueryProfile> recent = Recent();
  std::vector<QueryProfile> slow = Slow();
  os << "flight recorder: " << recorded() << " recorded, " << recent.size()
     << "/" << capacity() << " retained, " << slow_recorded()
     << " slow (threshold ";
  const uint64_t threshold = EffectiveSlowThresholdNs();
  if (threshold == UINT64_MAX) {
    os << "auto, not yet calibrated";
  } else {
    os << threshold << " ns";
  }
  os << ")\n";
  TableHeader(os);
  for (const QueryProfile& p : recent) TableRow(os, p);
  if (!slow.empty()) {
    os << "slow queries:\n";
    TableHeader(os);
    for (const QueryProfile& p : slow) TableRow(os, p);
  }
}

}  // namespace obs
}  // namespace treeq
