#include "obs/profile.h"

#include <atomic>

#include "obs/stats.h"

namespace treeq {
namespace obs {

void QueryProfile::WriteJson(std::ostream& os) const {
  os << "{\"id\": " << id << ", \"seq\": " << seq << ", \"language\": \""
     << JsonEscape(language) << "\", \"query_hash\": " << query_hash
     << ", \"query\": \"" << JsonEscape(query) << "\", \"document\": \""
     << JsonEscape(document) << "\", \"engine\": \"" << JsonEscape(engine)
     << "\", \"explain\": \"" << JsonEscape(explain)
     << "\", \"route_rationale\": \"" << JsonEscape(route_rationale)
     << "\", \"canonical_hash\": \"" << JsonEscape(canonical_hash)
     << "\", \"cache_hit\": " << (cache_hit ? "true" : "false")
     << ", \"result_cache_hit\": " << (result_cache_hit ? "true" : "false")
     << ", \"degraded\": " << (degraded ? "true" : "false")
     << ", \"ok\": " << (ok ? "true" : "false") << ", \"status\": \""
     << JsonEscape(status) << "\", \"queue_wait_ns\": " << queue_wait_ns
     << ", \"compile_ns\": " << compile_ns
     << ", \"execute_ns\": " << execute_ns
     << ", \"partitions\": " << partitions
     << ", \"parallel_ns\": " << parallel_ns
     << ", \"merge_ns\": " << merge_ns
     << ", \"total_ns\": " << total_ns() << ", \"visits\": " << visits
     << ", \"words_scanned\": " << words_scanned
     << ", \"label_index_hits\": " << label_index_hits
     << ", \"eval_cache_hits\": " << eval_cache_hits
     << ", \"estimated_visits\": " << estimated_visits << "}";
}

uint64_t HashQueryText(std::string_view text) {
  // FNV-1a, 64-bit.
  uint64_t h = 14695981039346656037ull;
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t NextQueryId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace treeq
