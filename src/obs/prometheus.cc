#include "obs/prometheus.h"

#include <cstdint>

namespace treeq {
namespace obs {

namespace {

bool ValidNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// Inclusive upper bound of log2 bucket i: {0} for i == 0, [2^(i-1), 2^i)
/// for 1 <= i <= 63, and everything with the top bit set for i == 64.
uint64_t BucketUpperBound(int i) {
  if (i >= 64) return UINT64_MAX;
  return (uint64_t{1} << i) - 1;
}

void ExportHistogram(std::ostream& os, const std::string& name,
                     const HistogramSnapshot& h) {
  os << "# HELP " << name << " treeq histogram " << name << "\n";
  os << "# TYPE " << name << " histogram\n";
  // Emit cumulative buckets up to the highest non-empty one; the +Inf
  // bucket (== count) is always present, so empty tails cost nothing.
  int highest = -1;
  for (int i = 0; i < static_cast<int>(h.buckets.size()); ++i) {
    if (h.buckets[i] > 0) highest = i;
  }
  uint64_t cumulative = 0;
  for (int i = 0; i <= highest; ++i) {
    cumulative += h.buckets[i];
    os << name << "_bucket{le=\"" << BucketUpperBound(i)
       << "\"} " << cumulative << "\n";
  }
  os << name << "_bucket{le=\"+Inf\"} " << h.count << "\n";
  os << name << "_sum " << h.sum << "\n";
  os << name << "_count " << h.count << "\n";
}

}  // namespace

std::string PrometheusName(std::string_view dot_name) {
  std::string out = "treeq_";
  out.reserve(out.size() + dot_name.size());
  for (char c : dot_name) {
    out += ValidNameChar(c) ? c : '_';
  }
  return out;
}

std::string PrometheusEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void ExportPrometheus(const StatsRegistry& registry, std::ostream& os) {
  for (const auto& [dot_name, value] : registry.CounterValues()) {
    const std::string name = PrometheusName(dot_name) + "_total";
    os << "# HELP " << name << " treeq counter "
       << PrometheusEscape(dot_name) << "\n";
    os << "# TYPE " << name << " counter\n";
    os << name << " " << value << "\n";
  }
  for (const auto& [dot_name, value] : registry.GaugeValues()) {
    const std::string name = PrometheusName(dot_name);
    os << "# HELP " << name << " treeq gauge " << PrometheusEscape(dot_name)
       << "\n";
    os << "# TYPE " << name << " gauge\n";
    os << name << " " << value << "\n";
  }
  for (const auto& [dot_name, snapshot] : registry.HistogramValues()) {
    ExportHistogram(os, PrometheusName(dot_name), snapshot);
  }
}

void ExportPrometheus(std::ostream& os) {
  ExportPrometheus(StatsRegistry::Global(), os);
}

}  // namespace obs
}  // namespace treeq
