#ifndef TREEQ_OBS_PROMETHEUS_H_
#define TREEQ_OBS_PROMETHEUS_H_

#include <ostream>
#include <string>
#include <string_view>

#include "obs/stats.h"

/// \file prometheus.h
/// Prometheus text-exposition (version 0.0.4) export of the full
/// StatsRegistry. Dot-separated treeq names map to `treeq_`-prefixed
/// underscore names ("engine.plan_cache.hits" ->
/// "treeq_engine_plan_cache_hits_total"); counters get the conventional
/// `_total` suffix, gauges export verbatim, and the log2 histograms render
/// as cumulative `_bucket{le="..."}` / `_sum` / `_count` series with one
/// `le` per power-of-two upper bound (bucket i holds values with
/// bit_width == i, so its inclusive upper bound is 2^i - 1). Spans have no
/// Prometheus analogue and are not exported — use DumpJson for traces.
///
/// Write the output to a file and point a node_exporter textfile collector
/// (or any scraper of the exposition format) at it; query_server's
/// --metrics-out flag does exactly that.

namespace treeq {
namespace obs {

/// "engine.plan_cache.hits" -> "treeq_engine_plan_cache_hits": prefixes
/// `treeq_` and maps every character outside [a-zA-Z0-9_] to '_'.
std::string PrometheusName(std::string_view dot_name);

/// Escapes a HELP text or label value: backslash, double-quote, and
/// newline become \\, \", and \n.
std::string PrometheusEscape(std::string_view s);

/// Renders every counter, gauge, and histogram of `registry` in the text
/// exposition format (# HELP / # TYPE comments included).
void ExportPrometheus(const StatsRegistry& registry, std::ostream& os);

/// ExportPrometheus over the process-wide registry.
void ExportPrometheus(std::ostream& os);

}  // namespace obs
}  // namespace treeq

#endif  // TREEQ_OBS_PROMETHEUS_H_
