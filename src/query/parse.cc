#include "query/parse.h"

#include <string>
#include <utility>

#include "cq/parser.h"
#include "datalog/parser.h"
#include "fo/parser.h"
#include "xpath/parser.h"

namespace treeq {

const char* LanguageName(Language language) {
  switch (language) {
    case Language::kXPath:
      return "xpath";
    case Language::kCq:
      return "cq";
    case Language::kDatalog:
      return "datalog";
    case Language::kFo:
      return "fo";
  }
  return "unknown";
}

Result<Language> ParseLanguageName(std::string_view name) {
  if (name == "xpath") return Language::kXPath;
  if (name == "cq") return Language::kCq;
  if (name == "datalog") return Language::kDatalog;
  if (name == "fo") return Language::kFo;
  return Status::NotFound("unknown query language: " + std::string(name));
}

Result<ParsedQuery> ParseQuery(Language language, std::string_view text) {
  return ParseQuery(language, text, ParseOptions{});
}

Result<ParsedQuery> ParseQuery(Language language, std::string_view text,
                               const ParseOptions& options) {
  ParsedQuery out;
  out.language = language;
  switch (language) {
    case Language::kXPath: {
      xpath::ParserOptions xpath_options;
      xpath_options.max_nesting = options.max_nesting;
      xpath_options.paper_axes = options.xpath_paper_axes;
      TREEQ_ASSIGN_OR_RETURN(out.xpath,
                             xpath::ParseXPath(text, xpath_options));
      return out;
    }
    case Language::kCq: {
      TREEQ_ASSIGN_OR_RETURN(cq::ConjunctiveQuery q, cq::ParseCq(text));
      out.cq = std::move(q);
      return out;
    }
    case Language::kDatalog: {
      TREEQ_ASSIGN_OR_RETURN(datalog::Program p,
                             datalog::ParseProgram(text));
      out.datalog = std::move(p);
      return out;
    }
    case Language::kFo: {
      TREEQ_ASSIGN_OR_RETURN(out.fo, fo::ParseFo(text));
      return out;
    }
  }
  return Status::InvalidArgument("invalid Language value");
}

}  // namespace treeq
