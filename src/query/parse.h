#ifndef TREEQ_QUERY_PARSE_H_
#define TREEQ_QUERY_PARSE_H_

#include <memory>
#include <optional>
#include <string_view>

#include "cq/ast.h"
#include "datalog/ast.h"
#include "fo/ast.h"
#include "util/status.h"
#include "xpath/ast.h"

/// \file parse.h
/// The one front door over the four query-language parsers. Instead of
/// picking among xpath::ParseXPath / cq::ParseCq / datalog::ParseProgram /
/// fo::ParseFo, callers name the language and hand over the text:
///
///   TREEQ_ASSIGN_OR_RETURN(ParsedQuery q,
///                          ParseQuery(Language::kXPath, "//book/author"));
///
/// Error contract (asserted by tests/parse_query_test.cc): every parse
/// failure from any language is a Status with code kParseError whose
/// message ends in " at offset <N>", N the byte offset of the failure in
/// the input. The engine's Plan::Compile (engine/plan.h) builds on this.

namespace treeq {

/// The four query languages the repo implements (Sections 3-6 of the
/// paper), in the order ROADMAP lists them.
enum class Language {
  kXPath,    // Core XPath, set-at-a-time evaluation
  kCq,       // conjunctive queries, dichotomy-routed
  kDatalog,  // monadic datalog, TMNF pipeline
  kFo,       // first-order logic, Corollary 5.2 pipeline
};

inline constexpr int kNumLanguages = 4;

/// Canonical lowercase name: "xpath", "cq", "datalog", "fo".
const char* LanguageName(Language language);

/// Inverse of LanguageName (case-sensitive). NotFound for anything else.
Result<Language> ParseLanguageName(std::string_view name);

/// A parsed query of any language: exactly the member matching `language`
/// is set. A ParsedQuery is movable but not copyable (the xpath/fo ASTs
/// are unique_ptr trees).
struct ParsedQuery {
  Language language = Language::kXPath;
  std::unique_ptr<xpath::PathExpr> xpath;   // kXPath
  std::optional<cq::ConjunctiveQuery> cq;   // kCq
  std::optional<datalog::Program> datalog;  // kDatalog
  std::unique_ptr<fo::Formula> fo;          // kFo
};

/// Front-door parser knobs. Default-constructed options reproduce
/// ParseQuery's historical behavior — and its error messages — bit for
/// bit; the kParseError + " at offset <N>" contract holds for every
/// setting.
struct ParseOptions {
  /// Maximum expression nesting the recursive-descent parsers accept
  /// before failing with a ParseError (bounds parser stack growth on
  /// adversarial inputs). Currently enforced by the XPath parser, whose
  /// grammar is the only one with unbounded expression recursion.
  int max_nesting = 512;
  /// XPath dialect: accept the paper's relational axis aliases ("Child+",
  /// "NextSibling*", "Following", ...) alongside the standard XPath axis
  /// names. When false, aliases fail with the same "unknown axis"
  /// ParseError an unknown name gets.
  bool xpath_paper_axes = true;
};

/// Parses `text` as a `language` query via the language's own parser.
/// All errors are kParseError with a trailing " at offset <N>".
Result<ParsedQuery> ParseQuery(Language language, std::string_view text);
Result<ParsedQuery> ParseQuery(Language language, std::string_view text,
                               const ParseOptions& options);

}  // namespace treeq

#endif  // TREEQ_QUERY_PARSE_H_
