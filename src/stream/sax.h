#ifndef TREEQ_STREAM_SAX_H_
#define TREEQ_STREAM_SAX_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "tree/tree.h"
#include "util/exec_context.h"
#include "util/status.h"

/// \file sax.h
/// SAX-style event streams (Section 5): a document is consumed as a
/// left-to-right sequence of start/end element events — "the order in which
/// the opening resp. closing tag of each node is seen when reading the
/// corresponding XML document". Streaming consumers never see the tree.

namespace treeq {
namespace stream {

/// One event. `labels` carries the node's labels on kStartElement (empty on
/// kEndElement); `node` identifies the element for result reporting when the
/// stream comes from a materialized tree (kNullNode for text streams).
struct SaxEvent {
  enum class Kind { kStartElement, kEndElement };
  Kind kind = Kind::kStartElement;
  std::vector<std::string> labels;
  NodeId node = kNullNode;
};

/// Callback-based consumption; events are produced in document order.
using SaxHandler = std::function<void(const SaxEvent&)>;

/// Streams a materialized tree (iteratively; safe for deep documents).
void StreamTree(const Tree& tree, const SaxHandler& handler);

/// Bounded variant: charges `exec` one unit per event and stops streaming —
/// mid-document — as soon as a limit trips, returning the abort status.
Status StreamTree(const Tree& tree, const SaxHandler& handler,
                  const ExecContext& exec);

/// Materialized event list (for tests).
std::vector<SaxEvent> ToSaxEvents(const Tree& tree);

/// Streams XML text WITHOUT building a tree: the scanner keeps only the
/// open-element stack (tag names for well-formedness checking), i.e.
/// O(depth) memory. Supports the same XML subset as tree/xml.h; text
/// content is skipped. Nodes are numbered in document order.
Status StreamXmlText(std::string_view input, const SaxHandler& handler);

}  // namespace stream
}  // namespace treeq

#endif  // TREEQ_STREAM_SAX_H_
