#ifndef TREEQ_STREAM_STREAM_EVAL_H_
#define TREEQ_STREAM_STREAM_EVAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "stream/sax.h"
#include "util/status.h"
#include "xpath/ast.h"

/// \file stream_eval.h
/// One-pass evaluation of downward forward Core XPath over SAX streams
/// (Section 5; transducer-network style [61, 65]). The matcher keeps one
/// frame per open element, each of size O(|Q|), so its state is
/// O(depth * |Q|) — matching the streaming memory lower bound discussion of
/// [40] (which shows Omega(depth) is unavoidable for Boolean Core XPath).
///
/// Supported fragment: axes self, child, descendant, descendant-or-self in
/// steps and qualifier paths; qualifiers may use lab() tests, and, or, not
/// (negation is safe because a qualifier is resolved only when its node
/// closes, by which time the whole subtree has been seen). Use
/// xpath/to_forward.h to eliminate backward axes first.
///
///  - Boolean result ([[p]](root) nonempty): always available.
///  - Node selection: available when every non-final step carries only
///    label qualifiers (then a node's selection is decidable without
///    buffering); otherwise selection_supported() is false and only the
///    Boolean result is computed. This mirrors the candidate-buffering
///    lower bounds of [5]: general node selection inherently buffers, so
///    the O(depth * |Q|) guarantee is kept by restricting the fragment
///    instead.

namespace treeq {
namespace stream {

/// Memory/work accounting for the benches.
struct StreamStats {
  /// Maximum number of simultaneously open frames (== max depth + 1).
  size_t peak_frames = 0;
  /// Per-frame state size in bytes (fixed at compile time).
  size_t frame_bytes = 0;
  uint64_t events = 0;

  size_t PeakStateBytes() const { return peak_frames * frame_bytes; }
};

/// A compiled streaming matcher. Compile once per (query, document) run.
class StreamMatcher {
 public:
  /// Compiles `query`; Unsupported if it falls outside the fragment above.
  static Result<std::unique_ptr<StreamMatcher>> Compile(
      const xpath::PathExpr& query);

  ~StreamMatcher();
  StreamMatcher(const StreamMatcher&) = delete;
  StreamMatcher& operator=(const StreamMatcher&) = delete;

  /// Feeds one event. Events must form a single balanced document.
  void OnEvent(const SaxEvent& event);

  /// After the full stream: did [[query]](root) select anything?
  bool Matches() const;

  /// Whether node selection is available for this query.
  bool selection_supported() const;

  /// After the full stream: the selected nodes (document order, distinct).
  /// Requires selection_supported().
  std::vector<NodeId> SelectedNodes() const;

  const StreamStats& stats() const;

  /// Convenience: stream a whole tree and report the Boolean result.
  static Result<bool> MatchTree(const xpath::PathExpr& query,
                                const Tree& tree,
                                StreamStats* stats = nullptr);

  /// Convenience: stream a whole tree and report selected nodes.
  static Result<std::vector<NodeId>> SelectFromTree(
      const xpath::PathExpr& query, const Tree& tree,
      StreamStats* stats = nullptr);

  /// Bounded variants (util/exec_context.h): charge `exec` one unit per SAX
  /// event and abort mid-stream when a limit trips. Because the matcher's
  /// state is O(depth * |Q|), aborting leaves nothing big to tear down —
  /// this is the engine's graceful-degradation fallback path.
  static Result<bool> MatchTree(const xpath::PathExpr& query,
                                const Tree& tree, StreamStats* stats,
                                const ExecContext& exec);
  static Result<std::vector<NodeId>> SelectFromTree(
      const xpath::PathExpr& query, const Tree& tree, StreamStats* stats,
      const ExecContext& exec);

 private:
  class Impl;
  explicit StreamMatcher(std::unique_ptr<Impl> impl);

  std::unique_ptr<Impl> impl_;
};

}  // namespace stream
}  // namespace treeq

#endif  // TREEQ_STREAM_STREAM_EVAL_H_
