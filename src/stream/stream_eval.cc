#include "stream/stream_eval.h"

#include <algorithm>
#include <set>

#include "obs/obs.h"

namespace treeq {
namespace stream {

namespace {

using xpath::PathExpr;
using xpath::Qualifier;

/// A compiled linear path: a sequence of steps, each with one global
/// position id and an optional qualifier expression.
struct CompiledStep {
  Axis axis = Axis::kSelf;
  int qual = -1;  // index into CompiledQuery::quals, -1 = none
  int pos = -1;   // global step position
};

struct CompiledPath {
  std::vector<CompiledStep> steps;
};

/// Qualifier boolean expression nodes.
struct CompiledQual {
  enum class Kind { kLabel, kAnd, kOr, kNot, kPathSet };
  Kind kind = Kind::kLabel;
  std::string label;
  int left = -1;
  int right = -1;
  std::vector<int> path_ids;  // kPathSet: OR over these paths
};

struct CompiledQuery {
  std::vector<CompiledPath> paths;  // sub-paths have larger ids
  std::vector<CompiledQual> quals;
  int num_main = 0;  // paths[0..num_main-1] are the main alternatives
  int num_positions = 0;
  bool selection_supported = false;
};

bool IsDownwardAxis(Axis axis) {
  return axis == Axis::kSelf || axis == Axis::kChild ||
         axis == Axis::kDescendant || axis == Axis::kDescendantOrSelf;
}

/// Distributes unions: a PathExpr denotes a set of linear step sequences.
Status Linearize(const PathExpr& p,
                 std::vector<std::vector<const PathExpr*>>* out) {
  switch (p.kind) {
    case PathExpr::Kind::kStep:
      out->push_back({&p});
      return Status::OK();
    case PathExpr::Kind::kSeq: {
      std::vector<std::vector<const PathExpr*>> left, right;
      TREEQ_RETURN_IF_ERROR(Linearize(*p.left, &left));
      TREEQ_RETURN_IF_ERROR(Linearize(*p.right, &right));
      for (const auto& l : left) {
        for (const auto& r : right) {
          std::vector<const PathExpr*> seq = l;
          seq.insert(seq.end(), r.begin(), r.end());
          out->push_back(std::move(seq));
        }
      }
      return Status::OK();
    }
    case PathExpr::Kind::kUnion:
      TREEQ_RETURN_IF_ERROR(Linearize(*p.left, out));
      return Linearize(*p.right, out);
  }
  return Status::Internal("unreachable");
}

class Compiler {
 public:
  explicit Compiler(CompiledQuery* out) : out_(out) {}

  Status CompileMain(const PathExpr& query) {
    std::vector<std::vector<const PathExpr*>> alternatives;
    TREEQ_RETURN_IF_ERROR(Linearize(query, &alternatives));
    out_->num_main = static_cast<int>(alternatives.size());
    // Reserve ALL main path slots up front so that qualifier sub-paths of
    // early alternatives cannot steal the ids of later alternatives.
    out_->paths.resize(alternatives.size());
    for (size_t i = 0; i < alternatives.size(); ++i) {
      TREEQ_RETURN_IF_ERROR(
          CompilePathInto(static_cast<int>(i), alternatives[i]));
    }
    return Status::OK();
  }

 private:
  Result<int> CompilePath(const std::vector<const PathExpr*>& steps) {
    int id = static_cast<int>(out_->paths.size());
    out_->paths.emplace_back();
    TREEQ_RETURN_IF_ERROR(CompilePathInto(id, steps));
    return id;
  }

  Status CompilePathInto(int id, const std::vector<const PathExpr*>& steps) {
    // Note: compile steps after reserving the slot so nested sub-paths get
    // larger ids (the close pass evaluates paths in decreasing id order).
    std::vector<CompiledStep> compiled;
    for (const PathExpr* step : steps) {
      TREEQ_CHECK(step->kind == PathExpr::Kind::kStep);
      if (!IsDownwardAxis(step->axis)) {
        return Status::Unsupported(
            std::string("streaming supports downward forward axes only; "
                        "got ") +
            AxisName(step->axis) +
            " (use ToForwardXPath to eliminate backward axes)");
      }
      CompiledStep cs;
      cs.axis = step->axis;
      cs.pos = out_->num_positions++;
      int qual = -1;
      for (const auto& q : step->qualifiers) {
        TREEQ_ASSIGN_OR_RETURN(int qid, CompileQual(*q));
        if (qual == -1) {
          qual = qid;
        } else {
          CompiledQual conj;
          conj.kind = CompiledQual::Kind::kAnd;
          conj.left = qual;
          conj.right = qid;
          out_->quals.push_back(conj);
          qual = static_cast<int>(out_->quals.size()) - 1;
        }
      }
      cs.qual = qual;
      compiled.push_back(cs);
    }
    out_->paths[id].steps = std::move(compiled);
    return Status::OK();
  }

  Result<int> CompileQual(const Qualifier& q) {
    CompiledQual out;
    switch (q.kind) {
      case Qualifier::Kind::kLabel:
        out.kind = CompiledQual::Kind::kLabel;
        out.label = q.label;
        break;
      case Qualifier::Kind::kAnd:
      case Qualifier::Kind::kOr: {
        out.kind = q.kind == Qualifier::Kind::kAnd ? CompiledQual::Kind::kAnd
                                                   : CompiledQual::Kind::kOr;
        TREEQ_ASSIGN_OR_RETURN(out.left, CompileQual(*q.left));
        TREEQ_ASSIGN_OR_RETURN(out.right, CompileQual(*q.right));
        break;
      }
      case Qualifier::Kind::kNot: {
        out.kind = CompiledQual::Kind::kNot;
        TREEQ_ASSIGN_OR_RETURN(out.left, CompileQual(*q.left));
        break;
      }
      case Qualifier::Kind::kPath: {
        out.kind = CompiledQual::Kind::kPathSet;
        std::vector<std::vector<const PathExpr*>> linear;
        TREEQ_RETURN_IF_ERROR(Linearize(*q.path, &linear));
        for (const auto& seq : linear) {
          TREEQ_ASSIGN_OR_RETURN(int id, CompilePath(seq));
          out.path_ids.push_back(id);
        }
        break;
      }
    }
    out_->quals.push_back(std::move(out));
    return static_cast<int>(out_->quals.size()) - 1;
  }

  CompiledQuery* out_;
};

/// Label-only qualifier check (for the selection-supported fragment).
bool QualIsLabelOnly(const CompiledQuery& cq, int qual) {
  if (qual == -1) return true;
  const CompiledQual& q = cq.quals[qual];
  switch (q.kind) {
    case CompiledQual::Kind::kLabel:
      return true;
    case CompiledQual::Kind::kAnd:
      return QualIsLabelOnly(cq, q.left) && QualIsLabelOnly(cq, q.right);
    default:
      return false;
  }
}

bool SelectionSupported(const CompiledQuery& cq) {
  for (int p = 0; p < cq.num_main; ++p) {
    const CompiledPath& path = cq.paths[p];
    for (size_t j = 0; j + 1 < path.steps.size(); ++j) {
      if (!QualIsLabelOnly(cq, path.steps[j].qual)) return false;
    }
  }
  return true;
}

}  // namespace

class StreamMatcher::Impl {
 public:
  explicit Impl(CompiledQuery cq) : cq_(std::move(cq)) {
    stats_.frame_bytes =
        3 * static_cast<size_t>(cq_.num_positions) + sizeof(NodeId) + 16;
  }

  void OnEvent(const SaxEvent& event) {
    ++stats_.events;
    TREEQ_OBS_INC("stream.events");
    if (event.kind == SaxEvent::Kind::kStartElement) {
      OnStart(event);
    } else {
      OnEnd();
    }
  }

  bool Matches() const { return matches_; }

  std::vector<NodeId> SelectedNodes() const {
    std::vector<NodeId> out(selected_.begin(), selected_.end());
    std::sort(out.begin(), out.end());
    return out;
  }

  const CompiledQuery& compiled() const { return cq_; }
  const StreamStats& stats() const { return stats_; }

 private:
  struct Frame {
    NodeId node = kNullNode;
    std::vector<std::string> labels;
    // Boolean machinery: per position, whether some closed child (resp.
    // strict-descendant) subtree contains a node matching the step suffix
    // starting there.
    std::vector<char> child_sat;
    std::vector<char> desc_sat;
    // Selection machinery: per position of a *main* path, whether this
    // node is a candidate (axis admits it) / matched the prefix up to and
    // including the step (labels checked).
    std::vector<char> match_prefix;
    std::vector<char> active_child;
    std::vector<char> active_desc;
    // Main positions whose final decision waits for this node's close.
    std::vector<int> pending_final;
  };

  bool HasLabel(const Frame& f, const std::string& label) const {
    return std::find(f.labels.begin(), f.labels.end(), label) !=
           f.labels.end();
  }

  /// Label test + label-only qualifier parts of a step at open time.
  bool LabelQualsOk(const Frame& f, int qual) const {
    if (qual == -1) return true;
    const CompiledQual& q = cq_.quals[qual];
    switch (q.kind) {
      case CompiledQual::Kind::kLabel:
        return HasLabel(f, q.label);
      case CompiledQual::Kind::kAnd:
        return LabelQualsOk(f, q.left) && LabelQualsOk(f, q.right);
      default:
        return true;  // deferred to close time
    }
  }

  void OnStart(const SaxEvent& event) {
    stack_.emplace_back();
    Frame& f = stack_.back();
    f.node = event.node;
    f.labels = event.labels;
    f.child_sat.assign(cq_.num_positions, 0);
    f.desc_sat.assign(cq_.num_positions, 0);
    f.match_prefix.assign(cq_.num_positions, 0);
    f.active_child.assign(cq_.num_positions, 0);
    f.active_desc.assign(cq_.num_positions, 0);
    stats_.peak_frames = std::max(stats_.peak_frames, stack_.size());
    TREEQ_OBS_GAUGE_MAX("stream.peak_stack_depth", stack_.size());

    // Selection prefix propagation (main paths only).
    const bool is_root = stack_.size() == 1;
    const Frame* parent = is_root ? nullptr : &stack_[stack_.size() - 2];
    for (int p = 0; p < cq_.num_main; ++p) {
      const CompiledPath& path = cq_.paths[p];
      for (size_t j = 0; j < path.steps.size(); ++j) {
        const CompiledStep& step = path.steps[j];
        // Does the axis admit this node for step j?
        bool candidate = false;
        bool keep_desc = false;
        if (j == 0) {
          if (is_root) {
            candidate = step.axis == Axis::kSelf ||
                        step.axis == Axis::kDescendantOrSelf;
          } else {
            // non-root nodes reach step 0 via the root's activity flags
            candidate = parent->active_child[step.pos] ||
                        parent->active_desc[step.pos];
            keep_desc = parent->active_desc[step.pos];
          }
          if (is_root && (step.axis == Axis::kDescendant ||
                          step.axis == Axis::kDescendantOrSelf)) {
            f.active_desc[step.pos] = 1;
          }
          if (is_root && step.axis == Axis::kChild) {
            f.active_child[step.pos] = 1;
          }
        } else {
          if (parent != nullptr) {
            candidate = parent->active_child[step.pos] ||
                        parent->active_desc[step.pos];
            keep_desc = parent->active_desc[step.pos];
          }
        }
        if (keep_desc) f.active_desc[step.pos] = 1;
        if (!candidate) continue;
        if (!LabelQualsOk(f, step.qual)) continue;
        // Self-axis chains within the same node resolve in step order.
        f.match_prefix[step.pos] = 1;
        if (j + 1 == path.steps.size()) {
          // Final step matched (labels). Non-label qualifiers (allowed on
          // the final step) resolve at close.
          if (step.qual == -1 || QualIsLabelOnly(cq_, step.qual)) {
            if (f.node != kNullNode) selected_.insert(f.node);
            prefix_matched_ = true;
          } else {
            f.pending_final.push_back(step.pos);
          }
        } else {
          const CompiledStep& next = path.steps[j + 1];
          switch (next.axis) {
            case Axis::kSelf:
              // handled by in-order iteration: mark candidacy by treating
              // the next step immediately.
              // Fall through to candidacy via a direct recursion:
              // emulate by setting a transient candidate; the loop below
              // (same j order) covers it because next.pos > step.pos is
              // processed later in this same loop iteration order only if
              // j+1 loop index — we are iterating j in order, so the next
              // iteration handles it via `self_candidates_`.
              self_candidate_.push_back(next.pos);
              break;
            case Axis::kChild:
              f.active_child[next.pos] = 1;
              break;
            case Axis::kDescendant:
              f.active_desc[next.pos] = 1;
              break;
            case Axis::kDescendantOrSelf:
              f.active_desc[next.pos] = 1;
              self_candidate_.push_back(next.pos);
              break;
            default:
              break;
          }
        }
        // Apply self-candidacy produced for this very position.
        if (!self_candidate_.empty()) {
          // The candidate flags for later steps of this path at this node.
          // They are consumed when the loop reaches step j+1 below.
        }
      }
      // Second pass within the path for self-chains: repeat until no new
      // matches (at most |path| iterations).
      bool changed = !self_candidate_.empty();
      while (changed) {
        changed = false;
        std::vector<int> pending = std::move(self_candidate_);
        self_candidate_.clear();
        for (int pos : pending) {
          // Find the step with this position in the current path.
          for (size_t j = 0; j < path.steps.size(); ++j) {
            const CompiledStep& step = path.steps[j];
            if (step.pos != pos || f.match_prefix[pos]) continue;
            if (!LabelQualsOk(f, step.qual)) continue;
            f.match_prefix[pos] = 1;
            changed = true;
            if (j + 1 == path.steps.size()) {
              if (step.qual == -1 || QualIsLabelOnly(cq_, step.qual)) {
                if (f.node != kNullNode) selected_.insert(f.node);
                prefix_matched_ = true;
              } else {
                f.pending_final.push_back(step.pos);
              }
            } else {
              const CompiledStep& next = path.steps[j + 1];
              switch (next.axis) {
                case Axis::kSelf:
                  self_candidate_.push_back(next.pos);
                  break;
                case Axis::kChild:
                  f.active_child[next.pos] = 1;
                  break;
                case Axis::kDescendant:
                  f.active_desc[next.pos] = 1;
                  break;
                case Axis::kDescendantOrSelf:
                  f.active_desc[next.pos] = 1;
                  self_candidate_.push_back(next.pos);
                  break;
                default:
                  break;
              }
            }
          }
        }
        changed = changed || !self_candidate_.empty();
        if (self_candidate_.empty()) break;
      }
      self_candidate_.clear();
    }
  }

  void OnEnd() {
    TREEQ_CHECK(!stack_.empty());
    Frame& f = stack_.back();
    // Compute, for every path (sub-paths first) and every step position,
    // whether this node matches the step suffix starting there.
    std::vector<char> match(cq_.num_positions, 0);
    for (int p = static_cast<int>(cq_.paths.size()) - 1; p >= 0; --p) {
      const CompiledPath& path = cq_.paths[p];
      for (int j = static_cast<int>(path.steps.size()) - 1; j >= 0; --j) {
        const CompiledStep& step = path.steps[j];
        if (!StepLabelAndQualTrue(f, step, match)) continue;
        bool cont = true;
        if (j + 1 < static_cast<int>(path.steps.size())) {
          const CompiledStep& next = path.steps[j + 1];
          switch (next.axis) {
            case Axis::kSelf:
              cont = match[next.pos];
              break;
            case Axis::kChild:
              cont = f.child_sat[next.pos];
              break;
            case Axis::kDescendant:
              cont = f.desc_sat[next.pos];
              break;
            case Axis::kDescendantOrSelf:
              cont = match[next.pos] || f.desc_sat[next.pos];
              break;
            default:
              cont = false;
          }
        }
        if (cont) match[step.pos] = 1;
      }
    }

    // Pending final-step selections: the step's full qualifier is now
    // decidable.
    for (int pos : f.pending_final) {
      // Locate the main step with this position.
      for (int p = 0; p < cq_.num_main; ++p) {
        const CompiledPath& path = cq_.paths[p];
        if (path.steps.empty() || path.steps.back().pos != pos) continue;
        if (QualTrue(f, path.steps.back().qual, match)) {
          if (f.node != kNullNode) selected_.insert(f.node);
          prefix_matched_ = true;
        }
      }
    }

    // Boolean result at the root's close: does some main alternative have a
    // match reachable from the root context?
    if (stack_.size() == 1) {
      for (int p = 0; p < cq_.num_main; ++p) {
        const CompiledPath& path = cq_.paths[p];
        TREEQ_CHECK(!path.steps.empty());
        const CompiledStep& first = path.steps[0];
        bool reach = false;
        switch (first.axis) {
          case Axis::kSelf:
            reach = match[first.pos];
            break;
          case Axis::kChild:
            reach = f.child_sat[first.pos];
            break;
          case Axis::kDescendant:
            reach = f.desc_sat[first.pos];
            break;
          case Axis::kDescendantOrSelf:
            reach = match[first.pos] || f.desc_sat[first.pos];
            break;
          default:
            break;
        }
        matches_ = matches_ || reach;
      }
      stack_.pop_back();
      return;
    }

    // Fold this subtree's matches into the parent.
    Frame& parent = stack_[stack_.size() - 2];
    for (int pos = 0; pos < cq_.num_positions; ++pos) {
      parent.child_sat[pos] |= match[pos];
      parent.desc_sat[pos] |= match[pos] | f.desc_sat[pos];
    }
    stack_.pop_back();
  }

  /// Label test + full qualifier (using the close-time `match` vector).
  bool StepLabelAndQualTrue(const Frame& f, const CompiledStep& step,
                            const std::vector<char>& match) const {
    return QualTrue(f, step.qual, match);
  }

  bool QualTrue(const Frame& f, int qual,
                const std::vector<char>& match) const {
    if (qual == -1) return true;
    const CompiledQual& q = cq_.quals[qual];
    switch (q.kind) {
      case CompiledQual::Kind::kLabel:
        return HasLabel(f, q.label);
      case CompiledQual::Kind::kAnd:
        return QualTrue(f, q.left, match) && QualTrue(f, q.right, match);
      case CompiledQual::Kind::kOr:
        return QualTrue(f, q.left, match) || QualTrue(f, q.right, match);
      case CompiledQual::Kind::kNot:
        return !QualTrue(f, q.left, match);
      case CompiledQual::Kind::kPathSet: {
        for (int pid : q.path_ids) {
          const CompiledPath& path = cq_.paths[pid];
          TREEQ_CHECK(!path.steps.empty());
          const CompiledStep& first = path.steps[0];
          bool reach = false;
          switch (first.axis) {
            case Axis::kSelf:
              reach = match[first.pos];
              break;
            case Axis::kChild:
              reach = f.child_sat[first.pos];
              break;
            case Axis::kDescendant:
              reach = f.desc_sat[first.pos];
              break;
            case Axis::kDescendantOrSelf:
              reach = match[first.pos] || f.desc_sat[first.pos];
              break;
            default:
              break;
          }
          if (reach) return true;
        }
        return false;
      }
    }
    return false;
  }

  CompiledQuery cq_;
  std::vector<Frame> stack_;
  std::set<NodeId> selected_;
  std::vector<int> self_candidate_;
  bool matches_ = false;
  bool prefix_matched_ = false;
  StreamStats stats_;
};

StreamMatcher::StreamMatcher(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

StreamMatcher::~StreamMatcher() = default;

Result<std::unique_ptr<StreamMatcher>> StreamMatcher::Compile(
    const xpath::PathExpr& query) {
  CompiledQuery cq;
  Compiler compiler(&cq);
  TREEQ_RETURN_IF_ERROR(compiler.CompileMain(query));
  cq.selection_supported = SelectionSupported(cq);
  return std::unique_ptr<StreamMatcher>(
      new StreamMatcher(std::make_unique<Impl>(std::move(cq))));
}

void StreamMatcher::OnEvent(const SaxEvent& event) { impl_->OnEvent(event); }

bool StreamMatcher::Matches() const { return impl_->Matches(); }

bool StreamMatcher::selection_supported() const {
  return impl_->compiled().selection_supported;
}

std::vector<NodeId> StreamMatcher::SelectedNodes() const {
  TREEQ_CHECK(selection_supported());
  return impl_->SelectedNodes();
}

const StreamStats& StreamMatcher::stats() const { return impl_->stats(); }

Result<bool> StreamMatcher::MatchTree(const xpath::PathExpr& query,
                                      const Tree& tree, StreamStats* stats) {
  return MatchTree(query, tree, stats, ExecContext::Unbounded());
}

Result<bool> StreamMatcher::MatchTree(const xpath::PathExpr& query,
                                      const Tree& tree, StreamStats* stats,
                                      const ExecContext& exec) {
  TREEQ_OBS_SPAN("stream.match_tree");
  TREEQ_ASSIGN_OR_RETURN(std::unique_ptr<StreamMatcher> matcher,
                         Compile(query));
  TREEQ_RETURN_IF_ERROR(StreamTree(
      tree, [&matcher](const SaxEvent& e) { matcher->OnEvent(e); }, exec));
  if (stats != nullptr) *stats = matcher->stats();
  return matcher->Matches();
}

Result<std::vector<NodeId>> StreamMatcher::SelectFromTree(
    const xpath::PathExpr& query, const Tree& tree, StreamStats* stats) {
  return SelectFromTree(query, tree, stats, ExecContext::Unbounded());
}

Result<std::vector<NodeId>> StreamMatcher::SelectFromTree(
    const xpath::PathExpr& query, const Tree& tree, StreamStats* stats,
    const ExecContext& exec) {
  TREEQ_OBS_SPAN("stream.select_from_tree");
  TREEQ_ASSIGN_OR_RETURN(std::unique_ptr<StreamMatcher> matcher,
                         Compile(query));
  if (!matcher->selection_supported()) {
    return Status::Unsupported(
        "node selection needs label-only qualifiers on non-final steps");
  }
  TREEQ_RETURN_IF_ERROR(StreamTree(
      tree, [&matcher](const SaxEvent& e) { matcher->OnEvent(e); }, exec));
  if (stats != nullptr) *stats = matcher->stats();
  return matcher->SelectedNodes();
}

}  // namespace stream
}  // namespace treeq
