#include "stream/sax.h"

#include <cctype>

namespace treeq {
namespace stream {

void StreamTree(const Tree& tree, const SaxHandler& handler) {
  Status s = StreamTree(tree, handler, ExecContext::Unbounded());
  TREEQ_CHECK(s.ok());  // unbounded contexts never trip
}

Status StreamTree(const Tree& tree, const SaxHandler& handler,
                  const ExecContext& exec) {
  // Iterative DFS emitting start on entry and end on exit.
  std::vector<NodeId> stack = {tree.root()};
  while (!stack.empty()) {
    TREEQ_RETURN_IF_ERROR(exec.Charge(1));
    NodeId top = stack.back();
    stack.pop_back();
    if (top < 0) {
      SaxEvent end;
      end.kind = SaxEvent::Kind::kEndElement;
      end.node = ~top;
      handler(end);
      continue;
    }
    SaxEvent start;
    start.kind = SaxEvent::Kind::kStartElement;
    start.node = top;
    for (LabelId l : tree.labels(top)) {
      start.labels.push_back(tree.label_table().Name(l));
    }
    handler(start);
    stack.push_back(~top);
    std::vector<NodeId> kids;
    for (NodeId c = tree.first_child(top); c != kNullNode;
         c = tree.next_sibling(c)) {
      kids.push_back(c);
    }
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return Status::OK();
}

std::vector<SaxEvent> ToSaxEvents(const Tree& tree) {
  std::vector<SaxEvent> events;
  StreamTree(tree, [&events](const SaxEvent& e) { events.push_back(e); });
  return events;
}

namespace {

/// A single-pass scanner over XML text keeping only the open-tag stack.
class XmlScanner {
 public:
  XmlScanner(std::string_view input, const SaxHandler& handler)
      : input_(input), handler_(handler) {}

  Status Scan() {
    SkipMisc();
    if (Eof() || Peek() != '<') return Error("expected a root element");
    int root_elements = 0;
    while (!Eof()) {
      if (Peek() == '<') {
        if (input_.substr(pos_).starts_with("</")) {
          TREEQ_RETURN_IF_ERROR(CloseTag());
        } else if (input_.substr(pos_).starts_with("<!--") ||
                   input_.substr(pos_).starts_with("<?") ||
                   input_.substr(pos_).starts_with("<!")) {
          SkipMisc();
        } else {
          if (open_tags_.empty() && root_elements > 0) {
            return Error("trailing content after the root element");
          }
          if (open_tags_.empty()) ++root_elements;
          TREEQ_RETURN_IF_ERROR(OpenTag());
        }
      } else {
        ++pos_;  // text content is skipped
      }
      if (open_tags_.empty() && root_elements > 0) {
        SkipMisc();
        if (!Eof()) return Error("trailing content after the root element");
        return Status::OK();
      }
    }
    if (!open_tags_.empty()) {
      return Error("unexpected end: <" + open_tags_.back() + "> still open");
    }
    return Status::OK();
  }

 private:
  bool Eof() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }

  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " at offset " + std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (!Eof() && std::isspace(static_cast<unsigned char>(Peek()))) ++pos_;
  }

  void SkipMisc() {
    for (;;) {
      SkipWhitespace();
      if (Eof() || Peek() != '<') return;
      if (input_.substr(pos_).starts_with("<!--")) {
        size_t end = input_.find("-->", pos_ + 4);
        pos_ = (end == std::string_view::npos) ? input_.size() : end + 3;
      } else if (input_.substr(pos_).starts_with("<?") ||
                 input_.substr(pos_).starts_with("<!")) {
        size_t end = input_.find('>', pos_);
        pos_ = (end == std::string_view::npos) ? input_.size() : end + 1;
      } else {
        return;
      }
    }
  }

  Result<std::string> ScanName() {
    size_t start = pos_;
    while (!Eof() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                      Peek() == '_' || Peek() == '-' || Peek() == '.' ||
                      Peek() == ':')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a name");
    return std::string(input_.substr(start, pos_ - start));
  }

  Status OpenTag() {
    ++pos_;  // '<'
    TREEQ_ASSIGN_OR_RETURN(std::string tag, ScanName());
    SaxEvent start;
    start.kind = SaxEvent::Kind::kStartElement;
    start.node = next_node_++;
    start.labels.push_back(tag);
    bool self_closing = false;
    for (;;) {
      SkipWhitespace();
      if (Eof()) return Error("unexpected end inside a tag");
      if (Peek() == '>') {
        ++pos_;
        break;
      }
      if (Peek() == '/') {
        ++pos_;
        if (Eof() || Peek() != '>') return Error("expected '>' after '/'");
        ++pos_;
        self_closing = true;
        break;
      }
      TREEQ_ASSIGN_OR_RETURN(std::string attr, ScanName());
      SkipWhitespace();
      if (Eof() || Peek() != '=') return Error("expected '='");
      ++pos_;
      SkipWhitespace();
      if (Eof() || (Peek() != '"' && Peek() != '\'')) {
        return Error("expected a quoted value");
      }
      char quote = Peek();
      ++pos_;
      size_t vstart = pos_;
      while (!Eof() && Peek() != quote) ++pos_;
      if (Eof()) return Error("unterminated attribute value");
      std::string value(input_.substr(vstart, pos_ - vstart));
      ++pos_;
      start.labels.push_back("@" + attr);
      start.labels.push_back("@" + attr + "=" + value);
    }
    handler_(start);
    if (self_closing) {
      SaxEvent end;
      end.kind = SaxEvent::Kind::kEndElement;
      end.node = start.node;
      handler_(end);
    } else {
      open_tags_.push_back(tag);
      open_nodes_.push_back(start.node);
    }
    return Status::OK();
  }

  Status CloseTag() {
    pos_ += 2;  // "</"
    TREEQ_ASSIGN_OR_RETURN(std::string tag, ScanName());
    SkipWhitespace();
    if (Eof() || Peek() != '>') return Error("expected '>' in a close tag");
    ++pos_;
    if (open_tags_.empty() || open_tags_.back() != tag) {
      return Error("mismatched close tag </" + tag + ">");
    }
    SaxEvent end;
    end.kind = SaxEvent::Kind::kEndElement;
    end.node = open_nodes_.back();
    open_tags_.pop_back();
    open_nodes_.pop_back();
    handler_(end);
    return Status::OK();
  }

  std::string_view input_;
  const SaxHandler& handler_;
  size_t pos_ = 0;
  NodeId next_node_ = 0;
  std::vector<std::string> open_tags_;
  std::vector<NodeId> open_nodes_;
};

}  // namespace

Status StreamXmlText(std::string_view input, const SaxHandler& handler) {
  XmlScanner scanner(input, handler);
  return scanner.Scan();
}

}  // namespace stream
}  // namespace treeq
