#include "xpath/to_forward.h"

#include <algorithm>
#include <optional>
#include <vector>

#include "cq/rewrite.h"

namespace treeq {
namespace xpath {

namespace {

/// Recursively adds the atoms of a conjunctive path starting at `from`;
/// returns the variable of the path's final step.
class CqBuilder {
 public:
  explicit CqBuilder(cq::ConjunctiveQuery* query) : query_(query) {}

  Result<int> AddPath(const PathExpr& path, int from) {
    switch (path.kind) {
      case PathExpr::Kind::kStep: {
        int v = query_->AddVar("v" + std::to_string(counter_++));
        query_->AddAxisAtom(path.axis, from, v);
        for (const auto& q : path.qualifiers) {
          TREEQ_RETURN_IF_ERROR(AddQualifier(*q, v));
        }
        return v;
      }
      case PathExpr::Kind::kSeq: {
        TREEQ_ASSIGN_OR_RETURN(int mid, AddPath(*path.left, from));
        return AddPath(*path.right, mid);
      }
      case PathExpr::Kind::kUnion:
        return Status::Unsupported(
            "ConjunctiveXPathToCq: union is not conjunctive");
    }
    return Status::Internal("unreachable");
  }

 private:
  Status AddQualifier(const Qualifier& q, int at) {
    switch (q.kind) {
      case Qualifier::Kind::kLabel:
        query_->AddLabelAtom(q.label, at);
        return Status::OK();
      case Qualifier::Kind::kPath:
        return AddPath(*q.path, at).status();
      case Qualifier::Kind::kAnd:
        TREEQ_RETURN_IF_ERROR(AddQualifier(*q.left, at));
        return AddQualifier(*q.right, at);
      case Qualifier::Kind::kOr:
      case Qualifier::Kind::kNot:
        return Status::Unsupported(
            "ConjunctiveXPathToCq: or/not are not conjunctive");
    }
    return Status::Internal("unreachable");
  }

  cq::ConjunctiveQuery* query_;
  int counter_ = 0;
};

}  // namespace

Result<XPathCq> ConjunctiveXPathToCq(const PathExpr& path) {
  XPathCq out;
  out.context_var = out.query.AddVar("ctx");
  CqBuilder builder(&out.query);
  TREEQ_ASSIGN_OR_RETURN(out.result_var,
                         builder.AddPath(path, out.context_var));
  out.query.AddHeadVar(out.context_var);
  out.query.AddHeadVar(out.result_var);
  TREEQ_RETURN_IF_ERROR(out.query.Validate());
  return out;
}

namespace {

/// Structure of one acyclic rewrite output: children lists and the axis of
/// each variable's unique incoming atom.
struct AcyclicShape {
  std::vector<std::vector<int>> children;
  std::vector<Axis> in_axis;   // axis of the in-edge (kSelf at roots)
  std::vector<int> parent;     // -1 at roots
};

Result<AcyclicShape> ShapeOf(const cq::ConjunctiveQuery& query) {
  AcyclicShape shape;
  const int k = query.num_vars();
  shape.children.resize(k);
  shape.in_axis.assign(k, Axis::kSelf);
  shape.parent.assign(k, -1);
  for (const cq::AxisAtom& a : query.axis_atoms()) {
    if (!IsForwardAxis(a.axis)) {
      return Status::Internal("rewrite output contains a backward axis");
    }
    if (shape.parent[a.var1] != -1) {
      return Status::Internal("rewrite output is not forest-shaped");
    }
    shape.parent[a.var1] = a.var0;
    shape.in_axis[a.var1] = a.axis;
    shape.children[a.var0].push_back(a.var1);
  }
  return shape;
}

/// Attaches var `v`'s label atoms plus the subtrees of its children (other
/// than `skip_child`) as qualifiers of `step`.
void AttachQualifiers(const cq::ConjunctiveQuery& query,
                      const AcyclicShape& shape, int v, int skip_child,
                      PathExpr* step);

/// The qualifier path entering var `v` through its in-axis.
std::unique_ptr<PathExpr> SubtreePath(const cq::ConjunctiveQuery& query,
                                      const AcyclicShape& shape, int v,
                                      Axis via) {
  auto step = PathExpr::MakeStep(via);
  AttachQualifiers(query, shape, v, /*skip_child=*/-1, step.get());
  return step;
}

void AttachQualifiers(const cq::ConjunctiveQuery& query,
                      const AcyclicShape& shape, int v, int skip_child,
                      PathExpr* step) {
  for (const cq::LabelAtom& a : query.label_atoms()) {
    if (a.var == v) {
      step->qualifiers.push_back(Qualifier::MakeLabel(a.label));
    }
  }
  for (int child : shape.children[v]) {
    if (child == skip_child) continue;
    step->qualifiers.push_back(Qualifier::MakePath(
        SubtreePath(query, shape, child, shape.in_axis[child])));
  }
}

}  // namespace

namespace {

/// Replaces variable `from` with `to` in a copy of `query`, dropping
/// reflexive star atoms the merge creates. Returns nullopt when the merge
/// makes a strict atom reflexive (unsatisfiable).
std::optional<cq::ConjunctiveQuery> MergeVariable(
    const cq::ConjunctiveQuery& query, int from, int to) {
  cq::ConjunctiveQuery out;
  std::vector<int> remap(query.num_vars(), -1);
  for (int v = 0; v < query.num_vars(); ++v) {
    if (v == from) continue;
    remap[v] = out.AddVar(query.var_names()[v]);
  }
  remap[from] = remap[to];
  for (const cq::AxisAtom& a : query.axis_atoms()) {
    int v0 = remap[a.var0];
    int v1 = remap[a.var1];
    if (v0 == v1) {
      if (a.axis == Axis::kDescendantOrSelf ||
          a.axis == Axis::kFollowingSiblingOrSelf || a.axis == Axis::kSelf) {
        continue;  // reflexive star atom: trivially true
      }
      return std::nullopt;  // reflexive strict atom: unsatisfiable
    }
    out.AddAxisAtom(a.axis, v0, v1);
  }
  for (const cq::LabelAtom& a : query.label_atoms()) {
    out.AddLabelAtom(a.label, remap[a.var]);
  }
  for (int h : query.head_vars()) out.AddHeadVar(remap[h]);
  return out;
}

}  // namespace

Result<std::unique_ptr<PathExpr>> ForwardXPathFromAcyclic(
    const cq::ConjunctiveQuery& input) {
  if (input.head_vars().size() != 2) {
    return Status::InvalidArgument(
        "expected head variables (context, result)");
  }
  // The context is the document root: a strict in-edge at ctx (Child,
  // Child+, NextSibling, NextSibling+) is unsatisfiable and drops the
  // disjunct; a star in-edge R*(x, ctx) survives only in its x = ctx
  // reading (the lazy rewriting keeps star atoms), so merge and retry.
  cq::ConjunctiveQuery query = input;
  for (;;) {
    TREEQ_ASSIGN_OR_RETURN(AcyclicShape probe, ShapeOf(query));
    int c = query.head_vars()[0];
    if (probe.parent[c] == -1) break;
    Axis in = probe.in_axis[c];
    if (in != Axis::kDescendantOrSelf &&
        in != Axis::kFollowingSiblingOrSelf) {
      return std::unique_ptr<PathExpr>();
    }
    std::optional<cq::ConjunctiveQuery> merged =
        MergeVariable(query, probe.parent[c], c);
    if (!merged.has_value()) return std::unique_ptr<PathExpr>();
    query = std::move(*merged);
  }
  const int ctx = query.head_vars()[0];
  const int result = query.head_vars()[1];
  TREEQ_ASSIGN_OR_RETURN(AcyclicShape shape, ShapeOf(query));

  // Component roots.
  auto root_of = [&shape](int v) {
    while (shape.parent[v] != -1) v = shape.parent[v];
    return v;
  };
  const int result_root = root_of(result);

  // First step: self::* — the context node (= the root). It carries the
  // context's labels and branches, plus every component not containing the
  // result as an existential qualifier (any node is a descendant-or-self of
  // the root).
  auto first = PathExpr::MakeStep(Axis::kSelf);
  // Spine from the result's component root down to the result.
  std::vector<int> spine;
  for (int v = result; v != -1; v = shape.parent[v]) spine.push_back(v);
  std::reverse(spine.begin(), spine.end());  // result_root ... result

  if (result_root == ctx) {
    AttachQualifiers(query, shape, ctx, /*skip_child=*/
                     spine.size() > 1 ? spine[1] : -1, first.get());
  } else {
    AttachQualifiers(query, shape, ctx, /*skip_child=*/-1, first.get());
  }
  // Other components (not the context's, not the result's).
  std::vector<char> seen_root(query.num_vars(), 0);
  for (int v = 0; v < query.num_vars(); ++v) {
    int r = root_of(v);
    if (r == ctx || r == result_root || seen_root[r]) continue;
    seen_root[r] = 1;
    first->qualifiers.push_back(Qualifier::MakePath(
        SubtreePath(query, shape, r, Axis::kDescendantOrSelf)));
  }

  std::unique_ptr<PathExpr> path = std::move(first);
  if (result_root != ctx) {
    // Reach the (otherwise unconstrained) component root from the document
    // root via descendant-or-self.
    auto entry = PathExpr::MakeStep(Axis::kDescendantOrSelf);
    AttachQualifiers(query, shape, result_root,
                     spine.size() > 1 ? spine[1] : -1, entry.get());
    path = PathExpr::MakeSeq(std::move(path), std::move(entry));
  }
  for (size_t i = 1; i < spine.size(); ++i) {
    int v = spine[i];
    auto step = PathExpr::MakeStep(shape.in_axis[v]);
    AttachQualifiers(query, shape, v,
                     i + 1 < spine.size() ? spine[i + 1] : -1, step.get());
    path = PathExpr::MakeSeq(std::move(path), std::move(step));
  }
  return path;
}

Result<std::unique_ptr<PathExpr>> ToForwardXPath(const PathExpr& path) {
  if (!IsConjunctive(path)) {
    return Status::Unsupported(
        "ToForwardXPath handles the conjunctive fragment (Theorem 5.1's "
        "scope)");
  }
  TREEQ_ASSIGN_OR_RETURN(XPathCq xcq, ConjunctiveXPathToCq(path));
  // The lazy rewriting branches only on demand; the eager variant would
  // enumerate ordered-Bell-many weak orders of the query's variables and
  // becomes impractical beyond ~6 steps.
  TREEQ_ASSIGN_OR_RETURN(cq::RewriteOutput rewritten,
                         cq::RewriteToAcyclicUnionLazy(xcq.query));
  std::unique_ptr<PathExpr> out;
  for (const cq::ConjunctiveQuery& q : rewritten.queries) {
    TREEQ_ASSIGN_OR_RETURN(std::unique_ptr<PathExpr> disjunct,
                           ForwardXPathFromAcyclic(q));
    if (disjunct == nullptr) continue;
    out = out == nullptr
              ? std::move(disjunct)
              : PathExpr::MakeUnion(std::move(out), std::move(disjunct));
  }
  if (out == nullptr) {
    // Canonical never-matching forward path: no label is the empty string.
    auto never = PathExpr::MakeStep(Axis::kSelf);
    never->qualifiers.push_back(Qualifier::MakeLabel(""));
    out = std::move(never);
  }
  TREEQ_CHECK(IsForward(*out));
  return out;
}

}  // namespace xpath
}  // namespace treeq
